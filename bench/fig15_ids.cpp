//===- bench/fig15_ids.cpp - Figure 15 -----------------------------------===//
//
// Figure 15: "Intrusion Detection System: (a) correct vs. (b)
// incorrect." H4 pings H3, H2, H1, H3, H2, H1, H3 per the figure; after
// H1-then-H2 completes the scan signature, H4 -> H3 must be blocked.
// The uncoordinated baseline leaves H3 temporarily reachable.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "sim/Simulation.h"
#include "support/Table.h"

#include <iostream>

using namespace eventnet;
using namespace eventnet::bench;

namespace {

void run(const nes::CompiledProgram &C, const topo::Topology &Topo,
         sim::Simulation::Mode Mode, const char *Label) {
  sim::SimParams P;
  P.UncoordDelaySec = 2.0;
  sim::Simulation S(*C.N, Topo, Mode, P);
  // The figure's probe order; the H1-then-H2 pair in the middle is the
  // scan signature.
  std::vector<HostId> Script = {topo::HostH3, topo::HostH2, topo::HostH1,
                                topo::HostH3, topo::HostH2, topo::HostH1,
                                topo::HostH3, topo::HostH3};
  for (size_t I = 0; I != Script.size(); ++I)
    S.schedulePing(1.0 + 3.0 * static_cast<double>(I), topo::HostH4,
                   Script[I]);
  S.run(32.0);

  printf("\n--- %s ---\n", Label);
  TextTable T({"t_s", "ping", "reply"});
  for (const auto &Ping : S.pings())
    T.addRow({formatDouble(Ping.SentAt, 0),
              "H4-H" + std::to_string(Ping.To),
              Ping.Succeeded ? "yes" : "no"});
  T.print(std::cout);
}

} // namespace

int main() {
  banner("Figure 15", "intrusion detection: scan signature cuts off H3");
  apps::App A = apps::idsApp();
  nes::CompiledProgram C = compileApp(A);
  run(C, A.Topo, sim::Simulation::Mode::Nes, "(a) correct");
  run(C, A.Topo, sim::Simulation::Mode::Uncoordinated,
      "(b) uncoordinated (2 s delay)");
  printf("\nShape check: traffic flows freely until H1 then H2 are\n"
         "contacted in order; afterwards H4-H3 is blocked in (a), while\n"
         "(b) still answers H3 probes during the update window.\n");
  return 0;
}
