//===- bench/soak.cpp - Long-horizon streaming-checker soak bench --------===//
//
// The robustness companion to update_churn: one *long-lived* engine per
// row runs a duration-bounded churn storm (batched one-way floods with
// probe triggers scattered in), once with the streaming Definition 6
// checker attached and once without, so the row can attest three things
// the unit tests cannot:
//
//   overhead   the checker rides a collector thread off the hot path;
//              the row reports the hops/s cost of turning it on
//              (checker_overhead_pct, gated <15% by run_benches.py on
//              machines with a spare hardware thread for the collector);
//   bounded    the checker's state must not grow with the horizon: the
//              row records peak live window occupancy and peak resident
//              bytes, and requires that retirement actually ran
//              (chains_retired > 0) — a long trace with no retirement
//              means the window only survived because the run was short;
//   verdict    the whole multi-minute trace streams through Definition 6
//              and the row carries the verdict ("ok", or
//              "inconclusive:<cause>" — never silently clean).
//
// Unlike update_churn (fresh engine per repetition, latency percentiles)
// the soak keeps a single engine and a single checker alive for the full
// duration, so ticket watermarks, quiet-horizon retirement, and the
// window cap are exercised across millions of entries, not hundreds.
//
// Flags: --json (suppress the human table; emit only the JSON object),
//        --smoke (short duration for CI), --seed N, --duration SEC
//        (per measured run; two runs per row),
//        --partition modulo|contiguous|refined (default refined).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "api/StreamCollect.h"
#include "consistency/StreamCheck.h"
#include "engine/Engine.h"
#include "support/Rng.h"

#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

using namespace eventnet;
using namespace eventnet::bench;

namespace {

struct SoakOpts {
  uint64_t Seed = 1;
  double DurationSec = 5.0; ///< per measured run (two runs per row)
  unsigned BatchPackets = 512;
  unsigned ProbeEvery = 7; ///< batches between probe triggers
  size_t Window = 1 << 16;
  bool JsonOnly = false;
  engine::PartitionStrategy Partition = engine::PartitionStrategy::Refined;
};

/// What one duration-bounded run produced.
struct SoakOut {
  uint64_t Hops = 0;
  uint64_t Batches = 0;
  double ElapsedSec = 0;
  bool WithChecker = false;
  consistency::StreamResult Stream; ///< meaningful iff WithChecker
};

/// One long-lived engine driven with quiesced churn batches until the
/// wall-clock budget runs out. Every batch is a one-way H1->H2 flood
/// (distinct flows) and every ProbeEvery-th batch carries the ring
/// program's probe trigger, so the checker sees event chains — not just
/// plain forwarding — throughout the horizon. Per-batch quiescence is
/// deliberate: it paces the storm (no unbounded queue growth over
/// minutes) and gives the checker genuine quiet horizons to retire
/// against, which is exactly the state-boundedness claim under test.
/// Production is closed-loop: between batches the driver yields until
/// the stream backlog drains below a batch's worth, so the engine runs
/// at the checker-sustainable rate and nothing is shed at the bounded
/// hand-off (an open-loop flood would just measure the shed policy).
SoakOut soakRun(const nes::Nes &N, const topo::Topology &Topo,
                unsigned Shards, const SoakOpts &O, bool WithChecker) {
  engine::EngineConfig Cfg;
  Cfg.NumShards = Shards;
  Cfg.Partition = O.Partition;
  Cfg.RecordTrace = false; // the soak never materializes the full trace
  Cfg.StreamTrace = WithChecker;
  Cfg.RecordDeliveries = false;
  Cfg.EchoReplies = false;

  engine::Engine E(N, Topo, Cfg);
  consistency::StreamOptions SO;
  SO.Window = O.Window;
  SO.QuietHorizon = std::max<uint64_t>(8192, SO.Window / 2);
  std::optional<api::detail::StreamCollector> Col;
  if (WithChecker)
    Col.emplace(E, N, Topo, SO);

  engine::TrafficGen G(Topo, O.Seed);
  E.start();
  SoakOut Out;
  Out.WithChecker = WithChecker;
  Stopwatch SW;
  while (SW.seconds() < O.DurationSec) {
    engine::Workload W = G.bulk(topo::HostH1, topo::HostH2, O.BatchPackets,
                                O.BatchPackets);
    if (O.ProbeEvery && Out.Batches % O.ProbeEvery == 0) {
      engine::Workload P = G.probe(topo::HostH1, topo::HostH2);
      W.Phases[0].Injections.push_back(P.Phases[0].Injections[0]);
    }
    for (const engine::Phase &Ph : W.Phases)
      E.injectBatch(Ph.Injections.data(), Ph.Injections.size());
    E.awaitQuiescence();
    // Closed loop: don't outrun the checker. A batch is ~4 hops per
    // packet; once the backlog is below one batch the collector has
    // caught up enough that the next flush cannot hit StreamBufCap.
    if (Col)
      while (E.streamBacklog() > uint64_t(4) * O.BatchPackets)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    ++Out.Batches;
  }
  E.finish();
  engine::Stats S = E.stats();
  Out.Hops = S.PacketsProcessed;
  Out.ElapsedSec = S.ElapsedSec;
  if (Col)
    Out.Stream = Col->finalize(S.TraceDropped);
  return Out;
}

std::string verdictCell(const consistency::StreamResult &R) {
  if (R.violated())
    return "VIOLATION";
  if (R.ok())
    return "ok";
  return std::string("inconclusive:") + (R.Reason.empty() ? "?" : R.Reason);
}

} // namespace

int main(int argc, char **argv) {
  SoakOpts O;
  for (int I = 1; I != argc; ++I) {
    if (!strcmp(argv[I], "--json")) {
      O.JsonOnly = true;
    } else if (!strcmp(argv[I], "--smoke")) {
      O.DurationSec = 1.0;
    } else if (!strcmp(argv[I], "--seed") && I + 1 != argc) {
      O.Seed = strtoull(argv[++I], nullptr, 10);
    } else if (!strcmp(argv[I], "--duration") && I + 1 != argc) {
      O.DurationSec = strtod(argv[++I], nullptr);
      if (O.DurationSec <= 0) {
        fprintf(stderr, "--duration must be positive\n");
        return 2;
      }
    } else if (!strcmp(argv[I], "--partition") && I + 1 != argc) {
      auto S = engine::parsePartitionStrategy(argv[++I]);
      if (!S) {
        fprintf(stderr, "unknown partition strategy '%s'\n", argv[I]);
        return 2;
      }
      O.Partition = *S;
    } else {
      fprintf(stderr, "usage: soak [--json] [--smoke] [--seed N] "
                      "[--duration SEC] "
                      "[--partition modulo|contiguous|refined]\n");
      return 2;
    }
  }

  if (!O.JsonOnly)
    banner("soak", "long-horizon churn with the streaming Definition 6 "
                   "checker attached");

  TextTable T({"shards", "duration_s", "batches", "window",
               "hops_per_sec_M", "base_hops_per_sec_M",
               "checker_overhead_pct", "entries_checked", "chains_retired",
               "retired_per_sec", "events_observed", "peak_window",
               "peak_checker_kb", "definition6"});

  apps::App A = apps::ringApp(16, 8);
  nes::CompiledProgram C = compileApp(A);
  const nes::Nes &N = *C.N;
  const topo::Topology &Topo = A.Topo;

  for (unsigned Shards : {1u, 4u}) {
    SoakOut Base = soakRun(N, Topo, Shards, O, /*WithChecker=*/false);
    SoakOut Chk = soakRun(N, Topo, Shards, O, /*WithChecker=*/true);

    double BaseRate =
        Base.ElapsedSec > 0 ? Base.Hops / Base.ElapsedSec : 0;
    double ChkRate = Chk.ElapsedSec > 0 ? Chk.Hops / Chk.ElapsedSec : 0;
    double OverheadPct =
        BaseRate > 0 ? (1.0 - ChkRate / BaseRate) * 100.0 : 0;
    const consistency::StreamStats &SS = Chk.Stream.Stats;
    double RetiredPerSec =
        Chk.ElapsedSec > 0 ? SS.ChainsRetired / Chk.ElapsedSec : 0;
    T.addRow({std::to_string(Shards), formatDouble(O.DurationSec, 1),
              std::to_string(Chk.Batches), std::to_string(O.Window),
              formatDouble(ChkRate / 1e6, 3), formatDouble(BaseRate / 1e6, 3),
              formatDouble(OverheadPct, 1), std::to_string(SS.EntriesChecked),
              std::to_string(SS.ChainsRetired), formatDouble(RetiredPerSec, 0),
              std::to_string(SS.EventsObserved),
              std::to_string(SS.PeakWindow),
              std::to_string((SS.PeakResidentBytes + 1023) / 1024),
              verdictCell(Chk.Stream)});
  }

  if (!O.JsonOnly)
    T.print(std::cout);
  // faults-off attestation as elsewhere; hw_threads so the overhead gate
  // can skip machines with no spare core for the collector thread.
  printResultJson("soak", T,
                  "\"faults\": \"off\", \"hw_threads\": " +
                      std::to_string(std::thread::hardware_concurrency()));
  return 0;
}
