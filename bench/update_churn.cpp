//===- bench/update_churn.cpp - Event-storm update-latency bench ---------===//
//
// Event-to-new-config latency under a high-churn packet storm, comparing
// the two update pipelines side by side per shard count (1/4):
//
//   broadcast    the historical controller path (FastUpdates off,
//                CtrlBroadcast on): detection rides the controller's
//                spin->yield->sleep backoff, then a full-bitset
//                CtrlMerge to every shard queues behind the storm;
//   fast         the low-latency pipeline (FastUpdates on): the
//                detecting shard fans the transition out to its own
//                subscribed switches immediately, the controller is
//                woken through an eventfd/self-pipe, and propagation to
//                other shards is an event-id delta routed by the
//                subscription index.
//
// Each row aggregates many *fresh* engines (the ring program fires its
// probe event once per engine), injecting the whole storm open-loop —
// one batch, no inter-phase quiescence — so the update messages
// genuinely race a backlog of in-flight data traffic. The storm is
// deliberately *one-way* (a single H1->H2 flood with the probe triggers
// scattered through it): bidirectional traffic gossips the event digest
// onto every switch within microseconds, hiding the pipelines behind
// the storm's own propagation, whereas a one-way flood leaves the
// ingress switch and the ring's far arc gossip-starved — exactly the
// switches whose new config must come from the update pipeline. The raw
// detection->learn samples (engine transitionLatenciesNs) from every
// repetition merge into one log-bucket histogram, giving true p50/p99
// across the row rather than a percentile-of-percentiles.
//
// A final smaller run per row records a trace and replays it through the
// Definition 6 oracle: the fast path publishes each switch's register
// independently, and this check is the standing proof that independent
// publication is still the Section 4 protocol.
//
// Flags: --json (suppress the human table; emit only the JSON object),
//        --smoke (tiny repetition counts for CI), --seed N,
//        --partition modulo|contiguous|refined (default refined).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "consistency/Check.h"
#include "engine/Engine.h"
#include "obs/Histogram.h"
#include "support/Rng.h"

#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <thread>

using namespace eventnet;
using namespace eventnet::bench;

namespace {

struct BenchOpts {
  uint64_t Seed = 1;
  unsigned Reps = 32;           ///< fresh engines aggregated per row
  unsigned StormPackets = 8000; ///< distinct-flow data packets per rep
  unsigned Triggers = 8;        ///< probes scattered through the storm
  unsigned Warmup = 1;
  bool JsonOnly = false;
  engine::PartitionStrategy Partition = engine::PartitionStrategy::Refined;
};

engine::EngineConfig pipelineConfig(bool Fast, unsigned Shards,
                                    const BenchOpts &O) {
  engine::EngineConfig Cfg;
  Cfg.NumShards = Shards;
  Cfg.Partition = O.Partition;
  // The two pipelines under test. "fast" keeps CtrlBroadcast off — the
  // subscription index routes deltas to exactly the switches whose
  // config or detection behavior the event can change; "broadcast" is
  // the legacy full-bitset CtrlMerge to every shard.
  Cfg.FastUpdates = Fast;
  Cfg.CtrlBroadcast = !Fast;
  Cfg.RecordTrace = false; // pure latency: no per-hop allocation
  Cfg.RecordDeliveries = false;
  Cfg.EchoReplies = false; // churn flows are one-way data packets
  return Cfg;
}

/// The one-way event storm: a single-phase H1->H2 data flood with
/// \p Triggers H1->H2 probes (the ring program's update trigger)
/// inserted at random positions, so the first trigger detects mid-storm
/// and the transition races the remaining backlog. One-way on purpose —
/// see the file header.
engine::Workload oneWayStorm(engine::TrafficGen &G, unsigned Packets,
                             unsigned Triggers, uint64_t Seed) {
  engine::Workload W =
      G.bulk(topo::HostH1, topo::HostH2, Packets, Packets);
  Rng R(Seed * 7919 + 17);
  for (unsigned I = 0; I != Triggers; ++I) {
    engine::Workload P = G.probe(topo::HostH1, topo::HostH2);
    auto &Inj = W.Phases[0].Injections;
    size_t At = R.below(Inj.size() + 1);
    Inj.insert(Inj.begin() + static_cast<ptrdiff_t>(At),
               P.Phases[0].Injections[0]);
  }
  return W;
}

/// What one row accumulates across its repetitions.
struct RowAccum {
  obs::LogHistogram LatNs; ///< detect->learn samples, all reps
  uint64_t Hops = 0;       ///< switch-hops executed, all reps
  uint64_t FastLearns = 0;
  uint64_t CtrlDeltas = 0;
  double ElapsedSec = 0;
};

/// One open-loop storm on a fresh engine: inject everything in a single
/// batch (no inter-phase quiescence — the transition races the backlog),
/// drain, and account the latency samples.
void stormRep(const nes::Nes &N, const topo::Topology &Topo, bool Fast,
              unsigned Shards, const BenchOpts &O, uint64_t Seed,
              unsigned Packets, RowAccum *Acc) {
  engine::Engine E(N, Topo, pipelineConfig(Fast, Shards, O));
  engine::TrafficGen G(Topo, Seed);
  engine::Workload W = oneWayStorm(G, Packets, O.Triggers, Seed);
  E.start();
  for (const engine::Phase &Ph : W.Phases)
    E.injectBatch(Ph.Injections.data(), Ph.Injections.size());
  E.awaitQuiescence();
  E.finish();
  if (!Acc)
    return;
  for (int64_t Ns : E.transitionLatenciesNs())
    Acc->LatNs.record(Ns > 0 ? static_cast<uint64_t>(Ns) : 0);
  engine::Stats S = E.stats();
  Acc->Hops += S.PacketsProcessed;
  Acc->FastLearns += S.FastPathLearns;
  Acc->CtrlDeltas += S.CtrlDeltas;
  Acc->ElapsedSec += S.ElapsedSec;
}

/// A smaller recorded storm replayed through the Definition 6 checker.
bool checkedRep(const nes::Nes &N, const topo::Topology &Topo, bool Fast,
                unsigned Shards, const BenchOpts &O) {
  engine::EngineConfig Cfg = pipelineConfig(Fast, Shards, O);
  Cfg.RecordTrace = true;
  engine::Engine E(N, Topo, Cfg);
  engine::TrafficGen G(Topo, O.Seed);
  engine::Workload W = oneWayStorm(G, 400, O.Triggers, O.Seed);
  E.start();
  for (const engine::Phase &Ph : W.Phases)
    E.injectBatch(Ph.Injections.data(), Ph.Injections.size());
  E.awaitQuiescence();
  E.finish();
  return consistency::checkAgainstNes(E.trace(), Topo, N).Correct;
}

} // namespace

int main(int argc, char **argv) {
  BenchOpts O;
  for (int I = 1; I != argc; ++I) {
    if (!strcmp(argv[I], "--json")) {
      O.JsonOnly = true;
    } else if (!strcmp(argv[I], "--smoke")) {
      O.Reps = 3;
      O.StormPackets = 600;
    } else if (!strcmp(argv[I], "--seed") && I + 1 != argc) {
      O.Seed = strtoull(argv[++I], nullptr, 10);
    } else if (!strcmp(argv[I], "--partition") && I + 1 != argc) {
      auto S = engine::parsePartitionStrategy(argv[++I]);
      if (!S) {
        fprintf(stderr, "unknown partition strategy '%s'\n", argv[I]);
        return 2;
      }
      O.Partition = *S;
    } else {
      fprintf(stderr, "usage: update_churn [--json] [--smoke] [--seed N] "
                      "[--partition modulo|contiguous|refined]\n");
      return 2;
    }
  }

  if (!O.JsonOnly)
    banner("update_churn",
           "event-storm update latency: fast pipeline vs broadcast");

  TextTable T({"pipeline", "shards", "reps", "storm_packets", "learns",
               "fast_learns", "ctrl_deltas", "hops_per_sec_M",
               "update_storm_lat_p50_us", "update_storm_lat_p99_us",
               "p99_speedup_vs_broadcast", "definition6"});

  apps::App A = apps::ringApp(16, 8);
  nes::CompiledProgram C = compileApp(A);
  const nes::Nes &N = *C.N;
  const topo::Topology &Topo = A.Topo;

  // p99 of the broadcast row per shard count, the speedup denominator.
  std::map<unsigned, double> BroadcastP99;

  for (unsigned Shards : {1u, 4u}) {
    for (bool Fast : {false, true}) {
      warmupRuns(O.Warmup, [&] {
        stormRep(N, Topo, Fast, Shards, O, O.Seed,
                 O.StormPackets / 4 + 1, nullptr);
      });
      RowAccum Acc;
      for (unsigned R = 0; R != O.Reps; ++R)
        stormRep(N, Topo, Fast, Shards, O, O.Seed + R, O.StormPackets,
                 &Acc);
      bool Ok = checkedRep(N, Topo, Fast, Shards, O);

      obs::HistogramSnapshot H = Acc.LatNs.snapshot();
      double P50Us = static_cast<double>(H.percentile(0.50)) * 1e-3;
      double P99Us = static_cast<double>(H.percentile(0.99)) * 1e-3;
      if (!Fast)
        BroadcastP99[Shards] = P99Us;
      double Speedup = Fast && P99Us > 0
                           ? BroadcastP99[Shards] / P99Us
                           : 1.0;
      double HopsPerSec =
          Acc.ElapsedSec > 0 ? Acc.Hops / Acc.ElapsedSec : 0;
      T.addRow({Fast ? "fast" : "broadcast", std::to_string(Shards),
                std::to_string(O.Reps), std::to_string(O.StormPackets),
                std::to_string(H.TotalCount),
                std::to_string(Acc.FastLearns),
                std::to_string(Acc.CtrlDeltas),
                formatDouble(HopsPerSec / 1e6, 3), formatDouble(P50Us, 1),
                formatDouble(P99Us, 1), formatDouble(Speedup, 2),
                Ok ? "ok" : "VIOLATION"});
    }
  }

  if (!O.JsonOnly)
    T.print(std::cout);
  // Same attestations as engine_throughput: the latency gates only judge
  // the fault-free path, and hw_threads lets them skip configurations
  // this machine cannot genuinely run in parallel.
  printResultJson("update_churn", T,
                  "\"faults\": \"off\", \"hw_threads\": " +
                      std::to_string(std::thread::hardware_concurrency()));
  return 0;
}
