//===- bench/fig16b_event_discovery.cpp - Figure 16(b) -------------------===//
//
// Figure 16(b): "Circular Example: convergence." After the probe event
// flips the ring configuration, how long until each switch learns about
// the event? Digest-only dissemination rides on data packets and grows
// with the ring diameter; controller broadcast flattens the curve. The
// series reports max and average discovery times, with and without the
// controller assist (the figure's four bar groups).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "sim/Simulation.h"
#include "support/Table.h"

#include <algorithm>
#include <iostream>

using namespace eventnet;
using namespace eventnet::bench;

namespace {

struct Discovery {
  double MaxMs = 0;
  double AvgMs = 0;
  unsigned Learned = 0;
};

Discovery measure(const nes::CompiledProgram &C, const topo::Topology &Topo,
                  bool Broadcast) {
  sim::SimParams P;
  P.CtrlBroadcast = Broadcast;
  sim::Simulation S(*C.N, Topo, sim::Simulation::Mode::Nes, P);
  // Bidirectional background pings carry the digests around the ring.
  for (int I = 0; I != 400; ++I) {
    S.schedulePing(0.05 + 0.01 * I, topo::HostH1, topo::HostH2);
    S.schedulePing(0.055 + 0.01 * I, topo::HostH2, topo::HostH1);
  }
  S.scheduleProbe(0.5, topo::HostH1, topo::HostH2);
  S.run(6.0);

  double T0 = S.eventTime(0);
  Discovery Out;
  double Sum = 0;
  for (const auto &[Key, At] : S.learnTimes()) {
    if (Key.second != 0)
      continue;
    double Ms = (At - T0) * 1e3;
    Out.MaxMs = std::max(Out.MaxMs, Ms);
    Sum += Ms;
    ++Out.Learned;
  }
  Out.AvgMs = Out.Learned ? Sum / Out.Learned : 0;
  return Out;
}

} // namespace

int main() {
  banner("Figure 16(b)",
         "ring event discovery time vs diameter, with/without controller");

  TextTable T({"diameter", "max_ms", "avg_ms", "max_ctrl_ms", "avg_ctrl_ms",
               "switches_learned"});
  for (unsigned D = 3; D <= 8; ++D) {
    apps::App A = apps::ringApp(2 * D, D);
    nes::CompiledProgram C = compileApp(A);
    Discovery NoCtrl = measure(C, A.Topo, /*Broadcast=*/false);
    Discovery Ctrl = measure(C, A.Topo, /*Broadcast=*/true);
    T.addRow({std::to_string(D), formatDouble(NoCtrl.MaxMs, 2),
              formatDouble(NoCtrl.AvgMs, 2), formatDouble(Ctrl.MaxMs, 2),
              formatDouble(Ctrl.AvgMs, 2),
              std::to_string(NoCtrl.Learned) + "/" +
                  std::to_string(A.Topo.switches().size())});
  }
  T.print(std::cout);
  printf("\nShape check vs the paper: digest-only discovery time grows\n"
         "with the diameter (their y axis is seconds on Mininet; ours is\n"
         "milliseconds in the simulator); the controller broadcast caps\n"
         "it at roughly two controller latencies regardless of size.\n");
  return 0;
}
