//===- bench/ablation_trie_pairing.cpp - Design-choice ablation -----------===//
//
// Ablation for the Section 5.3 design choice DESIGN.md calls out: how
// much of the rule-sharing win comes from the *greedy pairing* itself,
// versus (a) an arbitrary (identity) leaf order and (b) the exhaustive
// optimum (computable only for small families)? Also sweeps the family
// size to show where the heuristic's gap to naive matters.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "opt/RuleSharing.h"
#include "support/Rng.h"
#include "support/Table.h"

#include <iostream>

using namespace eventnet;
using namespace eventnet::bench;
using namespace eventnet::opt;

namespace {

std::vector<RuleSet> randomFamily(Rng &R, size_t Count, unsigned Size,
                                  unsigned Pool) {
  std::vector<RuleSet> Out;
  for (size_t C = 0; C != Count; ++C) {
    RuleSet S;
    while (S.size() < Size)
      S.insert(static_cast<unsigned>(R.below(Pool)));
    Out.push_back(std::move(S));
  }
  return Out;
}

} // namespace

int main() {
  banner("Ablation", "trie pairing strategy: identity vs greedy vs optimal");

  // Small families where the optimum is computable.
  {
    TextTable T({"trial", "naive", "identity_order", "greedy", "optimal"});
    Rng R(99);
    for (int Trial = 1; Trial <= 10; ++Trial) {
      std::vector<RuleSet> F = randomFamily(R, 4, 6, 10);
      size_t Naive = 0;
      for (const RuleSet &S : F)
        Naive += S.size();
      T.addRow({std::to_string(Trial), std::to_string(Naive),
                std::to_string(trieCost(F)),
                std::to_string(shareRulesHeuristic(F).OptimizedRules),
                std::to_string(shareRulesOptimal(F))});
    }
    T.print(std::cout);
    printf("\nGreedy pairing closes most of the identity-to-optimal gap;\n"
           "on 4-leaf families it usually *is* optimal.\n\n");
  }

  // Larger families: identity order vs greedy (optimum intractable).
  {
    TextTable T({"configs", "naive", "identity_order", "greedy",
                 "greedy_savings_pct"});
    Rng R(7);
    for (size_t Count : {8, 16, 32, 64}) {
      std::vector<RuleSet> F = randomFamily(R, Count, 20, 48);
      size_t Naive = 0;
      for (const RuleSet &S : F)
        Naive += S.size();
      size_t Identity = trieCost(F);
      size_t Greedy = shareRulesHeuristic(F).OptimizedRules;
      T.addRow({std::to_string(Count), std::to_string(Naive),
                std::to_string(Identity), std::to_string(Greedy),
                formatDouble((1.0 - double(Greedy) / Naive) * 100, 1)});
    }
    T.print(std::cout);
    printf("\nTakeaway: random ID assignment (identity order) already\n"
           "shares a little by accident; the greedy pairing is what\n"
           "delivers the paper's ~32%% (it decides which configurations\n"
           "become trie siblings).\n");
  }
  return 0;
}
