//===- bench/micro_compiler.cpp - Compiler micro-benchmarks --------------===//
//
// google-benchmark timings for the compiler's internals: FDD
// construction and algebra, per-switch table extraction, the full
// source-to-NES pipeline on programs of growing size (bandwidth caps of
// increasing n drive the number of configurations), the event-structure
// queries the runtime calls per packet, and the trie-sharing heuristic.
//
//===----------------------------------------------------------------------===//

#include "apps/Programs.h"
#include "fdd/Fdd.h"
#include "nes/Pipeline.h"
#include "netkat/PathSplit.h"
#include "opt/RuleSharing.h"
#include "runtime/Guarded.h"
#include "stateful/Parser.h"
#include "stateful/Project.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace eventnet;

namespace {

stateful::SPolRef parsedBandwidthCap(unsigned N) {
  auto R = stateful::parseProgram(apps::bandwidthCapSource(N));
  assert(R.ok());
  return R->Program;
}

void BM_ParseBandwidthCap(benchmark::State &State) {
  std::string Src = apps::bandwidthCapSource(
      static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    auto R = stateful::parseProgram(Src);
    benchmark::DoNotOptimize(R.ok());
  }
}
BENCHMARK(BM_ParseBandwidthCap)->Arg(5)->Arg(20)->Arg(80);

void BM_ProjectAndSplit(benchmark::State &State) {
  stateful::SPolRef P = parsedBandwidthCap(10);
  for (auto _ : State) {
    netkat::PolicyRef Proj = stateful::project(P, {3});
    auto Split = netkat::splitAtLinks(Proj);
    benchmark::DoNotOptimize(Split.Ok);
  }
}
BENCHMARK(BM_ProjectAndSplit);

void BM_FddCompileFirewallState(benchmark::State &State) {
  auto R = stateful::parseProgram(apps::firewallSource());
  netkat::PolicyRef Proj = stateful::project(R->Program, {1});
  auto Split = netkat::splitAtLinks(Proj);
  for (auto _ : State) {
    fdd::FddManager M;
    fdd::NodeId D = M.compile(Split.Local);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_FddCompileFirewallState);

void BM_FddUnionChain(benchmark::State &State) {
  // Union of n disjoint forwarding clauses (a growing flow table).
  unsigned N = static_cast<unsigned>(State.range(0));
  FieldId Dst = apps::ipDstField();
  for (auto _ : State) {
    fdd::FddManager M;
    fdd::NodeId Acc = M.dropLeaf();
    for (unsigned I = 0; I != N; ++I) {
      netkat::PolicyRef P = netkat::seq(
          netkat::filter(netkat::pTest(Dst, static_cast<Value>(I))),
          netkat::modPt(I % 8 + 1));
      Acc = M.unionFdd(Acc, M.compile(P));
    }
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_FddUnionChain)->Arg(16)->Arg(64)->Arg(256);

void BM_TableExtraction(benchmark::State &State) {
  apps::App A = apps::bandwidthCapApp(10);
  auto R = stateful::parseProgram(A.Source);
  netkat::PolicyRef Proj = stateful::project(R->Program, {5});
  auto Split = netkat::splitAtLinks(Proj);
  fdd::FddManager M;
  fdd::NodeId D = M.compile(Split.Local);
  for (auto _ : State) {
    flowtable::Table T = M.toSwitchTable(D, 4);
    benchmark::DoNotOptimize(T.size());
  }
}
BENCHMARK(BM_TableExtraction);

void BM_FullPipelineBandwidthCap(benchmark::State &State) {
  apps::App A = apps::bandwidthCapApp(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    auto C = nes::compileSource(A.Source, A.Topo);
    benchmark::DoNotOptimize(C.ok());
  }
}
BENCHMARK(BM_FullPipelineBandwidthCap)->Arg(2)->Arg(10)->Arg(40);

void BM_FullPipelineRing(benchmark::State &State) {
  unsigned D = static_cast<unsigned>(State.range(0));
  apps::App A = apps::ringApp(2 * D, D);
  for (auto _ : State) {
    auto C = nes::compileAst(A.Ast, A.Topo);
    benchmark::DoNotOptimize(C.ok());
  }
}
BENCHMARK(BM_FullPipelineRing)->Arg(2)->Arg(4)->Arg(8);

void BM_NesEnabledEvents(benchmark::State &State) {
  apps::App A = apps::bandwidthCapApp(10);
  nes::CompiledProgram C = *nes::compileSource(A.Source, A.Topo);
  DenseBitSet Half;
  for (unsigned I = 0; I != 5; ++I)
    Half.set(I);
  for (auto _ : State) {
    auto E = C.N->enabledEvents(Half);
    benchmark::DoNotOptimize(E.size());
  }
}
BENCHMARK(BM_NesEnabledEvents);

void BM_GuardedTableBuild(benchmark::State &State) {
  apps::App A = apps::bandwidthCapApp(10);
  nes::CompiledProgram C = *nes::compileSource(A.Source, A.Topo);
  for (auto _ : State) {
    topo::Configuration G = runtime::buildGuardedConfig(*C.N, A.Topo);
    benchmark::DoNotOptimize(G.totalRules());
  }
}
BENCHMARK(BM_GuardedTableBuild);

void BM_TrieHeuristic(benchmark::State &State) {
  Rng R(7);
  std::vector<opt::RuleSet> Configs;
  for (int I = 0; I != 64; ++I) {
    opt::RuleSet S;
    while (S.size() < 20)
      S.insert(static_cast<unsigned>(R.below(32)));
    Configs.push_back(std::move(S));
  }
  for (auto _ : State) {
    opt::TrieResult Res = opt::shareRulesHeuristic(Configs);
    benchmark::DoNotOptimize(Res.OptimizedRules);
  }
}
BENCHMARK(BM_TrieHeuristic);

} // namespace

BENCHMARK_MAIN();
