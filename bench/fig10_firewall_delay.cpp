//===- bench/fig10_firewall_delay.cpp - Figure 10 ------------------------===//
//
// Figure 10: "Stateful Firewall: impact of delay." The uncoordinated
// update strategy's controller delay is swept from 0 to 5000 ms in 100 ms
// increments, 10 runs each; the series reports the total number of
// incorrectly-dropped packets (replies to allowed outbound traffic that
// the stale tables discard). The correct (event-driven consistent)
// strategy is the flat zero line.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "sim/Simulation.h"
#include "support/Table.h"

#include <iostream>

using namespace eventnet;
using namespace eventnet::bench;

namespace {

/// One firewall run: H1 pings H4 every 100 ms for 4 s starting at 0.5 s
/// (the first ping triggers the event). Returns the number of pings
/// whose replies were incorrectly dropped.
size_t incorrectlyDropped(const nes::CompiledProgram &C,
                          const topo::Topology &Topo,
                          sim::Simulation::Mode Mode, double DelaySec,
                          uint64_t Seed) {
  sim::SimParams P;
  P.UncoordDelaySec = DelaySec;
  P.Seed = Seed;
  sim::Simulation S(*C.N, Topo, Mode, P);
  for (int I = 0; I != 40; ++I)
    S.schedulePing(0.5 + 0.1 * I, topo::HostH1, topo::HostH4);
  S.run(0.5 + 0.1 * 40 + DelaySec + 2.0);

  size_t Dropped = 0;
  for (const auto &Ping : S.pings())
    Dropped += !Ping.Succeeded;
  return Dropped;
}

} // namespace

int main() {
  banner("Figure 10", "stateful firewall: incorrectly-dropped packets vs "
                      "uncoordinated controller delay (10 runs per point)");

  apps::App A = apps::firewallApp();
  nes::CompiledProgram C = compileApp(A);

  TextTable T({"delay_ms", "incorrect_dropped", "correct_dropped"});
  for (int DelayMs = 0; DelayMs <= 5000; DelayMs += 100) {
    size_t Uncoord = 0, Correct = 0;
    for (uint64_t Run = 0; Run != 10; ++Run) {
      Uncoord += incorrectlyDropped(C, A.Topo,
                                    sim::Simulation::Mode::Uncoordinated,
                                    DelayMs / 1000.0, Run + 1);
      Correct += incorrectlyDropped(C, A.Topo, sim::Simulation::Mode::Nes,
                                    DelayMs / 1000.0, Run + 1);
    }
    T.addRow({std::to_string(DelayMs), std::to_string(Uncoord),
              std::to_string(Correct)});
  }
  T.print(std::cout);

  printf("\nShape check vs the paper: the uncoordinated strategy drops at\n"
         "least one packet even at delay 0 (controller round trip), grows\n"
         "roughly linearly with the delay, and the correct strategy drops\n"
         "none.\n");
  return 0;
}
