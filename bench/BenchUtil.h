//===- bench/BenchUtil.h - Shared benchmark harness helpers -----*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure benchmark binaries: compiling an
/// application bundle and printing a banner identifying which paper
/// artifact a binary regenerates.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_BENCH_BENCHUTIL_H
#define EVENTNET_BENCH_BENCHUTIL_H

#include "apps/Programs.h"
#include "nes/Pipeline.h"
#include "support/Table.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

namespace eventnet {
namespace bench {

/// Compiles an App (source- or AST-based); exits the process with a
/// message on failure (benchmarks have no recovery path).
inline nes::CompiledProgram compileApp(const apps::App &A) {
  api::Result<nes::CompiledProgram> C =
      A.Source.empty() ? nes::compileAst(A.Ast, A.Topo)
                       : nes::compileSource(A.Source, A.Topo);
  if (!C.ok()) {
    fprintf(stderr, "failed to compile %s: %s\n", A.Name.c_str(),
            C.status().str().c_str());
    exit(1);
  }
  return std::move(*C);
}

/// Prints the harness banner.
inline void banner(const char *Artifact, const char *What) {
  printf("==============================================================\n");
  printf("%s — %s\n", Artifact, What);
  printf("==============================================================\n");
}

/// Emits a benchmark's result table as a named JSON object (the shared
/// machine-readable shape: {"bench": <name>, "rows": [...]}).
inline void printResultJson(const char *Bench, const TextTable &T) {
  std::cout << "{\"bench\": \"" << Bench << "\", \"rows\": ";
  T.printJson(std::cout);
  std::cout << "}\n";
}

} // namespace bench
} // namespace eventnet

#endif // EVENTNET_BENCH_BENCHUTIL_H
