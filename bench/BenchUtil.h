//===- bench/BenchUtil.h - Shared benchmark harness helpers -----*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure benchmark binaries: compiling an
/// application bundle and printing a banner identifying which paper
/// artifact a binary regenerates.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_BENCH_BENCHUTIL_H
#define EVENTNET_BENCH_BENCHUTIL_H

#include "apps/Programs.h"
#include "nes/Pipeline.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

namespace eventnet {
namespace bench {

/// Monotonic wall-clock timing for the macro benches. Always
/// steady_clock: system_clock/high_resolution_clock may jump under NTP
/// adjustment and would skew ns/op numbers.
class Stopwatch {
public:
  Stopwatch() : T0(std::chrono::steady_clock::now()) {}
  /// Seconds since construction (or the last restart()).
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
        .count();
  }
  void restart() { T0 = std::chrono::steady_clock::now(); }

private:
  std::chrono::steady_clock::time_point T0;
};

/// Runs \p Fn \p N times untimed before a measurement — first-touch
/// page faults, branch predictors, interned symbols, and freelist
/// growth all happen off the clock.
template <typename FnT> void warmupRuns(unsigned N, FnT Fn) {
  for (unsigned I = 0; I != N; ++I)
    Fn();
}

/// Compiles an App (source- or AST-based); exits the process with a
/// message on failure (benchmarks have no recovery path).
inline nes::CompiledProgram compileApp(const apps::App &A) {
  api::Result<nes::CompiledProgram> C =
      A.Source.empty() ? nes::compileAst(A.Ast, A.Topo)
                       : nes::compileSource(A.Source, A.Topo);
  if (!C.ok()) {
    fprintf(stderr, "failed to compile %s: %s\n", A.Name.c_str(),
            C.status().str().c_str());
    exit(1);
  }
  return std::move(*C);
}

/// Prints the harness banner.
inline void banner(const char *Artifact, const char *What) {
  printf("==============================================================\n");
  printf("%s — %s\n", Artifact, What);
  printf("==============================================================\n");
}

/// Emits a benchmark's result table as a named JSON object (the shared
/// machine-readable shape: {"bench": <name>, "rows": [...]}).
/// \p ExtraFields, when non-empty, is spliced in as additional top-level
/// members (e.g. "\"hw_threads\": 4") so benches can record the
/// environment their numbers depend on.
inline void printResultJson(const char *Bench, const TextTable &T,
                            const std::string &ExtraFields = "") {
  std::cout << "{\"bench\": \"" << Bench << "\", ";
  if (!ExtraFields.empty())
    std::cout << ExtraFields << ", ";
  std::cout << "\"rows\": ";
  T.printJson(std::cout);
  std::cout << "}\n";
}

} // namespace bench
} // namespace eventnet

#endif // EVENTNET_BENCH_BENCHUTIL_H
