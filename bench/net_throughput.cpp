//===- bench/net_throughput.cpp - Socket backend throughput --------------===//
//
// Packets/sec of the real-socket net backend over loopback: an
// in-process net::Server (epoll on Linux) fed by the sharded engine's
// DeliverySink, driven by the multi-connection load generator. Rows
// sweep transport x connection count — including the 1000-connection
// shape the acceptance bar measures — with the engine's trace recording
// off (pure throughput). Every row's conservation is checked inline
// (loadgen validation + server delivery accounting + engine drop
// audit); a final small traced run per transport replays the recorded
// trace through the Definition 6 oracle, so the fast path is shown to
// still be the correct protocol.
//
//   injects_per_sec_M  echo requests the clients pushed through the
//                      socket wall per second (the offered load that
//                      completed);
//   hops_per_sec_M     engine switch-hops per second during the run
//                      (the number the acceptance bar gates).
//
// Flags: --json (suppress the human table; emit only the JSON object),
//        --smoke (tiny loads for CI), --seed N.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "consistency/Check.h"
#include "engine/Engine.h"
#include "net/Loadgen.h"
#include "net/Server.h"
#include "net/Socket.h"

#include <atomic>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

using namespace eventnet;
using namespace eventnet::bench;

namespace {

struct BenchOpts {
  uint64_t Seed = 1;
  bool JsonOnly = false;
  bool Smoke = false;
};

struct RowResult {
  net::LoadgenStats Client;
  net::ServerStats Server;
  engine::Stats Engine;
  bool Conserved = false;
  bool Def6Ok = true; ///< only meaningful on traced rows
};

/// One measured loopback run: bind, attach a fresh engine, serve on a
/// background thread, drive the load generator, tear down.
RowResult runOnce(const nes::Nes &N, const topo::Topology &Topo, bool Udp,
                  unsigned Conns, uint64_t FramesPerConn, unsigned Burst,
                  uint64_t Seed, bool Traced) {
  RowResult R;
  net::ServerConfig SC;
  SC.Port = 0;
  net::Server Srv(SC);
  std::string Err;
  if (!Srv.open(Err)) {
    fprintf(stderr, "net_throughput: cannot bind loopback: %s\n",
            Err.c_str());
    exit(1);
  }
  engine::EngineConfig Cfg;
  Cfg.NumShards = 2;
  Cfg.RecordTrace = Traced;
  Cfg.RecordDeliveries = Traced;
  Cfg.DeliverySink = Srv.deliverySink();
  engine::Engine E(N, Topo, Cfg);
  Srv.attach(E);
  E.start();
  std::atomic<bool> Stop{false};
  std::thread Loop([&] { Srv.serve(Stop); });

  net::LoadgenConfig LC;
  LC.Port = Srv.port();
  LC.Udp = Udp;
  LC.Connections = Conns;
  LC.FramesPerConn = FramesPerConn;
  LC.Burst = Burst;
  LC.Phases = 1;
  LC.Seed = Seed;
  LC.RttSampleEvery = 16;
  R.Client = net::runLoadgen(LC);

  Stop = true;
  Loop.join();
  E.finish();
  R.Server = Srv.stats();
  R.Engine = E.stats();
  R.Conserved = R.Server.DeliveryFrames + R.Server.RingShed +
                    R.Server.DeliveryUnroutable +
                    R.Server.NonNetDeliveries ==
                R.Engine.PacketsDelivered;
  if (Traced)
    R.Def6Ok = consistency::checkAgainstNes(E.trace(), Topo, N).Correct;
  return R;
}

void benchTransport(const char *Transport, const nes::Nes &N,
                    const topo::Topology &Topo, bool Udp,
                    const BenchOpts &O, TextTable &T) {
  struct Shape {
    unsigned Conns;
    uint64_t Frames;
    unsigned Burst;
  };
  std::vector<Shape> Shapes;
  auto shape = [&Shapes](unsigned Conns, uint64_t Frames, unsigned Burst) {
    Shapes.push_back({Conns, Frames, Burst});
  };
  if (O.Smoke) {
    shape(8, 50, 16);
    shape(32, 25, 8);
  } else if (Udp) {
    shape(16, 500, 16);
    shape(64, 250, 16);
  } else {
    shape(64, 2000, 64);
    shape(1000, 200, 32);
  }

  // The correctness sidecar: a small traced run through the Definition 6
  // oracle, so the table can attest the measured path is the protocol.
  RowResult Checked =
      runOnce(N, Topo, Udp, 4, 32, 8, O.Seed + 99, /*Traced=*/true);
  bool Def6 = Checked.Def6Ok && Checked.Conserved && Checked.Client.ok();

  for (const Shape &S : Shapes) {
    RowResult R = runOnce(N, Topo, Udp, S.Conns, S.Frames, S.Burst, O.Seed,
                          /*Traced=*/false);
    double Sec = R.Client.ElapsedSec > 0 ? R.Client.ElapsedSec : 1;
    uint64_t Audit = R.Engine.PacketsInjected - R.Engine.PacketsDelivered -
                     R.Engine.PacketsDropped;
    bool Ok = Def6 && R.Conserved && R.Client.ok() && Audit == 0;
    T.addRow({Transport, std::to_string(S.Conns),
              std::to_string(S.Frames),
              std::to_string(R.Client.InjectsSent),
              std::to_string(R.Client.Replies),
              formatDouble(Sec * 1e3, 1),
              formatDouble(R.Client.InjectsSent / Sec / 1e6, 3),
              formatDouble(R.Engine.PacketsProcessed / Sec / 1e6, 3),
              formatDouble(R.Client.RttNs.percentile(0.5) / 1e3, 1),
              formatDouble(R.Client.RttNs.percentile(0.99) / 1e3, 1),
              std::to_string(Audit), Ok ? "ok" : "VIOLATION"});
  }
}

} // namespace

int main(int argc, char **argv) {
  BenchOpts O;
  for (int I = 1; I != argc; ++I) {
    if (!strcmp(argv[I], "--json")) {
      O.JsonOnly = true;
    } else if (!strcmp(argv[I], "--smoke")) {
      O.Smoke = true;
    } else if (!strcmp(argv[I], "--seed") && I + 1 != argc) {
      O.Seed = strtoull(argv[++I], nullptr, 10);
    } else {
      fprintf(stderr, "usage: net_throughput [--json] [--smoke] "
                      "[--seed N]\n");
      return 2;
    }
  }

  // The 1000-connection row needs more fds than the default soft limit.
  net::raiseFdLimit();

  if (!O.JsonOnly)
    banner("net_throughput",
           "loopback socket backend: loadgen -> epoll server -> engine");

  TextTable T({"transport", "connections", "frames_per_conn", "injects",
               "replies", "elapsed_ms", "injects_per_sec_M",
               "hops_per_sec_M", "rtt_p50_us", "rtt_p99_us", "silent_loss",
               "definition6"});

  {
    apps::App A = apps::ringApp(16, 8);
    nes::CompiledProgram C = compileApp(A);
    benchTransport("tcp", *C.N, A.Topo, /*Udp=*/false, O, T);
    benchTransport("udp", *C.N, A.Topo, /*Udp=*/true, O, T);
  }

  if (!O.JsonOnly)
    T.print(std::cout);
  printResultJson("net_throughput", T,
                  "\"faults\": \"off\", \"hw_threads\": " +
                      std::to_string(std::thread::hardware_concurrency()));
  return 0;
}
