//===- bench/fig16a_ring_bandwidth.cpp - Figure 16(a) --------------------===//
//
// Figure 16(a): "Circular Example: bandwidth." H1 and H2 sit on opposite
// sides of a ring whose diameter grows from 2 to 8. A TCP-like and a
// UDP-like flow measure achieved throughput under (i) the event-driven
// runtime, which charges tag + digest header bytes to every packet, and
// (ii) an unmodified reference configuration. The paper reports ~6%
// average degradation; the shape to check is that the two lines nearly
// coincide with a small constant gap.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "sim/Simulation.h"
#include "support/Table.h"

#include <iostream>

using namespace eventnet;
using namespace eventnet::bench;

namespace {

struct Measured {
  double TcpMbps = 0;
  double UdpMbps = 0;
  double UdpLossPct = 0;
};

/// Simulation parameters modeling the paper's testbed: Mininet with the
/// *userspace* OpenFlow 1.0 reference switch, whose per-packet software
/// path is comparable to the wire time; the modified switch additionally
/// parses/stamps the tag and merges digests (NesTagProcessingSec).
sim::SimParams testbedParams() {
  sim::SimParams P;
  P.SwitchDelaySec = 110e-6;      // userspace switch forwarding path
  P.NesTagProcessingSec = 7e-6;   // tag + digest handling
  return P;
}

Measured measure(const nes::CompiledProgram &C, const topo::Topology &Topo,
                 sim::Simulation::Mode Mode) {
  Measured Out;
  {
    sim::Simulation S(*C.N, Topo, Mode, testbedParams());
    S.scheduleTcpFlow(0.0, 2.0, topo::HostH1, topo::HostH2);
    S.run(3.0);
    Out.TcpMbps = S.flowStats().goodputBps() / 1e6;
  }
  {
    sim::Simulation S(*C.N, Topo, Mode, testbedParams());
    // Offered load slightly above the 100 Mbit/s links so the path is
    // saturated (iperf-style).
    S.scheduleUdpFlow(0.0, 2.0, topo::HostH1, topo::HostH2, 110e6);
    S.run(3.0);
    Out.UdpMbps = S.flowStats().goodputBps() / 1e6;
    Out.UdpLossPct = S.flowStats().lossRate() * 100;
  }
  return Out;
}

} // namespace

int main() {
  banner("Figure 16(a)",
         "ring bandwidth vs diameter: event-driven runtime vs reference");

  TextTable T({"diameter", "tcp_ours_mbps", "tcp_ref_mbps", "udp_ours_mbps",
               "udp_ref_mbps", "udp_loss_ours_pct", "overhead_pct"});
  double TotalOverhead = 0;
  int Points = 0;
  for (unsigned D = 2; D <= 8; ++D) {
    apps::App A = apps::ringApp(2 * D, D);
    nes::CompiledProgram C = compileApp(A);
    Measured Ours = measure(C, A.Topo, sim::Simulation::Mode::Nes);
    Measured Ref = measure(C, A.Topo, sim::Simulation::Mode::StaticReference);
    double Overhead = Ref.UdpMbps > 0
                          ? (1.0 - Ours.UdpMbps / Ref.UdpMbps) * 100
                          : 0;
    TotalOverhead += Overhead;
    ++Points;
    T.addRow({std::to_string(D), formatDouble(Ours.TcpMbps, 1),
              formatDouble(Ref.TcpMbps, 1), formatDouble(Ours.UdpMbps, 1),
              formatDouble(Ref.UdpMbps, 1),
              formatDouble(Ours.UdpLossPct, 1), formatDouble(Overhead, 2)});
  }
  T.print(std::cout);
  printf("\naverage bandwidth overhead of tagging/digests: %.2f%%\n",
         TotalOverhead / Points);
  printf("Shape check vs the paper: the two lines nearly coincide; the\n"
         "paper reports ~6%% average degradation (their overhead includes\n"
         "the modified OpenFlow slow path; ours is pure header bytes).\n");
  return 0;
}
