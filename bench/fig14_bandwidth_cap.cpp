//===- bench/fig14_bandwidth_cap.cpp - Figure 14 -------------------------===//
//
// Figure 14: "Bandwidth Cap: (a) correct vs. (b) incorrect." With a cap
// of n = 10 packets, H1 pings H4 repeatedly. The correct implementation
// lets exactly 10 replies back; the uncoordinated baseline overshoots
// the cap while the updates trail the events.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "consistency/Check.h"
#include "sim/Simulation.h"
#include "support/Table.h"

#include <iostream>

using namespace eventnet;
using namespace eventnet::bench;

namespace {

size_t run(const nes::CompiledProgram &C, const topo::Topology &Topo,
           sim::Simulation::Mode Mode, const char *Label) {
  sim::SimParams P;
  P.UncoordDelaySec = 2.0;
  sim::Simulation S(*C.N, Topo, Mode, P);
  for (int I = 0; I != 16; ++I)
    S.schedulePing(1.0 + 1.0 * I, topo::HostH1, topo::HostH4);
  S.run(22.0);

  printf("\n--- %s ---\n", Label);
  TextTable T({"t_s", "ping", "reply"});
  size_t Ok = 0;
  for (const auto &Ping : S.pings()) {
    Ok += Ping.Succeeded;
    T.addRow({formatDouble(Ping.SentAt, 0), "H1-H4",
              Ping.Succeeded ? "yes" : "no"});
  }
  T.print(std::cout);
  printf("successful pings: %zu (cap: 10)\n", Ok);
  return Ok;
}

} // namespace

int main() {
  banner("Figure 14", "bandwidth cap (n = 10): exact cut-off vs overshoot");
  apps::App A = apps::bandwidthCapApp(10);
  nes::CompiledProgram C = compileApp(A);
  size_t Correct = run(C, A.Topo, sim::Simulation::Mode::Nes, "(a) correct");
  size_t Uncoord = run(C, A.Topo, sim::Simulation::Mode::Uncoordinated,
                       "(b) uncoordinated (2 s delay)");
  printf("\nShape check vs the paper: correct = 10 exactly (paper: 10);\n"
         "uncoordinated exceeds the cap (paper: 15). Here: correct = %zu,\n"
         "uncoordinated = %zu.\n",
         Correct, Uncoord);
  return 0;
}
