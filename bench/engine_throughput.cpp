//===- bench/engine_throughput.cpp - Sharded engine throughput -----------===//
//
// Packets/sec of the concurrent data-plane engine on the Section 5.2
// ring and on a 4-ary fat-tree, comparing the two lookup paths side by
// side per shard count (1/2/4/8):
//
//   fdd-walk     the flattened-FDD-walk oracle lookup (heap-allocating
//                emission) with message-at-a-time dequeue (batch 1);
//   classifier   the contiguous classifier program with the batched,
//                zero-allocation hot loop (batch 32).
//
// Both rows run on today's engine — the recycled buffers, self-delivery
// short-circuit, and steady-state digest path are active in both — so
// speedup_vs_walk isolates the lookup + batching win, not the whole PR's
// before/after (the pre-PR engine is slower than the fdd-walk rows; see
// the README table's note). Each measurement is preceded by a warmup run
// of the same shape (page faults, malloc pools, interned symbols; the
// egress freelists are pre-sized from the batch size, so steady-state
// freelist_growth must read 0), timed with steady_clock. A final checked
// run per path replays a recorded concurrent trace through the
// Definition 6 oracle to show the fast path is still the correct
// protocol. The single-threaded sim::Simulation Nes mode provides the
// historical baseline row.
//
// The shard sweep doubles as the parallel-scaling measurement: every
// row records scaling_efficiency = hops/s at N shards divided by
// (hops/s at 1 shard × N) for its topology × path, plus the weighted
// inter-shard edge cut the chosen partition achieved, and the JSON
// carries hw_threads so gates can tell real scaling failures from
// plain lack of cores.
//
// Flags: --json (suppress the human table; emit only the JSON object),
//        --smoke (tiny iteration counts for CI), --seed N,
//        --partition modulo|contiguous|refined (default refined).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "consistency/Check.h"
#include "engine/Engine.h"
#include "sim/Simulation.h"
#include "support/Table.h"

#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <thread>

using namespace eventnet;
using namespace eventnet::bench;

namespace {

struct BenchOpts {
  uint64_t Seed = 1;
  uint64_t BulkPackets = 100000;
  unsigned PerPhase = 5000;
  unsigned Warmup = 1;
  bool JsonOnly = false;
  engine::PartitionStrategy Partition = engine::PartitionStrategy::Refined;
};

struct SimBaseline {
  double DeliveredPerSec = 0;
  uint64_t Delivered = 0;
};

/// The single-threaded baseline: the same bulk load through the
/// discrete-event simulator's Nes mode, measured in wall-clock time.
SimBaseline simBaseline(const nes::Nes &N, const topo::Topology &Topo,
                        HostId From, HostId To, const BenchOpts &O) {
  sim::SimParams P;
  P.LinkBandwidthBps = 10e9; // uncongested: measure the software path
  sim::Simulation S(N, Topo, sim::Simulation::Mode::Nes, P);
  double Bps =
      static_cast<double>(P.PayloadBytes) * 8 * O.BulkPackets / 2.0;
  S.scheduleUdpFlow(0.0, 2.0, From, To, Bps);

  Stopwatch W;
  S.run(3.0);
  double Wall = W.seconds();
  SimBaseline B;
  B.Delivered = S.flowStats().PktsDelivered;
  B.DeliveredPerSec = Wall > 0 ? B.Delivered / Wall : 0;
  return B;
}

engine::Stats engineRun(const nes::Nes &N, const topo::Topology &Topo,
                        unsigned Shards, bool Classifier, HostId From,
                        HostId To, const BenchOpts &O,
                        uint64_t Packets) {
  engine::EngineConfig Cfg;
  Cfg.NumShards = Shards;
  Cfg.UseClassifier = Classifier;
  // fdd-walk rows: oracle lookup, message-at-a-time dequeue. classifier
  // rows: the full fast path. (See the file header for what this pair
  // does and does not isolate.)
  Cfg.BatchSize = Classifier ? 32 : 1;
  Cfg.Partition = O.Partition;
  Cfg.RecordTrace = false; // pure throughput
  Cfg.RecordDeliveries = false;
  Cfg.EchoReplies = false;
  engine::Engine E(N, Topo, Cfg);
  engine::TrafficGen G(Topo, O.Seed);
  E.run(G.bulk(From, To, Packets, O.PerPhase));
  return E.stats();
}

/// A small config-churn run measuring the event-detection to
/// register-learn latency digest: pings, a probe (the ring program's
/// update trigger), more pings. Topologies without events (the fat-tree
/// static-routing Nes) report zero samples, rendered as 0.
engine::LatencyDigest updateLatencyRun(const nes::Nes &N,
                                       const topo::Topology &Topo,
                                       unsigned Shards, bool Classifier,
                                       const BenchOpts &O) {
  engine::EngineConfig Cfg;
  Cfg.NumShards = Shards;
  Cfg.UseClassifier = Classifier;
  Cfg.BatchSize = Classifier ? 32 : 1;
  Cfg.Partition = O.Partition;
  Cfg.RecordTrace = false;
  Cfg.RecordDeliveries = false;
  engine::Engine E(N, Topo, Cfg);
  engine::TrafficGen G(Topo, O.Seed);
  engine::Workload W = G.pings(1, 8);
  W += G.probe(topo::HostH1, topo::HostH2);
  W += G.pings(3, 8);
  E.run(W);
  return E.stats().Transition;
}

/// A smaller recorded run replayed through the Definition 6 checker.
bool checkedRun(const nes::Nes &N, const topo::Topology &Topo,
                unsigned Shards, bool Classifier, HostId From, HostId To,
                const BenchOpts &O) {
  engine::EngineConfig Cfg;
  Cfg.NumShards = Shards;
  Cfg.UseClassifier = Classifier;
  Cfg.Partition = O.Partition;
  engine::Engine E(N, Topo, Cfg);
  engine::TrafficGen G(Topo, O.Seed);
  E.run(G.bulk(From, To, 200, 50));
  return consistency::checkAgainstNes(E.trace(), Topo, N).Correct;
}

void benchTopology(const char *Name, const nes::Nes &N,
                   const topo::Topology &Topo, HostId From, HostId To,
                   const BenchOpts &O, TextTable &T) {
  SimBaseline Sim = simBaseline(N, Topo, From, To, O);
  // hops/sec of the fdd-walk path per shard count, for the speedup
  // column of the classifier rows.
  std::map<unsigned, double> WalkHops;
  // hops/sec at 1 shard per path, the scaling_efficiency denominator.
  std::map<bool, double> OneShardHops;

  for (unsigned Shards : {1u, 2u, 4u, 8u}) {
    for (bool Classifier : {false, true}) {
      // Warmup: a shorter run of the same shape on a throwaway engine
      // (an Engine runs one workload), then the measured run.
      warmupRuns(O.Warmup, [&] {
        engineRun(N, Topo, Shards, Classifier, From, To, O,
                  O.BulkPackets / 4 + 1);
      });
      engine::Stats S = engineRun(N, Topo, Shards, Classifier, From, To,
                                  O, O.BulkPackets);
      engine::LatencyDigest Lat =
          updateLatencyRun(N, Topo, Shards, Classifier, O);
      bool Ok = checkedRun(N, Topo, Shards, Classifier, From, To, O);

      const char *Path = Classifier ? "classifier" : "fdd-walk";
      if (!Classifier)
        WalkHops[Shards] = S.PacketsPerSec;
      if (Shards == 1)
        OneShardHops[Classifier] = S.PacketsPerSec;
      double VsWalk = !Classifier || WalkHops[Shards] <= 0
                          ? 1.0
                          : S.PacketsPerSec / WalkHops[Shards];
      double VsSim = Sim.DeliveredPerSec > 0
                         ? S.DeliveredPerSec / Sim.DeliveredPerSec
                         : 0;
      // Parallel efficiency: 1.0 means N shards run N times as fast as
      // one; beyond min(N, cores) it necessarily decays.
      double Efficiency = OneShardHops[Classifier] > 0
                              ? S.PacketsPerSec /
                                    (OneShardHops[Classifier] * Shards)
                              : 0;
      uint64_t Hwm = 0, FreeGrow = 0;
      for (const engine::ShardStats &SS : S.Shards) {
        if (SS.QueueHighWater > Hwm)
          Hwm = SS.QueueHighWater;
        FreeGrow += SS.FreelistGrowth;
      }
      T.addRow({Name, std::to_string(Shards), Path,
                engine::partitionStrategyName(S.Partition.Strategy),
                std::to_string(S.PacketsDelivered),
                formatDouble(S.ElapsedSec * 1e3, 1),
                formatDouble(S.PacketsPerSec / 1e6, 3),
                formatDouble(S.DeliveredPerSec / 1e6, 3),
                formatDouble(VsWalk, 2), formatDouble(VsSim, 1),
                formatDouble(Efficiency, 3),
                std::to_string(S.Partition.CutWeight),
                std::to_string(S.Partition.TotalWeight),
                std::to_string(Hwm), std::to_string(FreeGrow),
                formatDouble(Lat.P50Sec * 1e6, 1),
                formatDouble(Lat.P99Sec * 1e6, 1),
                Ok ? "ok" : "VIOLATION"});
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  BenchOpts O;
  for (int I = 1; I != argc; ++I) {
    if (!strcmp(argv[I], "--json")) {
      O.JsonOnly = true;
    } else if (!strcmp(argv[I], "--smoke")) {
      O.BulkPackets = 400;
      O.PerPhase = 200;
    } else if (!strcmp(argv[I], "--seed") && I + 1 != argc) {
      O.Seed = strtoull(argv[++I], nullptr, 10);
    } else if (!strcmp(argv[I], "--partition") && I + 1 != argc) {
      auto S = engine::parsePartitionStrategy(argv[++I]);
      if (!S) {
        fprintf(stderr, "unknown partition strategy '%s'\n", argv[I]);
        return 2;
      }
      O.Partition = *S;
    } else {
      fprintf(stderr, "usage: engine_throughput [--json] [--smoke] "
                      "[--seed N] [--partition modulo|contiguous|"
                      "refined]\n");
      return 2;
    }
  }

  if (!O.JsonOnly)
    banner("engine_throughput",
           "classifier program vs FDD walk, per shard count");

  TextTable T({"topology", "shards", "path", "partition", "delivered",
               "elapsed_ms", "hops_per_sec_M", "delivered_per_sec_M",
               "speedup_vs_walk", "speedup_vs_sim", "scaling_efficiency",
               "edge_cut", "edge_total", "queue_hwm", "freelist_growth",
               "update_lat_p50_us", "update_lat_p99_us", "definition6"});

  {
    apps::App A = apps::ringApp(16, 8);
    nes::CompiledProgram C = compileApp(A);
    benchTopology("ring16", *C.N, A.Topo, topo::HostH1, topo::HostH2, O, T);
  }
  {
    topo::Topology Topo = topo::fatTreeTopology(4);
    nes::Nes N = apps::staticRoutingNes(Topo);
    benchTopology("fattree4", N, Topo, 1, 16, O, T);
  }

  if (!O.JsonOnly)
    T.print(std::cout);
  // hw_threads lets scaling gates distinguish "the partition regressed"
  // from "this machine has no cores to scale onto".
  // "faults": "off" lets the regression gate assert it is comparing the
  // fault-free hot path: the injection hooks must stay null-pointer-gated
  // zero-cost when no plan is armed.
  printResultJson("engine_throughput", T,
                  "\"faults\": \"off\", \"hw_threads\": " +
                      std::to_string(std::thread::hardware_concurrency()));
  return 0;
}
