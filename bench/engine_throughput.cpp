//===- bench/engine_throughput.cpp - Sharded engine throughput -----------===//
//
// Packets/sec of the concurrent data-plane engine vs. shard count
// (1/2/4/8) on the Section 5.2 ring and on a 4-ary fat-tree, against the
// single-threaded sim::Simulation Nes mode running the same offered
// load. The engine executes the identical tag/digest runtime protocol;
// the speedup comes from the flat match pipelines, the lock-free
// shard hand-off, and (on multicore hosts) parallelism. A final checked
// run replays a recorded concurrent trace through the Definition 6
// oracle to show the fast path is still the correct protocol.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "consistency/Check.h"
#include "engine/Engine.h"
#include "sim/Simulation.h"
#include "support/Table.h"

#include <chrono>
#include <iostream>

using namespace eventnet;
using namespace eventnet::bench;

namespace {

constexpr uint64_t BulkPackets = 20000;
constexpr unsigned PerPhase = 2000;

struct SimBaseline {
  double DeliveredPerSec = 0;
  uint64_t Delivered = 0;
};

/// The single-threaded baseline: the same bulk load through the
/// discrete-event simulator's Nes mode, measured in wall-clock time.
SimBaseline simBaseline(const nes::Nes &N, const topo::Topology &Topo,
                        HostId From, HostId To) {
  sim::SimParams P;
  P.LinkBandwidthBps = 10e9; // uncongested: measure the software path
  sim::Simulation S(N, Topo, sim::Simulation::Mode::Nes, P);
  double Bps = static_cast<double>(P.PayloadBytes) * 8 * BulkPackets / 2.0;
  S.scheduleUdpFlow(0.0, 2.0, From, To, Bps);

  auto T0 = std::chrono::steady_clock::now();
  S.run(3.0);
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
  SimBaseline B;
  B.Delivered = S.flowStats().PktsDelivered;
  B.DeliveredPerSec = Wall > 0 ? B.Delivered / Wall : 0;
  return B;
}

engine::Stats engineRun(const nes::Nes &N, const topo::Topology &Topo,
                        unsigned Shards, HostId From, HostId To) {
  engine::EngineConfig Cfg;
  Cfg.NumShards = Shards;
  Cfg.RecordTrace = false; // pure throughput
  Cfg.EchoReplies = false;
  engine::Engine E(N, Topo, Cfg);
  engine::TrafficGen G(Topo, 1);
  E.run(G.bulk(From, To, BulkPackets, PerPhase));
  return E.stats();
}

/// A smaller recorded run replayed through the Definition 6 checker.
bool checkedRun(const nes::Nes &N, const topo::Topology &Topo,
                unsigned Shards, HostId From, HostId To) {
  engine::EngineConfig Cfg;
  Cfg.NumShards = Shards;
  engine::Engine E(N, Topo, Cfg);
  engine::TrafficGen G(Topo, 1);
  E.run(G.bulk(From, To, 200, 50));
  return consistency::checkAgainstNes(E.trace(), Topo, N).Correct;
}

void benchTopology(const char *Name, const nes::Nes &N,
                   const topo::Topology &Topo, HostId From, HostId To,
                   TextTable &T) {
  SimBaseline Sim = simBaseline(N, Topo, From, To);
  for (unsigned Shards : {1u, 2u, 4u, 8u}) {
    engine::Stats S = engineRun(N, Topo, Shards, From, To);
    bool Ok = checkedRun(N, Topo, Shards, From, To);
    double Speedup = Sim.DeliveredPerSec > 0
                         ? S.DeliveredPerSec / Sim.DeliveredPerSec
                         : 0;
    T.addRow({Name, std::to_string(Shards),
              std::to_string(S.PacketsDelivered),
              formatDouble(S.ElapsedSec * 1e3, 1),
              formatDouble(S.PacketsPerSec / 1e6, 3),
              formatDouble(S.DeliveredPerSec / 1e6, 3),
              formatDouble(Sim.DeliveredPerSec / 1e6, 3),
              formatDouble(Speedup, 1), Ok ? "ok" : "VIOLATION"});
  }
}

} // namespace

int main() {
  banner("engine_throughput",
         "sharded concurrent engine vs single-threaded simulator");

  TextTable T({"topology", "shards", "delivered", "elapsed_ms",
               "hops_per_sec_M", "delivered_per_sec_M", "sim_nes_per_sec_M",
               "speedup_vs_sim", "definition6"});

  {
    apps::App A = apps::ringApp(16, 8);
    nes::CompiledProgram C = compileApp(A);
    benchTopology("ring16", *C.N, A.Topo, topo::HostH1, topo::HostH2, T);
  }
  {
    topo::Topology Topo = topo::fatTreeTopology(4);
    nes::Nes N = apps::staticRoutingNes(Topo);
    benchTopology("fattree4", N, Topo, 1, 16, T);
  }

  T.print(std::cout);
  printResultJson("engine_throughput", T);
  return 0;
}
