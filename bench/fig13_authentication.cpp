//===- bench/fig13_authentication.cpp - Figure 13 ------------------------===//
//
// Figure 13: "Authentication: (a) correct vs. (b) incorrect." H4 probes
// H3/H2/H1 per the figure's script; access to H3 opens only after the
// knocks H1-then-H2 land. The uncoordinated baseline exhibits the
// figure's anomaly: both knocks delivered but H3 still (temporarily)
// unreachable.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "sim/Simulation.h"
#include "support/Table.h"

#include <iostream>

using namespace eventnet;
using namespace eventnet::bench;

namespace {

void run(const nes::CompiledProgram &C, const topo::Topology &Topo,
         sim::Simulation::Mode Mode, const char *Label) {
  sim::SimParams P;
  P.UncoordDelaySec = 2.0;
  sim::Simulation S(*C.N, Topo, Mode, P);
  struct Probe {
    double At;
    HostId To;
  };
  // The figure's order: H3 x, H2 x, H1 ok, H3 x, H1 x, H2 ok, H3 ok.
  std::vector<Probe> Script = {{1, topo::HostH3},  {4, topo::HostH2},
                               {7, topo::HostH1},  {10, topo::HostH3},
                               {13, topo::HostH1}, {16, topo::HostH2},
                               {17, topo::HostH3}, {21, topo::HostH3}};
  for (const Probe &Pr : Script)
    S.schedulePing(Pr.At, topo::HostH4, Pr.To);
  S.run(30.0);

  printf("\n--- %s ---\n", Label);
  TextTable T({"t_s", "ping", "reply"});
  for (const auto &Ping : S.pings())
    T.addRow({formatDouble(Ping.SentAt, 0),
              "H4-H" + std::to_string(Ping.To),
              Ping.Succeeded ? "yes" : "no"});
  T.print(std::cout);
}

} // namespace

int main() {
  banner("Figure 13", "authentication: knock sequence H1 then H2 gates H3");
  apps::App A = apps::authenticationApp();
  nes::CompiledProgram C = compileApp(A);
  run(C, A.Topo, sim::Simulation::Mode::Nes, "(a) correct");
  run(C, A.Topo, sim::Simulation::Mode::Uncoordinated,
      "(b) uncoordinated (2 s delay)");
  printf("\nShape check: (a) H3 answers only the probe after both knocks;\n"
         "(b) shows the paper's anomaly - knocks succeed but H3 remains\n"
         "blocked until the delayed update lands.\n");
  return 0;
}
