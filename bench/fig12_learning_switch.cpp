//===- bench/fig12_learning_switch.cpp - Figure 12 -----------------------===//
//
// Figure 12: "Learning Switch: (a) correct vs. (b) incorrect." H4 sends
// a packet stream toward H1; per second we count packets delivered to H1
// and flooded copies delivered to H2. Correct behavior floods exactly
// until H4 hears back from H1; the uncoordinated baseline keeps flooding
// for the length of the update window.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "sim/Simulation.h"
#include "support/Table.h"

#include <iostream>

using namespace eventnet;
using namespace eventnet::bench;

namespace {

void run(const nes::CompiledProgram &C, const topo::Topology &Topo,
         sim::Simulation::Mode Mode, const char *Label) {
  sim::SimParams P;
  P.UncoordDelaySec = 3.0;
  sim::Simulation S(*C.N, Topo, Mode, P);
  // Ten packets per second toward H1 for nine seconds.
  for (int I = 0; I != 90; ++I)
    S.schedulePing(0.05 + 0.1 * I, topo::HostH4, topo::HostH1);
  S.run(12.0);

  printf("\n--- %s ---\n", Label);
  TextTable T({"second", "pkts_to_H1", "pkts_to_H2"});
  for (int Sec = 0; Sec != 9; ++Sec) {
    auto Count = [&](HostId H) {
      size_t N = 0;
      for (const auto &[At, Pkt] : S.deliveriesTo(H))
        if (At >= Sec && At < Sec + 1 &&
            Pkt.getOr(apps::ipDstField(), -1) == 1)
          ++N;
      return N;
    };
    T.addRow({std::to_string(Sec + 1), std::to_string(Count(topo::HostH1)),
              std::to_string(Count(topo::HostH2))});
  }
  T.print(std::cout);
}

} // namespace

int main() {
  banner("Figure 12", "learning switch: packets to H1 vs flooded to H2");
  apps::App A = apps::learningSwitchApp();
  nes::CompiledProgram C = compileApp(A);
  run(C, A.Topo, sim::Simulation::Mode::Nes, "(a) correct");
  run(C, A.Topo, sim::Simulation::Mode::Uncoordinated,
      "(b) uncoordinated (3 s delay)");
  printf("\nShape check: in (a) H2 receives only the first flooded packet\n"
         "(learning takes effect with the first reply); in (b) flooding\n"
         "persists across the update window.\n");
  return 0;
}
