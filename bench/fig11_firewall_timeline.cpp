//===- bench/fig11_firewall_timeline.cpp - Figure 11 ---------------------===//
//
// Figure 11: "Stateful Firewall: (a) correct vs. (b) incorrect." The
// ping timeline of the figure: H4 -> H1 fails, H1 -> H4 succeeds (and
// opens the firewall), then H4 -> H1 succeeds. Under the uncoordinated
// baseline some H1 -> H4 pings lose their replies during the update
// window.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "consistency/Check.h"
#include "sim/Simulation.h"
#include "support/Table.h"

#include <iostream>

using namespace eventnet;
using namespace eventnet::bench;

namespace {

void timeline(const nes::CompiledProgram &C, const topo::Topology &Topo,
              sim::Simulation::Mode Mode, const char *Label) {
  sim::SimParams P;
  P.UncoordDelaySec = 2.0;
  sim::Simulation S(*C.N, Topo, Mode, P);

  // The figure's script over ~20 s: H4 -> H1 probes early, H1 -> H4
  // pings in the middle, H4 -> H1 probes at the end.
  for (int I = 0; I != 6; ++I)
    S.schedulePing(1.0 + I, topo::HostH4, topo::HostH1);
  for (int I = 0; I != 6; ++I)
    S.schedulePing(8.0 + I, topo::HostH1, topo::HostH4);
  for (int I = 0; I != 6; ++I)
    S.schedulePing(15.0 + I, topo::HostH4, topo::HostH1);
  S.run(24.0);

  printf("\n--- %s ---\n", Label);
  TextTable T({"t_s", "ping", "reply"});
  for (const auto &Ping : S.pings())
    T.addRow({formatDouble(Ping.SentAt, 1),
              "H" + std::to_string(Ping.From) + "-H" +
                  std::to_string(Ping.To),
              Ping.Succeeded ? "yes" : "no"});
  T.print(std::cout);

  auto Check = consistency::checkAgainstNes(S.trace(), Topo, *C.N);
  printf("consistency: %s\n",
         Check.Correct ? "correct" : Check.Reason.c_str());
}

} // namespace

int main() {
  banner("Figure 11",
         "stateful firewall ping timeline: correct vs uncoordinated");
  apps::App A = apps::firewallApp();
  nes::CompiledProgram C = compileApp(A);
  timeline(C, A.Topo, sim::Simulation::Mode::Nes, "(a) correct");
  timeline(C, A.Topo, sim::Simulation::Mode::Uncoordinated,
           "(b) uncoordinated (2 s delay)");
  printf("\nShape check: in (a) H4-H1 flips from no to yes exactly after\n"
         "the first H1-H4 ping; in (b) some H1-H4 pings lose replies.\n");
  return 0;
}
