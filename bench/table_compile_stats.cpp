//===- bench/table_compile_stats.cpp - In-text compile statistics --------===//
//
// The per-application numbers quoted in Section 5.1's prose: compile
// time and the number of flow-table rules each case study produces
// (paper: firewall 0.013 s / 18 rules, learning switch 0.015 s / 43,
// authentication 0.017 s / 72, bandwidth cap 0.023 s / 158, IDS 0.021 s
// / 152), plus the structure sizes (states, events, event-sets).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "opt/RuleSharing.h"
#include "runtime/Guarded.h"
#include "support/Table.h"

#include <iostream>

using namespace eventnet;
using namespace eventnet::bench;

int main() {
  banner("Section 5.1 in-text table",
         "per-application compile time and rule counts");

  TextTable T({"application", "compile_ms", "states", "events",
               "event_sets", "rules", "rules_shared"});
  for (const apps::App &A : apps::caseStudyApps()) {
    nes::CompiledProgram C = compileApp(A);
    size_t Rules = runtime::guardedRuleCount(*C.N, A.Topo);
    opt::NesShareStats Shared = opt::shareRulesForNes(*C.N, A.Topo);
    T.addRow({A.Name, formatDouble(C.CompileSeconds * 1e3, 2),
              std::to_string(C.Ets.vertices().size()),
              std::to_string(C.N->numEvents()),
              std::to_string(C.N->numSets()), std::to_string(Rules),
              std::to_string(Shared.After)});
  }
  // The synthetic ring apps, for scale.
  for (unsigned D : {4u, 8u}) {
    apps::App A = apps::ringApp(2 * D, D);
    nes::CompiledProgram C = compileApp(A);
    size_t Rules = runtime::guardedRuleCount(*C.N, A.Topo);
    opt::NesShareStats Shared = opt::shareRulesForNes(*C.N, A.Topo);
    T.addRow({A.Name + "-d" + std::to_string(D),
              formatDouble(C.CompileSeconds * 1e3, 2),
              std::to_string(C.Ets.vertices().size()),
              std::to_string(C.N->numEvents()),
              std::to_string(C.N->numSets()), std::to_string(Rules),
              std::to_string(Shared.After)});
  }
  T.print(std::cout);
  printf("\nShape check vs the paper: compile times are milliseconds;\n"
         "rule counts grow with the number of configurations (the\n"
         "bandwidth cap's 12 states dominate); sharing recovers a\n"
         "sizeable fraction on every multi-state application.\n");
  return 0;
}
