//===- bench/fig17_rule_sharing.cpp - Figure 17 --------------------------===//
//
// Figure 17: "Heuristic: reducing the number of rules." Randomly
// generated configuration families (the paper uses 64 configurations of
// 20 rules each) are fed to the Section 5.3 trie heuristic; the scatter
// compares the naive rule count against the count after wildcarded-guard
// sharing. The paper reports ~32% average savings; also reproduced here
// are the per-application reductions (18->16, 43->27, 72->46, 158->101,
// 152->133 in the paper).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "opt/RuleSharing.h"
#include "support/Rng.h"
#include "support/Table.h"

#include <iostream>

using namespace eventnet;
using namespace eventnet::bench;
using namespace eventnet::opt;

int main() {
  banner("Figure 17", "trie heuristic: rules with vs without sharing");

  // Scatter: 64 random configurations of 20 rules drawn from pools of
  // varying size (smaller pool = more overlap = more sharing).
  TextTable Scatter({"trial", "pool", "naive_rules", "heuristic_rules",
                     "savings_pct"});
  double TotalSavings = 0;
  int Points = 0;
  Rng R(2016);
  for (unsigned Pool = 40; Pool <= 80; Pool += 8) {
    for (int Trial = 0; Trial != 5; ++Trial) {
      std::vector<RuleSet> Configs;
      for (int C = 0; C != 64; ++C) {
        RuleSet S;
        while (S.size() < 20)
          S.insert(static_cast<unsigned>(R.below(Pool)));
        Configs.push_back(std::move(S));
      }
      TrieResult Res = shareRulesHeuristic(Configs);
      double Savings =
          (1.0 - static_cast<double>(Res.OptimizedRules) /
                     static_cast<double>(Res.OriginalRules)) *
          100;
      TotalSavings += Savings;
      ++Points;
      Scatter.addRow({std::to_string(Points), std::to_string(Pool),
                      std::to_string(Res.OriginalRules),
                      std::to_string(Res.OptimizedRules),
                      formatDouble(Savings, 1)});
    }
  }
  Scatter.print(std::cout);
  printf("\naverage savings on random configurations: %.1f%% "
         "(paper: ~32%%)\n\n",
         TotalSavings / Points);

  // Per-application reductions.
  TextTable Apps({"application", "rules", "rules_shared", "savings_pct"});
  for (const apps::App &A : apps::caseStudyApps()) {
    nes::CompiledProgram C = compileApp(A);
    NesShareStats S = shareRulesForNes(*C.N, A.Topo);
    Apps.addRow({A.Name, std::to_string(S.Before), std::to_string(S.After),
                 formatDouble(S.savings() * 100, 1)});
  }
  Apps.print(std::cout);
  printf("\nShape check vs the paper: savings grow with the number of\n"
         "configurations sharing structure (their per-app reductions:\n"
         "18->16, 43->27, 72->46, 158->101, 152->133).\n");
  return 0;
}
