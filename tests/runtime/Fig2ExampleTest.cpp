//===- tests/runtime/Fig2ExampleTest.cpp - The Section 2 worked example ---===//
//
// The paper's Figure 2 walkthrough: H1 reaches H2 through s3 and s4 (a
// distributed firewall detects the event at s4); H2 may answer through
// the direct s2-s1 link only afterwards. The point of the example is
// *locality*: s2 need not react instantaneously to the remote event at
// s4 — dropping an H2 packet right after the event is legal as long as
// s2 has not heard about it, but once event-bearing traffic has passed
// s2, the new configuration must apply. Random interleavings of the
// Figure 7 machine realize both outcomes, and the Definition 6 checker
// accepts every one of them.
//
//===----------------------------------------------------------------------===//

#include "runtime/Machine.h"

#include "apps/Programs.h"
#include "consistency/Check.h"
#include "nes/Pipeline.h"
#include "topo/Builders.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::runtime;

namespace {

const char *fig2Source() {
  return R"(
let H1 = 1;
let H2 = 2;

// H1 -> H2 via s3 and s4; the arrival at s4 is the event.
pt=2 and ip_dst=H2; pt<-3; (1:3)->(3:1); pt<-3;
  (3:3)->(4:3)<state<-[1]>; pt<-1; (4:1)->(2:3); pt<-2

// H2 -> H1 via the direct link, enabled by the event.
+ pt=2 and ip_dst=H1; state=[1]; pt<-1; (2:1)->(1:1); pt<-2
)";
}

struct Fixture {
  topo::Topology Topo = topo::fig2Topology();
  api::Result<nes::CompiledProgram> C;
  Fixture() { C = nes::compileSource(fig2Source(), Topo); }

  netkat::Packet toHost(HostId Dst) {
    netkat::Packet P;
    P.set(apps::ipDstField(), static_cast<Value>(Dst));
    return P;
  }
};

size_t deliveriesTo(const Machine &M, HostId H) {
  size_t N = 0;
  for (const auto &[Host, Pkt] : M.deliveries())
    N += (Host == H);
  return N;
}

} // namespace

TEST(Fig2Example, CompilesWithEventAtS4) {
  Fixture F;
  ASSERT_TRUE(F.C.ok()) << F.C.status().str();
  ASSERT_EQ(F.C->N->numEvents(), 1u);
  EXPECT_EQ(F.C->N->event(0).Loc, (Location{4, 3}));
  EXPECT_TRUE(F.C->N->isLocallyDetermined());
}

TEST(Fig2Example, EventTrafficTeachesS2OnItsWayToH2) {
  Fixture F;
  ASSERT_TRUE(F.C.ok()) << F.C.status().str();
  Machine M(*F.C->N, F.Topo);
  Rng R(5);
  M.inject(topo::HostH1, F.toHost(2));
  M.runToQuiescence(R);
  EXPECT_EQ(deliveriesTo(M, topo::HostH2), 1u);
  // The delivered packet passed s4 (event) and then s2 (digest), so s2
  // has heard about the event...
  EXPECT_TRUE(M.switchEvents(2).test(0));
  // ... and a subsequent H2 -> H1 packet must be admitted.
  M.inject(topo::HostH2, F.toHost(1));
  M.runToQuiescence(R);
  EXPECT_EQ(deliveriesTo(M, topo::HostH1), 1u);
  auto Check = consistency::checkAgainstNes(M.trace(), F.Topo, *F.C->N);
  EXPECT_TRUE(Check.Correct) << Check.Reason;
}

TEST(Fig2Example, BeforeEventH2IsDropped) {
  Fixture F;
  ASSERT_TRUE(F.C.ok()) << F.C.status().str();
  Machine M(*F.C->N, F.Topo);
  Rng R(6);
  M.inject(topo::HostH2, F.toHost(1));
  M.runToQuiescence(R);
  EXPECT_EQ(deliveriesTo(M, topo::HostH1), 0u);
  auto Check = consistency::checkAgainstNes(M.trace(), F.Topo, *F.C->N);
  EXPECT_TRUE(Check.Correct) << Check.Reason;
}

class Fig2Interleavings : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Fig2Interleavings, AllInterleavingsAreCorrect) {
  Fixture F;
  ASSERT_TRUE(F.C.ok()) << F.C.status().str();
  Machine M(*F.C->N, F.Topo);
  Rng R(GetParam());
  // Concurrent H1 -> H2 and H2 -> H1 traffic: depending on the
  // interleaving, H2's packets are dropped (processed in Ci) or
  // delivered (processed in Cf after s2 hears) — both legal, and the
  // checker must accept whichever happened.
  M.inject(topo::HostH2, F.toHost(1));
  M.inject(topo::HostH1, F.toHost(2));
  M.inject(topo::HostH2, F.toHost(1));
  M.inject(topo::HostH1, F.toHost(2));
  M.inject(topo::HostH2, F.toHost(1));
  size_t Steps = M.runToQuiescence(R);
  EXPECT_GT(Steps, 10u);
  ASSERT_TRUE(M.globalSetConsistent());
  auto Check = consistency::checkAgainstNes(M.trace(), F.Topo, *F.C->N);
  EXPECT_TRUE(Check.Correct) << Check.Reason << "\n" << M.trace().str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fig2Interleavings,
                         ::testing::Range<uint64_t>(1, 26));
