//===- tests/runtime/GuardedTest.cpp - Guarded table tests ----------------===//

#include "runtime/Guarded.h"

#include "apps/Programs.h"
#include "nes/Pipeline.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::runtime;

namespace {
nes::CompiledProgram compileApp(const apps::App &A) {
  api::Result<nes::CompiledProgram> C =
      A.Source.empty() ? nes::compileAst(A.Ast, A.Topo)
                       : nes::compileSource(A.Source, A.Topo);
  EXPECT_TRUE(C.ok()) << A.Name << ": " << C.status().str();
  return std::move(*C);
}
} // namespace

TEST(Guarded, TagFieldIsReserved) {
  EXPECT_EQ(fieldName(tagField()), "__tag");
}

TEST(Guarded, EveryRuleCarriesATagGuard) {
  apps::App A = apps::firewallApp();
  nes::CompiledProgram C = compileApp(A);
  topo::Configuration G = buildGuardedConfig(*C.N, A.Topo);
  for (const auto &[Sw, T] : G.tables())
    for (const flowtable::Rule &R : T.rules()) {
      bool HasTag = false;
      for (const auto &[F, V] : R.Pattern.constraints())
        if (F == tagField()) {
          HasTag = true;
          EXPECT_GE(V, 0);
          EXPECT_LT(V, static_cast<Value>(C.N->numSets()));
        }
      EXPECT_TRUE(HasTag) << "switch " << Sw << " rule " << R.str();
    }
}

TEST(Guarded, GuardedLookupEqualsPerConfigLookup) {
  // The semantic core of steps 1-3: for a packet stamped with tag t, the
  // merged guarded table behaves exactly like configuration g(t).
  Rng R(42);
  for (const apps::App &A : apps::caseStudyApps()) {
    nes::CompiledProgram C = compileApp(A);
    topo::Configuration G = buildGuardedConfig(*C.N, A.Topo);
    for (nes::SetId S = 0; S != C.N->numSets(); ++S) {
      for (int Trial = 0; Trial != 40; ++Trial) {
        // Random located packet over the app's field alphabet.
        SwitchId Sw = 0;
        {
          auto It = A.Topo.switches().begin();
          std::advance(It, R.below(A.Topo.switches().size()));
          Sw = *It;
        }
        netkat::Packet P = netkat::makePacket(
            {Sw, static_cast<PortId>(R.range(1, 4))},
            {{apps::ipDstField(), R.range(1, 4)},
             {apps::probeField(), R.range(0, 1)}});
        netkat::Packet Tagged = P;
        Tagged.set(tagField(), static_cast<Value>(S));

        auto FromGuarded = G.tableFor(Sw).apply(Tagged);
        auto FromConfig = C.N->configOf(S).tableFor(Sw).apply(Tagged);
        ASSERT_EQ(FromGuarded, FromConfig)
            << A.Name << " switch " << Sw << " set " << S << " pkt "
            << P.str();
      }
    }
  }
}

TEST(Guarded, RuleCountIsSumOfConfigs) {
  apps::App A = apps::bandwidthCapApp(4);
  nes::CompiledProgram C = compileApp(A);
  size_t Sum = 0;
  for (nes::SetId S = 0; S != C.N->numSets(); ++S)
    Sum += C.N->configOf(S).totalRules();
  EXPECT_EQ(guardedRuleCount(*C.N, A.Topo), Sum);
}
