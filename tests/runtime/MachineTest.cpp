//===- tests/runtime/MachineTest.cpp - Figure 7 machine tests -------------===//
//
// Deterministic scenarios for the firewall plus the randomized
// interleaving properties standing in for Lemma 3 (global consistency)
// and Theorem 1 (implementation correctness).
//
//===----------------------------------------------------------------------===//

#include "runtime/Machine.h"

#include "api/Api.h"
#include "apps/Programs.h"
#include "consistency/Check.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::runtime;

namespace {

struct Compiled {
  apps::App A;
  api::Result<api::Compilation> C;
};

/// Compiles through the api façade, exercising the same surface the CLI
/// and embedding programs use.
api::Result<api::Compilation> compileApp(const apps::App &A) {
  api::CompileOptions O;
  O.programSource(A.Source).topology(A.Topo);
  return api::compile(std::move(O));
}

Compiled firewall() {
  Compiled Out{apps::firewallApp(), {}};
  Out.C = compileApp(Out.A);
  EXPECT_TRUE(Out.C.ok()) << Out.C.status().str();
  return Out;
}

netkat::Packet toHost(HostId Dst) {
  netkat::Packet P;
  P.set(apps::ipDstField(), static_cast<Value>(Dst));
  return P;
}

size_t deliveriesTo(const Machine &M, HostId H) {
  size_t N = 0;
  for (const auto &[Host, Pkt] : M.deliveries())
    N += (Host == H);
  return N;
}

} // namespace

TEST(Machine, FirewallBlocksBeforeEvent) {
  Compiled F = firewall();
  Machine M(F.C->structure(), F.A.Topo);
  Rng R(1);
  M.inject(topo::HostH4, toHost(1));
  M.runToQuiescence(R);
  EXPECT_EQ(deliveriesTo(M, topo::HostH1), 0u);
  EXPECT_TRUE(M.switchEvents(4).empty());
  auto Check = consistency::checkAgainstNes(M.trace(), F.A.Topo, F.C->structure());
  EXPECT_TRUE(Check.Correct) << Check.Reason;
}

TEST(Machine, FirewallOpensAfterEvent) {
  Compiled F = firewall();
  Machine M(F.C->structure(), F.A.Topo);
  Rng R(2);
  // Outbound first: triggers the event at s4.
  M.inject(topo::HostH1, toHost(4));
  M.runToQuiescence(R);
  EXPECT_EQ(deliveriesTo(M, topo::HostH4), 1u);
  EXPECT_TRUE(M.switchEvents(4).test(0));

  // Inbound afterwards: the switch's IN rule stamps the new tag.
  M.inject(topo::HostH4, toHost(1));
  M.runToQuiescence(R);
  EXPECT_EQ(deliveriesTo(M, topo::HostH1), 1u);

  auto Check = consistency::checkAgainstNes(M.trace(), F.A.Topo, F.C->structure());
  EXPECT_TRUE(Check.Correct) << Check.Reason << "\n" << M.trace().str();
}

TEST(Machine, EventPropagatesToOtherSwitchViaDigest) {
  Compiled F = firewall();
  Machine M(F.C->structure(), F.A.Topo);
  Rng R(3);
  M.inject(topo::HostH1, toHost(4));
  M.runToQuiescence(R);
  // s4 heard the event; s1 has not necessarily (no reverse traffic yet).
  EXPECT_TRUE(M.switchEvents(4).test(0));
  M.inject(topo::HostH4, toHost(1));
  M.runToQuiescence(R);
  // The inbound packet's digest teaches s1.
  EXPECT_TRUE(M.switchEvents(1).test(0));
}

TEST(Machine, ControllerRelayDeliversEvents) {
  Compiled F = firewall();
  Machine M(F.C->structure(), F.A.Topo);
  Rng R(4);
  M.inject(topo::HostH1, toHost(4));
  // Drive to quiescence; CTRLRECV/CTRLSEND steps are part of the step
  // space, so by quiescence every switch has heard about the event.
  M.runToQuiescence(R);
  EXPECT_TRUE(M.controllerQueue().empty());
  EXPECT_TRUE(M.controller().test(0));
  EXPECT_TRUE(M.switchEvents(1).test(0));
  EXPECT_TRUE(M.switchEvents(4).test(0));
}

TEST(Machine, StepStringsAreInformative) {
  Compiled F = firewall();
  Machine M(F.C->structure(), F.A.Topo);
  M.inject(topo::HostH1, toHost(4));
  auto Steps = M.possibleSteps();
  ASSERT_EQ(Steps.size(), 1u);
  EXPECT_NE(Steps[0].str().find("IN"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Properties (Lemma 3 / Theorem 1)
//===----------------------------------------------------------------------===//

namespace {

/// Drives the machine step by step, asserting Lemma 3 after every step.
void runCheckingConsistency(Machine &M, Rng &R, size_t MaxSteps = 100000) {
  size_t Taken = 0;
  while (Taken < MaxSteps) {
    auto Steps = M.possibleSteps();
    if (Steps.empty())
      return;
    M.apply(Steps[R.below(Steps.size())]);
    ASSERT_TRUE(M.globalSetConsistent()) << "Lemma 3 violated";
    ++Taken;
  }
  FAIL() << "machine failed to quiesce";
}

} // namespace

class MachineInterleavings : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MachineInterleavings, FirewallTracesAreCorrect) {
  Compiled F = firewall();
  Machine M(F.C->structure(), F.A.Topo);
  Rng R(GetParam());
  // A mix of inbound and outbound packets injected up front; the driver
  // interleaves IN/SWITCH/LINK/controller steps randomly.
  M.inject(topo::HostH4, toHost(1));
  M.inject(topo::HostH1, toHost(4));
  M.inject(topo::HostH4, toHost(1));
  M.inject(topo::HostH1, toHost(4));
  M.inject(topo::HostH4, toHost(1));
  runCheckingConsistency(M, R);

  auto Check = consistency::checkAgainstNes(M.trace(), F.A.Topo, F.C->structure());
  EXPECT_TRUE(Check.Correct) << Check.Reason << "\n" << M.trace().str();
}

TEST_P(MachineInterleavings, AuthenticationTracesAreCorrect) {
  apps::App A = apps::authenticationApp();
  api::Result<api::Compilation> C = compileApp(A);
  ASSERT_TRUE(C.ok()) << C.status().str();
  Machine M(C->structure(), A.Topo);
  Rng R(GetParam() ^ 0x9999);
  // Knock out of order and in order.
  M.inject(topo::HostH4, toHost(3));
  M.inject(topo::HostH4, toHost(1));
  M.inject(topo::HostH4, toHost(2));
  M.inject(topo::HostH4, toHost(3));
  runCheckingConsistency(M, R);
  auto Check =
      consistency::checkAgainstNes(M.trace(), A.Topo, C->structure());
  EXPECT_TRUE(Check.Correct) << Check.Reason << "\n" << M.trace().str();
}

TEST_P(MachineInterleavings, BandwidthCapTracesAreCorrect) {
  apps::App A = apps::bandwidthCapApp(3);
  api::Result<api::Compilation> C = compileApp(A);
  ASSERT_TRUE(C.ok()) << C.status().str();
  Machine M(C->structure(), A.Topo);
  Rng R(GetParam() ^ 0xbc);
  for (int I = 0; I != 6; ++I)
    M.inject(topo::HostH1, toHost(4));
  runCheckingConsistency(M, R);
  auto Check =
      consistency::checkAgainstNes(M.trace(), A.Topo, C->structure());
  EXPECT_TRUE(Check.Correct) << Check.Reason << "\n" << M.trace().str();
  // The cap must have engaged: all renamed events fired in causal order.
  EXPECT_TRUE(M.switchEvents(4).test(3));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineInterleavings,
                         ::testing::Range<uint64_t>(1, 21));
