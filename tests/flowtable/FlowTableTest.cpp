//===- tests/flowtable/FlowTableTest.cpp - Flow table unit tests ----------===//

#include "flowtable/FlowTable.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::flowtable;
using eventnet::netkat::Packet;
using eventnet::netkat::makePacket;

namespace {
FieldId fDst() { return fieldOf("ip_dst"); }
} // namespace

TEST(Match, WildcardMatchesEverything) {
  Match M;
  EXPECT_TRUE(M.isWildcard());
  EXPECT_TRUE(M.matches(makePacket({1, 1}, {})));
  EXPECT_EQ(M.str(), "*");
}

TEST(Match, ExactConstraints) {
  Match M;
  M.require(fDst(), 4);
  M.require(FieldPt, 2);
  EXPECT_TRUE(M.matches(makePacket({1, 2}, {{fDst(), 4}})));
  EXPECT_FALSE(M.matches(makePacket({1, 3}, {{fDst(), 4}})));
  EXPECT_FALSE(M.matches(makePacket({1, 2}, {{fDst(), 5}})));
  // Missing field never matches.
  EXPECT_FALSE(M.matches(makePacket({1, 2}, {})));
}

TEST(Match, RequireOverwrites) {
  Match M;
  M.require(fDst(), 4);
  M.require(fDst(), 5);
  EXPECT_EQ(M.constraints().size(), 1u);
  EXPECT_EQ(M.constraints()[0].second, 5);
}

TEST(Match, Subsumption) {
  Match General;
  General.require(fDst(), 4);
  Match Specific = General;
  Specific.require(FieldPt, 2);
  EXPECT_TRUE(General.subsumes(Specific));
  EXPECT_FALSE(Specific.subsumes(General));
  EXPECT_TRUE(General.subsumes(General));
  EXPECT_TRUE(Match().subsumes(General));
}

TEST(Match, Overlap) {
  Match A, B, C;
  A.require(fDst(), 4);
  B.require(FieldPt, 2);
  C.require(fDst(), 5);
  EXPECT_TRUE(A.overlaps(B));
  EXPECT_FALSE(A.overlaps(C));
  EXPECT_TRUE(A.overlaps(Match()));
}

TEST(Actions, NormalizeCollapsesLastWrite) {
  ActionSeq A = normalizeActionSeq({{fDst(), 1}, {FieldPt, 2}, {fDst(), 3}});
  ASSERT_EQ(A.size(), 2u);
  // Sorted by field: pt (1) before ip_dst.
  EXPECT_EQ(A[0].first, FieldPt);
  EXPECT_EQ(A[1].second, 3);
}

TEST(Actions, ApplyWritesFields) {
  Packet P = makePacket({1, 2}, {{fDst(), 4}});
  Packet Q = applyActionSeq(normalizeActionSeq({{FieldPt, 9}}), P);
  EXPECT_EQ(Q.pt(), 9u);
  EXPECT_EQ(Q.get(fDst()), 4);
}

TEST(Table, FirstMatchWins) {
  Table T;
  Rule Hi;
  Hi.Priority = 10;
  Hi.Pattern.require(fDst(), 4);
  Hi.Actions = {normalizeActionSeq({{FieldPt, 1}})};
  Rule Lo;
  Lo.Priority = 1;
  Lo.Actions = {normalizeActionSeq({{FieldPt, 3}})};
  T.add(Lo);
  T.add(Hi);

  Packet P = makePacket({1, 2}, {{fDst(), 4}});
  auto Out = T.apply(P);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].pt(), 1u);

  Packet Q = makePacket({1, 2}, {{fDst(), 5}});
  Out = T.apply(Q);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].pt(), 3u);
}

TEST(Table, MissDrops) {
  Table T;
  Rule R;
  R.Priority = 5;
  R.Pattern.require(fDst(), 4);
  R.Actions = {ActionSeq{}};
  T.add(R);
  EXPECT_TRUE(T.apply(makePacket({1, 1}, {{fDst(), 9}})).empty());
  EXPECT_EQ(T.lookup(makePacket({1, 1}, {{fDst(), 9}})), nullptr);
}

TEST(Table, ExplicitDropRule) {
  Table T;
  Rule DropR;
  DropR.Priority = 10;
  DropR.Pattern.require(fDst(), 4);
  Rule Fwd;
  Fwd.Priority = 1;
  Fwd.Actions = {normalizeActionSeq({{FieldPt, 1}})};
  T.add(DropR);
  T.add(Fwd);
  EXPECT_TRUE(T.apply(makePacket({1, 2}, {{fDst(), 4}})).empty());
  EXPECT_EQ(T.apply(makePacket({1, 2}, {{fDst(), 5}})).size(), 1u);
}

TEST(Table, MulticastActions) {
  Table T;
  Rule R;
  R.Priority = 1;
  R.Actions = {normalizeActionSeq({{FieldPt, 1}}),
               normalizeActionSeq({{FieldPt, 3}})};
  T.add(R);
  auto Out = T.apply(makePacket({1, 2}, {}));
  EXPECT_EQ(Out.size(), 2u);
}

TEST(Table, StablePriorityOrder) {
  Table T;
  Rule A, B;
  A.Priority = B.Priority = 5;
  A.Pattern.require(fDst(), 4);
  A.Actions = {normalizeActionSeq({{FieldPt, 1}})};
  B.Actions = {normalizeActionSeq({{FieldPt, 2}})};
  T.add(A);
  T.add(B); // equal priority: insertion order preserved
  auto Out = T.apply(makePacket({1, 2}, {{fDst(), 4}}));
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].pt(), 1u);
}

TEST(Table, RemoveShadowed) {
  Table T;
  Rule General;
  General.Priority = 10;
  General.Actions = {ActionSeq{}};
  Rule Specific;
  Specific.Priority = 5;
  Specific.Pattern.require(fDst(), 4);
  Specific.Actions = {normalizeActionSeq({{FieldPt, 1}})};
  T.add(General);
  T.add(Specific);
  EXPECT_EQ(T.removeShadowed(), 1u);
  EXPECT_EQ(T.size(), 1u);
}
