//===- tests/nes/FromEtsTest.cpp - ETS to NES conversion tests ------------===//

#include "nes/FromEts.h"

#include "apps/Programs.h"
#include "ets/Ets.h"
#include "stateful/Parser.h"
#include "topo/Builders.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::nes;
using eventnet::ets::Edge;
using eventnet::ets::Ets;
using eventnet::stateful::LitConj;
using eventnet::stateful::StateVec;

namespace {

stateful::SPolRef parse(const std::string &Src) {
  auto R = stateful::parseProgram(Src);
  EXPECT_TRUE(R.ok()) << R.status().str();
  return R->Program;
}

/// Hand-builds an ETS with trivial configurations. \p Edges are (from,
/// to, switch) triples; guards are distinct per switch/port so events
/// stay distinguishable.
Ets makeEts(unsigned NumVerts,
            std::vector<std::tuple<unsigned, unsigned, SwitchId, PortId>>
                EdgeSpecs,
            std::vector<int> ConfigClass = {}) {
  Ets T;
  T.Verts.resize(NumVerts);
  for (unsigned I = 0; I != NumVerts; ++I) {
    T.Verts[I].K = {static_cast<Value>(
        ConfigClass.empty() ? I : ConfigClass[I])};
    // Distinguish configurations via a dummy table keyed by the class.
    flowtable::Table Tab;
    flowtable::Rule R;
    R.Priority = static_cast<int>(
        ConfigClass.empty() ? I + 1 : ConfigClass[I] + 1);
    Tab.add(R);
    T.Verts[I].Config.setTable(1, Tab);
  }
  for (auto [From, To, Sw, Pt] : EdgeSpecs) {
    Edge E;
    E.From = From;
    E.To = To;
    E.Loc = {Sw, Pt};
    T.EdgeList.push_back(E);
  }
  return T;
}

} // namespace

TEST(FromEts, FirewallOneEventTwoSets) {
  auto Built = ets::buildEts(parse(apps::firewallSource()),
                             topo::firewallTopology());
  ASSERT_TRUE(Built.Ok) << Built.Error;
  ConvertResult R = fromEts(Built.T);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.N->numEvents(), 1u);
  EXPECT_EQ(R.N->numSets(), 2u);
  EXPECT_TRUE(R.N->isLocallyDetermined());
  EXPECT_EQ(R.N->event(0).Loc, (Location{4, 1}));
}

TEST(FromEts, BandwidthCapRenamesEvents) {
  auto Built = ets::buildEts(parse(apps::bandwidthCapSource(10)),
                             topo::firewallTopology());
  ASSERT_TRUE(Built.Ok) << Built.Error;
  ConvertResult R = fromEts(Built.T);
  ASSERT_TRUE(R.Ok) << R.Error;
  // Eleven renamed copies of the same phenomenon, twelve event-sets.
  EXPECT_EQ(R.N->numEvents(), 11u);
  EXPECT_EQ(R.N->numSets(), 12u);
  // Renaming indices are the paper's subscripts.
  EXPECT_EQ(R.N->event(0).Eid, 0u);
  EXPECT_EQ(R.N->event(10).Eid, 10u);
  // The chain is causal: e5 is not enabled from scratch.
  EXPECT_FALSE(R.N->enables(DenseBitSet(), 5));
  EXPECT_TRUE(R.N->isLocallyDetermined());
}

TEST(FromEts, DiamondSharedLabelIsOneEvent) {
  // Figure 3(a): v0 -e1-> v1 -e2-> v3 and v0 -e2-> v2 -e1-> v3. The two
  // e1 edges are the same event (same guard/loc, first occurrence).
  Ets T = makeEts(4,
                  {{0, 1, 1, 1}, {1, 3, 2, 1}, {0, 2, 2, 1}, {2, 3, 1, 1}},
                  /*ConfigClass=*/{0, 1, 2, 3});
  ConvertResult R = fromEts(T);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.N->numEvents(), 2u);
  EXPECT_EQ(R.N->numSets(), 4u);
}

TEST(FromEts, ConflictKeepsBranchesApart) {
  // Figure 3(b): v0 -e1-> v1, v0 -e2-> v2, nothing joins them.
  Ets T = makeEts(3, {{0, 1, 7, 1}, {0, 2, 7, 2}});
  ConvertResult R = fromEts(T);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.N->numSets(), 3u);
  DenseBitSet Both;
  Both.set(0);
  Both.set(1);
  EXPECT_FALSE(R.N->con(Both));
}

TEST(FromEts, Figure3cViolatesFiniteCompleteness) {
  // Figure 3(c): v0 -e1-> v1 -e4-> v2 -e3-> v3 and v0 -e3-> v4,
  // v0 -e1-> ... The family contains {e1} and {e3} and an upper bound
  // {e1,e4,e3} but not {e1,e3}.
  Ets T = makeEts(5, {{0, 1, 1, 1},   // e1
                      {1, 2, 2, 1},   // e4
                      {2, 3, 3, 1},   // e3
                      {0, 4, 3, 1}}); // e3 (same label as edge 2->3)
  ConvertResult R = fromEts(T);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("finite-complete"), std::string::npos);
}

TEST(FromEts, UniqueConfigurationViolationDetected) {
  // Diamond whose two e1/e2 orders end in vertices with *different*
  // configurations: same event-set, conflicting g.
  Ets T = makeEts(5,
                  {{0, 1, 1, 1},  // e1
                   {1, 3, 2, 1},  // e2
                   {0, 2, 2, 1},  // e2
                   {2, 4, 1, 1}}, // e1 -> different final vertex
                  /*ConfigClass=*/{0, 1, 2, 3, 4});
  ConvertResult R = fromEts(T);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("two different configurations"), std::string::npos);
}

TEST(FromEts, UniqueConfigurationAllowsEqualConfigs) {
  // Same diamond, but the two final vertices carry equal configurations.
  Ets T = makeEts(5,
                  {{0, 1, 1, 1},
                   {1, 3, 2, 1},
                   {0, 2, 2, 1},
                   {2, 4, 1, 1}},
                  /*ConfigClass=*/{0, 1, 2, 3, 3});
  ConvertResult R = fromEts(T);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.N->numSets(), 4u);
}

TEST(FromEts, PipelineLocalityRejection) {
  // Program P1 (Section 2): packets from H1 race to s2 and s4; only the
  // first receiver may respond. The two events conflict across switches.
  // ETS: v0 -e1-> v1, v0 -e2-> v2 with e1@2:1, e2@4:1.
  Ets T = makeEts(3, {{0, 1, 2, 1}, {0, 2, 4, 1}});
  ConvertResult R = fromEts(T);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.N->isLocallyDetermined());
}
