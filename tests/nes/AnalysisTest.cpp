//===- tests/nes/AnalysisTest.cpp - NES reachability analysis tests -------===//

#include "nes/Analysis.h"

#include "apps/Programs.h"
#include "nes/Pipeline.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::nes;

namespace {

std::map<FieldId, std::vector<Value>> dstTemplate() {
  return {{apps::ipDstField(), {1, 2, 3, 4}}};
}

CompiledProgram compileApp(const apps::App &A) {
  api::Result<CompiledProgram> C = A.Source.empty()
                                       ? compileAst(A.Ast, A.Topo)
                                       : compileSource(A.Source, A.Topo);
  EXPECT_TRUE(C.ok()) << A.Name << ": " << C.status().str();
  return std::move(*C);
}

} // namespace

TEST(Analysis, FirewallInvariants) {
  apps::App A = apps::firewallApp();
  CompiledProgram C = compileApp(A);
  ReachabilityAnalysis R(*C.N, A.Topo, dstTemplate());

  // Outgoing traffic always works; incoming only after the event.
  EXPECT_TRUE(R.alwaysReaches(topo::HostH1, topo::HostH4));
  EXPECT_FALSE(R.canReach(C.N->emptySet(), topo::HostH4, topo::HostH1));
  EXPECT_FALSE(R.neverReaches(topo::HostH4, topo::HostH1));
  EXPECT_EQ(R.reachableSets(topo::HostH4, topo::HostH1).size(), 1u);
}

TEST(Analysis, AuthenticationStagesAreExclusive) {
  apps::App A = apps::authenticationApp();
  CompiledProgram C = compileApp(A);
  ReachabilityAnalysis R(*C.N, A.Topo, dstTemplate());

  // Exactly one knock target reachable per stage.
  EXPECT_TRUE(R.canReach(0, topo::HostH4, topo::HostH1));
  EXPECT_FALSE(R.canReach(0, topo::HostH4, topo::HostH2));
  EXPECT_FALSE(R.canReach(0, topo::HostH4, topo::HostH3));
  // H3 is reachable only in the final event-set.
  auto Sets = R.reachableSets(topo::HostH4, topo::HostH3);
  ASSERT_EQ(Sets.size(), 1u);
  EXPECT_EQ(C.N->setBits(Sets[0]).count(), 2u);
}

TEST(Analysis, IdsCutsOffH3Eventually) {
  apps::App A = apps::idsApp();
  CompiledProgram C = compileApp(A);
  ReachabilityAnalysis R(*C.N, A.Topo, dstTemplate());

  // H3 reachable in every event-set except the final one.
  auto Sets = R.reachableSets(topo::HostH4, topo::HostH3);
  EXPECT_EQ(Sets.size(), C.N->numSets() - 1);
  // Internal hosts can always answer H4.
  EXPECT_TRUE(R.alwaysReaches(topo::HostH1, topo::HostH4));
}

TEST(Analysis, BandwidthCapMonotone) {
  apps::App A = apps::bandwidthCapApp(4);
  CompiledProgram C = compileApp(A);
  ReachabilityAnalysis R(*C.N, A.Topo, dstTemplate());

  EXPECT_TRUE(R.alwaysReaches(topo::HostH1, topo::HostH4));
  // Incoming reachable in all but the final (cap) event-set.
  auto Sets = R.reachableSets(topo::HostH4, topo::HostH1);
  EXPECT_EQ(Sets.size(), C.N->numSets() - 1);
}

TEST(Analysis, StrDumpMentionsEverySet) {
  apps::App A = apps::firewallApp();
  CompiledProgram C = compileApp(A);
  ReachabilityAnalysis R(*C.N, A.Topo, dstTemplate());
  std::string S = R.str();
  EXPECT_NE(S.find("E0"), std::string::npos);
  EXPECT_NE(S.find("E1"), std::string::npos);
  EXPECT_NE(S.find("H1->H4"), std::string::npos);
}
