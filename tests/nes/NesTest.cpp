//===- tests/nes/NesTest.cpp - Event structure semantics tests ------------===//

#include "nes/Nes.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::nes;
using eventnet::netkat::Event;

namespace {

Event eventAt(SwitchId Sw, PortId Pt) {
  Event E;
  E.Guard = netkat::pTrue();
  E.Loc = {Sw, Pt};
  return E;
}

DenseBitSet bits(std::initializer_list<unsigned> Xs) {
  DenseBitSet S;
  for (unsigned X : Xs)
    S.set(X);
  return S;
}

/// An NES with an explicit family; configurations are all-empty (the
/// tests here only exercise the event-structure layer).
Nes makeNes(std::vector<Event> Events, std::vector<DenseBitSet> Family) {
  std::vector<topo::Configuration> Configs(Family.size());
  std::vector<stateful::StateVec> States(Family.size(), {0});
  return Nes(std::move(Events), std::move(Family), std::move(Configs),
             std::move(States));
}

} // namespace

TEST(Nes, DiamondConAndEnabling) {
  // Figure 3(a): e1 and e2 independent.
  Nes N = makeNes({eventAt(1, 1), eventAt(2, 1)},
                  {bits({}), bits({0}), bits({1}), bits({0, 1})});
  EXPECT_TRUE(N.con(bits({})));
  EXPECT_TRUE(N.con(bits({0})));
  EXPECT_TRUE(N.con(bits({0, 1})));
  EXPECT_TRUE(N.enables(bits({}), 0));
  EXPECT_TRUE(N.enables(bits({}), 1));
  EXPECT_TRUE(N.enables(bits({0}), 1));

  auto Seqs = N.allowedSequences();
  // {}, e0, e1, e0e1, e1e0.
  EXPECT_EQ(Seqs.size(), 5u);
  EXPECT_TRUE(N.minimallyInconsistentSets().empty());
  EXPECT_TRUE(N.isLocallyDetermined());
}

TEST(Nes, ConflictConAndLocality) {
  // Figure 3(b): e1 and e2 conflict. Same switch -> locally determined.
  Nes Local = makeNes({eventAt(7, 1), eventAt(7, 2)},
                      {bits({}), bits({0}), bits({1})});
  EXPECT_FALSE(Local.con(bits({0, 1})));
  auto Mins = Local.minimallyInconsistentSets();
  ASSERT_EQ(Mins.size(), 1u);
  EXPECT_EQ(Mins[0], bits({0, 1}));
  EXPECT_TRUE(Local.isLocallyDetermined());

  // Program P1 (Section 2): the conflicting events happen at different
  // switches -> not locally determined.
  Nes NonLocal = makeNes({eventAt(2, 1), eventAt(4, 1)},
                         {bits({}), bits({0}), bits({1})});
  EXPECT_FALSE(NonLocal.isLocallyDetermined());
}

TEST(Nes, ProgramP2IsLocal) {
  // Program P2: both events at switch 2 (packets from H1 and H3).
  Nes N = makeNes({eventAt(2, 1), eventAt(2, 3)},
                  {bits({}), bits({0}), bits({1})});
  EXPECT_TRUE(N.isLocallyDetermined());
}

TEST(Nes, ChainEnablement) {
  // e0 enables e1 enables e2 (authentication shape).
  Nes N = makeNes({eventAt(1, 1), eventAt(2, 1), eventAt(3, 1)},
                  {bits({}), bits({0}), bits({0, 1}), bits({0, 1, 2})});
  EXPECT_TRUE(N.enables(bits({}), 0));
  EXPECT_FALSE(N.enables(bits({}), 1));
  EXPECT_FALSE(N.enables(bits({}), 2));
  EXPECT_TRUE(N.enables(bits({0}), 1));
  EXPECT_FALSE(N.enables(bits({0}), 2));
  EXPECT_TRUE(N.enables(bits({0, 1}), 2));

  // Enabling is monotone in the first argument (Definition 3).
  EXPECT_TRUE(N.enables(bits({0, 1}), 1) || true); // e already in X is
  // not asked by the runtime, but enabledEvents must skip members:
  auto En = N.enabledEvents(bits({0}));
  ASSERT_EQ(En.size(), 1u);
  EXPECT_EQ(En[0], 1u);

  auto Seqs = N.allowedSequences();
  // Prefixes of e0 e1 e2 only.
  EXPECT_EQ(Seqs.size(), 4u);
}

TEST(Nes, ConIsDownwardClosed) {
  Nes N = makeNes({eventAt(1, 1), eventAt(2, 1), eventAt(3, 1)},
                  {bits({}), bits({0}), bits({0, 1}), bits({0, 1, 2})});
  // Subsets of consistent sets are consistent even when not event-sets.
  EXPECT_TRUE(N.con(bits({1})));
  EXPECT_TRUE(N.con(bits({2})));
  EXPECT_TRUE(N.con(bits({1, 2})));
  EXPECT_FALSE(N.setIndex(bits({1, 2})).has_value());
}

TEST(Nes, SetIndexRoundTrip) {
  Nes N = makeNes({eventAt(1, 1)}, {bits({}), bits({0})});
  EXPECT_EQ(N.numSets(), 2u);
  auto Empty = N.setIndex(bits({}));
  ASSERT_TRUE(Empty.has_value());
  EXPECT_EQ(*Empty, N.emptySet());
  auto Full = N.setIndex(bits({0}));
  ASSERT_TRUE(Full.has_value());
  EXPECT_EQ(N.setBits(*Full), bits({0}));
}

TEST(Nes, MinimallyInconsistentExcludesSupersets) {
  // Three events, any two are fine, all three are not.
  Nes N = makeNes({eventAt(5, 1), eventAt(5, 2), eventAt(5, 3)},
                  {bits({}), bits({0}), bits({1}), bits({2}), bits({0, 1}),
                   bits({0, 2}), bits({1, 2})});
  auto Mins = N.minimallyInconsistentSets();
  ASSERT_EQ(Mins.size(), 1u);
  EXPECT_EQ(Mins[0], bits({0, 1, 2}));
  EXPECT_TRUE(N.isLocallyDetermined());
}
