//===- tests/nes/PipelineTest.cpp - End-to-end compiler tests -------------===//

#include "nes/Pipeline.h"

#include "apps/Programs.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::nes;

TEST(Pipeline, FirewallCompiles) {
  api::Result<CompiledProgram> C =
      compileSource(apps::firewallSource(), topo::firewallTopology());
  ASSERT_TRUE(C.ok()) << C.status().str();
  EXPECT_EQ(C->N->numEvents(), 1u);
  EXPECT_EQ(C->N->numSets(), 2u);
  EXPECT_GT(C->CompileSeconds, 0);
  EXPECT_EQ(C->Bindings.at("H4"), 4);
}

TEST(Pipeline, AllCaseStudiesCompile) {
  struct Expect {
    unsigned Events, Sets;
  };
  std::vector<apps::App> Apps = apps::caseStudyApps();
  std::vector<Expect> Want = {
      {1, 2},   // firewall
      {1, 2},   // learning switch
      {2, 3},   // authentication
      {11, 12}, // bandwidth cap (n = 10)
      {2, 3},   // ids
  };
  ASSERT_EQ(Apps.size(), Want.size());
  for (size_t I = 0; I != Apps.size(); ++I) {
    api::Result<CompiledProgram> C =
        compileSource(Apps[I].Source, Apps[I].Topo);
    ASSERT_TRUE(C.ok()) << Apps[I].Name << ": " << C.status().str();
    EXPECT_EQ(C->N->numEvents(), Want[I].Events) << Apps[I].Name;
    EXPECT_EQ(C->N->numSets(), Want[I].Sets) << Apps[I].Name;
    EXPECT_TRUE(C->N->isLocallyDetermined()) << Apps[I].Name;
    EXPECT_GT(C->Ets.vertices()[0].Config.totalRules(), 0u)
        << Apps[I].Name;
  }
}

TEST(Pipeline, RingCompilesAcrossDiameters) {
  for (unsigned D = 1; D <= 4; ++D) {
    apps::App A = apps::ringApp(2 * D >= 3 ? 2 * D : 3, D);
    api::Result<CompiledProgram> C = compileAst(A.Ast, A.Topo);
    ASSERT_TRUE(C.ok()) << "diameter " << D << ": " << C.status().str();
    EXPECT_EQ(C->N->numEvents(), 1u);
    EXPECT_EQ(C->N->numSets(), 2u);
  }
}

TEST(Pipeline, ParseErrorSurfaces) {
  api::Result<CompiledProgram> C =
      compileSource("pt=@", topo::firewallTopology());
  EXPECT_FALSE(C.ok());
  EXPECT_EQ(C.status().code(), api::Code::ParseError);
  EXPECT_NE(C.status().str().find("parse-error"), std::string::npos);
}

TEST(Pipeline, SameSwitchConflictIsLocal) {
  // Program P2's shape (Section 2): two conflicting events, both
  // *detected at the same switch* (both links end at s4), so the program
  // is locally determined and compiles.
  std::string Src = R"(
let H2 = 2;
let H4 = 4;
state=[0] and pt=2 and ip_dst=H2; pt<-1; (1:1)->(4:1)<state<-[1]>; pt<-2
+ state=[0] and pt=2 and ip_dst=H4; pt<-3; (2:1)->(4:3)<state<-[2]>; pt<-2
)";
  topo::Topology T;
  T.addBiLink({1, 1}, {4, 1});
  T.addBiLink({2, 1}, {4, 3});
  T.attachHost(1, {1, 2});
  T.attachHost(2, {2, 2});
  T.attachHost(4, {4, 2});

  api::Result<CompiledProgram> C =
      compileSource(Src, T, /*RequireLocal=*/true);
  ASSERT_TRUE(C.ok()) << C.status().str();
  EXPECT_EQ(C->N->numEvents(), 2u);
  EXPECT_FALSE(C->N->minimallyInconsistentSets().empty());
  EXPECT_TRUE(C->N->isLocallyDetermined());
}

TEST(Pipeline, GenuinelyNonLocalProgramRejected) {
  // Events detected at switches 2 and 3 respectively, conflicting.
  std::string Src = R"(
state=[0]; pt=2; pt<-1; (1:1)->(2:1)<state<-[1]>; pt<-2
+ state=[0]; pt=3; pt<-4; (1:4)->(3:1)<state<-[2]>; pt<-2
)";
  topo::Topology T;
  T.addBiLink({1, 1}, {2, 1});
  T.addBiLink({1, 4}, {3, 1});
  T.attachHost(1, {1, 2});
  T.attachHost(2, {2, 2});
  T.attachHost(3, {3, 2});

  api::Result<CompiledProgram> Strict =
      compileSource(Src, T, /*RequireLocal=*/true);
  EXPECT_FALSE(Strict.ok());
  EXPECT_EQ(Strict.status().code(), api::Code::CompileError);
  EXPECT_NE(Strict.status().message().find("locally determined"),
            std::string::npos);

  api::Result<CompiledProgram> Lax =
      compileSource(Src, T, /*RequireLocal=*/false);
  ASSERT_TRUE(Lax.ok()) << Lax.status().str();
  EXPECT_FALSE(Lax->N->isLocallyDetermined());
}
