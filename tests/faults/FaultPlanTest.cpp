//===- tests/faults/FaultPlanTest.cpp - Plan parsing and decisions --------===//
//
// The deterministic core of the fault harness in isolation: JSON
// round-trips, loud rejection of malformed plans, content-addressed
// decision stability, and byte-stable canonical ledgers.
//
//===----------------------------------------------------------------------===//

#include "faults/FaultPlan.h"
#include "faults/Injector.h"

#include "sim/Wire.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

using namespace eventnet;
using namespace eventnet::faults;

namespace {

FaultPlan samplePlan() {
  FaultPlan P;
  P.Seed = 42;
  P.Links.push_back({3, 1, 0.25, 0.1, 0.05, 10, 100});
  P.Links.push_back({-1, -1, 0.0, 0.0, 0.5, 0, -1});
  P.Stalls.push_back({2, 32, 150});
  P.QueueCapacityClamp = 16;
  P.CtrlStormRepeat = 3;
  P.DelayPolls = 48;
  P.DelayExtraSec = 0.002;
  return P;
}

} // namespace

TEST(FaultPlan, JsonRoundTrip) {
  FaultPlan P = samplePlan();
  std::string Text = P.json();
  api::Result<FaultPlan> Q = FaultPlan::fromJson(Text);
  ASSERT_TRUE(Q.ok()) << Q.status().str();
  EXPECT_EQ(Q->json(), Text);
  EXPECT_EQ(Q->Seed, 42u);
  ASSERT_EQ(Q->Links.size(), 2u);
  EXPECT_EQ(Q->Links[0].Sw, 3);
  EXPECT_EQ(Q->Links[0].Pt, 1);
  EXPECT_DOUBLE_EQ(Q->Links[0].DropP, 0.25);
  EXPECT_EQ(Q->Links[0].FromSeq, 10);
  EXPECT_EQ(Q->Links[0].ToSeq, 100);
  EXPECT_EQ(Q->Links[1].Sw, -1);
  ASSERT_EQ(Q->Stalls.size(), 1u);
  EXPECT_EQ(Q->Stalls[0].Shard, 2);
  EXPECT_EQ(Q->Stalls[0].EveryBatches, 32u);
  EXPECT_EQ(Q->Stalls[0].StallUs, 150u);
  EXPECT_EQ(Q->QueueCapacityClamp, 16u);
  EXPECT_EQ(Q->CtrlStormRepeat, 3u);
  EXPECT_EQ(Q->DelayPolls, 48u);
  EXPECT_DOUBLE_EQ(Q->DelayExtraSec, 0.002);
  EXPECT_TRUE(Q->enabled());
}

TEST(FaultPlan, DefaultPlanIsDisabled) {
  FaultPlan P;
  EXPECT_FALSE(P.enabled());
  api::Result<FaultPlan> Q = FaultPlan::fromJson("{}");
  ASSERT_TRUE(Q.ok()) << Q.status().str();
  EXPECT_FALSE(Q->enabled());
}

TEST(FaultPlan, UnknownKeysAreRejected) {
  // Typos in a chaos plan must fail loudly, not silently test nothing.
  for (const char *Text :
       {"{\"sead\": 3}", "{\"links\": [{\"drpo_p\": 0.5}]}",
        "{\"stalls\": [{\"shards\": 1}]}"}) {
    api::Result<FaultPlan> Q = FaultPlan::fromJson(Text);
    ASSERT_FALSE(Q.ok()) << Text;
    EXPECT_EQ(Q.status().code(), api::Code::InvalidArgument) << Text;
    EXPECT_NE(Q.status().message().find("unknown"), std::string::npos)
        << Q.status().str();
  }
}

TEST(FaultPlan, MalformedPlansAreRejected) {
  for (const char *Text :
       {"", "[1,2]", "{\"seed\": }", "{\"links\": [{\"drop_p\": 1.5}]}",
        "{\"links\": [{\"dup_p\": -0.1}]}", "{\"delay_extra_sec\": -1}",
        "{\"stalls\": [{\"every_batches\": 0}]}"}) {
    api::Result<FaultPlan> Q = FaultPlan::fromJson(Text);
    EXPECT_FALSE(Q.ok()) << "accepted: " << Text;
  }
}

TEST(FaultPlan, FromFileMissingIsIoError) {
  api::Result<FaultPlan> Q = FaultPlan::fromFile("/nonexistent/plan.json");
  ASSERT_FALSE(Q.ok());
  EXPECT_EQ(Q.status().code(), api::Code::IoError);
}

TEST(FaultPlan, LinkRuleMatchingAndWindows) {
  LinkRule R{3, 1, 0.5, 0, 0, 10, 20};
  EXPECT_TRUE(R.matchesSite(3, 1));
  EXPECT_FALSE(R.matchesSite(3, 2));
  EXPECT_FALSE(R.matchesSite(4, 1));
  EXPECT_TRUE(R.inWindow(10));
  EXPECT_TRUE(R.inWindow(19));
  EXPECT_FALSE(R.inWindow(9));
  EXPECT_FALSE(R.inWindow(20));

  LinkRule Wild; // all defaults: every site, always in window
  Wild.DropP = 1.0;
  EXPECT_TRUE(Wild.matchesSite(7, 7));
  EXPECT_TRUE(Wild.inWindow(0));
  EXPECT_TRUE(Wild.inWindow(1 << 30));
}

TEST(Injector, DecisionsAreContentAddressed) {
  FaultPlan P;
  P.Seed = 9;
  P.Links.push_back({-1, -1, 0.3, 0.3, 0.3, 0, -1});
  Injector A(P), B(P);

  // Same plan, same site, same packet => same verdict, across instances
  // and across repeated queries (no hidden state).
  std::map<int, Action> Verdicts;
  for (int Seq = 0; Seq != 200; ++Seq) {
    netkat::Packet Pkt = sim::makeWireHeader(1, 4, sim::KindData, Seq);
    Action VA = A.decide(2, 1, Pkt);
    EXPECT_EQ(VA, B.decide(2, 1, Pkt)) << "seq " << Seq;
    EXPECT_EQ(VA, A.decide(2, 1, Pkt)) << "seq " << Seq;
    Verdicts[Seq] = VA;
  }
  // With 30%/30%/30% rates over 200 packets, every verdict (including
  // None) appears; a degenerate all-None hash would be a bug.
  int Counts[4] = {0, 0, 0, 0};
  for (auto &[Seq, V] : Verdicts)
    ++Counts[static_cast<int>(V)];
  EXPECT_GT(Counts[static_cast<int>(Action::None)], 0);
  EXPECT_GT(Counts[static_cast<int>(Action::Drop)], 0);
  EXPECT_GT(Counts[static_cast<int>(Action::Dup)], 0);
  EXPECT_GT(Counts[static_cast<int>(Action::Delay)], 0);

  // A different seed reshuffles the verdicts.
  FaultPlan P2 = P;
  P2.Seed = 10;
  Injector C(P2);
  bool AnyDiffer = false;
  for (int Seq = 0; Seq != 200; ++Seq) {
    netkat::Packet Pkt = sim::makeWireHeader(1, 4, sim::KindData, Seq);
    AnyDiffer |= C.decide(2, 1, Pkt) != Verdicts[Seq];
  }
  EXPECT_TRUE(AnyDiffer);
}

TEST(Injector, SiteScopingAndArming) {
  FaultPlan P;
  P.Seed = 5;
  P.Links.push_back({3, -1, 1.0, 0, 0, 0, -1}); // drop everything at sw 3
  Injector I(P);

  netkat::Packet Pkt = sim::makeWireHeader(1, 4, sim::KindData, 1);
  EXPECT_EQ(I.decide(3, 1, Pkt), Action::Drop);
  EXPECT_EQ(I.decide(3, 9, Pkt), Action::Drop);
  EXPECT_EQ(I.decide(4, 1, Pkt), Action::None);

  EXPECT_TRUE(I.armsSwitch(3));
  EXPECT_FALSE(I.armsSwitch(4));
  EXPECT_TRUE(I.hasLinkRules());

  const StallRule *S = I.stallFor(0);
  EXPECT_EQ(S, nullptr);
}

TEST(Injector, StallRuleResolution) {
  FaultPlan P;
  P.Stalls.push_back({1, 8, 50});
  P.Stalls.push_back({-1, 16, 100});
  Injector I(P);
  ASSERT_NE(I.stallFor(1), nullptr);
  EXPECT_EQ(I.stallFor(1)->EveryBatches, 8u); // first match wins
  ASSERT_NE(I.stallFor(0), nullptr);
  EXPECT_EQ(I.stallFor(0)->EveryBatches, 16u); // wildcard fallback
}

TEST(FaultLedger, CanonicalIsSortedAndStable) {
  netkat::Packet A = sim::makeWireHeader(1, 4, sim::KindData, 7);
  netkat::Packet B = sim::makeWireHeader(4, 1, sim::KindReply, 3);

  FaultLedger L1, L2;
  L1.Records.push_back(Injector::recordAt(FaultKind::Drop, 2, 1, A));
  L1.Records.push_back(Injector::recordAt(FaultKind::Dup, 3, 2, B));
  // Same multiset, opposite insertion order (as different thread
  // interleavings would produce).
  L2.Records.push_back(Injector::recordAt(FaultKind::Dup, 3, 2, B));
  L2.Records.push_back(Injector::recordAt(FaultKind::Drop, 2, 1, A));

  EXPECT_EQ(L1.canonical(), L2.canonical());
  EXPECT_NE(L1.canonical().find("drop"), std::string::npos);
  EXPECT_NE(L1.canonical().find("dup"), std::string::npos);

  FaultLedger Empty;
  EXPECT_TRUE(Empty.empty());
  EXPECT_EQ(Empty.canonical(), "");
}
