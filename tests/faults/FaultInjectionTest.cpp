//===- tests/faults/FaultInjectionTest.cpp - Faults end to end ------------===//
//
// The harness acceptance tests: injected drops/dups/delays are counted
// and ledgered on both substrates, the ledger is byte-identical across
// repeat runs and shard counts, the Definition 6 checker passes exactly
// when the ledger excuses the damage, and the overload policies keep the
// accounting airtight (delivered + dropped == injected, silent loss 0)
// even with queue capacities clamped to nearly nothing.
//
//===----------------------------------------------------------------------===//

#include "faults/FaultPlan.h"
#include "faults/Injector.h"

#include "api/Api.h"
#include "apps/Programs.h"
#include "consistency/Check.h"
#include "engine/Engine.h"
#include "engine/TrafficGen.h"

#include <gtest/gtest.h>

#include <memory>

using namespace eventnet;

namespace {

api::Result<api::Compilation> compileFirewall() {
  return api::compile(api::CompileOptions()
                          .programSource(apps::firewallSource())
                          .topology(topo::firewallTopology()));
}

std::shared_ptr<faults::FaultPlan> linkPlan(uint64_t Seed, double DropP,
                                            double DupP, double DelayP) {
  auto P = std::make_shared<faults::FaultPlan>();
  P->Seed = Seed;
  P->Links.push_back({-1, -1, DropP, DupP, DelayP, 0, -1});
  return P;
}

} // namespace

class FaultBackends : public ::testing::TestWithParam<const char *> {};

TEST_P(FaultBackends, InjectedFaultsAreCountedAndExcused) {
  api::Result<api::Compilation> C = compileFirewall();
  ASSERT_TRUE(C.ok()) << C.status().str();

  api::Result<api::RunReport> R =
      api::run(*C, GetParam(),
               api::RunOptions().seed(3).phases(8).pingsPerPhase(4).faults(
                   linkPlan(7, 0.08, 0.08, 0.1)));
  ASSERT_TRUE(R.ok()) << R.status().str();

  EXPECT_TRUE(R->Faults.Enabled);
  // With ~26% total fault probability over dozens of link crossings,
  // every content-addressed fault type fires for this (seed, workload).
  EXPECT_GT(R->Faults.Drops + R->Faults.Dups + R->Faults.Delays, 0u);
  EXPECT_EQ(R->Faults.LedgerEntries,
            R->Faults.Drops + R->Faults.Dups + R->Faults.Delays);
  EXPECT_FALSE(R->Faults.Ledger.empty());

  // Injected damage is excused, not silent: the audit stays clean and
  // the checker accepts the surviving trace.
  EXPECT_TRUE(R->Audit.Ok) << R->Audit.SilentLoss << " silently lost";
  ASSERT_TRUE(R->Checked);
  EXPECT_TRUE(R->Consistency.Correct) << R->Consistency.Reason;

  // The report renders the fault block in both formats.
  EXPECT_NE(R->str().find("faults:"), std::string::npos);
  EXPECT_NE(R->json().find("\"faults\": {\"enabled\": true"),
            std::string::npos);
}

TEST_P(FaultBackends, LedgerIsByteIdenticalAcrossRepeatRuns) {
  api::Result<api::Compilation> C = compileFirewall();
  ASSERT_TRUE(C.ok()) << C.status().str();

  // Drop/dup/delay decisions are pure functions of (plan seed, site,
  // packet content), so two runs — whatever the thread interleavings —
  // must produce the same canonical ledger bytes.
  api::RunOptions O;
  O.seed(11).phases(6).pingsPerPhase(4).faults(linkPlan(21, 0.1, 0.1, 0.1));
  api::Result<api::RunReport> A = api::run(*C, GetParam(), O);
  api::Result<api::RunReport> B = api::run(*C, GetParam(), O);
  ASSERT_TRUE(A.ok() && B.ok());
  EXPECT_GT(A->Faults.LedgerEntries, 0u);
  EXPECT_EQ(A->Faults.Ledger, B->Faults.Ledger);
}

INSTANTIATE_TEST_SUITE_P(Backends, FaultBackends,
                         ::testing::Values("engine", "sim"));

TEST(FaultInjection, LedgerAgreesAcrossSubstratesAndShardCounts) {
  api::Result<api::Compilation> C = compileFirewall();
  ASSERT_TRUE(C.ok()) << C.status().str();

  api::RunOptions O;
  O.seed(5).phases(6).pingsPerPhase(4).faults(linkPlan(13, 0.1, 0.1, 0.1));

  api::Result<api::RunReport> Sim = api::run(*C, "sim", O);
  ASSERT_TRUE(Sim.ok()) << Sim.status().str();

  // Link-fault verdicts are content-addressed, independent of substrate
  // and of where switches are placed: every configuration produces the
  // identical ledger.
  for (unsigned Shards : {1u, 2u, 4u}) {
    api::RunOptions OE = O;
    OE.shards(Shards);
    api::Result<api::RunReport> Eng = api::run(*C, "engine", OE);
    ASSERT_TRUE(Eng.ok()) << Eng.status().str();
    EXPECT_EQ(Eng->Faults.Ledger, Sim->Faults.Ledger)
        << "shards=" << Shards;
  }
}

TEST(FaultInjection, UnledgeredTruncationStillFails) {
  // The point of the ledger: the checker excuses exactly the damage the
  // plan owns. Discarding the ledger turns the same faulted trace into a
  // Definition 6 violation (a chain ends where the configuration says it
  // must continue).
  api::Result<api::Compilation> C = compileFirewall();
  ASSERT_TRUE(C.ok()) << C.status().str();

  api::Result<api::RunReport> R =
      api::run(*C, "engine",
               api::RunOptions().seed(3).phases(8).pingsPerPhase(4).faults(
                   linkPlan(7, 0.2, 0.0, 0.0)));
  ASSERT_TRUE(R.ok()) << R.status().str();
  ASSERT_GT(R->Faults.Drops, 0u);
  ASSERT_TRUE(R->Checked);
  EXPECT_TRUE(R->Consistency.Correct) << R->Consistency.Reason;

  auto Naked = consistency::checkAgainstNes(R->Trace, C->topology(),
                                            C->structure());
  EXPECT_FALSE(Naked.Correct);
}

TEST(FaultInjection, MachineBackendRejectsPlans) {
  api::Result<api::Compilation> C = compileFirewall();
  ASSERT_TRUE(C.ok()) << C.status().str();
  api::Result<api::RunReport> R = api::run(
      *C, "machine",
      api::RunOptions().faults(linkPlan(1, 0.1, 0.0, 0.0)));
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), api::Code::InvalidArgument);
}

TEST(FaultInjection, UnknownOverloadPolicyIsInvalidArgument) {
  api::Result<api::Compilation> C = compileFirewall();
  ASSERT_TRUE(C.ok()) << C.status().str();
  api::Result<api::RunReport> R =
      api::run(*C, "engine", api::RunOptions().overload("spill-to-disk"));
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), api::Code::InvalidArgument);
  EXPECT_NE(R.status().message().find("spill-to-disk"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Overload policies under a clamped queue (the graceful-degradation half)
//===----------------------------------------------------------------------===//

class OverloadPolicies
    : public ::testing::TestWithParam<engine::OverloadPolicy> {};

TEST_P(OverloadPolicies, ClampedQueuesKeepExactAccounting) {
  // Queue capacity clamped to 2 via the plan while bulk traffic slams
  // the ring: whatever the policy does — block losslessly or shed with
  // tickets — every injected packet must end as a delivery or a counted
  // drop. Silent loss is the one unacceptable outcome.
  apps::App A = apps::ringApp(6, 3);
  api::Result<api::Compilation> C = api::compile(
      api::CompileOptions().programAst(A.Ast).topology(A.Topo));
  ASSERT_TRUE(C.ok()) << C.status().str();

  faults::FaultPlan Plan;
  Plan.Seed = 3;
  Plan.QueueCapacityClamp = 2;
  faults::Injector Inj(Plan);

  engine::EngineConfig Cfg;
  Cfg.NumShards = 3;
  Cfg.Overload = GetParam();
  Cfg.Faults = &Inj;
  engine::Engine E(C->structure(), A.Topo, Cfg);

  engine::TrafficGen G(A.Topo, 17);
  engine::Workload W = G.bulk(topo::HostH1, topo::HostH2, 200, 100);
  W += G.probe(topo::HostH1, topo::HostH2); // transition under pressure
  W += G.bulk(topo::HostH1, topo::HostH2, 200, 100);
  E.run(W);

  engine::Stats S = E.stats();
  EXPECT_EQ(S.PacketsInjected, 401u);
  EXPECT_EQ(S.PacketsDelivered + S.PacketsDropped, S.PacketsInjected)
      << "delivered " << S.PacketsDelivered << " + dropped "
      << S.PacketsDropped << " != injected (silent loss)";

  uint64_t ShardShed = 0;
  for (const engine::ShardStats &SS : S.Shards)
    ShardShed += SS.Shed;
  EXPECT_EQ(ShardShed, S.FaultSheds);
  if (GetParam() == engine::OverloadPolicy::Block) {
    // Block is lossless: bounded backoff then unbounded spill.
    EXPECT_EQ(S.FaultSheds, 0u);
    EXPECT_EQ(S.PacketsDelivered, 401u);
  } else {
    // The shedding policies must actually engage at this capacity.
    EXPECT_GT(S.FaultSheds, 0u);
    EXPECT_EQ(S.PacketsDropped, S.FaultSheds);
  }

  // Shed tickets excuse the truncated chains: Definition 6 still holds
  // on the surviving trace.
  faults::FaultLedger L = E.takeFaultLedger();
  consistency::FaultContext Ctx;
  Ctx.ExcusedEntries = std::move(L.ExcusedEntries);
  Ctx.DupEntries = std::move(L.DupEntries);
  auto R = consistency::checkAgainstNes(E.trace(), A.Topo, C->structure(),
                                        &Ctx);
  EXPECT_TRUE(R.Correct) << R.Reason;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, OverloadPolicies,
    ::testing::Values(engine::OverloadPolicy::Block,
                      engine::OverloadPolicy::ShedOldest,
                      engine::OverloadPolicy::ShedNewest),
    [](const ::testing::TestParamInfo<engine::OverloadPolicy> &I) {
      std::string N = engine::overloadPolicyName(I.param);
      for (char &C : N)
        if (C == '-')
          C = '_';
      return N;
    });

TEST(FaultInjection, OverloadPolicyNamesRoundTrip) {
  using engine::OverloadPolicy;
  for (OverloadPolicy P :
       {OverloadPolicy::Block, OverloadPolicy::ShedOldest,
        OverloadPolicy::ShedNewest}) {
    auto Parsed = engine::parseOverloadPolicy(engine::overloadPolicyName(P));
    ASSERT_TRUE(Parsed.has_value());
    EXPECT_EQ(*Parsed, P);
  }
  EXPECT_FALSE(engine::parseOverloadPolicy("drop-all").has_value());
}

TEST(FaultInjection, StallsAndStormsAreCountedNotLedgered) {
  // Timing-dependent faults perturb the schedule but stay out of the
  // deterministic ledger.
  api::Result<api::Compilation> C = compileFirewall();
  ASSERT_TRUE(C.ok()) << C.status().str();

  auto P = std::make_shared<faults::FaultPlan>();
  P->Seed = 2;
  P->Stalls.push_back({-1, 1, 50}); // stall every non-empty batch
  api::Result<api::RunReport> R = api::run(
      *C, "engine",
      api::RunOptions().seed(9).shards(2).phases(6).pingsPerPhase(4).faults(
          P));
  ASSERT_TRUE(R.ok()) << R.status().str();
  EXPECT_GT(R->Faults.Stalls, 0u);
  EXPECT_EQ(R->Faults.LedgerEntries, 0u); // stalls never enter the ledger
  ASSERT_TRUE(R->Checked);
  EXPECT_TRUE(R->Consistency.Correct) << R->Consistency.Reason;

  auto Storm = std::make_shared<faults::FaultPlan>();
  Storm->Seed = 2;
  Storm->CtrlStormRepeat = 3;
  api::Result<api::RunReport> RS = api::run(
      *C, "engine",
      api::RunOptions().seed(9).shards(2).phases(6).pingsPerPhase(4).faults(
          Storm));
  ASSERT_TRUE(RS.ok()) << RS.status().str();
  // The firewall app has one event; each occurrence re-broadcasts to
  // every shard CtrlStormRepeat times.
  EXPECT_GT(RS->Faults.Storms, 0u);
  ASSERT_TRUE(RS->Checked);
  EXPECT_TRUE(RS->Consistency.Correct) << RS->Consistency.Reason;
}
