//===- tests/support/BitSetTest.cpp - DenseBitSet unit tests --------------===//

#include "support/BitSet.h"

#include <gtest/gtest.h>

using eventnet::DenseBitSet;

TEST(DenseBitSet, EmptyByDefault) {
  DenseBitSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.count(), 0u);
  EXPECT_FALSE(S.test(0));
  EXPECT_FALSE(S.test(1000));
}

TEST(DenseBitSet, SetAndTest) {
  DenseBitSet S;
  S.set(0);
  S.set(63);
  S.set(64);
  S.set(200);
  EXPECT_TRUE(S.test(0));
  EXPECT_TRUE(S.test(63));
  EXPECT_TRUE(S.test(64));
  EXPECT_TRUE(S.test(200));
  EXPECT_FALSE(S.test(1));
  EXPECT_FALSE(S.test(199));
  EXPECT_EQ(S.count(), 4u);
}

TEST(DenseBitSet, ResetNormalizes) {
  DenseBitSet S;
  S.set(5);
  S.set(300);
  S.reset(300);
  DenseBitSet T;
  T.set(5);
  // Equality must be structural regardless of construction history.
  EXPECT_EQ(S, T);
  EXPECT_EQ(S.hash(), T.hash());
}

TEST(DenseBitSet, UnionIntersection) {
  DenseBitSet A = DenseBitSet::single(1);
  A.set(70);
  DenseBitSet B = DenseBitSet::single(70);
  B.set(2);

  DenseBitSet U = A | B;
  EXPECT_TRUE(U.test(1));
  EXPECT_TRUE(U.test(2));
  EXPECT_TRUE(U.test(70));
  EXPECT_EQ(U.count(), 3u);

  DenseBitSet I = A & B;
  EXPECT_EQ(I, DenseBitSet::single(70));
}

TEST(DenseBitSet, IntersectionNormalizesTrailingZeros) {
  DenseBitSet A = DenseBitSet::single(200);
  DenseBitSet B = DenseBitSet::single(3);
  DenseBitSet I = A & B;
  EXPECT_TRUE(I.empty());
  EXPECT_EQ(I, DenseBitSet());
}

TEST(DenseBitSet, SubsetReflexiveAndStrict) {
  DenseBitSet A;
  A.set(3);
  A.set(99);
  DenseBitSet B = A;
  B.set(150);
  EXPECT_TRUE(A.isSubsetOf(A));
  EXPECT_TRUE(A.isSubsetOf(B));
  EXPECT_FALSE(B.isSubsetOf(A));
  EXPECT_TRUE(DenseBitSet().isSubsetOf(A));
}

TEST(DenseBitSet, SubsetWithLongerLhsTrailingBits) {
  DenseBitSet A = DenseBitSet::single(130);
  DenseBitSet B = DenseBitSet::single(1);
  EXPECT_FALSE(A.isSubsetOf(B));
}

TEST(DenseBitSet, ForEachAscending) {
  DenseBitSet S;
  S.set(64);
  S.set(2);
  S.set(129);
  std::vector<unsigned> Got = S.toVector();
  EXPECT_EQ(Got, (std::vector<unsigned>{2, 64, 129}));
}

TEST(DenseBitSet, OrderingIsDeterministic) {
  DenseBitSet A = DenseBitSet::single(1);
  DenseBitSet B = DenseBitSet::single(2);
  EXPECT_TRUE(A < B || B < A);
  EXPECT_FALSE(A < A);
}
