//===- tests/support/SymbolsTest.cpp - Field interner unit tests ----------===//

#include "support/Symbols.h"

#include <gtest/gtest.h>

using namespace eventnet;

TEST(Symbols, ReservedFieldsHaveFixedIds) {
  EXPECT_EQ(fieldOf("sw"), FieldSw);
  EXPECT_EQ(fieldOf("pt"), FieldPt);
  EXPECT_EQ(fieldName(FieldSw), "sw");
  EXPECT_EQ(fieldName(FieldPt), "pt");
}

TEST(Symbols, InternIsIdempotent) {
  FieldId A = fieldOf("symtest_a");
  FieldId B = fieldOf("symtest_a");
  EXPECT_EQ(A, B);
  EXPECT_GE(A, FirstUserField);
  EXPECT_EQ(fieldName(A), "symtest_a");
}

TEST(Symbols, DistinctNamesDistinctIds) {
  FieldId A = fieldOf("symtest_x");
  FieldId B = fieldOf("symtest_y");
  EXPECT_NE(A, B);
}

TEST(Symbols, LookupMissingReturnsSentinel) {
  EXPECT_EQ(FieldTable::get().lookup("definitely_never_interned_field"),
            static_cast<FieldId>(-1));
}
