//===- tests/support/RngTest.cpp - Deterministic PRNG unit tests ----------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>

using eventnet::Rng;

TEST(Rng, DeterministicForSeed) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  bool AnyDiff = false;
  for (int I = 0; I != 16 && !AnyDiff; ++I)
    AnyDiff = A.next() != B.next();
  EXPECT_TRUE(AnyDiff);
}

TEST(Rng, BelowInRange) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= (V == -3);
    SawHi |= (V == 3);
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng R(11);
  for (int I = 0; I != 1000; ++I) {
    double U = R.unit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng R(5);
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}
