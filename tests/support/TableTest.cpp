//===- tests/support/TableTest.cpp - TextTable unit tests -----------------===//

#include "support/Table.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace eventnet;

TEST(TextTable, AlignsColumns) {
  TextTable T({"name", "v"});
  T.addRow({"short", "1"});
  T.addRow({"a-much-longer-name", "22"});
  std::ostringstream OS;
  T.print(OS);
  std::string S = OS.str();
  EXPECT_NE(S.find("name"), std::string::npos);
  EXPECT_NE(S.find("a-much-longer-name"), std::string::npos);
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(TextTable, CsvOutput) {
  TextTable T({"a", "b"});
  T.addRow({"1", "2"});
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_EQ(OS.str(), "a,b\n1,2\n");
}

TEST(TextTable, FormatDouble) {
  EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
}
