//===- tests/net/SessionTest.cpp - Framing state machine tests ------------===//
//
// The Session layer without sockets: incremental reassembly from
// arbitrary read chunks, handshake-ordering enforcement for both roles,
// malformed-prefix fatality, and the bounded egress queue under each
// overload policy with every shed counted.
//
//===----------------------------------------------------------------------===//

#include "net/Session.h"

#include <gtest/gtest.h>

#include <vector>

using namespace eventnet;
using namespace eventnet::net;
using sim::WireFrame;

namespace {

/// Collects frames; opens the session on a greeting like the real
/// handlers do.
struct Collect : Session::FrameHandler {
  std::vector<WireFrame> Frames;
  bool Accept = true;
  uint8_t Greeting = WireFrame::Hello;

  bool onFrame(Session &S, const WireFrame &F) override {
    if (F.T == Greeting)
      S.open();
    Frames.push_back(F);
    return Accept;
  }
};

std::vector<uint8_t> bytesOf(std::initializer_list<WireFrame> Frames) {
  std::vector<uint8_t> Buf;
  for (const WireFrame &F : Frames) {
    uint8_t Tmp[sim::WireFrameBytes];
    sim::encodeFrame(F, Tmp);
    Buf.insert(Buf.end(), Tmp, Tmp + sim::WireFrameBytes);
  }
  return Buf;
}

WireFrame frame(uint8_t T, uint64_t Seq = 0) {
  WireFrame F;
  F.T = T;
  F.A = 1;
  F.B = 2;
  F.Seq = Seq;
  return F;
}

} // namespace

TEST(Session, ReassemblesOneByteAtATime) {
  Session S(7, SessionConfig());
  Collect H;
  std::vector<uint8_t> Buf =
      bytesOf({frame(WireFrame::Hello), frame(WireFrame::Inject, 42)});
  for (uint8_t B : Buf)
    ASSERT_TRUE(S.ingest(&B, 1, H));
  ASSERT_EQ(H.Frames.size(), 2u);
  EXPECT_EQ(H.Frames[1].T, WireFrame::Inject);
  EXPECT_EQ(H.Frames[1].Seq, 42u);
  EXPECT_EQ(S.counters().FramesIn, 2u);
  EXPECT_EQ(S.counters().BytesIn, Buf.size());
  // Every ingest except the two frame-completing ones ended mid-frame.
  EXPECT_EQ(S.counters().ReassemblyPartial, Buf.size() - 2);
  EXPECT_EQ(S.state(), Session::State::Open);
}

TEST(Session, DecodesManyFramesFromOneChunk) {
  Session S(7, SessionConfig());
  Collect H;
  std::vector<WireFrame> Fs{frame(WireFrame::Hello)};
  for (uint64_t I = 0; I != 50; ++I)
    Fs.push_back(frame(WireFrame::Inject, I));
  std::vector<uint8_t> Buf;
  for (const WireFrame &F : Fs) {
    uint8_t Tmp[sim::WireFrameBytes];
    sim::encodeFrame(F, Tmp);
    Buf.insert(Buf.end(), Tmp, Tmp + sim::WireFrameBytes);
  }
  ASSERT_TRUE(S.ingest(Buf.data(), Buf.size(), H));
  EXPECT_EQ(H.Frames.size(), 51u);
  EXPECT_EQ(S.counters().ReassemblyPartial, 0u);
}

TEST(Session, RejectsTrafficBeforeHello) {
  Session S(7, SessionConfig());
  Collect H;
  std::vector<uint8_t> Buf = bytesOf({frame(WireFrame::Inject)});
  EXPECT_FALSE(S.ingest(Buf.data(), Buf.size(), H));
  EXPECT_EQ(S.state(), Session::State::Closed);
  EXPECT_TRUE(H.Frames.empty());
}

TEST(Session, RejectsDuplicateHello) {
  Session S(7, SessionConfig());
  Collect H;
  std::vector<uint8_t> Buf =
      bytesOf({frame(WireFrame::Hello), frame(WireFrame::Hello)});
  EXPECT_FALSE(S.ingest(Buf.data(), Buf.size(), H));
  EXPECT_EQ(S.state(), Session::State::Closed);
  EXPECT_EQ(H.Frames.size(), 1u); // the first one was fine
}

TEST(Session, ServerRejectsTrafficAfterBye) {
  Session S(7, SessionConfig());
  Collect H;
  std::vector<uint8_t> Buf =
      bytesOf({frame(WireFrame::Hello), frame(WireFrame::Bye),
               frame(WireFrame::Inject)});
  EXPECT_FALSE(S.ingest(Buf.data(), Buf.size(), H));
  EXPECT_EQ(H.Frames.size(), 2u);
}

TEST(Session, ClientAcceptsDeliveriesWhileDraining) {
  SessionConfig C;
  C.Role = SessionRole::Client;
  Session S(7, C);
  Collect H;
  H.Greeting = WireFrame::HelloAck;
  std::vector<uint8_t> Buf = bytesOf({frame(WireFrame::HelloAck)});
  ASSERT_TRUE(S.ingest(Buf.data(), Buf.size(), H));
  S.drain(); // we sent our Bye; deliveries may still arrive
  Buf = bytesOf({frame(WireFrame::Deliver, 9)});
  EXPECT_TRUE(S.ingest(Buf.data(), Buf.size(), H));
  EXPECT_EQ(H.Frames.back().T, WireFrame::Deliver);
}

TEST(Session, MalformedPrefixIsFatal) {
  Session S(7, SessionConfig());
  Collect H;
  // An announced payload length beyond WireMaxPayload is hostile even
  // before the payload arrives.
  uint8_t Buf[4];
  sim::wirePut32(Buf, 1u << 20);
  EXPECT_FALSE(S.ingest(Buf, sizeof(Buf), H));
  EXPECT_EQ(S.state(), Session::State::Closed);
}

TEST(Session, HandlerRejectionCloses) {
  Session S(7, SessionConfig());
  Collect H;
  H.Accept = false;
  std::vector<uint8_t> Buf = bytesOf({frame(WireFrame::Hello)});
  EXPECT_FALSE(S.ingest(Buf.data(), Buf.size(), H));
  EXPECT_EQ(S.state(), Session::State::Closed);
}

TEST(Session, ShedNewestBoundsTheBacklog) {
  SessionConfig C;
  C.EgressCapacity = 4;
  C.Overload = engine::OverloadPolicy::ShedNewest;
  Session S(7, C);
  for (uint64_t I = 0; I != 6; ++I)
    S.enqueue(frame(WireFrame::Deliver, I));
  EXPECT_EQ(S.egressDepth(), 4u);
  EXPECT_EQ(S.counters().EgressShed, 2u);
  // The survivors are the oldest four.
  S.fillTx();
  EXPECT_EQ(S.counters().FramesOut, 4u);
}

TEST(Session, ShedOldestKeepsTheNewest) {
  SessionConfig C;
  C.EgressCapacity = 2;
  C.Overload = engine::OverloadPolicy::ShedOldest;
  Session S(7, C);
  for (uint64_t I = 0; I != 4; ++I)
    EXPECT_TRUE(S.enqueue(frame(WireFrame::Deliver, I)));
  EXPECT_EQ(S.egressDepth(), 2u);
  EXPECT_EQ(S.counters().EgressShed, 2u);
  ASSERT_TRUE(S.fillTx());
  // Decode the serialized bytes back: seqs 2 and 3 survived.
  WireFrame F;
  size_t Used = 0;
  ASSERT_EQ(sim::decodeFrame(S.txData(), S.txPending(), F, Used),
            sim::FrameDecode::Ok);
  EXPECT_EQ(F.Seq, 2u);
  ASSERT_EQ(sim::decodeFrame(S.txData() + Used, S.txPending() - Used, F,
                             Used),
            sim::FrameDecode::Ok);
  EXPECT_EQ(F.Seq, 3u);
}

TEST(Session, BlockPolicySignalsBackpressure) {
  SessionConfig C;
  C.EgressCapacity = 2;
  C.Overload = engine::OverloadPolicy::Block;
  Session S(7, C);
  EXPECT_FALSE(S.wantsBackpressure());
  for (uint64_t I = 0; I != 3; ++I)
    EXPECT_TRUE(S.enqueue(frame(WireFrame::Deliver, I)));
  EXPECT_EQ(S.egressDepth(), 3u); // Block never sheds; it grows
  EXPECT_EQ(S.counters().EgressShed, 0u);
  EXPECT_TRUE(S.wantsBackpressure());
}

TEST(Session, TxToleratesPartialWrites) {
  Session S(7, SessionConfig());
  S.enqueue(frame(WireFrame::Deliver, 1));
  S.enqueue(frame(WireFrame::Deliver, 2));
  ASSERT_TRUE(S.fillTx());
  size_t Total = S.txPending();
  ASSERT_EQ(Total, 2 * sim::WireFrameBytes);
  S.txConsume(7); // a short write mid-frame
  EXPECT_EQ(S.txPending(), Total - 7);
  EXPECT_TRUE(S.wantsWrite());
  S.txConsume(S.txPending());
  EXPECT_FALSE(S.wantsWrite());
  EXPECT_EQ(S.counters().BytesOut, Total);
  EXPECT_EQ(S.counters().FramesOut, 2u);
}
