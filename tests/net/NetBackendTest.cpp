//===- tests/net/NetBackendTest.cpp - The "net" backend via the façade ----===//
//
// The fourth backend end to end: run() with "net" compiles nothing new —
// it binds a loopback server on an ephemeral port, replays the shared
// seeded workload through real sockets (TCP by default, UDP on request),
// and still produces a RunReport whose trace passes Definition 6 and
// whose drop audit balances. The net-specific counters must conserve:
// every engine delivery is either routed to a session, shed at the ring,
// unroutable, or non-net.
//
//===----------------------------------------------------------------------===//

#include "api/Api.h"

#include "apps/Programs.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace eventnet;
using namespace eventnet::api;

namespace {

Result<Compilation> compileFirewall() {
  return compile(CompileOptions()
                     .programSource(apps::firewallSource())
                     .topology(topo::firewallTopology()));
}

/// Every engine delivery must be accounted for somewhere on the socket
/// path.
void expectConservation(const RunReport &R) {
  EXPECT_EQ(R.Net.DeliveryFrames + R.Net.RingShed +
                R.Net.DeliveryUnroutable + R.Net.NonNetDeliveries,
            R.PacketsDelivered);
}

} // namespace

TEST(NetBackend, RegistryListsNet) {
  std::vector<std::string> Names = backendNames();
  EXPECT_NE(std::find(Names.begin(), Names.end(), "net"), Names.end());
}

TEST(NetBackend, TcpRunIsConsistentAndConserving) {
  Result<Compilation> C = compileFirewall();
  ASSERT_TRUE(C.ok()) << C.status().str();

  Result<RunReport> R =
      run(*C, "net",
          RunOptions().seed(7).shards(2).phases(3).pingsPerPhase(4)
              .netConnections(3));
  ASSERT_TRUE(R.ok()) << R.status().str();

  EXPECT_EQ(R->Backend, "net");
  EXPECT_TRUE(R->Net.Enabled);
  EXPECT_FALSE(R->Net.Poller.empty());
  EXPECT_FALSE(R->Net.Udp);
  EXPECT_GT(R->Net.Port, 0u);

  // Every connection handshook, injected, and drained cleanly.
  EXPECT_EQ(R->Net.Accepted, 3u);
  EXPECT_EQ(R->Net.Closed, 3u);
  EXPECT_EQ(R->Net.ProtocolErrors, 0u);
  EXPECT_GT(R->Net.FramesInjected, 0u);
  // Inject frames are a strict subset of inbound traffic (Hello,
  // Barrier, Bye ride the same stream).
  EXPECT_GT(R->Net.FramesIn, R->Net.FramesInjected);
  // One barrier per connection per phase, all acked.
  EXPECT_EQ(R->Net.BarriersAcked, 3u * 3u);

  // Block policy + clean drain: the replay client saw every frame the
  // server routed, and frames_in never undercounts the echoes.
  EXPECT_EQ(R->Net.BackpressureShed, 0u);
  EXPECT_EQ(R->Net.ClientDelivers, R->Net.DeliveryFrames);
  EXPECT_EQ(R->Net.ClientReplies, R->Net.RepliesOut);
  EXPECT_GE(R->Net.FramesIn, R->Net.RepliesOut);
  expectConservation(*R);

  // The engine's injected count is the socket-ingested workload plus
  // the in-engine echo replies.
  EXPECT_GE(R->PacketsInjected, R->Net.FramesInjected + R->Net.RepliesOut);

  // Round trips were sampled through the real socket path.
  EXPECT_GT(R->Net.Rtt.Samples, 0u);
  EXPECT_GE(R->Net.Rtt.MaxSec, R->Net.Rtt.P50Sec);

  // The same acceptance bar every backend meets.
  ASSERT_TRUE(R->Checked);
  EXPECT_TRUE(R->Consistency.Correct) << R->Consistency.Reason;
  EXPECT_TRUE(R->Audit.Ok) << R->Audit.SilentLoss << " silently lost";
  EXPECT_EQ(R->Audit.SilentLoss, 0u);

  // The report renders the net block in both formats.
  EXPECT_NE(R->str().find("net:"), std::string::npos);
  EXPECT_NE(R->str().find("net frames:"), std::string::npos);
  EXPECT_NE(R->json().find("\"frames_injected\""), std::string::npos);
  EXPECT_NE(R->json().find("\"rtt_samples\""), std::string::npos);
}

TEST(NetBackend, UdpRunIsConsistentAndConserving) {
  Result<Compilation> C = compileFirewall();
  ASSERT_TRUE(C.ok()) << C.status().str();

  Result<RunReport> R =
      run(*C, "net",
          RunOptions().seed(11).shards(2).phases(2).pingsPerPhase(4)
              .netConnections(2).netUdp(true));
  ASSERT_TRUE(R.ok()) << R.status().str();

  EXPECT_TRUE(R->Net.Udp);
  EXPECT_GT(R->Net.UdpDatagrams, 0u);
  EXPECT_EQ(R->Net.Accepted, 2u);
  EXPECT_EQ(R->Net.ProtocolErrors, 0u);
  EXPECT_GT(R->Net.FramesInjected, 0u);
  expectConservation(*R);

  ASSERT_TRUE(R->Checked);
  EXPECT_TRUE(R->Consistency.Correct) << R->Consistency.Reason;
  EXPECT_TRUE(R->Audit.Ok);
}

TEST(NetBackend, WorkloadRealizationIsDeterministic) {
  // The socket path adds timing nondeterminism to delivery interleaving
  // (exactly what Definition 6 quantifies over), but the realized
  // workload itself — frames pushed through the wire — is a pure
  // function of the seed.
  Result<Compilation> C = compileFirewall();
  ASSERT_TRUE(C.ok()) << C.status().str();

  RunOptions O = RunOptions().seed(21).phases(3).pingsPerPhase(3)
                     .netConnections(2);
  Result<RunReport> A = run(*C, "net", O);
  Result<RunReport> B = run(*C, "net", O);
  ASSERT_TRUE(A.ok() && B.ok());
  EXPECT_EQ(A->Net.FramesInjected, B->Net.FramesInjected);
  EXPECT_EQ(A->Net.BarriersAcked, B->Net.BarriersAcked);
}

TEST(NetBackend, RejectsSillyConnectionCounts) {
  Result<Compilation> C = compileFirewall();
  ASSERT_TRUE(C.ok()) << C.status().str();

  Result<RunReport> R = run(*C, "net", RunOptions().netConnections(0));
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), Code::InvalidArgument);

  R = run(*C, "net", RunOptions().netConnections(1u << 20));
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), Code::InvalidArgument);
}
