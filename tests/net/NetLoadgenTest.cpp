//===- tests/net/NetLoadgenTest.cpp - Loopback server + load generator ----===//
//
// The full socket pipeline in-process: a net::Server bound to an
// ephemeral loopback port, fed by a real engine through its
// DeliverySink, driven by the multi-connection load generator over TCP
// and UDP. Asserts the generator's own validation (every reply's seq was
// sent, no protocol errors, no timeout), frame-level agreement between
// the two ends of the wire, delivery conservation on the server, and
// Definition 6 on the engine's recorded trace.
//
//===----------------------------------------------------------------------===//

#include "api/Api.h"

#include "apps/Programs.h"
#include "consistency/Check.h"
#include "net/Loadgen.h"
#include "net/Server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

using namespace eventnet;

namespace {

/// One assembled loopback pipeline: compile firewall, bind an ephemeral
/// server, attach a 2-shard engine, serve on a background thread.
struct Loopback {
  api::Result<api::Compilation> C;
  net::Server Srv;
  std::unique_ptr<engine::Engine> E;
  std::atomic<bool> Stop{false};
  std::thread Thread;
  bool Opened = false;

  explicit Loopback(net::ServerConfig SC = net::ServerConfig())
      : C(api::compile(api::CompileOptions()
                           .programSource(apps::firewallSource())
                           .topology(topo::firewallTopology()))),
        Srv((SC.Port = 0, SC)) {
    if (!C.ok())
      return;
    std::string Err;
    Opened = Srv.open(Err);
    if (!Opened)
      return;
    engine::EngineConfig Cfg;
    Cfg.NumShards = 2;
    Cfg.DeliverySink = Srv.deliverySink();
    E = std::make_unique<engine::Engine>(C->structure(), C->topology(), Cfg);
    Srv.attach(*E);
    E->start();
    Thread = std::thread([this] { Srv.serve(Stop); });
  }

  ~Loopback() { shutdown(); }

  void shutdown() {
    if (Thread.joinable()) {
      Stop = true;
      Thread.join();
    }
    if (E)
      E->finish();
  }

  net::LoadgenStats drive(net::LoadgenConfig LC) {
    LC.Port = Srv.port();
    return net::runLoadgen(LC);
  }
};

} // namespace

TEST(NetLoadgen, TcpEndToEnd) {
  Loopback L;
  ASSERT_TRUE(L.C.ok()) << L.C.status().str();
  ASSERT_TRUE(L.Opened);

  net::LoadgenConfig LC;
  LC.Connections = 8;
  LC.FramesPerConn = 64;
  LC.Burst = 16;
  LC.Phases = 2;
  LC.RttSampleEvery = 4;
  net::LoadgenStats S = L.drive(LC);
  L.shutdown();

  EXPECT_TRUE(S.ok()) << S.ProtocolErrors << " protocol errors, "
                      << S.SeqMismatches << " seq mismatches, timed_out="
                      << S.TimedOut;
  EXPECT_EQ(S.Connected, 8u);
  EXPECT_EQ(S.InjectsSent, 8u * 64u);
  EXPECT_EQ(S.BarrierAcks, 8u * 2u); // one fence per conn per phase
  EXPECT_GT(S.Replies, 0u);
  EXPECT_LE(S.Replies, S.InjectsSent);
  EXPECT_GE(S.Delivers, S.Replies);
  EXPECT_GT(S.RttNs.TotalCount, 0u);

  // Both ends of the wire agree frame for frame (Block policy, clean
  // drain: nothing shed, nothing unread).
  net::ServerStats SS = L.Srv.stats();
  EXPECT_EQ(SS.Accepted, 8u);
  EXPECT_EQ(SS.Closed, 8u);
  EXPECT_EQ(SS.ProtocolErrors, 0u);
  EXPECT_EQ(SS.FramesInjected, S.InjectsSent);
  EXPECT_EQ(SS.FramesIn, S.FramesSent);
  EXPECT_EQ(SS.BytesIn, S.BytesSent);
  EXPECT_EQ(SS.DeliveryFrames, S.Delivers);
  EXPECT_EQ(SS.RepliesOut, S.Replies);
  EXPECT_EQ(SS.BackpressureShed, 0u);
  EXPECT_EQ(SS.BarriersAcked, S.BarrierAcks);

  // Delivery conservation: every engine delivery is routed, shed,
  // unroutable, or non-net — never silently gone.
  engine::Stats ES = L.E->stats();
  EXPECT_EQ(SS.DeliveryFrames + SS.RingShed + SS.DeliveryUnroutable +
                SS.NonNetDeliveries,
            ES.PacketsDelivered);

  // The trace recorded through the socket path satisfies Definition 6.
  consistency::CheckResult D6 = consistency::checkAgainstNes(
      L.E->trace(), L.C->topology(), L.C->structure());
  EXPECT_TRUE(D6.Correct) << D6.Reason;
}

TEST(NetLoadgen, UdpEndToEnd) {
  Loopback L;
  ASSERT_TRUE(L.C.ok()) << L.C.status().str();
  ASSERT_TRUE(L.Opened);

  net::LoadgenConfig LC;
  LC.Udp = true;
  LC.Connections = 4;
  LC.FramesPerConn = 32;
  LC.Burst = 8;
  LC.Phases = 1;
  net::LoadgenStats S = L.drive(LC);
  L.shutdown();

  EXPECT_TRUE(S.ok()) << S.ProtocolErrors << " protocol errors, "
                      << S.SeqMismatches << " seq mismatches, timed_out="
                      << S.TimedOut;
  EXPECT_EQ(S.Connected, 4u);
  EXPECT_EQ(S.InjectsSent, 4u * 32u);
  EXPECT_EQ(S.BarrierAcks, 4u);

  net::ServerStats SS = L.Srv.stats();
  EXPECT_EQ(SS.Accepted, 4u); // four distinct UDP peers
  EXPECT_GT(SS.UdpDatagrams, 0u);
  EXPECT_EQ(SS.FramesInjected, S.InjectsSent);

  engine::Stats ES = L.E->stats();
  EXPECT_EQ(SS.DeliveryFrames + SS.RingShed + SS.DeliveryUnroutable +
                SS.NonNetDeliveries,
            ES.PacketsDelivered);
}

TEST(NetLoadgen, BlockPolicyParksReadsInsteadOfShedding) {
  // A deliberately tiny egress bound under Block: the server must park
  // each saturated connection's read side and let TCP flow control
  // absorb the burst — losing nothing — rather than shed or balloon.
  net::ServerConfig SC;
  SC.Session.EgressCapacity = 4;
  SC.Session.Overload = engine::OverloadPolicy::Block;
  Loopback L(SC);
  ASSERT_TRUE(L.C.ok()) << L.C.status().str();
  ASSERT_TRUE(L.Opened);

  net::LoadgenConfig LC;
  LC.Connections = 4;
  LC.FramesPerConn = 256;
  LC.Burst = 64; // far past the 4-frame egress bound
  LC.Phases = 1;
  net::LoadgenStats S = L.drive(LC);
  L.shutdown();

  EXPECT_TRUE(S.ok()) << S.ProtocolErrors << " protocol errors, "
                      << S.SeqMismatches << " seq mismatches, timed_out="
                      << S.TimedOut;
  EXPECT_EQ(S.InjectsSent, 4u * 256u);

  net::ServerStats SS = L.Srv.stats();
  EXPECT_EQ(SS.FramesInjected, S.InjectsSent);
  EXPECT_EQ(SS.BackpressureShed, 0u); // Block never sheds
  EXPECT_EQ(SS.DeliveryFrames, S.Delivers);

  engine::Stats ES = L.E->stats();
  EXPECT_EQ(SS.DeliveryFrames + SS.RingShed + SS.DeliveryUnroutable +
                SS.NonNetDeliveries,
            ES.PacketsDelivered);
}

TEST(NetLoadgen, ManyConnections) {
  // The fd-heavy shape: more sessions than hosts, every one handshakes,
  // fences, and drains.
  Loopback L;
  ASSERT_TRUE(L.C.ok()) << L.C.status().str();
  ASSERT_TRUE(L.Opened);

  net::LoadgenConfig LC;
  LC.Connections = 64;
  LC.FramesPerConn = 16;
  LC.Burst = 8;
  LC.Phases = 1;
  LC.RttSampleEvery = 0; // throughput shape, no sampling
  net::LoadgenStats S = L.drive(LC);
  L.shutdown();

  EXPECT_TRUE(S.ok()) << S.ProtocolErrors << " protocol errors, "
                      << S.SeqMismatches << " seq mismatches, timed_out="
                      << S.TimedOut;
  EXPECT_EQ(S.Connected, 64u);
  EXPECT_EQ(S.InjectsSent, 64u * 16u);
  EXPECT_EQ(S.BarrierAcks, 64u);
  EXPECT_EQ(S.RttNs.TotalCount, 0u);

  net::ServerStats SS = L.Srv.stats();
  EXPECT_EQ(SS.Accepted, 64u);
  EXPECT_EQ(SS.Closed, 64u);
  EXPECT_EQ(SS.FramesInjected, S.InjectsSent);
}
