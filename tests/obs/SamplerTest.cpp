//===- tests/obs/SamplerTest.cpp - Periodic metrics sampler ---------------===//
//
// The sampler's lifecycle contract: at least an initial and a final
// sample regardless of run length, JSON-lines output with a ts field
// spliced into each object, prompt idempotent stop, and safe
// destruction without start().
//
//===----------------------------------------------------------------------===//

#include "obs/Sampler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>

using namespace eventnet::obs;

TEST(Sampler, EmitsInitialAndFinalSamples) {
  std::ostringstream OS;
  std::atomic<int> Calls{0};
  MetricsSampler S(1000, // long interval: only the edge samples fire
                   [&Calls] {
                     Calls.fetch_add(1);
                     return std::string("{\"n\": 1}");
                   },
                   OS);
  S.start();
  S.stop();
  EXPECT_GE(S.samplesEmitted(), 2u); // one at start, one at stop
  EXPECT_EQ(S.samplesEmitted(), static_cast<uint64_t>(Calls.load()));

  // JSON-lines: every line is one object with the spliced ts field.
  std::istringstream In(OS.str());
  std::string Line;
  size_t Lines = 0;
  while (std::getline(In, Line)) {
    ++Lines;
    EXPECT_EQ(Line.rfind("{\"ts\": ", 0), 0u) << Line;
    EXPECT_EQ(Line.find("\"n\": 1") != std::string::npos, true) << Line;
    EXPECT_EQ(Line.back(), '}') << Line;
  }
  EXPECT_EQ(Lines, S.samplesEmitted());
}

TEST(Sampler, TicksPeriodically) {
  std::ostringstream OS;
  MetricsSampler S(2, [] { return std::string("{}"); }, OS);
  S.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  S.stop();
  EXPECT_GE(S.samplesEmitted(), 3u);
}

TEST(Sampler, StopIsIdempotentAndStartlessDestructionIsSafe) {
  std::ostringstream OS;
  {
    MetricsSampler Never(5, [] { return std::string("{}"); }, OS);
    // never started; destructor must not hang or emit
  }
  EXPECT_TRUE(OS.str().empty());

  MetricsSampler S(5, [] { return std::string("{}"); }, OS);
  S.start();
  S.stop();
  uint64_t After = S.samplesEmitted();
  S.stop();
  S.stop();
  EXPECT_EQ(S.samplesEmitted(), After);
}
