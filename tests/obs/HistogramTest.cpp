//===- tests/obs/HistogramTest.cpp - Log-bucket histogram properties ------===//
//
// Property tests for the obs/Histogram.h HDR-style histogram: bucket
// geometry invariants over the full uint64 range, the bounded-relative-
// error percentile guarantee against exact sorted-order percentiles on
// adversarial distributions, exact mean/max, additive merge, and
// concurrent recording totals.
//
//===----------------------------------------------------------------------===//

#include "obs/Histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

using namespace eventnet::obs;

namespace {

/// Deterministic xorshift so the "random" distributions are stable.
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed ? Seed : 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
};

/// Exact percentile by sorted order, same rank rule as the snapshot:
/// the ceil(Q*N)-th value, 1-based.
uint64_t exactPercentile(std::vector<uint64_t> V, double Q) {
  std::sort(V.begin(), V.end());
  double R = Q * static_cast<double>(V.size());
  size_t Rank = static_cast<size_t>(R);
  if (static_cast<double>(Rank) < R)
    ++Rank;
  if (Rank == 0)
    Rank = 1;
  return V[Rank - 1];
}

} // namespace

TEST(Histogram, BucketGeometryInvariants) {
  // Every value lands in a bucket whose inclusive upper edge is >= the
  // value and within the relative-error bound; edges are monotone.
  std::vector<uint64_t> Probes = {0, 1, 31, 32, 33, 63, 64, 65, 100, 1000};
  Rng R(42);
  for (int I = 0; I != 2000; ++I)
    Probes.push_back(R.next() >> (R.next() % 64));
  Probes.push_back(UINT64_MAX);
  Probes.push_back(1ull << 62);
  Probes.push_back((1ull << 63) - 1);

  for (uint64_t V : Probes) {
    unsigned B = LogHistogram::bucketIndex(V);
    ASSERT_LT(B, LogHistogram::NumBuckets) << V;
    uint64_t Edge = LogHistogram::bucketUpperEdge(B);
    if (V < (1ull << 63)) { // int64-range values: the designed domain
      EXPECT_GE(Edge, V) << "bucket " << B;
      // Edge overshoot is at most one sub-bucket width: edge <= v + v/32.
      double Bound = static_cast<double>(V) * (1.0 + 1.0 / 32.0) + 1;
      EXPECT_LE(static_cast<double>(Edge), Bound) << V;
    }
    if (B > 0)
      EXPECT_LT(LogHistogram::bucketUpperEdge(B - 1), Edge);
  }
}

TEST(Histogram, PercentilesWithinBoundedRelativeError) {
  // Adversarial spreads: tight cluster, uniform, heavy-tailed.
  Rng R(7);
  std::vector<std::vector<uint64_t>> Sets;
  Sets.push_back({});
  for (int I = 0; I != 5000; ++I)
    Sets.back().push_back(1000 + R.next() % 50); // tight cluster
  Sets.push_back({});
  for (int I = 0; I != 5000; ++I)
    Sets.back().push_back(R.next() % 1000000); // uniform
  Sets.push_back({});
  for (int I = 0; I != 5000; ++I) // heavy tail within the designed
    Sets.back().push_back((R.next() >> 1) >> (R.next() % 50)); // domain

  for (const std::vector<uint64_t> &Values : Sets) {
    LogHistogram H;
    uint64_t Sum = 0, Max = 0;
    for (uint64_t V : Values) {
      H.record(V);
      Sum += V;
      Max = std::max(Max, V);
    }
    HistogramSnapshot S = H.snapshot();
    EXPECT_EQ(S.TotalCount, Values.size());
    EXPECT_EQ(S.Sum, Sum);
    EXPECT_EQ(S.Max, Max);
    EXPECT_DOUBLE_EQ(S.mean(),
                     static_cast<double>(Sum) / Values.size());
    EXPECT_EQ(S.percentile(1.0), Max); // p100 is exact

    for (double Q : {0.5, 0.9, 0.99}) {
      uint64_t Exact = exactPercentile(Values, Q);
      uint64_t Est = S.percentile(Q);
      // The estimate is the containing bucket's upper edge: never below
      // the true value, above it by at most one sub-bucket width.
      EXPECT_GE(Est, Exact) << "q" << Q;
      double Bound = static_cast<double>(Exact) * (1.0 + 1.0 / 32.0) + 1;
      EXPECT_LE(static_cast<double>(Est), Bound) << "q" << Q;
    }
  }
}

TEST(Histogram, EmptySnapshotIsZero) {
  LogHistogram H;
  HistogramSnapshot S = H.snapshot();
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.percentile(0.5), 0u);
  EXPECT_EQ(S.mean(), 0.0);
}

TEST(Histogram, MergeIsAdditive) {
  // Recording a+b into one histogram equals recording a and b into two
  // and merging the snapshots (buckets are positional).
  Rng R(11);
  std::vector<uint64_t> A, B;
  for (int I = 0; I != 1000; ++I) {
    A.push_back(R.next() % 100000);
    B.push_back(R.next() >> 40);
  }
  LogHistogram HA, HB, HAll;
  for (uint64_t V : A) {
    HA.record(V);
    HAll.record(V);
  }
  for (uint64_t V : B) {
    HB.record(V);
    HAll.record(V);
  }
  HistogramSnapshot M = HA.snapshot();
  M.merge(HB.snapshot());
  HistogramSnapshot All = HAll.snapshot();
  EXPECT_EQ(M.Counts, All.Counts);
  EXPECT_EQ(M.TotalCount, All.TotalCount);
  EXPECT_EQ(M.Sum, All.Sum);
  EXPECT_EQ(M.Max, All.Max);
  for (double Q : {0.5, 0.9, 0.99, 1.0})
    EXPECT_EQ(M.percentile(Q), All.percentile(Q));
}

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  // Relaxed increments on positional counters: N threads x M records
  // must all be visible after join (run under TSan in CI).
  constexpr unsigned Threads = 4;
  constexpr uint64_t PerThread = 20000;
  LogHistogram H;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T != Threads; ++T)
    Ts.emplace_back([&H, T] {
      Rng R(T + 1);
      for (uint64_t I = 0; I != PerThread; ++I)
        H.record(R.next() % 1000000);
    });
  for (std::thread &T : Ts)
    T.join();
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.TotalCount, Threads * PerThread);
  uint64_t BucketSum = 0;
  for (uint64_t C : S.Counts)
    BucketSum += C;
  EXPECT_EQ(BucketSum, Threads * PerThread);
}
