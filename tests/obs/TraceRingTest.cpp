//===- tests/obs/TraceRingTest.cpp - Bounded trace ring under contention --===//
//
// The trace ring's contract: every record() either lands in a slot or
// is counted as dropped (nothing vanishes), the stored prefix is intact
// under concurrent producers (run under TSan in CI), and the Perfetto
// export renders the required trace_event keys.
//
//===----------------------------------------------------------------------===//

#include "obs/Perfetto.h"
#include "obs/TraceRing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

using namespace eventnet::obs;

TEST(TraceRing, BoundedWithDropCounting) {
  TraceRing R(4);
  for (uint32_t I = 0; I != 7; ++I)
    R.record({static_cast<int64_t>(I), I, 0, TraceKind::Hop, 0});
  EXPECT_EQ(R.recordedCount(), 4u);
  EXPECT_EQ(R.droppedCount(), 3u);
  std::vector<TraceEvent> E = R.events();
  ASSERT_EQ(E.size(), 4u);
  // Bounded, not circular: the *head* of the timeline is kept.
  for (uint32_t I = 0; I != 4; ++I)
    EXPECT_EQ(E[I].A, I);
}

TEST(TraceRing, ZeroCapacityDropsEverything) {
  TraceRing R(0);
  R.record({1, 2, 3, TraceKind::Inject, 0});
  EXPECT_EQ(R.recordedCount(), 0u);
  EXPECT_EQ(R.droppedCount(), 1u);
  EXPECT_TRUE(R.events().empty());
}

TEST(TraceRing, ConcurrentProducersConserveEvents) {
  // 4 threads x 5000 records into a ring of 12000: recorded + dropped
  // must equal attempts, the stored prefix must be full, and every slot
  // must hold a complete record from some thread (no torn writes — each
  // thread writes a self-consistent (A, B) pair).
  constexpr unsigned Threads = 4;
  constexpr uint32_t PerThread = 5000;
  constexpr size_t Cap = 12000;
  TraceRing R(Cap);
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T != Threads; ++T)
    Ts.emplace_back([&R, T] {
      for (uint32_t I = 0; I != PerThread; ++I)
        R.record({static_cast<int64_t>(I), T * PerThread + I,
                  ~(T * PerThread + I), TraceKind::Hop,
                  static_cast<uint8_t>(T)});
    });
  for (std::thread &T : Ts)
    T.join();

  EXPECT_EQ(R.recordedCount() + R.droppedCount(),
            static_cast<uint64_t>(Threads) * PerThread);
  std::vector<TraceEvent> E = R.events();
  ASSERT_EQ(E.size(), Cap);
  std::vector<bool> Seen(Threads * PerThread, false);
  for (const TraceEvent &Ev : E) {
    ASSERT_LT(Ev.A, Threads * PerThread);
    EXPECT_EQ(Ev.B, ~Ev.A) << "torn slot write";
    EXPECT_FALSE(Seen[Ev.A]) << "slot claimed twice";
    Seen[Ev.A] = true;
  }
}

TEST(TraceRing, KindNamesAreStable) {
  // The enum values appear in exported traces; renames are breaking.
  EXPECT_STREQ(traceKindName(TraceKind::Inject), "inject");
  EXPECT_STREQ(traceKindName(TraceKind::Hop), "hop");
  EXPECT_STREQ(traceKindName(TraceKind::CrossShardPush), "cross_shard_push");
  EXPECT_STREQ(traceKindName(TraceKind::EventDetect), "event_detect");
  EXPECT_STREQ(traceKindName(TraceKind::RegisterLearn), "register_learn");
  EXPECT_STREQ(traceKindName(TraceKind::ConfigSwap), "config_swap");
  EXPECT_STREQ(traceKindName(TraceKind::Drop), "drop");
}

TEST(TraceRing, PerfettoExportHasRequiredShape) {
  std::vector<TraceEvent> Events = {
      {1000, 1, 2, TraceKind::Inject, 0},
      {2000, 2, 7, TraceKind::Hop, 1},
      {3000, 0, 2, TraceKind::EventDetect, 1},
  };
  std::ostringstream OS;
  writePerfettoTrace(OS, Events, /*NumShards=*/2, /*DroppedEvents=*/5);
  std::string J = OS.str();

  // Chrome trace_event essentials: the traceEvents array, instant
  // events with a scope, per-shard thread-name metadata, microsecond
  // timestamps, and the honest drop count.
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(J.find("\"s\": \"t\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(J.find("thread_name"), std::string::npos);
  EXPECT_NE(J.find("\"name\": \"inject\""), std::string::npos);
  EXPECT_NE(J.find("\"name\": \"event_detect\""), std::string::npos);
  EXPECT_NE(J.find("\"dropped_events\": 5"), std::string::npos);
  // 2000 ns -> 2 us.
  EXPECT_NE(J.find("\"ts\": 2"), std::string::npos);
}
