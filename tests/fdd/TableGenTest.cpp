//===- tests/fdd/TableGenTest.cpp - Table extraction unit tests -----------===//

#include "fdd/Fdd.h"

#include "netkat/Eval.h"
#include "netkat/PathSplit.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::fdd;
using namespace eventnet::netkat;

namespace {
FieldId fDst() { return fieldOf("tbl_dst"); }
} // namespace

TEST(TableGen, DropPolicyYieldsDropTable) {
  FddManager M;
  flowtable::Table T = M.toTable(M.dropLeaf());
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.rules()[0].Actions.empty());
  EXPECT_TRUE(T.rules()[0].Pattern.isWildcard());
}

TEST(TableGen, HiRulesShadowLoRules) {
  FddManager M;
  // if dst=4 then drop else forward to pt 1.
  PolicyRef P = unite(seq(filter(pTest(fDst(), 4)), drop()),
                      seq(filter(pNot(pTest(fDst(), 4))), modPt(1)));
  flowtable::Table T = M.toTable(M.compile(P));
  // First rule must be the specific dst=4 drop; later the wildcard fwd.
  const flowtable::Rule *R =
      T.lookup(makePacket({1, 2}, {{fDst(), 4}}));
  ASSERT_NE(R, nullptr);
  EXPECT_TRUE(R->Actions.empty());
  R = T.lookup(makePacket({1, 2}, {{fDst(), 5}}));
  ASSERT_NE(R, nullptr);
  EXPECT_FALSE(R->Actions.empty());
}

TEST(TableGen, PrioritiesStrictlyDescending) {
  FddManager M;
  PolicyRef P = unite(seq(filter(pTest(fDst(), 1)), modPt(1)),
                      seq(filter(pTest(fDst(), 2)), modPt(2)));
  flowtable::Table T = M.toTable(M.compile(P));
  for (size_t I = 1; I < T.rules().size(); ++I)
    EXPECT_GT(T.rules()[I - 1].Priority, T.rules()[I].Priority);
}

TEST(TableGen, SwitchTableSpecializes) {
  FddManager M;
  // Firewall outbound hop at switch 1 from the path splitter.
  PolicyRef Global = seqAll({filter(pAnd(pPt(2), pTest(fDst(), 4))),
                             modPt(1), link({1, 1}, {4, 1}), modPt(2)});
  PathSplitResult R = splitAtLinks(Global);
  ASSERT_TRUE(R.Ok) << R.Error;
  NodeId Local = M.compile(R.Local);

  flowtable::Table T1 = M.toSwitchTable(Local, 1);
  flowtable::Table T4 = M.toSwitchTable(Local, 4);
  flowtable::Table T9 = M.toSwitchTable(Local, 9);

  // Switch 1 forwards dst=4 packets from port 2 out port 1.
  Packet P = makePacket({1, 2}, {{fDst(), 4}});
  auto Out = T1.apply(P);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].pt(), 1u);

  // Switch 4 receives at port 1 and egresses at port 2.
  Packet Q = makePacket({4, 1}, {{fDst(), 4}});
  Out = T4.apply(Q);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].pt(), 2u);

  // An uninvolved switch drops everything.
  EXPECT_TRUE(T9.apply(makePacket({9, 1}, {{fDst(), 4}})).empty());
}

TEST(TableGen, NoSwMatchesInSwitchTables) {
  FddManager M;
  PolicyRef Global = seqAll({filter(pPt(2)), modPt(1),
                             link({1, 1}, {4, 1}), modPt(2)});
  PathSplitResult R = splitAtLinks(Global);
  ASSERT_TRUE(R.Ok);
  flowtable::Table T = M.toSwitchTable(M.compile(R.Local), 1);
  for (const flowtable::Rule &Rule : T.rules())
    for (const auto &[F, V] : Rule.Pattern.constraints())
      EXPECT_NE(F, FieldSw);
}

TEST(TableGen, TotalityEveryPacketHitsSomeRuleOrMissDrops) {
  FddManager M;
  PolicyRef P = seq(filter(pTest(fDst(), 4)), modPt(1));
  flowtable::Table T = M.toTable(M.compile(P));
  // Diagram paths cover the whole packet space: dst=4 forwards,
  // everything else hits an explicit or implicit drop.
  Packet Hit = makePacket({1, 2}, {{fDst(), 4}});
  Packet Miss = makePacket({1, 2}, {{fDst(), 5}});
  EXPECT_EQ(T.apply(Hit).size(), 1u);
  EXPECT_TRUE(T.apply(Miss).empty());
}
