//===- tests/fdd/FddPropertyTest.cpp - FDD vs reference semantics ---------===//
//
// The central compiler-correctness property: for random link-free NetKAT
// policies, the FDD's action sets applied to a packet must produce exactly
// the packet set computed by the denotational evaluator, and the extracted
// flow table (first-match semantics) must agree as well. This is the
// repository's stand-in for NetKAT's equational soundness argument.
//
//===----------------------------------------------------------------------===//

#include "fdd/Fdd.h"

#include "netkat/Eval.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::fdd;
using namespace eventnet::netkat;

namespace {

struct Gen {
  Rng R;
  std::vector<FieldId> Fields;
  Value MaxV = 3;

  explicit Gen(uint64_t Seed) : R(Seed) {
    Fields = {fieldOf("prop_a"), fieldOf("prop_b"), fieldOf("prop_c")};
  }

  FieldId field() { return Fields[R.below(Fields.size())]; }
  Value value() { return R.range(0, MaxV); }

  PredRef pred(unsigned Depth) {
    if (Depth == 0 || R.chance(0.4)) {
      switch (R.below(4)) {
      case 0:
        return pTrue();
      case 1:
        return pFalse();
      default:
        return pTest(field(), value());
      }
    }
    switch (R.below(3)) {
    case 0:
      return pAnd(pred(Depth - 1), pred(Depth - 1));
    case 1:
      return pOr(pred(Depth - 1), pred(Depth - 1));
    default:
      return pNot(pred(Depth - 1));
    }
  }

  PolicyRef policy(unsigned Depth) {
    if (Depth == 0 || R.chance(0.3)) {
      if (R.chance(0.5))
        return filter(pred(1));
      return mod(field(), value());
    }
    switch (R.below(7)) {
    case 0:
    case 1:
      return unite(policy(Depth - 1), policy(Depth - 1));
    case 2:
    case 3:
    case 4:
      return seq(policy(Depth - 1), policy(Depth - 1));
    case 5:
      return star(policy(Depth > 2 ? 1 : Depth - 1));
    default:
      return filter(pred(Depth));
    }
  }

  Packet packet() {
    Packet P = makePacket({1, static_cast<PortId>(R.range(1, 3))}, {});
    for (FieldId F : Fields)
      P.set(F, value());
    return P;
  }
};

PacketSet applyActionSet(const ActionSet &Acts, const Packet &P) {
  PacketSet Out;
  for (const flowtable::ActionSeq &A : Acts)
    Out.insert(flowtable::applyActionSeq(A, P));
  return Out;
}

} // namespace

class FddEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FddEquivalence, FddMatchesDenotationalSemantics) {
  Gen G(GetParam());
  FddManager M;
  for (int Trial = 0; Trial != 20; ++Trial) {
    PolicyRef P = G.policy(4);
    NodeId D = M.compile(P);
    for (int PktTrial = 0; PktTrial != 10; ++PktTrial) {
      Packet Pkt = G.packet();
      PacketSet Want = evalPolicy(P, Pkt);
      PacketSet Got = applyActionSet(M.evaluate(D, Pkt), Pkt);
      ASSERT_EQ(Got, Want) << "policy: " << P->str()
                           << "\npacket: " << Pkt.str();
    }
  }
}

TEST_P(FddEquivalence, TableMatchesFdd) {
  Gen G(GetParam() ^ 0xabcdef);
  FddManager M;
  for (int Trial = 0; Trial != 10; ++Trial) {
    PolicyRef P = G.policy(4);
    NodeId D = M.compile(P);
    flowtable::Table T = M.toTable(D);
    for (int PktTrial = 0; PktTrial != 10; ++PktTrial) {
      Packet Pkt = G.packet();
      PacketSet FromFdd = applyActionSet(M.evaluate(D, Pkt), Pkt);
      auto Applied = T.apply(Pkt);
      PacketSet FromTable(Applied.begin(), Applied.end());
      ASSERT_EQ(FromTable, FromFdd)
          << "policy: " << P->str() << "\npacket: " << Pkt.str()
          << "\ntable:\n"
          << T.str();
    }
  }
}

TEST_P(FddEquivalence, UnionSeqAlgebraicLaws) {
  Gen G(GetParam() ^ 0x5eed);
  FddManager M;
  for (int Trial = 0; Trial != 10; ++Trial) {
    NodeId A = M.compile(G.policy(3));
    NodeId B = M.compile(G.policy(3));
    NodeId C = M.compile(G.policy(3));
    // + is associative/commutative/idempotent on hash-consed diagrams.
    EXPECT_EQ(M.unionFdd(A, B), M.unionFdd(B, A));
    EXPECT_EQ(M.unionFdd(M.unionFdd(A, B), C),
              M.unionFdd(A, M.unionFdd(B, C)));
    EXPECT_EQ(M.unionFdd(A, A), A);
    // ; distributes over + on the left and right.
    EXPECT_EQ(M.seqFdd(M.unionFdd(A, B), C),
              M.unionFdd(M.seqFdd(A, C), M.seqFdd(B, C)));
    EXPECT_EQ(M.seqFdd(A, M.unionFdd(B, C)),
              M.unionFdd(M.seqFdd(A, B), M.seqFdd(A, C)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FddEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));
