//===- tests/fdd/FddTest.cpp - FDD compiler unit tests --------------------===//

#include "fdd/Fdd.h"

#include "netkat/Eval.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::fdd;
using namespace eventnet::netkat;

namespace {

FieldId fA() { return fieldOf("fdd_a"); }
FieldId fB() { return fieldOf("fdd_b"); }

Packet pktAB(Value A, Value B) {
  return makePacket({1, 1}, {{fA(), A}, {fB(), B}});
}

} // namespace

TEST(Fdd, LeavesAreInterned) {
  FddManager M;
  EXPECT_EQ(M.makeLeaf({}), M.dropLeaf());
  EXPECT_EQ(M.makeLeaf({flowtable::ActionSeq{}}), M.idLeaf());
}

TEST(Fdd, TestCollapsesEqualChildren) {
  FddManager M;
  NodeId N = M.makeTest(TestKey{fA(), 1}, M.idLeaf(), M.idLeaf());
  EXPECT_EQ(N, M.idLeaf());
}

TEST(Fdd, HashConsingSharesNodes) {
  FddManager M;
  NodeId A = M.makeTest(TestKey{fA(), 1}, M.idLeaf(), M.dropLeaf());
  NodeId B = M.makeTest(TestKey{fA(), 1}, M.idLeaf(), M.dropLeaf());
  EXPECT_EQ(A, B);
}

TEST(Fdd, FromPredMatchesEval) {
  FddManager M;
  PredRef P = pOr(pAnd(pTest(fA(), 1), pNot(pTest(fB(), 2))),
                  pTest(fB(), 3));
  NodeId D = M.fromPred(P);
  for (Value A = 0; A != 4; ++A)
    for (Value B = 0; B != 4; ++B) {
      Packet Pkt = pktAB(A, B);
      bool Expect = evalPred(P, Pkt);
      ActionSet Got = M.evaluate(D, Pkt);
      EXPECT_EQ(!Got.empty(), Expect) << Pkt.str();
    }
}

TEST(Fdd, NotIsComplement) {
  FddManager M;
  PredRef P = pAnd(pTest(fA(), 1), pTest(fB(), 2));
  NodeId D = M.fromPred(P);
  NodeId ND = M.notFdd(D);
  for (Value A = 0; A != 3; ++A)
    for (Value B = 0; B != 3; ++B) {
      Packet Pkt = pktAB(A, B);
      EXPECT_NE(M.evaluate(D, Pkt).empty(), M.evaluate(ND, Pkt).empty());
    }
}

TEST(Fdd, UnionIsIdempotentCommutative) {
  FddManager M;
  NodeId A = M.compile(seq(filter(pTest(fA(), 1)), mod(fB(), 5)));
  NodeId B = M.compile(seq(filter(pTest(fA(), 2)), mod(fB(), 6)));
  EXPECT_EQ(M.unionFdd(A, A), A);
  EXPECT_EQ(M.unionFdd(A, B), M.unionFdd(B, A));
  EXPECT_EQ(M.unionFdd(A, M.dropLeaf()), A);
}

TEST(Fdd, SeqWithDropAndId) {
  FddManager M;
  NodeId A = M.compile(mod(fB(), 5));
  EXPECT_EQ(M.seqFdd(A, M.dropLeaf()), M.dropLeaf());
  EXPECT_EQ(M.seqFdd(M.dropLeaf(), A), M.dropLeaf());
  EXPECT_EQ(M.seqFdd(M.idLeaf(), A), A);
  EXPECT_EQ(M.seqFdd(A, M.idLeaf()), A);
}

TEST(Fdd, SeqResolvesTestsAgainstWrites) {
  FddManager M;
  // (fA<-1); (fA=1; fB<-7): the test must be resolved true.
  NodeId D = M.compile(
      seq(mod(fA(), 1), seq(filter(pTest(fA(), 1)), mod(fB(), 7))));
  ActionSet Acts = M.evaluate(D, pktAB(0, 0));
  ASSERT_EQ(Acts.size(), 1u);
  // The composed write set is {fA:=1, fB:=7}.
  flowtable::ActionSeq Want =
      flowtable::normalizeActionSeq({{fA(), 1}, {fB(), 7}});
  EXPECT_EQ(*Acts.begin(), Want);

  // (fA<-2); (fA=1; fB<-7) must drop.
  NodeId D2 = M.compile(
      seq(mod(fA(), 2), seq(filter(pTest(fA(), 1)), mod(fB(), 7))));
  EXPECT_EQ(D2, M.dropLeaf());
}

TEST(Fdd, SeqResolvesTestsAgainstPathContext) {
  FddManager M;
  // fA=1; fA=1 collapses to fA=1 (positive context).
  NodeId D = M.compile(seq(filter(pTest(fA(), 1)), filter(pTest(fA(), 1))));
  EXPECT_EQ(D, M.fromPred(pTest(fA(), 1)));
  // fA=1; fA=2 is drop (contradiction).
  NodeId D2 = M.compile(seq(filter(pTest(fA(), 1)), filter(pTest(fA(), 2))));
  EXPECT_EQ(D2, M.dropLeaf());
  // not(fA=1); fA=1 is drop (negative context).
  NodeId D3 =
      M.compile(seq(filter(pNot(pTest(fA(), 1))), filter(pTest(fA(), 1))));
  EXPECT_EQ(D3, M.dropLeaf());
}

TEST(Fdd, StarConverges) {
  FddManager M;
  PolicyRef Bump = unite(seq(filter(pTest(fA(), 0)), mod(fA(), 1)),
                         seq(filter(pTest(fA(), 1)), mod(fA(), 2)));
  NodeId D = M.starFdd(M.compile(Bump));
  ActionSet Acts = M.evaluate(D, pktAB(0, 0));
  // id, fA:=1, fA:=2.
  EXPECT_EQ(Acts.size(), 3u);
}

TEST(Fdd, StarOfDropIsId) {
  FddManager M;
  EXPECT_EQ(M.starFdd(M.dropLeaf()), M.idLeaf());
  EXPECT_EQ(M.starFdd(M.idLeaf()), M.idLeaf());
}

TEST(Fdd, RestrictEqRemovesTests) {
  FddManager M;
  NodeId D = M.compile(seq(filter(pSw(3)), modPt(1)));
  NodeId At3 = M.restrictEq(D, FieldSw, 3);
  NodeId At4 = M.restrictEq(D, FieldSw, 4);
  EXPECT_EQ(At4, M.dropLeaf());
  Packet P = makePacket({3, 2}, {});
  EXPECT_EQ(M.evaluate(At3, P).size(), 1u);
}

TEST(Fdd, RestrictNeqRemovesExactTest) {
  FddManager M;
  NodeId D = M.fromPred(pTest(fA(), 1));
  EXPECT_EQ(M.restrictNeq(D, fA(), 1), M.dropLeaf());
  EXPECT_EQ(M.restrictNeq(D, fA(), 2), D);
}

TEST(Fdd, CompileLinkIsLocatedTeleport) {
  FddManager M;
  NodeId D = M.compile(link({1, 1}, {4, 2}));
  Packet AtSrc = makePacket({1, 1}, {});
  ActionSet Acts = M.evaluate(D, AtSrc);
  ASSERT_EQ(Acts.size(), 1u);
  Packet Out = flowtable::applyActionSeq(*Acts.begin(), AtSrc);
  EXPECT_EQ(Out.loc(), (Location{4, 2}));
  EXPECT_TRUE(M.evaluate(D, makePacket({1, 2}, {})).empty());
}
