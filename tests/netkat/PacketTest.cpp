//===- tests/netkat/PacketTest.cpp - Packet model unit tests --------------===//

#include "netkat/Packet.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::netkat;

namespace {
FieldId fDst() { return fieldOf("ip_dst"); }
FieldId fSrc() { return fieldOf("ip_src"); }
} // namespace

TEST(Packet, SetGetRoundTrip) {
  Packet P;
  P.set(fDst(), 4);
  EXPECT_TRUE(P.has(fDst()));
  EXPECT_EQ(P.get(fDst()), 4);
  EXPECT_FALSE(P.has(fSrc()));
  EXPECT_EQ(P.getOr(fSrc(), -1), -1);
}

TEST(Packet, SetOverwrites) {
  Packet P;
  P.set(fDst(), 4);
  P.set(fDst(), 7);
  EXPECT_EQ(P.get(fDst()), 7);
  EXPECT_EQ(P.fields().size(), 1u);
}

TEST(Packet, FieldsStaySorted) {
  Packet P;
  P.set(fSrc(), 9);
  P.set(FieldSw, 1);
  P.set(fDst(), 2);
  FieldId Prev = 0;
  for (size_t I = 0; I != P.fields().size(); ++I) {
    if (I) {
      EXPECT_GT(P.fields()[I].first, Prev);
    }
    Prev = P.fields()[I].first;
  }
}

TEST(Packet, LocationHelpers) {
  Packet P = makePacket({3, 2}, {{fDst(), 1}});
  EXPECT_EQ(P.sw(), 3u);
  EXPECT_EQ(P.pt(), 2u);
  P.setLoc({5, 6});
  EXPECT_EQ(P.loc(), (Location{5, 6}));
}

TEST(Packet, EqualityIsStructural) {
  Packet A, B;
  A.set(fDst(), 1);
  A.set(fSrc(), 2);
  B.set(fSrc(), 2);
  B.set(fDst(), 1);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
  B.set(fSrc(), 3);
  EXPECT_NE(A, B);
}

TEST(Packet, EraseRemovesField) {
  Packet P;
  P.set(fDst(), 1);
  P.erase(fDst());
  EXPECT_FALSE(P.has(fDst()));
  P.erase(fDst()); // idempotent on absent field
  EXPECT_EQ(P, Packet());
}

TEST(Packet, ConstructorCollapsesDuplicates) {
  Packet P({{fDst(), 1}, {fDst(), 2}});
  EXPECT_EQ(P.get(fDst()), 2);
  EXPECT_EQ(P.fields().size(), 1u);
}

TEST(Packet, StrMentionsFieldNames) {
  Packet P = makePacket({1, 2}, {});
  std::string S = P.str();
  EXPECT_NE(S.find("sw=1"), std::string::npos);
  EXPECT_NE(S.find("pt=2"), std::string::npos);
}
