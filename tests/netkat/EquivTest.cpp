//===- tests/netkat/EquivTest.cpp - Equivalence decision procedure --------===//
//
// The KAT axioms the paper's Section 3.2 relies on ("preserves the
// existing equational theory of the individual static configurations"),
// decided by canonical FDDs, plus randomized soundness against the
// denotational evaluator.
//
//===----------------------------------------------------------------------===//

#include "fdd/Equiv.h"

#include "netkat/Eval.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::netkat;

namespace {
FieldId fA() { return fieldOf("eq_a"); }
FieldId fB() { return fieldOf("eq_b"); }
} // namespace

TEST(Equiv, KatAxioms) {
  PolicyRef P = seq(filter(pTest(fA(), 1)), mod(fB(), 2));
  PolicyRef Q = mod(fA(), 3);
  PolicyRef R = filter(pTest(fB(), 2));

  // + is ACI with identity drop.
  EXPECT_TRUE(equivalent(unite(P, Q), unite(Q, P)));
  EXPECT_TRUE(equivalent(unite(P, unite(Q, R)), unite(unite(P, Q), R)));
  EXPECT_TRUE(equivalent(unite(P, P), P));
  EXPECT_TRUE(equivalent(unite(P, drop()), P));
  // ; is associative with identity skip and annihilator drop.
  EXPECT_TRUE(equivalent(seq(P, seq(Q, R)), seq(seq(P, Q), R)));
  EXPECT_TRUE(equivalent(seq(P, skip()), P));
  EXPECT_TRUE(equivalent(seq(skip(), P), P));
  EXPECT_TRUE(equivalent(seq(P, drop()), drop()));
  // Distributivity.
  EXPECT_TRUE(equivalent(seq(P, unite(Q, R)),
                         unite(seq(P, Q), seq(P, R))));
  EXPECT_TRUE(equivalent(seq(unite(P, Q), R),
                         unite(seq(P, R), seq(Q, R))));
  // Star unrolling: p* = 1 + p;p*.
  EXPECT_TRUE(equivalent(star(P), unite(skip(), seq(P, star(P)))));
}

TEST(Equiv, PacketAlgebraAxioms) {
  // f<-n; f=n ≡ f<-n   and   f=n; f<-n ≡ f=n.
  EXPECT_TRUE(equivalent(seq(mod(fA(), 1), filter(pTest(fA(), 1))),
                         mod(fA(), 1)));
  EXPECT_TRUE(equivalent(seq(filter(pTest(fA(), 1)), mod(fA(), 1)),
                         filter(pTest(fA(), 1))));
  // f<-n; f<-m ≡ f<-m.
  EXPECT_TRUE(equivalent(seq(mod(fA(), 1), mod(fA(), 2)), mod(fA(), 2)));
  // Writes to distinct fields commute.
  EXPECT_TRUE(equivalent(seq(mod(fA(), 1), mod(fB(), 2)),
                         seq(mod(fB(), 2), mod(fA(), 1))));
  // f=n; f=m ≡ drop for n != m.
  EXPECT_TRUE(equivalent(seq(filter(pTest(fA(), 1)), filter(pTest(fA(), 2))),
                         drop()));
}

TEST(Equiv, PredicateEquivalence) {
  // De Morgan.
  PredRef A = pTest(fA(), 1), B = pTest(fB(), 2);
  EXPECT_TRUE(equivalentPred(pNot(pAnd(A, B)), pOr(pNot(A), pNot(B))));
  EXPECT_TRUE(equivalentPred(pNot(pOr(A, B)), pAnd(pNot(A), pNot(B))));
  // Excluded middle collapses to true.
  EXPECT_TRUE(equivalentPred(pOr(A, pNot(A)), pTrue()));
  EXPECT_FALSE(equivalentPred(A, B));
}

TEST(Equiv, OrderingAndEmptiness) {
  PolicyRef Narrow = seq(filter(pTest(fA(), 1)), modPt(1));
  PolicyRef Wide = modPt(1);
  EXPECT_TRUE(lessOrEqual(Narrow, Wide));
  EXPECT_FALSE(lessOrEqual(Wide, Narrow));
  EXPECT_TRUE(lessOrEqual(drop(), Narrow));
  EXPECT_TRUE(isEmpty(seq(filter(pTest(fA(), 1)), filter(pTest(fA(), 2)))));
  EXPECT_FALSE(isEmpty(Narrow));
}

TEST(Equiv, LinkAwareEquivalence) {
  // A link equals its located-transfer expansion.
  PolicyRef L = link({1, 1}, {4, 2});
  PolicyRef Expanded = seqAll({filter(pAt({1, 1})), mod(FieldSw, 4),
                               mod(FieldPt, 2)});
  EXPECT_TRUE(equivalent(L, Expanded));
}

class EquivProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivProperty, AgreesWithDenotationalSemantics) {
  // equivalent(P, Q) implies equal outputs on sampled packets; and
  // structurally-perturbed policies that differ on some packet are not
  // declared equivalent.
  Rng R(GetParam());
  for (int Trial = 0; Trial != 20; ++Trial) {
    PolicyRef P = unite(seq(filter(pTest(fA(), R.range(0, 2))),
                            mod(fB(), R.range(0, 2))),
                        filter(pTest(fB(), R.range(0, 2))));
    PolicyRef Q = unite(seq(filter(pTest(fA(), R.range(0, 2))),
                            mod(fB(), R.range(0, 2))),
                        filter(pTest(fB(), R.range(0, 2))));
    bool Eq = equivalent(P, Q);
    bool SameOnSamples = true;
    for (Value A = 0; A != 3 && SameOnSamples; ++A)
      for (Value B = 0; B != 3 && SameOnSamples; ++B) {
        Packet Pkt = makePacket({1, 1}, {{fA(), A}, {fB(), B}});
        SameOnSamples = evalPolicy(P, Pkt) == evalPolicy(Q, Pkt);
      }
    // The sample grid covers the full value alphabet these policies
    // mention, so sampling equality coincides with equivalence.
    EXPECT_EQ(Eq, SameOnSamples) << P->str() << "\nvs\n" << Q->str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivProperty,
                         ::testing::Values(2, 4, 6));
