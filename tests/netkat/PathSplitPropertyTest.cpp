//===- tests/netkat/PathSplitPropertyTest.cpp - Random path programs ------===//
//
// Property: for randomly generated multi-hop path programs, evaluating
// the *global* program end-to-end equals iterating the link-cut *local*
// policy hop by hop across the physical links — the semantic contract
// that lets per-switch tables implement a global NetKAT specification.
//
//===----------------------------------------------------------------------===//

#include "netkat/PathSplit.h"

#include "netkat/Eval.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::netkat;

namespace {

FieldId fA() { return fieldOf("psp_a"); }
FieldId fB() { return fieldOf("psp_b"); }

/// Random clause: ingress filter + mods, then 0..3 links with local
/// processing between them. Links form a line 1 -> 2 -> 3 -> 4 using
/// port 1 eastbound; ingress at port 9.
///
/// Each clause tests a *distinct* value of the never-modified field fA
/// (clause index), mirroring how the paper's programs keep a
/// distinguishing header field (ip_dst) along every path. Programs whose
/// clauses are not distinguishable by unmodified fields are outside the
/// hop-splittable fragment (see PathSplit.h): their continuations are
/// physically ambiguous without packet tags.
PolicyRef randomClause(Rng &R, unsigned ClauseIdx,
                       std::vector<std::pair<Location, Location>> &Links) {
  std::vector<PolicyRef> Parts;
  Parts.push_back(filter(pPt(9)));
  Parts.push_back(filter(pTest(fA(), ClauseIdx)));
  unsigned Hops = static_cast<unsigned>(R.below(4));
  SwitchId Sw = 1;
  for (unsigned H = 0; H != Hops; ++H) {
    if (R.chance(0.5))
      Parts.push_back(mod(fB(), R.range(0, 3)));
    Parts.push_back(modPt(1));
    Location Src{Sw, 1}, Dst{Sw + 1, 2};
    Parts.push_back(link(Src, Dst));
    Links.push_back({Src, Dst});
    Sw += 1;
  }
  if (R.chance(0.5))
    Parts.push_back(mod(fB(), R.range(0, 3)));
  Parts.push_back(modPt(8)); // egress port
  return seqAll(Parts);
}

PacketSet runLocal(const PolicyRef &Local,
                   const std::vector<std::pair<Location, Location>> &Links,
                   const Packet &In) {
  PacketSet Done;
  PacketSet Frontier{In};
  for (unsigned Hop = 0; Hop != 12 && !Frontier.empty(); ++Hop) {
    PacketSet Next;
    for (const Packet &P : Frontier)
      for (const Packet &Q : evalPolicy(Local, P)) {
        bool Moved = false;
        for (const auto &[Src, Dst] : Links)
          if (Q.loc() == Src) {
            Packet Rp = Q;
            Rp.setLoc(Dst);
            Next.insert(Rp);
            Moved = true;
          }
        if (!Moved)
          Done.insert(Q);
      }
    Frontier = std::move(Next);
  }
  return Done;
}

} // namespace

class PathSplitProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PathSplitProperty, GlobalEqualsIteratedLocal) {
  Rng R(GetParam());
  for (int Trial = 0; Trial != 30; ++Trial) {
    std::vector<std::pair<Location, Location>> Links;
    unsigned NumClauses = 1 + static_cast<unsigned>(R.below(3));
    std::vector<PolicyRef> Clauses;
    for (unsigned I = 0; I != NumClauses; ++I)
      Clauses.push_back(randomClause(R, I, Links));
    PolicyRef Global = uniteAll(Clauses);

    PathSplitResult Split = splitAtLinks(Global);
    ASSERT_TRUE(Split.Ok) << Split.Error;

    for (int PktTrial = 0; PktTrial != 8; ++PktTrial) {
      Packet In = makePacket({1, 9}, {{fA(), R.range(0, 2)},
                                      {fB(), R.range(0, 3)}});
      PacketSet Want = evalPolicy(Global, In);
      PacketSet Got = runLocal(Split.Local, Links, In);
      ASSERT_EQ(Got, Want) << "global: " << Global->str() << "\npacket: "
                           << In.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathSplitProperty,
                         ::testing::Values(11, 22, 33, 44, 55));
