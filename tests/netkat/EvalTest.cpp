//===- tests/netkat/EvalTest.cpp - NetKAT denotational semantics tests ----===//

#include "netkat/Eval.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::netkat;

namespace {

FieldId fDst() { return fieldOf("ip_dst"); }

Packet at(SwitchId Sw, PortId Pt, Value Dst) {
  return makePacket({Sw, Pt}, {{fDst(), Dst}});
}

} // namespace

TEST(EvalPred, TestsAndConnectives) {
  Packet P = at(1, 2, 4);
  EXPECT_TRUE(evalPred(pTest(fDst(), 4), P));
  EXPECT_FALSE(evalPred(pTest(fDst(), 5), P));
  EXPECT_TRUE(evalPred(pAnd(pSw(1), pPt(2)), P));
  EXPECT_FALSE(evalPred(pAnd(pSw(1), pPt(3)), P));
  EXPECT_TRUE(evalPred(pOr(pSw(9), pPt(2)), P));
  EXPECT_TRUE(evalPred(pNot(pTest(fDst(), 5)), P));
}

TEST(EvalPred, MissingFieldTestIsFalse) {
  Packet P = makePacket({1, 1}, {});
  EXPECT_FALSE(evalPred(pTest(fDst(), 0), P));
  EXPECT_TRUE(evalPred(pNot(pTest(fDst(), 0)), P));
}

TEST(EvalPolicy, FilterKeepsOrDrops) {
  Packet P = at(1, 2, 4);
  EXPECT_EQ(evalPolicy(filter(pTest(fDst(), 4)), P), PacketSet{P});
  EXPECT_TRUE(evalPolicy(filter(pTest(fDst(), 5)), P).empty());
  EXPECT_TRUE(evalPolicy(drop(), P).empty());
  EXPECT_EQ(evalPolicy(skip(), P), PacketSet{P});
}

TEST(EvalPolicy, ModWrites) {
  Packet P = at(1, 2, 4);
  PacketSet Out = evalPolicy(mod(fDst(), 9), P);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out.begin()->get(fDst()), 9);
}

TEST(EvalPolicy, UnionProducesBothOutputs) {
  Packet P = at(1, 2, 4);
  PacketSet Out = evalPolicy(unite(modPt(1), modPt(3)), P);
  EXPECT_EQ(Out.size(), 2u);
}

TEST(EvalPolicy, SeqComposes) {
  Packet P = at(1, 2, 4);
  PolicyRef Pol = seq(filter(pTest(fDst(), 4)), modPt(1));
  PacketSet Out = evalPolicy(Pol, P);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out.begin()->pt(), 1u);

  // The filter gates the mod.
  Packet Q = at(1, 2, 5);
  EXPECT_TRUE(evalPolicy(Pol, Q).empty());
}

TEST(EvalPolicy, SeqLastWriteWins) {
  Packet P = at(1, 2, 4);
  PacketSet Out = evalPolicy(seq(mod(fDst(), 7), mod(fDst(), 8)), P);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out.begin()->get(fDst()), 8);
}

TEST(EvalPolicy, LinkMovesMatchingPacket) {
  Packet P = at(1, 1, 4);
  PolicyRef L = link({1, 1}, {4, 1});
  PacketSet Out = evalPolicy(L, P);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out.begin()->loc(), (Location{4, 1}));

  // A packet not at the link source is dropped by the link.
  EXPECT_TRUE(evalPolicy(L, at(1, 2, 4)).empty());
  EXPECT_TRUE(evalPolicy(L, at(2, 1, 4)).empty());
}

TEST(EvalPolicy, StarIsReflexiveTransitiveClosure) {
  // (dst<-dst+1 capped): model with chain of filters/mods:
  // p = (dst=0; dst<-1) + (dst=1; dst<-2)
  PolicyRef Step = unite(seq(filter(pTest(fDst(), 0)), mod(fDst(), 1)),
                         seq(filter(pTest(fDst(), 1)), mod(fDst(), 2)));
  Packet P = at(1, 1, 0);
  PacketSet Out = evalPolicy(star(Step), P);
  // Reflexive: dst=0 stays; one step: dst=1; two steps: dst=2.
  EXPECT_EQ(Out.size(), 3u);
}

TEST(EvalPolicy, StarOfModConverges) {
  PacketSet Out = evalPolicy(star(mod(fDst(), 5)), at(1, 1, 0));
  // {original, modified}.
  EXPECT_EQ(Out.size(), 2u);
}

TEST(EvalPolicy, SetOverload) {
  PacketSet In{at(1, 1, 0), at(1, 1, 1)};
  PacketSet Out = evalPolicy(mod(fDst(), 9), In);
  // Both inputs collapse to the same output packet.
  EXPECT_EQ(Out.size(), 1u);
}
