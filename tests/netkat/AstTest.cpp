//===- tests/netkat/AstTest.cpp - Smart constructor unit tests ------------===//

#include "netkat/Ast.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::netkat;

namespace {
FieldId fA() { return fieldOf("ast_a"); }
} // namespace

TEST(PredCtors, ConstantsAreShared) {
  EXPECT_EQ(pTrue().get(), pTrue().get());
  EXPECT_EQ(pFalse().get(), pFalse().get());
}

TEST(PredCtors, AndAbsorption) {
  PredRef T = pTest(fA(), 1);
  EXPECT_TRUE(isTriviallyFalse(pAnd(T, pFalse())));
  EXPECT_TRUE(isTriviallyFalse(pAnd(pFalse(), T)));
  EXPECT_EQ(pAnd(pTrue(), T).get(), T.get());
  EXPECT_EQ(pAnd(T, pTrue()).get(), T.get());
}

TEST(PredCtors, OrAbsorption) {
  PredRef T = pTest(fA(), 1);
  EXPECT_TRUE(isTriviallyTrue(pOr(T, pTrue())));
  EXPECT_EQ(pOr(pFalse(), T).get(), T.get());
}

TEST(PredCtors, NotSimplifications) {
  EXPECT_TRUE(isTriviallyFalse(pNot(pTrue())));
  EXPECT_TRUE(isTriviallyTrue(pNot(pFalse())));
  PredRef T = pTest(fA(), 1);
  // Double negation cancels.
  EXPECT_EQ(pNot(pNot(T)).get(), T.get());
}

TEST(PredCtors, AndAllEmptyIsTrue) {
  EXPECT_TRUE(isTriviallyTrue(pAndAll({})));
}

TEST(PolicyCtors, SeqAbsorption) {
  PolicyRef M = mod(fA(), 1);
  EXPECT_TRUE(isDrop(seq(drop(), M)));
  EXPECT_TRUE(isDrop(seq(M, drop())));
  EXPECT_EQ(seq(skip(), M).get(), M.get());
  EXPECT_EQ(seq(M, skip()).get(), M.get());
}

TEST(PolicyCtors, UnionDropIdentity) {
  PolicyRef M = mod(fA(), 1);
  EXPECT_EQ(unite(drop(), M).get(), M.get());
  EXPECT_EQ(unite(M, drop()).get(), M.get());
}

TEST(PolicyCtors, StarOfTrivial) {
  EXPECT_TRUE(isSkip(star(drop())));
  EXPECT_TRUE(isSkip(star(skip())));
}

TEST(PolicyCtors, UniteAllEmptyIsDrop) {
  EXPECT_TRUE(isDrop(uniteAll({})));
  EXPECT_TRUE(isSkip(seqAll({})));
}

TEST(PolicyQueries, ContainsLink) {
  PolicyRef L = link({1, 1}, {2, 1});
  EXPECT_TRUE(containsLink(L));
  EXPECT_TRUE(containsLink(seq(mod(fA(), 1), L)));
  EXPECT_FALSE(containsLink(seq(mod(fA(), 1), filter(pTest(fA(), 2)))));
  EXPECT_TRUE(containsLink(star(L)));
}

TEST(PolicyQueries, ModifiesSwitch) {
  EXPECT_TRUE(modifiesSwitch(mod(FieldSw, 3)));
  EXPECT_FALSE(modifiesSwitch(mod(FieldPt, 3)));
  EXPECT_TRUE(modifiesSwitch(unite(skip(), mod(FieldSw, 1))));
}

TEST(PolicyQueries, PolicySizeCountsNodes) {
  PolicyRef P = seq(filter(pTest(fA(), 1)), mod(fA(), 2));
  EXPECT_EQ(policySize(P), 3u);
}

TEST(Printing, RoundTripMentionsStructure) {
  PolicyRef P = unite(seq(filter(pTest(fA(), 1)), modPt(2)),
                      link({1, 1}, {4, 1}));
  std::string S = P->str();
  EXPECT_NE(S.find("ast_a=1"), std::string::npos);
  EXPECT_NE(S.find("pt:=2"), std::string::npos);
  EXPECT_NE(S.find("(1:1)->(4:1)"), std::string::npos);
}
