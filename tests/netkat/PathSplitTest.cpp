//===- tests/netkat/PathSplitTest.cpp - Link-cut decomposition tests ------===//
//
// Validates the global-to-local decomposition: evaluating the *global*
// program end-to-end must coincide with iterating the *local* policy and
// the physical links hop by hop.
//
//===----------------------------------------------------------------------===//

#include "netkat/PathSplit.h"

#include "netkat/Eval.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::netkat;

namespace {

FieldId fDst() { return fieldOf("ip_dst"); }

/// Applies local policy then physical links until quiescence, collecting
/// every packet that has no further move. Mirrors what the network does.
PacketSet runLocal(const PolicyRef &Local,
                   const std::vector<std::pair<Location, Location>> &Links,
                   const Packet &In, unsigned MaxHops = 16) {
  PacketSet Done;
  PacketSet Frontier{In};
  for (unsigned Hop = 0; Hop != MaxHops && !Frontier.empty(); ++Hop) {
    PacketSet Next;
    for (const Packet &P : Frontier) {
      PacketSet Out = evalPolicy(Local, P);
      for (const Packet &Q : Out) {
        bool Moved = false;
        for (const auto &[Src, Dst] : Links)
          if (Q.loc() == Src) {
            Packet R = Q;
            R.setLoc(Dst);
            Next.insert(R);
            Moved = true;
          }
        if (!Moved)
          Done.insert(Q);
      }
    }
    Frontier = std::move(Next);
  }
  return Done;
}

} // namespace

TEST(PathSplit, LinkFreePolicyPassesThrough) {
  PolicyRef P = seq(filter(pTest(fDst(), 4)), modPt(1));
  PathSplitResult R = splitAtLinks(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.Links.empty());
  Packet In = makePacket({1, 2}, {{fDst(), 4}});
  EXPECT_EQ(evalPolicy(R.Local, In), evalPolicy(P, In));
}

TEST(PathSplit, SingleLinkPath) {
  // The firewall's outbound clause: pt=2 and dst=4; pt<-1; (1:1)->(4:1);
  // pt<-2.
  PolicyRef P = seqAll({filter(pAnd(pPt(2), pTest(fDst(), 4))), modPt(1),
                        link({1, 1}, {4, 1}), modPt(2)});
  PathSplitResult R = splitAtLinks(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Links.size(), 1u);

  Packet In = makePacket({1, 2}, {{fDst(), 4}});
  PacketSet Global = evalPolicy(P, In);
  PacketSet Local = runLocal(R.Local, R.Links, In);
  EXPECT_EQ(Global, Local);
  ASSERT_EQ(Local.size(), 1u);
  EXPECT_EQ(Local.begin()->loc(), (Location{4, 2}));
}

TEST(PathSplit, WrongIngressSwitchDropsAtFirstHop) {
  PolicyRef P = seqAll({filter(pPt(2)), modPt(1), link({1, 1}, {4, 1})});
  PathSplitResult R = splitAtLinks(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  // Same test (pt=2) but at switch 2: the hop prefix filter sw=1 must
  // reject it; the global program rejects it too (link source mismatch).
  Packet In = makePacket({2, 2}, {});
  EXPECT_TRUE(runLocal(R.Local, R.Links, In).empty());
  EXPECT_TRUE(evalPolicy(P, In).empty());
}

TEST(PathSplit, TwoHopChain) {
  // 1 -> 2 -> 3 with a header rewrite mid-path.
  PolicyRef P =
      seqAll({filter(pPt(2)), modPt(1), link({1, 1}, {2, 1}), mod(fDst(), 9),
              modPt(2), link({2, 2}, {3, 1}), modPt(5)});
  PathSplitResult R = splitAtLinks(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Links.size(), 2u);

  Packet In = makePacket({1, 2}, {{fDst(), 4}});
  PacketSet Global = evalPolicy(P, In);
  PacketSet Local = runLocal(R.Local, R.Links, In);
  EXPECT_EQ(Global, Local);
  ASSERT_EQ(Local.size(), 1u);
  EXPECT_EQ(Local.begin()->loc(), (Location{3, 5}));
  EXPECT_EQ(Local.begin()->get(fDst()), 9);
}

TEST(PathSplit, UnionOfPathsMulticasts) {
  // Flood: one input copied over two links (learning-switch shape).
  PolicyRef Path1 = seqAll({modPt(1), link({4, 1}, {1, 1}), modPt(2)});
  PolicyRef Path2 = seqAll({modPt(3), link({4, 3}, {2, 1}), modPt(2)});
  PolicyRef P = seq(filter(pPt(2)), unite(Path1, Path2));
  PathSplitResult R = splitAtLinks(P);
  ASSERT_TRUE(R.Ok) << R.Error;

  Packet In = makePacket({4, 2}, {});
  PacketSet Global = evalPolicy(P, In);
  PacketSet Local = runLocal(R.Local, R.Links, In);
  EXPECT_EQ(Global, Local);
  EXPECT_EQ(Local.size(), 2u);
}

TEST(PathSplit, StarOverLinkRejected) {
  PolicyRef P = star(link({1, 1}, {2, 1}));
  PathSplitResult R = splitAtLinks(P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("iteration"), std::string::npos);
}

TEST(PathSplit, SwAssignmentRejected) {
  PolicyRef P = mod(FieldSw, 2);
  PathSplitResult R = splitAtLinks(P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("sw"), std::string::npos);
}

TEST(PathSplit, LinkFreeStarInsideClauseIsAllowed) {
  PolicyRef Bump = unite(seq(filter(pTest(fDst(), 0)), mod(fDst(), 1)),
                         seq(filter(pTest(fDst(), 1)), mod(fDst(), 2)));
  PolicyRef P = seqAll({filter(pPt(2)), star(Bump), modPt(1),
                        link({1, 1}, {2, 1})});
  PathSplitResult R = splitAtLinks(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  Packet In = makePacket({1, 2}, {{fDst(), 0}});
  EXPECT_EQ(evalPolicy(P, In), runLocal(R.Local, R.Links, In));
}
