//===- tests/sim/WireFrameTest.cpp - Socket framing tests -----------------===//

#include "sim/Wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace eventnet;
using namespace eventnet::sim;

namespace {

std::vector<uint8_t> encode(const WireFrame &F) {
  std::vector<uint8_t> Buf(WireFrameBytes);
  EXPECT_EQ(encodeFrame(F, Buf.data()), WireFrameBytes);
  return Buf;
}

} // namespace

TEST(WireFrame, ByteOrderHelpersRoundTrip) {
  uint8_t B[8];
  wirePut16(B, 0xBEEF);
  EXPECT_EQ(wireGet16(B), 0xBEEF);
  EXPECT_EQ(B[0], 0xEF); // little-endian on the wire
  wirePut32(B, 0xDEADBEEFu);
  EXPECT_EQ(wireGet32(B), 0xDEADBEEFu);
  EXPECT_EQ(B[0], 0xEF);
  EXPECT_EQ(B[3], 0xDE);
  wirePut64(B, 0x0123456789ABCDEFull);
  EXPECT_EQ(wireGet64(B), 0x0123456789ABCDEFull);
  EXPECT_EQ(B[0], 0xEF);
  EXPECT_EQ(B[7], 0x01);
}

TEST(WireFrame, RoundTripEveryType) {
  for (uint8_t T = WireFrame::Hello; T <= WireFrame::BarrierAck; ++T) {
    WireFrame F;
    F.T = T;
    F.A = 0x01020304u + T;
    F.B = 0xA0B0C0D0u - T;
    F.Kind = T * 7u;
    F.Seq = 0x1122334455667788ull + T;
    std::vector<uint8_t> Buf = encode(F);

    WireFrame G;
    size_t Consumed = ~size_t{0};
    ASSERT_EQ(decodeFrame(Buf.data(), Buf.size(), G, Consumed),
              FrameDecode::Ok)
        << "type " << unsigned(T);
    EXPECT_EQ(Consumed, WireFrameBytes);
    EXPECT_EQ(G.T, F.T);
    EXPECT_EQ(G.A, F.A);
    EXPECT_EQ(G.B, F.B);
    EXPECT_EQ(G.Kind, F.Kind);
    EXPECT_EQ(G.Seq, F.Seq);
  }
}

TEST(WireFrame, PartialReadAtEveryBoundary) {
  WireFrame F;
  F.T = WireFrame::Inject;
  F.A = 3;
  F.B = 9;
  F.Kind = KindRequest;
  F.Seq = 42;
  std::vector<uint8_t> Buf = encode(F);

  // Every strict prefix must report NeedMore and consume nothing: the
  // session keeps the bytes buffered and retries after the next read.
  for (size_t Len = 0; Len < Buf.size(); ++Len) {
    WireFrame G;
    size_t Consumed = ~size_t{0};
    EXPECT_EQ(decodeFrame(Buf.data(), Len, G, Consumed),
              FrameDecode::NeedMore)
        << "prefix " << Len;
    EXPECT_EQ(Consumed, 0u);
  }
}

TEST(WireFrame, BackToBackFramesDecodeInOrder) {
  std::vector<uint8_t> Stream;
  for (uint64_t Seq = 0; Seq < 5; ++Seq) {
    WireFrame F;
    F.T = WireFrame::Inject;
    F.A = 1;
    F.B = 2;
    F.Seq = Seq;
    std::vector<uint8_t> One = encode(F);
    Stream.insert(Stream.end(), One.begin(), One.end());
  }

  size_t Off = 0;
  for (uint64_t Seq = 0; Seq < 5; ++Seq) {
    WireFrame G;
    size_t Consumed = 0;
    ASSERT_EQ(decodeFrame(Stream.data() + Off, Stream.size() - Off, G,
                          Consumed),
              FrameDecode::Ok);
    EXPECT_EQ(G.Seq, Seq);
    Off += Consumed;
  }
  EXPECT_EQ(Off, Stream.size());
}

TEST(WireFrame, OversizedLengthRejectedBeforePayloadArrives) {
  // Only the 4-byte prefix has arrived, but the announced length already
  // condemns the stream: no amount of further bytes can redeem it.
  uint8_t Buf[4];
  wirePut32(Buf, static_cast<uint32_t>(WireMaxPayload) + 1);
  WireFrame G;
  size_t Consumed = ~size_t{0};
  EXPECT_EQ(decodeFrame(Buf, sizeof(Buf), G, Consumed),
            FrameDecode::Malformed);
  EXPECT_EQ(Consumed, 0u);

  wirePut32(Buf, 0xFFFFFFFFu);
  EXPECT_EQ(decodeFrame(Buf, sizeof(Buf), G, Consumed),
            FrameDecode::Malformed);
}

TEST(WireFrame, WrongPayloadLengthRejected) {
  // In-range but not the fixed frame shape: still malformed.
  uint8_t Buf[WireFrameBytes];
  WireFrame F;
  encodeFrame(F, Buf);
  wirePut32(Buf, static_cast<uint32_t>(WireFramePayload) - 1);
  WireFrame G;
  size_t Consumed = 0;
  EXPECT_EQ(decodeFrame(Buf, sizeof(Buf), G, Consumed),
            FrameDecode::Malformed);
  wirePut32(Buf, static_cast<uint32_t>(WireFramePayload) + 1);
  EXPECT_EQ(decodeFrame(Buf, sizeof(Buf), G, Consumed),
            FrameDecode::Malformed);
}

TEST(WireFrame, UnknownTypeRejected) {
  uint8_t Buf[WireFrameBytes];
  WireFrame F;
  encodeFrame(F, Buf);
  for (uint8_t Bad : {uint8_t{0}, uint8_t{WireFrame::BarrierAck + 1},
                      uint8_t{0xFF}}) {
    Buf[4] = Bad;
    WireFrame G;
    size_t Consumed = 0;
    EXPECT_EQ(decodeFrame(Buf, sizeof(Buf), G, Consumed),
              FrameDecode::Malformed)
        << "type " << unsigned(Bad);
  }
}

TEST(WireFrame, InjectHeaderMatchesMakeWireHeader) {
  WireFrame F;
  F.T = WireFrame::Inject;
  F.A = 4;
  F.B = 11;
  F.Kind = static_cast<uint32_t>(KindRequest);
  F.Seq = 77;
  netkat::Packet H = frameHeader(F);
  netkat::Packet Want = makeWireHeader(4, 11, KindRequest, 77);
  EXPECT_EQ(H, Want);
}

TEST(WireFrame, DeliverFrameReadsHeaderFields) {
  netkat::Packet H = makeWireHeader(6, 2, KindReply, 123);
  H.set(connField(), 99); // rides along; deliverFrame ignores it
  WireFrame F = deliverFrame(H);
  EXPECT_EQ(F.T, WireFrame::Deliver);
  EXPECT_EQ(F.A, 6u);
  EXPECT_EQ(F.B, 2u);
  EXPECT_EQ(F.Kind, static_cast<uint32_t>(KindReply));
  EXPECT_EQ(F.Seq, 123u);
}
