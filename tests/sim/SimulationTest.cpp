//===- tests/sim/SimulationTest.cpp - Simulator behavior tests ------------===//

#include "sim/Simulation.h"

#include "apps/Programs.h"
#include "consistency/Check.h"
#include "nes/Pipeline.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::sim;

namespace {

nes::CompiledProgram compileApp(const apps::App &A) {
  api::Result<nes::CompiledProgram> C =
      A.Source.empty() ? nes::compileAst(A.Ast, A.Topo)
                       : nes::compileSource(A.Source, A.Topo);
  EXPECT_TRUE(C.ok()) << A.Name << ": " << C.status().str();
  return std::move(*C);
}

size_t successes(const Simulation &S) {
  size_t N = 0;
  for (const auto &P : S.pings())
    N += P.Succeeded;
  return N;
}

} // namespace

TEST(Simulation, FirewallNesPingPattern) {
  apps::App A = apps::firewallApp();
  nes::CompiledProgram C = compileApp(A);
  Simulation S(*C.N, A.Topo, Simulation::Mode::Nes);
  // H4 -> H1 before the event: fails. H1 -> H4: succeeds and opens the
  // firewall. H4 -> H1 afterwards: succeeds.
  S.schedulePing(0.1, topo::HostH4, topo::HostH1);
  S.schedulePing(1.0, topo::HostH1, topo::HostH4);
  S.schedulePing(2.0, topo::HostH4, topo::HostH1);
  S.run(4.0);

  ASSERT_EQ(S.pings().size(), 3u);
  EXPECT_FALSE(S.pings()[0].Succeeded);
  EXPECT_TRUE(S.pings()[1].Succeeded);
  EXPECT_TRUE(S.pings()[2].Succeeded);
  EXPECT_GT(S.eventTime(0), 0);

  auto Check = consistency::checkAgainstNes(S.trace(), A.Topo, *C.N);
  EXPECT_TRUE(Check.Correct) << Check.Reason;
}

TEST(Simulation, FirewallNesImmediateReplyWorks) {
  // The crucial property the paper motivates with TCP handshakes: the
  // *reply to the very first outgoing packet* must get back in.
  apps::App A = apps::firewallApp();
  nes::CompiledProgram C = compileApp(A);
  Simulation S(*C.N, A.Topo, Simulation::Mode::Nes);
  S.schedulePing(0.1, topo::HostH1, topo::HostH4);
  S.run(2.0);
  ASSERT_EQ(S.pings().size(), 1u);
  EXPECT_TRUE(S.pings()[0].Succeeded);
}

TEST(Simulation, FirewallUncoordinatedDropsDuringWindow) {
  apps::App A = apps::firewallApp();
  nes::CompiledProgram C = compileApp(A);
  SimParams P;
  P.UncoordDelaySec = 1.0;
  Simulation S(*C.N, A.Topo, Simulation::Mode::Uncoordinated, P);
  // Pings H1 -> H4 every 100 ms: replies are dropped until the
  // controller finally installs the new tables.
  for (int I = 0; I != 20; ++I)
    S.schedulePing(0.1 + 0.1 * I, topo::HostH1, topo::HostH4);
  S.run(5.0);

  size_t Ok = successes(S);
  EXPECT_LT(Ok, S.pings().size()); // some pings lost their replies
  EXPECT_GT(Ok, 0u);               // but the update eventually landed

  auto Check = consistency::checkAgainstNes(S.trace(), A.Topo, *C.N);
  EXPECT_FALSE(Check.Correct);
}

TEST(Simulation, FirewallUncoordinatedZeroDelayStillDrops) {
  // Figure 10's inset point: even at delay 0 the controller round trip
  // loses at least the first reply.
  apps::App A = apps::firewallApp();
  nes::CompiledProgram C = compileApp(A);
  SimParams P;
  P.UncoordDelaySec = 0.0;
  Simulation S(*C.N, A.Topo, Simulation::Mode::Uncoordinated, P);
  S.schedulePing(0.1, topo::HostH1, topo::HostH4);
  S.run(2.0);
  EXPECT_EQ(successes(S), 0u);
}

TEST(Simulation, LearningSwitchFloodStopsAfterEvent) {
  apps::App A = apps::learningSwitchApp();
  nes::CompiledProgram C = compileApp(A);
  Simulation S(*C.N, A.Topo, Simulation::Mode::Nes);
  for (int I = 0; I != 10; ++I)
    S.schedulePing(0.1 + 0.2 * I, topo::HostH4, topo::HostH1);
  S.run(5.0);

  // Every ping reaches H1; only the first is flooded to H2 (the reply
  // to ping 1 triggers learning before ping 2 is sent).
  EXPECT_EQ(successes(S), 10u);
  size_t FloodedToH2 = S.deliveriesTo(topo::HostH2).size();
  EXPECT_EQ(FloodedToH2, 1u);

  auto Check = consistency::checkAgainstNes(S.trace(), A.Topo, *C.N);
  EXPECT_TRUE(Check.Correct) << Check.Reason;
}

TEST(Simulation, LearningSwitchUncoordinatedKeepsFlooding) {
  apps::App A = apps::learningSwitchApp();
  nes::CompiledProgram C = compileApp(A);
  SimParams P;
  P.UncoordDelaySec = 1.0;
  Simulation S(*C.N, A.Topo, Simulation::Mode::Uncoordinated, P);
  for (int I = 0; I != 10; ++I)
    S.schedulePing(0.1 + 0.2 * I, topo::HostH4, topo::HostH1);
  S.run(5.0);
  // Flooding persists through the update window.
  EXPECT_GT(S.deliveriesTo(topo::HostH2).size(), 1u);
}

TEST(Simulation, AuthenticationSequenceEnforced) {
  apps::App A = apps::authenticationApp();
  nes::CompiledProgram C = compileApp(A);
  Simulation S(*C.N, A.Topo, Simulation::Mode::Nes);
  S.schedulePing(0.1, topo::HostH4, topo::HostH3); // blocked
  S.schedulePing(0.6, topo::HostH4, topo::HostH2); // blocked (wrong order)
  S.schedulePing(1.1, topo::HostH4, topo::HostH1); // knock 1
  S.schedulePing(1.6, topo::HostH4, topo::HostH3); // still blocked
  S.schedulePing(2.1, topo::HostH4, topo::HostH2); // knock 2
  S.schedulePing(2.6, topo::HostH4, topo::HostH3); // open
  S.run(5.0);

  std::vector<bool> Want = {false, false, true, false, true, true};
  ASSERT_EQ(S.pings().size(), Want.size());
  for (size_t I = 0; I != Want.size(); ++I)
    EXPECT_EQ(S.pings()[I].Succeeded, Want[I]) << "ping " << I;

  auto Check = consistency::checkAgainstNes(S.trace(), A.Topo, *C.N);
  EXPECT_TRUE(Check.Correct) << Check.Reason;
}

TEST(Simulation, BandwidthCapExactlyN) {
  apps::App A = apps::bandwidthCapApp(10);
  nes::CompiledProgram C = compileApp(A);
  Simulation S(*C.N, A.Topo, Simulation::Mode::Nes);
  for (int I = 0; I != 15; ++I)
    S.schedulePing(0.1 + 0.2 * I, topo::HostH1, topo::HostH4);
  S.run(6.0);
  // Exactly the cap: 10 replies make it back.
  EXPECT_EQ(successes(S), 10u);

  auto Check = consistency::checkAgainstNes(S.trace(), A.Topo, *C.N);
  EXPECT_TRUE(Check.Correct) << Check.Reason;
}

TEST(Simulation, BandwidthCapUncoordinatedOvershoots) {
  apps::App A = apps::bandwidthCapApp(10);
  nes::CompiledProgram C = compileApp(A);
  SimParams P;
  P.UncoordDelaySec = 1.0;
  Simulation S(*C.N, A.Topo, Simulation::Mode::Uncoordinated, P);
  for (int I = 0; I != 15; ++I)
    S.schedulePing(0.1 + 0.2 * I, topo::HostH1, topo::HostH4);
  S.run(6.0);
  EXPECT_GT(successes(S), 10u);
}

TEST(Simulation, IdsBlocksAfterScan) {
  apps::App A = apps::idsApp();
  nes::CompiledProgram C = compileApp(A);
  Simulation S(*C.N, A.Topo, Simulation::Mode::Nes);
  S.schedulePing(0.1, topo::HostH4, topo::HostH3); // allowed
  S.schedulePing(0.6, topo::HostH4, topo::HostH1); // allowed, stage 1
  S.schedulePing(1.1, topo::HostH4, topo::HostH2); // allowed, stage 2
  S.schedulePing(1.6, topo::HostH4, topo::HostH3); // now blocked
  S.run(4.0);

  std::vector<bool> Want = {true, true, true, false};
  ASSERT_EQ(S.pings().size(), Want.size());
  for (size_t I = 0; I != Want.size(); ++I)
    EXPECT_EQ(S.pings()[I].Succeeded, Want[I]) << "ping " << I;

  auto Check = consistency::checkAgainstNes(S.trace(), A.Topo, *C.N);
  EXPECT_TRUE(Check.Correct) << Check.Reason;
}

TEST(Simulation, RingUpdateFlipsPath) {
  apps::App A = apps::ringApp(6, 3);
  nes::CompiledProgram C = compileApp(A);
  Simulation S(*C.N, A.Topo, Simulation::Mode::Nes);
  S.schedulePing(0.1, topo::HostH1, topo::HostH2);
  S.scheduleProbe(1.0, topo::HostH1, topo::HostH2);
  S.schedulePing(2.0, topo::HostH1, topo::HostH2);
  S.run(4.0);
  EXPECT_EQ(successes(S), 2u);
  EXPECT_GT(S.eventTime(0), 0);
  auto Check = consistency::checkAgainstNes(S.trace(), A.Topo, *C.N);
  EXPECT_TRUE(Check.Correct) << Check.Reason;
}

TEST(Simulation, RingOverheadSmallButNonzero) {
  apps::App A = apps::ringApp(6, 3);
  nes::CompiledProgram C = compileApp(A);

  auto Goodput = [&](Simulation::Mode M) {
    Simulation S(*C.N, A.Topo, M);
    S.scheduleUdpFlow(0.0, 2.0, topo::HostH1, topo::HostH2, 120e6);
    S.run(3.0);
    return S.flowStats().goodputBps();
  };

  double Ref = Goodput(Simulation::Mode::StaticReference);
  double Nes = Goodput(Simulation::Mode::Nes);
  EXPECT_GT(Ref, 0);
  EXPECT_GT(Nes, 0);
  EXPECT_LT(Nes, Ref); // tags cost something
  EXPECT_GT(Nes, 0.9 * Ref); // ... but only a few percent
}

TEST(Simulation, RingEventDiscoveryFasterWithController) {
  apps::App A = apps::ringApp(8, 4);
  nes::CompiledProgram C = compileApp(A);

  auto MaxLearn = [&](bool Broadcast) {
    SimParams P;
    P.CtrlBroadcast = Broadcast;
    Simulation S(*C.N, A.Topo, Simulation::Mode::Nes, P);
    // Continuous bidirectional pings carry digests around the ring.
    for (int I = 0; I != 300; ++I) {
      S.schedulePing(0.05 + 0.01 * I, topo::HostH1, topo::HostH2);
      S.schedulePing(0.055 + 0.01 * I, topo::HostH2, topo::HostH1);
    }
    S.scheduleProbe(0.5, topo::HostH1, topo::HostH2);
    S.run(5.0);
    double T0 = S.eventTime(0);
    EXPECT_GT(T0, 0);
    double Max = 0;
    unsigned Learned = 0;
    for (const auto &[Key, At] : S.learnTimes())
      if (Key.second == 0) {
        Max = std::max(Max, At - T0);
        ++Learned;
      }
    EXPECT_EQ(Learned, A.Topo.switches().size());
    return Max;
  };

  double NoCtrl = MaxLearn(false);
  double WithCtrl = MaxLearn(true);
  EXPECT_LT(WithCtrl, NoCtrl);
}

TEST(Simulation, TcpFlowRampsUp) {
  apps::App A = apps::ringApp(6, 3);
  nes::CompiledProgram C = compileApp(A);
  Simulation S(*C.N, A.Topo, Simulation::Mode::StaticReference);
  S.scheduleTcpFlow(0.0, 2.0, topo::HostH1, topo::HostH2);
  S.run(3.0);
  // The window-based flow should achieve a respectable fraction of the
  // 100 Mbit/s links.
  EXPECT_GT(S.flowStats().goodputBps(), 10e6);
  EXPECT_GT(S.flowStats().PktsDelivered, 100u);
}
