//===- tests/sim/SimConsistencyTest.cpp - Checker verdicts per mode -------===//
//
// Sweep: every case study, several seeds, both runtimes, machine-checked
// against Definition 6. The event-driven runtime must always be correct;
// the uncoordinated baseline must be *flagged* whenever its observable
// behavior actually diverged (which the scripted workloads force).
//
//===----------------------------------------------------------------------===//

#include "sim/Simulation.h"

#include "api/Api.h"
#include "apps/Programs.h"
#include "consistency/Check.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::sim;

namespace {

struct Scripted {
  apps::App A;
  api::Result<api::Compilation> C;
  std::vector<std::pair<double, std::pair<HostId, HostId>>> Pings;
};

/// Compiles through the api façade, exercising the same surface the CLI
/// and embedding programs use.
api::Result<api::Compilation> compileApp(const apps::App &A) {
  api::CompileOptions O;
  O.programSource(A.Source).topology(A.Topo);
  return api::compile(std::move(O));
}

Scripted firewallScript() {
  Scripted S{apps::firewallApp(), {}, {}};
  S.C = compileApp(S.A);
  for (int I = 0; I != 12; ++I)
    S.Pings.push_back({0.2 + 0.2 * I, {topo::HostH1, topo::HostH4}});
  S.Pings.push_back({0.1, {topo::HostH4, topo::HostH1}});
  S.Pings.push_back({3.0, {topo::HostH4, topo::HostH1}});
  return S;
}

Scripted authScript() {
  Scripted S{apps::authenticationApp(), {}, {}};
  S.C = compileApp(S.A);
  std::vector<HostId> Order = {topo::HostH3, topo::HostH1, topo::HostH3,
                               topo::HostH2, topo::HostH3};
  for (size_t I = 0; I != Order.size(); ++I)
    S.Pings.push_back({0.2 + 0.4 * I, {topo::HostH4, Order[I]}});
  return S;
}

Scripted idsScript() {
  Scripted S{apps::idsApp(), {}, {}};
  S.C = compileApp(S.A);
  std::vector<HostId> Order = {topo::HostH3, topo::HostH1, topo::HostH2,
                               topo::HostH3, topo::HostH3};
  for (size_t I = 0; I != Order.size(); ++I)
    S.Pings.push_back({0.2 + 0.4 * I, {topo::HostH4, Order[I]}});
  return S;
}

Scripted bwcapScript() {
  Scripted S{apps::bandwidthCapApp(5), {}, {}};
  S.C = compileApp(S.A);
  for (int I = 0; I != 9; ++I)
    S.Pings.push_back({0.2 + 0.3 * I, {topo::HostH1, topo::HostH4}});
  return S;
}

double At(const Scripted &S) {
  double Last = 0;
  for (const auto &[T, FromTo] : S.Pings)
    Last = std::max(Last, T);
  return Last;
}

consistency::CheckResult runAndCheck(const Scripted &S,
                                     Simulation::Mode Mode, uint64_t Seed,
                                     double UncoordDelay = 0.8) {
  SimParams P;
  P.Seed = Seed;
  P.UncoordDelaySec = UncoordDelay;
  Simulation Sim(S.C->structure(), S.A.Topo, Mode, P);
  for (const auto &[At, FromTo] : S.Pings)
    Sim.schedulePing(At, FromTo.first, FromTo.second);
  Sim.run(At(S) + UncoordDelay + 3.0);
  return consistency::checkAgainstNes(Sim.trace(), S.A.Topo,
                                      S.C->structure());
}

} // namespace

class SimConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimConsistency, NesModeAlwaysCorrect) {
  for (auto Make : {firewallScript, authScript, idsScript, bwcapScript}) {
    Scripted S = Make();
    ASSERT_TRUE(S.C.ok()) << S.A.Name << ": " << S.C.status().str();
    auto R = runAndCheck(S, Simulation::Mode::Nes, GetParam());
    EXPECT_TRUE(R.Correct) << S.A.Name << ": " << R.Reason;
  }
}

TEST_P(SimConsistency, UncoordinatedFirewallFlagged) {
  Scripted S = firewallScript();
  auto R = runAndCheck(S, Simulation::Mode::Uncoordinated, GetParam());
  // Replies to early outbound pings are dropped at the stale s4 — a
  // genuine Definition 2 violation the checker must catch.
  EXPECT_FALSE(R.Correct);
}

TEST_P(SimConsistency, UncoordinatedBandwidthCapFlagged) {
  Scripted S = bwcapScript();
  auto R = runAndCheck(S, Simulation::Mode::Uncoordinated, GetParam());
  EXPECT_FALSE(R.Correct);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimConsistency,
                         ::testing::Values(1, 7, 13, 42));

TEST(SimConsistency, StaticReferenceQuiescentIsCorrect) {
  // The reference mode never updates; a workload that triggers no event
  // must check out against g(∅).
  Scripted S = firewallScript();
  ASSERT_TRUE(S.C.ok());
  SimParams P;
  Simulation Sim(S.C->structure(), S.A.Topo,
                 Simulation::Mode::StaticReference, P);
  // Only blocked inbound traffic: no event fires.
  Sim.schedulePing(0.2, topo::HostH4, topo::HostH1);
  Sim.schedulePing(0.6, topo::HostH4, topo::HostH1);
  Sim.run(2.0);
  auto R = consistency::checkAgainstNes(Sim.trace(), S.A.Topo,
                                        S.C->structure());
  EXPECT_TRUE(R.Correct) << R.Reason;
}
