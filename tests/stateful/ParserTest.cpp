//===- tests/stateful/ParserTest.cpp - Parser unit tests ------------------===//

#include "stateful/Parser.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::stateful;

namespace {
SPolRef parseOk(const std::string &Src) {
  api::Result<Parsed> R = parseProgram(Src);
  EXPECT_TRUE(R.ok()) << R.status().str();
  return R->Program;
}

std::string parseErr(const std::string &Src) {
  api::Result<Parsed> R = parseProgram(Src);
  EXPECT_FALSE(R.ok()) << "unexpected success: " << R->Program->str();
  EXPECT_EQ(R.status().code(), api::Code::ParseError);
  return R.status().message();
}
} // namespace

TEST(Parser, FieldTest) {
  SPolRef P = parseOk("ip_dst=4");
  ASSERT_EQ(P->kind(), SPol::Kind::Filter);
  EXPECT_EQ(P->pred()->kind(), SPred::Kind::FieldTest);
  EXPECT_TRUE(P->pred()->isEq());
  EXPECT_EQ(P->pred()->value(), 4);
}

TEST(Parser, NeqTest) {
  SPolRef P = parseOk("ip_dst!=4");
  EXPECT_FALSE(P->pred()->isEq());
}

TEST(Parser, LetBindingsResolve) {
  api::Result<Parsed> R = parseProgram("let H4 = 4;\nip_dst=H4");
  ASSERT_TRUE(R.ok()) << R.status().str();
  EXPECT_EQ(R->Program->pred()->value(), 4);
  EXPECT_EQ(R->Bindings.at("H4"), 4);
}

TEST(Parser, UnboundValueIdentFails) {
  std::string E = parseErr("ip_dst=H9");
  EXPECT_NE(E.find("unbound"), std::string::npos);
}

TEST(Parser, DuplicateLetFails) {
  std::string E = parseErr("let A = 1;\nlet A = 2;\ntrue");
  EXPECT_NE(E.find("duplicate"), std::string::npos);
}

TEST(Parser, Assignment) {
  SPolRef P = parseOk("pt<-2");
  ASSERT_EQ(P->kind(), SPol::Kind::Mod);
  EXPECT_EQ(P->modField(), FieldPt);
  EXPECT_EQ(P->modValue(), 2);
}

TEST(Parser, SwAssignmentRejected) {
  std::string E = parseErr("sw<-2");
  EXPECT_NE(E.find("sw"), std::string::npos);
}

TEST(Parser, PrecedenceSeqOverUnion) {
  // a; b + c; d == (a;b) + (c;d)
  SPolRef P = parseOk("pt=1; pt<-2 + pt=3; pt<-4");
  ASSERT_EQ(P->kind(), SPol::Kind::Union);
  EXPECT_EQ(P->lhs()->kind(), SPol::Kind::Seq);
  EXPECT_EQ(P->rhs()->kind(), SPol::Kind::Seq);
}

TEST(Parser, AndBindsTighterThanSeq) {
  // a and b; p == (a and b); p
  SPolRef P = parseOk("pt=2 and ip_dst=4; pt<-1");
  ASSERT_EQ(P->kind(), SPol::Kind::Seq);
  EXPECT_EQ(P->lhs()->kind(), SPol::Kind::Filter);
  EXPECT_EQ(P->lhs()->pred()->kind(), SPred::Kind::And);
}

TEST(Parser, AndOnNonTestFails) {
  std::string E = parseErr("pt<-1 and pt=2");
  EXPECT_NE(E.find("'and'"), std::string::npos);
}

TEST(Parser, OrBuildsPredicate) {
  SPolRef P = parseOk("pt=1 or pt=2");
  ASSERT_EQ(P->kind(), SPol::Kind::Filter);
  EXPECT_EQ(P->pred()->kind(), SPred::Kind::Or);
}

TEST(Parser, NotRequiresTest) {
  SPolRef P = parseOk("not pt=1");
  EXPECT_EQ(P->pred()->kind(), SPred::Kind::Not);
  std::string E = parseErr("not pt<-1");
  EXPECT_NE(E.find("'not'"), std::string::npos);
}

TEST(Parser, StarPostfix) {
  SPolRef P = parseOk("(pt<-1)*");
  EXPECT_EQ(P->kind(), SPol::Kind::Star);
}

TEST(Parser, PlainLink) {
  SPolRef P = parseOk("(1:1)->(4:1)");
  ASSERT_EQ(P->kind(), SPol::Kind::Link);
  EXPECT_EQ(P->linkSrc(), (Location{1, 1}));
  EXPECT_EQ(P->linkDst(), (Location{4, 1}));
}

TEST(Parser, LinkWithScalarStateAssign) {
  SPolRef P = parseOk("(1:1)->(4:1)<state(2)<-7>");
  ASSERT_EQ(P->kind(), SPol::Kind::LinkAssign);
  EXPECT_EQ(P->stateIndex(), 2u);
  EXPECT_EQ(P->stateValue(), 7);
}

TEST(Parser, LinkWithVectorStateAssign) {
  SPolRef P = parseOk("(1:1)->(4:1)<state<-[1]>");
  ASSERT_EQ(P->kind(), SPol::Kind::LinkAssign);
  EXPECT_EQ(P->stateIndex(), 0u);
  EXPECT_EQ(P->stateValue(), 1);
}

TEST(Parser, MultiComponentLinkAssignRejected) {
  std::string E = parseErr("(1:1)->(4:1)<state<-[1,2]>");
  EXPECT_NE(E.find("exactly one state component"), std::string::npos);
}

TEST(Parser, StateScalarTest) {
  SPolRef P = parseOk("state(1)=3");
  ASSERT_EQ(P->kind(), SPol::Kind::Filter);
  EXPECT_EQ(P->pred()->kind(), SPred::Kind::StateTest);
  EXPECT_EQ(P->pred()->stateIndex(), 1u);
  EXPECT_EQ(P->pred()->value(), 3);
}

TEST(Parser, StateVectorTestDesugarsToConjunction) {
  SPolRef P = parseOk("state=[1,2]");
  ASSERT_EQ(P->kind(), SPol::Kind::Filter);
  ASSERT_EQ(P->pred()->kind(), SPred::Kind::And);
  EXPECT_EQ(P->pred()->lhs()->stateIndex(), 0u);
  EXPECT_EQ(P->pred()->rhs()->stateIndex(), 1u);
}

TEST(Parser, StateVectorNeqIsNegatedConjunction) {
  SPolRef P = parseOk("state!=[0]");
  ASSERT_EQ(P->kind(), SPol::Kind::Filter);
  // Single-component vectors still negate the (singleton) conjunction.
  EXPECT_EQ(P->pred()->kind(), SPred::Kind::Not);
}

TEST(Parser, ParenthesizedPolicyVsLink) {
  // '(' policy ')' and '(' n ':' must disambiguate by lookahead.
  SPolRef P = parseOk("(pt=1 + pt=2); (1:1)->(2:1)");
  ASSERT_EQ(P->kind(), SPol::Kind::Seq);
  EXPECT_EQ(P->lhs()->kind(), SPol::Kind::Union);
  EXPECT_EQ(P->rhs()->kind(), SPol::Kind::Link);
}

TEST(Parser, TrailingGarbageFails) {
  std::string E = parseErr("pt=1 pt=2");
  EXPECT_NE(E.find("expected"), std::string::npos);
}

TEST(Parser, ErrorsCarryPositions) {
  std::string E = parseErr("pt=1;\n  @");
  EXPECT_NE(E.find("2:"), std::string::npos);
}

TEST(Parser, DropSkipKeywords) {
  EXPECT_EQ(parseOk("drop")->pred()->kind(), SPred::Kind::False);
  EXPECT_EQ(parseOk("skip")->pred()->kind(), SPred::Kind::True);
}
