//===- tests/stateful/ProjectTest.cpp - Figure 5 projection tests ---------===//

#include "stateful/Project.h"

#include "apps/Programs.h"
#include "netkat/Eval.h"
#include "stateful/Parser.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::stateful;
using namespace eventnet::netkat;

namespace {
SPolRef parse(const std::string &Src) {
  api::Result<Parsed> R = parseProgram(Src);
  EXPECT_TRUE(R.ok()) << R.status().str();
  return R->Program;
}
} // namespace

TEST(Project, StateTestResolvesAgainstK) {
  SPolRef P = parse("state(0)=1");
  EXPECT_TRUE(isTriviallyTrue(project(P, {1})->pred()));
  EXPECT_TRUE(isTriviallyFalse(project(P, {0})->pred()));

  SPolRef Q = parse("state(0)!=1");
  EXPECT_TRUE(isTriviallyFalse(project(Q, {1})->pred()));
  EXPECT_TRUE(isTriviallyTrue(project(Q, {0})->pred()));
}

TEST(Project, LinkAssignErasesAssignment) {
  SPolRef P = parse("(1:1)->(4:1)<state<-[1]>");
  PolicyRef N = project(P, {0});
  ASSERT_EQ(N->kind(), Policy::Kind::Link);
  EXPECT_EQ(N->linkSrc(), (Location{1, 1}));
}

TEST(Project, FieldNeqBecomesNegation) {
  SPolRef P = parse("ip_dst!=4");
  PolicyRef N = project(P, {0});
  EXPECT_EQ(N->pred()->kind(), Pred::Kind::Not);
}

TEST(Project, FirewallStateZeroBlocksIncoming) {
  SPolRef P = parse(apps::firewallSource());
  FieldId Dst = apps::ipDstField();

  // k = [0]: outgoing works end to end, incoming is dropped.
  PolicyRef C0 = project(P, {0});
  Packet Out = makePacket({1, 2}, {{Dst, 4}});
  Packet In = makePacket({4, 2}, {{Dst, 1}});
  PacketSet R = evalPolicy(C0, Out);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R.begin()->loc(), (Location{4, 2}));
  EXPECT_TRUE(evalPolicy(C0, In).empty());

  // k = [1]: both directions work.
  PolicyRef C1 = project(P, {1});
  EXPECT_EQ(evalPolicy(C1, Out).size(), 1u);
  R = evalPolicy(C1, In);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R.begin()->loc(), (Location{1, 2}));
}

TEST(Project, LearningSwitchFloodsThenUnicasts) {
  SPolRef P = parse(apps::learningSwitchSource());
  FieldId Dst = apps::ipDstField();
  Packet ToH1 = makePacket({4, 2}, {{Dst, 1}});

  // Unlearned: two copies (H1 and the flood to H2).
  EXPECT_EQ(evalPolicy(project(P, {0}), ToH1).size(), 2u);
  // Learned: only H1's copy.
  PacketSet R = evalPolicy(project(P, {1}), ToH1);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R.begin()->loc(), (Location{1, 2}));
}

TEST(Project, AuthenticationStages) {
  SPolRef P = parse(apps::authenticationSource());
  FieldId Dst = apps::ipDstField();
  Packet ToH1 = makePacket({4, 2}, {{Dst, 1}});
  Packet ToH2 = makePacket({4, 2}, {{Dst, 2}});
  Packet ToH3 = makePacket({4, 2}, {{Dst, 3}});

  EXPECT_EQ(evalPolicy(project(P, {0}), ToH1).size(), 1u);
  EXPECT_TRUE(evalPolicy(project(P, {0}), ToH2).empty());
  EXPECT_TRUE(evalPolicy(project(P, {0}), ToH3).empty());

  EXPECT_TRUE(evalPolicy(project(P, {1}), ToH1).empty());
  EXPECT_EQ(evalPolicy(project(P, {1}), ToH2).size(), 1u);
  EXPECT_TRUE(evalPolicy(project(P, {1}), ToH3).empty());

  EXPECT_TRUE(evalPolicy(project(P, {2}), ToH2).empty());
  EXPECT_EQ(evalPolicy(project(P, {2}), ToH3).size(), 1u);
}

TEST(Project, BandwidthCapCutsIncomingAtLimit) {
  SPolRef P = parse(apps::bandwidthCapSource(3));
  FieldId Dst = apps::ipDstField();
  Packet Out = makePacket({1, 2}, {{Dst, 4}});
  Packet In = makePacket({4, 2}, {{Dst, 1}});

  for (Value K = 0; K <= 3; ++K) {
    EXPECT_EQ(evalPolicy(project(P, {K}), Out).size(), 1u) << K;
    EXPECT_EQ(evalPolicy(project(P, {K}), In).size(), 1u) << K;
  }
  // Cap state: outgoing still works, incoming cut.
  EXPECT_EQ(evalPolicy(project(P, {4}), Out).size(), 1u);
  EXPECT_TRUE(evalPolicy(project(P, {4}), In).empty());
}

TEST(Project, IdsBlocksH3AfterScan) {
  SPolRef P = parse(apps::idsSource());
  FieldId Dst = apps::ipDstField();
  Packet ToH3 = makePacket({4, 2}, {{Dst, 3}});
  EXPECT_EQ(evalPolicy(project(P, {0}), ToH3).size(), 1u);
  EXPECT_EQ(evalPolicy(project(P, {1}), ToH3).size(), 1u);
  EXPECT_TRUE(evalPolicy(project(P, {2}), ToH3).empty());
}

TEST(Project, RingProgramRoutesBothStates) {
  SPolRef P = apps::ringProgram(6, 3);
  FieldId Dst = apps::ipDstField();
  FieldId Probe = apps::probeField();
  Packet H1ToH2 = makePacket({1, 3}, {{Dst, 2}, {Probe, 0}});

  PacketSet R0 = evalPolicy(project(P, {0}), H1ToH2);
  ASSERT_EQ(R0.size(), 1u);
  EXPECT_EQ(R0.begin()->loc(), (Location{4, 3}));

  PacketSet R1 = evalPolicy(project(P, {1}), H1ToH2);
  ASSERT_EQ(R1.size(), 1u);
  EXPECT_EQ(R1.begin()->loc(), (Location{4, 3}));

  // Replies work in both states too.
  Packet H2ToH1 = makePacket({4, 3}, {{Dst, 1}, {Probe, 0}});
  EXPECT_EQ(evalPolicy(project(P, {0}), H2ToH1).size(), 1u);
  EXPECT_EQ(evalPolicy(project(P, {1}), H2ToH1).size(), 1u);
}
