//===- tests/stateful/RoundTripTest.cpp - Print/parse round trips ---------===//
//
// Property: the printer emits valid concrete syntax, and printing is a
// fixpoint (parse(print(p)) prints identically). Exercised both on the
// shipped applications and on random ASTs.
//
//===----------------------------------------------------------------------===//

#include "apps/Programs.h"
#include "stateful/Parser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::stateful;

namespace {

SPredRef randomPred(Rng &R, unsigned Depth) {
  if (Depth == 0 || R.chance(0.4)) {
    switch (R.below(4)) {
    case 0:
      return sTrue();
    case 1:
      return sFalse();
    case 2:
      return sFieldTest(fieldOf("rt_f"), R.chance(0.5), R.range(0, 3));
    default:
      return sStateTest(static_cast<unsigned>(R.below(2)), R.chance(0.5),
                        R.range(0, 3));
    }
  }
  switch (R.below(3)) {
  case 0:
    return sAnd(randomPred(R, Depth - 1), randomPred(R, Depth - 1));
  case 1:
    return sOr(randomPred(R, Depth - 1), randomPred(R, Depth - 1));
  default:
    return sNot(randomPred(R, Depth - 1));
  }
}

SPolRef randomPol(Rng &R, unsigned Depth) {
  if (Depth == 0 || R.chance(0.35)) {
    switch (R.below(4)) {
    case 0:
      return sFilter(randomPred(R, 2));
    case 1:
      return sMod(fieldOf("rt_f"), R.range(0, 3));
    case 2:
      return sLink({static_cast<SwitchId>(R.range(1, 4)), 1},
                   {static_cast<SwitchId>(R.range(1, 4)), 2});
    default:
      return sLinkAssign({1, 1}, {2, 1},
                         static_cast<unsigned>(R.below(2)), R.range(0, 3));
    }
  }
  switch (R.below(3)) {
  case 0:
    return sUnion(randomPol(R, Depth - 1), randomPol(R, Depth - 1));
  case 1:
    return sSeq(randomPol(R, Depth - 1), randomPol(R, Depth - 1));
  default:
    return sStar(randomPol(R, Depth - 1));
  }
}

} // namespace

TEST(RoundTrip, ShippedApplications) {
  for (const apps::App &A : apps::caseStudyApps()) {
    api::Result<Parsed> First = parseProgram(A.Source);
    ASSERT_TRUE(First.ok()) << A.Name << ": " << First.status().str();
    std::string Printed = First->Program->str();
    api::Result<Parsed> Second = parseProgram(Printed);
    ASSERT_TRUE(Second.ok())
        << A.Name << " reprint failed: " << Second.status().str()
                           << "\nprinted:\n"
                           << Printed;
    EXPECT_EQ(Second->Program->str(), Printed) << A.Name;
  }
}

class RoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripProperty, RandomAstsRoundTrip) {
  Rng R(GetParam());
  for (int Trial = 0; Trial != 40; ++Trial) {
    SPolRef P = randomPol(R, 4);
    std::string Printed = P->str();
    api::Result<Parsed> Re = parseProgram(Printed);
    ASSERT_TRUE(Re.ok()) << Re.status().str() << "\nprinted:\n" << Printed;
    EXPECT_EQ(Re->Program->str(), Printed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Values(3, 5, 8, 13));
