//===- tests/stateful/LexerTest.cpp - Lexer unit tests --------------------===//

#include "stateful/Lexer.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::stateful;

namespace {
std::vector<TokKind> kindsOf(const std::string &Src) {
  std::vector<TokKind> Out;
  for (const Token &T : lex(Src))
    Out.push_back(T.Kind);
  return Out;
}
} // namespace

TEST(Lexer, EmptyInputIsEof) {
  EXPECT_EQ(kindsOf(""), (std::vector<TokKind>{TokKind::Eof}));
  EXPECT_EQ(kindsOf("   \n\t "), (std::vector<TokKind>{TokKind::Eof}));
}

TEST(Lexer, NumbersAndIdents) {
  auto Toks = lex("ip_dst 42");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[0].Text, "ip_dst");
  EXPECT_EQ(Toks[1].Kind, TokKind::Number);
  EXPECT_EQ(Toks[1].Num, 42);
}

TEST(Lexer, Keywords) {
  EXPECT_EQ(kindsOf("true false and or not state let drop skip id"),
            (std::vector<TokKind>{TokKind::KwTrue, TokKind::KwFalse,
                                  TokKind::KwAnd, TokKind::KwOr,
                                  TokKind::KwNot, TokKind::KwState,
                                  TokKind::KwLet, TokKind::KwDrop,
                                  TokKind::KwSkip, TokKind::KwSkip,
                                  TokKind::Eof}));
}

TEST(Lexer, MultiCharOperators) {
  EXPECT_EQ(kindsOf("<- -> != < > ="),
            (std::vector<TokKind>{TokKind::Assign, TokKind::Arrow,
                                  TokKind::Neq, TokKind::Lt, TokKind::Gt,
                                  TokKind::Eq, TokKind::Eof}));
}

TEST(Lexer, LinkTokens) {
  EXPECT_EQ(kindsOf("(1:1)->(4:1)"),
            (std::vector<TokKind>{TokKind::LParen, TokKind::Number,
                                  TokKind::Colon, TokKind::Number,
                                  TokKind::RParen, TokKind::Arrow,
                                  TokKind::LParen, TokKind::Number,
                                  TokKind::Colon, TokKind::Number,
                                  TokKind::RParen, TokKind::Eof}));
}

TEST(Lexer, AssignVsLessThan) {
  // '<-' must win over '<' followed by '-'; '<s' stays '<'.
  auto Toks = lex("pt<-1 <state");
  EXPECT_EQ(Toks[1].Kind, TokKind::Assign);
  EXPECT_EQ(Toks[3].Kind, TokKind::Lt);
  EXPECT_EQ(Toks[4].Kind, TokKind::KwState);
}

TEST(Lexer, CommentsAreSkipped) {
  EXPECT_EQ(kindsOf("# whole line\n42 // trailing\n7"),
            (std::vector<TokKind>{TokKind::Number, TokKind::Number,
                                  TokKind::Eof}));
}

TEST(Lexer, PositionsTracked) {
  auto Toks = lex("a\n  b");
  EXPECT_EQ(Toks[0].Line, 1u);
  EXPECT_EQ(Toks[0].Col, 1u);
  EXPECT_EQ(Toks[1].Line, 2u);
  EXPECT_EQ(Toks[1].Col, 3u);
}

TEST(Lexer, ErrorTokenOnGarbage) {
  auto Toks = lex("pt @");
  EXPECT_EQ(Toks.back().Kind, TokKind::Error);
  EXPECT_NE(Toks.back().Text.find("unexpected"), std::string::npos);
}
