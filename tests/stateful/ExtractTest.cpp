//===- tests/stateful/ExtractTest.cpp - Figure 6 extraction tests ---------===//

#include "stateful/Extract.h"

#include "apps/Programs.h"
#include "stateful/Parser.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::stateful;

namespace {
SPolRef parse(const std::string &Src) {
  api::Result<Parsed> R = parseProgram(Src);
  EXPECT_TRUE(R.ok()) << R.status().str();
  return R->Program;
}
} // namespace

TEST(LitConj, ConjoinContradictionsPrune) {
  LitConj C;
  auto A = C.conjoin({10, true, 1});
  ASSERT_TRUE(A.has_value());
  EXPECT_FALSE(A->conjoin({10, true, 2}).has_value()); // f=1 ∧ f=2
  EXPECT_FALSE(A->conjoin({10, false, 1}).has_value()); // f=1 ∧ f!=1
  // f=1 ∧ f!=2 simplifies to f=1.
  auto B = A->conjoin({10, false, 2});
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(*B, *A);
}

TEST(LitConj, NeqThenEq) {
  LitConj C;
  auto A = C.conjoin({10, false, 2});
  ASSERT_TRUE(A.has_value());
  EXPECT_FALSE(A->conjoin({10, true, 2}).has_value());
  auto B = A->conjoin({10, true, 3});
  ASSERT_TRUE(B.has_value());
  // The equality subsumes the inequality.
  EXPECT_EQ(B->literals().size(), 1u);
  EXPECT_TRUE(B->literals()[0].Eq);
}

TEST(LitConj, ExistsStripsField) {
  LitConj C;
  auto A = C.conjoin({10, true, 1});
  auto B = A->conjoin({11, true, 2});
  LitConj S = B->exists(10);
  ASSERT_EQ(S.literals().size(), 1u);
  EXPECT_EQ(S.literals()[0].F, 11);
}

TEST(Extract, FirewallEdgeAtStateZero) {
  SPolRef P = parse(apps::firewallSource());
  ExtractResult R = extractEdges(P, {0});
  ASSERT_EQ(R.Edges.size(), 1u);
  const EventEdge &E = R.Edges[0];
  EXPECT_EQ(E.From, (StateVec{0}));
  EXPECT_EQ(E.To, (StateVec{1}));
  EXPECT_EQ(E.Loc, (Location{4, 1}));
  // Guard is the collected ip_dst test (pt tests/mods are location-
  // tracked, not guard literals).
  ASSERT_EQ(E.Guard.literals().size(), 1u);
  EXPECT_EQ(E.Guard.literals()[0].F, apps::ipDstField());
  EXPECT_EQ(E.Guard.literals()[0].V, 4);
}

TEST(Extract, FirewallNoEdgesAtStateOne) {
  SPolRef P = parse(apps::firewallSource());
  // state=[1]: the assigning branch is guarded by state=[0], and the
  // assignment to [1] from [1] would be a self-loop anyway.
  EXPECT_TRUE(extractEdges(P, {1}).Edges.empty());
}

TEST(Extract, DisabledStateTestKillsPath) {
  SPolRef P = parse("state(0)=5; (1:1)->(2:1)<state<-[1]>");
  EXPECT_TRUE(extractEdges(P, {0}).Edges.empty());
  EXPECT_EQ(extractEdges(P, {5}).Edges.size(), 1u);
}

TEST(Extract, SelfAssignmentProducesNoEdge) {
  SPolRef P = parse("(1:1)->(2:1)<state<-[0]>");
  EXPECT_TRUE(extractEdges(P, {0}).Edges.empty());
}

TEST(Extract, NegationPushesThroughDeMorgan) {
  // not(a and b) == not a or not b: two paths, two formulas.
  SPolRef P = parse("not (ip_dst=1 and kind=2); (1:1)->(2:1)<state<-[1]>");
  ExtractResult R = extractEdges(P, {0});
  // Two edges with different guards (ip_dst!=1, kind!=2).
  EXPECT_EQ(R.Edges.size(), 2u);
}

TEST(Extract, FieldAssignStripsAndAdds) {
  // The test on f is overwritten by the assignment f<-7.
  SPolRef P = parse("ip_dst=1; ip_dst<-7; (1:1)->(2:1)<state<-[1]>");
  ExtractResult R = extractEdges(P, {0});
  ASSERT_EQ(R.Edges.size(), 1u);
  ASSERT_EQ(R.Edges[0].Guard.literals().size(), 1u);
  EXPECT_EQ(R.Edges[0].Guard.literals()[0].V, 7);
}

TEST(Extract, ContradictoryPathPruned) {
  SPolRef P = parse("ip_dst=1 and ip_dst=2; (1:1)->(2:1)<state<-[1]>");
  EXPECT_TRUE(extractEdges(P, {0}).Edges.empty());
}

TEST(Extract, UnionCollectsBothBranches) {
  SPolRef P = parse("ip_dst=1; (1:1)->(2:1)<state<-[1]> "
                    "+ ip_dst=2; (3:1)->(4:1)<state<-[2]>");
  ExtractResult R = extractEdges(P, {0, 0});
  // state size is 1 here (indices are both 0)... both assign component 0.
  ASSERT_EQ(R.Edges.size(), 2u);
  EXPECT_NE(R.Edges[0].To, R.Edges[1].To);
}

TEST(Extract, StarExtractsThroughIteration) {
  SPolRef P = parse("(ip_dst=1)*; (1:1)->(2:1)<state<-[1]>");
  ExtractResult R = extractEdges(P, {0});
  // Paths through 0 and >=1 iterations: guards true and ip_dst=1.
  EXPECT_EQ(R.Edges.size(), 2u);
}

TEST(Extract, BandwidthCapChain) {
  SPolRef P = parse(apps::bandwidthCapSource(3));
  for (Value K = 0; K <= 3; ++K) {
    ExtractResult R = extractEdges(P, {K});
    ASSERT_EQ(R.Edges.size(), 1u) << "state " << K;
    EXPECT_EQ(R.Edges[0].To, (StateVec{K + 1}));
  }
  EXPECT_TRUE(extractEdges(P, {4}).Edges.empty());
}
