//===- tests/ets/EtsTest.cpp - ETS construction tests ---------------------===//

#include "ets/Ets.h"

#include "apps/Programs.h"
#include "stateful/Parser.h"
#include "topo/Builders.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::ets;
using namespace eventnet::stateful;

namespace {
SPolRef parse(const std::string &Src) {
  api::Result<Parsed> R = parseProgram(Src);
  EXPECT_TRUE(R.ok()) << R.status().str();
  return R->Program;
}
} // namespace

TEST(Ets, FirewallTwoStates) {
  BuildResult R =
      buildEts(parse(apps::firewallSource()), topo::firewallTopology());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.T.vertices().size(), 2u);
  ASSERT_EQ(R.T.edges().size(), 1u);
  EXPECT_EQ(R.T.edges()[0].From, 0u);
  EXPECT_EQ(R.T.edges()[0].To, 1u);
  EXPECT_EQ(R.T.edges()[0].Loc, (Location{4, 1}));
  EXPECT_EQ(R.T.vertices()[0].K, (StateVec{0}));
  EXPECT_EQ(R.T.vertices()[1].K, (StateVec{1}));
}

TEST(Ets, FirewallConfigsCompiled) {
  BuildResult R =
      buildEts(parse(apps::firewallSource()), topo::firewallTopology());
  ASSERT_TRUE(R.Ok) << R.Error;
  // State 0 drops incoming at s4; state 1 forwards it.
  FieldId Dst = apps::ipDstField();
  netkat::Packet In = netkat::makePacket({4, 2}, {{Dst, 1}});
  EXPECT_TRUE(R.T.vertices()[0].Config.tableFor(4).apply(In).empty());
  EXPECT_EQ(R.T.vertices()[1].Config.tableFor(4).apply(In).size(), 1u);
}

TEST(Ets, AuthenticationChainOfThree) {
  BuildResult R =
      buildEts(parse(apps::authenticationSource()), topo::starTopology());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.T.vertices().size(), 3u);
  EXPECT_EQ(R.T.edges().size(), 2u);
}

TEST(Ets, BandwidthCapChainLength) {
  BuildResult R =
      buildEts(parse(apps::bandwidthCapSource(10)), topo::firewallTopology());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.T.vertices().size(), 12u);
  EXPECT_EQ(R.T.edges().size(), 11u);
}

TEST(Ets, RingProgramBuilds) {
  BuildResult R = buildEts(apps::ringProgram(6, 3), topo::ringTopology(6, 3));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.T.vertices().size(), 2u);
  ASSERT_EQ(R.T.edges().size(), 1u);
  EXPECT_EQ(R.T.edges()[0].Loc, (Location{4, 2}));
}

TEST(Ets, MissingTopologyLinkRejected) {
  // The program uses a link the firewall topology does not have.
  BuildResult R = buildEts(parse("pt=2; pt<-1; (1:1)->(9:1)"),
                           topo::firewallTopology());
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("does not exist"), std::string::npos);
}

TEST(Ets, CycleRejected) {
  // 0 -> 1 -> 0 via two events.
  std::string Src = "state=[0]; (1:1)->(4:1)<state<-[1]> "
                    "+ state=[1]; (1:1)->(4:1)<state<-[0]>";
  BuildResult R = buildEts(parse(Src), topo::firewallTopology());
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("loop"), std::string::npos);
}

TEST(Ets, StarOverLinkRejectedThroughPipeline) {
  BuildResult R =
      buildEts(parse("((1:1)->(4:1))*"), topo::firewallTopology());
  EXPECT_FALSE(R.Ok);
}

TEST(Ets, EdgesFromFiltersBySource) {
  BuildResult R =
      buildEts(parse(apps::authenticationSource()), topo::starTopology());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.T.edgesFrom(0).size(), 1u);
  EXPECT_EQ(R.T.edgesFrom(2).size(), 0u);
}
