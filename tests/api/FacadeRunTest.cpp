//===- tests/api/FacadeRunTest.cpp - One surface, three backends ----------===//
//
// The acceptance-level façade test: the same compiled program and the
// same seeded workload execute on the Machine, the Simulator, and the
// Engine through one Run surface, every backend's recorded trace passes
// the Definition 6 checker, and the uniform RunReport carries comparable
// counters (identical injected-packet counts, since all backends realize
// the identical workload).
//
//===----------------------------------------------------------------------===//

#include "api/Api.h"

#include "apps/Programs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

using namespace eventnet;
using namespace eventnet::api;

namespace {

Result<Compilation> compileFirewall() {
  return compile(CompileOptions()
                     .programSource(apps::firewallSource())
                     .topology(topo::firewallTopology()));
}

} // namespace

TEST(Facade, RegistryListsBuiltins) {
  std::vector<std::string> Names = backendNames();
  EXPECT_NE(std::find(Names.begin(), Names.end(), "machine"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "sim"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "engine"), Names.end());
}

TEST(Facade, CompilationExposesEveryArtifact) {
  Result<Compilation> C = compileFirewall();
  ASSERT_TRUE(C.ok()) << C.status().str();

  EXPECT_EQ(C->structure().numEvents(), 1u);
  EXPECT_EQ(C->structure().numSets(), 2u);
  EXPECT_EQ(C->ets().vertices().size(), 2u);
  EXPECT_EQ(C->bindings().at("H4"), 4);
  EXPECT_GT(C->compileSeconds(), 0);
  EXPECT_GT(C->guardedRuleCount(), 0u);
  EXPECT_LE(C->shareStats().After, C->shareStats().Before);
  EXPECT_FALSE(C->etsText().empty());
  EXPECT_FALSE(C->nesText().empty());
  EXPECT_NE(C->tablesText().find("event-set E0"), std::string::npos);
  EXPECT_NE(C->summary().find("locally determined"), std::string::npos);
  EXPECT_NE(C->summaryJson().find("\"events\": 1"), std::string::npos);
}

class FacadeBackends : public ::testing::TestWithParam<const char *> {};

TEST_P(FacadeBackends, FirewallRunIsConsistent) {
  Result<Compilation> C = compileFirewall();
  ASSERT_TRUE(C.ok()) << C.status().str();

  Result<RunReport> R =
      run(*C, GetParam(), RunOptions().seed(7).phases(4).pingsPerPhase(4));
  ASSERT_TRUE(R.ok()) << R.status().str();

  EXPECT_EQ(R->Backend, GetParam());
  EXPECT_EQ(R->Seed, 7u);
  EXPECT_GT(R->PacketsInjected, 0u);
  EXPECT_GT(R->PacketsDelivered, 0u);
  EXPECT_GT(R->SwitchHops, 0u);
  EXPECT_GT(R->Trace.size(), 0u);
  ASSERT_TRUE(R->Checked);
  EXPECT_TRUE(R->Consistency.Correct) << R->Consistency.Reason;

  // Packet conservation holds on every backend; the audit proves it.
  EXPECT_TRUE(R->Audit.Ok)
      << R->Audit.SilentLoss << " packets silently lost";
  EXPECT_EQ(R->Audit.Injected, R->PacketsInjected);
  EXPECT_EQ(R->Audit.SilentLoss, 0u);
}

TEST_P(FacadeBackends, RingRunIsConsistent) {
  apps::App A = apps::ringApp(6, 3);
  Result<Compilation> C = compile(
      CompileOptions().programAst(A.Ast).topology(A.Topo));
  ASSERT_TRUE(C.ok()) << C.status().str();

  Result<RunReport> R =
      run(*C, GetParam(), RunOptions().seed(13).phases(3).pingsPerPhase(2));
  ASSERT_TRUE(R.ok()) << R.status().str();
  ASSERT_TRUE(R->Checked);
  EXPECT_TRUE(R->Consistency.Correct)
      << GetParam() << ": " << R->Consistency.Reason;
}

TEST_P(FacadeBackends, ReportRendersTextAndJson) {
  Result<Compilation> C = compileFirewall();
  ASSERT_TRUE(C.ok()) << C.status().str();
  Result<RunReport> R = run(*C, GetParam(), RunOptions().seed(3));
  ASSERT_TRUE(R.ok()) << R.status().str();

  std::string Text = R->str();
  EXPECT_NE(Text.find("injected:"), std::string::npos);
  EXPECT_NE(Text.find("definition 6: consistent"), std::string::npos);

  std::string Json = R->json();
  EXPECT_NE(Json.find("\"backend\": \"" + std::string(GetParam()) + "\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"seed\": 3"), std::string::npos);
  EXPECT_NE(Json.find("\"consistency\": {\"checked\": true, "
                      "\"correct\": true}"),
            std::string::npos);
  // The observability keys are part of the schema on every backend
  // (zero-valued where the backend records nothing).
  for (const char *Key :
       {"\"update_lat_p50\"", "\"update_lat_p99\"", "\"queue_dwell\"",
        "\"batch_occupancy\"", "\"drop_audit\"", "\"silent_loss\"",
        "\"obs_trace_recorded\""})
    EXPECT_NE(Json.find(Key), std::string::npos) << Key;
  EXPECT_NE(Json.find("\"ok\": true"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Backends, FacadeBackends,
                         ::testing::Values("machine", "sim", "engine"));

TEST(Facade, EnginePartitionStrategiesRunAndReport) {
  apps::App A = apps::ringApp(6, 3);
  Result<Compilation> C =
      compile(CompileOptions().programAst(A.Ast).topology(A.Topo));
  ASSERT_TRUE(C.ok()) << C.status().str();

  for (const char *P : {"modulo", "contiguous", "refined"}) {
    Result<RunReport> R = run(
        *C, "engine",
        RunOptions().seed(5).shards(2).phases(3).pingsPerPhase(2).partition(
            P));
    ASSERT_TRUE(R.ok()) << P << ": " << R.status().str();
    EXPECT_EQ(R->Partition, P);
    EXPECT_LE(R->EdgeCut, R->EdgeTotal) << P;
    uint32_t Placed = 0;
    for (const ShardReport &D : R->ShardDetail)
      Placed += D.Switches;
    EXPECT_EQ(Placed, A.Topo.switches().size()) << P;
    ASSERT_TRUE(R->Checked);
    EXPECT_TRUE(R->Consistency.Correct) << P << ": "
                                        << R->Consistency.Reason;
    EXPECT_NE(R->json().find("\"partition\": \"" + std::string(P) + "\""),
              std::string::npos);
    EXPECT_NE(R->json().find("\"switches\": "), std::string::npos);
  }
  // The ring's contiguous placement must beat round-robin on edge cut.
  Result<RunReport> Mod =
      run(*C, "engine", RunOptions().seed(5).shards(2).partition("modulo"));
  Result<RunReport> Ref = run(*C, "engine",
                              RunOptions().seed(5).shards(2).partition(
                                  "refined"));
  ASSERT_TRUE(Mod.ok() && Ref.ok());
  EXPECT_LT(Ref->EdgeCut, Mod->EdgeCut);
}

TEST(Facade, EngineObservabilityEndToEnd) {
  // The full observability stack through the façade: latency
  // histograms, the obs trace ring, and the metrics sampler all on at
  // once, with counters that cross-check the run's own report.
  Result<Compilation> C = compileFirewall();
  ASSERT_TRUE(C.ok()) << C.status().str();

  Result<RunReport> R =
      run(*C, "engine",
          RunOptions().seed(9).shards(2).phases(3).pingsPerPhase(3)
              .latencyHistograms(true)
              .traceEvents(1 << 14)
              .metricsIntervalMs(1)
              .metricsPath("/dev/null"));
  ASSERT_TRUE(R.ok()) << R.status().str();
  ASSERT_TRUE(R->Checked);
  EXPECT_TRUE(R->Consistency.Correct) << R->Consistency.Reason;
  EXPECT_TRUE(R->Audit.Ok);

  // Histograms: every switch hop dwelt in some queue, every dequeue
  // batch had occupancy >= 1.
  EXPECT_GT(R->QueueDwell.Samples, 0u);
  EXPECT_GE(R->QueueDwell.MaxSec, R->QueueDwell.P50Sec);
  EXPECT_GT(R->BatchOccupancy.Samples, 0u);
  EXPECT_GE(R->BatchOccupancy.MeanSec, 1.0);

  // Trace ring: events were recorded, none dropped at this capacity,
  // and the merged timeline is time-ordered with injects and hops.
  EXPECT_GT(R->TraceRecorded, 0u);
  EXPECT_EQ(R->TraceDropped, 0u);
  ASSERT_EQ(R->ObsTrace.size(), R->TraceRecorded);
  bool SawInject = false, SawHop = false;
  for (size_t I = 0; I != R->ObsTrace.size(); ++I) {
    const obs::TraceEvent &E = R->ObsTrace[I];
    SawInject |= E.Kind == obs::TraceKind::Inject;
    SawHop |= E.Kind == obs::TraceKind::Hop;
    EXPECT_LT(E.Shard, 2u);
    if (I)
      EXPECT_LE(R->ObsTrace[I - 1].TsNs, E.TsNs) << "unsorted at " << I;
  }
  EXPECT_TRUE(SawInject);
  EXPECT_TRUE(SawHop);

  // Off by default: the same run without the options records nothing.
  Result<RunReport> Off =
      run(*C, "engine",
          RunOptions().seed(9).shards(2).phases(3).pingsPerPhase(3));
  ASSERT_TRUE(Off.ok()) << Off.status().str();
  EXPECT_EQ(Off->QueueDwell.Samples, 0u);
  EXPECT_EQ(Off->TraceRecorded, 0u);
  EXPECT_TRUE(Off->ObsTrace.empty());
  // ...but the update-latency digest is a protocol by-product and is
  // populated either way (the ring app's probe flips its config).
  EXPECT_GT(Off->ConfigTransitions, 0u);
}

TEST(Facade, UnknownPartitionStrategyIsInvalidArgument) {
  Result<Compilation> C = compileFirewall();
  ASSERT_TRUE(C.ok()) << C.status().str();
  Result<RunReport> R =
      run(*C, "engine", RunOptions().partition("round-robin"));
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), Code::InvalidArgument);
  EXPECT_NE(R.status().message().find("round-robin"), std::string::npos);
}

TEST(Facade, OneSeedReproducesSequentialBackends) {
  // The uniform-seeding satellite: a single RunOptions::Seed drives the
  // workload generator and every backend's own randomness, so the
  // sequential backends are bit-reproducible run to run. (Cross-backend
  // *counter equality* is not guaranteed — within a phase, a request
  // racing its own enabling event may be dropped on one substrate and
  // delivered on another, which is exactly the nondeterminism Definition
  // 6 quantifies over.)
  Result<Compilation> C = compileFirewall();
  ASSERT_TRUE(C.ok()) << C.status().str();

  RunOptions O = RunOptions().seed(21).phases(3).pingsPerPhase(3);
  Result<RunReport> M = run(*C, "machine", O);
  Result<RunReport> M2 = run(*C, "machine", O);
  ASSERT_TRUE(M.ok() && M2.ok());
  EXPECT_EQ(M->PacketsInjected, M2->PacketsInjected);
  EXPECT_EQ(M->PacketsDelivered, M2->PacketsDelivered);
  EXPECT_EQ(M->SwitchHops, M2->SwitchHops);
  EXPECT_EQ(M->Trace.size(), M2->Trace.size());

  Result<RunReport> S = run(*C, "sim", O);
  Result<RunReport> S2 = run(*C, "sim", O);
  ASSERT_TRUE(S.ok() && S2.ok());
  EXPECT_EQ(S->PacketsInjected, S2->PacketsInjected);
  EXPECT_EQ(S->PacketsDelivered, S2->PacketsDelivered);
  EXPECT_EQ(S->Trace.size(), S2->Trace.size());
  EXPECT_EQ(S->Trace.str(), S2->Trace.str());
}

TEST(Facade, RegisteredBackendIsReachable) {
  // The registry is open: a custom substrate plugs into the same Run
  // surface the CLI uses.
  class NullBackend : public Backend {
  public:
    const char *name() const override { return "null"; }
    Result<RunReport> execute(const Compilation &, const RunOptions &,
                              const engine::Workload &W) override {
      RunReport R;
      R.PacketsInjected = W.totalInjections();
      return R;
    }
  };
  registerBackend("null", [] { return std::make_unique<NullBackend>(); });

  Result<Compilation> C = compileFirewall();
  ASSERT_TRUE(C.ok()) << C.status().str();
  Result<RunReport> R =
      run(*C, "null", RunOptions().phases(2).pingsPerPhase(2));
  ASSERT_TRUE(R.ok()) << R.status().str();
  EXPECT_EQ(R->PacketsInjected, 4u);
  // An empty trace with no events trivially satisfies Definition 6.
  ASSERT_TRUE(R->Checked);
  EXPECT_TRUE(R->Consistency.Correct) << R->Consistency.Reason;
}
