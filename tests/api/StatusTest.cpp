//===- tests/api/StatusTest.cpp - Status/Result error paths ---------------===//
//
// The façade's error contract: every malformed input surfaces as a
// structured api::Status with the right failure class and a distinct
// exit code — never a crash, an exit(), or an empty artifact.
//
//===----------------------------------------------------------------------===//

#include "api/Api.h"

#include "apps/Programs.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace eventnet;
using namespace eventnet::api;

TEST(Status, DefaultIsOk) {
  Status S;
  EXPECT_TRUE(S.ok());
  EXPECT_EQ(S.code(), Code::Ok);
  EXPECT_EQ(S.exitCode(), 0);
  EXPECT_EQ(S.str(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status S = Status::error(Code::ParseError, "3:7: boom");
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), Code::ParseError);
  EXPECT_EQ(S.message(), "3:7: boom");
  EXPECT_EQ(S.str(), "parse-error: 3:7: boom");
}

TEST(Status, DistinctExitCodePerFailureClass) {
  // The CLI satellite: each failure class must be distinguishable by
  // exit code alone, and none may collide with the usage convention's 0.
  std::vector<Code> Errors = {
      Code::InvalidArgument, Code::IoError,  Code::ParseError,
      Code::TopoError,       Code::CompileError, Code::RunError,
      Code::ConsistencyViolation, Code::Internal, Code::DropAuditFailure};
  std::set<int> Seen;
  for (Code C : Errors) {
    int E = Status::error(C, "x").exitCode();
    EXPECT_NE(E, 0) << codeName(C);
    EXPECT_TRUE(Seen.insert(E).second) << codeName(C) << " collides";
  }
  // The --fail-on-drop contract: silent loss exits 10.
  EXPECT_EQ(Status::error(Code::DropAuditFailure, "x").exitCode(), 10);
  EXPECT_STREQ(codeName(Code::DropAuditFailure), "drop-audit-failure");
}

TEST(Result, DefaultConstructedIsEmptyInternalError) {
  Result<int> R;
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), Code::Internal);
}

TEST(Result, ValueRoundTrips) {
  Result<std::string> R = std::string("hello");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(*R, "hello");
  EXPECT_EQ(R->size(), 5u);
}

//===----------------------------------------------------------------------===//
// compile() error paths
//===----------------------------------------------------------------------===//

namespace {

const char *GoodTopo = "link 1:1 - 4:1\nhost 1 at 1:2\nhost 4 at 4:2\n";

} // namespace

TEST(CompileErrors, NoInputsIsInvalidArgument) {
  Result<Compilation> C = compile(CompileOptions());
  ASSERT_FALSE(C.ok());
  EXPECT_EQ(C.status().code(), Code::InvalidArgument);

  C = compile(CompileOptions().programSource("drop"));
  ASSERT_FALSE(C.ok());
  EXPECT_EQ(C.status().code(), Code::InvalidArgument);
}

TEST(CompileErrors, MissingFilesAreIoErrors) {
  Result<Compilation> C = compile(CompileOptions()
                                      .programFile("/nonexistent/p.snk")
                                      .topologySource(GoodTopo));
  ASSERT_FALSE(C.ok());
  EXPECT_EQ(C.status().code(), Code::IoError);
  EXPECT_NE(C.status().message().find("/nonexistent/p.snk"),
            std::string::npos);

  C = compile(CompileOptions()
                  .programSource(apps::firewallSource())
                  .topologyFile("/nonexistent/net.topo"));
  ASSERT_FALSE(C.ok());
  EXPECT_EQ(C.status().code(), Code::IoError);
}

TEST(CompileErrors, BadProgramIsParseErrorWithPosition) {
  Result<Compilation> C = compile(CompileOptions()
                                      .programSource("pt=@")
                                      .topologySource(GoodTopo));
  ASSERT_FALSE(C.ok());
  EXPECT_EQ(C.status().code(), Code::ParseError);
  EXPECT_NE(C.status().message().find("1:"), std::string::npos)
      << C.status().str();
}

TEST(CompileErrors, BadTopologyIsTopoErrorWithLine) {
  Result<Compilation> C = compile(CompileOptions()
                                      .programSource(apps::firewallSource())
                                      .topologySource("link 1:1 = 4:1\n"));
  ASSERT_FALSE(C.ok());
  EXPECT_EQ(C.status().code(), Code::TopoError);
  EXPECT_NE(C.status().message().find("line 1"), std::string::npos);
}

TEST(CompileErrors, LocalityViolationIsCompileError) {
  // Conflicting events detected at different switches (Section 2).
  std::string Src = R"(
state=[0]; pt=2; pt<-1; (1:1)->(2:1)<state<-[1]>; pt<-2
+ state=[0]; pt=3; pt<-4; (1:4)->(3:1)<state<-[2]>; pt<-2
)";
  topo::Topology T;
  T.addBiLink({1, 1}, {2, 1});
  T.addBiLink({1, 4}, {3, 1});
  T.attachHost(1, {1, 2});
  T.attachHost(2, {2, 2});
  T.attachHost(3, {3, 2});

  Result<Compilation> C =
      compile(CompileOptions().programSource(Src).topology(T));
  ASSERT_FALSE(C.ok());
  EXPECT_EQ(C.status().code(), Code::CompileError);
  EXPECT_NE(C.status().message().find("locally determined"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// run() error paths
//===----------------------------------------------------------------------===//

TEST(RunErrors, UnknownBackendIsInvalidArgument) {
  Result<Compilation> C = compile(CompileOptions()
                                      .programSource(apps::firewallSource())
                                      .topologySource(GoodTopo));
  ASSERT_TRUE(C.ok()) << C.status().str();

  Result<RunReport> R = run(*C, "warp-drive");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), Code::InvalidArgument);
  EXPECT_NE(R.status().message().find("warp-drive"), std::string::npos);
  // The message lists what IS registered.
  EXPECT_NE(R.status().message().find("engine"), std::string::npos);
}

TEST(RunErrors, BadOptionsAreInvalidArgument) {
  Result<Compilation> C = compile(CompileOptions()
                                      .programSource(apps::firewallSource())
                                      .topologySource(GoodTopo));
  ASSERT_TRUE(C.ok()) << C.status().str();

  Result<RunReport> R = run(*C, "engine", RunOptions().phases(0));
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), Code::InvalidArgument);

  R = run(*C, "engine", RunOptions().shards(0));
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), Code::InvalidArgument);
}

TEST(RunErrors, HostlessTopologyIsRunError) {
  // A program over a topology with a single host cannot generate the
  // ping workload on any backend.
  Result<Compilation> C =
      compile(CompileOptions()
                  .programSource("pt=2; pt<-1; (1:1)->(4:1); pt<-2")
                  .topologySource("link 1:1 - 4:1\nhost 1 at 1:2\n"));
  ASSERT_TRUE(C.ok()) << C.status().str();
  for (const std::string &B : backendNames()) {
    Result<RunReport> R = run(*C, B);
    ASSERT_FALSE(R.ok()) << B;
    EXPECT_EQ(R.status().code(), Code::RunError) << B;
  }
}
