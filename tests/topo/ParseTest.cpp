//===- tests/topo/ParseTest.cpp - Topology file parser tests --------------===//

#include "topo/Parse.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::topo;

TEST(TopoParse, FirewallFile) {
  api::Result<Topology> R = parseTopology(R"(
# the Figure 1 topology
host 1 at 1:2
host 4 at 4:2
link 1:1 - 4:1
)");
  ASSERT_TRUE(R.ok()) << R.status().str();
  EXPECT_EQ(R->switches().size(), 2u);
  EXPECT_EQ(R->hostLoc(1), (Location{1, 2}));
  ASSERT_TRUE(R->linkFrom({4, 1}).has_value());
  EXPECT_EQ(*R->linkFrom({4, 1}), (Location{1, 1}));
}

TEST(TopoParse, UnidirectionalLink) {
  api::Result<Topology> R = parseTopology("link 1:1 -> 2:1\n");
  ASSERT_TRUE(R.ok()) << R.status().str();
  EXPECT_TRUE(R->linkFrom({1, 1}).has_value());
  EXPECT_FALSE(R->linkFrom({2, 1}).has_value());
}

TEST(TopoParse, ExplicitSwitch) {
  api::Result<Topology> R = parseTopology("switch 7\n");
  ASSERT_TRUE(R.ok()) << R.status().str();
  EXPECT_EQ(R->switches().count(7), 1u);
}

TEST(TopoParse, EmptyAndCommentsOk) {
  api::Result<Topology> R = parseTopology("\n  # nothing here\n\n");
  EXPECT_TRUE(R.ok()) << R.status().str();
}

TEST(TopoParse, Diagnostics) {
  api::Result<Topology> R = parseTopology("link 1:1 = 2:1\n");
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), api::Code::TopoError);
  EXPECT_NE(R.status().message().find("line 1"), std::string::npos);

  R = parseTopology("host 1 1:2\n");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.status().message().find("host"), std::string::npos);

  R = parseTopology("frobnicate\n");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.status().message().find("unknown directive"),
            std::string::npos);

  R = parseTopology("switch x\n");
  EXPECT_FALSE(R.ok());
}

TEST(TopoParse, BadLocationRejected) {
  EXPECT_FALSE(parseTopology("host 1 at 12\n").ok());
  EXPECT_FALSE(parseTopology("host 1 at :2\n").ok());
  EXPECT_FALSE(parseTopology("host 1 at 1:\n").ok());
  EXPECT_FALSE(parseTopology("host 1 at a:b\n").ok());
}
