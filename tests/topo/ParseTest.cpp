//===- tests/topo/ParseTest.cpp - Topology file parser tests --------------===//

#include "topo/Parse.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::topo;

TEST(TopoParse, FirewallFile) {
  TopoParseResult R = parseTopology(R"(
# the Figure 1 topology
host 1 at 1:2
host 4 at 4:2
link 1:1 - 4:1
)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Topo.switches().size(), 2u);
  EXPECT_EQ(R.Topo.hostLoc(1), (Location{1, 2}));
  ASSERT_TRUE(R.Topo.linkFrom({4, 1}).has_value());
  EXPECT_EQ(*R.Topo.linkFrom({4, 1}), (Location{1, 1}));
}

TEST(TopoParse, UnidirectionalLink) {
  TopoParseResult R = parseTopology("link 1:1 -> 2:1\n");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.Topo.linkFrom({1, 1}).has_value());
  EXPECT_FALSE(R.Topo.linkFrom({2, 1}).has_value());
}

TEST(TopoParse, ExplicitSwitch) {
  TopoParseResult R = parseTopology("switch 7\n");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Topo.switches().count(7), 1u);
}

TEST(TopoParse, EmptyAndCommentsOk) {
  TopoParseResult R = parseTopology("\n  # nothing here\n\n");
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(TopoParse, Diagnostics) {
  TopoParseResult R = parseTopology("link 1:1 = 2:1\n");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("line 1"), std::string::npos);

  R = parseTopology("host 1 1:2\n");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("host"), std::string::npos);

  R = parseTopology("frobnicate\n");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unknown directive"), std::string::npos);

  R = parseTopology("switch x\n");
  EXPECT_FALSE(R.Ok);
}

TEST(TopoParse, BadLocationRejected) {
  EXPECT_FALSE(parseTopology("host 1 at 12\n").Ok);
  EXPECT_FALSE(parseTopology("host 1 at :2\n").Ok);
  EXPECT_FALSE(parseTopology("host 1 at 1:\n").Ok);
  EXPECT_FALSE(parseTopology("host 1 at a:b\n").Ok);
}
