//===- tests/topo/TopologyTest.cpp - Topology + Configuration tests -------===//

#include "topo/Builders.h"
#include "topo/Configuration.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::topo;
using eventnet::netkat::Packet;
using eventnet::netkat::makePacket;

TEST(Topology, FirewallShape) {
  Topology T = firewallTopology();
  EXPECT_EQ(T.switches().size(), 2u);
  EXPECT_EQ(T.hosts().size(), 2u);
  EXPECT_EQ(T.hostLoc(HostH1), (Location{1, 2}));
  EXPECT_EQ(T.hostLoc(HostH4), (Location{4, 2}));
  ASSERT_TRUE(T.linkFrom({1, 1}).has_value());
  EXPECT_EQ(*T.linkFrom({1, 1}), (Location{4, 1}));
  EXPECT_EQ(*T.linkFrom({4, 1}), (Location{1, 1}));
  EXPECT_FALSE(T.linkFrom({1, 2}).has_value()); // host port
  EXPECT_TRUE(T.isHostPort({4, 2}));
  EXPECT_FALSE(T.isHostPort({4, 1}));
}

TEST(Topology, StarShape) {
  Topology T = starTopology();
  EXPECT_EQ(T.switches().size(), 4u);
  EXPECT_EQ(T.hosts().size(), 4u);
  EXPECT_EQ(*T.linkFrom({4, 3}), (Location{2, 1}));
  EXPECT_EQ(*T.linkFrom({3, 1}), (Location{4, 4}));
  EXPECT_EQ(T.switchDistance(1, 2), 2);
  EXPECT_EQ(T.switchDistance(1, 4), 1);
}

TEST(Topology, RingShapeAndDistance) {
  for (unsigned D = 1; D <= 4; ++D) {
    Topology T = ringTopology(8, D);
    EXPECT_EQ(T.switches().size(), 8u);
    EXPECT_EQ(T.hostLoc(HostH1), (Location{1, 3}));
    EXPECT_EQ(T.hostLoc(HostH2), (Location{1 + D, 3}));
    EXPECT_EQ(T.switchDistance(1, 1 + D), static_cast<int>(D)) << D;
  }
  // The ring wraps: clockwise port 1 of the last switch reaches switch 1.
  Topology T = ringTopology(5, 2);
  EXPECT_EQ(*T.linkFrom({5, 1}), (Location{1, 2}));
  EXPECT_EQ(*T.linkFrom({1, 2}), (Location{5, 1}));
}

TEST(Topology, DistanceUnreachable) {
  Topology T;
  T.addSwitch(1);
  T.addSwitch(2);
  EXPECT_EQ(T.switchDistance(1, 2), -1);
  EXPECT_EQ(T.switchDistance(1, 1), 0);
}

TEST(Configuration, StepThroughTableAndLink) {
  Topology T = firewallTopology();
  FieldId Dst = fieldOf("ip_dst");

  flowtable::Table S1;
  flowtable::Rule R;
  R.Priority = 10;
  R.Pattern.require(FieldPt, 2);
  R.Pattern.require(Dst, 4);
  R.Actions = {flowtable::normalizeActionSeq({{FieldPt, 1}})};
  S1.add(R);
  Configuration C;
  C.setTable(1, S1);

  Packet In = makePacket({1, 2}, {{Dst, 4}});
  auto Out = C.step(T, In);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].loc(), (Location{1, 1}));

  // From the egress port the step is the link move.
  auto Out2 = C.step(T, Out[0]);
  ASSERT_EQ(Out2.size(), 1u);
  EXPECT_EQ(Out2[0].loc(), (Location{4, 1}));
}

TEST(Configuration, RelatedChecksBothKinds) {
  Topology T = firewallTopology();
  Configuration C;
  flowtable::Table S1;
  flowtable::Rule R;
  R.Priority = 1;
  R.Actions = {flowtable::normalizeActionSeq({{FieldPt, 1}})};
  S1.add(R);
  C.setTable(1, S1);

  Packet A = makePacket({1, 2}, {});
  Packet B = makePacket({1, 1}, {});
  Packet Cross = makePacket({4, 1}, {});
  EXPECT_TRUE(C.related(T, A, B));
  EXPECT_TRUE(C.related(T, B, Cross));
  EXPECT_FALSE(C.related(T, A, Cross));
}

TEST(Configuration, CompleteTraceSemantics) {
  Topology T = firewallTopology();
  FieldId Dst = fieldOf("ip_dst");

  // s1 forwards dst=4 from pt 2 to pt 1; s4 delivers at pt 2.
  Configuration C;
  {
    flowtable::Table S1, S4;
    flowtable::Rule R1;
    R1.Priority = 10;
    R1.Pattern.require(FieldPt, 2);
    R1.Pattern.require(Dst, 4);
    R1.Actions = {flowtable::normalizeActionSeq({{FieldPt, 1}})};
    S1.add(R1);
    flowtable::Rule R4;
    R4.Priority = 10;
    R4.Pattern.require(FieldPt, 1);
    R4.Pattern.require(Dst, 4);
    R4.Actions = {flowtable::normalizeActionSeq({{FieldPt, 2}})};
    S4.add(R4);
    C.setTable(1, S1);
    C.setTable(4, S4);
  }

  Packet P0 = makePacket({1, 2}, {{Dst, 4}});
  Packet P1 = makePacket({1, 1}, {{Dst, 4}});
  Packet P2 = makePacket({4, 1}, {{Dst, 4}});
  Packet P3 = makePacket({4, 2}, {{Dst, 4}});

  // Full delivery trace is complete.
  EXPECT_TRUE(C.isCompleteTrace(T, {P0, P1, P2, P3}));
  // Truncated trace is not (the configuration keeps forwarding).
  EXPECT_FALSE(C.isCompleteTrace(T, {P0, P1}));
  // A single-entry trace is complete iff the table drops it.
  Packet Dropped = makePacket({1, 2}, {{Dst, 9}});
  EXPECT_TRUE(C.isCompleteTrace(T, {Dropped}));
  EXPECT_FALSE(C.isCompleteTrace(T, {P0}));
  // Unrelated consecutive entries are rejected.
  EXPECT_FALSE(C.isCompleteTrace(T, {P0, P2, P3}));
}

TEST(Configuration, TotalRules) {
  Configuration C;
  flowtable::Table A, B;
  flowtable::Rule R;
  R.Priority = 1;
  A.add(R);
  B.add(R);
  B.add(R);
  C.setTable(1, A);
  C.setTable(2, B);
  EXPECT_EQ(C.totalRules(), 3u);
}
