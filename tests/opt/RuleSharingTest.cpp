//===- tests/opt/RuleSharingTest.cpp - Section 5.3 optimization tests -----===//

#include "opt/RuleSharing.h"

#include "apps/Programs.h"
#include "nes/Pipeline.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::opt;

namespace {
RuleSet rs(std::initializer_list<unsigned> Xs) { return RuleSet(Xs); }
} // namespace

TEST(RuleSharing, PaperFigure18Example) {
  // C0={r1,r2}, C1={r1,r3}, C2={r2,r3}, C3={r1,r2}. The order of Figure
  // 18(a) costs 6; Figure 18(b)'s order costs 5.
  std::vector<RuleSet> A = {rs({1, 2}), rs({1, 3}), rs({2, 3}), rs({1, 2})};
  EXPECT_EQ(trieCost(A), 6u);

  std::vector<RuleSet> B = {rs({1, 2}), rs({1, 2}), rs({1, 3}), rs({2, 3})};
  EXPECT_EQ(trieCost(B), 5u);

  // The heuristic pairs the identical configurations and reaches the
  // optimum on this instance.
  TrieResult R = shareRulesHeuristic(A);
  EXPECT_EQ(R.OriginalRules, 8u);
  EXPECT_EQ(R.OptimizedRules, 5u);
  EXPECT_EQ(shareRulesOptimal(A), 5u);
}

TEST(RuleSharing, IdenticalConfigsCollapseToOneCopy) {
  std::vector<RuleSet> C(4, rs({1, 2, 3}));
  TrieResult R = shareRulesHeuristic(C);
  EXPECT_EQ(R.OriginalRules, 12u);
  EXPECT_EQ(R.OptimizedRules, 3u); // a single wildcarded copy
}

TEST(RuleSharing, DisjointConfigsCannotShare) {
  std::vector<RuleSet> C = {rs({1}), rs({2}), rs({3}), rs({4})};
  TrieResult R = shareRulesHeuristic(C);
  EXPECT_EQ(R.OptimizedRules, R.OriginalRules);
}

TEST(RuleSharing, PaddingAddsNoCost) {
  // Three configurations pad to four. Duplicating the odd-multiplicity
  // {3} gives every distinct configuration a twin: {1,2} and {3} are
  // each installed exactly once under a wildcarded guard.
  std::vector<RuleSet> C = {rs({1, 2}), rs({1, 2}), rs({3})};
  TrieResult R = shareRulesHeuristic(C);
  EXPECT_EQ(R.OriginalRules, 5u);
  EXPECT_EQ(R.OptimizedRules, 3u); // {1,2} shared once + {3} once
  EXPECT_EQ(R.LeafOrder.size(), 4u);
}

TEST(RuleSharing, SingleConfiguration) {
  std::vector<RuleSet> C = {rs({1, 2, 3})};
  TrieResult R = shareRulesHeuristic(C);
  EXPECT_EQ(R.OptimizedRules, 3u);
}

class RuleSharingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RuleSharingProperty, HeuristicBetweenOptimalAndNaive) {
  Rng R(GetParam());
  for (int Trial = 0; Trial != 20; ++Trial) {
    size_t K = 1 + R.below(3); // 2, 4, or 8 configs
    size_t NumConfigs = size_t(1) << K;
    std::vector<RuleSet> Configs;
    for (size_t I = 0; I != NumConfigs; ++I) {
      RuleSet S;
      size_t Size = 2 + R.below(5);
      while (S.size() < Size)
        S.insert(static_cast<unsigned>(R.below(10)));
      Configs.push_back(std::move(S));
    }
    TrieResult H = shareRulesHeuristic(Configs);
    EXPECT_LE(H.OptimizedRules, H.OriginalRules);
    if (NumConfigs <= 4) {
      size_t Best = shareRulesOptimal(Configs);
      EXPECT_LE(Best, H.OptimizedRules);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleSharingProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(RuleSharing, ReducesRulesOnEveryCaseStudy) {
  for (const apps::App &A : apps::caseStudyApps()) {
    api::Result<nes::CompiledProgram> C =
        nes::compileSource(A.Source, A.Topo);
    ASSERT_TRUE(C.ok()) << A.Name << ": " << C.status().str();
    NesShareStats S = shareRulesForNes(*C->N, A.Topo);
    EXPECT_GT(S.Before, 0u) << A.Name;
    EXPECT_LE(S.After, S.Before) << A.Name;
    // Multi-state apps genuinely share (the paper reports 11-36%
    // savings across these five).
    if (C->N->numSets() > 2) {
      EXPECT_LT(S.After, S.Before) << A.Name;
    }
  }
}
