//===- tests/consistency/TraceTest.cpp - happens-before tests -------------===//

#include "consistency/Trace.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::consistency;
using eventnet::netkat::makePacket;

namespace {
TraceEntry at(SwitchId Sw, PortId Pt, int Parent = -1) {
  TraceEntry E;
  E.Lp = makePacket({Sw, Pt}, {});
  E.Parent = Parent;
  return E;
}
} // namespace

TEST(NetworkTrace, SameSwitchOrder) {
  NetworkTrace T;
  int A = T.append(at(1, 1));
  int B = T.append(at(1, 2));
  int C = T.append(at(2, 1));
  EXPECT_TRUE(T.happensBefore(A, B));
  EXPECT_FALSE(T.happensBefore(B, A));
  // Different switches, no packet relation: incomparable.
  EXPECT_FALSE(T.happensBefore(A, C));
  EXPECT_FALSE(T.happensBefore(C, A));
  // Irreflexive.
  EXPECT_FALSE(T.happensBefore(A, A));
}

TEST(NetworkTrace, PacketTraceOrder) {
  NetworkTrace T;
  int A = T.append(at(1, 2));
  int B = T.append(at(1, 1, A));
  int C = T.append(at(4, 1, B));
  EXPECT_TRUE(T.happensBefore(A, B));
  EXPECT_TRUE(T.happensBefore(B, C));
  EXPECT_TRUE(T.happensBefore(A, C)); // transitivity
}

TEST(NetworkTrace, CrossSwitchViaPacketThenSwitchOrder) {
  // A packet carries the order from switch 1 to switch 4: an entry at
  // switch 4 logged after the packet's arrival is after everything that
  // preceded the packet at switch 1.
  NetworkTrace T;
  int Emit1 = T.append(at(1, 2));        // at s1
  int Arr4 = T.append(at(4, 1, Emit1));  // the packet reaches s4
  int Later4 = T.append(at(4, 2));       // an unrelated packet at s4
  EXPECT_TRUE(T.happensBefore(Emit1, Arr4));
  EXPECT_TRUE(T.happensBefore(Arr4, Later4));
  EXPECT_TRUE(T.happensBefore(Emit1, Later4));
}

TEST(NetworkTrace, PacketTracesLinearChain) {
  NetworkTrace T;
  int A = T.append(at(1, 2));
  int B = T.append(at(1, 1, A));
  auto Chains = T.packetTraces();
  ASSERT_EQ(Chains.size(), 1u);
  EXPECT_EQ(Chains[0], (std::vector<int>{A, B}));
}

TEST(NetworkTrace, PacketTracesMulticastTree) {
  NetworkTrace T;
  int Root = T.append(at(4, 2));
  int L = T.append(at(4, 1, Root));
  int R = T.append(at(4, 3, Root));
  int LL = T.append(at(1, 1, L));
  auto Chains = T.packetTraces();
  ASSERT_EQ(Chains.size(), 2u);
  EXPECT_EQ(Chains[0], (std::vector<int>{Root, L, LL}));
  EXPECT_EQ(Chains[1], (std::vector<int>{Root, R}));
}

TEST(NetworkTrace, SingleEntryIsItsOwnTrace) {
  NetworkTrace T;
  T.append(at(1, 2));
  auto Chains = T.packetTraces();
  ASSERT_EQ(Chains.size(), 1u);
  EXPECT_EQ(Chains[0].size(), 1u);
}

TEST(NetworkTrace, ClosureRebuildsAfterAppend) {
  NetworkTrace T;
  int A = T.append(at(1, 1));
  int B = T.append(at(1, 2));
  EXPECT_TRUE(T.happensBefore(A, B));
  int C = T.append(at(1, 3));
  EXPECT_TRUE(T.happensBefore(B, C)); // closure refreshed lazily
}
