//===- tests/consistency/CheckTest.cpp - Definition 2/6 checker tests -----===//
//
// Hand-built firewall traces exercising each clause of the definitions:
// single-configuration processing, "not too early", "not too late", and
// the Definition 6 existential over allowed sequences.
//
//===----------------------------------------------------------------------===//

#include "consistency/Check.h"

#include "apps/Programs.h"
#include "nes/Pipeline.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::consistency;
using eventnet::netkat::Packet;
using eventnet::netkat::makePacket;

namespace {

struct Fixture {
  apps::App A = apps::firewallApp();
  api::Result<nes::CompiledProgram> C;
  FieldId Dst = apps::ipDstField();

  Fixture() { C = nes::compileSource(A.Source, A.Topo); }

  Packet out(SwitchId Sw, PortId Pt) { // H1 -> H4 packet
    return makePacket({Sw, Pt}, {{Dst, 4}});
  }
  Packet in(SwitchId Sw, PortId Pt) { // H4 -> H1 packet
    return makePacket({Sw, Pt}, {{Dst, 1}});
  }

  /// Appends a full outbound delivery chain; returns the arrival index
  /// at 4:1 (the event occurrence).
  int appendOutbound(NetworkTrace &T) {
    int E0 = T.append({out(1, 2), -1, false});
    int E1 = T.append({out(1, 1), E0, false});
    int E2 = T.append({out(4, 1), E1, false});
    TraceEntry Del{out(4, 2), E2, true};
    T.append(Del);
    return E2;
  }

  /// Appends a delivered inbound chain (valid only in C1).
  void appendInboundDelivered(NetworkTrace &T) {
    int E0 = T.append({in(4, 2), -1, false});
    int E1 = T.append({in(4, 1), E0, false});
    int E2 = T.append({in(1, 1), E1, false});
    T.append({in(1, 2), E2, true});
  }

  /// Appends an inbound packet dropped at s4 (valid only in C0).
  void appendInboundDropped(NetworkTrace &T) {
    T.append({in(4, 2), -1, false});
  }
};

} // namespace

TEST(CheckNes, EmptyTraceIsCorrect) {
  Fixture F;
  NetworkTrace T;
  auto R = checkAgainstNes(T, F.A.Topo, *F.C->N);
  EXPECT_TRUE(R.Correct) << R.Reason;
}

TEST(CheckNes, QuiescentC0BehaviorIsCorrect) {
  Fixture F;
  NetworkTrace T;
  F.appendInboundDropped(T); // dropped by C0, no event ever
  auto R = checkAgainstNes(T, F.A.Topo, *F.C->N);
  EXPECT_TRUE(R.Correct) << R.Reason;
}

TEST(CheckNes, CanonicalFirewallRunIsCorrect) {
  Fixture F;
  NetworkTrace T;
  F.appendInboundDropped(T);  // before the event: dropped
  F.appendOutbound(T);        // triggers the event at 4:1
  F.appendInboundDelivered(T); // after: delivered
  auto R = checkAgainstNes(T, F.A.Topo, *F.C->N);
  EXPECT_TRUE(R.Correct) << R.Reason;
}

TEST(CheckNes, TooEarlyDetected) {
  Fixture F;
  NetworkTrace T;
  // Inbound delivered although no event has occurred: the only allowed
  // sequence covering no events requires Traces(g(∅)).
  F.appendInboundDelivered(T);
  auto R = checkAgainstNes(T, F.A.Topo, *F.C->N);
  EXPECT_FALSE(R.Correct);
}

TEST(CheckNes, TooLateDetected) {
  Fixture F;
  NetworkTrace T;
  F.appendOutbound(T);
  // This inbound packet enters at s4 *after* the event occurrence at the
  // same switch, so it must be processed by C1 — but it is dropped.
  F.appendInboundDropped(T);
  auto R = checkAgainstNes(T, F.A.Topo, *F.C->N);
  EXPECT_FALSE(R.Correct);
  EXPECT_NE(R.Reason.find("too late"), std::string::npos);
}

TEST(CheckNes, MixedConfigurationPacketDetected) {
  Fixture F;
  NetworkTrace T;
  F.appendOutbound(T);
  // An inbound packet forwarded by s4 (C1 behavior) but then dropped at
  // s1 (C0 behavior): not a complete trace of any single configuration.
  int E0 = T.append({F.in(4, 2), -1, false});
  T.append({F.in(4, 1), E0, false});
  auto R = checkAgainstNes(T, F.A.Topo, *F.C->N);
  EXPECT_FALSE(R.Correct);
  EXPECT_NE(R.Reason.find("single configuration"), std::string::npos);
}

TEST(CheckNes, ConcurrentInboundMayUseEitherConfig) {
  Fixture F;
  NetworkTrace T;
  // The inbound emission is logged before the event at s4, so it is not
  // "entirely after" the event: C0 processing (drop) is allowed.
  F.appendInboundDropped(T);
  F.appendOutbound(T);
  auto R = checkAgainstNes(T, F.A.Topo, *F.C->N);
  EXPECT_TRUE(R.Correct) << R.Reason;
}

TEST(CheckUpdate, ExplicitSequenceApi) {
  Fixture F;
  NetworkTrace T;
  F.appendOutbound(T);
  F.appendInboundDelivered(T);

  UpdateSequence U;
  U.Configs = {&F.C->N->configOf(0), &F.C->N->configOf(1)};
  U.EventIds = {0};
  auto R = checkUpdateSequence(T, F.A.Topo, U, F.C->N->events(), &*F.C->N);
  EXPECT_TRUE(R.Correct) << R.Reason;

  // The empty sequence fails: the trace contains a fresh enabled match.
  UpdateSequence Empty;
  Empty.Configs = {&F.C->N->configOf(0)};
  auto R2 =
      checkUpdateSequence(T, F.A.Topo, Empty, F.C->N->events(), &*F.C->N);
  EXPECT_FALSE(R2.Correct);
  EXPECT_NE(R2.Reason.find("freshly matches"), std::string::npos);
}

TEST(CheckUpdate, MissingEventOccurrenceFailsFO) {
  Fixture F;
  NetworkTrace T;
  F.appendInboundDropped(T); // no outbound packet: the event never fires

  UpdateSequence U;
  U.Configs = {&F.C->N->configOf(0), &F.C->N->configOf(1)};
  U.EventIds = {0};
  auto R = checkUpdateSequence(T, F.A.Topo, U, F.C->N->events(), &*F.C->N);
  EXPECT_FALSE(R.Correct);
  EXPECT_NE(R.Reason.find("FO does not exist"), std::string::npos);
}
