//===- tests/consistency/StreamCheckTest.cpp - streaming vs batch ---------===//
//
// The streaming Definition 6 checker's contract: on any trace the batch
// checker can hold, the streaming verdict agrees with checkAgainstNes —
// ok ⇔ Correct, violated ⇒ !Correct, and inconclusive only when a window
// or ordering cut genuinely removed information. Property-tested over
// apps × seeds × shards, with and without fault ledgers, plus window
// boundary and out-of-ticket-order regression cases.
//
//===----------------------------------------------------------------------===//

#include "consistency/StreamCheck.h"

#include "api/Api.h"
#include "api/StreamCollect.h"
#include "apps/Programs.h"
#include "consistency/Check.h"
#include "engine/Engine.h"
#include "engine/TrafficGen.h"
#include "faults/FaultPlan.h"
#include "faults/Injector.h"

#include <gtest/gtest.h>

using namespace eventnet;
using namespace eventnet::engine;
using consistency::StreamOptions;
using consistency::StreamResult;
using consistency::StreamVerdict;

namespace {

struct Scenario {
  apps::App A;
  api::Result<api::Compilation> C;
  Workload W;
};

api::Result<api::Compilation> compileApp(const apps::App &A) {
  api::CompileOptions O;
  if (A.Source.empty())
    O.programAst(A.Ast);
  else
    O.programSource(A.Source);
  return api::compile(std::move(O.topology(A.Topo)));
}

Scenario firewallScenario(uint64_t Seed) {
  Scenario S{apps::firewallApp(), {}, {}};
  S.C = compileApp(S.A);
  TrafficGen G(S.A.Topo, Seed);
  S.W = G.ping(topo::HostH4, topo::HostH1);
  for (int I = 0; I != 12; ++I)
    S.W += G.ping(topo::HostH1, topo::HostH4);
  S.W += G.ping(topo::HostH4, topo::HostH1);
  return S;
}

Scenario authScenario(uint64_t Seed) {
  Scenario S{apps::authenticationApp(), {}, {}};
  S.C = compileApp(S.A);
  TrafficGen G(S.A.Topo, Seed);
  for (HostId To : {topo::HostH3, topo::HostH1, topo::HostH3, topo::HostH2,
                    topo::HostH3})
    S.W += G.ping(topo::HostH4, To);
  return S;
}

Scenario idsScenario(uint64_t Seed) {
  Scenario S{apps::idsApp(), {}, {}};
  S.C = compileApp(S.A);
  TrafficGen G(S.A.Topo, Seed);
  for (HostId To : {topo::HostH3, topo::HostH1, topo::HostH2, topo::HostH3,
                    topo::HostH3})
    S.W += G.ping(topo::HostH4, To);
  return S;
}

Scenario bwcapScenario(uint64_t Seed) {
  Scenario S{apps::bandwidthCapApp(5), {}, {}};
  S.C = compileApp(S.A);
  TrafficGen G(S.A.Topo, Seed);
  for (int I = 0; I != 9; ++I)
    S.W += G.ping(topo::HostH1, topo::HostH4);
  return S;
}

Scenario ringScenario(uint64_t Seed) {
  Scenario S{apps::ringApp(8, 4), {}, {}};
  S.C = compileApp(S.A);
  TrafficGen G(S.A.Topo, Seed);
  S.W = G.pings(2, 3);
  S.W += G.probe(topo::HostH1, topo::HostH2); // the update trigger
  S.W += G.pings(2, 3);
  return S;
}

using Maker = Scenario (*)(uint64_t);
constexpr Maker AllMakers[] = {firewallScenario, authScenario, idsScenario,
                               bwcapScenario, ringScenario};

/// Runs the engine and returns trace + ledger-derived fault context.
struct RunOut {
  consistency::NetworkTrace Trace;
  consistency::FaultContext Ctx;
  bool HasCtx = false;
};

RunOut runEngine(Scenario &S, unsigned Shards,
                 faults::Injector *Inj = nullptr,
                 OverloadPolicy Policy = OverloadPolicy::Block) {
  EngineConfig Cfg;
  Cfg.NumShards = Shards;
  Cfg.Overload = Policy;
  Cfg.Faults = Inj;
  Engine E(S.C->structure(), S.A.Topo, Cfg);
  E.run(S.W);
  RunOut R;
  R.Trace = E.trace();
  faults::FaultLedger L = E.takeFaultLedger();
  R.Ctx.ExcusedEntries = std::move(L.ExcusedEntries);
  R.Ctx.DupEntries = std::move(L.DupEntries);
  R.HasCtx = !R.Ctx.empty();
  return R;
}

/// The differential property itself: streaming must be conclusive on a
/// trace the batch checker holds (default window dwarfs these traces),
/// and the verdicts must coincide.
void expectAgreement(const RunOut &R, const Scenario &S,
                     const std::string &Tag) {
  const consistency::FaultContext *Ctx = R.HasCtx ? &R.Ctx : nullptr;
  auto Batch = consistency::checkAgainstNes(R.Trace, S.A.Topo,
                                            S.C->structure(), Ctx);
  StreamResult Stream = consistency::streamCheckTrace(
      R.Trace, S.A.Topo, S.C->structure(), Ctx);
  EXPECT_NE(Stream.Verdict, StreamVerdict::Inconclusive)
      << Tag << ": inconclusive (" << Stream.Reason
      << ") on a fully-held trace";
  EXPECT_EQ(Stream.ok(), Batch.Correct)
      << Tag << ": stream=" << streamVerdictName(Stream.Verdict) << " ("
      << Stream.Reason << ") batch=" << (Batch.Correct ? "ok" : "fail")
      << " (" << Batch.Reason << ")";
  EXPECT_EQ(Stream.Stats.EntriesChecked, R.Trace.size()) << Tag;
}

} // namespace

class StreamDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamDifferential, AgreesWithBatchAllAppsAllShardCounts) {
  for (Maker Make : AllMakers) {
    for (unsigned Shards : {1u, 2u, 4u}) {
      Scenario S = Make(GetParam());
      ASSERT_TRUE(S.C.ok()) << S.A.Name << ": " << S.C.status().str();
      RunOut R = runEngine(S, Shards);
      expectAgreement(R, S,
                      S.A.Name + " shards=" + std::to_string(Shards));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamDifferential,
                         ::testing::Values(1, 7, 13, 42));

namespace {

faults::FaultPlan namedPlan(const std::string &Name) {
  faults::FaultPlan P;
  P.Seed = 19;
  if (Name == "drop")
    P.Links.push_back({-1, -1, 0.1, 0, 0, 0, -1});
  else if (Name == "dup")
    P.Links.push_back({-1, -1, 0, 0.1, 0, 0, -1});
  else if (Name == "delay")
    P.Links.push_back({-1, -1, 0, 0, 0.15, 0, -1});
  else { // "mixed"
    P.Links.push_back({-1, -1, 0.05, 0.05, 0.1, 0, -1});
    P.Stalls.push_back({-1, 8, 100});
    P.QueueCapacityClamp = 4;
    P.CtrlStormRepeat = 2;
  }
  return P;
}

} // namespace

/// With fault ledgers: excused prefixes and pruned dup subtrees must be
/// honored identically by both checkers.
class StreamFaultDifferential
    : public ::testing::TestWithParam<
          std::tuple<const char *, OverloadPolicy>> {};

TEST_P(StreamFaultDifferential, AgreesWithBatchUnderLedgeredFaults) {
  auto [PlanName, Policy] = GetParam();
  faults::FaultPlan Plan = namedPlan(PlanName);
  faults::Injector Inj(Plan);
  for (Maker Make : {firewallScenario, ringScenario}) {
    Scenario S = Make(23);
    ASSERT_TRUE(S.C.ok()) << S.A.Name << ": " << S.C.status().str();
    RunOut R = runEngine(S, 3, &Inj, Policy);
    expectAgreement(R, S,
                    S.A.Name + " plan=" + PlanName + " policy=" +
                        overloadPolicyName(Policy));
  }
}

INSTANTIATE_TEST_SUITE_P(
    PlansByPolicy, StreamFaultDifferential,
    ::testing::Combine(::testing::Values("drop", "dup", "delay", "mixed"),
                       ::testing::Values(OverloadPolicy::Block,
                                         OverloadPolicy::ShedOldest)),
    [](const ::testing::TestParamInfo<
        std::tuple<const char *, OverloadPolicy>> &I) {
      std::string N = std::string(std::get<0>(I.param)) + "_" +
                      overloadPolicyName(std::get<1>(I.param));
      for (char &C : N)
        if (C == '-')
          C = '_';
      return N;
    });

/// Agreement on the *violated* side: truncating a chain without an
/// excusal must fail both checkers the same way.
TEST(StreamCheck, TruncatedChainViolatesLikeBatch) {
  Scenario S = firewallScenario(3);
  ASSERT_TRUE(S.C.ok()) << S.C.status().str();
  RunOut R = runEngine(S, 1);
  ASSERT_GT(R.Trace.size(), 4u);

  // Drop the last entry of some chain: rebuild the trace without the
  // final delivery entry (and anything parented on it).
  consistency::NetworkTrace Cut;
  int LastDelivery = -1;
  for (size_t I = 0; I != R.Trace.size(); ++I)
    if (R.Trace.entries()[I].IsDelivery)
      LastDelivery = (int)I;
  ASSERT_GE(LastDelivery, 0);
  for (size_t I = 0; I != R.Trace.size(); ++I) {
    if ((int)I == LastDelivery)
      continue;
    consistency::TraceEntry E = R.Trace.entries()[I];
    ASSERT_NE(E.Parent, LastDelivery) << "delivery had a child";
    if (E.Parent > LastDelivery)
      --E.Parent; // reindex past the removed entry
    Cut.append(std::move(E));
  }

  auto Batch =
      consistency::checkAgainstNes(Cut, S.A.Topo, S.C->structure());
  StreamResult Stream =
      consistency::streamCheckTrace(Cut, S.A.Topo, S.C->structure());
  EXPECT_FALSE(Batch.Correct);
  EXPECT_TRUE(Stream.violated())
      << streamVerdictName(Stream.Verdict) << ": " << Stream.Reason;
}

/// Window-eviction boundary: a window far smaller than the live set must
/// degrade to inconclusive(window_exceeded) — never to violated, and
/// never to a silent pass.
TEST(StreamCheck, TinyWindowIsInconclusiveNeverViolated) {
  Scenario S = ringScenario(5);
  ASSERT_TRUE(S.C.ok()) << S.C.status().str();
  RunOut R = runEngine(S, 2);
  ASSERT_GT(R.Trace.size(), 32u);

  StreamOptions O;
  O.Window = 4;
  StreamResult Res = consistency::streamCheckTrace(
      R.Trace, S.A.Topo, S.C->structure(),
      R.HasCtx ? &R.Ctx : nullptr, O);
  EXPECT_EQ(Res.Verdict, StreamVerdict::Inconclusive)
      << streamVerdictName(Res.Verdict) << ": " << Res.Reason;
  EXPECT_NE(Res.Reason.find("window_exceeded"), std::string::npos)
      << Res.Reason;
  EXPECT_LE(Res.Stats.PeakWindow, 4u + 1u); // cap enforced per commit
}

/// The boundary just above: a window that fits the whole trace behaves
/// exactly like the default.
TEST(StreamCheck, ExactFitWindowStaysConclusive) {
  Scenario S = firewallScenario(11);
  ASSERT_TRUE(S.C.ok()) << S.C.status().str();
  RunOut R = runEngine(S, 1);

  StreamOptions O;
  O.Window = R.Trace.size(); // never exceeded: nothing is force-cut
  StreamResult Res = consistency::streamCheckTrace(
      R.Trace, S.A.Topo, S.C->structure(),
      R.HasCtx ? &R.Ctx : nullptr, O);
  EXPECT_TRUE(Res.ok()) << streamVerdictName(Res.Verdict) << ": "
                        << Res.Reason;
  EXPECT_GT(Res.Stats.ChainsRetired, 0u);
}

/// A tiny quiet horizon cuts in-flight chains: inconclusive, never a
/// spurious violation on a healthy trace.
TEST(StreamCheck, TinyQuietHorizonNeverViolatesHealthyTrace) {
  Scenario S = ringScenario(17);
  ASSERT_TRUE(S.C.ok()) << S.C.status().str();
  RunOut R = runEngine(S, 4);

  StreamOptions O;
  O.QuietHorizon = 2;
  StreamResult Res = consistency::streamCheckTrace(
      R.Trace, S.A.Topo, S.C->structure(),
      R.HasCtx ? &R.Ctx : nullptr, O);
  EXPECT_FALSE(Res.violated()) << Res.Reason;
}

/// Out-of-ticket-order regression: an entry surfacing *behind* the
/// committed frontier (a watermark lie) degrades the verdict instead of
/// corrupting checker state or passing silently.
TEST(StreamCheck, OutOfOrderCommitIsInconclusive) {
  Scenario S = firewallScenario(29);
  ASSERT_TRUE(S.C.ok()) << S.C.status().str();
  RunOut R = runEngine(S, 1);
  const auto &Es = R.Trace.entries();
  ASSERT_GT(Es.size(), 6u);

  consistency::StreamChecker C(S.C->structure(), S.A.Topo);
  // Feed the whole trace, advance past it, then deliver a stale ticket
  // behind the committed frontier: a watermark lie, not a trace defect.
  for (size_t I = 0; I != Es.size(); ++I)
    C.feedEntry(I, Es[I].Parent, Es[I].Lp, Es[I].IsDelivery);
  C.advance(Es.size() - 1);
  C.feedEntry(3, Es[3].Parent, Es[3].Lp, Es[3].IsDelivery);
  StreamResult Res = C.finish();
  EXPECT_EQ(Res.Verdict, StreamVerdict::Inconclusive)
      << streamVerdictName(Res.Verdict) << ": " << Res.Reason;
  EXPECT_NE(Res.Reason.find("out_of_order"), std::string::npos)
      << streamVerdictName(Res.Verdict) << ": " << Res.Reason;
}

/// Embedder-reported causes (the trace ring dropped events) force the
/// verdict off "ok" even when everything the checker saw was clean.
TEST(StreamCheck, NotedCauseDegradesCleanRun) {
  Scenario S = authScenario(7);
  ASSERT_TRUE(S.C.ok()) << S.C.status().str();
  RunOut R = runEngine(S, 1);
  const auto &Es = R.Trace.entries();

  consistency::StreamChecker C(S.C->structure(), S.A.Topo);
  for (size_t I = 0; I != Es.size(); ++I)
    C.feedEntry(I, Es[I].Parent, Es[I].Lp, Es[I].IsDelivery);
  C.noteCause("trace_dropped");
  StreamResult Res = C.finish();
  EXPECT_EQ(Res.Verdict, StreamVerdict::Inconclusive);
  EXPECT_NE(Res.Reason.find("trace_dropped"), std::string::npos)
      << Res.Reason;
}

/// Peak accounting is populated and bounded by the window: the soak
/// report's memory attestation depends on these counters being real.
TEST(StreamCheck, PeakAccountingTracksWindow) {
  Scenario S = ringScenario(13);
  ASSERT_TRUE(S.C.ok()) << S.C.status().str();
  RunOut R = runEngine(S, 2);

  StreamOptions O;
  O.Window = 64;
  StreamResult Res = consistency::streamCheckTrace(
      R.Trace, S.A.Topo, S.C->structure(),
      R.HasCtx ? &R.Ctx : nullptr, O);
  EXPECT_GT(Res.Stats.PeakWindow, 0u);
  EXPECT_LE(Res.Stats.PeakWindow, 65u);
  EXPECT_GT(Res.Stats.PeakResidentBytes, 0u);
  EXPECT_GT(Res.Stats.EntriesChecked, 0u);
  EXPECT_EQ(Res.Stats.EntriesIngested, R.Trace.size());
}

//===----------------------------------------------------------------------===//
// Live collector path (api::run with StreamingCheck)
//===----------------------------------------------------------------------===//

/// End-to-end through the façade: the engine's per-shard stream sink,
/// the collector thread's watermark protocol, and the checker — in
/// differential mode, so the online verdict is compared against the
/// batch replay of the very same run.
TEST(StreamCheckApi, LiveCollectorDifferentialAgrees) {
  for (uint64_t Seed : {1ull, 9ull, 23ull}) {
    Scenario S = ringScenario(Seed); // for the compilation only
    ASSERT_TRUE(S.C.ok()) << S.C.status().str();
    api::RunOptions O;
    O.seed(Seed)
        .shards(4)
        .workload("churn")
        .phases(4)
        .pingsPerPhase(16)
        .streamingCheck(true)
        .checkDifferential(true);
    auto R = api::run(*S.C, "engine", O);
    ASSERT_TRUE(R.ok()) << R.status().str();
    EXPECT_TRUE(R->StreamCheck.Enabled);
    EXPECT_TRUE(R->Checked);
    EXPECT_TRUE(R->StreamCheck.DifferentialRan);
    EXPECT_FALSE(R->StreamCheck.Result.violated())
        << "seed " << Seed << ": " << R->StreamCheck.Result.Reason;
    EXPECT_TRUE(R->StreamCheck.DifferentialMatched)
        << "seed " << Seed << ": stream="
        << streamVerdictName(R->StreamCheck.Result.Verdict) << " ("
        << R->StreamCheck.Result.Reason << ") batch="
        << (R->Consistency.Correct ? "ok" : "fail");
    // Every logged entry reached the checker through the stream.
    EXPECT_EQ(R->StreamCheck.Result.Stats.EntriesChecked, R->Trace.size())
        << "seed " << Seed;
  }
}

/// Streaming-only mode is the whole point of the checker: no merged
/// trace is retained, the batch replay is skipped (an empty trace would
/// pass vacuously), and the online verdict stands alone.
TEST(StreamCheckApi, StreamingOnlyRetainsNoTrace) {
  Scenario S = firewallScenario(21);
  ASSERT_TRUE(S.C.ok()) << S.C.status().str();
  api::RunOptions O;
  O.seed(21).shards(2).streamingCheck(true);
  auto R = api::run(*S.C, "engine", O);
  ASSERT_TRUE(R.ok()) << R.status().str();
  EXPECT_TRUE(R->StreamCheck.Enabled);
  EXPECT_FALSE(R->Checked);
  EXPECT_FALSE(R->StreamCheck.DifferentialRan);
  EXPECT_EQ(R->Trace.size(), 0u);
  EXPECT_FALSE(R->StreamCheck.Result.violated())
      << R->StreamCheck.Result.Reason;
  EXPECT_GT(R->StreamCheck.Result.Stats.EntriesChecked, 0u);
  EXPECT_GT(R->StreamCheck.Result.Stats.PeakResidentBytes, 0u);
}

/// A fault plan's ledger must flow through the stream (excusals and dup
/// markers ride the per-shard buffers, not the merged-trace remap).
TEST(StreamCheckApi, LiveCollectorAgreesUnderFaults) {
  Scenario S = firewallScenario(23);
  ASSERT_TRUE(S.C.ok()) << S.C.status().str();
  auto Plan = std::make_shared<faults::FaultPlan>(namedPlan("mixed"));
  api::RunOptions O;
  O.seed(23)
      .shards(2)
      .faults(Plan)
      .streamingCheck(true)
      .checkDifferential(true);
  auto R = api::run(*S.C, "engine", O);
  ASSERT_TRUE(R.ok()) << R.status().str();
  EXPECT_TRUE(R->StreamCheck.DifferentialRan);
  EXPECT_FALSE(R->StreamCheck.Result.violated())
      << R->StreamCheck.Result.Reason;
  EXPECT_TRUE(R->StreamCheck.DifferentialMatched)
      << "stream=" << streamVerdictName(R->StreamCheck.Result.Verdict)
      << " (" << R->StreamCheck.Result.Reason << ") batch="
      << (R->Consistency.Correct ? "ok" : "fail");
}

/// A collector that lags the data path must cost counted sheds and a
/// stream_backlog inconclusive — never a blocked worker, never O(horizon)
/// stream memory, and never a violation fabricated from the chains the
/// gap truncated. The collector is attached only after the run so every
/// item beyond StreamBufCap is deterministically shed.
TEST(StreamCheckApi, LaggingCollectorShedsAndDegrades) {
  Scenario S = firewallScenario(31);
  ASSERT_TRUE(S.C.ok()) << S.C.status().str();
  EngineConfig Cfg;
  Cfg.NumShards = 2;
  Cfg.RecordTrace = false;
  Cfg.StreamTrace = true;
  Cfg.StreamBufCap = 64; // far below the workload's stream volume
  Engine E(S.C->structure(), S.A.Topo, Cfg);
  TrafficGen G(S.A.Topo, 31);
  Workload W = G.bulk(topo::HostH1, topo::HostH4, 2048, 512);
  E.run(W);
  ASSERT_GT(E.streamLagShed(), 0u)
      << "workload too small to overflow a 64-entry hand-off";
  Stats St = E.stats();
  api::detail::StreamCollector Col(E, S.C->structure(), S.A.Topo, {});
  StreamResult R = Col.finalize(St.TraceDropped);
  EXPECT_GT(Col.lagShed(), 0u);
  EXPECT_FALSE(R.violated()) << R.Reason;
  EXPECT_EQ(R.Verdict, StreamVerdict::Inconclusive)
      << streamVerdictName(R.Verdict);
  EXPECT_NE(R.Reason.find("stream_backlog"), std::string::npos) << R.Reason;
}
