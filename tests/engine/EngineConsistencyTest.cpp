//===- tests/engine/EngineConsistencyTest.cpp - Definition 6, concurrent --===//
//
// The theorem-level check: traces recorded by the sharded concurrent
// engine replay through consistency::checkAgainstNes — the same
// Definition 6 oracle the sequential runtime::Machine and the simulator
// are tested against — across applications, seeds, and shard counts.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "api/Api.h"
#include "apps/Programs.h"
#include "consistency/Check.h"
#include "engine/TrafficGen.h"
#include "faults/FaultPlan.h"
#include "faults/Injector.h"

#include <gtest/gtest.h>

#include <map>

using namespace eventnet;
using namespace eventnet::engine;

namespace {

struct Scenario {
  apps::App A;
  api::Result<api::Compilation> C;
  Workload W;
};

/// Compiles through the api façade, exercising the same surface the CLI
/// and embedding programs use.
api::Result<api::Compilation> compileApp(const apps::App &A) {
  api::CompileOptions O;
  if (A.Source.empty())
    O.programAst(A.Ast);
  else
    O.programSource(A.Source);
  return api::compile(std::move(O.topology(A.Topo)));
}

Scenario firewallScenario(uint64_t Seed) {
  Scenario S{apps::firewallApp(), {}, {}};
  S.C = compileApp(S.A);
  TrafficGen G(S.A.Topo, Seed);
  S.W = G.ping(topo::HostH4, topo::HostH1);
  for (int I = 0; I != 12; ++I)
    S.W += G.ping(topo::HostH1, topo::HostH4);
  S.W += G.ping(topo::HostH4, topo::HostH1);
  return S;
}

Scenario authScenario(uint64_t Seed) {
  Scenario S{apps::authenticationApp(), {}, {}};
  S.C = compileApp(S.A);
  TrafficGen G(S.A.Topo, Seed);
  for (HostId To : {topo::HostH3, topo::HostH1, topo::HostH3, topo::HostH2,
                    topo::HostH3})
    S.W += G.ping(topo::HostH4, To);
  return S;
}

Scenario idsScenario(uint64_t Seed) {
  Scenario S{apps::idsApp(), {}, {}};
  S.C = compileApp(S.A);
  TrafficGen G(S.A.Topo, Seed);
  for (HostId To : {topo::HostH3, topo::HostH1, topo::HostH2, topo::HostH3,
                    topo::HostH3})
    S.W += G.ping(topo::HostH4, To);
  return S;
}

Scenario bwcapScenario(uint64_t Seed) {
  Scenario S{apps::bandwidthCapApp(5), {}, {}};
  S.C = compileApp(S.A);
  TrafficGen G(S.A.Topo, Seed);
  for (int I = 0; I != 9; ++I)
    S.W += G.ping(topo::HostH1, topo::HostH4);
  return S;
}

Scenario ringScenario(uint64_t Seed) {
  Scenario S{apps::ringApp(8, 4), {}, {}};
  S.C = compileApp(S.A);
  TrafficGen G(S.A.Topo, Seed);
  S.W = G.pings(2, 3);
  S.W += G.probe(topo::HostH1, topo::HostH2); // the update trigger
  S.W += G.pings(2, 3);
  return S;
}

consistency::CheckResult runAndCheck(Scenario &S, unsigned Shards,
                                     bool Classifier,
                                     PartitionStrategy Partition,
                                     bool Broadcast = false) {
  EngineConfig Cfg;
  Cfg.NumShards = Shards;
  Cfg.CtrlBroadcast = Broadcast;
  Cfg.UseClassifier = Classifier;
  // The classifier rows also take the batched loop shape; the oracle
  // rows re-verify the PR 1 message-at-a-time shape.
  Cfg.BatchSize = Classifier ? 32 : 1;
  Cfg.Partition = Partition;
  Engine E(S.C->structure(), S.A.Topo, Cfg);
  E.run(S.W);
  EXPECT_GT(E.trace().size(), 0u);
  return consistency::checkAgainstNes(E.trace(), S.A.Topo,
                                      S.C->structure());
}

} // namespace

/// (seed, classifier on/off, partition strategy): the Definition 6
/// theorem must hold on the classifier fast path exactly as on the
/// FDD-walk oracle path, under every shard placement — the tag/digest
/// protocol cannot care *where* a switch's owner thread runs.
class EngineConsistency
    : public ::testing::TestWithParam<
          std::tuple<uint64_t, bool, PartitionStrategy>> {
protected:
  uint64_t seed() const { return std::get<0>(GetParam()); }
  bool classifier() const { return std::get<1>(GetParam()); }
  PartitionStrategy partition() const { return std::get<2>(GetParam()); }
};

TEST_P(EngineConsistency, AllAppsAllShardCounts) {
  using Maker = Scenario (*)(uint64_t);
  for (Maker Make : {firewallScenario, authScenario, idsScenario,
                     bwcapScenario, ringScenario}) {
    for (unsigned Shards : {1u, 2u, 4u}) {
      Scenario S = Make(seed());
      ASSERT_TRUE(S.C.ok()) << S.A.Name << ": " << S.C.status().str();
      auto R = runAndCheck(S, Shards, classifier(), partition());
      EXPECT_TRUE(R.Correct)
          << S.A.Name << " shards=" << Shards
          << " classifier=" << classifier()
          << " partition=" << partitionStrategyName(partition()) << ": "
          << R.Reason;
    }
  }
}

TEST_P(EngineConsistency, FirewallWithControllerBroadcast) {
  Scenario S = firewallScenario(seed());
  ASSERT_TRUE(S.C.ok()) << S.C.status().str();
  auto R = runAndCheck(S, 4, classifier(), partition(),
                       /*Broadcast=*/true);
  EXPECT_TRUE(R.Correct) << R.Reason;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByPath, EngineConsistency,
    ::testing::Combine(::testing::Values(1, 7, 13, 42), ::testing::Bool(),
                       ::testing::Values(PartitionStrategy::Modulo,
                                         PartitionStrategy::Contiguous,
                                         PartitionStrategy::Refined)));

TEST(EngineConsistency, StaticRoutingQuiescent) {
  // A zero-event NES: every packet trace must be a trace of g(∅); also
  // exercises the fat-tree builder end to end.
  topo::Topology Topo = topo::fatTreeTopology(4);
  nes::Nes N = apps::staticRoutingNes(Topo);

  EngineConfig Cfg;
  Cfg.NumShards = 4;
  Engine E(N, Topo, Cfg);
  TrafficGen G(Topo, 5);
  E.run(G.pings(3, 8));

  Stats S = E.stats();
  EXPECT_EQ(S.EventsDetected, 0u);
  EXPECT_EQ(S.ConfigTransitions, 0u);
  EXPECT_GT(S.PacketsDelivered, 0u);
  // Pings succeed: requests and replies (both counted as injections)
  // are each delivered exactly once.
  EXPECT_EQ(S.PacketsDelivered, S.PacketsInjected);

  auto R = consistency::checkAgainstNes(E.trace(), Topo, N);
  EXPECT_TRUE(R.Correct) << R.Reason;
}

class EngineBackpressure : public ::testing::TestWithParam<unsigned> {};

TEST_P(EngineBackpressure, TinyQueuesNeverDeadlockOrDrop) {
  // Queues far smaller than a phase keep the rings permanently full:
  // every producer exercises the overflow path (the ring is only the
  // fast path; producers never block, so no cycle of full queues can
  // deadlock), and nothing may be lost or reordered into inconsistency.
  apps::App A = apps::ringApp(6, 3);
  api::Result<api::Compilation> C = compileApp(A);
  ASSERT_TRUE(C.ok()) << C.status().str();

  EngineConfig Cfg;
  Cfg.NumShards = GetParam();
  Cfg.QueueCapacity = 2;
  Engine E(C->structure(), A.Topo, Cfg);
  TrafficGen G(A.Topo, 21);
  Workload W = G.bulk(topo::HostH1, topo::HostH2, 150, 75);
  W += G.probe(topo::HostH1, topo::HostH2); // transition under pressure
  W += G.bulk(topo::HostH1, topo::HostH2, 150, 75);
  E.run(W);

  Stats S = E.stats();
  EXPECT_EQ(S.PacketsInjected, 301u);
  EXPECT_EQ(S.PacketsDelivered, 301u); // bulk data plus the probe

  auto R =
      consistency::checkAgainstNes(E.trace(), A.Topo, C->structure());
  EXPECT_TRUE(R.Correct) << R.Reason;
}

INSTANTIATE_TEST_SUITE_P(Shards, EngineBackpressure,
                         ::testing::Values(1u, 3u));

namespace {

/// Named fault plans for the Definition 6 sweep below.
faults::FaultPlan namedPlan(const std::string &Name) {
  faults::FaultPlan P;
  P.Seed = 19;
  if (Name == "drop")
    P.Links.push_back({-1, -1, 0.1, 0, 0, 0, -1});
  else if (Name == "dup")
    P.Links.push_back({-1, -1, 0, 0.1, 0, 0, -1});
  else if (Name == "delay")
    P.Links.push_back({-1, -1, 0, 0, 0.15, 0, -1});
  else { // "mixed": everything at once plus overload pressure
    P.Links.push_back({-1, -1, 0.05, 0.05, 0.1, 0, -1});
    P.Stalls.push_back({-1, 8, 100});
    P.QueueCapacityClamp = 4;
    P.CtrlStormRepeat = 2;
  }
  return P;
}

} // namespace

/// The PR's acceptance sweep: Definition 6 must hold on the surviving
/// trace with silent_loss == 0 for every (fault plan, overload policy)
/// pair — injected damage is excused via the ledger, and the overload
/// machinery never loses a packet without a ticket.
class EngineFaultConsistency
    : public ::testing::TestWithParam<
          std::tuple<const char *, OverloadPolicy>> {};

TEST_P(EngineFaultConsistency, DefinitionSixHoldsWithZeroSilentLoss) {
  auto [PlanName, Policy] = GetParam();
  faults::FaultPlan Plan = namedPlan(PlanName);
  faults::Injector Inj(Plan);

  for (auto Make : {firewallScenario, ringScenario}) {
    Scenario S = Make(23);
    ASSERT_TRUE(S.C.ok()) << S.A.Name << ": " << S.C.status().str();

    EngineConfig Cfg;
    Cfg.NumShards = 3;
    Cfg.Overload = Policy;
    Cfg.Faults = &Inj;
    Engine E(S.C->structure(), S.A.Topo, Cfg);
    E.run(S.W);

    // Exact conservation: dup-descended outcomes discounted, every
    // remaining injection delivered or drop-ticketed.
    Stats St = E.stats();
    uint64_t EffDelivered = St.PacketsDelivered - St.DupDelivered;
    uint64_t EffDropped = St.PacketsDropped - St.DupDropped;
    EXPECT_EQ(EffDelivered + EffDropped, St.PacketsInjected)
        << S.A.Name << " plan=" << PlanName << " policy="
        << overloadPolicyName(Policy) << ": silent loss";

    faults::FaultLedger L = E.takeFaultLedger();
    consistency::FaultContext Ctx;
    Ctx.ExcusedEntries = std::move(L.ExcusedEntries);
    Ctx.DupEntries = std::move(L.DupEntries);
    auto R = consistency::checkAgainstNes(E.trace(), S.A.Topo,
                                          S.C->structure(), &Ctx);
    EXPECT_TRUE(R.Correct)
        << S.A.Name << " plan=" << PlanName
        << " policy=" << overloadPolicyName(Policy) << ": " << R.Reason;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PlansByPolicy, EngineFaultConsistency,
    ::testing::Combine(::testing::Values("drop", "dup", "delay", "mixed"),
                       ::testing::Values(OverloadPolicy::Block,
                                         OverloadPolicy::ShedOldest,
                                         OverloadPolicy::ShedNewest)),
    [](const ::testing::TestParamInfo<
        std::tuple<const char *, OverloadPolicy>> &I) {
      std::string N = std::string(std::get<0>(I.param)) + "_" +
                      overloadPolicyName(std::get<1>(I.param));
      for (char &C : N)
        if (C == '-')
          C = '_';
      return N;
    });

/// The event-storm sweep: the churn workload (distinct-flow data storm
/// with probe triggers scattered through it, so transitions race
/// sustained traffic) must hold Definition 6 across both update
/// pipelines, shard counts, partition strategies, and overload
/// policies. The queues are kept tiny so the shed policies genuinely
/// retire chains under plain pressure — no fault plan is armed, which
/// is the point: shed tickets must be ledgered and handed to the
/// checker as excusal context even without one.
class EngineStormConsistency
    : public ::testing::TestWithParam<
          std::tuple<bool, unsigned, PartitionStrategy, OverloadPolicy>> {
};

TEST_P(EngineStormConsistency, ChurnStormHoldsDefinitionSix) {
  auto [FastUpdates, Shards, Partition, Policy] = GetParam();
  apps::App A = apps::ringApp(8, 4);
  api::Result<api::Compilation> C = compileApp(A);
  ASSERT_TRUE(C.ok()) << C.status().str();

  EngineConfig Cfg;
  Cfg.NumShards = Shards;
  Cfg.Partition = Partition;
  Cfg.Overload = Policy;
  Cfg.FastUpdates = FastUpdates;
  Cfg.QueueCapacity = 8; // keep the storm pressing on the policy
  Engine E(C->structure(), A.Topo, Cfg);
  TrafficGen G(A.Topo, 31);
  E.run(G.churn(3, 40, 4));

  // Exact conservation: a shed is an accounted drop, never silent loss.
  Stats St = E.stats();
  EXPECT_EQ(St.PacketsDelivered + St.PacketsDropped, St.PacketsInjected)
      << "fast=" << FastUpdates << " shards=" << Shards
      << " policy=" << overloadPolicyName(Policy) << ": silent loss";

  faults::FaultLedger L = E.takeFaultLedger();
  consistency::FaultContext Ctx;
  Ctx.ExcusedEntries = std::move(L.ExcusedEntries);
  Ctx.DupEntries = std::move(L.DupEntries);
  bool HasCtx = !Ctx.ExcusedEntries.empty() || !Ctx.DupEntries.empty();
  auto R = consistency::checkAgainstNes(E.trace(), A.Topo,
                                        C->structure(),
                                        HasCtx ? &Ctx : nullptr);
  EXPECT_TRUE(R.Correct)
      << "fast=" << FastUpdates << " shards=" << Shards
      << " partition=" << partitionStrategyName(Partition)
      << " policy=" << overloadPolicyName(Policy) << ": " << R.Reason;
}

INSTANTIATE_TEST_SUITE_P(
    PipelinesByPressure, EngineStormConsistency,
    ::testing::Combine(::testing::Bool(), ::testing::Values(1u, 3u),
                       ::testing::Values(PartitionStrategy::Modulo,
                                         PartitionStrategy::Refined),
                       ::testing::Values(OverloadPolicy::Block,
                                         OverloadPolicy::ShedOldest,
                                         OverloadPolicy::ShedNewest)),
    [](const ::testing::TestParamInfo<
        std::tuple<bool, unsigned, PartitionStrategy, OverloadPolicy>>
           &I) {
      std::string N =
          std::string(std::get<0>(I.param) ? "fast" : "legacy") + "_s" +
          std::to_string(std::get<1>(I.param)) + "_" +
          partitionStrategyName(std::get<2>(I.param)) + "_" +
          overloadPolicyName(std::get<3>(I.param));
      for (char &C : N)
        if (C == '-')
          C = '_';
      return N;
    });

TEST(EngineUpdatePipeline, FastAndControllerPathsConvergeToSameViews) {
  // The same workload through the fast pipeline (shard-local fan-out +
  // priority-lane deltas) and the historical controller pipeline
  // (full-bitset CtrlMerge broadcast) must leave every switch in the
  // *identical* published state: same tag, same register, and — because
  // the ring fires exactly one event, so each switch transitions
  // exactly once — the same view version. Independent per-switch
  // publication changes when registers advance, never what they
  // converge to.
  apps::App A = apps::ringApp(8, 4);
  api::Result<api::Compilation> C = compileApp(A);
  ASSERT_TRUE(C.ok()) << C.status().str();

  auto finalViews = [&](bool FastUpdates) {
    EngineConfig Cfg;
    Cfg.NumShards = 3;
    Cfg.FastUpdates = FastUpdates;
    Cfg.CtrlBroadcast = true; // both pipelines must reach every switch
    Engine E(C->structure(), A.Topo, Cfg);
    TrafficGen G(A.Topo, 11);
    Workload W = G.pings(1, 4);
    W += G.probe(topo::HostH1, topo::HostH2);
    W += G.pings(2, 4);
    E.run(W);
    Stats St = E.stats();
    EXPECT_EQ(St.EventsDetected, 1u);
    if (FastUpdates) {
      EXPECT_GT(St.FastPathLearns + St.CtrlDeltas, 0u)
          << "fast pipeline was configured but never exercised";
    } else {
      EXPECT_EQ(St.FastPathLearns, 0u);
      EXPECT_EQ(St.CtrlDeltas, 0u);
    }
    std::map<SwitchId, Engine::ViewSnapshot> V;
    for (SwitchId Sw : A.Topo.switches())
      V[Sw] = E.readView(Sw);
    return V;
  };

  auto FastV = finalViews(true);
  auto CtrlV = finalViews(false);
  ASSERT_EQ(FastV.size(), CtrlV.size());
  for (auto &[Sw, F] : FastV) {
    const Engine::ViewSnapshot &L = CtrlV[Sw];
    EXPECT_EQ(F.Tag, L.Tag) << "switch " << Sw;
    EXPECT_TRUE(F.E == L.E) << "switch " << Sw << ": registers differ";
    EXPECT_EQ(F.Version, L.Version) << "switch " << Sw;
  }
}

TEST(EngineConsistency, EngineMatchesSimulatorDeliverySemantics) {
  // Bulk H1 -> H2 over the ring: the engine must deliver every packet
  // the static path allows, like the simulator's uncongested runs.
  apps::App A = apps::ringApp(6, 3);
  api::Result<api::Compilation> C = compileApp(A);
  ASSERT_TRUE(C.ok()) << C.status().str();

  EngineConfig Cfg;
  Cfg.NumShards = 2;
  Engine E(C->structure(), A.Topo, Cfg);
  TrafficGen G(A.Topo, 9);
  E.run(G.bulk(topo::HostH1, topo::HostH2, 200, 50));

  Stats S = E.stats();
  EXPECT_EQ(S.PacketsInjected, 200u);
  EXPECT_EQ(S.PacketsDelivered, 200u);
  EXPECT_EQ(S.PacketsDropped, 0u);

  auto R =
      consistency::checkAgainstNes(E.trace(), A.Topo, C->structure());
  EXPECT_TRUE(R.Correct) << R.Reason;
}
