//===- tests/engine/PartitionTest.cpp - Shard placement properties --------===//
//
// Properties of the topology-aware shard partitioner:
//
//  - totality: every switch is assigned to exactly one shard, every
//    shard is nonempty whenever there are enough switches, and the
//    per-shard counts the result reports match the assignment;
//  - balance: contiguous and refined placements keep every shard's
//    vertex-weight load within the advertised BalanceLimit;
//  - quality: on rings, fat-trees, and random connected graphs, the
//    weighted edge cut improves monotonically
//        refined <= contiguous <= modulo,
//    and on the ring the refined cut is exactly the optimum (one
//    boundary pair per arc);
//  - determinism: the same topology and parameters always produce the
//    same placement (the engine's placement must be reproducible from a
//    seed for the consistency sweeps to mean anything).
//
//===----------------------------------------------------------------------===//

#include "engine/Partition.h"

#include "support/Rng.h"
#include "topo/Builders.h"

#include <gtest/gtest.h>

#include <map>

using namespace eventnet;
using namespace eventnet::engine;

namespace {

/// A random connected topology: a spanning chain plus \p ExtraLinks
/// random bidirectional links, with \p Hosts hosts attached at random
/// switches. Port numbers are allocated sequentially per switch.
topo::Topology randomTopology(uint64_t Seed, unsigned Switches,
                              unsigned ExtraLinks, unsigned Hosts) {
  Rng R(Seed);
  topo::Topology T;
  std::map<SwitchId, PortId> NextPort;
  auto Port = [&](SwitchId Sw) { return Location{Sw, ++NextPort[Sw]}; };
  for (unsigned S = 1; S <= Switches; ++S)
    T.addSwitch(static_cast<SwitchId>(S));
  for (unsigned S = 1; S < Switches; ++S)
    T.addBiLink(Port(static_cast<SwitchId>(S)),
                Port(static_cast<SwitchId>(S + 1)));
  for (unsigned L = 0; L != ExtraLinks; ++L) {
    SwitchId A = static_cast<SwitchId>(R.range(1, Switches));
    SwitchId B = static_cast<SwitchId>(R.range(1, Switches));
    if (A == B)
      continue;
    T.addBiLink(Port(A), Port(B));
  }
  for (unsigned H = 1; H <= Hosts; ++H)
    T.attachHost(static_cast<HostId>(H),
                 Port(static_cast<SwitchId>(R.range(1, Switches))));
  return T;
}

struct NamedTopo {
  const char *Name;
  topo::Topology Topo;
};

/// A hub with \p Spokes host-attached spoke switches — the worst case
/// for region growth: one region claims the hub and every other region
/// is immediately landlocked.
topo::Topology hubTopology(unsigned Spokes) {
  topo::Topology T;
  const SwitchId Hub = 1;
  for (unsigned S = 0; S != Spokes; ++S) {
    SwitchId Spoke = static_cast<SwitchId>(2 + S);
    T.addBiLink({Hub, static_cast<PortId>(1 + S)}, {Spoke, 1});
    T.attachHost(static_cast<HostId>(1 + S), {Spoke, 2});
  }
  return T;
}

std::vector<NamedTopo> testTopologies() {
  std::vector<NamedTopo> V;
  V.push_back({"ring16", topo::ringTopology(16, 8)});
  V.push_back({"fattree4", topo::fatTreeTopology(4)});
  V.push_back({"random", randomTopology(11, 24, 20, 6)});
  V.push_back({"hub8", hubTopology(8)});
  return V;
}

constexpr PartitionStrategy AllStrategies[] = {PartitionStrategy::Modulo,
                                               PartitionStrategy::Contiguous,
                                               PartitionStrategy::Refined};

} // namespace

TEST(Partition, StrategyNamesRoundTrip) {
  for (PartitionStrategy S : AllStrategies) {
    auto Parsed = parsePartitionStrategy(partitionStrategyName(S));
    ASSERT_TRUE(Parsed.has_value()) << partitionStrategyName(S);
    EXPECT_EQ(*Parsed, S);
  }
  EXPECT_FALSE(parsePartitionStrategy("round-robin").has_value());
  EXPECT_FALSE(parsePartitionStrategy("").has_value());
}

TEST(Partition, EverySwitchAssignedExactlyOnce) {
  for (const NamedTopo &NT : testTopologies()) {
    SwitchIndex Idx(NT.Topo);
    for (unsigned Shards : {1u, 2u, 3u, 4u, 8u}) {
      for (PartitionStrategy S : AllStrategies) {
        PartitionResult R = partitionSwitches(Idx, Shards, S);
        ASSERT_EQ(R.ShardOf.size(), Idx.numSwitches()) << NT.Name;
        ASSERT_EQ(R.ShardSwitches.size(), Shards) << NT.Name;
        std::vector<uint32_t> Count(Shards, 0);
        for (uint32_t Shard : R.ShardOf) {
          ASSERT_LT(Shard, Shards) << NT.Name;
          ++Count[Shard];
        }
        // The reported per-shard switch counts are the assignment's.
        for (unsigned I = 0; I != Shards; ++I)
          EXPECT_EQ(Count[I], R.ShardSwitches[I])
              << NT.Name << " " << partitionStrategyName(S) << " shard "
              << I;
        // With enough switches no shard may be starved: an empty shard
        // is a wasted worker thread.
        if (Shards <= Idx.numSwitches()) {
          for (unsigned I = 0; I != Shards; ++I) {
            EXPECT_GT(Count[I], 0u)
                << NT.Name << " " << partitionStrategyName(S)
                << " shards=" << Shards;
          }
        }
      }
    }
  }
}

TEST(Partition, BalanceWithinAdvertisedLimit) {
  for (const NamedTopo &NT : testTopologies()) {
    SwitchIndex Idx(NT.Topo);
    for (unsigned Shards : {2u, 3u, 4u, 8u}) {
      for (PartitionStrategy S :
           {PartitionStrategy::Contiguous, PartitionStrategy::Refined}) {
        PartitionResult R = partitionSwitches(Idx, Shards, S, 1.25);
        EXPECT_LE(R.MaxShardLoad, R.BalanceLimit)
            << NT.Name << " " << partitionStrategyName(S)
            << " shards=" << Shards;
        EXPECT_GT(R.MinShardLoad, 0u)
            << NT.Name << " " << partitionStrategyName(S)
            << " shards=" << Shards;
      }
    }
  }
}

TEST(Partition, CutImprovesMonotonically) {
  // The point of the whole exercise: topology-aware placement must not
  // lose to round-robin, and refinement must not lose to plain growth.
  for (const NamedTopo &NT : testTopologies()) {
    SwitchIndex Idx(NT.Topo);
    for (unsigned Shards : {2u, 4u, 8u}) {
      PartitionResult Mod =
          partitionSwitches(Idx, Shards, PartitionStrategy::Modulo);
      PartitionResult Con =
          partitionSwitches(Idx, Shards, PartitionStrategy::Contiguous);
      PartitionResult Ref =
          partitionSwitches(Idx, Shards, PartitionStrategy::Refined);
      EXPECT_EQ(Mod.TotalWeight, Con.TotalWeight) << NT.Name;
      EXPECT_EQ(Mod.TotalWeight, Ref.TotalWeight) << NT.Name;
      EXPECT_LE(Con.CutWeight, Mod.CutWeight)
          << NT.Name << " shards=" << Shards;
      EXPECT_LE(Ref.CutWeight, Con.CutWeight)
          << NT.Name << " shards=" << Shards;
    }
  }
}

TEST(Partition, RingCutIsOptimal) {
  // Splitting a 16-ring into K contiguous arcs cuts exactly K
  // bidirectional boundaries (weight 2 each); no balanced placement
  // does better. Modulo, by contrast, cuts every single edge.
  topo::Topology Ring = topo::ringTopology(16, 8);
  SwitchIndex Idx(Ring);
  for (unsigned Shards : {2u, 4u, 8u}) {
    PartitionResult Ref =
        partitionSwitches(Idx, Shards, PartitionStrategy::Refined);
    EXPECT_EQ(Ref.CutWeight, 2ull * Shards) << "shards=" << Shards;
    PartitionResult Mod =
        partitionSwitches(Idx, Shards, PartitionStrategy::Modulo);
    EXPECT_EQ(Mod.CutWeight, Mod.TotalWeight) << "shards=" << Shards;
  }
}

TEST(Partition, DeterministicAcrossCalls) {
  for (const NamedTopo &NT : testTopologies()) {
    SwitchIndex Idx(NT.Topo);
    for (PartitionStrategy S : AllStrategies) {
      PartitionResult A = partitionSwitches(Idx, 4, S);
      PartitionResult B = partitionSwitches(Idx, 4, S);
      EXPECT_EQ(A.ShardOf, B.ShardOf)
          << NT.Name << " " << partitionStrategyName(S);
      EXPECT_EQ(A.CutWeight, B.CutWeight);
    }
  }
}

TEST(Partition, LandlockedRegionsStillBalance) {
  // Hub-and-spoke: whichever region claims the hub landlocks every
  // other region. The partitioner must sacrifice contiguity, not
  // balance — the old "grow only regions with a frontier" rule piled
  // every spoke onto the hub's shard.
  SwitchIndex Idx(hubTopology(8)); // 9 switches, hub weight 1, spokes 2
  for (unsigned Shards : {2u, 3u, 4u}) {
    for (PartitionStrategy S :
         {PartitionStrategy::Contiguous, PartitionStrategy::Refined}) {
      PartitionResult R = partitionSwitches(Idx, Shards, S, 1.25);
      EXPECT_LE(R.MaxShardLoad, R.BalanceLimit)
          << partitionStrategyName(S) << " shards=" << Shards;
      for (unsigned I = 0; I != Shards; ++I)
        EXPECT_GT(R.ShardSwitches[I], 0u)
            << partitionStrategyName(S) << " shards=" << Shards
            << " shard " << I;
    }
  }
}

TEST(Partition, DegenerateShapes) {
  // One shard: everything on it, zero cut.
  topo::Topology Ring = topo::ringTopology(8, 4);
  SwitchIndex Idx(Ring);
  for (PartitionStrategy S : AllStrategies) {
    PartitionResult R = partitionSwitches(Idx, 1, S);
    EXPECT_EQ(R.CutWeight, 0u);
    EXPECT_EQ(R.cutFraction(), 0.0);
    EXPECT_EQ(R.ShardSwitches[0], Idx.numSwitches());
  }
  // More shards than switches: still total, loads bounded, no crash.
  for (PartitionStrategy S : AllStrategies) {
    PartitionResult R = partitionSwitches(Idx, 32, S);
    EXPECT_EQ(R.ShardOf.size(), Idx.numSwitches());
    uint32_t Placed = 0;
    for (uint32_t C : R.ShardSwitches)
      Placed += C;
    EXPECT_EQ(Placed, Idx.numSwitches());
  }
}
