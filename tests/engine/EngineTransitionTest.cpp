//===- tests/engine/EngineTransitionTest.cpp - Atomic transitions ---------===//
//
// The engine's configuration transitions must be atomic from every
// angle:
//
//  - a concurrent RCU reader never observes a torn view: the published
//    (tag, register) pair always satisfies tag == setIndex(register),
//    versions are monotonic, and registers only grow;
//  - no packet observes a mixed configuration: every hop of every packet
//    trace was matched against the table of one tag — the tag stamped at
//    ingress (Section 4's per-packet consistency).
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "apps/Programs.h"
#include "engine/TrafficGen.h"
#include "nes/Pipeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

using namespace eventnet;
using namespace eventnet::engine;

namespace {

Workload firewallScript(TrafficGen &G) {
  // The SimConsistencyTest scenario: a blocked inbound ping, a train of
  // outbound pings (the first fires the event), a now-allowed inbound
  // ping.
  Workload W = G.ping(topo::HostH4, topo::HostH1);
  for (int I = 0; I != 12; ++I)
    W += G.ping(topo::HostH1, topo::HostH4);
  W += G.ping(topo::HostH4, topo::HostH1);
  return W;
}

} // namespace

TEST(EngineTransition, ConcurrentReaderNeverSeesTornView) {
  apps::App A = apps::ringApp(8, 4);
  api::Result<nes::CompiledProgram> CR = nes::compileAst(A.Ast, A.Topo);
  ASSERT_TRUE(CR.ok()) << CR.status().str();
  nes::CompiledProgram &C = *CR;

  EngineConfig Cfg;
  Cfg.NumShards = 4;
  Engine E(*C.N, A.Topo, Cfg);

  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Reads{0};
  std::atomic<bool> Violation{false};
  std::thread Monitor([&] {
    std::map<SwitchId, uint64_t> LastVersion;
    std::map<SwitchId, unsigned> LastCount;
    while (!Done.load()) {
      for (SwitchId Sw : A.Topo.switches()) {
        Engine::ViewSnapshot V = E.readView(Sw);
        // Internal consistency: the pair was swapped atomically.
        auto Set = C.N->setIndex(V.E);
        if (!Set || *Set != V.Tag) {
          Violation.store(true);
          return;
        }
        // Monotonicity: versions and registers only grow.
        if (V.Version < LastVersion[Sw] || V.E.count() < LastCount[Sw]) {
          Violation.store(true);
          return;
        }
        LastVersion[Sw] = V.Version;
        LastCount[Sw] = static_cast<unsigned>(V.E.count());
        Reads.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });

  TrafficGen G(A.Topo, 11);
  Workload W = G.pings(3, 4);
  W += G.probe(topo::HostH1, topo::HostH2); // flips the ring config
  W += G.pings(3, 4);
  E.run(W);

  Done.store(true);
  Monitor.join();
  EXPECT_FALSE(Violation.load());
  EXPECT_GT(Reads.load(), 0u);

  Stats S = E.stats();
  EXPECT_GT(S.EventsDetected, 0u);
  EXPECT_GT(S.ConfigTransitions, 0u);
}

class EngineMixedConfig
    : public ::testing::TestWithParam<std::tuple<unsigned, uint64_t>> {};

TEST_P(EngineMixedConfig, NoPacketObservesAMixedConfiguration) {
  auto [Shards, Seed] = GetParam();

  apps::App A = apps::firewallApp();
  api::Result<nes::CompiledProgram> CR =
      nes::compileSource(A.Source, A.Topo);
  ASSERT_TRUE(CR.ok()) << CR.status().str();
  nes::CompiledProgram &C = *CR;

  EngineConfig Cfg;
  Cfg.NumShards = Shards;
  Engine E(*C.N, A.Topo, Cfg);

  TrafficGen G(A.Topo, Seed);
  E.run(firewallScript(G));

  ASSERT_GT(E.trace().size(), 0u);
  ASSERT_EQ(E.traceTags().size(), E.trace().size());

  // Every chain of the packet-trace forest carries exactly one tag: the
  // packet was processed by a single configuration end to end.
  for (const std::vector<int> &Chain : E.trace().packetTraces()) {
    nes::SetId Tag = E.traceTags()[Chain.front()];
    for (int Idx : Chain)
      EXPECT_EQ(E.traceTags()[Idx], Tag)
          << "mixed configuration on chain starting at " << Chain.front();
  }

  // The scenario forces the event: the firewall state actually changed
  // while traffic was in flight.
  Stats S = E.stats();
  EXPECT_EQ(S.EventsDetected, 1u);
  EXPECT_GT(S.ConfigTransitions, 0u);
  EXPECT_GT(S.Transition.Samples, 0u);

  // Both tags appear in the trace: some packets ran on g(∅), some on the
  // post-event configuration.
  bool SawOld = false, SawNew = false;
  for (nes::SetId T : E.traceTags()) {
    SawOld |= (T == C.N->emptySet());
    SawNew |= (T != C.N->emptySet());
  }
  EXPECT_TRUE(SawOld);
  EXPECT_TRUE(SawNew);
}

INSTANTIATE_TEST_SUITE_P(
    ShardsAndSeeds, EngineMixedConfig,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(uint64_t(1), uint64_t(42))));

TEST(EngineTransition, BroadcastPropagatesEventsToAllSwitches) {
  apps::App A = apps::firewallApp();
  api::Result<nes::CompiledProgram> CR =
      nes::compileSource(A.Source, A.Topo);
  ASSERT_TRUE(CR.ok()) << CR.status().str();
  nes::CompiledProgram &C = *CR;

  EngineConfig Cfg;
  Cfg.NumShards = 2;
  Cfg.CtrlBroadcast = true;
  Engine E(*C.N, A.Topo, Cfg);

  TrafficGen G(A.Topo, 3);
  E.run(firewallScript(G));

  // With CTRLSEND broadcast every switch must have learned the event.
  for (SwitchId Sw : A.Topo.switches()) {
    Engine::ViewSnapshot V = E.readView(Sw);
    EXPECT_EQ(V.E.count(), 1u) << "switch " << Sw << " missed the event";
  }
  EXPECT_EQ(E.learnTimes().size(), A.Topo.switches().size());
}
