//===- tests/engine/WakeTest.cpp - ControllerWake protocol ----------------===//
//
// The deduplicated cross-thread wake behind the controller's
// event-driven sleep: no lost wakeups when the sleeper rechecks its
// work source after every wait(), coalesced notifies, and a timeout
// that is a safety net rather than a latency floor.
//
//===----------------------------------------------------------------------===//

#include "engine/Wake.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace eventnet::engine;

namespace {

double secondsOf(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       T0)
      .count();
}

} // namespace

TEST(ControllerWake, WaitTimesOutWithoutNotify) {
  ControllerWake W;
  auto T0 = std::chrono::steady_clock::now();
  W.wait(/*TimeoutUs=*/5000);
  // Returned (no hang) and actually slept rather than spinning through
  // a stale token. Generous upper bound: CI schedulers are coarse.
  double S = secondsOf(T0);
  EXPECT_GE(S, 0.0005);
  EXPECT_LT(S, 2.0);
}

TEST(ControllerWake, NotifyBeforeWaitReturnsImmediately) {
  ControllerWake W;
  W.notify();
  auto T0 = std::chrono::steady_clock::now();
  W.wait(/*TimeoutUs=*/2000000);
  // A pre-posted token must satisfy the wait without the 2s timeout.
  EXPECT_LT(secondsOf(T0), 1.0);
}

TEST(ControllerWake, NotifiesCoalesceIntoOneWake) {
  ControllerWake W;
  for (int I = 0; I != 100; ++I)
    W.notify(); // one token however many producers raced this cycle
  auto T0 = std::chrono::steady_clock::now();
  W.wait(/*TimeoutUs=*/2000000);
  EXPECT_LT(secondsOf(T0), 1.0);
  // The wait drained the (single) token and cleared the dedup flag: a
  // second wait must time out, not consume a stale wakeup.
  T0 = std::chrono::steady_clock::now();
  W.wait(/*TimeoutUs=*/5000);
  EXPECT_GE(secondsOf(T0), 0.0005);
}

TEST(ControllerWake, CrossThreadWakeIsPrompt) {
  // The engine's actual shape: a sleeper blocking in wait() while a
  // producer publishes work and notifies. The sleeper must observe the
  // flag well before the 2s safety-net timeout.
  ControllerWake W;
  std::atomic<bool> Work{false};
  std::atomic<double> Waited{-1.0};

  std::thread Sleeper([&] {
    auto T0 = std::chrono::steady_clock::now();
    while (!Work.load(std::memory_order_acquire))
      W.wait(/*TimeoutUs=*/2000000);
    Waited.store(secondsOf(T0));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Work.store(true, std::memory_order_release);
  W.notify();
  Sleeper.join();

  EXPECT_GE(Waited.load(), 0.0);
  EXPECT_LT(Waited.load(), 1.5);
}

TEST(ControllerWake, NotifyAfterDrainRearmsTheNextWait) {
  // The dedup protocol's re-arm: once the sleeper drained, a fresh
  // notify writes the fd again and the next wait returns immediately.
  ControllerWake W;
  W.notify();
  W.wait(/*TimeoutUs=*/2000000); // consume + drain + clear flag
  W.notify();                    // must re-arm, not coalesce into the past
  auto T0 = std::chrono::steady_clock::now();
  W.wait(/*TimeoutUs=*/2000000);
  EXPECT_LT(secondsOf(T0), 1.0);
}
