//===- tests/engine/MatchPipelineTest.cpp - Flat lowering agreement -------===//
//
// The match pipeline's two lookup paths (flattened-FDD walk and bucket
// scan) must agree with the reference flowtable::Table on arbitrary
// packets — both on random tables and on every real table the compiler
// produces for the case-study applications (including the tag-guarded
// union tables).
//
//===----------------------------------------------------------------------===//

#include "engine/MatchPipeline.h"

#include "apps/Programs.h"
#include "flowtable/FlowTable.h"
#include "nes/Pipeline.h"
#include "runtime/Guarded.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace eventnet;
using namespace eventnet::engine;
using eventnet::flowtable::ActionSeq;
using eventnet::flowtable::Rule;
using eventnet::flowtable::Table;
using eventnet::netkat::Packet;

namespace {

/// Sorted (canonical) rendering of an output packet set; the pipeline's
/// multicast order and duplicate handling may differ from Table::apply
/// (it interns action *sets*), so agreement is up to set equality.
std::vector<Packet> canon(std::vector<Packet> V) {
  std::sort(V.begin(), V.end());
  V.erase(std::unique(V.begin(), V.end()), V.end());
  return V;
}

std::vector<Packet> tableOut(const Table &T, const Packet &P) {
  return canon(T.apply(P));
}

std::vector<Packet> fddOut(const MatchPipeline &M, const Packet &P) {
  std::vector<Packet> Out;
  M.apply(P, Out);
  return canon(Out);
}

std::vector<Packet> scanOut(const MatchPipeline &M, const Packet &P) {
  std::vector<Packet> Out;
  M.applyScan(P, Out);
  return canon(Out);
}

/// A random packet over a small field/value universe (fields may be
/// missing to exercise absent-field test semantics).
Packet randomPacket(Rng &R, const std::vector<FieldId> &Fields) {
  Packet P;
  P.setLoc({static_cast<SwitchId>(R.range(1, 4)),
            static_cast<PortId>(R.range(1, 4))});
  for (FieldId F : Fields)
    if (R.chance(0.7))
      P.set(F, R.range(0, 3));
  return P;
}

Table randomTable(Rng &R, const std::vector<FieldId> &Fields) {
  Table T;
  unsigned NumRules = static_cast<unsigned>(R.range(0, 12));
  for (unsigned I = 0; I != NumRules; ++I) {
    Rule Ru;
    Ru.Priority = static_cast<int>(R.range(0, 9));
    for (FieldId F : Fields)
      if (R.chance(0.4))
        Ru.Pattern.require(F, R.range(0, 3));
    unsigned NumActs = static_cast<unsigned>(R.range(0, 2)); // 0 = drop
    for (unsigned A = 0; A != NumActs; ++A) {
      std::vector<std::pair<FieldId, Value>> Writes;
      Writes.push_back({FieldPt, R.range(1, 4)});
      if (R.chance(0.5))
        Writes.push_back({Fields[R.below(Fields.size())], R.range(0, 3)});
      Ru.Actions.push_back(flowtable::normalizeActionSeq(Writes));
    }
    T.add(std::move(Ru));
  }
  return T;
}

void expectAgreement(const Table &T, const Packet &P) {
  MatchPipeline M(T);
  auto Ref = tableOut(T, P);
  EXPECT_EQ(fddOut(M, P), Ref) << "FDD walk diverged on " << P.str()
                               << "\ntable:\n"
                               << T.str();
  EXPECT_EQ(scanOut(M, P), Ref) << "bucket scan diverged on " << P.str()
                                << "\ntable:\n"
                                << T.str();
}

} // namespace

TEST(MatchPipeline, EmptyTableDropsEverything) {
  Table T;
  MatchPipeline M(T);
  std::vector<Packet> Out;
  M.apply(netkat::makePacket({1, 1}, {}), Out);
  EXPECT_TRUE(Out.empty());
  M.applyScan(netkat::makePacket({1, 1}, {}), Out);
  EXPECT_TRUE(Out.empty());
  EXPECT_EQ(M.numRules(), 0u);
}

TEST(MatchPipeline, FirstMatchAndMulticast) {
  FieldId Dst = fieldOf("ip_dst");
  Table T;
  Rule Hi;
  Hi.Priority = 10;
  Hi.Pattern.require(Dst, 4);
  Hi.Actions = {flowtable::normalizeActionSeq({{FieldPt, 1}}),
                flowtable::normalizeActionSeq({{FieldPt, 3}})};
  Rule Lo;
  Lo.Priority = 1;
  Lo.Actions = {flowtable::normalizeActionSeq({{FieldPt, 2}})};
  T.add(Hi);
  T.add(Lo);

  MatchPipeline M(T);
  Packet P = netkat::makePacket({1, 2}, {{Dst, 4}});
  std::vector<Packet> Out;
  M.apply(P, Out);
  EXPECT_EQ(Out.size(), 2u); // multicast
  expectAgreement(T, P);
  expectAgreement(T, netkat::makePacket({1, 2}, {{Dst, 5}}));
  expectAgreement(T, netkat::makePacket({1, 2}, {}));
}

TEST(MatchPipeline, RandomTablesAgreeWithReference) {
  Rng R(2024);
  std::vector<FieldId> Fields = {fieldOf("ip_dst"), fieldOf("kind"),
                                 fieldOf("__tag")};
  for (int Iter = 0; Iter != 200; ++Iter) {
    Table T = randomTable(R, Fields);
    MatchPipeline M(T);
    for (int I = 0; I != 25; ++I) {
      Packet P = randomPacket(R, Fields);
      auto Ref = tableOut(T, P);
      ASSERT_EQ(fddOut(M, P), Ref)
          << "FDD walk diverged on " << P.str() << "\ntable:\n" << T.str();
      ASSERT_EQ(scanOut(M, P), Ref)
          << "bucket scan diverged on " << P.str() << "\ntable:\n" << T.str();
    }
  }
}

TEST(MatchPipeline, CompiledAppTablesAgree) {
  Rng R(7);
  for (const apps::App &A : apps::caseStudyApps()) {
    api::Result<nes::CompiledProgram> CR =
        A.Source.empty() ? nes::compileAst(A.Ast, A.Topo)
                         : nes::compileSource(A.Source, A.Topo);
    ASSERT_TRUE(CR.ok()) << A.Name << ": " << CR.status().str();
    nes::CompiledProgram &C = *CR;

    std::vector<FieldId> Fields = {apps::ipDstField(), apps::probeField(),
                                   runtime::tagField()};
    // Every per-set per-switch table, plus the tag-guarded union table.
    for (nes::SetId S = 0; S != C.N->numSets(); ++S)
      for (SwitchId Sw : A.Topo.switches()) {
        const flowtable::Table &T = C.N->configOf(S).tableFor(Sw);
        MatchPipeline M(T);
        for (int I = 0; I != 40; ++I) {
          Packet P = randomPacket(R, Fields);
          ASSERT_EQ(fddOut(M, P), tableOut(T, P)) << A.Name;
          ASSERT_EQ(scanOut(M, P), tableOut(T, P)) << A.Name;
        }
      }
    topo::Configuration G = runtime::buildGuardedConfig(*C.N, A.Topo);
    for (SwitchId Sw : A.Topo.switches()) {
      const flowtable::Table &T = G.tableFor(Sw);
      MatchPipeline M(T);
      EXPECT_EQ(M.numRules(), T.size());
      for (int I = 0; I != 40; ++I) {
        Packet P = randomPacket(R, Fields);
        P.set(runtime::tagField(),
              R.range(0, static_cast<int64_t>(C.N->numSets()) - 1));
        ASSERT_EQ(fddOut(M, P), tableOut(T, P)) << A.Name << " guarded";
        ASSERT_EQ(scanOut(M, P), tableOut(T, P)) << A.Name << " guarded";
      }
    }
  }
}

TEST(MatchPipeline, DispatchFieldIsMostConstrained) {
  FieldId Dst = fieldOf("ip_dst");
  Table T;
  for (int I = 0; I != 5; ++I) {
    Rule Ru;
    Ru.Priority = I;
    Ru.Pattern.require(Dst, I);
    if (I < 2)
      Ru.Pattern.require(FieldPt, 1);
    Ru.Actions = {flowtable::normalizeActionSeq({{FieldPt, 9}})};
    T.add(Ru);
  }
  MatchPipeline M(T);
  EXPECT_EQ(M.dispatchField(), Dst);
  auto H = T.constraintHistogram();
  EXPECT_EQ(H[Dst], 5u);
  EXPECT_EQ(H[FieldPt], 2u);
}
