//===- tests/engine/QueueTest.cpp - MPSC queue + RCU epoch tests ----------===//

#include "engine/Queue.h"
#include "engine/Rcu.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

using namespace eventnet::engine;

TEST(Queue, FifoSingleThread) {
  BoundedMpscQueue<int> Q(8);
  for (int I = 0; I != 5; ++I)
    EXPECT_TRUE(Q.tryPush(int(I)));
  int V;
  for (int I = 0; I != 5; ++I) {
    ASSERT_TRUE(Q.tryPop(V));
    EXPECT_EQ(V, I);
  }
  EXPECT_FALSE(Q.tryPop(V));
}

TEST(Queue, FullAndCapacity) {
  BoundedMpscQueue<int> Q(4);
  EXPECT_EQ(Q.capacity(), 4u);
  for (int I = 0; I != 4; ++I)
    EXPECT_TRUE(Q.tryPush(int(I)));
  EXPECT_FALSE(Q.tryPush(99));
  int V;
  ASSERT_TRUE(Q.tryPop(V));
  EXPECT_TRUE(Q.tryPush(99));
}

TEST(Queue, CapacityRoundsUp) {
  BoundedMpscQueue<int> Q(5);
  EXPECT_EQ(Q.capacity(), 8u);
}

TEST(Queue, MpscStress) {
  // Several producers, one consumer: every element arrives exactly once
  // and each producer's elements arrive in its program order.
  constexpr unsigned Producers = 4;
  constexpr uint64_t PerProducer = 20000;
  BoundedMpscQueue<uint64_t> Q(1024);

  std::vector<std::thread> Ts;
  for (unsigned P = 0; P != Producers; ++P)
    Ts.emplace_back([&Q, P] {
      for (uint64_t I = 0; I != PerProducer; ++I)
        Q.pushBlocking((uint64_t(P) << 32) | I);
    });

  std::map<unsigned, uint64_t> NextExpected;
  uint64_t Got = 0, V;
  while (Got != Producers * PerProducer) {
    if (!Q.tryPop(V)) {
      std::this_thread::yield();
      continue;
    }
    unsigned P = static_cast<unsigned>(V >> 32);
    uint64_t Seq = V & 0xffffffffu;
    EXPECT_EQ(Seq, NextExpected[P]) << "producer " << P << " reordered";
    NextExpected[P] = Seq + 1;
    ++Got;
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_FALSE(Q.tryPop(V));
}

namespace {
struct Counted {
  static int Live;
  Counted() { ++Live; }
  ~Counted() { --Live; }
};
int Counted::Live = 0;
} // namespace

TEST(Rcu, RetireWaitsForActiveReaders) {
  EpochDomain D(2);
  RetireList<Counted> RL;

  unsigned Slot = D.acquireSlot();
  D.enter(Slot); // reader active in the current epoch

  const Counted *Obj = new Counted();
  EXPECT_EQ(Counted::Live, 1);
  uint64_t E = D.retireEpoch();
  RL.retire(Obj, E);

  // The reader entered before the retirement: must not reclaim.
  RL.tryReclaim(D.minActiveEpoch());
  EXPECT_EQ(Counted::Live, 1);
  EXPECT_EQ(RL.pending(), 1u);

  D.exit(Slot);
  D.releaseSlot(Slot);

  RL.tryReclaim(D.minActiveEpoch());
  EXPECT_EQ(Counted::Live, 0);
  EXPECT_EQ(RL.pending(), 0u);
}

TEST(Rcu, LateReaderDoesNotBlockReclaim) {
  EpochDomain D(2);
  RetireList<Counted> RL;

  RL.retire(new Counted(), D.retireEpoch());

  // A reader entering *after* the retirement epoch observes the new
  // state; it must not pin the retired object.
  unsigned Slot = D.acquireSlot();
  D.enter(Slot);
  RL.tryReclaim(D.minActiveEpoch());
  EXPECT_EQ(Counted::Live, 0);
  D.exit(Slot);
  D.releaseSlot(Slot);
}

TEST(Rcu, GuardRoundTrip) {
  EpochDomain D(1);
  {
    EpochDomain::ReadGuard G(D);
    // One slot: a second guard would spin; just check the epoch pins.
    EXPECT_LE(D.minActiveEpoch(), D.retireEpoch());
  }
  // Released: the slot is reusable.
  EpochDomain::ReadGuard G2(D);
}
