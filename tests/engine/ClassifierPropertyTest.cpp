//===- tests/engine/ClassifierPropertyTest.cpp - Classifier lowering ------===//
//
// Property tests for the final lowering (flattened FDD -> contiguous
// classifier program):
//
//  - agreement: on random tables x random packets (and on every table
//    the compiler produces for the case-study apps), the classifier
//    program, the flattened-FDD walk, the bucket scan, and the reference
//    Table::apply all yield the same action set;
//  - op coverage: contiguous value ranges lower to dense jump tables,
//    scattered ones to sorted-value binary search, and both execute
//    correctly;
//  - zero allocation: once the recycled PacketBuf is warm, steady-state
//    classifier lookups perform no heap allocations (counted by a
//    replacement global operator new);
//  - zero freelist growth: a full engine run on the classifier path
//    never grows its recycled egress/output pools — they are pre-sized
//    from EngineConfig::BatchSize at construction.
//
//===----------------------------------------------------------------------===//

#include "engine/MatchPipeline.h"

#include "apps/Programs.h"
#include "engine/Engine.h"
#include "flowtable/FlowTable.h"
#include "nes/Pipeline.h"
#include "runtime/Guarded.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>

using namespace eventnet;
using namespace eventnet::engine;
using eventnet::flowtable::Rule;
using eventnet::flowtable::Table;
using eventnet::netkat::Packet;

//===----------------------------------------------------------------------===//
// Counting allocator hook
//===----------------------------------------------------------------------===//

// Every heap allocation in this binary bumps GAllocs; the zero-alloc
// test snapshots the counter around a warmed lookup loop. The hooks
// forward to malloc/free, so sanitizer interceptors still see every
// allocation underneath.
static std::atomic<uint64_t> GAllocs{0};

static void *countedAlloc(size_t Sz) {
  GAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Sz ? Sz : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new(size_t Sz) { return countedAlloc(Sz); }
void *operator new[](size_t Sz) { return countedAlloc(Sz); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, size_t) noexcept { std::free(P); }
void operator delete[](void *P, size_t) noexcept { std::free(P); }

namespace {

//===----------------------------------------------------------------------===//
// Helpers (canonical output sets, random tables/packets)
//===----------------------------------------------------------------------===//

std::vector<Packet> canon(std::vector<Packet> V) {
  std::sort(V.begin(), V.end());
  V.erase(std::unique(V.begin(), V.end()), V.end());
  return V;
}

std::vector<Packet> classifierOut(const MatchPipeline &M, const Packet &P) {
  std::vector<Packet> Out;
  M.applyClassifier(P, Out);
  return canon(Out);
}

std::vector<Packet> fddOut(const MatchPipeline &M, const Packet &P) {
  std::vector<Packet> Out;
  M.apply(P, Out);
  return canon(Out);
}

std::vector<Packet> scanOut(const MatchPipeline &M, const Packet &P) {
  std::vector<Packet> Out;
  M.applyScan(P, Out);
  return canon(Out);
}

Packet randomPacket(Rng &R, const std::vector<FieldId> &Fields,
                    int64_t MaxVal) {
  Packet P;
  P.setLoc({static_cast<SwitchId>(R.range(1, 4)),
            static_cast<PortId>(R.range(1, 4))});
  for (FieldId F : Fields)
    if (R.chance(0.7))
      P.set(F, R.range(0, MaxVal));
  return P;
}

/// A random table whose constrained values are drawn from [0, MaxVal] —
/// small MaxVal yields contiguous runs (dense ops), large MaxVal yields
/// scattered values (sparse ops).
Table randomTable(Rng &R, const std::vector<FieldId> &Fields,
                  int64_t MaxVal, unsigned MaxRules) {
  Table T;
  unsigned NumRules = static_cast<unsigned>(R.range(0, MaxRules));
  for (unsigned I = 0; I != NumRules; ++I) {
    Rule Ru;
    Ru.Priority = static_cast<int>(R.range(0, 9));
    for (FieldId F : Fields)
      if (R.chance(0.4))
        Ru.Pattern.require(F, R.range(0, MaxVal));
    unsigned NumActs = static_cast<unsigned>(R.range(0, 2)); // 0 = drop
    for (unsigned A = 0; A != NumActs; ++A) {
      std::vector<std::pair<FieldId, Value>> Writes;
      Writes.push_back({FieldPt, R.range(1, 4)});
      if (R.chance(0.5))
        Writes.push_back({Fields[R.below(Fields.size())], R.range(0, 3)});
      Ru.Actions.push_back(flowtable::normalizeActionSeq(Writes));
    }
    T.add(std::move(Ru));
  }
  return T;
}

void expectAllPathsAgree(const Table &T, const MatchPipeline &M,
                         const Packet &P, const char *What) {
  auto Ref = canon(T.apply(P));
  ASSERT_EQ(classifierOut(M, P), Ref)
      << What << ": classifier diverged on " << P.str() << "\ntable:\n"
      << T.str();
  ASSERT_EQ(fddOut(M, P), Ref) << What << ": FDD walk diverged on "
                               << P.str() << "\ntable:\n" << T.str();
  ASSERT_EQ(scanOut(M, P), Ref) << What << ": bucket scan diverged on "
                                << P.str() << "\ntable:\n" << T.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Agreement properties
//===----------------------------------------------------------------------===//

TEST(ClassifierProperty, EmptyTableDrops) {
  Table T;
  MatchPipeline M(T);
  std::vector<Packet> Out;
  M.applyClassifier(netkat::makePacket({1, 1}, {}), Out);
  EXPECT_TRUE(Out.empty());
  EXPECT_GT(M.classifier().codeWords(), 0u); // the drop leaf
}

TEST(ClassifierProperty, RandomTablesAllPathsAgree) {
  Rng R(4242);
  std::vector<FieldId> Fields = {fieldOf("ip_dst"), fieldOf("kind"),
                                 fieldOf("__tag")};
  for (int Iter = 0; Iter != 200; ++Iter) {
    Table T = randomTable(R, Fields, /*MaxVal=*/3, /*MaxRules=*/12);
    MatchPipeline M(T);
    for (int I = 0; I != 25; ++I)
      expectAllPathsAgree(T, M, randomPacket(R, Fields, 3), "random");
  }
}

TEST(ClassifierProperty, ScatteredValuesUseSparseOpsAndAgree) {
  Rng R(99);
  std::vector<FieldId> Fields = {fieldOf("ip_dst"), fieldOf("kind")};
  size_t SawSparse = 0;
  for (int Iter = 0; Iter != 50; ++Iter) {
    // Values scattered over a 1e9 range: dense tables would be absurd,
    // so the lowering must pick binary-search ops.
    Table T = randomTable(R, Fields, /*MaxVal=*/1000000000, 16);
    MatchPipeline M(T);
    SawSparse += M.classifier().numOps() - M.classifier().numDenseOps();
    for (int I = 0; I != 20; ++I) {
      // Mix misses (random values) and hits (values constrained by some
      // rule) so the binary search's equal path is exercised too.
      Packet P = randomPacket(R, Fields, 1000000000);
      expectAllPathsAgree(T, M, P, "sparse");
    }
    for (const Rule &Ru : T.rules())
      for (const auto &[F, V] : Ru.Pattern.constraints()) {
        Packet P = randomPacket(R, Fields, 4);
        P.set(F, V);
        expectAllPathsAgree(T, M, P, "sparse-hit");
      }
  }
  EXPECT_GT(SawSparse, 0u) << "scattered tables never produced sparse ops";
}

TEST(ClassifierProperty, ContiguousValuesUseDenseOpsAndAgree) {
  FieldId Dst = fieldOf("ip_dst");
  Table T;
  // 32 contiguous ip_dst values on one field: a canonical lo-chain the
  // lowering should turn into one dense jump table.
  for (int I = 0; I != 32; ++I) {
    Rule Ru;
    Ru.Priority = 1;
    Ru.Pattern.require(Dst, I);
    Ru.Actions = {flowtable::normalizeActionSeq({{FieldPt, (I % 4) + 1}})};
    T.add(Ru);
  }
  MatchPipeline M(T);
  EXPECT_GT(M.classifier().numDenseOps(), 0u);
  Rng R(7);
  for (int I = 0; I != 200; ++I) {
    Packet P = netkat::makePacket(
        {static_cast<SwitchId>(R.range(1, 4)),
         static_cast<PortId>(R.range(1, 4))},
        {{Dst, R.range(-4, 40)}}); // in-range hits and out-of-range misses
    expectAllPathsAgree(T, M, P, "dense");
  }
}

TEST(ClassifierProperty, CompiledAppTablesAgree) {
  Rng R(17);
  for (const apps::App &A : apps::caseStudyApps()) {
    api::Result<nes::CompiledProgram> CR =
        A.Source.empty() ? nes::compileAst(A.Ast, A.Topo)
                         : nes::compileSource(A.Source, A.Topo);
    ASSERT_TRUE(CR.ok()) << A.Name << ": " << CR.status().str();
    nes::CompiledProgram &C = *CR;

    std::vector<FieldId> Fields = {apps::ipDstField(), apps::probeField(),
                                   runtime::tagField()};
    for (nes::SetId S = 0; S != C.N->numSets(); ++S)
      for (SwitchId Sw : A.Topo.switches()) {
        const Table &T = C.N->configOf(S).tableFor(Sw);
        MatchPipeline M(T);
        for (int I = 0; I != 30; ++I)
          expectAllPathsAgree(T, M, randomPacket(R, Fields, 3), A.Name.c_str());
      }
    // The tag-guarded union table exercises multi-field chains.
    topo::Configuration G = runtime::buildGuardedConfig(*C.N, A.Topo);
    for (SwitchId Sw : A.Topo.switches()) {
      const Table &T = G.tableFor(Sw);
      MatchPipeline M(T);
      for (int I = 0; I != 30; ++I) {
        Packet P = randomPacket(R, Fields, 3);
        P.set(runtime::tagField(),
              R.range(0, static_cast<int64_t>(C.N->numSets()) - 1));
        expectAllPathsAgree(T, M, P, "guarded");
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Zero allocation on the warmed fast path
//===----------------------------------------------------------------------===//

TEST(ClassifierProperty, WarmLookupsAllocateNothing) {
  Rng R(123);
  std::vector<FieldId> Fields = {fieldOf("ip_dst"), fieldOf("kind")};
  Table T = randomTable(R, Fields, 3, 12);
  while (T.size() == 0) // ensure some outputs exist
    T = randomTable(R, Fields, 3, 12);
  MatchPipeline M(T);

  std::vector<Packet> Pkts;
  for (int I = 0; I != 64; ++I)
    Pkts.push_back(randomPacket(R, Fields, 3));

  PacketBuf Buf;
  // Warm: the buffer grows to the table's maximal multicast width and
  // every slot's field vector reaches its steady capacity.
  for (const Packet &P : Pkts) {
    Buf.reset();
    M.applyClassifier(P, Buf);
  }
  uint64_t GrownWarm = Buf.grownCount();

  uint64_t Before = GAllocs.load(std::memory_order_relaxed);
  for (int Round = 0; Round != 10; ++Round)
    for (const Packet &P : Pkts) {
      Buf.reset();
      M.applyClassifier(P, Buf);
    }
  uint64_t After = GAllocs.load(std::memory_order_relaxed);

  EXPECT_EQ(After - Before, 0u)
      << "steady-state classifier lookups allocated";
  EXPECT_EQ(Buf.grownCount(), GrownWarm) << "PacketBuf grew after warmup";
}

TEST(ClassifierProperty, EngineFreelistsNeverGrow) {
  // The engine pre-sizes every recycled pool (classifier outputs,
  // per-target egress buffers, the self-delivery swap space) from
  // EngineConfig::BatchSize, so a steady-state classifier run reports
  // zero freelist growth — from the very first packet, not just "once
  // warm".
  apps::App A = apps::ringApp(8, 4);
  api::Result<nes::CompiledProgram> C = nes::compileAst(A.Ast, A.Topo);
  ASSERT_TRUE(C.ok()) << C.status().str();

  for (unsigned Shards : {1u, 2u, 4u}) {
    engine::EngineConfig Cfg;
    Cfg.NumShards = Shards;
    Cfg.UseClassifier = true;
    Cfg.BatchSize = 32;
    Cfg.RecordTrace = false; // the throughput-benchmark shape
    Cfg.RecordDeliveries = false;
    Cfg.EchoReplies = false;
    engine::Engine E(*C->N, A.Topo, Cfg);
    engine::TrafficGen G(A.Topo, 3);
    E.run(G.bulk(topo::HostH1, topo::HostH2, 2000, 500));

    engine::Stats S = E.stats();
    ASSERT_GT(S.PacketsDelivered, 0u);
    for (const engine::ShardStats &SS : S.Shards)
      EXPECT_EQ(SS.FreelistGrowth, 0u) << "shards=" << Shards;
  }
}

TEST(ClassifierProperty, CountingAllocatorSeesAllocations) {
  // Sanity-check the hook itself: a fresh vector must bump the counter.
  uint64_t Before = GAllocs.load(std::memory_order_relaxed);
  std::vector<int> *V = new std::vector<int>(100);
  uint64_t After = GAllocs.load(std::memory_order_relaxed);
  delete V;
  EXPECT_GE(After - Before, 1u);
}
