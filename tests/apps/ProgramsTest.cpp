//===- tests/apps/ProgramsTest.cpp - Application catalog tests ------------===//

#include "apps/Programs.h"

#include "stateful/Parser.h"

#include <gtest/gtest.h>

using namespace eventnet;

TEST(Programs, AllSourcesParse) {
  for (const apps::App &A : apps::caseStudyApps()) {
    auto R = stateful::parseProgram(A.Source);
    EXPECT_TRUE(R.ok()) << A.Name << ": " << R.status().str();
  }
}

TEST(Programs, BandwidthCapParameterized) {
  for (unsigned N : {1u, 5u, 20u}) {
    auto R = stateful::parseProgram(apps::bandwidthCapSource(N));
    ASSERT_TRUE(R.ok()) << R.status().str();
    EXPECT_EQ(stateful::stateSize(R->Program), 1u);
  }
}

TEST(Programs, CatalogNamesAndTopologies) {
  auto Apps = apps::caseStudyApps();
  ASSERT_EQ(Apps.size(), 5u);
  EXPECT_EQ(Apps[0].Name, "stateful-firewall");
  EXPECT_EQ(Apps[0].Topo.switches().size(), 2u);
  EXPECT_EQ(Apps[1].Name, "learning-switch");
  EXPECT_EQ(Apps[1].Topo.switches().size(), 4u);
}

TEST(Programs, RingProgramShape) {
  for (unsigned D = 1; D <= 4; ++D) {
    stateful::SPolRef P = apps::ringProgram(8, D);
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(stateful::stateSize(P), 1u);
  }
}

TEST(Programs, FieldsAreStable) {
  EXPECT_EQ(fieldName(apps::ipDstField()), "ip_dst");
  EXPECT_EQ(fieldName(apps::probeField()), "probe");
  EXPECT_EQ(apps::ipDstField(), apps::ipDstField());
}
