#!/usr/bin/env python3
"""Runs the perf benches with fixed seeds and merges their JSON into one
baseline file, so future PRs optimize against numbers instead of vibes.

    run_benches.py [--bin-dir build] [--out BENCH_baseline.json]
    run_benches.py --compare [BASELINE] [--threshold 0.15]
    run_benches.py --smoke [--bin-dir build] [--out FILE]

Modes
-----
default   run `bench/engine_throughput --json --seed 1` and
          `bench/micro_compiler --benchmark_format=json`, validate both
          schemas, and write the merged baseline JSON to --out.
--compare re-run the benches and fail (exit 1) if any engine-throughput
          row lost more than --threshold (default 15%) hops/sec against
          the committed baseline, or any micro benchmark's cpu_time grew
          by more than the threshold.
--smoke   tiny iteration counts (CI): engine_throughput --smoke, a small
          micro_compiler subset, schema validation only — plus an
          `eventnetc run --json` smoke on every registered backend,
          each validated through scripts/check_report.py.
"""

import argparse
import json
import os
import subprocess
import sys

ENGINE_ROW_KEYS = [
    "topology", "shards", "path", "delivered", "elapsed_ms",
    "hops_per_sec_M", "delivered_per_sec_M", "speedup_vs_walk",
    "speedup_vs_sim", "queue_hwm", "freelist_growth", "definition6",
]

SMOKE_MICRO_FILTER = "BM_ParseBandwidthCap/5|BM_TableExtraction|BM_NesEnabledEvents"


def fail(msg: str) -> None:
    print(f"run_benches: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run(cmd, **kw):
    print(f"run_benches: $ {' '.join(cmd)}", file=sys.stderr)
    try:
        return subprocess.run(cmd, check=True, capture_output=True,
                              text=True, **kw)
    except FileNotFoundError:
        fail(f"binary not found: {cmd[0]} (build it first?)")
    except subprocess.CalledProcessError as e:
        fail(f"{cmd[0]} exited {e.returncode}:\n{e.stderr[-2000:]}")


def engine_throughput(bin_dir: str, smoke: bool) -> dict:
    cmd = [os.path.join(bin_dir, "bench", "engine_throughput"), "--json",
           "--seed", "1"]
    if smoke:
        cmd.append("--smoke")
    out = run(cmd).stdout
    try:
        d = json.loads(out)
    except json.JSONDecodeError as e:
        fail(f"engine_throughput --json is not valid JSON: {e}")
    if d.get("bench") != "engine_throughput" or "rows" not in d:
        fail("engine_throughput JSON missing bench/rows")
    if not d["rows"]:
        fail("engine_throughput produced no rows")
    for row in d["rows"]:
        for key in ENGINE_ROW_KEYS:
            if key not in row:
                fail(f"engine_throughput row missing key '{key}': {row}")
        if row["definition6"] != "ok":
            fail(f"engine_throughput row violates Definition 6: {row}")
    return d


def micro_compiler(bin_dir: str, smoke: bool) -> dict:
    cmd = [os.path.join(bin_dir, "bench", "micro_compiler"),
           "--benchmark_format=json"]
    if smoke:
        cmd.append(f"--benchmark_filter={SMOKE_MICRO_FILTER}")
    out = run(cmd).stdout
    try:
        d = json.loads(out)
    except json.JSONDecodeError as e:
        fail(f"micro_compiler JSON output is invalid: {e}")
    if "benchmarks" not in d or not d["benchmarks"]:
        fail("micro_compiler JSON has no benchmarks")
    for b in d["benchmarks"]:
        for key in ("name", "cpu_time", "time_unit"):
            if key not in b:
                fail(f"micro_compiler benchmark missing '{key}': {b}")
    return d


def backend_smoke(bin_dir: str) -> None:
    """`eventnetc run --json` on every backend, checked by check_report."""
    eventnetc = os.path.join(bin_dir, "eventnetc")
    checker = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "check_report.py")
    prog = os.path.join("examples", "programs", "firewall.snk")
    topo = os.path.join("examples", "programs", "firewall.topo")
    backends = run([eventnetc, "backends"]).stdout.split()
    if not backends:
        fail("eventnetc lists no backends")
    for backend in backends:
        report = run([eventnetc, "run", prog, "--topo", topo, "--backend",
                      backend, "--seed", "7", "--json"]).stdout
        check = subprocess.run(
            [sys.executable, checker, "--backend", backend],
            input=report, capture_output=True, text=True)
        if check.returncode != 0:
            fail(f"check_report rejected backend '{backend}':\n"
                 f"{check.stderr}")
        print(f"run_benches: backend '{backend}' report ok",
              file=sys.stderr)


def collect(bin_dir: str, smoke: bool) -> dict:
    return {
        "schema": 1,
        "seed": 1,
        "smoke": smoke,
        "benches": {
            "engine_throughput": engine_throughput(bin_dir, smoke),
            "micro_compiler": micro_compiler(bin_dir, smoke),
        },
    }


def engine_key(row: dict) -> tuple:
    return (row["topology"], row["shards"], row["path"])


def compare(baseline: dict, fresh: dict, threshold: float) -> int:
    failures = []
    compared = 0

    base_rows = {engine_key(r): r
                 for r in baseline["benches"]["engine_throughput"]["rows"]}
    fresh_rows = {engine_key(r): r
                  for r in fresh["benches"]["engine_throughput"]["rows"]}
    for key in sorted(set(base_rows) - set(fresh_rows)):
        print(f"run_benches: WARNING: baseline engine row {key} no longer "
              "produced — its regression coverage is gone", file=sys.stderr)
    for key, row in fresh_rows.items():
        old = base_rows.get(key)
        if old is None:
            print(f"run_benches: WARNING: engine row {key} has no baseline "
                  "entry (new configuration, not compared)", file=sys.stderr)
            continue
        compared += 1
        old_v, new_v = old["hops_per_sec_M"], row["hops_per_sec_M"]
        if old_v > 0 and new_v < old_v * (1 - threshold):
            failures.append(
                f"engine_throughput {key}: "
                f"{new_v:.3f} M hops/s vs baseline {old_v:.3f} "
                f"(-{(1 - new_v / old_v) * 100:.1f}%)")

    base_micro = {b["name"]: b
                  for b in baseline["benches"]["micro_compiler"]["benchmarks"]}
    fresh_micro = {b["name"]: b
                   for b in fresh["benches"]["micro_compiler"]["benchmarks"]}
    for name in sorted(set(base_micro) - set(fresh_micro)):
        print(f"run_benches: WARNING: baseline micro benchmark '{name}' no "
              "longer produced — its regression coverage is gone",
              file=sys.stderr)
    for name, b in fresh_micro.items():
        old = base_micro.get(name)
        if old is None:
            print(f"run_benches: WARNING: micro benchmark '{name}' has no "
                  "baseline entry (not compared)", file=sys.stderr)
            continue
        compared += 1
        old_t, new_t = old["cpu_time"], b["cpu_time"]
        if old_t > 0 and new_t > old_t * (1 + threshold):
            failures.append(
                f"micro_compiler {name}: {new_t:.0f} {b['time_unit']} "
                f"vs baseline {old_t:.0f} "
                f"(+{(new_t / old_t - 1) * 100:.1f}%)")

    if compared == 0:
        fail("nothing matched the baseline — the regression gate compared "
             "zero data points (did bench names/configurations change?)")
    if failures:
        print("run_benches: REGRESSIONS (> "
              f"{threshold * 100:.0f}% vs baseline):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("run_benches: no regression beyond "
          f"{threshold * 100:.0f}% vs baseline")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bin-dir", default="build")
    ap.add_argument("--out", default="BENCH_baseline.json")
    ap.add_argument("--compare", nargs="?", const="BENCH_baseline.json",
                    default=None, metavar="BASELINE")
    ap.add_argument("--threshold", type=float, default=0.15)
    ap.add_argument("--smoke", action="store_true")
    args = ap.parse_args()

    if args.compare is not None:
        try:
            with open(args.compare) as f:
                baseline = json.load(f)
        except OSError as e:
            fail(f"cannot read baseline {args.compare}: {e}")
        fresh = collect(args.bin_dir, smoke=False)
        return compare(baseline, fresh, args.threshold)

    merged = collect(args.bin_dir, args.smoke)
    if args.smoke:
        backend_smoke(args.bin_dir)
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=1)
        f.write("\n")
    print(f"run_benches: wrote {args.out} "
          f"({len(merged['benches']['engine_throughput']['rows'])} engine "
          f"rows, "
          f"{len(merged['benches']['micro_compiler']['benchmarks'])} micro "
          f"benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
