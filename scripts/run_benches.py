#!/usr/bin/env python3
"""Runs the perf benches with fixed seeds and merges their JSON into one
baseline file, so future PRs optimize against numbers instead of vibes.

    run_benches.py [--bin-dir build] [--out BENCH_baseline.json]
    run_benches.py --compare [BASELINE] [--threshold 0.15]
    run_benches.py --smoke [--bin-dir build] [--out FILE] [--scaling-gate]

Modes
-----
default   run `bench/engine_throughput --json --seed 1 --partition
          refined`, `bench/micro_compiler --benchmark_format=json`,
          `bench/net_throughput --json`, `bench/update_churn --json`,
          and `bench/soak --json`, validate their schemas, and write
          the merged baseline JSON to --out. The soak rows carry their
          own absolute attestations (streaming verdict never a
          violation, live window bounded by its cap, retirement active
          over multi-window horizons, checker overhead <15% when the
          machine has a spare hardware thread for the collector).
--compare re-run the benches and fail (exit 1) if any engine-throughput
          row lost more than --threshold (default 15%) hops/sec OR
          scaling efficiency against the committed baseline, any
          micro benchmark's cpu_time grew by more than the threshold,
          or an update_churn storm row's p50/p99 update latency
          regressed past double the threshold and 250us of absolute
          movement (hw-thread-gated, like the engine update-lat
          columns).
          The fresh run must attest `"faults": "off"` — the gate is
          specifically the promise that the disarmed fault-injection
          hooks cost nothing on the hot path.
--smoke   tiny iteration counts (CI): engine_throughput --smoke, a small
          micro_compiler subset, schema validation only — plus an
          `eventnetc run --json` smoke on every registered backend,
          each validated through scripts/check_report.py.

--scaling-gate (any mode) additionally fails if a multi-shard
          configuration is slower than the 1-shard row of the same
          topology × path beyond --scaling-tolerance (default 10%).
          Only shard counts the machine can actually run in parallel
          (shards <= hw_threads) are enforced; the rest, and 1-thread
          machines, produce warnings — a scaling gate on a machine with
          no cores to scale onto would only measure scheduler noise.
"""

import argparse
import json
import os
import subprocess
import sys

ENGINE_ROW_KEYS = [
    "topology", "shards", "path", "partition", "delivered", "elapsed_ms",
    "hops_per_sec_M", "delivered_per_sec_M", "speedup_vs_walk",
    "speedup_vs_sim", "scaling_efficiency", "edge_cut", "edge_total",
    "queue_hwm", "freelist_growth", "update_lat_p50_us",
    "update_lat_p99_us", "definition6",
]

NET_ROW_KEYS = [
    "transport", "connections", "frames_per_conn", "injects", "replies",
    "elapsed_ms", "injects_per_sec_M", "hops_per_sec_M", "rtt_p50_us",
    "rtt_p99_us", "silent_loss", "definition6",
]

CHURN_ROW_KEYS = [
    "pipeline", "shards", "reps", "storm_packets", "learns", "fast_learns",
    "ctrl_deltas", "hops_per_sec_M", "update_storm_lat_p50_us",
    "update_storm_lat_p99_us", "p99_speedup_vs_broadcast", "definition6",
]

SOAK_ROW_KEYS = [
    "shards", "duration_s", "batches", "window", "hops_per_sec_M",
    "base_hops_per_sec_M", "checker_overhead_pct", "entries_checked",
    "chains_retired", "retired_per_sec", "events_observed", "peak_window",
    "peak_checker_kb", "definition6",
]

SMOKE_MICRO_FILTER = "BM_ParseBandwidthCap/5|BM_TableExtraction|BM_NesEnabledEvents"


def fail(msg: str) -> None:
    print(f"run_benches: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run(cmd, **kw):
    print(f"run_benches: $ {' '.join(cmd)}", file=sys.stderr)
    try:
        return subprocess.run(cmd, check=True, capture_output=True,
                              text=True, **kw)
    except FileNotFoundError:
        fail(f"binary not found: {cmd[0]} (build it first?)")
    except subprocess.CalledProcessError as e:
        fail(f"{cmd[0]} exited {e.returncode}:\n{e.stderr[-2000:]}")


def engine_throughput_once(bin_dir: str, smoke: bool,
                           partition: str) -> dict:
    cmd = [os.path.join(bin_dir, "bench", "engine_throughput"), "--json",
           "--seed", "1", "--partition", partition]
    if smoke:
        cmd.append("--smoke")
    out = run(cmd).stdout
    try:
        d = json.loads(out)
    except json.JSONDecodeError as e:
        fail(f"engine_throughput --json is not valid JSON: {e}")
    if d.get("bench") != "engine_throughput" or "rows" not in d:
        fail("engine_throughput JSON missing bench/rows")
    if "hw_threads" not in d:
        fail("engine_throughput JSON missing hw_threads")
    # The throughput numbers gate the fault-free hot path; a bench that
    # somehow ran with injection armed would compare apples to chaos.
    if d.get("faults") != "off":
        fail("engine_throughput JSON does not attest 'faults': 'off' — "
             "the regression gate only judges the fault-free path")
    if not d["rows"]:
        fail("engine_throughput produced no rows")
    for row in d["rows"]:
        for key in ENGINE_ROW_KEYS:
            if key not in row:
                fail(f"engine_throughput row missing key '{key}': {row}")
        if row["definition6"] != "ok":
            fail(f"engine_throughput row violates Definition 6: {row}")
        if row["path"] == "classifier" and row["freelist_growth"] != 0:
            fail("steady-state freelist growth on the classifier path "
                 f"(expected 0): {row}")
    return d


def engine_throughput(bin_dir: str, smoke: bool, partition: str = "refined",
                      repeat: int = 1) -> dict:
    """Runs the bench `repeat` times and keeps, per row key, the run
    whose hops/sec is the median — each kept row stays an actually
    observed, internally consistent measurement, but a single noisy
    scheduler burst no longer decides the committed baseline."""
    runs = [engine_throughput_once(bin_dir, smoke, partition)
            for _ in range(max(1, repeat))]
    if len(runs) == 1:
        return runs[0]
    by_key = {}
    for d in runs:
        for row in d["rows"]:
            by_key.setdefault(engine_key(row), []).append(row)
    merged = runs[0]
    merged["repeat"] = len(runs)
    merged["rows"] = [
        sorted(rows, key=lambda r: r["hops_per_sec_M"])[len(rows) // 2]
        for rows in by_key.values()
    ]
    # Each kept row's scaling_efficiency was computed against its own
    # run's 1-shard rate; recompute it against the *merged* 1-shard row
    # so the committed columns are mutually consistent (the gates judge
    # efficiency and hops from the same numbers).
    one = {(r["topology"], r["path"]): r["hops_per_sec_M"]
           for r in merged["rows"] if r["shards"] == 1}
    for r in merged["rows"]:
        base = one.get((r["topology"], r["path"]), 0)
        r["scaling_efficiency"] = (
            round(r["hops_per_sec_M"] / (base * r["shards"]), 3)
            if base > 0 else 0.0)
    return merged


def micro_compiler(bin_dir: str, smoke: bool) -> dict:
    cmd = [os.path.join(bin_dir, "bench", "micro_compiler"),
           "--benchmark_format=json"]
    if smoke:
        cmd.append(f"--benchmark_filter={SMOKE_MICRO_FILTER}")
    out = run(cmd).stdout
    try:
        d = json.loads(out)
    except json.JSONDecodeError as e:
        fail(f"micro_compiler JSON output is invalid: {e}")
    if "benchmarks" not in d or not d["benchmarks"]:
        fail("micro_compiler JSON has no benchmarks")
    for b in d["benchmarks"]:
        for key in ("name", "cpu_time", "time_unit"):
            if key not in b:
                fail(f"micro_compiler benchmark missing '{key}': {b}")
    return d


def net_throughput(bin_dir: str, smoke: bool) -> dict:
    cmd = [os.path.join(bin_dir, "bench", "net_throughput"), "--json",
           "--seed", "1"]
    if smoke:
        cmd.append("--smoke")
    out = run(cmd).stdout
    try:
        d = json.loads(out)
    except json.JSONDecodeError as e:
        fail(f"net_throughput --json is not valid JSON: {e}")
    if d.get("bench") != "net_throughput" or not d.get("rows"):
        fail("net_throughput JSON missing bench/rows")
    if d.get("faults") != "off":
        fail("net_throughput JSON does not attest 'faults': 'off'")
    for row in d["rows"]:
        for key in NET_ROW_KEYS:
            if key not in row:
                fail(f"net_throughput row missing key '{key}': {row}")
        if row["definition6"] != "ok":
            fail(f"net_throughput row failed its correctness sidecar "
                 f"(Definition 6 / conservation / loadgen validation): "
                 f"{row}")
        if row["silent_loss"] != 0:
            fail(f"net_throughput row lost packets silently: {row}")
    return d


def net_key(row: dict) -> tuple:
    return (row["transport"], row["connections"], row["frames_per_conn"])


def update_churn(bin_dir: str, smoke: bool, partition: str) -> dict:
    cmd = [os.path.join(bin_dir, "bench", "update_churn"), "--json",
           "--seed", "1", "--partition", partition]
    if smoke:
        cmd.append("--smoke")
    out = run(cmd).stdout
    try:
        d = json.loads(out)
    except json.JSONDecodeError as e:
        fail(f"update_churn --json is not valid JSON: {e}")
    if d.get("bench") != "update_churn" or not d.get("rows"):
        fail("update_churn JSON missing bench/rows")
    if "hw_threads" not in d:
        fail("update_churn JSON missing hw_threads")
    if d.get("faults") != "off":
        fail("update_churn JSON does not attest 'faults': 'off'")
    for row in d["rows"]:
        for key in CHURN_ROW_KEYS:
            if key not in row:
                fail(f"update_churn row missing key '{key}': {row}")
        if row["definition6"] != "ok":
            fail(f"update_churn row violates Definition 6: {row}")
        # Zero learns means the storm never fired the app's event — the
        # latency columns would silently gate nothing.
        if row["learns"] == 0:
            fail(f"update_churn row recorded no register learns: {row}")
    return d


def churn_key(row: dict) -> tuple:
    return (row["pipeline"], row["shards"])


def soak(bin_dir: str, smoke: bool) -> dict:
    cmd = [os.path.join(bin_dir, "bench", "soak"), "--json", "--seed", "1"]
    if smoke:
        cmd.append("--smoke")
    out = run(cmd).stdout
    try:
        d = json.loads(out)
    except json.JSONDecodeError as e:
        fail(f"soak --json is not valid JSON: {e}")
    if d.get("bench") != "soak" or not d.get("rows"):
        fail("soak JSON missing bench/rows")
    if "hw_threads" not in d:
        fail("soak JSON missing hw_threads")
    if d.get("faults") != "off":
        fail("soak JSON does not attest 'faults': 'off'")
    hw = d["hw_threads"]
    for row in d["rows"]:
        for key in SOAK_ROW_KEYS:
            if key not in row:
                fail(f"soak row missing key '{key}': {row}")
        verdict = str(row["definition6"])
        # Inconclusive-with-cause is an honest answer on a lossy run;
        # a violation, or an inconclusive with no recorded cause, is not.
        if verdict.startswith("VIOLATION"):
            fail(f"soak row violates Definition 6: {row}")
        if verdict.startswith("inconclusive") and ":" not in verdict:
            fail(f"soak row is inconclusive without a cause: {row}")
        if row["entries_checked"] == 0:
            fail(f"soak row streamed nothing through the checker: {row}")
        # The boundedness attestations: the live window never exceeded
        # its configured cap, and on any horizon longer than one window
        # retirement actually pruned state (a full-horizon window would
        # mean memory grows with soak length).
        if row["peak_window"] > row["window"]:
            fail(f"soak row's live window exceeded its cap: {row}")
        if (row["entries_checked"] > row["window"]
                and row["chains_retired"] == 0):
            fail(f"soak row retired nothing over a multi-window horizon "
                 f"(checker state grew with the trace): {row}")
        # The overhead gate. The collector + checker ride a dedicated
        # thread; on a machine with a spare hardware thread for it the
        # streaming check must cost <15% of hops/s. With fewer cores
        # than engine shards + collector + controller the "overhead" is
        # really core contention (a 1-thread container time-slices the
        # checker against the engine), so it only warns.
        overhead = row["checker_overhead_pct"]
        if overhead > 15.0:
            where = (f"soak @ {row['shards']} shard(s): streaming checker "
                     f"costs {overhead:.1f}% hops/s (gate: 15%)")
            if hw >= row["shards"] + 2:
                fail(where)
            print(f"run_benches: WARNING: {where} — not gated, only {hw} "
                  f"hardware thread(s) for {row['shards']} shard(s) + "
                  "collector", file=sys.stderr)
    return d


def soak_key(row: dict) -> tuple:
    return (row["shards"],)


def backend_smoke(bin_dir: str) -> None:
    """`eventnetc run --json` on every backend, checked by check_report."""
    eventnetc = os.path.join(bin_dir, "eventnetc")
    checker = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "check_report.py")
    prog = os.path.join("examples", "programs", "firewall.snk")
    topo = os.path.join("examples", "programs", "firewall.topo")
    backends = run([eventnetc, "backends"]).stdout.split()
    if not backends:
        fail("eventnetc lists no backends")
    for backend in backends:
        report = run([eventnetc, "run", prog, "--topo", topo, "--backend",
                      backend, "--seed", "7", "--json"]).stdout
        check = subprocess.run(
            [sys.executable, checker, "--backend", backend],
            input=report, capture_output=True, text=True)
        if check.returncode != 0:
            fail(f"check_report rejected backend '{backend}':\n"
                 f"{check.stderr}")
        print(f"run_benches: backend '{backend}' report ok",
              file=sys.stderr)


def collect(bin_dir: str, smoke: bool, partition: str = "refined",
            repeat: int = 1) -> dict:
    return {
        "schema": 1,
        "seed": 1,
        "smoke": smoke,
        "benches": {
            "engine_throughput": engine_throughput(bin_dir, smoke,
                                                   partition, repeat),
            "micro_compiler": micro_compiler(bin_dir, smoke),
            "net_throughput": net_throughput(bin_dir, smoke),
            "update_churn": update_churn(bin_dir, smoke, partition),
            "soak": soak(bin_dir, smoke),
        },
    }


def engine_key(row: dict) -> tuple:
    # Partition strategy is part of the row identity: comparing a modulo
    # run against a refined baseline would report the inherent strategy
    # gap as a code regression.
    return (row["topology"], row["shards"], row["path"],
            row.get("partition", ""))


def scaling_gate(engine: dict, tolerance: float) -> int:
    """Fails when a multi-shard row is slower than its 1-shard sibling.

    Enforced only for shard counts the machine can genuinely run in
    parallel (shards <= hw_threads); everything else is a warning, since
    oversubscribed threads measure the scheduler, not the partition.
    """
    hw = engine.get("hw_threads", 0)
    rows = engine["rows"]
    one = {(r["topology"], r["path"]): r["hops_per_sec_M"]
           for r in rows if r["shards"] == 1}
    failures = []
    enforced = 0
    for r in rows:
        if r["shards"] <= 1:
            continue
        base = one.get((r["topology"], r["path"]), 0)
        if base <= 0:
            continue
        ratio = r["hops_per_sec_M"] / base
        where = (f"{r['topology']} x {r['path']} @ {r['shards']} shards "
                 f"({r['partition']}): {ratio:.2f}x the 1-shard rate")
        if hw < 2 or r["shards"] > hw:
            if ratio < 1 - tolerance:
                print(f"run_benches: WARNING: {where} — not gated, only "
                      f"{hw} hardware thread(s) for {r['shards']} shards",
                      file=sys.stderr)
            continue
        enforced += 1
        if ratio < 1 - tolerance:
            failures.append(where)
    if failures:
        print("run_benches: SCALING REGRESSIONS (multi-shard slower than "
              f"1 shard beyond {tolerance * 100:.0f}%):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"run_benches: scaling gate ok ({enforced} multi-shard "
          f"configurations enforced, hw_threads={hw})")
    return 0


def compare(baseline: dict, fresh: dict, threshold: float) -> int:
    failures = []
    compared = 0
    hw = fresh["benches"]["engine_throughput"].get("hw_threads", 0)

    base_rows = {engine_key(r): r
                 for r in baseline["benches"]["engine_throughput"]["rows"]}
    fresh_rows = {engine_key(r): r
                  for r in fresh["benches"]["engine_throughput"]["rows"]}
    for key in sorted(set(base_rows) - set(fresh_rows)):
        print(f"run_benches: WARNING: baseline engine row {key} no longer "
              "produced — its regression coverage is gone", file=sys.stderr)
    for key, row in fresh_rows.items():
        old = base_rows.get(key)
        if old is None:
            print(f"run_benches: WARNING: engine row {key} has no baseline "
                  "entry (new configuration, not compared)", file=sys.stderr)
            continue
        compared += 1
        old_v, new_v = old["hops_per_sec_M"], row["hops_per_sec_M"]
        if old_v > 0 and new_v < old_v * (1 - threshold):
            failures.append(
                f"engine_throughput {key}: "
                f"{new_v:.3f} M hops/s vs baseline {old_v:.3f} "
                f"(-{(1 - new_v / old_v) * 100:.1f}%)")
        # Parallel scaling is a first-class number: losing efficiency at
        # the same raw throughput (e.g. the 1-shard row got faster but
        # multi-shard did not follow) is a regression too. Efficiency is
        # a ratio of two independently-noisy throughputs, so its
        # run-to-run variance is roughly double a single row's — gate it
        # at twice the raw threshold.
        eff_threshold = min(0.5, 2 * threshold)
        old_e = old.get("scaling_efficiency", 0)
        new_e = row.get("scaling_efficiency", 0)
        if old_e > 0 and new_e < old_e * (1 - eff_threshold):
            failures.append(
                f"engine_throughput {key}: scaling efficiency "
                f"{new_e:.3f} vs baseline {old_e:.3f} "
                f"(-{(1 - new_e / old_e) * 100:.1f}%)")
        # Update latency (event detection -> register learn). Tail
        # percentiles of a microsecond-scale quantity are far noisier
        # than throughput means — and on an oversubscribed machine
        # (shards > hw_threads) they measure when the scheduler ran the
        # controller, not the update path. So: gate only rows the
        # machine can genuinely parallelize, whose baseline has samples
        # (p50 > 0), at double the raw threshold, and never below 250us
        # of absolute movement (the gate exists to catch the update path
        # regressing to milliseconds, not scheduler jitter).
        for lat_key in ("update_lat_p50_us", "update_lat_p99_us"):
            old_l = old.get(lat_key, 0)
            new_l = row.get(lat_key, 0)
            if not (old_l > 0
                    and new_l > old_l * (1 + 2 * threshold)
                    and new_l - old_l > 250.0):
                continue
            where = (f"engine_throughput {key}: {lat_key} {new_l:.1f}us "
                     f"vs baseline {old_l:.1f}us "
                     f"(+{(new_l / old_l - 1) * 100:.1f}%)")
            if hw < 2 or row["shards"] > hw:
                print(f"run_benches: WARNING: {where} — not gated, only "
                      f"{hw} hardware thread(s) for {row['shards']} "
                      "shard(s)", file=sys.stderr)
            else:
                failures.append(where)

    # The socket rows: client-visible throughput through the real wire.
    # Loopback rates ride the scheduler (client thread vs server loop vs
    # shard workers time-slicing the same cores): measured run-to-run
    # spread on a 1-hw-thread container is ~2x on the TCP shapes (UDP
    # rows are stable). The gate exists to catch collapses — a broken
    # event loop, an accidental busy-wait — not scheduler jitter, so it
    # fires only past half the baseline rate (or looser if the raw
    # threshold is itself loose).
    base_net = baseline["benches"].get("net_throughput")
    if base_net is None:
        print("run_benches: WARNING: baseline has no net_throughput block "
              "(pre-net-backend baseline; socket rows not compared)",
              file=sys.stderr)
    else:
        net_threshold = max(0.5, 2 * threshold)
        base_rows = {net_key(r): r for r in base_net["rows"]}
        fresh_rows = {net_key(r): r
                      for r in fresh["benches"]["net_throughput"]["rows"]}
        for key in sorted(set(base_rows) - set(fresh_rows)):
            print(f"run_benches: WARNING: baseline net row {key} no longer "
                  "produced — its regression coverage is gone",
                  file=sys.stderr)
        for key, row in fresh_rows.items():
            old = base_rows.get(key)
            if old is None:
                print(f"run_benches: WARNING: net row {key} has no "
                      "baseline entry (new configuration, not compared)",
                      file=sys.stderr)
                continue
            compared += 1
            old_v = old["injects_per_sec_M"]
            new_v = row["injects_per_sec_M"]
            if old_v > 0 and new_v < old_v * (1 - net_threshold):
                failures.append(
                    f"net_throughput {key}: "
                    f"{new_v:.3f} M injects/s vs baseline {old_v:.3f} "
                    f"(-{(1 - new_v / old_v) * 100:.1f}%)")

    # The event-storm update-latency rows. Same reasoning as the
    # engine-throughput update-lat columns: microsecond-scale tail
    # percentiles are noisy and, on an oversubscribed machine, measure
    # the scheduler — so the latency gate applies only to rows the
    # machine can genuinely parallelize, at double the raw threshold,
    # and never below 250us of absolute movement. Throughput under the
    # storm gets the loose collapse-only gate (the bench measures
    # latency; hops/s is a sanity sidecar).
    base_churn = baseline["benches"].get("update_churn")
    if base_churn is None:
        print("run_benches: WARNING: baseline has no update_churn block "
              "(pre-update-pipeline baseline; storm rows not compared)",
              file=sys.stderr)
    else:
        churn_hw = fresh["benches"]["update_churn"].get("hw_threads", 0)
        base_rows = {churn_key(r): r for r in base_churn["rows"]}
        fresh_rows = {churn_key(r): r
                      for r in fresh["benches"]["update_churn"]["rows"]}
        for key in sorted(set(base_rows) - set(fresh_rows)):
            print(f"run_benches: WARNING: baseline churn row {key} no "
                  "longer produced — its regression coverage is gone",
                  file=sys.stderr)
        for key, row in fresh_rows.items():
            old = base_rows.get(key)
            if old is None:
                print(f"run_benches: WARNING: churn row {key} has no "
                      "baseline entry (new configuration, not compared)",
                      file=sys.stderr)
                continue
            compared += 1
            for lat_key in ("update_storm_lat_p50_us",
                            "update_storm_lat_p99_us"):
                old_l = old.get(lat_key, 0)
                new_l = row.get(lat_key, 0)
                if not (old_l > 0
                        and new_l > old_l * (1 + 2 * threshold)
                        and new_l - old_l > 250.0):
                    continue
                where = (f"update_churn {key}: {lat_key} {new_l:.1f}us "
                         f"vs baseline {old_l:.1f}us "
                         f"(+{(new_l / old_l - 1) * 100:.1f}%)")
                if churn_hw < 2 or row["shards"] > churn_hw:
                    print(f"run_benches: WARNING: {where} — not gated, "
                          f"only {churn_hw} hardware thread(s) for "
                          f"{row['shards']} shard(s)", file=sys.stderr)
                else:
                    failures.append(where)
            old_v = old["hops_per_sec_M"]
            new_v = row["hops_per_sec_M"]
            storm_threshold = max(0.5, 2 * threshold)
            if old_v > 0 and new_v < old_v * (1 - storm_threshold):
                failures.append(
                    f"update_churn {key}: {new_v:.3f} M hops/s vs "
                    f"baseline {old_v:.3f} "
                    f"(-{(1 - new_v / old_v) * 100:.1f}%)")

    # The soak rows: long-horizon throughput with the streaming checker
    # attached, plus the checker's peak memory. Throughput gets the
    # collapse-only gate (duration-bounded loopback runs are scheduler-
    # noisy); peak memory gets a growth gate — the streaming checker's
    # whole point is O(window) state, so its peak doubling at the same
    # window size means retirement regressed, regardless of hw threads.
    # (The absolute overhead/boundedness attestations live in soak()
    # itself and run in every mode.)
    base_soak = baseline["benches"].get("soak")
    if base_soak is None:
        print("run_benches: WARNING: baseline has no soak block "
              "(pre-streaming-checker baseline; soak rows not compared)",
              file=sys.stderr)
    else:
        soak_threshold = max(0.5, 2 * threshold)
        base_rows = {soak_key(r): r for r in base_soak["rows"]}
        fresh_rows = {soak_key(r): r
                      for r in fresh["benches"]["soak"]["rows"]}
        for key in sorted(set(base_rows) - set(fresh_rows)):
            print(f"run_benches: WARNING: baseline soak row {key} no "
                  "longer produced — its regression coverage is gone",
                  file=sys.stderr)
        for key, row in fresh_rows.items():
            old = base_rows.get(key)
            if old is None:
                print(f"run_benches: WARNING: soak row {key} has no "
                      "baseline entry (new configuration, not compared)",
                      file=sys.stderr)
                continue
            compared += 1
            old_v = old["hops_per_sec_M"]
            new_v = row["hops_per_sec_M"]
            if old_v > 0 and new_v < old_v * (1 - soak_threshold):
                failures.append(
                    f"soak {key}: {new_v:.3f} M hops/s with checker vs "
                    f"baseline {old_v:.3f} "
                    f"(-{(1 - new_v / old_v) * 100:.1f}%)")
            old_kb = old["peak_checker_kb"]
            new_kb = row["peak_checker_kb"]
            if (old["window"] == row["window"] and old_kb > 0
                    and new_kb > old_kb * 2 and new_kb - old_kb > 1024):
                failures.append(
                    f"soak {key}: peak checker memory {new_kb} KiB vs "
                    f"baseline {old_kb} KiB at the same window "
                    "(retirement regressed?)")

    base_micro = {b["name"]: b
                  for b in baseline["benches"]["micro_compiler"]["benchmarks"]}
    fresh_micro = {b["name"]: b
                   for b in fresh["benches"]["micro_compiler"]["benchmarks"]}
    for name in sorted(set(base_micro) - set(fresh_micro)):
        print(f"run_benches: WARNING: baseline micro benchmark '{name}' no "
              "longer produced — its regression coverage is gone",
              file=sys.stderr)
    for name, b in fresh_micro.items():
        old = base_micro.get(name)
        if old is None:
            print(f"run_benches: WARNING: micro benchmark '{name}' has no "
                  "baseline entry (not compared)", file=sys.stderr)
            continue
        compared += 1
        old_t, new_t = old["cpu_time"], b["cpu_time"]
        if old_t > 0 and new_t > old_t * (1 + threshold):
            failures.append(
                f"micro_compiler {name}: {new_t:.0f} {b['time_unit']} "
                f"vs baseline {old_t:.0f} "
                f"(+{(new_t / old_t - 1) * 100:.1f}%)")

    if compared == 0:
        fail("nothing matched the baseline — the regression gate compared "
             "zero data points (did bench names/configurations change?)")
    if failures:
        print("run_benches: REGRESSIONS (> "
              f"{threshold * 100:.0f}% vs baseline):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("run_benches: no regression beyond "
          f"{threshold * 100:.0f}% vs baseline")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bin-dir", default="build")
    ap.add_argument("--out", default="BENCH_baseline.json")
    ap.add_argument("--compare", nargs="?", const="BENCH_baseline.json",
                    default=None, metavar="BASELINE")
    ap.add_argument("--threshold", type=float, default=0.15)
    ap.add_argument("--smoke", action="store_true")
    ap.add_argument("--partition", default="refined",
                    choices=["modulo", "contiguous", "refined"])
    ap.add_argument("--scaling-gate", action="store_true")
    ap.add_argument("--scaling-tolerance", type=float, default=0.10)
    ap.add_argument("--repeat", type=int, default=1,
                    help="engine_throughput runs to take row-wise "
                         "medians over (noise robustness)")
    args = ap.parse_args()

    if args.compare is not None:
        try:
            with open(args.compare) as f:
                baseline = json.load(f)
        except OSError as e:
            fail(f"cannot read baseline {args.compare}: {e}")
        fresh = collect(args.bin_dir, smoke=False, partition=args.partition,
                        repeat=args.repeat)
        rc = compare(baseline, fresh, args.threshold)
        if args.scaling_gate:
            rc |= scaling_gate(fresh["benches"]["engine_throughput"],
                               args.scaling_tolerance)
        return rc

    merged = collect(args.bin_dir, args.smoke, partition=args.partition,
                     repeat=args.repeat)
    if args.smoke:
        backend_smoke(args.bin_dir)
    rc = 0
    if args.scaling_gate:
        rc = scaling_gate(merged["benches"]["engine_throughput"],
                          args.scaling_tolerance)
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=1)
        f.write("\n")
    print(f"run_benches: wrote {args.out} "
          f"({len(merged['benches']['engine_throughput']['rows'])} engine "
          f"rows, "
          f"{len(merged['benches']['micro_compiler']['benchmarks'])} micro "
          f"benchmarks, "
          f"{len(merged['benches']['update_churn']['rows'])} storm rows, "
          f"{len(merged['benches']['soak']['rows'])} soak rows)")
    return rc


if __name__ == "__main__":
    sys.exit(main())
