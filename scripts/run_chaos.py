#!/usr/bin/env python3
"""Chaos smoke sweep: every committed fault plan x every fault-capable
backend x every overload policy, through `eventnetc run --json`, each
report validated by scripts/check_report.py.

    run_chaos.py [--bin-dir build] [--seeds 7,23] [--shards 3]

Beyond per-run validation the sweep checks the harness's two core
promises end to end:

  * determinism — re-running a (plan, backend, policy) cell with the
    same seed must reproduce a byte-identical fault ledger, observed
    here through the report's ledger_sha digest;
  * cross-substrate agreement — for plans whose faults are all
    content-addressed link faults (no controller storms, which only
    the engine ledgers), the engine and sim runs of the same plan must
    agree on the ledger digest.

Exits non-zero on the first violation.
"""

import argparse
import json
import os
import subprocess
import sys

BACKENDS = ["engine", "sim"]
POLICIES = ["block", "shed-oldest", "shed-newest"]


def fail(msg: str) -> None:
    print(f"run_chaos: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run(cmd):
    try:
        return subprocess.run(cmd, check=True, capture_output=True,
                              text=True)
    except FileNotFoundError:
        fail(f"binary not found: {cmd[0]} (build it first?)")
    except subprocess.CalledProcessError as e:
        fail(f"{' '.join(cmd)} exited {e.returncode}:\n{e.stderr[-2000:]}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bin-dir", default="build")
    ap.add_argument("--seeds", default="7,23",
                    help="comma-separated workload seeds (each seed "
                         "changes the packet population the plan's "
                         "content-addressed verdicts apply to)")
    ap.add_argument("--shards", default="3")
    ap.add_argument("--plans-dir", default=os.path.join("examples", "faults"))
    args = ap.parse_args()

    eventnetc = os.path.join(args.bin_dir, "eventnetc")
    checker = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "check_report.py")
    prog = os.path.join("examples", "programs", "firewall.snk")
    topo = os.path.join("examples", "programs", "firewall.topo")

    plans = sorted(
        os.path.join(args.plans_dir, f)
        for f in os.listdir(args.plans_dir) if f.endswith(".json"))
    if not plans:
        fail(f"no fault plans found in {args.plans_dir}")

    seeds = [s.strip() for s in args.seeds.split(",") if s.strip()]
    cells = 0
    for plan_path in plans:
        plan = json.load(open(plan_path))
        # Controller storms are engine-only ledger records, so only
        # storm-free plans can promise engine == sim digests.
        cross_substrate = not plan.get("ctrl_storm_repeat", 0)
        # A queue clamp lets shed policies discard packets before they
        # reach an egress fault site, so only clamp-free plans promise a
        # policy-independent ledger.
        policy_invariant = not plan.get("queue_capacity_clamp", 0)
        for seed in seeds:
            shas = {}  # backend -> ledger_sha of the first policy's run
            for backend in BACKENDS:
                for policy in POLICIES:
                    cmd = [eventnetc, "run", prog, "--topo", topo,
                           "--backend", backend, "--seed", seed,
                           "--shards", args.shards, "--faults", plan_path,
                           "--overload", policy, "--fail-on-drop", "--json"]
                    report = run(cmd).stdout
                    check = subprocess.run(
                        [sys.executable, checker, "--backend", backend,
                         "--faults"],
                        input=report, capture_output=True, text=True)
                    if check.returncode != 0:
                        fail(f"check_report rejected {plan_path} x {backend}"
                             f" x {policy} seed {seed}:\n{check.stderr}")
                    sha = json.loads(report)["faults"]["ledger_sha"]
                    cell = (f"{os.path.basename(plan_path)} x {backend} "
                            f"x {policy} x seed {seed}")

                    # Determinism: the same cell re-run must reproduce the
                    # ledger byte for byte.
                    again = json.loads(run(cmd).stdout)
                    if again["faults"]["ledger_sha"] != sha:
                        fail(f"{cell}: ledger digest changed across "
                             f"identical runs ({sha} vs "
                             f"{again['faults']['ledger_sha']})")

                    # Link-fault verdicts are content-addressed, so the
                    # ledger must not depend on the overload policy either.
                    if policy_invariant and backend in shas \
                            and shas[backend] != sha:
                        fail(f"{cell}: ledger digest {sha} differs from "
                             f"{shas[backend]} under another overload "
                             "policy")
                    shas[backend] = sha
                    cells += 1
                    print(f"run_chaos: ok: {cell} "
                          f"ledger_sha={sha or '(empty)'}")

            if cross_substrate and shas.get("engine") != shas.get("sim"):
                fail(f"{plan_path} seed {seed}: engine ledger "
                     f"{shas.get('engine')} != sim ledger "
                     f"{shas.get('sim')} for a storm-free plan")

    print(f"run_chaos: all {cells} cells passed "
          f"({len(plans)} plans x {len(seeds)} seeds x {len(BACKENDS)} "
          f"backends x {len(POLICIES)} policies)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
