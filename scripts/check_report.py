#!/usr/bin/env python3
"""Validates an `eventnetc run --json` report (the CI smoke check).

Reads the JSON report from stdin (or a file argument), checks the shape
the façade promises, and requires the run to have actually moved packets
and passed the Definition 6 consistency check. Exits non-zero with a
message on the first violation.

Usage:  eventnetc run prog.snk --topo net.topo --json | check_report.py
        check_report.py report.json [--backend engine] [--faults]
        check_report.py report.json --streaming

--faults additionally requires the report's fault block to be enabled
(the chaos sweep passes it so a typo'd --faults flag can't silently
validate a fault-free run).

--streaming requires the streaming Definition 6 checker to have run
(the CI soak passes it after `eventnetc serve --duration ...
--stream-check`): the streaming_check block must be enabled, must have
ingested entries, must attest bounded state (peak_window <= window,
peak_resident_bytes recorded), and its verdict must be "ok" or an
inconclusive that names its cause — never "violated", never an
unexplained inconclusive. A streaming-only run retains no batch trace
and skips the batch oracle, so --streaming relaxes the trace_entries /
consistency.checked requirements that batch reports must meet.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    args = sys.argv[1:]
    expect_backend = None
    if "--backend" in args:
        i = args.index("--backend")
        if i + 1 >= len(args):
            fail("--backend needs a value")
        expect_backend = args[i + 1]
        del args[i : i + 2]
    expect_faults = "--faults" in args
    if expect_faults:
        args.remove("--faults")
    expect_streaming = "--streaming" in args
    if expect_streaming:
        args.remove("--streaming")

    text = open(args[0]).read() if args else sys.stdin.read()
    try:
        r = json.loads(text)
    except json.JSONDecodeError as e:
        fail(f"not valid JSON: {e}")

    required = [
        "backend", "seed", "shards", "classifier", "batch", "partition",
        "edge_cut", "edge_total", "injected", "delivered", "dropped",
        "switch_hops", "events_detected", "config_transitions",
        "elapsed_sec", "trace_entries", "shard_detail", "consistency",
        "update_lat_samples", "update_lat_p50", "update_lat_p90",
        "update_lat_p99", "update_lat_max", "queue_dwell",
        "batch_occupancy", "drop_audit", "obs_trace_recorded",
        "obs_trace_dropped", "overload", "faults", "net",
        "streaming_check",
    ]
    for key in required:
        if key not in r:
            fail(f"missing key '{key}'")

    audit = r["drop_audit"]
    for key in ("injected", "delivered", "dropped", "silent_loss", "ok"):
        if key not in audit:
            fail(f"drop_audit missing '{key}'")
    if audit["silent_loss"] > 0 or not audit["ok"]:
        fail(
            f"drop audit: {audit['silent_loss']} packet(s) silently lost "
            f"(injected={audit['injected']} delivered={audit['delivered']} "
            f"dropped={audit['dropped']})"
        )

    if r["overload"] not in ("block", "shed-oldest", "shed-newest", ""):
        fail(f"unknown overload policy {r['overload']!r}")

    faults = r["faults"]
    fault_keys = ("enabled", "drops", "dups", "delays", "shed", "stalls",
                  "storms", "dup_delivered", "dup_dropped", "ledger_entries",
                  "ledger_sha")
    for key in fault_keys:
        if key not in faults:
            fail(f"faults block missing '{key}'")
    if expect_faults and not faults["enabled"]:
        fail("expected a fault-injected run but faults.enabled is false")
    if not faults["enabled"]:
        for key in fault_keys[1:-1]:
            if faults[key] != 0:
                fail(f"faults disabled but faults.{key} = {faults[key]}")
    else:
        # Every ledgered link fault is one record; the engine additionally
        # ledgers controller storm events, so >= rather than ==.
        floor = faults["drops"] + faults["dups"] + faults["delays"]
        if faults["ledger_entries"] < floor:
            fail(
                f"ledger has {faults['ledger_entries']} entries but "
                f"{floor} ledgered faults were injected"
            )
        if faults["ledger_entries"] > 0 and not faults["ledger_sha"]:
            fail("non-empty fault ledger but empty ledger_sha")
        if faults["dup_delivered"] + faults["dup_dropped"] > faults["dups"]:
            fail(
                f"dup outcomes ({faults['dup_delivered']} delivered + "
                f"{faults['dup_dropped']} dropped) exceed injected dups "
                f"({faults['dups']})"
            )

    net = r["net"]
    net_keys = ("enabled", "poller", "udp", "port", "connections",
                "accepted", "closed", "protocol_errors", "frames_in",
                "frames_out", "bytes_in", "bytes_out", "frames_injected",
                "delivery_frames", "replies_out", "reassembly_partial",
                "backpressure_shed", "ring_shed", "delivery_unroutable",
                "non_net_deliveries", "barriers_acked", "udp_datagrams",
                "client_delivers", "client_replies", "rtt_samples")
    for key in net_keys:
        if key not in net:
            fail(f"net block missing '{key}'")
    if r["backend"] == "net" and not net["enabled"]:
        fail("net backend report has net.enabled false")
    if net["enabled"]:
        if net["frames_injected"] <= 0:
            fail("net run injected no frames through the socket path")
        # Inbound traffic can never undercount the echoes the server
        # produced from it (Hello/Barrier/Bye frames only add to it).
        if net["frames_in"] < net["replies_out"]:
            fail(
                f"net frames_in ({net['frames_in']}) below replies_out "
                f"({net['replies_out']}) — the server echoed more than "
                "it ever received"
            )
        if net["port"] <= 0 or not net["poller"]:
            fail("net block missing bound port / poller name")
        # Delivery conservation: every engine delivery is routed to a
        # session, shed at the ring, unroutable, or non-net — on every
        # overload policy (sheds are counted, not silent).
        routed = (net["delivery_frames"] + net["ring_shed"]
                  + net["delivery_unroutable"] + net["non_net_deliveries"])
        if routed != r["delivered"]:
            fail(
                f"net delivery conservation broken: {routed} accounted "
                f"(routed+shed+unroutable+non_net) vs {r['delivered']} "
                "delivered by the engine"
            )
    else:
        for key in ("frames_in", "frames_out", "frames_injected",
                    "delivery_frames", "accepted"):
            if net[key] != 0:
                fail(f"net disabled but net.{key} = {net[key]}")

    for block in ("queue_dwell", "batch_occupancy"):
        b = r[block]
        for key in ("samples", "mean", "p50", "p90", "p99", "max"):
            if key not in b:
                fail(f"{block} missing '{key}'")
        if b["samples"] > 0 and b["max"] + 1e-12 < b["p99"]:
            fail(f"{block}: max ({b['max']}) below p99 ({b['p99']})")
    if r["update_lat_samples"] > 0 and (
        r["update_lat_max"] + 1e-12 < r["update_lat_p99"]
        or r["update_lat_p99"] + 1e-12 < r["update_lat_p50"]
    ):
        fail("update latency percentiles are not monotone")

    if expect_backend is not None and r["backend"] != expect_backend:
        fail(f"backend is '{r['backend']}', expected '{expect_backend}'")

    if not isinstance(r["shard_detail"], list):
        fail("'shard_detail' should be a list")
    if r["backend"] == "engine" and len(r["shard_detail"]) != r["shards"]:
        fail(
            f"engine report has {len(r['shard_detail'])} shard_detail "
            f"entries for {r['shards']} shards"
        )
    for d in r["shard_detail"]:
        for key in ("shard", "switches", "processed", "queue_high_water",
                    "dropped", "transitions", "shed"):
            if key not in d:
                fail(f"shard_detail entry missing '{key}': {d}")
    if r["backend"] == "engine":
        if r["partition"] not in ("modulo", "contiguous", "refined"):
            fail(f"engine report has unknown partition {r['partition']!r}")
        placed = sum(d["switches"] for d in r["shard_detail"])
        if placed <= 0:
            fail("engine shard_detail places no switches on any shard")
        if r["edge_cut"] > r["edge_total"]:
            fail(
                f"edge_cut ({r['edge_cut']}) exceeds edge_total "
                f"({r['edge_total']})"
            )
    # A streaming-only run deliberately retains no batch trace (that is
    # the point: O(window) memory over an unbounded horizon), so
    # trace_entries may legitimately be 0 under --streaming.
    positive = ["injected", "delivered", "switch_hops"]
    if not expect_streaming:
        positive.append("trace_entries")
    for key in positive:
        if not isinstance(r[key], int) or r[key] <= 0:
            fail(f"'{key}' should be a positive integer, got {r[key]!r}")
    if r["delivered"] + r["dropped"] < r["injected"]:
        fail(
            f"delivered ({r['delivered']}) + dropped ({r['dropped']}) "
            f"< injected ({r['injected']})"
        )

    sc = r["streaming_check"]
    if not isinstance(sc, dict) or "enabled" not in sc:
        fail("streaming_check block is malformed")
    if expect_streaming and not sc["enabled"]:
        fail("expected a streaming-checked run but streaming_check.enabled "
             "is false")
    if sc["enabled"]:
        sc_keys = ("verdict", "reason", "window", "entries_ingested",
                   "entries_checked", "entries_pruned", "trees_retired",
                   "chains_retired", "events_observed", "peak_window",
                   "peak_resident_bytes", "stream_shed",
                   "differential_ran", "differential_matched")
        for key in sc_keys:
            if key not in sc:
                fail(f"streaming_check missing '{key}'")
        verdict = sc["verdict"]
        if verdict == "violated":
            fail(f"streaming Definition 6 VIOLATED: "
                 f"{sc.get('reason') or '(no reason)'}")
        if verdict == "inconclusive" and not sc["reason"]:
            fail("streaming verdict is inconclusive without a cause — an "
                 "unexplained non-answer must never pass CI")
        if verdict not in ("ok", "inconclusive"):
            fail(f"unknown streaming verdict {verdict!r}")
        # The boundedness attestation: the live window respected its cap
        # and the checker measured its own footprint.
        if sc["window"] <= 0 or sc["peak_window"] > sc["window"]:
            fail(f"streaming live window {sc['peak_window']} exceeds its "
                 f"cap {sc['window']}")
        if sc["entries_checked"] > sc["entries_ingested"]:
            fail("streaming checked more entries than it ingested")
        if sc["entries_checked"] > 0 and sc["peak_resident_bytes"] <= 0:
            fail("streaming checker checked entries but recorded no peak "
                 "resident bytes")
        # Shed stream items mean the checker saw a gappy trace; a clean
        # pass over a gappy trace is a contradiction.
        if sc["stream_shed"] > 0 and verdict == "ok":
            fail(f"{sc['stream_shed']} stream items were shed but the "
                 "verdict is a clean pass")
        if expect_streaming and sc["entries_checked"] <= 0:
            fail("streaming checker ingested no entries — the soak "
                 "produced no checkable traffic")
        if sc["differential_ran"] and not sc["differential_matched"]:
            fail("streaming and batch Definition 6 verdicts disagree")

    c = r["consistency"]
    if not isinstance(c, dict):
        fail("consistency block is malformed")
    if not c.get("checked"):
        # Only a streaming-checked run may skip the batch oracle.
        if not (expect_streaming and sc["enabled"]):
            fail("consistency was not checked")
    elif not c.get("correct"):
        fail(f"Definition 6 VIOLATED: {c.get('reason', '(no reason)')}")

    how = (f"streaming={sc['verdict']}" if sc.get("enabled")
           else "consistent=true")
    print(
        f"check_report: OK: {r['backend']} seed={r['seed']} "
        f"injected={r['injected']} delivered={r['delivered']} "
        f"{how}"
    )


if __name__ == "__main__":
    main()
