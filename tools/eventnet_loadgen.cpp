//===- tools/eventnet_loadgen.cpp - Socket load generator -----------------===//
//
// Drives an `eventnetc serve` instance (or any net::Server) with many
// concurrent Wire-framed connections: open-loop bursts of echo requests,
// Barrier-fenced phases, RTT sampling, and validation of the echoed
// deliveries. Prints a summary (or --json) and exits nonzero if the run
// failed (connect failures, protocol errors, sequence mismatches, or
// timeout).
//
// Usage:
//   eventnet_loadgen --port N [--host H] [--udp] [--connections N]
//                    [--frames N] [--burst N] [--phases N]
//                    [--rtt-every N] [--timeout-ms N] [--json]
//
//===----------------------------------------------------------------------===//

#include "net/Loadgen.h"
#include "net/Signal.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace eventnet;

namespace {

int usage() {
  fprintf(stderr,
          "usage: eventnet_loadgen --port N [options]\n"
          "  --host H         server address (default 127.0.0.1)\n"
          "  --port N         server TCP/UDP port (required)\n"
          "  --udp            speak UDP instead of TCP\n"
          "  --connections N  concurrent connections (default 8)\n"
          "  --frames N       echo requests per connection (default 128)\n"
          "  --burst N        frames queued per connection per pass "
          "(default 32)\n"
          "  --phases N       barrier-fenced rounds (default 1)\n"
          "  --seed S         workload seed (default 1)\n"
          "  --rtt-every N    sample every Nth round trip (default 16, "
          "0 off)\n"
          "  --timeout-ms N   abort after N ms (default 60000)\n"
          "  --connect-timeout-ms N  retry refused connects with backoff\n"
          "                   for up to N ms before failing (default 5000)\n"
          "  --json           machine-readable output\n");
  return 2;
}

bool parseU64(const char *V, uint64_t &Out) {
  if (!V || *V == '\0' || *V == '-')
    return false;
  char *End = nullptr;
  Out = strtoull(V, &End, 10);
  return *End == '\0';
}

} // namespace

int main(int argc, char **argv) {
  net::LoadgenConfig C;
  bool Json = false;
  bool HavePort = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Val = [&]() -> const char * { return ++I < argc ? argv[I] : nullptr; };
    uint64_t N = 0;
    if (Arg == "--host") {
      const char *V = Val();
      if (!V)
        return usage();
      C.Host = V;
    } else if (Arg == "--port" && parseU64(Val(), N) && N <= 65535) {
      C.Port = static_cast<uint16_t>(N);
      HavePort = true;
    } else if (Arg == "--udp") {
      C.Udp = true;
    } else if (Arg == "--connections" && parseU64(Val(), N) && N >= 1) {
      C.Connections = static_cast<unsigned>(N);
    } else if (Arg == "--frames" && parseU64(Val(), N) && N >= 1) {
      C.FramesPerConn = N;
    } else if (Arg == "--burst" && parseU64(Val(), N) && N >= 1) {
      C.Burst = static_cast<unsigned>(N);
    } else if (Arg == "--phases" && parseU64(Val(), N) && N >= 1) {
      C.Phases = static_cast<unsigned>(N);
    } else if (Arg == "--seed" && parseU64(Val(), N)) {
      C.Seed = N;
    } else if (Arg == "--rtt-every" && parseU64(Val(), N)) {
      C.RttSampleEvery = static_cast<unsigned>(N);
    } else if (Arg == "--timeout-ms" && parseU64(Val(), N) && N >= 1) {
      C.TimeoutMs = static_cast<unsigned>(N);
    } else if (Arg == "--connect-timeout-ms" && parseU64(Val(), N) &&
               N >= 1) {
      C.ConnectTimeoutMs = static_cast<unsigned>(N);
    } else if (Arg == "--json") {
      Json = true;
    } else {
      return usage();
    }
  }
  if (!HavePort)
    return usage();

  // SIGINT aborts the run but still prints what was measured.
  net::installShutdownHandlers();
  net::LoadgenStats S = net::runLoadgen(C, &net::shutdownRequested());

  double Rate = S.ElapsedSec > 0 ? S.InjectsSent / S.ElapsedSec : 0;
  if (Json) {
    printf("{\"connections\": %llu, \"connect_retries\": %llu, "
           "\"connect_failed\": %llu, "
           "\"injects_sent\": %llu, \"frames_sent\": %llu, "
           "\"delivers\": %llu, \"replies\": %llu, "
           "\"barrier_acks\": %llu, \"seq_mismatches\": %llu, "
           "\"protocol_errors\": %llu, \"bytes_sent\": %llu, "
           "\"bytes_received\": %llu, \"elapsed_sec\": %.6f, "
           "\"injects_per_sec\": %.0f, \"timed_out\": %s, "
           "\"rtt_samples\": %llu, \"rtt_p50_us\": %.3f, "
           "\"rtt_p99_us\": %.3f, \"rtt_max_us\": %.3f, \"ok\": %s}\n",
           (unsigned long long)S.Connected,
           (unsigned long long)S.ConnectRetries,
           (unsigned long long)S.ConnectFailed,
           (unsigned long long)S.InjectsSent,
           (unsigned long long)S.FramesSent, (unsigned long long)S.Delivers,
           (unsigned long long)S.Replies, (unsigned long long)S.BarrierAcks,
           (unsigned long long)S.SeqMismatches,
           (unsigned long long)S.ProtocolErrors,
           (unsigned long long)S.BytesSent,
           (unsigned long long)S.BytesReceived, S.ElapsedSec, Rate,
           S.TimedOut ? "true" : "false",
           (unsigned long long)S.RttNs.TotalCount,
           S.RttNs.percentile(0.5) / 1e3, S.RttNs.percentile(0.99) / 1e3,
           S.RttNs.Max / 1e3, S.ok() ? "true" : "false");
  } else {
    printf("loadgen: %llu/%u connections %s, %u phase(s)\n",
           (unsigned long long)S.Connected, C.Connections,
           C.Udp ? "udp" : "tcp", C.Phases);
    if (S.ConnectRetries)
      printf("  connect:  %llu retr%s with backoff (budget %u ms)\n",
             (unsigned long long)S.ConnectRetries,
             S.ConnectRetries == 1 ? "y" : "ies", C.ConnectTimeoutMs);
    printf("  sent:     %llu injects (%llu frames, %llu bytes)\n",
           (unsigned long long)S.InjectsSent,
           (unsigned long long)S.FramesSent,
           (unsigned long long)S.BytesSent);
    printf("  received: %llu delivers (%llu replies), %llu barrier acks, "
           "%llu bytes\n",
           (unsigned long long)S.Delivers, (unsigned long long)S.Replies,
           (unsigned long long)S.BarrierAcks,
           (unsigned long long)S.BytesReceived);
    printf("  rate:     %.0f injects/s over %.3f s\n", Rate, S.ElapsedSec);
    if (S.RttNs.TotalCount)
      printf("  rtt:      p50 %.1f us, p99 %.1f us, max %.1f us "
             "(%llu samples)\n",
             S.RttNs.percentile(0.5) / 1e3, S.RttNs.percentile(0.99) / 1e3,
             S.RttNs.Max / 1e3, (unsigned long long)S.RttNs.TotalCount);
    if (S.ConnectFailed || S.ProtocolErrors || S.SeqMismatches || S.TimedOut)
      printf("  FAILED:   %llu connect failures (after %llu retries over "
             "%u ms), %llu protocol errors, %llu seq mismatches%s\n",
             (unsigned long long)S.ConnectFailed,
             (unsigned long long)S.ConnectRetries, C.ConnectTimeoutMs,
             (unsigned long long)S.ProtocolErrors,
             (unsigned long long)S.SeqMismatches,
             S.TimedOut ? ", timed out" : "");
  }
  return S.ok() ? 0 : 1;
}
