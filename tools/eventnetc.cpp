//===- tools/eventnetc.cpp - Stateful NetKAT compiler driver --------------===//
//
// Subcommand front end over the eventnet::api façade. The moral
// equivalent of the paper's prototype tool (minus the Mininet script
// generation, which the simulator replaces).
//
// Usage:
//   eventnetc compile <program.snk> --topo <topo.txt>
//             [--dump-ets] [--dump-nes] [--dump-tables] [--share]
//             [--stats] [--json]
//   eventnetc run <program.snk> --topo <topo.txt>
//             [--backend machine|sim|engine] [--seed S] [--shards N]
//             [--workload ping|churn] [--churn-rate N]
//             [--phases N] [--per-phase N] [--classifier on|off]
//             [--batch N] [--partition modulo|contiguous|refined]
//             [--no-check] [--json]
//             [--stream-check] [--check-window N] [--check-differential]
//             [--trace out.json] [--latency-hist]
//             [--metrics-interval MS] [--metrics-out FILE]
//             [--faults plan.json] [--overload block|shed-oldest|shed-newest]
//             [--fail-on-drop]
//   eventnetc check <program.snk> --topo <topo.txt>
//             (run's options; reports only the Definition 6 verdict and
//              exits 8 on violation)
//   eventnetc serve <program.snk> --topo <topo.txt>
//             [--port N] [--bind ADDR] [--udp on|off] [--shards N]
//             [--duration SEC] [--stream-check] [--check-window N]
//             (engine options; serves real Wire-framed TCP/UDP clients
//              until SIGINT/SIGTERM — or for --duration seconds — then
//              drains and reports — exit 0 on a clean drain, 10 on
//              silent loss)
//   eventnetc backends
//
// --quiet suppresses stderr notes/warnings; -v adds progress notes.
//
// Every failure class has a distinct exit code (api::Status::exitCode):
//   0 ok, 2 usage/invalid argument, 3 unreadable file, 4 program parse
//   error, 5 topology parse error, 6 compile error (incl. locality),
//   7 backend run error, 8 Definition 6 violation, 10 silent loss under
//   --fail-on-drop.
//
//===----------------------------------------------------------------------===//

#include "api/Api.h"
#include "engine/Engine.h"
#include "engine/Partition.h"
#include "faults/FaultPlan.h"
#include "net/Signal.h"
#include "obs/Perfetto.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

using namespace eventnet;

namespace {

int usage() {
  fprintf(stderr,
          "usage: eventnetc <command> <program.snk> --topo <topo.txt> "
          "[options]\n"
          "commands:\n"
          "  compile   compile and print artifacts\n"
          "            [--dump-ets] [--dump-nes] [--dump-tables] [--share]\n"
          "            [--stats] [--json]\n"
          "  run       compile, execute a seeded workload, report\n"
          "            [--backend machine|sim|engine|net] [--seed S]\n"
          "            [--workload ping|churn] [--churn-rate N]\n"
          "            [--shards N] [--phases N] [--per-phase N]\n"
          "            [--net-connections N] [--net-udp]\n"
          "            [--classifier on|off] [--batch N]\n"
          "            [--partition modulo|contiguous|refined]\n"
          "            [--no-check] [--json]\n"
          "            [--stream-check] [--check-window N]\n"
          "            [--check-differential]\n"
          "            [--trace out.json] [--latency-hist]\n"
          "            [--metrics-interval MS] [--metrics-out FILE]\n"
          "            [--faults plan.json]\n"
          "            [--overload block|shed-oldest|shed-newest]\n"
          "            [--fail-on-drop]\n"
          "  check     like run, but print only the Definition 6 verdict\n"
          "  serve     serve real Wire-framed TCP/UDP clients until\n"
          "            SIGINT/SIGTERM (or --duration SEC), then drain\n"
          "            and report\n"
          "            [--port N] [--bind ADDR] [--udp on|off]\n"
          "            [--duration SEC] [--stream-check] [--check-window N]\n"
          "            (+ run's engine options; exit 10 on silent loss)\n"
          "  backends  list registered backends\n"
          "global: --quiet (no stderr notes), -v (progress notes)\n");
  return 2;
}

/// Stderr verbosity: 0 with --quiet, 1 by default, 2 with -v. Level-1
/// notes are warnings worth seeing unprompted (dropped trace events);
/// level-2 notes narrate progress.
int Verbosity = 1;

void note(int Level, const char *Fmt, ...) {
  if (Verbosity < Level)
    return;
  va_list Ap;
  va_start(Ap, Fmt);
  fprintf(stderr, "eventnetc: ");
  vfprintf(stderr, Fmt, Ap);
  fprintf(stderr, "\n");
  va_end(Ap);
}

int fail(const api::Status &St) {
  fprintf(stderr, "error: %s\n", St.str().c_str());
  return St.exitCode();
}

/// Options shared by every compile-then-act command.
struct CliArgs {
  std::string ProgramPath, TopoPath;
  // compile artifacts
  bool DumpEts = false, DumpNes = false, DumpTables = false, Share = false;
  bool Stats = false, Json = false;
  // run workload
  std::string Backend = "engine";
  api::RunOptions Run;
  // serve listeners
  api::ServeNetOptions Serve;
  // observability outputs
  std::string TracePath; ///< Perfetto JSON destination ("" = no trace)
  // fault injection / robustness gates
  std::string FaultsPath; ///< fault plan JSON ("" = no plan)
  bool FailOnDrop = false; ///< exit 10 if the drop audit finds silent loss
};

/// Parses argv[2..]; returns an InvalidArgument Status on malformed
/// input. One parser serves every command (shared positional/--topo/
/// --json handling), but artifact flags are only accepted by `compile`
/// and workload flags only by `run`/`check` — a flag for the wrong
/// command is an error, not a silent no-op.
api::Status parseArgs(int argc, char **argv, const std::string &Cmd,
                      CliArgs &A) {
  bool IsCompile = Cmd == "compile";
  bool IsServe = Cmd == "serve";
  auto Bad = [](std::string Msg) {
    return api::Status::error(api::Code::InvalidArgument, std::move(Msg));
  };
  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    auto TakeValue = [&]() -> const char * {
      return ++I < argc ? argv[I] : nullptr;
    };
    auto WrongCommand = [&]() {
      return Bad(Arg + " does not apply to the " + Cmd + " command");
    };
    if (Arg == "--topo") {
      const char *V = TakeValue();
      if (!V)
        return Bad("--topo needs a file argument");
      A.TopoPath = V;
    } else if (Arg == "--dump-ets" || Arg == "--dump-nes" ||
               Arg == "--dump-tables" || Arg == "--share" ||
               Arg == "--stats") {
      if (!IsCompile)
        return WrongCommand();
      A.DumpEts |= Arg == "--dump-ets";
      A.DumpNes |= Arg == "--dump-nes";
      A.DumpTables |= Arg == "--dump-tables";
      A.Share |= Arg == "--share";
      A.Stats |= Arg == "--stats";
    } else if (Arg == "--json") {
      A.Json = true;
    } else if (Arg == "--no-check") {
      if (IsCompile)
        return WrongCommand();
      if (Cmd == "check")
        return Bad("--no-check contradicts the check command");
      A.Run.checkConsistency(false);
    } else if (Arg == "--backend") {
      if (IsCompile || IsServe)
        return WrongCommand();
      const char *V = TakeValue();
      if (!V)
        return Bad("--backend needs a name argument");
      A.Backend = V;
    } else if (Arg == "--net-udp") {
      if (IsCompile || IsServe)
        return WrongCommand();
      A.Run.netUdp(true);
    } else if (Arg == "--net-connections") {
      if (IsCompile || IsServe)
        return WrongCommand();
      const char *V = TakeValue();
      char *End = nullptr;
      unsigned long long N = V ? strtoull(V, &End, 10) : 0;
      if (!V || *V == '\0' || *V == '-' || *End != '\0' || N < 1 ||
          N > 65536)
        return Bad("--net-connections needs a count in [1, 65536]");
      A.Run.netConnections(static_cast<unsigned>(N));
    } else if (Arg == "--port") {
      if (!IsServe)
        return WrongCommand();
      const char *V = TakeValue();
      char *End = nullptr;
      unsigned long long N = V ? strtoull(V, &End, 10) : 0;
      if (!V || *V == '\0' || *V == '-' || *End != '\0' || N > 65535)
        return Bad("--port needs a port number in [0, 65535]");
      A.Serve.Port = static_cast<uint16_t>(N);
    } else if (Arg == "--bind") {
      if (!IsServe)
        return WrongCommand();
      const char *V = TakeValue();
      if (!V)
        return Bad("--bind needs an address argument");
      A.Serve.BindAddr = V;
    } else if (Arg == "--udp") {
      if (!IsServe)
        return WrongCommand();
      const char *V = TakeValue();
      if (!V || (strcmp(V, "on") != 0 && strcmp(V, "off") != 0))
        return Bad("--udp needs 'on' or 'off'");
      A.Serve.Udp = strcmp(V, "on") == 0;
    } else if (Arg == "--stream-check") {
      if (IsCompile)
        return WrongCommand();
      A.Run.streamingCheck(true);
    } else if (Arg == "--check-differential") {
      if (IsCompile)
        return WrongCommand();
      A.Run.checkDifferential(true);
    } else if (Arg == "--check-window") {
      if (IsCompile)
        return WrongCommand();
      const char *V = TakeValue();
      char *End = nullptr;
      unsigned long long N = V ? strtoull(V, &End, 10) : 0;
      if (!V || *V == '\0' || *V == '-' || *End != '\0' || N < 1 ||
          N > (1ull << 30))
        return Bad("--check-window needs an entry count in [1, 2^30]");
      A.Run.checkWindow(static_cast<size_t>(N));
    } else if (Arg == "--duration") {
      if (!IsServe)
        return WrongCommand();
      const char *V = TakeValue();
      char *End = nullptr;
      unsigned long long N = V ? strtoull(V, &End, 10) : 0;
      if (!V || *V == '\0' || *V == '-' || *End != '\0' ||
          N > 0xFFFFFFFFull)
        return Bad("--duration needs a seconds count in [0, 2^32)");
      A.Serve.DurationSec = static_cast<unsigned>(N);
    } else if (Arg == "--classifier") {
      if (IsCompile)
        return WrongCommand();
      const char *V = TakeValue();
      if (!V || (strcmp(V, "on") != 0 && strcmp(V, "off") != 0))
        return Bad("--classifier needs 'on' or 'off'");
      A.Run.classifier(strcmp(V, "on") == 0);
    } else if (Arg == "--partition") {
      if (IsCompile)
        return WrongCommand();
      const char *V = TakeValue();
      // One source of truth for the strategy names: the engine's parser
      // (the backend re-validates the same way).
      if (!V || !engine::parsePartitionStrategy(V))
        return Bad("--partition needs 'modulo', 'contiguous', or 'refined'");
      A.Run.partition(V);
    } else if (Arg == "--quiet") {
      Verbosity = 0;
    } else if (Arg == "-v") {
      Verbosity = 2;
    } else if (Arg == "--trace") {
      if (IsCompile)
        return WrongCommand();
      const char *V = TakeValue();
      if (!V)
        return Bad("--trace needs an output file argument");
      A.TracePath = V;
      // 256K events per shard; the ring counts (not silently hides)
      // anything beyond that.
      A.Run.traceEvents(1u << 18);
    } else if (Arg == "--latency-hist") {
      if (IsCompile)
        return WrongCommand();
      A.Run.latencyHistograms(true);
    } else if (Arg == "--faults") {
      if (IsCompile)
        return WrongCommand();
      const char *V = TakeValue();
      if (!V)
        return Bad("--faults needs a plan file argument");
      A.FaultsPath = V;
    } else if (Arg == "--overload") {
      if (IsCompile)
        return WrongCommand();
      const char *V = TakeValue();
      // One source of truth for the policy names: the engine's parser
      // (the backend re-validates the same way).
      if (!V || !engine::parseOverloadPolicy(V))
        return Bad("--overload needs 'block', 'shed-oldest', or "
                   "'shed-newest'");
      A.Run.overload(V);
    } else if (Arg == "--workload") {
      if (IsCompile || IsServe)
        return WrongCommand();
      const char *V = TakeValue();
      if (!V || (strcmp(V, "ping") != 0 && strcmp(V, "churn") != 0))
        return Bad("--workload needs 'ping' or 'churn'");
      A.Run.workload(V);
    } else if (Arg == "--churn-rate") {
      if (IsCompile || IsServe)
        return WrongCommand();
      const char *V = TakeValue();
      char *End = nullptr;
      unsigned long long N = V ? strtoull(V, &End, 10) : 0;
      if (!V || *V == '\0' || *V == '-' || *End != '\0' ||
          N > 0xFFFFFFFFull)
        return Bad("--churn-rate needs a non-negative numeric argument");
      A.Run.churnRate(static_cast<unsigned>(N));
    } else if (Arg == "--fail-on-drop") {
      if (IsCompile)
        return WrongCommand();
      A.FailOnDrop = true;
    } else if (Arg == "--metrics-out") {
      if (IsCompile)
        return WrongCommand();
      const char *V = TakeValue();
      if (!V)
        return Bad("--metrics-out needs a file argument");
      A.Run.metricsPath(V);
    } else if (Arg == "--seed" || Arg == "--shards" || Arg == "--phases" ||
               Arg == "--per-phase" || Arg == "--batch" ||
               Arg == "--metrics-interval") {
      if (IsCompile)
        return WrongCommand();
      // serve has no generated workload, so the workload knobs are
      // rejected rather than silently ignored.
      if (IsServe && (Arg == "--seed" || Arg == "--phases" ||
                      Arg == "--per-phase"))
        return WrongCommand();
      const char *V = TakeValue();
      char *End = nullptr;
      unsigned long long N = V ? strtoull(V, &End, 10) : 0;
      // strtoull accepts a leading '-' and wraps; reject it up front.
      if (!V || *V == '\0' || *V == '-' || *End != '\0')
        return Bad(Arg + " needs a non-negative numeric argument");
      if (Arg == "--seed") {
        A.Run.seed(N);
      } else {
        // The unsigned options must survive the narrowing intact.
        if (N > 0xFFFFFFFFull)
          return Bad(Arg + " value " + V + " is out of range");
        if (Arg == "--shards")
          A.Run.shards(static_cast<unsigned>(N));
        else if (Arg == "--phases")
          A.Run.phases(static_cast<unsigned>(N));
        else if (Arg == "--batch")
          A.Run.batch(static_cast<unsigned>(N));
        else if (Arg == "--metrics-interval")
          A.Run.metricsIntervalMs(static_cast<unsigned>(N));
        else
          A.Run.pingsPerPhase(static_cast<unsigned>(N));
      }
    } else if (Arg.size() && Arg[0] == '-') {
      return Bad("unknown option '" + Arg + "'");
    } else if (A.ProgramPath.empty()) {
      A.ProgramPath = Arg;
    } else {
      return Bad("unexpected argument '" + Arg + "'");
    }
  }
  if (A.ProgramPath.empty())
    return Bad("no program file given");
  if (A.TopoPath.empty())
    return Bad("no topology file given (--topo <file>)");
  if (A.Json && (A.DumpEts || A.DumpNes || A.DumpTables || A.Share))
    return Bad("--json emits a single JSON object; it cannot be combined "
               "with --dump-* or --share");
  return api::Status::success();
}

int cmdCompile(const CliArgs &A, const api::Compilation &C) {
  bool Default = !A.DumpEts && !A.DumpNes && !A.DumpTables && !A.Share;
  if (A.Json) {
    printf("%s\n", C.summaryJson().c_str());
  } else if (A.Stats || Default) {
    printf("%s", C.summary().c_str());
  }
  if (A.DumpEts)
    printf("=== ETS ===\n%s", C.etsText().c_str());
  if (A.DumpNes)
    printf("=== NES ===\n%s", C.nesText().c_str());
  if (A.DumpTables)
    printf("%s", C.tablesText().c_str());
  if (A.Share) {
    opt::NesShareStats S = C.shareStats();
    printf("rule sharing: %zu -> %zu rules (%.1f%% saved)\n", S.Before,
           S.After, S.savings() * 100);
  }
  return 0;
}

int cmdRun(const CliArgs &A, const api::Compilation &C, bool VerdictOnly) {
  note(2, "running backend %s (seed %llu, %u shards)", A.Backend.c_str(),
       static_cast<unsigned long long>(A.Run.Seed), A.Run.Shards);
  api::Result<api::RunReport> R = api::run(C, A.Backend, A.Run);
  if (!R.ok())
    return fail(R.status());

  if (!A.TracePath.empty()) {
    if (A.Backend != "engine" && R->ObsTrace.empty())
      note(1, "--trace: the %s backend records no obs events; writing an "
              "empty trace", A.Backend.c_str());
    std::ofstream OS(A.TracePath);
    if (!OS)
      return fail(api::Status::error(api::Code::RunError,
                                     "cannot open trace file '" +
                                         A.TracePath + "'"));
    obs::writePerfettoTrace(OS, R->ObsTrace, R->Shards, R->TraceDropped);
    note(2, "wrote %zu trace events to %s", R->ObsTrace.size(),
         A.TracePath.c_str());
    if (R->TraceDropped > 0)
      note(1, "obs trace ring dropped %llu events (per-shard capacity "
              "exceeded); the timeline keeps its head",
           static_cast<unsigned long long>(R->TraceDropped));
  }
  if (!R->Audit.Ok)
    note(1, "drop audit FAILED: %llu packet(s) silently lost",
         static_cast<unsigned long long>(R->Audit.SilentLoss));
  if (R->Faults.Enabled)
    note(2, "fault plan: %llu dropped, %llu duplicated, %llu delayed, "
            "%llu shed (%llu ledger entries)",
         static_cast<unsigned long long>(R->Faults.Drops),
         static_cast<unsigned long long>(R->Faults.Dups),
         static_cast<unsigned long long>(R->Faults.Delays),
         static_cast<unsigned long long>(R->Faults.Shed),
         static_cast<unsigned long long>(R->Faults.LedgerEntries));

  if (A.Json) {
    printf("%s\n", R->json().c_str());
  } else if (VerdictOnly) {
    printf("definition 6: %s\n",
           !R->Checked ? "not checked"
                       : (R->Consistency.Correct ? "consistent"
                                                 : "VIOLATED"));
    if (R->StreamCheck.Enabled)
      printf("streaming: %s\n",
             consistency::streamVerdictName(R->StreamCheck.Result.Verdict));
  } else {
    printf("%s", R->str().c_str());
  }

  if (R->Checked && !R->Consistency.Correct) {
    if (VerdictOnly && !A.Json)
      printf("  %s\n", R->Consistency.Reason.c_str());
    return api::Status::error(api::Code::ConsistencyViolation,
                              R->Consistency.Reason)
        .exitCode();
  }
  if (R->StreamCheck.Enabled && R->StreamCheck.Result.violated())
    return api::Status::error(api::Code::ConsistencyViolation,
                              R->StreamCheck.Result.Reason)
        .exitCode();
  if (R->StreamCheck.DifferentialRan && !R->StreamCheck.DifferentialMatched)
    return api::Status::error(api::Code::ConsistencyViolation,
                              "streaming and batch Definition 6 verdicts "
                              "disagree")
        .exitCode();
  if (A.FailOnDrop && !R->Audit.Ok)
    return fail(api::Status::error(
        api::Code::DropAuditFailure,
        std::to_string(R->Audit.SilentLoss) +
            " packet(s) silently lost (--fail-on-drop)"));
  return 0;
}

int cmdServe(CliArgs &A, const api::Compilation &C) {
  // SIGINT/SIGTERM request a graceful drain; a second signal kills.
  net::installShutdownHandlers();
  A.Run.stopFlag(&net::shutdownRequested());
  A.Serve.OnListening = [&A](uint16_t Port) {
    if (A.Serve.DurationSec > 0)
      note(1, "serving %s on %s:%u (udp %s, %u shards) for %u s — SIGINT "
              "drains early",
           A.ProgramPath.c_str(), A.Serve.BindAddr.c_str(), Port,
           A.Serve.Udp ? "on" : "off", A.Run.Shards, A.Serve.DurationSec);
    else
      note(1, "serving %s on %s:%u (udp %s, %u shards) — SIGINT drains",
           A.ProgramPath.c_str(), A.Serve.BindAddr.c_str(), Port,
           A.Serve.Udp ? "on" : "off", A.Run.Shards);
  };

  api::Result<api::RunReport> R = api::serveNet(C, A.Run, A.Serve);
  if (!R.ok())
    return fail(R.status());

  if (A.Json)
    printf("%s\n", R->json().c_str());
  else
    printf("%s", R->str().c_str());

  if (R->Checked && !R->Consistency.Correct)
    return api::Status::error(api::Code::ConsistencyViolation,
                              R->Consistency.Reason)
        .exitCode();
  if (R->StreamCheck.Enabled && R->StreamCheck.Result.violated())
    return api::Status::error(api::Code::ConsistencyViolation,
                              R->StreamCheck.Result.Reason)
        .exitCode();
  // A drain that lost packets is not a clean shutdown: exit 10 so
  // supervisors can tell "stopped" from "stopped and dropped traffic".
  if (!R->Audit.Ok)
    return fail(api::Status::error(
        api::Code::DropAuditFailure,
        std::to_string(R->Audit.SilentLoss) +
            " packet(s) silently lost during serve/drain"));
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();
  std::string Cmd = argv[1];

  if (Cmd == "backends") {
    for (const std::string &Name : api::backendNames())
      printf("%s\n", Name.c_str());
    return 0;
  }
  if (Cmd != "compile" && Cmd != "run" && Cmd != "check" &&
      Cmd != "serve") {
    fprintf(stderr, "error: unknown command '%s'\n", Cmd.c_str());
    return usage();
  }

  CliArgs A;
  api::Status ArgSt = parseArgs(argc, argv, Cmd, A);
  if (!ArgSt.ok()) {
    fprintf(stderr, "error: %s\n", ArgSt.message().c_str());
    return usage();
  }

  if (!A.FaultsPath.empty()) {
    api::Result<faults::FaultPlan> Plan =
        faults::FaultPlan::fromFile(A.FaultsPath);
    if (!Plan.ok())
      return fail(Plan.status());
    A.Run.faults(std::make_shared<faults::FaultPlan>(std::move(*Plan)));
    note(2, "loaded fault plan %s (%zu link rules, %zu stall rules)",
         A.FaultsPath.c_str(), A.Run.Faults->Links.size(),
         A.Run.Faults->Stalls.size());
  }

  api::Result<api::Compilation> C =
      api::compile(api::CompileOptions()
                       .programFile(A.ProgramPath)
                       .topologyFile(A.TopoPath));
  if (!C.ok())
    return fail(C.status());

  if (Cmd == "compile")
    return cmdCompile(A, *C);
  if (Cmd == "serve")
    return cmdServe(A, *C);
  return cmdRun(A, *C, /*VerdictOnly=*/Cmd == "check");
}
