//===- tools/eventnetc.cpp - Stateful NetKAT compiler driver --------------===//
//
// Command-line front end for the compiler pipeline: reads a Stateful
// NetKAT program and a topology description, compiles to an NES, and
// prints the requested artifacts. The moral equivalent of the paper's
// prototype tool (minus the Mininet script generation, which the
// simulator replaces).
//
// Usage:
//   eventnetc <program.snk> --topo <topo.txt> [options]
//
// Options:
//   --dump-ets     print the event-driven transition system
//   --dump-nes     print the network event structure
//   --dump-tables  print every configuration's flow tables
//   --share        report the Section 5.3 rule-sharing statistics
//   --stats        print compile statistics (default if nothing else)
//   --engine       run a seeded workload on the sharded concurrent
//                  engine, print its stats, and replay the recorded
//                  trace through the Definition 6 checker
//   --shards N     engine worker threads (default 4)
//   --seed S       engine workload seed (default 1)
//
//===----------------------------------------------------------------------===//

#include "consistency/Check.h"
#include "engine/Engine.h"
#include "nes/Pipeline.h"
#include "opt/RuleSharing.h"
#include "runtime/Guarded.h"
#include "topo/Parse.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace eventnet;

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

int usage(const char *Argv0) {
  fprintf(stderr,
          "usage: %s <program.snk> --topo <topo.txt>\n"
          "          [--dump-ets] [--dump-nes] [--dump-tables] [--share]\n"
          "          [--stats] [--engine] [--shards N] [--seed S]\n",
          Argv0);
  return 2;
}

/// --engine: a seeded ping workload between every host pair on the
/// concurrent engine, followed by the Definition 6 verdict.
int runEngine(const nes::CompiledProgram &C, const topo::Topology &Topo,
              unsigned Shards, uint64_t Seed) {
  size_t Pairs = Topo.hosts().size() * Topo.hosts().size();
  unsigned PerPhase = Pairs > 8 ? 8 : static_cast<unsigned>(Pairs);
  if (PerPhase == 0) {
    // Checked before TrafficGen's constructor, which asserts on
    // hostless topologies.
    fprintf(stderr, "error: topology has no hosts to generate traffic\n");
    return 1;
  }

  engine::EngineConfig Cfg;
  Cfg.NumShards = Shards;
  engine::Engine E(*C.N, Topo, Cfg);
  engine::TrafficGen G(Topo, Seed);
  E.run(G.pings(4, PerPhase));

  engine::Stats S = E.stats();
  printf("engine run: %u shards, seed %llu\n", Shards,
         static_cast<unsigned long long>(Seed));
  printf("  injected:     %llu packets\n",
         static_cast<unsigned long long>(S.PacketsInjected));
  printf("  delivered:    %llu\n",
         static_cast<unsigned long long>(S.PacketsDelivered));
  printf("  dropped:      %llu\n",
         static_cast<unsigned long long>(S.PacketsDropped));
  printf("  switch-hops:  %llu (%.2f M hops/sec)\n",
         static_cast<unsigned long long>(S.PacketsProcessed),
         S.PacketsPerSec / 1e6);
  printf("  events:       %llu detected, %llu register transitions\n",
         static_cast<unsigned long long>(S.EventsDetected),
         static_cast<unsigned long long>(S.ConfigTransitions));
  if (S.Transition.Samples)
    printf("  transition:   mean %.1f us, max %.1f us (%llu samples)\n",
           S.Transition.MeanSec * 1e6, S.Transition.MaxSec * 1e6,
           static_cast<unsigned long long>(S.Transition.Samples));

  consistency::CheckResult R =
      consistency::checkAgainstNes(E.trace(), Topo, *C.N);
  printf("  definition 6: %s\n", R.Correct ? "consistent" : "VIOLATED");
  if (!R.Correct) {
    printf("    %s\n", R.Reason.c_str());
    return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string ProgramPath, TopoPath;
  bool DumpEts = false, DumpNes = false, DumpTables = false, Share = false;
  bool Stats = false, EngineMode = false;
  unsigned Shards = 4;
  uint64_t Seed = 1;

  for (int I = 1; I != argc; ++I) {
    if (!strcmp(argv[I], "--topo")) {
      if (++I == argc)
        return usage(argv[0]);
      TopoPath = argv[I];
    } else if (!strcmp(argv[I], "--dump-ets")) {
      DumpEts = true;
    } else if (!strcmp(argv[I], "--dump-nes")) {
      DumpNes = true;
    } else if (!strcmp(argv[I], "--dump-tables")) {
      DumpTables = true;
    } else if (!strcmp(argv[I], "--share")) {
      Share = true;
    } else if (!strcmp(argv[I], "--stats")) {
      Stats = true;
    } else if (!strcmp(argv[I], "--engine")) {
      EngineMode = true;
    } else if (!strcmp(argv[I], "--shards")) {
      if (++I == argc)
        return usage(argv[0]);
      int V = atoi(argv[I]);
      if (V < 1 || V > 1024) {
        fprintf(stderr, "error: --shards must be in [1, 1024], got '%s'\n",
                argv[I]);
        return 2;
      }
      Shards = static_cast<unsigned>(V);
    } else if (!strcmp(argv[I], "--seed")) {
      if (++I == argc)
        return usage(argv[0]);
      Seed = strtoull(argv[I], nullptr, 10);
    } else if (argv[I][0] == '-') {
      fprintf(stderr, "unknown option '%s'\n", argv[I]);
      return usage(argv[0]);
    } else if (ProgramPath.empty()) {
      ProgramPath = argv[I];
    } else {
      return usage(argv[0]);
    }
  }
  if (ProgramPath.empty() || TopoPath.empty())
    return usage(argv[0]);
  if (!DumpEts && !DumpNes && !DumpTables && !Share && !EngineMode)
    Stats = true;

  std::string ProgramSrc, TopoSrc;
  if (!readFile(ProgramPath, ProgramSrc)) {
    fprintf(stderr, "error: cannot read program '%s'\n",
            ProgramPath.c_str());
    return 1;
  }
  if (!readFile(TopoPath, TopoSrc)) {
    fprintf(stderr, "error: cannot read topology '%s'\n", TopoPath.c_str());
    return 1;
  }

  topo::TopoParseResult Topo = topo::parseTopology(TopoSrc);
  if (!Topo.Ok) {
    fprintf(stderr, "error: %s: %s\n", TopoPath.c_str(), Topo.Error.c_str());
    return 1;
  }

  nes::CompiledProgram C = nes::compileSource(ProgramSrc, Topo.Topo);
  if (!C.Ok) {
    fprintf(stderr, "error: %s: %s\n", ProgramPath.c_str(),
            C.Error.c_str());
    return 1;
  }

  if (Stats) {
    printf("compiled %s in %.3f ms\n", ProgramPath.c_str(),
           C.CompileSeconds * 1e3);
    printf("  states:       %zu\n", C.Ets.vertices().size());
    printf("  events:       %u\n", C.N->numEvents());
    printf("  event-sets:   %u\n", C.N->numSets());
    printf("  rules:        %zu (tag-guarded, all configurations)\n",
           runtime::guardedRuleCount(*C.N, Topo.Topo));
    printf("  locality:     %s\n",
           C.N->isLocallyDetermined() ? "locally determined" : "VIOLATED");
  }
  if (DumpEts) {
    printf("=== ETS ===\n%s", C.Ets.str().c_str());
  }
  if (DumpNes) {
    printf("=== NES ===\n%s", C.N->str().c_str());
  }
  if (DumpTables) {
    for (nes::SetId S = 0; S != C.N->numSets(); ++S) {
      printf("=== configuration of event-set E%u (state %s) ===\n", S,
             stateful::stateVecStr(C.N->stateOf(S)).c_str());
      printf("%s", C.N->configOf(S).str().c_str());
    }
  }
  if (Share) {
    opt::NesShareStats S = opt::shareRulesForNes(*C.N, Topo.Topo);
    printf("rule sharing: %zu -> %zu rules (%.1f%% saved)\n", S.Before,
           S.After, S.savings() * 100);
  }
  if (EngineMode)
    return runEngine(C, Topo.Topo, Shards, Seed);
  return 0;
}
