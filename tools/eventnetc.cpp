//===- tools/eventnetc.cpp - Stateful NetKAT compiler driver --------------===//
//
// Command-line front end for the compiler pipeline: reads a Stateful
// NetKAT program and a topology description, compiles to an NES, and
// prints the requested artifacts. The moral equivalent of the paper's
// prototype tool (minus the Mininet script generation, which the
// simulator replaces).
//
// Usage:
//   eventnetc <program.snk> --topo <topo.txt> [options]
//
// Options:
//   --dump-ets     print the event-driven transition system
//   --dump-nes     print the network event structure
//   --dump-tables  print every configuration's flow tables
//   --share        report the Section 5.3 rule-sharing statistics
//   --stats        print compile statistics (default if nothing else)
//
//===----------------------------------------------------------------------===//

#include "nes/Pipeline.h"
#include "opt/RuleSharing.h"
#include "runtime/Guarded.h"
#include "topo/Parse.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace eventnet;

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

int usage(const char *Argv0) {
  fprintf(stderr,
          "usage: %s <program.snk> --topo <topo.txt>\n"
          "          [--dump-ets] [--dump-nes] [--dump-tables] [--share]\n"
          "          [--stats]\n",
          Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  std::string ProgramPath, TopoPath;
  bool DumpEts = false, DumpNes = false, DumpTables = false, Share = false;
  bool Stats = false;

  for (int I = 1; I != argc; ++I) {
    if (!strcmp(argv[I], "--topo")) {
      if (++I == argc)
        return usage(argv[0]);
      TopoPath = argv[I];
    } else if (!strcmp(argv[I], "--dump-ets")) {
      DumpEts = true;
    } else if (!strcmp(argv[I], "--dump-nes")) {
      DumpNes = true;
    } else if (!strcmp(argv[I], "--dump-tables")) {
      DumpTables = true;
    } else if (!strcmp(argv[I], "--share")) {
      Share = true;
    } else if (!strcmp(argv[I], "--stats")) {
      Stats = true;
    } else if (argv[I][0] == '-') {
      fprintf(stderr, "unknown option '%s'\n", argv[I]);
      return usage(argv[0]);
    } else if (ProgramPath.empty()) {
      ProgramPath = argv[I];
    } else {
      return usage(argv[0]);
    }
  }
  if (ProgramPath.empty() || TopoPath.empty())
    return usage(argv[0]);
  if (!DumpEts && !DumpNes && !DumpTables && !Share)
    Stats = true;

  std::string ProgramSrc, TopoSrc;
  if (!readFile(ProgramPath, ProgramSrc)) {
    fprintf(stderr, "error: cannot read program '%s'\n",
            ProgramPath.c_str());
    return 1;
  }
  if (!readFile(TopoPath, TopoSrc)) {
    fprintf(stderr, "error: cannot read topology '%s'\n", TopoPath.c_str());
    return 1;
  }

  topo::TopoParseResult Topo = topo::parseTopology(TopoSrc);
  if (!Topo.Ok) {
    fprintf(stderr, "error: %s: %s\n", TopoPath.c_str(), Topo.Error.c_str());
    return 1;
  }

  nes::CompiledProgram C = nes::compileSource(ProgramSrc, Topo.Topo);
  if (!C.Ok) {
    fprintf(stderr, "error: %s: %s\n", ProgramPath.c_str(),
            C.Error.c_str());
    return 1;
  }

  if (Stats) {
    printf("compiled %s in %.3f ms\n", ProgramPath.c_str(),
           C.CompileSeconds * 1e3);
    printf("  states:       %zu\n", C.Ets.vertices().size());
    printf("  events:       %u\n", C.N->numEvents());
    printf("  event-sets:   %u\n", C.N->numSets());
    printf("  rules:        %zu (tag-guarded, all configurations)\n",
           runtime::guardedRuleCount(*C.N, Topo.Topo));
    printf("  locality:     %s\n",
           C.N->isLocallyDetermined() ? "locally determined" : "VIOLATED");
  }
  if (DumpEts) {
    printf("=== ETS ===\n%s", C.Ets.str().c_str());
  }
  if (DumpNes) {
    printf("=== NES ===\n%s", C.N->str().c_str());
  }
  if (DumpTables) {
    for (nes::SetId S = 0; S != C.N->numSets(); ++S) {
      printf("=== configuration of event-set E%u (state %s) ===\n", S,
             stateful::stateVecStr(C.N->stateOf(S)).c_str());
      printf("%s", C.N->configOf(S).str().c_str());
    }
  }
  if (Share) {
    opt::NesShareStats S = opt::shareRulesForNes(*C.N, Topo.Topo);
    printf("rule sharing: %zu -> %zu rules (%.1f%% saved)\n", S.Before,
           S.After, S.savings() * 100);
  }
  return 0;
}
