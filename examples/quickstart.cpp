//===- examples/quickstart.cpp - First steps with the library -------------===//
//
// Compiles a Stateful NetKAT program (the paper's stateful firewall),
// inspects every compiler artifact along the way (ETS, NES, flow tables,
// guarded tables), runs it in the simulator, and verifies the recorded
// network trace against the event-driven consistency definition.
//
// Build:   cmake -B build -G Ninja && cmake --build build
// Run:     ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "apps/Programs.h"
#include "consistency/Check.h"
#include "nes/Pipeline.h"
#include "runtime/Guarded.h"
#include "sim/Simulation.h"

#include <cstdio>
#include <iostream>

using namespace eventnet;

int main() {
  // 1. A Stateful NetKAT program: NetKAT plus a global `state` vector.
  //    Links may assign a state component when a packet crosses them —
  //    that is the event that drives reconfiguration.
  std::string Source = apps::firewallSource();
  std::cout << "=== Stateful NetKAT source ===\n" << Source << '\n';

  // 2. Compile: parse -> per-state NetKAT projections -> FDD -> flow
  //    tables; extract event-edges -> ETS -> network event structure.
  topo::Topology Topo = topo::firewallTopology();
  api::Result<nes::CompiledProgram> Compiled = nes::compileSource(Source, Topo);
  if (!Compiled.ok()) {
    std::cerr << Compiled.status().str() << '\n';
    return Compiled.status().exitCode();
  }
  nes::CompiledProgram &C = *Compiled;
  printf("compiled in %.3f ms\n\n", C.CompileSeconds * 1e3);

  std::cout << "=== Event-driven transition system ===\n" << C.Ets.str();
  std::cout << "\n=== Network event structure ===\n" << C.N->str();

  std::cout << "\n=== Per-state flow tables (state [0]) ===\n"
            << C.Ets.vertices()[0].Config.str();

  // 3. The Section 4 implementation: one physical table per switch with
  //    every configuration's rules guarded by its event-set tag.
  topo::Configuration Guarded = runtime::buildGuardedConfig(*C.N, Topo);
  printf("\nguarded tables install %zu rules across %zu switches\n",
         Guarded.totalRules(), Topo.switches().size());

  // 4. Simulate: H4 cannot reach H1 until H1 has contacted H4; the reply
  //    to H1's very first packet already makes it back (no dropped
  //    SYN-ACKs — the situation Section 1 motivates).
  sim::Simulation S(*C.N, Topo, sim::Simulation::Mode::Nes);
  S.schedulePing(0.5, topo::HostH4, topo::HostH1); // blocked
  S.schedulePing(1.0, topo::HostH1, topo::HostH4); // opens the firewall
  S.schedulePing(1.5, topo::HostH4, topo::HostH1); // now allowed
  S.run(3.0);

  std::cout << "\n=== Ping timeline ===\n";
  for (const auto &P : S.pings())
    printf("t=%.1fs  H%u -> H%u : %s\n", P.SentAt, P.From, P.To,
           P.Succeeded ? "reply received" : "no reply");

  // 5. Verify the whole run against Definition 6.
  auto Check = consistency::checkAgainstNes(S.trace(), Topo, *C.N);
  printf("\nconsistency check: %s\n",
         Check.Correct ? "CORRECT (event-driven consistent update)"
                       : Check.Reason.c_str());
  return Check.Correct ? 0 : 1;
}
