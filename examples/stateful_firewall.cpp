//===- examples/stateful_firewall.cpp - Correct vs uncoordinated ----------===//
//
// The paper's headline comparison (Section 5.1, Figure 11): the same
// stateful-firewall program run under the event-driven consistent
// runtime and under an uncoordinated controller that pushes updates
// after a delay. The uncoordinated run drops replies during the window
// between the event and the table pushes, and the consistency checker
// pinpoints the violation.
//
//===----------------------------------------------------------------------===//

#include "apps/Programs.h"
#include "consistency/Check.h"
#include "nes/Pipeline.h"
#include "sim/Simulation.h"

#include <cstdio>
#include <iostream>

using namespace eventnet;

namespace {

void runMode(const nes::CompiledProgram &C, const topo::Topology &Topo,
             sim::Simulation::Mode Mode, const char *Label) {
  sim::SimParams P;
  P.UncoordDelaySec = 1.5;
  sim::Simulation S(*C.N, Topo, Mode, P);

  // H4 probes first (should fail), then H1 opens the connection and
  // keeps pinging; finally H4 tries again (should succeed).
  S.schedulePing(0.5, topo::HostH4, topo::HostH1);
  for (int I = 0; I != 10; ++I)
    S.schedulePing(1.0 + 0.2 * I, topo::HostH1, topo::HostH4);
  S.schedulePing(3.5, topo::HostH4, topo::HostH1);
  S.run(6.0);

  printf("--- %s ---\n", Label);
  size_t Dropped = 0;
  for (const auto &Ping : S.pings()) {
    if (!Ping.Succeeded)
      ++Dropped;
    printf("t=%.1fs  H%u -> H%u : %s\n", Ping.SentAt, Ping.From, Ping.To,
           Ping.Succeeded ? "ok" : "LOST");
  }
  printf("lost pings: %zu\n", Dropped);

  auto Check = consistency::checkAgainstNes(S.trace(), Topo, *C.N);
  if (Check.Correct)
    printf("checker: trace is an event-driven consistent update\n\n");
  else
    printf("checker: VIOLATION - %s\n\n", Check.Reason.c_str());
}

} // namespace

int main() {
  apps::App A = apps::firewallApp();
  api::Result<nes::CompiledProgram> Compiled =
      nes::compileSource(A.Source, A.Topo);
  if (!Compiled.ok()) {
    std::cerr << Compiled.status().str() << '\n';
    return Compiled.status().exitCode();
  }
  nes::CompiledProgram &C = *Compiled;

  runMode(C, A.Topo, sim::Simulation::Mode::Nes,
          "event-driven consistent runtime (this paper)");
  runMode(C, A.Topo, sim::Simulation::Mode::Uncoordinated,
          "uncoordinated baseline (delay 1.5 s)");

  printf("The uncoordinated run loses replies in the window between the\n"
         "event at s4 and the controller's table pushes; the consistent\n"
         "runtime never does, because s4's very own event detection\n"
         "retags packets immediately and other switches follow the\n"
         "happens-before order carried by packet digests.\n");
  return 0;
}
