//===- examples/ring_update.cpp - Section 5.2 scalability scenario --------===//
//
// The synthetic ring application: traffic between H1 and H2 circulates
// clockwise; a probe packet arriving at H2's switch flips the global
// configuration to counterclockwise. Demonstrates (a) in-flight and
// post-event packets are still delivered consistently, (b) how long each
// switch takes to hear about the event via packet digests, with and
// without controller assistance — a one-ring slice of Figure 16(b).
//
//===----------------------------------------------------------------------===//

#include "apps/Programs.h"
#include "consistency/Check.h"
#include "nes/Pipeline.h"
#include "sim/Simulation.h"

#include <cstdio>
#include <iostream>

using namespace eventnet;

int main() {
  const unsigned NumSwitches = 8, Diameter = 4;
  apps::App A = apps::ringApp(NumSwitches, Diameter);
  api::Result<nes::CompiledProgram> Compiled =
      nes::compileAst(A.Ast, A.Topo);
  if (!Compiled.ok()) {
    std::cerr << Compiled.status().str() << '\n';
    return Compiled.status().exitCode();
  }
  nes::CompiledProgram &C = *Compiled;
  printf("ring of %u switches, hosts %u hops apart; event at switch %u\n\n",
         NumSwitches, Diameter, Diameter + 1);

  for (bool Broadcast : {false, true}) {
    sim::SimParams P;
    P.CtrlBroadcast = Broadcast;
    sim::Simulation S(*C.N, A.Topo, sim::Simulation::Mode::Nes, P);

    // Continuous bidirectional pings; a probe at t = 0.5 flips the ring.
    for (int I = 0; I != 200; ++I) {
      S.schedulePing(0.05 + 0.01 * I, topo::HostH1, topo::HostH2);
      S.schedulePing(0.055 + 0.01 * I, topo::HostH2, topo::HostH1);
    }
    S.scheduleProbe(0.5, topo::HostH1, topo::HostH2);
    S.run(5.0);

    size_t Ok = 0;
    for (const auto &Ping : S.pings())
      Ok += Ping.Succeeded;
    double T0 = S.eventTime(0);
    printf("--- controller broadcast: %s ---\n", Broadcast ? "on" : "off");
    printf("pings delivered: %zu/%zu; event at t=%.3fs\n", Ok,
           S.pings().size(), T0);
    printf("per-switch discovery delay (ms):");
    for (SwitchId Sw : A.Topo.switches()) {
      auto It = S.learnTimes().find({Sw, 0});
      if (It == S.learnTimes().end())
        printf("  s%u:never", Sw);
      else
        printf("  s%u:%.2f", Sw, (It->second - T0) * 1e3);
    }
    printf("\n");

    auto Check = consistency::checkAgainstNes(S.trace(), A.Topo, *C.N);
    printf("checker: %s\n\n",
           Check.Correct ? "correct" : Check.Reason.c_str());
  }
  return 0;
}
