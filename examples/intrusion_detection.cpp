//===- examples/intrusion_detection.cpp - IDS case study ------------------===//
//
// The paper's intrusion detection system (Figures 8(e)/9(e)): all
// traffic flows until H4 exhibits a scan signature (contacting H1 and
// then H2 in order), after which H4 -> H3 is cut off. Shows both the
// benign interleaving (H2 before H1: nothing happens) and the scan.
//
//===----------------------------------------------------------------------===//

#include "apps/Programs.h"
#include "consistency/Check.h"
#include "nes/Pipeline.h"
#include "sim/Simulation.h"

#include <cstdio>
#include <iostream>

using namespace eventnet;

namespace {

void scenario(const nes::CompiledProgram &C, const topo::Topology &Topo,
              const std::vector<HostId> &Contacts, const char *Label) {
  sim::Simulation S(*C.N, Topo, sim::Simulation::Mode::Nes);
  double At = 0.5;
  for (HostId To : Contacts) {
    S.schedulePing(At, topo::HostH4, To);
    At += 0.5;
  }
  S.run(At + 2.0);

  printf("--- %s ---\n", Label);
  for (size_t I = 0; I != Contacts.size(); ++I)
    printf("H4 -> H%u : %s\n", Contacts[I],
           S.pings()[I].Succeeded ? "ok" : "blocked");
  auto Check = consistency::checkAgainstNes(S.trace(), Topo, *C.N);
  printf("checker: %s\n\n",
         Check.Correct ? "correct" : Check.Reason.c_str());
}

} // namespace

int main() {
  apps::App A = apps::idsApp();
  api::Result<nes::CompiledProgram> Compiled =
      nes::compileSource(A.Source, A.Topo);
  if (!Compiled.ok()) {
    std::cerr << Compiled.status().str() << '\n';
    return Compiled.status().exitCode();
  }
  nes::CompiledProgram &C = *Compiled;

  // Benign order: H2 first does not arm the detector.
  scenario(C, A.Topo,
           {topo::HostH2, topo::HostH1, topo::HostH3, topo::HostH3},
           "benign: H2, H1, H3, H3 (H3 stays reachable)");

  // Scan signature: H1 then H2 cuts H3 off.
  scenario(C, A.Topo,
           {topo::HostH3, topo::HostH1, topo::HostH2, topo::HostH3},
           "scan: H3, H1, H2, H3 (last contact blocked)");
  return 0;
}
