//===- examples/port_knocking.cpp - Authentication case study -------------===//
//
// The paper's authentication application (Figures 8(c)/9(c)): the
// untrusted host H4 must contact H1 and then H2, in that order, before
// it is allowed to reach H3 — a port-knocking scheme expressed as a
// two-event causal chain in the NES. Demonstrates that out-of-order
// knocks do not advance the state.
//
//===----------------------------------------------------------------------===//

#include "apps/Programs.h"
#include "consistency/Check.h"
#include "nes/Pipeline.h"
#include "sim/Simulation.h"

#include <cstdio>
#include <iostream>

using namespace eventnet;

int main() {
  apps::App A = apps::authenticationApp();
  api::Result<nes::CompiledProgram> Compiled =
      nes::compileSource(A.Source, A.Topo);
  if (!Compiled.ok()) {
    std::cerr << Compiled.status().str() << '\n';
    return Compiled.status().exitCode();
  }
  nes::CompiledProgram &C = *Compiled;

  std::cout << "NES (note the enabling chain e0 -> e1):\n"
            << C.N->str() << '\n';

  sim::Simulation S(*C.N, A.Topo, sim::Simulation::Mode::Nes);
  struct Try {
    double At;
    HostId To;
    const char *Note;
  };
  std::vector<Try> Script = {
      {0.5, topo::HostH3, "direct attempt (blocked)"},
      {1.0, topo::HostH2, "knock 2 first (ignored: wrong order)"},
      {1.5, topo::HostH1, "knock 1"},
      {2.0, topo::HostH3, "still blocked (one knock missing)"},
      {2.5, topo::HostH2, "knock 2"},
      {3.0, topo::HostH3, "access granted"},
  };
  for (const Try &T : Script)
    S.schedulePing(T.At, topo::HostH4, T.To);
  S.run(5.0);

  for (size_t I = 0; I != Script.size(); ++I)
    printf("t=%.1fs  H4 -> H%u : %-4s  (%s)\n", Script[I].At, Script[I].To,
           S.pings()[I].Succeeded ? "ok" : "----", Script[I].Note);

  auto Check = consistency::checkAgainstNes(S.trace(), A.Topo, *C.N);
  printf("\nconsistency check: %s\n",
         Check.Correct ? "correct" : Check.Reason.c_str());
  return Check.Correct ? 0 : 1;
}
