//===- engine/Engine.cpp - Sharded concurrent data-plane engine -----------===//

#include "engine/Engine.h"

#include "sim/Wire.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace eventnet;
using namespace eventnet::engine;
using eventnet::netkat::Packet;

namespace {

/// Histogram snapshot -> report digest. \p Scale converts the recorded
/// unit into the digest's (1e-9 for nanosecond histograms, 1 for raw
/// counts like batch occupancy).
LatencyDigest digestFrom(const obs::HistogramSnapshot &H, double Scale) {
  LatencyDigest D;
  D.Samples = H.TotalCount;
  D.MeanSec = H.mean() * Scale;
  D.P50Sec = static_cast<double>(H.percentile(0.50)) * Scale;
  D.P90Sec = static_cast<double>(H.percentile(0.90)) * Scale;
  D.P99Sec = static_cast<double>(H.percentile(0.99)) * Scale;
  D.MaxSec = static_cast<double>(H.Max) * Scale;
  return D;
}

} // namespace

const char *engine::overloadPolicyName(OverloadPolicy P) {
  switch (P) {
  case OverloadPolicy::Block:
    return "block";
  case OverloadPolicy::ShedOldest:
    return "shed-oldest";
  case OverloadPolicy::ShedNewest:
    return "shed-newest";
  }
  return "?";
}

std::optional<OverloadPolicy>
engine::parseOverloadPolicy(const std::string &Name) {
  if (Name == "block")
    return OverloadPolicy::Block;
  if (Name == "shed-oldest")
    return OverloadPolicy::ShedOldest;
  if (Name == "shed-newest")
    return OverloadPolicy::ShedNewest;
  return std::nullopt;
}

Engine::Engine(const nes::Nes &N, const topo::Topology &Topo,
               EngineConfig Cfg)
    : N(N), Topo(Topo), C(Cfg), Idx(Topo),
      Part(partitionSwitches(Idx, std::max(1u, Cfg.NumShards), Cfg.Partition,
                             Cfg.ImbalanceBound)),
      Compiled(N, Idx), Epochs(8) {
  if (C.NumShards == 0)
    C.NumShards = 1;
  if (C.BatchSize == 0)
    C.BatchSize = 1;
  if (C.Faults && C.Faults->plan().QueueCapacityClamp)
    C.QueueCapacity = std::min(
        C.QueueCapacity,
        static_cast<size_t>(C.Faults->plan().QueueCapacityClamp));

  Slots = std::make_unique<SwitchSlot[]>(Idx.numSwitches());
  for (uint32_t D = 0; D != Idx.numSwitches(); ++D) {
    SwitchSlot &Sl = Slots[D];
    Sl.Id = Idx.idOf(D);
    Sl.Shard = Part.ShardOf[D];
    Sl.Tag = N.emptySet();
    Sl.E = DenseBitSet();
    Sl.Published.store(new SwitchView{Sl.Tag, Sl.E, 0});
  }

  for (unsigned I = 0; I != C.NumShards; ++I) {
    auto S = std::make_unique<Shard>();
    S->Index = I;
    S->Q = std::make_unique<BoundedMpscQueue<Msg>>(C.QueueCapacity);
    S->Batch.resize(C.BatchSize);
    S->OutBufs.resize(C.NumShards);
    // Pre-size the recycled pools to their steady-state working set (a
    // full dequeue batch can fill any one egress buffer, and the
    // classifier emits at most a batch of outputs per packet chain), so
    // the hot loop's freelists never grow after construction.
    for (MsgBuf &B : S->OutBufs)
      B.reserve(C.BatchSize);
    S->SelfProc.reserve(C.BatchSize);
    S->ClsOut.reserve(C.BatchSize);
    // Observability state is allocated only when asked for: a disabled
    // run carries null pointers and the recording sites reduce to one
    // predictable branch.
    if (C.TraceEventCapacity)
      S->ObsRing = std::make_unique<obs::TraceRing>(C.TraceEventCapacity);
    if (C.LatencyHistograms)
      S->Lat = std::make_unique<ShardLatency>();
    if (C.Faults) {
      if (const faults::StallRule *R = C.Faults->stallFor(I)) {
        S->StallEvery = R->EveryBatches;
        S->StallUs = R->StallUs;
      }
    }
    Shards.push_back(std::move(S));
  }
  CtrlQ = std::make_unique<BoundedMpscQueue<uint32_t>>(4096);

  // Per-switch fault gate, resolved once: the hot loop's hook is one
  // vector<bool> test instead of a rule scan.
  FaultArmed.assign(Idx.numSwitches(), false);
  if (C.Faults && C.Faults->hasLinkRules())
    for (uint32_t D = 0; D != Idx.numSwitches(); ++D)
      FaultArmed[D] = C.Faults->armsSwitch(Idx.idOf(D));

  DetectNs.reserve(N.numEvents());
  for (unsigned E = 0; E != N.numEvents(); ++E)
    DetectNs.push_back(std::make_unique<std::atomic<int64_t>>(-1));

  if (C.FastUpdates)
    buildSubscriptions();

  // A sane clock base for stats() calls that precede run().
  StartNs.store(monotonicNs());

  // Intern the wire-format fields on this thread so workers never hit a
  // first-use interning path.
  sim::ipSrcField();
  sim::ipDstField();
  sim::kindField();
  sim::seqField();
  sim::probeField();
  sim::connField();
}

Engine::~Engine() {
  for (uint32_t D = 0; D != Idx.numSwitches(); ++D)
    delete Slots[D].Published.load();
}

void Engine::buildSubscriptions() {
  unsigned NE = N.numEvents();
  SubSwitches.assign(static_cast<size_t>(NE) * C.NumShards, {});
  SubShards.assign(NE, {});
  OwnedDense.assign(C.NumShards, {});
  for (uint32_t D = 0; D != Idx.numSwitches(); ++D)
    OwnedDense[Slots[D].Shard].push_back(D);

  // Does event E's arrival matter to dense switch D? Two ways:
  //  - config dependence: adding E to some family set changes D's
  //    table, so learning E sooner means reconfiguring sooner;
  //  - detection relevance: E shares a family set with an event
  //    detectable at D, so D's register content (enables/con inputs of
  //    the SWITCH rule) can gate a future local detection.
  // The family and event counts are small (NESes compiled from programs
  // are tiny), so the quadratic sweep is construction noise.
  std::vector<char> Sub(Idx.numSwitches());
  for (unsigned E = 0; E != NE; ++E) {
    std::fill(Sub.begin(), Sub.end(), 0);
    for (nes::SetId S = 0; S != N.numSets(); ++S) {
      const DenseBitSet &Bits = N.setBits(S);
      if (Bits.test(E)) {
        // Detection relevance: every switch detecting a co-member.
        for (uint32_t D = 0; D != Idx.numSwitches(); ++D) {
          if (Sub[D])
            continue;
          for (nes::EventId F : Compiled.eventsAt(D))
            if (Bits.test(F)) {
              Sub[D] = 1;
              break;
            }
        }
        continue;
      }
      DenseBitSet With = Bits;
      With.set(E);
      auto S2 = N.setIndex(With);
      if (!S2)
        continue;
      const topo::Configuration &A = N.configOf(S);
      const topo::Configuration &B = N.configOf(*S2);
      for (uint32_t D = 0; D != Idx.numSwitches(); ++D)
        if (!Sub[D] && !(A.tableFor(Slots[D].Id) == B.tableFor(Slots[D].Id)))
          Sub[D] = 1;
    }
    for (uint32_t D = 0; D != Idx.numSwitches(); ++D)
      if (Sub[D])
        SubSwitches[static_cast<size_t>(E) * C.NumShards + Slots[D].Shard]
            .push_back(D);
    for (uint32_t S = 0; S != C.NumShards; ++S)
      if (!SubSwitches[static_cast<size_t>(E) * C.NumShards + S].empty())
        SubShards[E].push_back(S);
  }
}

//===----------------------------------------------------------------------===//
// Trace recording
//===----------------------------------------------------------------------===//

int64_t Engine::logEntry(Shard &S, const Packet &Lp, int64_t Parent,
                         bool IsDelivery, nes::SetId Tag) {
  if (!C.RecordTrace && !C.StreamTrace)
    return -1;
  uint64_t Ticket = Tickets.fetch_add(1);
  if (C.RecordTrace)
    S.Trace.push_back({Ticket, Parent, Lp, IsDelivery, Tag});
  if (C.StreamTrace)
    S.StreamPending.push_back(
        {StreamItem::Entry, Ticket, Parent, Lp, IsDelivery, false});
  return static_cast<int64_t>(Ticket);
}

uint64_t Engine::drainTraceStream(std::vector<StreamItem> &Out) {
  // Watermarks first, buffers second: a shard flushes its pending items
  // *before* publishing a watermark, so every entry below the minimum
  // read here is already in some StreamBuf by the time we drain it —
  // the caller may commit up to W - 1 after this drain, never before.
  uint64_t W = UINT64_MAX;
  for (auto &S : Shards)
    W = std::min(W, S->StreamWatermark.load(std::memory_order_acquire));
  for (auto &S : Shards) {
    {
      std::lock_guard<std::mutex> Lock(S->StreamMu);
      Out.insert(Out.end(),
                 std::make_move_iterator(S->StreamBuf.begin()),
                 std::make_move_iterator(S->StreamBuf.end()));
      S->StreamBuf.clear();
    }
    {
      // Shed excusals are written by arbitrary producer threads under
      // the overflow lock; surface them as Excuse items.
      std::lock_guard<std::mutex> Lock(S->OverflowMu);
      for (int64_t T : S->ShedStream)
        Out.push_back({StreamItem::Excuse, static_cast<uint64_t>(T), -1,
                       Packet(), false, false});
      S->ShedStream.clear();
    }
  }
  return W == UINT64_MAX ? 0 : W;
}

uint64_t Engine::streamLagShed() {
  uint64_t Shed = 0;
  for (auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->StreamMu);
    Shed += S->StreamLagShed;
  }
  return Shed;
}

uint64_t Engine::streamBacklog() {
  uint64_t Backlog = 0;
  for (auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->StreamMu);
    Backlog += S->StreamBuf.size();
  }
  return Backlog;
}

//===----------------------------------------------------------------------===//
// The data path (owner-thread only)
//===----------------------------------------------------------------------===//

void Engine::applyRegister(Shard &S, SwitchSlot &Sl, const DenseBitSet &NewE) {
  auto TagOpt = N.setIndex(NewE);
  assert(TagOpt && "switch register left the NES family (Lemma 3)");
  if (!TagOpt)
    return;

  // One monotonic clock for the whole update-latency measurement:
  // DetectNs and LearnNs are both raw monotonicNs(), so the Transition
  // digest is a pure difference on one time base.
  int64_t Now = monotonicNs();
  NewE.forEach([&](unsigned E) {
    if (!Sl.E.test(E)) {
      S.LearnNs.try_emplace({Sl.Id, static_cast<nes::EventId>(E)}, Now);
      obsRecord(S, obs::TraceKind::RegisterLearn,
                static_cast<uint32_t>(Sl.Id), E);
    }
  });

  Sl.E = NewE;
  Sl.Tag = *TagOpt;

  // The atomic transition: swap the published view, retire the old one.
  const SwitchView *Old = Sl.Published.load();
  Sl.Published.store(new SwitchView{Sl.Tag, Sl.E, Old->Version + 1});
  S.Retired.retire(Old, Epochs.retireEpoch());
  S.Transitions.add();
  obsRecord(S, obs::TraceKind::ConfigSwap, static_cast<uint32_t>(Sl.Id),
            static_cast<uint32_t>(Old->Version + 1));
}

void Engine::sendToShard(uint32_t Target, Msg &&M) {
  // Never block: a cycle of full bounded queues with blocking producers
  // (who are also the consumers) would deadlock. The ring is the
  // lock-free common case; what happens beyond it is the overload
  // policy's call (overflowMsg).
  Pending.fetch_add(1);
  if (C.LatencyHistograms)
    M.EnqNs = monotonicNs();
  Shard &Sh = *Shards[Target];
  if (M.K == Msg::CtrlDelta) {
    // Priority lane: a delta that queued behind a storm's worth of data
    // packets would defeat the fast pipeline, so it never enters the
    // ring at all — the owner drains this lane ahead of every batch.
    std::lock_guard<std::mutex> Lock(Sh.CtrlMu);
    Sh.CtrlLane.push_back(std::move(M));
    Sh.CtrlLaneSize.store(static_cast<uint32_t>(Sh.CtrlLane.size()),
                          std::memory_order_release);
    return;
  }
  if (Sh.Q->tryPush(std::move(M)))
    return;
  overflowMsg(Sh, std::move(M));
}

void Engine::shedLocked(Shard &Dst, Msg &M) {
  // The message is retired unprocessed. Its Pending share is released
  // and it is tallied as a (shed) drop, so delivered + dropped ==
  // injected still holds and the audit can tell policy loss from
  // silent loss. An unstarted injection is counted injected-and-dropped
  // for the same reason; its emission was never trace-logged, so the
  // checker sees nothing to excuse.
  Pending.fetch_sub(1);
  Dst.Shed.add();
  Dst.Dropped.add();
  Dropped.add();
  FaultSheds.add();
  if (M.K == Msg::PacketIn) {
    if (M.P.FromDup)
      DupDropped.add();
    // The hop's egress entry is now a chain leaf; excuse it.
    if (M.P.Parent >= 0) {
      Dst.ShedTickets.push_back(M.P.Parent);
      if (C.StreamTrace)
        Dst.ShedStream.push_back(M.P.Parent);
    }
  } else if (M.K == Msg::Inject) {
    Injected.add();
  }
  obsRecord(Dst, obs::TraceKind::Shed, Dst.Index,
            static_cast<uint32_t>(M.K));
}

void Engine::overflowMsg(Shard &Dst, Msg &&M) {
  std::lock_guard<std::mutex> Lock(Dst.OverflowMu);
  if (C.Overload != OverloadPolicy::Block && !isCtrlMsg(M) &&
      Dst.Overflow.size() >= Dst.Q->capacity()) {
    // Backlog bound reached: shed a data-plane message. Control
    // messages are never shed (dropping a CTRLSEND would wedge event
    // propagation, not degrade it).
    if (C.Overload == OverloadPolicy::ShedNewest) {
      shedLocked(Dst, M);
      return;
    }
    for (auto It = Dst.Overflow.begin(); It != Dst.Overflow.end(); ++It) {
      if (isCtrlMsg(*It))
        continue;
      shedLocked(Dst, *It);
      Dst.Overflow.erase(It);
      break;
    }
    // If the whole backlog was control traffic (rare), admit anyway:
    // the bound is a degradation target, not a correctness invariant.
  }
  Dst.Overflow.push_back(std::move(M));
  // A spill means the ring is full: the true backlog is ring + overflow.
  Dst.QueueHighWater.raiseTo(Dst.Q->capacity() + Dst.Overflow.size());
}

void Engine::forwardOut(Shard &S, const EnginePacket &P, uint32_t AtDense,
                        const Packet &Out, const DenseBitSet &OutDigest) {
  // A table's actions rewrite pt (and header fields), never sw, so the
  // output sits at the switch we just processed — whose dense index the
  // caller already knows. Fall back to the hash only if a table ever
  // does rewrite sw.
  Location At = Out.loc();
  uint32_t D = At.Sw == Slots[AtDense].Id ? AtDense : Idx.denseOf(At.Sw);
  const Egress *Eg = Idx.egressAt(D, At.Pt);
  if (!Eg) {
    // Dangling port: discarded, no occurrence logged (as in the
    // simulator).
    Dropped.add();
    S.Dropped.add();
    if (P.FromDup)
      DupDropped.add();
    obsRecord(S, obs::TraceKind::Drop, static_cast<uint32_t>(At.Sw),
              /*reason: dangling port*/ 1);
    return;
  }

  if (Eg->IsHost) {
    logEntry(S, Out, P.Parent, /*IsDelivery=*/true, P.Tag);
    Delivered.add();
    if (P.FromDup)
      DupDelivered.add();
    HostId H = Eg->Host;
    if (C.RecordDeliveries)
      S.Delivered.push_back({H, Out});
    if (C.DeliverySink)
      C.DeliverySink(H, Out);

    // Host application: answer echo requests addressed to us.
    if (C.EchoReplies &&
        Out.getOr(sim::kindField(), -1) == sim::KindRequest &&
        Out.getOr(sim::ipDstField(), -1) == static_cast<Value>(H)) {
      Value Src = Out.getOr(sim::ipSrcField(), -1);
      if (Src >= 0) {
        uint64_t Seq = static_cast<uint64_t>(Out.getOr(sim::seqField(), 0));
        // The replying host sits at this switch, i.e. on this shard;
        // the reply rides the batched egress buffer like any output
        // (flushOut does the Pending accounting for the whole batch).
        Msg &R = S.OutBufs[Slots[D].Shard].next();
        R.K = Msg::Inject;
        R.From = H;
        R.Header = sim::makeWireHeader(H, static_cast<HostId>(Src),
                                       sim::KindReply, Seq);
        // The session tag rides the round trip: the reply must route
        // back to the connection that emitted the request.
        Value Conn = Out.getOr(sim::connField(), -1);
        if (Conn >= 0)
          R.Header.set(sim::connField(), Conn);
      }
    }
    return;
  }

  // Fault hook: switch-to-switch links are the lossy medium. The
  // verdict is a pure content hash (faults/Injector.h), so the same
  // packet at the same egress faults identically in every run.
  faults::Action FA = faults::Action::None;
  if (C.Faults && FaultArmed[D])
    FA = C.Faults->decide(At.Sw, At.Pt, Out);

  if (FA == faults::Action::Drop) {
    // The egress occurrence never happens: the chain ends at P.Parent,
    // which the ledger excuses for the checker.
    S.FaultRecs.push_back(
        faults::Injector::recordAt(faults::FaultKind::Drop, At.Sw, At.Pt, Out));
    if (P.Parent >= 0) {
      S.ExcusedTickets.push_back(P.Parent);
      if (C.StreamTrace)
        S.StreamPending.push_back({StreamItem::Excuse,
                                   static_cast<uint64_t>(P.Parent), -1,
                                   Packet(), false, false});
    }
    Dropped.add();
    S.Dropped.add();
    FaultDrops.add();
    if (P.FromDup)
      DupDropped.add();
    obsRecord(S, obs::TraceKind::FaultDrop, static_cast<uint32_t>(At.Sw),
              At.Pt);
    return;
  }

  int64_t EgressTicket = logEntry(S, Out, P.Parent, false, P.Tag);
  uint32_t DstShard = Slots[Eg->DstDense].Shard;
  auto FillHop = [&](Msg &M, int64_t ParentTicket, bool FromDup) {
    M.K = Msg::PacketIn;
    M.P.Pkt = Out;
    M.P.Pkt.setLoc(Eg->Dst);
    M.P.Tag = P.Tag;
    M.P.Digest = OutDigest;
    M.P.Parent = ParentTicket;
    M.P.Dense = Eg->DstDense;
    M.P.IngressLogged = false;
    M.P.FromDup = FromDup;
  };

  if (FA == faults::Action::Delay) {
    // Hold the hop back for DelayPolls drain iterations instead of
    // buffering it: later traffic overtakes it (reordering). Its
    // Pending share is taken here because flushOut will never see it.
    Shard::DelayedMsg DM;
    DM.Target = DstShard;
    DM.ReleaseAt =
        S.DrainPolls + std::max(1u, C.Faults->plan().DelayPolls);
    FillHop(DM.M, EgressTicket, P.FromDup);
    Pending.fetch_add(1);
    S.Delayed.push_back(std::move(DM));
    S.FaultRecs.push_back(faults::Injector::recordAt(faults::FaultKind::Delay,
                                                     At.Sw, At.Pt, Out));
    FaultDelays.add();
    Forwarded.add();
    obsRecord(S, obs::TraceKind::FaultDelay, static_cast<uint32_t>(At.Sw),
              At.Pt);
    return;
  }

  // Build the hop into a recycled egress slot (copy-assignments reuse
  // the slot's heap capacity; nothing here allocates once warm).
  FillHop(S.OutBufs[DstShard].next(), EgressTicket, P.FromDup);
  Forwarded.add();

  if (FA == faults::Action::Dup) {
    // Second copy with its own egress entry (the trace stays a tree);
    // the ledger marks that entry so the checker prunes the duplicate
    // subtree before verifying Definition 6.
    int64_t DupTicket = logEntry(S, Out, P.Parent, false, P.Tag);
    if (DupTicket >= 0) {
      S.DupTickets.push_back(DupTicket);
      if (C.StreamTrace)
        S.StreamPending.back().IsDup = true; // the entry just logged
    }
    FillHop(S.OutBufs[DstShard].next(), DupTicket, /*FromDup=*/true);
    S.FaultRecs.push_back(
        faults::Injector::recordAt(faults::FaultKind::Dup, At.Sw, At.Pt, Out));
    FaultDups.add();
    Forwarded.add();
    obsRecord(S, obs::TraceKind::FaultDup, static_cast<uint32_t>(At.Sw),
              At.Pt);
  }
}

void Engine::processPacket(Shard &S, EnginePacket &P) {
  uint32_t D = P.Dense;
  SwitchSlot &Sl = Slots[D];
  assert(Sl.Id == P.Pkt.sw() && "stale dense index on an in-flight packet");

  if (!P.IngressLogged) {
    P.Parent = logEntry(S, P.Pkt, P.Parent, false, P.Tag);
    P.IngressLogged = true;
  }
  obsRecord(S, obs::TraceKind::Hop, static_cast<uint32_t>(Sl.Id),
            static_cast<uint32_t>(P.Tag));

  // SWITCH rule: learn the digest, then greedily-consistent fresh events
  // (the same sharpening as runtime::Machine and sim::Simulation). The
  // working sets live in shard-owned scratch bitsets whose capacity
  // survives across packets — the hot loop builds no fresh DenseBitSets.
  //
  // Steady state (the throughput regime): the digest carries nothing the
  // register lacks, so Known is the register itself — a subset test
  // instead of a copy-and-union.
  bool DigestKnown = P.Digest.isSubsetOf(Sl.E);
  const DenseBitSet *KnownP = &Sl.E;
  if (!DigestKnown) {
    S.ScratchKnown = Sl.E;
    S.ScratchKnown |= P.Digest;
    KnownP = &S.ScratchKnown;
  }
  const DenseBitSet &Known = *KnownP;
  DenseBitSet &Fresh = S.ScratchFresh;
  Fresh.clear();
  for (nes::EventId E : Compiled.eventsAt(D)) {
    if (Known.test(E) || Fresh.test(E))
      continue;
    if (!N.event(E).matches(P.Pkt))
      continue;
    DenseBitSet &Ext = S.ScratchExt;
    Ext = Known;
    Ext |= Fresh;
    Ext.set(E);
    if (N.enables(Known, E) && N.con(Ext)) {
      Fresh.set(E);
      // First (and only) detection: the event's location is this switch.
      int64_t Expected = -1;
      DetectNs[E]->compare_exchange_strong(Expected, monotonicNs());
      obsRecord(S, obs::TraceKind::EventDetect, E,
                static_cast<uint32_t>(Sl.Id));
      Pending.fetch_add(1);
      // CtrlQ is sized far beyond the event count (each event is
      // detected once) and the controller always drains, so a plain
      // yield on the full path cannot deadlock.
      CtrlQ->pushBlocking(static_cast<uint32_t>(E));
      if (C.FastUpdates) {
        // Shard-local fast path: every subscribed switch this shard
        // owns transitions now, one function call after detection —
        // no queue hop, no controller wake on the critical path. Ext
        // (this detection's consistent extension: register + digest +
        // fresh events + E, all occurred) rides along as the causal
        // context for switches whose registers lack E's causes. The
        // wake comes second: notifying first can hand an oversubscribed
        // core to the controller ahead of the fan-out.
        fanOutLocal(S, E, D, S.ScratchExt);
        CtrlWake.notify();
      }
    }
  }

  // Forward with the *stamped* configuration (per-packet consistency).
  const MatchPipeline &Pipe = Compiled.pipe(P.Tag, D);

  // Merge from the *current* register, not the Known snapshot:
  // registers must only grow, whatever happened in between. In steady
  // state nothing was learned: the register stands and doubles as the
  // outgoing digest (P.Digest ⊆ E, so Digest | E == E) — no unions, no
  // transition check.
  const DenseBitSet *OutDigestP = &Sl.E;
  if (!DigestKnown || !Fresh.empty()) {
    DenseBitSet &NewE = S.ScratchNew;
    NewE = Sl.E;
    NewE |= Known;
    NewE |= Fresh;
    if (NewE != Sl.E)
      applyRegister(S, Sl, NewE);
    DenseBitSet &OutDigest = S.ScratchDigest;
    OutDigest = P.Digest;
    OutDigest |= NewE;
    OutDigestP = &OutDigest;
  }
  const DenseBitSet &OutDigest = *OutDigestP;

  S.Processed.add();
  if (C.UseClassifier) {
    // Fast path: one contiguous classifier program, outputs emitted into
    // the shard's recycled packet buffer — allocation-free once warm.
    S.ClsOut.reset();
    Pipe.applyClassifier(P.Pkt, S.ClsOut);
    if (S.ClsOut.size() == 0) {
      Dropped.add();
      S.Dropped.add();
      if (P.FromDup)
        DupDropped.add();
      obsRecord(S, obs::TraceKind::Drop, static_cast<uint32_t>(Sl.Id),
                /*reason: table miss / drop rule*/ 0);
      return;
    }
    for (size_t I = 0; I != S.ClsOut.size(); ++I)
      forwardOut(S, P, D, S.ClsOut[I], OutDigest);
    return;
  }

  // Oracle path: the flattened-FDD walk (kept for differential testing;
  // allocates its output packets).
  std::vector<Packet> Outs = std::move(S.Outs);
  Outs.clear();
  Pipe.apply(P.Pkt, Outs);
  if (Outs.empty()) {
    Dropped.add();
    S.Dropped.add();
    if (P.FromDup)
      DupDropped.add();
    obsRecord(S, obs::TraceKind::Drop, static_cast<uint32_t>(Sl.Id),
              /*reason: table miss / drop rule*/ 0);
    S.Outs = std::move(Outs);
    return;
  }
  for (Packet &Out : Outs)
    forwardOut(S, P, D, Out, OutDigest);
  S.Outs = std::move(Outs); // return the capacity for reuse
}

void Engine::mergeEventInto(Shard &S, uint32_t Dense, unsigned E,
                            const DenseBitSet &Ctx) {
  SwitchSlot &Sl = Slots[Dense];
  if (Sl.E.test(E))
    return;
  DenseBitSet &NewE = S.ScratchFan;
  NewE = Sl.E;
  NewE.set(E);
  if (!N.setIndex(NewE)) {
    // The single-event union left the family: this switch has not yet
    // heard one of E's *causes* (detection checked enables() against the
    // detector's knowledge, not this register). Merge the sender's
    // context instead — a set of occurred events containing E's enabling
    // chain, so this is the same union a gossip digest carrying that
    // context would have applied.
    NewE |= Ctx;
  }
  applyRegister(S, Sl, NewE);
}

void Engine::fanOutLocal(Shard &S, unsigned E, uint32_t DetectDense,
                         const DenseBitSet &Ctx) {
  const auto &Subs =
      SubSwitches[static_cast<size_t>(E) * C.NumShards + S.Index];
  for (uint32_t D : Subs) {
    if (D == DetectDense)
      continue; // the detector merges via its own Fresh set
    if (Slots[D].E.test(E))
      continue;
    mergeEventInto(S, D, E, Ctx);
    S.FastLearns.add();
  }
}

void Engine::handleInject(Shard &S, HostId From, Packet Header) {
  Location At = Topo.hostLoc(From);
  uint32_t D = Idx.denseOf(At.Sw);
  SwitchSlot &Sl = Slots[D];

  EnginePacket P;
  P.Pkt = std::move(Header);
  P.Pkt.setLoc(At);
  P.Dense = D;
  // IN rule: stamp the ingress switch's current tag. The emission is
  // logged now, at stamping time, so the trace's per-switch order places
  // it against the register state it observed.
  P.Tag = Sl.Tag;
  P.Parent = logEntry(S, P.Pkt, -1, false, P.Tag);
  P.IngressLogged = true;
  Injected.add();
  obsRecord(S, obs::TraceKind::Inject, static_cast<uint32_t>(From),
            static_cast<uint32_t>(At.Sw));
  processPacket(S, P);
}

//===----------------------------------------------------------------------===//
// Threads
//===----------------------------------------------------------------------===//

void Engine::processMsg(Shard &S, Msg &M) {
  switch (M.K) {
  case Msg::PacketIn:
    processPacket(S, M.P);
    break;
  case Msg::Inject:
    handleInject(S, M.From, std::move(M.Header));
    break;
  case Msg::CtrlMerge:
    // CTRLSEND: merge the controller's set into every owned register.
    for (uint32_t D = 0; D != Idx.numSwitches(); ++D) {
      SwitchSlot &Sl = Slots[D];
      if (&S != Shards[Sl.Shard].get())
        continue;
      DenseBitSet NewE = Sl.E | M.Merge;
      if (NewE != Sl.E)
        applyRegister(S, Sl, NewE);
    }
    break;
  case Msg::CtrlDelta:
    // CTRLSEND, delta form: one event id, merged as a single-event
    // union in the common case; M.Merge (the controller's occurred set)
    // is the causal fallback for registers that lack the event's
    // enabling chain. Under explicit broadcast every owned register
    // learns it (the historical contract); otherwise only the
    // subscribed switches do — the rest would not change their table or
    // detection behavior, so routing past them only removes queue
    // traffic.
    if (C.CtrlBroadcast) {
      for (uint32_t D : OwnedDense[S.Index])
        mergeEventInto(S, D, M.Event, M.Merge);
    } else {
      const auto &Subs =
          SubSwitches[static_cast<size_t>(M.Event) * C.NumShards + S.Index];
      for (uint32_t D : Subs)
        mergeEventInto(S, D, M.Event, M.Merge);
    }
    break;
  }
  // Pending accounting happens per batch (drainBatch), not per message.
}

void Engine::prefetchMsg(const Msg &M) const {
  if (M.K != Msg::PacketIn)
    return;
  // Touch the next packet's classifier program (its first op) while the
  // current one executes — the arena line is the miss worth hiding.
  Compiled.pipe(M.P.Tag, M.P.Dense).classifier().prefetchRoot();
}

void Engine::pushBatchToShard(uint32_t Target, Msg *Msgs, size_t N) {
  // One tryPushBatch per retry (a single tail CAS covers the whole
  // claimed prefix); leftovers of a full ring go to the overflow deque —
  // producers never block. The caller has already added the messages to
  // Pending.
  if (C.LatencyHistograms) {
    // One clock read covers the whole batch: dwell is measured from the
    // hand-off point, and the batch is handed off at once.
    int64_t Now = monotonicNs();
    for (size_t I = 0; I != N; ++I)
      Msgs[I].EnqNs = Now;
  }
  Shard &Dst = *Shards[Target];
  size_t Done = 0;
  while (Done != N) {
    size_t Pushed = Dst.Q->tryPushBatch(Msgs + Done, N - Done);
    if (Pushed == 0)
      break;
    Done += Pushed;
  }
  if (Done != N && C.Overload == OverloadPolicy::Block) {
    // Bounded spin -> yield -> backoff retry before spilling: the
    // consumer usually frees cells quickly, and a short wait keeps the
    // backlog on the lock-free ring instead of the mutexed deque. The
    // bound matters — an unbounded wait on a cycle of full rings whose
    // owners are all producing would deadlock.
    uint32_t SleepUs = 1;
    for (unsigned Attempt = 1; Done != N && Attempt <= 320; ++Attempt) {
      if (Attempt > 256) {
        std::this_thread::sleep_for(std::chrono::microseconds(SleepUs));
        SleepUs = std::min(SleepUs * 2, 64u);
      } else if (Attempt > 64) {
        std::this_thread::yield();
      }
      Done += Dst.Q->tryPushBatch(Msgs + Done, N - Done);
    }
  }
  for (; Done != N; ++Done) {
    // Copy out of the caller's recycled slot; the overload policy
    // decides the message's fate.
    Msg Spill = Msgs[Done];
    overflowMsg(Dst, std::move(Spill));
  }
}

void Engine::flushOut(Shard &S) {
  // Publish the batch's buffered egress, one batch push per target ring.
  //
  // One Pending increment covers every buffered message, and it happens
  // before any of them becomes visible — consumers can only drive
  // Pending through zero after *all* this batch's outputs are counted.
  // OutBufs[Index] is always empty here (drained in place by
  // drainBatch's self-delivery loop, which never touches Pending).
  uint64_t Buffered = 0;
  for (const MsgBuf &B : S.OutBufs)
    Buffered += B.size();
  if (Buffered)
    Pending.fetch_add(static_cast<int64_t>(Buffered));
  for (uint32_t T = 0; T != S.OutBufs.size(); ++T) {
    MsgBuf &B = S.OutBufs[T];
    if (B.size() == 0)
      continue;
    obsRecord(S, obs::TraceKind::CrossShardPush, T,
              static_cast<uint32_t>(B.size()));
    pushBatchToShard(T, B.data(), B.size());
    B.reset();
  }
}

void Engine::drainSelf(Shard &S) {
  // Self-delivery: hops that stay on this shard never touch the MPSC
  // ring (no cell copies, no queue atomics, no Pending churn) — they
  // are drained in place until every chain ends or leaves the shard.
  MsgBuf &Self = S.OutBufs[S.Index];
  while (Self.size() != 0) {
    std::swap(S.SelfProc, Self);
    for (size_t I = 0; I != S.SelfProc.size(); ++I) {
      if (I + 1 != S.SelfProc.size())
        prefetchMsg(S.SelfProc[I + 1]);
      processMsg(S, S.SelfProc[I]);
    }
    S.SelfProc.reset();
  }
}

void Engine::releaseDelayed(Shard &S) {
  // DelayPolls is one constant per plan, so the stash is ordered by
  // ReleaseAt and the due prefix sits at the front. Releases can stash
  // new delayed hops (push_back with a strictly later deadline), which
  // the loop condition leaves alone.
  while (!S.Delayed.empty() && S.Delayed.front().ReleaseAt <= S.DrainPolls) {
    Shard::DelayedMsg DM = std::move(S.Delayed.front());
    S.Delayed.pop_front();
    if (DM.Target != S.Index) {
      // Pending was counted at stash time; hand the message over.
      pushBatchToShard(DM.Target, &DM.M, 1);
      continue;
    }
    // A held intra-shard hop: process in place. Outputs are counted
    // into Pending (flushOut) before this message's own share retires,
    // preserving the quiescence invariant.
    processMsg(S, DM.M);
    drainSelf(S);
    flushOut(S);
    Pending.fetch_sub(1);
  }
}

size_t Engine::drainCtrlLane(Shard &S) {
  // Move the lane out under the lock, merge outside it (the merges do
  // RCU publication work; the controller must never wait on that).
  std::deque<Msg> Lane;
  {
    std::lock_guard<std::mutex> Lock(S.CtrlMu);
    Lane.swap(S.CtrlLane);
    S.CtrlLaneSize.store(0, std::memory_order_relaxed);
  }
  for (Msg &M : Lane) {
    processMsg(S, M);
    Pending.fetch_sub(1);
  }
  return Lane.size();
}

size_t Engine::drainBatch(Shard &S) {
  // Control deltas jump the data backlog: drain the priority lane
  // before touching the ring. One relaxed load when the lane is empty.
  size_t Ctrl = S.CtrlLaneSize.load(std::memory_order_acquire) != 0
                    ? drainCtrlLane(S)
                    : 0;

  if (C.Faults) {
    // The poll counter ticks on every call — including empty ones — so
    // a delayed message still releases when it is the only pending work
    // (the quiescence barrier would otherwise never clear).
    ++S.DrainPolls;
    if (!S.Delayed.empty())
      releaseDelayed(S);
  }

  size_t N = S.Q->tryPopBatch(S.Batch.data(), C.BatchSize);
  if (N == 0) {
    // Ring empty: check the overflow (rare; only populated while the
    // ring was full).
    std::unique_lock<std::mutex> Lock(S.OverflowMu);
    size_t Backlog = S.Overflow.size();
    size_t Max = std::min<size_t>(C.BatchSize, Backlog);
    for (; N != Max; ++N) {
      S.Batch[N] = std::move(S.Overflow.front());
      S.Overflow.pop_front();
    }
    Lock.unlock();
    if (N == 0)
      return Ctrl;
    S.QueueHighWater.raiseTo(Backlog + S.Q->sizeApprox());
  }

  // Queue-depth high-water mark: what was still pending after the pop,
  // plus what we just claimed.
  S.QueueHighWater.raiseTo(S.Q->sizeApprox() + N);

  if (ShardLatency *L = S.Lat.get()) {
    // One clock read per batch; each message's dwell is measured against
    // it. Self-delivered hops never ride the ring, so every message here
    // carries a stamp.
    int64_t Now = monotonicNs();
    for (size_t I = 0; I != N; ++I) {
      int64_t Dwell = Now - S.Batch[I].EnqNs;
      L->DwellNs.record(Dwell > 0 ? static_cast<uint64_t>(Dwell) : 0);
    }
    L->Occupancy.record(N);
  }

  for (size_t I = 0; I != N; ++I) {
    if (I + 1 != N)
      prefetchMsg(S.Batch[I + 1]);
    processMsg(S, S.Batch[I]);
  }

  // The inputs' Pending share (subtracted below) keeps the quiescence
  // count positive for the whole self-delivery drain.
  drainSelf(S);

  // Outputs are counted into Pending (flushOut) before the inputs are
  // retired, so Pending never dips to zero with work still in flight.
  flushOut(S);
  Pending.fetch_sub(static_cast<int64_t>(N));

  if (S.StallEvery && ++S.NonEmptyBatches % S.StallEvery == 0) {
    // Fault-plan stall: the worker goes dark for StallUs while its ring
    // keeps filling — backpressure for the overload policy to absorb.
    S.Stalls.add();
    FaultStalls.add();
    obsRecord(S, obs::TraceKind::FaultStall, S.Index, S.StallUs);
    std::this_thread::sleep_for(std::chrono::microseconds(S.StallUs));
  }
  return N + Ctrl;
}

void Engine::workerLoop(unsigned ShardIdx) {
  Shard &S = *Shards[ShardIdx];
  uint64_t Spins = 0;
  uint64_t SinceReclaim = 0;
  unsigned SleepUs = 1;
  // Streaming sink: publish this iteration's trace entries, then promise
  // a watermark. The order is load-bearing — the flush precedes the
  // store with no logging in between, and any future logEntry on this
  // thread draws a ticket >= the stored value, so "no entry below the
  // watermark is still unpublished by this shard" holds by construction.
  auto FlushStream = [&] {
    if (!S.StreamPending.empty()) {
      std::lock_guard<std::mutex> Lock(S.StreamMu);
      // Bounded hand-off: a lagging collector must cost shed entries
      // (counted, verdict-degrading), never memory that grows with the
      // horizon or a data path blocked on verification. The watermark
      // below still advances over shed tickets — the checker prunes
      // their orphaned subtrees and reports inconclusive.
      size_t Room = S.StreamBuf.size() < C.StreamBufCap
                        ? C.StreamBufCap - S.StreamBuf.size()
                        : 0;
      size_t Take = std::min(Room, S.StreamPending.size());
      S.StreamBuf.insert(
          S.StreamBuf.end(), std::make_move_iterator(S.StreamPending.begin()),
          std::make_move_iterator(S.StreamPending.begin() +
                                  static_cast<ptrdiff_t>(Take)));
      S.StreamLagShed += S.StreamPending.size() - Take;
      S.StreamPending.clear();
    }
    uint64_t T = Tickets.load(std::memory_order_relaxed);
    if (T != S.StreamWatermark.load(std::memory_order_relaxed))
      S.StreamWatermark.store(T, std::memory_order_release);
  };
  while (true) {
    if (C.StreamTrace)
      FlushStream();
    size_t N = drainBatch(S);
    if (N != 0) {
      Spins = 0;
      SleepUs = 1;
      SinceReclaim += N;
      if (SinceReclaim >= 1024) {
        SinceReclaim = 0;
        S.Retired.tryReclaim(Epochs.minActiveEpoch());
      }
      continue;
    }
    if (StopFlag.load())
      break;
    // Adaptive idle backoff: spin (cheap, catches back-to-back bursts),
    // then yield (lets co-scheduled shards run), then sleep in doubling
    // steps up to the configured cap — an underloaded shard under a good
    // partition spends its life here instead of hammering the queue's
    // cache lines. Any drained work resets to the spin stage.
    ++Spins;
    if (Spins <= 64)
      continue;
    if (Spins <= 256 || C.IdleSleepUs == 0) {
      std::this_thread::yield();
      continue;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(SleepUs));
    S.IdleSleeps.add();
    SleepUs = std::min(SleepUs * 2, C.IdleSleepUs);
  }
  if (C.StreamTrace) {
    // This shard will never log again: flush the tail and lift the
    // shard's watermark out of every future min.
    FlushStream();
    S.StreamWatermark.store(UINT64_MAX, std::memory_order_release);
  }
}

void Engine::controllerLoop() {
  uint64_t Spins = 0;
  unsigned SleepUs = 1;
  while (true) {
    uint32_t E;
    if (CtrlQ->tryPop(E)) {
      Spins = 0;
      SleepUs = 1;
      // CTRLRECV: fold the event into R once.
      if (!Occurred.test(E)) {
        Occurred.set(E);
        Events.add();
        if (C.FastUpdates) {
          // CTRLSEND, delta form: one event id per shard that hosts a
          // subscriber (or per shard, under explicit broadcast) instead
          // of O(NumShards) full-bitset copies — independent concurrent
          // updates pipeline instead of serializing on set merges.
          auto SendDelta = [&](uint32_t I) {
            Msg M;
            M.K = Msg::CtrlDelta;
            M.Event = E;
            // Occurred rides along as the causal-fallback context: a
            // register missing one of E's causes merges the full set
            // (exactly what the legacy CtrlMerge would have applied)
            // instead of leaving the NES family.
            M.Merge = Occurred;
            sendToShard(I, std::move(M));
            CtrlDeltas.add();
          };
          if (C.CtrlBroadcast)
            for (uint32_t I = 0; I != C.NumShards; ++I)
              SendDelta(I);
          else
            for (uint32_t I : SubShards[E])
              SendDelta(I);
        } else if (C.CtrlBroadcast)
          for (uint32_t I = 0; I != C.NumShards; ++I) {
            Msg M;
            M.K = Msg::CtrlMerge;
            M.Merge = Occurred;
            sendToShard(I, std::move(M));
          }
        if (C.Faults && C.Faults->plan().CtrlStormRepeat) {
          // Controller event storm: re-broadcast the merged set to every
          // shard CtrlStormRepeat extra times. Semantically idempotent
          // (registers only grow), so the storm stresses the queues and
          // the overload policy without changing the reachable configs.
          uint32_t Reps = C.Faults->plan().CtrlStormRepeat;
          for (uint32_t R = 0; R != Reps; ++R)
            for (uint32_t I = 0; I != C.NumShards; ++I) {
              Msg M;
              M.K = Msg::CtrlMerge;
              M.Merge = Occurred;
              sendToShard(I, std::move(M));
            }
          FaultStorms.add(static_cast<uint64_t>(Reps) * C.NumShards);
          faults::FaultRecord SR;
          SR.K = faults::FaultKind::Storm;
          SR.Sw = static_cast<int64_t>(E);
          SR.Pt = static_cast<int64_t>(Reps);
          StormRecs.push_back(SR);
          obsRecord(*Shards[0], obs::TraceKind::CtrlStorm, E, Reps);
        }
      }
      Pending.fetch_sub(1);
      continue;
    }
    if (StopFlag.load())
      break;
    if (C.FastUpdates) {
      // Event-driven wake: block until a worker notifies (it does so
      // right after every CtrlQ push), then re-drain. No backoff floor
      // under propagation latency; the timeout is only a shutdown
      // safety net (finish() also notifies after raising StopFlag).
      CtrlWake.wait(/*TimeoutUs=*/50000);
      continue;
    }
    // Legacy idle backoff, same as the workers: events are rare, so the
    // controller is the most persistently idle thread of all. The sleep
    // cap is also a floor on event propagation latency — the reason the
    // FastUpdates path above exists.
    ++Spins;
    if (Spins <= 64)
      continue;
    if (Spins <= 256 || C.IdleSleepUs == 0) {
      std::this_thread::yield();
      continue;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(SleepUs));
    SleepUs = std::min(SleepUs * 2, C.IdleSleepUs);
  }
}

//===----------------------------------------------------------------------===//
// Orchestration
//===----------------------------------------------------------------------===//

void Engine::start() {
  assert(!Ran.load() && "an Engine runs once");
  assert(!Started && "start() already ran");
  StartNs.store(monotonicNs());
  StopFlag.store(false);
  InjBufs.resize(C.NumShards);

  CtrlThread = std::thread([this] { controllerLoop(); });
  for (unsigned I = 0; I != C.NumShards; ++I)
    Shards[I]->Thread = std::thread([this, I] { workerLoop(I); });
  Started = true;
}

void Engine::injectBatch(const Injection *Inj, size_t N) {
  assert(Started && "injectBatch() before start()");
  // Injections are grouped by the shard owning each host's ingress
  // switch and handed over with one batch push (and one Pending add) per
  // shard — the injector never round-robins single messages through the
  // rings. The group buffers keep their capacity across calls.
  for (auto &B : InjBufs)
    B.clear();
  for (size_t I = 0; I != N; ++I) {
    const Injection &In = Inj[I];
    Location At = Topo.hostLoc(In.From);
    Msg M;
    M.K = Msg::Inject;
    M.From = In.From;
    M.Header = In.Header;
    InjBufs[Slots[Idx.denseOf(At.Sw)].Shard].push_back(std::move(M));
  }
  for (uint32_t T = 0; T != C.NumShards; ++T) {
    if (InjBufs[T].empty())
      continue;
    Pending.fetch_add(static_cast<int64_t>(InjBufs[T].size()));
    pushBatchToShard(T, InjBufs[T].data(), InjBufs[T].size());
  }
}

void Engine::awaitQuiescence() {
  // Every message (packets, replies, controller work) drains. Outputs
  // are always counted into Pending before their inputs retire, so zero
  // really means quiet.
  while (Pending.load() != 0)
    std::this_thread::yield();
}

void Engine::finish() {
  if (!Started || Ran.load())
    return;
  ElapsedSec = nowSec();
  StopFlag.store(true);
  CtrlWake.notify(); // rouse a controller blocked in its event wait
  for (auto &S : Shards)
    S->Thread.join();
  CtrlThread.join();

  for (auto &S : Shards)
    S->Retired.tryReclaim(Epochs.minActiveEpoch());

  mergeResults();
  Ran.store(true);
}

void Engine::run(const Workload &W) {
  start();
  for (const Phase &Ph : W.Phases) {
    // An external stop (signal handler) takes effect at the phase
    // boundary: the current phase still quiesces, so the trace and the
    // audit are complete for everything that was injected.
    if (C.StopRequested && C.StopRequested->load())
      break;
    injectBatch(Ph.Injections.data(), Ph.Injections.size());
    awaitQuiescence();
  }
  finish();
}

void Engine::mergeResults() {
  // Global trace: sort shard-local records by ticket. Per-switch order
  // equals each owner's processing order (a switch's entries all come
  // from one thread, ticketed in program order) and a parent's ticket
  // precedes its children's (children are ticketed after the parent's
  // enqueue), so the merged log is a legal interleaving for the
  // happens-before derivation.
  std::vector<const TraceRec *> All;
  for (auto &S : Shards)
    for (const TraceRec &R : S->Trace)
      All.push_back(&R);
  std::sort(All.begin(), All.end(),
            [](const TraceRec *A, const TraceRec *B) {
              return A->Ticket < B->Ticket;
            });

  std::unordered_map<uint64_t, int> IndexOf;
  IndexOf.reserve(All.size());
  for (const TraceRec *R : All) {
    consistency::TraceEntry E;
    E.Lp = R->Lp;
    E.IsDelivery = R->IsDelivery;
    E.Parent =
        R->Parent < 0 ? -1 : IndexOf.at(static_cast<uint64_t>(R->Parent));
    IndexOf.emplace(R->Ticket, MergedTrace.append(std::move(E)));
    MergedTags.push_back(R->Tag);
  }

  // Learn times: merge the per-shard monotonic stamps and derive the
  // Figure 16(b) seconds-after-start map on the same clock.
  int64_t Base = StartNs.load();
  for (auto &S : Shards) {
    MergedDeliveries.insert(MergedDeliveries.end(), S->Delivered.begin(),
                            S->Delivered.end());
    for (const auto &[Key, LearnAt] : S->LearnNs)
      MergedLearnTimes.emplace(
          Key, static_cast<double>(LearnAt - Base) * 1e-9);
  }

  // Fault ledger: collect the per-shard records (owner-written, read
  // post-join) and remap the excused/duplicate tickets into merged
  // trace indices for the checker. The record multiset is content-
  // addressed, so its canonical form reproduces run to run; the index
  // lists are run-local annotations. Shed tickets are ledgered even
  // without a fault plan: a shed overload policy retires chains under
  // plain pressure too, and the checker needs their excusal context
  // either way.
  for (auto &S : Shards) {
    if (C.Faults)
      Ledger.Records.insert(Ledger.Records.end(), S->FaultRecs.begin(),
                            S->FaultRecs.end());
    // The index lists translate tickets into merged-trace positions;
    // without a merged trace (stream-only mode) there is nothing to
    // translate into — the stream items carried the excusals already.
    if (!C.RecordTrace)
      continue;
    if (C.Faults) {
      for (int64_t T : S->ExcusedTickets)
        Ledger.ExcusedEntries.push_back(
            IndexOf.at(static_cast<uint64_t>(T)));
      for (int64_t T : S->DupTickets)
        Ledger.DupEntries.push_back(IndexOf.at(static_cast<uint64_t>(T)));
    }
    for (int64_t T : S->ShedTickets)
      Ledger.ExcusedEntries.push_back(IndexOf.at(static_cast<uint64_t>(T)));
  }
  Ledger.Records.insert(Ledger.Records.end(), StormRecs.begin(),
                        StormRecs.end());
  auto Uniq = [](std::vector<int> &V) {
    std::sort(V.begin(), V.end());
    V.erase(std::unique(V.begin(), V.end()), V.end());
  };
  Uniq(Ledger.ExcusedEntries);
  Uniq(Ledger.DupEntries);

  // Obs timeline: concatenate the per-shard rings (post-join, so every
  // slot write happens-before this read) and sort into one time base.
  for (auto &S : Shards) {
    if (!S->ObsRing)
      continue;
    std::vector<obs::TraceEvent> Evs = S->ObsRing->events();
    MergedObsTrace.insert(MergedObsTrace.end(), Evs.begin(), Evs.end());
  }
  std::sort(MergedObsTrace.begin(), MergedObsTrace.end(),
            [](const obs::TraceEvent &A, const obs::TraceEvent &B) {
              return A.TsNs < B.TsNs;
            });

  // Final stats, including the transition-latency aggregates.
  FinalStats = Stats();
  FinalStats.ElapsedSec = ElapsedSec;
  FinalStats.PacketsInjected = Injected.get();
  FinalStats.PacketsDelivered = Delivered.get();
  FinalStats.PacketsDropped = Dropped.get();
  FinalStats.PacketsForwarded = Forwarded.get();
  FinalStats.EventsDetected = Events.get();
  FinalStats.CtrlDeltas = CtrlDeltas.get();
  FinalStats.ClassifierPath = C.UseClassifier;
  FinalStats.BatchSize = C.BatchSize;
  fillPartitionStats(FinalStats);
  fillObsStats(FinalStats);
  fillFaultStats(FinalStats);
  for (auto &S : Shards) {
    ShardStats SS = baseShardStats(*S);
    SS.QueueDepth = 0;
    SS.FreelistGrowth = freelistGrowth(*S);
    FinalStats.PacketsProcessed += SS.PacketsProcessed;
    FinalStats.ConfigTransitions += SS.Transitions;
    FinalStats.FastPathLearns += SS.FastLearns;
    FinalStats.Shards.push_back(SS);
  }
  if (ElapsedSec > 0) {
    FinalStats.PacketsPerSec = FinalStats.PacketsProcessed / ElapsedSec;
    FinalStats.DeliveredPerSec = FinalStats.PacketsDelivered / ElapsedSec;
  }
  // Update latency (detection -> each register learn) through an obs
  // histogram, so the digest carries percentiles, not just mean/max.
  // Post-run cost only: the samples are by-products of the protocol,
  // and both stamps come from monotonicNs() — no wall-clock skew.
  obs::LogHistogram UpdateNs;
  for (auto &S : Shards)
    for (const auto &[Key, LearnAt] : S->LearnNs) {
      int64_t Ns = DetectNs[Key.second]->load();
      if (Ns < 0)
        continue;
      int64_t Lat = LearnAt - Ns;
      TransitionNs.push_back(Lat > 0 ? Lat : 0);
      UpdateNs.record(Lat > 0 ? static_cast<uint64_t>(Lat) : 0);
    }
  FinalStats.Transition = digestFrom(UpdateNs.snapshot(), 1e-9);
}

Stats Engine::stats() const {
  if (Ran.load())
    return FinalStats;
  Stats S;
  S.ElapsedSec = nowSec();
  S.PacketsInjected = Injected.get();
  S.PacketsDelivered = Delivered.get();
  S.PacketsDropped = Dropped.get();
  S.PacketsForwarded = Forwarded.get();
  S.EventsDetected = Events.get();
  S.CtrlDeltas = CtrlDeltas.get();
  S.ClassifierPath = C.UseClassifier;
  S.BatchSize = C.BatchSize;
  fillPartitionStats(S);
  fillObsStats(S);
  fillFaultStats(S);
  for (const auto &Sh : Shards) {
    ShardStats SS = baseShardStats(*Sh);
    SS.QueueDepth = Sh->Q->sizeApprox();
    {
      std::lock_guard<std::mutex> Lock(Sh->OverflowMu);
      SS.QueueDepth += Sh->Overflow.size();
    }
    S.PacketsProcessed += SS.PacketsProcessed;
    S.ConfigTransitions += SS.Transitions;
    S.FastPathLearns += SS.FastLearns;
    S.Shards.push_back(SS);
  }
  if (S.ElapsedSec > 0) {
    S.PacketsPerSec = S.PacketsProcessed / S.ElapsedSec;
    S.DeliveredPerSec = S.PacketsDelivered / S.ElapsedSec;
  }
  return S;
}

void Engine::fillPartitionStats(Stats &S) const {
  S.Partition.Strategy = Part.Strategy;
  S.Partition.CutWeight = Part.CutWeight;
  S.Partition.TotalWeight = Part.TotalWeight;
  S.Partition.MaxShardLoad = Part.MaxShardLoad;
  S.Partition.MinShardLoad = Part.MinShardLoad;
}

void Engine::fillFaultStats(Stats &S) const {
  S.FaultDrops = FaultDrops.get();
  S.FaultDups = FaultDups.get();
  S.FaultDelays = FaultDelays.get();
  S.FaultSheds = FaultSheds.get();
  S.FaultStalls = FaultStalls.get();
  S.FaultStorms = FaultStorms.get();
  S.DupDelivered = DupDelivered.get();
  S.DupDropped = DupDropped.get();
}

void Engine::fillObsStats(Stats &S) const {
  // Lock-free merge: histogram snapshots are relaxed copies and the ring
  // counters are monotone, so this is safe concurrently with run()
  // (stats() live path) and exact once the workers joined.
  obs::HistogramSnapshot Dwell, Occupancy;
  for (const auto &Sh : Shards) {
    if (Sh->Lat) {
      Dwell.merge(Sh->Lat->DwellNs.snapshot());
      Occupancy.merge(Sh->Lat->Occupancy.snapshot());
    }
    if (Sh->ObsRing) {
      S.TraceRecorded += Sh->ObsRing->recordedCount();
      S.TraceDropped += Sh->ObsRing->droppedCount();
    }
  }
  S.QueueDwell = digestFrom(Dwell, 1e-9);
  S.BatchOccupancy = digestFrom(Occupancy, 1.0);
}

ShardStats Engine::baseShardStats(const Shard &Sh) const {
  ShardStats SS;
  SS.PacketsProcessed = Sh.Processed.get();
  SS.QueueHighWater = Sh.QueueHighWater.get();
  SS.Dropped = Sh.Dropped.get();
  SS.Transitions = Sh.Transitions.get();
  SS.Switches = Part.ShardSwitches[Sh.Index];
  SS.IdleSleeps = Sh.IdleSleeps.get();
  SS.Shed = Sh.Shed.get();
  SS.Stalls = Sh.Stalls.get();
  SS.FastLearns = Sh.FastLearns.get();
  if (Sh.ObsRing) {
    SS.TraceRecorded = Sh.ObsRing->recordedCount();
    SS.TraceDropped = Sh.ObsRing->droppedCount();
  }
  return SS;
}

Engine::ViewSnapshot Engine::readView(SwitchId Sw) const {
  EpochDomain::ReadGuard Guard(Epochs);
  const SwitchView *V = Slots[Idx.denseOf(Sw)].Published.load();
  return ViewSnapshot{V->Tag, V->E, V->Version};
}
