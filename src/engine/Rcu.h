//===- engine/Rcu.h - Epoch-based read-copy-update --------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reclamation half of the engine's atomic configuration-transition
/// protocol. A switch's published view (tag + event register) is an
/// atomic pointer its owning shard swaps on every register change;
/// readers — the stats snapshot, test monitors — never lock: they enter
/// an epoch, load the pointer, copy what they need, and exit. A swapped-
/// out view is retired with the epoch current at the swap and freed only
/// once every active reader has entered a later epoch, so a reader can
/// never observe a freed (or mixed) view.
///
/// All atomics are seq_cst: a reader whose enter() observed epoch >= the
/// retire epoch is, in the single total order, past the writer's
/// fetch_add and therefore past the pointer swap that preceded it.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_ENGINE_RCU_H
#define EVENTNET_ENGINE_RCU_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace eventnet {
namespace engine {

/// A set of reader slots plus the global epoch counter.
class EpochDomain {
public:
  explicit EpochDomain(unsigned MaxReaders)
      : NumSlots(MaxReaders), Slots(std::make_unique<Slot[]>(MaxReaders)) {}

  /// Claims a reader slot (spin over the fixed pool). Slots are a tiny
  /// fixed resource; callers release promptly.
  unsigned acquireSlot() {
    for (;;)
      for (unsigned I = 0; I != NumSlots; ++I) {
        bool Expected = false;
        if (Slots[I].Claimed.compare_exchange_strong(Expected, true))
          return I;
      }
  }

  void releaseSlot(unsigned Slot) {
    assert(Slots[Slot].Epoch.load() == 0 && "release while in critical section");
    Slots[Slot].Claimed.store(false);
  }

  /// Enters a read-side critical section on \p Slot. The slot value is
  /// re-validated against the global epoch after publication: a writer
  /// that advanced the epoch between our load and our store may already
  /// have scanned past this (then-quiescent) slot, so only an epoch the
  /// global still holds *after* the store is proven visible to every
  /// later scan.
  void enter(unsigned Slot) {
    uint64_t E = Global.load();
    for (;;) {
      Slots[Slot].Epoch.store(E);
      uint64_t Now = Global.load();
      if (Now == E)
        return;
      E = Now;
    }
  }

  /// Leaves the read-side critical section.
  void exit(unsigned Slot) { Slots[Slot].Epoch.store(0); }

  /// Called by a writer after unpublishing an object: returns the epoch
  /// the retired object must outlive.
  uint64_t retireEpoch() { return Global.fetch_add(1) + 1; }

  /// The oldest epoch any active reader may still be in; objects retired
  /// strictly before it are unreachable.
  uint64_t minActiveEpoch() const {
    uint64_t Min = Global.load() + 1;
    for (unsigned I = 0; I != NumSlots; ++I) {
      uint64_t E = Slots[I].Epoch.load();
      if (E != 0 && E < Min)
        Min = E;
    }
    return Min;
  }

  /// RAII read-side guard.
  class ReadGuard {
  public:
    explicit ReadGuard(EpochDomain &D) : D(D), SlotIdx(D.acquireSlot()) {
      D.enter(SlotIdx);
    }
    ~ReadGuard() {
      D.exit(SlotIdx);
      D.releaseSlot(SlotIdx);
    }
    ReadGuard(const ReadGuard &) = delete;
    ReadGuard &operator=(const ReadGuard &) = delete;

  private:
    EpochDomain &D;
    unsigned SlotIdx;
  };

private:
  struct Slot {
    std::atomic<bool> Claimed{false};
    std::atomic<uint64_t> Epoch{0}; ///< 0 = quiescent
  };

  std::atomic<uint64_t> Global{1};
  unsigned NumSlots;
  std::unique_ptr<Slot[]> Slots;
};

/// A single writer's list of retired objects awaiting reclamation.
template <typename T> class RetireList {
public:
  /// Takes ownership of \p Obj, to be freed once all readers pass
  /// \p Epoch (from EpochDomain::retireEpoch). Null is ignored.
  void retire(const T *Obj, uint64_t Epoch) {
    if (Obj)
      Retired.push_back({std::unique_ptr<const T>(Obj), Epoch});
  }

  /// Frees every object whose retire epoch is at or before \p MinActive
  /// (EpochDomain::minActiveEpoch): a reader whose enter() observed the
  /// retire epoch is already past the pointer swap, so only readers
  /// strictly older than the retire epoch pin an object.
  void tryReclaim(uint64_t MinActive) {
    size_t Kept = 0;
    for (size_t I = 0; I != Retired.size(); ++I)
      if (Retired[I].Epoch > MinActive)
        Retired[Kept++] = std::move(Retired[I]);
    Retired.resize(Kept);
  }

  size_t pending() const { return Retired.size(); }

private:
  struct Entry {
    std::unique_ptr<const T> Obj;
    uint64_t Epoch;
  };
  std::vector<Entry> Retired;
};

} // namespace engine
} // namespace eventnet

#endif // EVENTNET_ENGINE_RCU_H
