//===- engine/Queue.h - Bounded lock-free MPSC queue ------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inter-shard packet channel: a bounded multi-producer queue after
/// Vyukov's array-based MPMC design. Each slot carries a sequence number
/// so producers claim cells with one fetch_add and consumers observe
/// fully-constructed elements without locks. The engine uses one queue
/// per shard (any shard or the controller produces; only the owner
/// consumes — MPSC), which degenerates to SPSC wait-free hand-off when
/// exactly one producer is active.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_ENGINE_QUEUE_H
#define EVENTNET_ENGINE_QUEUE_H

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>

namespace eventnet {
namespace engine {

/// Bounded lock-free queue (Vyukov bounded MPMC; used MPSC here).
template <typename T> class BoundedMpscQueue {
public:
  /// \p Capacity is rounded up to a power of two.
  explicit BoundedMpscQueue(size_t Capacity) {
    size_t Cap = 2;
    while (Cap < Capacity)
      Cap <<= 1;
    Cells = std::make_unique<Cell[]>(Cap);
    for (size_t I = 0; I != Cap; ++I)
      Cells[I].Seq.store(I, std::memory_order_relaxed);
    Mask = Cap - 1;
  }

  BoundedMpscQueue(const BoundedMpscQueue &) = delete;
  BoundedMpscQueue &operator=(const BoundedMpscQueue &) = delete;

  /// Attempts to enqueue; returns false when full.
  bool tryPush(T &&V) {
    size_t Pos = Tail.load(std::memory_order_relaxed);
    for (;;) {
      Cell &C = Cells[Pos & Mask];
      size_t Seq = C.Seq.load(std::memory_order_acquire);
      intptr_t Diff =
          static_cast<intptr_t>(Seq) - static_cast<intptr_t>(Pos);
      if (Diff == 0) {
        if (Tail.compare_exchange_weak(Pos, Pos + 1,
                                       std::memory_order_relaxed))
          break;
      } else if (Diff < 0) {
        return false; // full
      } else {
        Pos = Tail.load(std::memory_order_relaxed);
      }
    }
    Cell &C = Cells[Pos & Mask];
    C.Value = std::move(V);
    C.Seq.store(Pos + 1, std::memory_order_release);
    return true;
  }

  /// Enqueues, retrying while the queue is full. \p WhileFull (if
  /// non-null) is invoked once per failed attempt so a worker can drain
  /// its own queue instead of deadlocking on a cycle of full queues.
  template <typename FnT> void pushBlocking(T &&V, FnT WhileFull) {
    while (!tryPush(std::move(V)))
      WhileFull();
  }

  /// Default retry discipline: a short spin (the consumer usually frees
  /// a cell within nanoseconds), then yields, then exponentially longer
  /// sleeps capped at 256µs. A saturated consumer costs the producer
  /// scheduler-visible sleeps instead of a core-burning busy loop, and
  /// the cap bounds added latency once the queue drains.
  void pushBlocking(T &&V) {
    unsigned Attempt = 0;
    uint32_t SleepUs = 1;
    pushBlocking(std::move(V), [&] {
      ++Attempt;
      if (Attempt <= 64)
        return; // spin: full window is transient in the common case
      if (Attempt <= 256) {
        std::this_thread::yield();
        return;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(SleepUs));
      if (SleepUs < 256)
        SleepUs <<= 1;
    });
  }

  /// Enqueues up to \p N elements with a single tail CAS; returns how
  /// many were pushed (a prefix of \p Vals). Cell availability is
  /// monotone in consumer progress, so probing forward from the tail
  /// finds the largest claimable prefix.
  ///
  /// Elements are *copy*-assigned into the cells (and tryPopBatch
  /// copy-assigns them out): a cell's element stays alive between
  /// generations, so for heap-backed T the ring doubles as a freelist —
  /// steady-state traffic reuses every cell's capacity and performs no
  /// allocations. Callers likewise keep \p Vals as recycled slots.
  size_t tryPushBatch(const T *Vals, size_t N) {
    for (;;) {
      size_t Pos = Tail.load(std::memory_order_relaxed);
      size_t Claim = 0;
      for (size_t K = 1; K <= N; ++K) {
        Cell &C = Cells[(Pos + K - 1) & Mask];
        intptr_t Diff = static_cast<intptr_t>(
                            C.Seq.load(std::memory_order_acquire)) -
                        static_cast<intptr_t>(Pos + K - 1);
        if (Diff != 0)
          break; // occupied (<0) or claimed by a racing producer (>0)
        Claim = K;
      }
      if (Claim == 0) {
        Cell &C = Cells[Pos & Mask];
        intptr_t Diff = static_cast<intptr_t>(
                            C.Seq.load(std::memory_order_acquire)) -
                        static_cast<intptr_t>(Pos);
        if (Diff < 0)
          return 0; // full
        continue;   // stale tail; retry
      }
      if (!Tail.compare_exchange_weak(Pos, Pos + Claim,
                                      std::memory_order_relaxed))
        continue;
      for (size_t K = 0; K != Claim; ++K) {
        Cell &C = Cells[(Pos + K) & Mask];
        C.Value = Vals[K];
        C.Seq.store(Pos + K + 1, std::memory_order_release);
      }
      return Claim;
    }
  }

  /// Dequeues up to \p Max elements into \p Out with one head update,
  /// copy-assigning so the cells keep their heap capacity (see
  /// tryPushBatch). Returns the count. Single consumer.
  size_t tryPopBatch(T *Out, size_t Max) {
    size_t Pos = Head.load(std::memory_order_relaxed);
    size_t N = 0;
    while (N != Max) {
      Cell &C = Cells[(Pos + N) & Mask];
      size_t Seq = C.Seq.load(std::memory_order_acquire);
      if (static_cast<intptr_t>(Seq) -
              static_cast<intptr_t>(Pos + N + 1) <
          0)
        break; // not yet published
      Out[N] = C.Value;
      C.Seq.store(Pos + N + Mask + 1, std::memory_order_release);
      ++N;
    }
    if (N)
      Head.store(Pos + N, std::memory_order_relaxed);
    return N;
  }

  /// Attempts to dequeue; returns false when empty. Single consumer.
  bool tryPop(T &Out) {
    size_t Pos = Head.load(std::memory_order_relaxed);
    Cell &C = Cells[Pos & Mask];
    size_t Seq = C.Seq.load(std::memory_order_acquire);
    intptr_t Diff =
        static_cast<intptr_t>(Seq) - static_cast<intptr_t>(Pos + 1);
    if (Diff < 0)
      return false; // empty
    assert(Diff == 0 && "single consumer violated");
    Head.store(Pos + 1, std::memory_order_relaxed);
    Out = std::move(C.Value);
    C.Seq.store(Pos + Mask + 1, std::memory_order_release);
    return true;
  }

  /// Approximate number of queued elements (racy snapshot; for stats).
  size_t sizeApprox() const {
    size_t Ta = Tail.load(std::memory_order_relaxed);
    size_t Hd = Head.load(std::memory_order_relaxed);
    return Ta >= Hd ? Ta - Hd : 0;
  }

  size_t capacity() const { return Mask + 1; }

private:
  struct Cell {
    std::atomic<size_t> Seq{0};
    T Value;
  };

  std::unique_ptr<Cell[]> Cells;
  size_t Mask = 0;
  alignas(64) std::atomic<size_t> Tail{0};
  alignas(64) std::atomic<size_t> Head{0};
};

} // namespace engine
} // namespace eventnet

#endif // EVENTNET_ENGINE_QUEUE_H
