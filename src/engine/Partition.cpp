//===- engine/Partition.cpp - Topology-aware shard placement --------------===//

#include "engine/Partition.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>

using namespace eventnet;
using namespace eventnet::engine;

const char *engine::partitionStrategyName(PartitionStrategy S) {
  switch (S) {
  case PartitionStrategy::Modulo:
    return "modulo";
  case PartitionStrategy::Contiguous:
    return "contiguous";
  case PartitionStrategy::Refined:
    return "refined";
  }
  return "?";
}

std::optional<PartitionStrategy>
engine::parsePartitionStrategy(const std::string &S) {
  if (S == "modulo")
    return PartitionStrategy::Modulo;
  if (S == "contiguous")
    return PartitionStrategy::Contiguous;
  if (S == "refined")
    return PartitionStrategy::Refined;
  return std::nullopt;
}

namespace {

/// The switch graph the placement works on: vertex weights are
/// 1 + attached hosts, edge weights are link multiplicities (both
/// directions of a bidirectional link counted — the weight is the number
/// of unidirectional hops that stay intra-shard if the edge does).
struct SwitchGraph {
  uint32_t N = 0;
  std::vector<uint64_t> VertexW;
  /// Per vertex: (neighbor, weight), sorted by neighbor.
  std::vector<std::vector<std::pair<uint32_t, uint64_t>>> Adj;
  uint64_t TotalEdgeW = 0;
  uint64_t MaxVertexW = 1;
};

SwitchGraph buildGraph(const SwitchIndex &Idx) {
  SwitchGraph G;
  G.N = Idx.numSwitches();
  G.VertexW.assign(G.N, 1);
  G.Adj.resize(G.N);

  std::map<std::pair<uint32_t, uint32_t>, uint64_t> Edges;
  for (uint32_t D = 0; D != G.N; ++D) {
    for (const auto &[Pt, E] : Idx.portsOf(D)) {
      (void)Pt;
      if (E.IsHost) {
        ++G.VertexW[D]; // traffic source/sink: the switch is heavier
        continue;
      }
      if (E.DstDense == D)
        continue; // self loops never cross a boundary
      uint32_t A = std::min(D, E.DstDense), B = std::max(D, E.DstDense);
      ++Edges[{A, B}];
    }
  }
  for (const auto &[AB, W] : Edges) {
    G.Adj[AB.first].push_back({AB.second, W});
    G.Adj[AB.second].push_back({AB.first, W});
    G.TotalEdgeW += W;
  }
  for (auto &A : G.Adj)
    std::sort(A.begin(), A.end());
  for (uint64_t W : G.VertexW)
    G.MaxVertexW = std::max(G.MaxVertexW, W);
  return G;
}

uint64_t balanceLimit(const SwitchGraph &G, unsigned NumShards,
                      double Bound) {
  uint64_t Total = 0;
  for (uint64_t W : G.VertexW)
    Total += W;
  double Ideal = static_cast<double>(Total) / NumShards;
  uint64_t Mult = static_cast<uint64_t>(std::ceil(Ideal * Bound));
  // Vertices are atomic: a shard may always need to hold one more whole
  // vertex than the fractional ideal.
  uint64_t Add = static_cast<uint64_t>(std::ceil(Ideal)) + G.MaxVertexW;
  return std::max(Mult, Add);
}

/// Farthest-point seed selection: the first seed is the heaviest vertex
/// (ties to the smallest index), each further seed maximizes the BFS hop
/// distance to all previous seeds — spreading regions across the
/// topology before growth starts.
std::vector<uint32_t> pickSeeds(const SwitchGraph &G, unsigned K) {
  std::vector<uint32_t> Seeds;
  uint32_t First = 0;
  for (uint32_t V = 1; V != G.N; ++V)
    if (G.VertexW[V] > G.VertexW[First])
      First = V;
  Seeds.push_back(First);

  std::vector<uint32_t> Dist(G.N);
  std::deque<uint32_t> Q;
  while (Seeds.size() < K) {
    const uint32_t Inf = G.N + 1;
    Dist.assign(G.N, Inf);
    Q.clear();
    for (uint32_t S : Seeds) {
      Dist[S] = 0;
      Q.push_back(S);
    }
    while (!Q.empty()) {
      uint32_t V = Q.front();
      Q.pop_front();
      for (const auto &[U, W] : G.Adj[V]) {
        (void)W;
        if (Dist[U] > Dist[V] + 1) {
          Dist[U] = Dist[V] + 1;
          Q.push_back(U);
        }
      }
    }
    uint32_t Best = ~0u;
    for (uint32_t V = 0; V != G.N; ++V) {
      if (Dist[V] == 0)
        continue; // already a seed
      if (Best == ~0u || Dist[V] > Dist[Best] ||
          (Dist[V] == Dist[Best] && G.VertexW[V] > G.VertexW[Best]))
        Best = V;
    }
    if (Best == ~0u)
      break; // fewer distinct vertices than shards
    Seeds.push_back(Best);
  }
  return Seeds;
}

/// Greedy balanced BFS growth from the seeds: every step grows the
/// globally lightest region, claiming the unassigned vertex most
/// strongly connected to it — or, when the region is landlocked (all
/// its neighbors taken, e.g. a spoke region whose hub another region
/// claimed), the smallest-index unassigned vertex, sacrificing
/// contiguity rather than balance. Growing the minimum-load region
/// every time bounds every load by ideal + max vertex weight, which is
/// within BalanceLimit by construction.
std::vector<uint32_t> growContiguous(const SwitchGraph &G,
                                     unsigned NumShards) {
  const uint32_t Unassigned = ~0u;
  std::vector<uint32_t> ShardOf(G.N, Unassigned);
  unsigned K = std::min<unsigned>(NumShards, G.N);
  if (K == 0)
    return ShardOf;

  std::vector<uint32_t> Seeds = pickSeeds(G, K);
  std::vector<uint64_t> Load(NumShards, 0);
  for (uint32_t I = 0; I != Seeds.size(); ++I) {
    ShardOf[Seeds[I]] = I;
    Load[I] = G.VertexW[Seeds[I]];
  }

  uint32_t Assigned = static_cast<uint32_t>(Seeds.size());
  // O(N^2) over a full growth; topologies are tens to a few hundred
  // switches, and this runs once per engine construction.
  while (Assigned != G.N) {
    uint32_t Shard = 0;
    for (uint32_t S = 1; S != Seeds.size(); ++S)
      if (Load[S] < Load[Shard])
        Shard = S;
    // The unassigned vertex most strongly connected to that region
    // (ties to the smallest index; zero connection only if landlocked).
    uint32_t BestVertex = Unassigned;
    uint64_t BestConn = 0;
    for (uint32_t V = 0; V != G.N; ++V) {
      if (ShardOf[V] != Unassigned)
        continue;
      uint64_t C = 0;
      for (const auto &[U, W] : G.Adj[V])
        if (ShardOf[U] == Shard)
          C += W;
      if (BestVertex == Unassigned || C > BestConn) {
        BestConn = C;
        BestVertex = V;
      }
    }
    ShardOf[BestVertex] = Shard;
    Load[Shard] += G.VertexW[BestVertex];
    ++Assigned;
  }
  return ShardOf;
}

/// One greedy KL-style pass structure: repeatedly apply the single best
/// cut-improving boundary move that keeps every shard within \p Limit
/// and nonempty. Strictly-improving moves only, so termination is by
/// cut monotonicity.
void refineBoundary(const SwitchGraph &G, unsigned NumShards,
                    std::vector<uint32_t> &ShardOf, uint64_t Limit) {
  std::vector<uint64_t> Load(NumShards, 0);
  std::vector<uint32_t> Count(NumShards, 0);
  for (uint32_t V = 0; V != G.N; ++V) {
    Load[ShardOf[V]] += G.VertexW[V];
    ++Count[ShardOf[V]];
  }

  std::vector<uint64_t> Conn(NumShards);
  for (;;) {
    int64_t BestGain = 0;
    uint32_t BestVertex = ~0u, BestTarget = ~0u;
    for (uint32_t V = 0; V != G.N; ++V) {
      uint32_t Own = ShardOf[V];
      if (Count[Own] <= 1)
        continue; // moving would empty the shard
      std::fill(Conn.begin(), Conn.end(), 0);
      bool Boundary = false;
      for (const auto &[U, W] : G.Adj[V]) {
        Conn[ShardOf[U]] += W;
        Boundary |= ShardOf[U] != Own;
      }
      if (!Boundary)
        continue;
      for (uint32_t T = 0; T != NumShards; ++T) {
        if (T == Own || Conn[T] == 0)
          continue;
        if (Load[T] + G.VertexW[V] > Limit)
          continue; // imbalance bound
        int64_t Gain = static_cast<int64_t>(Conn[T]) -
                       static_cast<int64_t>(Conn[Own]);
        // Strictly-greater keeps the first (smallest-index) vertex on
        // ties, since V ascends.
        if (Gain > BestGain) {
          BestGain = Gain;
          BestVertex = V;
          BestTarget = T;
        }
      }
    }
    if (BestGain <= 0)
      return;
    uint32_t Own = ShardOf[BestVertex];
    Load[Own] -= G.VertexW[BestVertex];
    --Count[Own];
    Load[BestTarget] += G.VertexW[BestVertex];
    ++Count[BestTarget];
    ShardOf[BestVertex] = BestTarget;
  }
}

uint64_t cutWeight(const SwitchGraph &G,
                   const std::vector<uint32_t> &ShardOf) {
  uint64_t Cut = 0;
  for (uint32_t V = 0; V != G.N; ++V)
    for (const auto &[U, W] : G.Adj[V])
      if (U > V && ShardOf[U] != ShardOf[V])
        Cut += W;
  return Cut;
}

} // namespace

PartitionResult engine::partitionSwitches(const SwitchIndex &Idx,
                                          unsigned NumShards,
                                          PartitionStrategy S,
                                          double ImbalanceBound) {
  if (NumShards == 0)
    NumShards = 1;
  if (ImbalanceBound < 1.0)
    ImbalanceBound = 1.0;

  SwitchGraph G = buildGraph(Idx);
  PartitionResult R;
  R.Strategy = S;
  R.NumShards = NumShards;
  R.ImbalanceBound = ImbalanceBound;
  R.BalanceLimit = G.N ? balanceLimit(G, NumShards, ImbalanceBound) : 0;
  R.ShardOf.resize(G.N);

  switch (S) {
  case PartitionStrategy::Modulo:
    for (uint32_t V = 0; V != G.N; ++V)
      R.ShardOf[V] = V % NumShards;
    break;
  case PartitionStrategy::Contiguous:
    R.ShardOf = growContiguous(G, NumShards);
    break;
  case PartitionStrategy::Refined:
    R.ShardOf = growContiguous(G, NumShards);
    refineBoundary(G, NumShards, R.ShardOf, R.BalanceLimit);
    break;
  }

  R.ShardSwitches.assign(NumShards, 0);
  std::vector<uint64_t> Load(NumShards, 0);
  for (uint32_t V = 0; V != G.N; ++V) {
    ++R.ShardSwitches[R.ShardOf[V]];
    Load[R.ShardOf[V]] += G.VertexW[V];
  }
  R.CutWeight = cutWeight(G, R.ShardOf);
  R.TotalWeight = G.TotalEdgeW;
  if (!Load.empty()) {
    R.MaxShardLoad = *std::max_element(Load.begin(), Load.end());
    R.MinShardLoad = *std::min_element(Load.begin(), Load.end());
  }
  return R;
}
