//===- engine/Wake.h - Event-driven thread wake -----------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deduplicated cross-thread wake for a single sleeper: producers call
/// notify() (cheap, lock-free, at most one syscall per sleep cycle) and
/// the sleeper blocks in wait() until notified or a safety-net timeout
/// elapses. Backed by an eventfd on Linux and a nonblocking self-pipe
/// elsewhere — the same pattern the net server uses to interrupt its
/// poll loop (net/Server.cpp), lifted here so the engine's controller
/// thread can sleep without putting a fixed backoff floor under event
/// propagation latency.
///
/// The dedup protocol makes lost wakeups impossible when the sleeper
/// rechecks its work source after every wait():
///
///   producer: publish work; if (!Pending.exchange(true)) write(fd)
///   sleeper:  poll(fd); read(fd); Pending.store(false); drain work
///
/// A producer that publishes after the sleeper's drain finds Pending
/// false again and writes the fd, so the next wait() returns
/// immediately.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_ENGINE_WAKE_H
#define EVENTNET_ENGINE_WAKE_H

#include <atomic>
#include <cstdint>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/eventfd.h>
#endif

namespace eventnet {
namespace engine {

class ControllerWake {
public:
  ControllerWake() {
#if defined(__linux__)
    int Fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (Fd >= 0) {
      Rd = Wr = Fd;
      EventFd = true;
      return;
    }
#endif
    int P[2] = {-1, -1};
    if (::pipe(P) == 0) {
      Rd = P[0];
      Wr = P[1];
      ::fcntl(Rd, F_SETFL, ::fcntl(Rd, F_GETFL, 0) | O_NONBLOCK);
      ::fcntl(Wr, F_SETFL, ::fcntl(Wr, F_GETFL, 0) | O_NONBLOCK);
    }
  }

  ~ControllerWake() {
    if (Rd >= 0)
      ::close(Rd);
    if (!EventFd && Wr >= 0)
      ::close(Wr);
  }

  ControllerWake(const ControllerWake &) = delete;
  ControllerWake &operator=(const ControllerWake &) = delete;

  /// Wakes the sleeper. Callable from any thread; one syscall per sleep
  /// cycle (further notifies before the sleeper drains are coalesced by
  /// the Pending flag).
  void notify() {
    if (Pending.exchange(true, std::memory_order_acq_rel))
      return;
    if (Wr < 0)
      return;
#if defined(__linux__)
    if (EventFd) {
      uint64_t One = 1;
      [[maybe_unused]] ssize_t N = ::write(Wr, &One, sizeof(One));
      return;
    }
#endif
    char B = 1;
    [[maybe_unused]] ssize_t N = ::write(Wr, &B, 1);
  }

  /// Blocks until notify() or \p TimeoutUs microseconds elapse (the
  /// timeout is a safety net for shutdown, not a latency budget), then
  /// drains the fd and clears the dedup flag. The caller must recheck
  /// its work source after every return.
  void wait(unsigned TimeoutUs) {
    if (Rd < 0) {
      // Construction failed (fd exhaustion): degrade to a bounded sleep.
      ::usleep(TimeoutUs);
      Pending.store(false, std::memory_order_release);
      return;
    }
    struct pollfd P;
    P.fd = Rd;
    P.events = POLLIN;
    P.revents = 0;
    int TimeoutMs = static_cast<int>((TimeoutUs + 999) / 1000);
    ::poll(&P, 1, TimeoutMs > 0 ? TimeoutMs : 1);
    drain();
  }

  /// Nonblocking drain (used on shutdown so a stale token never leaks
  /// into a later wait).
  void drain() {
    if (Rd < 0)
      return;
#if defined(__linux__)
    if (EventFd) {
      uint64_t Tok;
      while (::read(Rd, &Tok, sizeof(Tok)) > 0)
        ;
      Pending.store(false, std::memory_order_release);
      return;
    }
#endif
    char Buf[64];
    while (::read(Rd, Buf, sizeof(Buf)) > 0)
      ;
    Pending.store(false, std::memory_order_release);
  }

private:
  int Rd = -1, Wr = -1;
  bool EventFd = false;
  std::atomic<bool> Pending{false};
};

} // namespace engine
} // namespace eventnet

#endif // EVENTNET_ENGINE_WAKE_H
