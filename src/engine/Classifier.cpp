//===- engine/Classifier.cpp - Contiguous classifier programs -------------===//

#include "engine/Classifier.h"

#include <algorithm>
#include <cassert>

using namespace eventnet;
using namespace eventnet::engine;
using eventnet::netkat::Packet;

namespace {

// Op header word: [kind:2][field:16][pad][count-or-span:32].
constexpr uint64_t KindSparse = 0;
constexpr uint64_t KindDense = 1;
constexpr uint64_t KindLeaf = 2;

constexpr uint64_t header(uint64_t Kind, FieldId F, uint64_t Count) {
  return Kind | (static_cast<uint64_t>(F) << 2) | (Count << 32);
}

/// A dense jump table pays (span - 2N) extra words over sorted values but
/// replaces the binary search with one index; worth it while the value
/// range stays within a few cache lines of the sparse size.
bool preferDense(uint64_t Span, size_t N) {
  return Span <= 2 * N + 8 && Span <= 1024;
}

} // namespace

uint32_t Classifier::lowerLeaf(const FlatFdd &F, int32_t LeafIdx,
                               std::vector<int64_t> &Memo) {
  if (Memo[LeafIdx] >= 0)
    return static_cast<uint32_t>(Memo[LeafIdx]);
  uint32_t Off = static_cast<uint32_t>(Code.size());
  const FlatFdd::Leaf &L = F.Leaves[LeafIdx];
  Code.push_back(header(KindLeaf, 0, L.Count));
  for (uint32_t A = L.First; A != L.First + L.Count; ++A) {
    const FlatFdd::Action &AR = F.Actions[A];
    Code.push_back(AR.Count);
    for (uint32_t W = AR.First; W != AR.First + AR.Count; ++W) {
      // apply()'s merge emission needs each action's writes sorted by
      // field; normalized ActionSeqs guarantee it.
      assert((W == AR.First || F.Writes[W - 1].F < F.Writes[W].F) &&
             "action writes not sorted by field");
      Code.push_back(F.Writes[W].F);
      Code.push_back(static_cast<uint64_t>(F.Writes[W].V));
    }
  }
  Memo[LeafIdx] = Off;
  return Off;
}

Classifier::Classifier(const FlatFdd &F) {
  std::vector<int64_t> NodeMemo(F.Nodes.size(), -1);
  std::vector<int64_t> LeafMemo(F.Leaves.size(), -1);

  if (F.Root < 0) {
    Root = lowerLeaf(F, ~F.Root, LeafMemo);
    return;
  }

  // The maximal same-field lo-chain starting at a node: the multi-way
  // dispatch one op will encode. The canonical FDD ordering makes the
  // chain's values strictly increasing, i.e. already sorted.
  struct ChainEntry {
    Value V;
    int32_t Hi;
  };
  std::vector<ChainEntry> Chain;
  std::vector<uint32_t> Targets;
  auto collectChain = [&F, &Chain](int32_t N) -> int32_t {
    Chain.clear();
    FieldId Fld = F.Nodes[N].F;
    int32_t Cur = N;
    while (Cur >= 0 && F.Nodes[Cur].F == Fld) {
      assert((Chain.empty() || Chain.back().V < F.Nodes[Cur].V) &&
             "lo-chain values not increasing");
      Chain.push_back({F.Nodes[Cur].V, F.Nodes[Cur].Hi});
      Cur = F.Nodes[Cur].Lo;
    }
    return Cur; // the chain's fall-through (different field, or ~leaf)
  };

  // Iterative post-order over chain heads: children (hi targets and the
  // fall-through) are lowered before the op that jumps to them, so every
  // emitted target is a known arena offset.
  struct Frame {
    int32_t N;
    bool Expanded;
  };
  std::vector<Frame> Stack{{F.Root, false}};
  while (!Stack.empty()) {
    Frame Fr = Stack.back();
    Stack.pop_back();
    if (NodeMemo[Fr.N] >= 0)
      continue;
    int32_t Fallthrough = collectChain(Fr.N);
    if (!Fr.Expanded) {
      Stack.push_back({Fr.N, true});
      if (Fallthrough >= 0 && NodeMemo[Fallthrough] < 0)
        Stack.push_back({Fallthrough, false});
      for (const ChainEntry &E : Chain)
        if (E.Hi >= 0 && NodeMemo[E.Hi] < 0)
          Stack.push_back({E.Hi, false});
      continue;
    }

    auto target = [&](int32_t T) -> uint32_t {
      if (T < 0)
        return lowerLeaf(F, ~T, LeafMemo);
      assert(NodeMemo[T] >= 0 && "child not lowered before parent");
      return static_cast<uint32_t>(NodeMemo[T]);
    };

    // Resolve every branch target BEFORE emitting the op: resolving a
    // leaf target appends the leaf's block to the arena, which must not
    // interleave with the op's own contiguous words.
    uint32_t Default = target(Fallthrough);
    Targets.clear();
    for (const ChainEntry &E : Chain)
      Targets.push_back(target(E.Hi));

    FieldId Fld = F.Nodes[Fr.N].F;
    size_t N = Chain.size();
    uint32_t Off = static_cast<uint32_t>(Code.size());
    // Two's-complement distance is exact for Vmax >= Vmin even when the
    // int64 subtraction would overflow.
    uint64_t Span = static_cast<uint64_t>(Chain.back().V) -
                    static_cast<uint64_t>(Chain.front().V) + 1;
    if (preferDense(Span, N)) {
      Code.push_back(header(KindDense, Fld, Span));
      Code.push_back(Default);
      Code.push_back(static_cast<uint64_t>(Chain.front().V));
      Code.resize(Code.size() + Span, Default);
      for (size_t I = 0; I != N; ++I)
        Code[Off + 3 +
             (static_cast<uint64_t>(Chain[I].V) -
              static_cast<uint64_t>(Chain.front().V))] = Targets[I];
      ++DenseOps;
    } else {
      Code.push_back(header(KindSparse, Fld, N));
      Code.push_back(Default);
      for (const ChainEntry &E : Chain)
        Code.push_back(static_cast<uint64_t>(E.V));
      for (uint32_t T : Targets)
        Code.push_back(T);
    }
    ++Ops;
    NodeMemo[Fr.N] = Off;
  }
  Root = static_cast<uint32_t>(NodeMemo[F.Root]);
}

void Classifier::apply(const Packet &Pkt, PacketBuf &Out) const {
  const uint64_t *Base = Code.data();
  const uint64_t *PC = Base + Root;
  const auto &Fs = Pkt.fields();
  const size_t NF = Fs.size();
  size_t FI = 0; // monotone cursor: fields are tested in increasing order

  for (;;) {
    uint64_t H = *PC;
    uint64_t Kind = H & 3;
    if (Kind == KindLeaf) {
      uint32_t NumActs = static_cast<uint32_t>(H >> 32);
      const uint64_t *P = PC + 1;
      for (uint32_t A = 0; A != NumActs; ++A) {
        uint32_t NumWrites = static_cast<uint32_t>(*P++);
        // Copy-assign into the recycled slot (one memcpy on a warmed
        // buffer — measured faster than a field-by-field merge), then
        // apply the writes in place.
        Packet &O = Out.next();
        O = Pkt;
        for (uint32_t W = 0; W != NumWrites; ++W) {
          O.set(static_cast<FieldId>(P[0]), static_cast<Value>(P[1]));
          P += 2;
        }
      }
      return;
    }

    FieldId Fld = static_cast<FieldId>((H >> 2) & 0xFFFF);
    uint32_t N = static_cast<uint32_t>(H >> 32);
    while (FI != NF && Fs[FI].first < Fld)
      ++FI;
    uint32_t Target = static_cast<uint32_t>(PC[1]); // fall-through
    if (FI != NF && Fs[FI].first == Fld) {
      Value V = Fs[FI].second;
      if (Kind == KindSparse) {
        const uint64_t *Vals = PC + 2;
        uint32_t Lo = 0, Hi = N;
        while (Lo != Hi) {
          uint32_t Mid = (Lo + Hi) / 2;
          if (static_cast<Value>(Vals[Mid]) < V)
            Lo = Mid + 1;
          else
            Hi = Mid;
        }
        if (Lo != N && static_cast<Value>(Vals[Lo]) == V)
          Target = static_cast<uint32_t>(PC[2 + N + Lo]);
      } else {
        uint64_t D = static_cast<uint64_t>(V) - PC[2];
        if (D < N)
          Target = static_cast<uint32_t>(PC[3 + D]);
      }
    }
    PC = Base + Target;
  }
}

void Classifier::apply(const Packet &Pkt,
                       std::vector<Packet> &Out) const {
  PacketBuf B;
  apply(Pkt, B);
  for (size_t I = 0; I != B.size(); ++I)
    Out.push_back(std::move(B[I]));
}
