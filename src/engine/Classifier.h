//===- engine/Classifier.h - Contiguous classifier programs -----*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine's final lowering: a flattened FDD is compiled one step
/// further into a *classifier program* — a contiguous arena of
/// fixed-layout ops a lookup executes by walking forward through one
/// allocation instead of chasing heap-scattered diagram nodes.
///
/// The canonical FDD ordering invariants (fields never decrease along a
/// path; lo-chain tests on one field have strictly increasing values)
/// mean every maximal lo-chain on a single field is a sorted multi-way
/// dispatch. The lowering collapses each such chain into one op:
///
///   OpSparse  field, default target, N sorted values + N targets
///             (binary search over a contiguous value array);
///   OpDense   field, default target, base value, N-entry jump table
///             (direct index when the chain's value range is small);
///   OpLeaf    terminal action block: the matched rule's action list
///             (write sequences) inlined into the arena.
///
/// Targets are word offsets into the same arena, so a lookup is a loop
/// over sequential cache lines with no pointer indirection. Because
/// fields are tested in nondecreasing order, the packet's sorted field
/// vector is consumed with a monotone cursor — the whole lookup touches
/// each packet field at most once.
///
/// PacketBuf/MsgRecycler are the freelist side of the zero-allocation
/// hot path: emission writes into recycled packets whose field vectors
/// retain their capacity, so steady-state forwarding performs no heap
/// allocations (ClassifierPropertyTest asserts this with a counting
/// allocator).
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_ENGINE_CLASSIFIER_H
#define EVENTNET_ENGINE_CLASSIFIER_H

#include "netkat/Packet.h"
#include "support/Ids.h"

#include <cstdint>
#include <vector>

namespace eventnet {
namespace flowtable {
class Table;
}

namespace engine {

/// A flattened FDD: the diagram's nodes, leaves, actions and writes in
/// flat pools. Built by MatchPipeline from fdd::FddManager::fromTable;
/// apply() is the pointer-free walk (the engine's differential-testing
/// oracle), and Classifier lowers it to the batched fast path.
struct FlatFdd {
  struct Write {
    FieldId F;
    Value V;
  };
  /// One action: a slice of Writes.
  struct Action {
    uint32_t First, Count;
  };
  /// One leaf payload: a slice of Actions (empty = drop).
  struct Leaf {
    uint32_t First, Count;
  };
  /// One flattened test node; child < 0 encodes leaf ~child.
  struct Node {
    FieldId F;
    Value V;
    int32_t Hi, Lo;
  };

  std::vector<Write> Writes;
  std::vector<Action> Actions;
  std::vector<Leaf> Leaves;
  std::vector<Node> Nodes;
  int32_t Root = 0; ///< node index, or ~leaf when negative
};

/// A bump-pointer pool of recycled slots: elements keep their heap
/// capacity across reset(), so once warm a pool serves steady-state
/// traffic without allocation. The engine uses it for classifier output
/// packets (PacketBuf) and buffered egress messages alike.
template <typename T> class RecyclePool {
public:
  /// The next slot (grows the pool on first use only).
  T &next() {
    if (Used == Slots.size()) {
      ++Grown;
      Slots.emplace_back();
    }
    return Slots[Used++];
  }

  /// Forgets the contents but keeps every slot's capacity.
  void reset() { Used = 0; }

  /// Pre-sizes the pool to \p N slots up front (construction-time, not
  /// counted as growth): a pool sized to its steady-state working set —
  /// e.g. a full dequeue batch of egress messages — never grows on the
  /// hot path, so grownCount() stays 0 for the whole run.
  void reserve(size_t N) {
    if (Slots.size() < N)
      Slots.resize(N);
  }

  size_t size() const { return Used; }
  T &operator[](size_t I) { return Slots[I]; }
  const T &operator[](size_t I) const { return Slots[I]; }
  T *data() { return Slots.data(); }

  /// Times the pool had to grow (an allocation); stable once warm.
  uint64_t grownCount() const { return Grown; }

private:
  std::vector<T> Slots;
  size_t Used = 0;
  uint64_t Grown = 0;
};

/// Recycled classifier output packets: emission copy-assigns into slots
/// whose field vectors retain capacity.
using PacketBuf = RecyclePool<netkat::Packet>;

/// One compiled classifier program in a single contiguous arena.
class Classifier {
public:
  Classifier() = default;

  /// Lowers a flattened FDD into the arena.
  explicit Classifier(const FlatFdd &F);

  /// Runs the program on \p Pkt, emitting each action's rewritten packet
  /// into \p Out (nothing on drop). Allocation-free once \p Out is warm.
  void apply(const netkat::Packet &Pkt, PacketBuf &Out) const;

  /// Convenience overload for tests: appends to a plain vector.
  void apply(const netkat::Packet &Pkt,
             std::vector<netkat::Packet> &Out) const;

  /// Prefetches the first op (the batched loop calls this one packet
  /// ahead).
  void prefetchRoot() const {
    __builtin_prefetch(Code.data() + Root);
  }

  /// Arena size in 64-bit words (compile-stats reporting).
  size_t codeWords() const { return Code.size(); }
  /// Number of dispatch ops (sparse + dense) in the program.
  size_t numOps() const { return Ops; }
  /// Number of dense jump-table ops.
  size_t numDenseOps() const { return DenseOps; }

private:
  uint32_t lowerLeaf(const FlatFdd &F, int32_t LeafIdx,
                     std::vector<int64_t> &Memo);
  uint32_t lowerNode(const FlatFdd &F, int32_t NodeIdx,
                     std::vector<int64_t> &NodeMemo,
                     std::vector<int64_t> &LeafMemo);

  /// The op arena. Layouts (all offsets are word indices into Code):
  ///   Sparse: [kind|field|count] [default] [v0..vN-1] [t0..tN-1]
  ///   Dense:  [kind|field|span]  [default] [base]     [t0..tSpan-1]
  ///   Leaf:   [kind|actions] then per action [writes] ([field] [value])*
  std::vector<uint64_t> Code;
  uint32_t Root = 0;
  size_t Ops = 0;
  size_t DenseOps = 0;
};

} // namespace engine
} // namespace eventnet

#endif // EVENTNET_ENGINE_CLASSIFIER_H
