//===- engine/MatchPipeline.h - Flat per-switch match pipeline --*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine's lowering of a flowtable::Table into contiguous arrays the
/// hot path can walk without pointer-chasing std::map nodes:
///
///  - the *classifier program* (default lookup): the flattened FDD is
///    lowered one step further into a single arena of multi-way dispatch
///    ops (engine/Classifier.h) — the zero-allocation batched fast path.
///
///  - the *FDD walk* (differential-testing oracle): the table is
///    recompiled into a forwarding decision diagram
///    (fdd::FddManager::fromTable) and the diagram is flattened into a
///    flat node array; a lookup follows hi/lo indices — at most one test
///    per (field, value) pair on the path — and lands on an interned
///    action list.
///
///  - the *bucket scan* (reference path, also used by the agreement
///    tests): rules in first-match order with their constraints and
///    actions in flat pools, pre-bucketed by the most-constrained field
///    (Table::constraintHistogram — the same root heuristic an FDD
///    applies) so a lookup scans only the rules compatible with the
///    packet's value of that field.
///
/// All three paths compute exactly Table::apply; MatchPipelineTest and
/// ClassifierPropertyTest check them against each other on random
/// packets.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_ENGINE_MATCHPIPELINE_H
#define EVENTNET_ENGINE_MATCHPIPELINE_H

#include "engine/Classifier.h"
#include "flowtable/FlowTable.h"
#include "netkat/Packet.h"
#include "support/Ids.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace eventnet {
namespace engine {

/// Sentinel: the pipeline has no dispatch field (no rule constrains any
/// field).
inline constexpr FieldId NoDispatchField = static_cast<FieldId>(-1);

/// Compact, immutable, thread-safe-for-reads lowering of one table.
class MatchPipeline {
public:
  MatchPipeline() = default;
  explicit MatchPipeline(const flowtable::Table &T);

  /// FDD-walk lookup: appends the matched rule's rewritten packets to
  /// \p Out (nothing on a miss/drop).
  void apply(const netkat::Packet &Pkt,
             std::vector<netkat::Packet> &Out) const;

  /// Classifier-program lookup; same semantics as apply(), emitting into
  /// the recycled buffer (allocation-free once \p Out is warm).
  void applyClassifier(const netkat::Packet &Pkt, PacketBuf &Out) const {
    Cls.apply(Pkt, Out);
  }
  void applyClassifier(const netkat::Packet &Pkt,
                       std::vector<netkat::Packet> &Out) const {
    Cls.apply(Pkt, Out);
  }

  /// Bucket-scan lookup; same semantics as apply().
  void applyScan(const netkat::Packet &Pkt,
                 std::vector<netkat::Packet> &Out) const;

  /// The lowered classifier program (for prefetching and stats).
  const Classifier &classifier() const { return Cls; }

  size_t numRules() const { return Rules.size(); }
  size_t numNodes() const { return Flat.Nodes.size(); }
  size_t numLeaves() const { return Flat.Leaves.size(); }
  FieldId dispatchField() const { return Dispatch; }

private:
  /// One scan rule: a slice of Constraints plus its leaf.
  struct RuleRec {
    uint32_t CFirst, CCount;
    int32_t Leaf;
  };

  void emit(const netkat::Packet &Pkt, int32_t Leaf,
            std::vector<netkat::Packet> &Out) const;
  bool ruleMatches(const RuleRec &R, const netkat::Packet &Pkt) const;

  /// The flattened FDD (walk oracle) and its final lowering.
  FlatFdd Flat;
  Classifier Cls;

  std::vector<std::pair<FieldId, Value>> Constraints;
  std::vector<RuleRec> Rules; ///< first-match order
  FieldId Dispatch = NoDispatchField;
  /// Dispatch value -> rule indices (constrained-to-value rules merged
  /// with dispatch-wildcard rules, first-match order preserved).
  std::unordered_map<Value, std::vector<uint32_t>> Buckets;
  /// Rules with no dispatch constraint, for packets whose dispatch value
  /// hits no bucket (or is absent).
  std::vector<uint32_t> WildcardRules;
};

} // namespace engine
} // namespace eventnet

#endif // EVENTNET_ENGINE_MATCHPIPELINE_H
