//===- engine/Compiled.h - Dense topology + lowered configurations -*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine's ahead-of-time lowering: a dense index over the topology
/// (switch ids to contiguous indices, per-port egress dispositions as
/// flat sorted arrays) and, for every reachable event-set of the NES,
/// every switch's flow table lowered to a MatchPipeline. After
/// construction everything here is immutable and read concurrently by
/// all shards.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_ENGINE_COMPILED_H
#define EVENTNET_ENGINE_COMPILED_H

#include "engine/MatchPipeline.h"
#include "nes/Nes.h"
#include "topo/Topology.h"

#include <unordered_map>
#include <vector>

namespace eventnet {
namespace engine {

/// What lies behind a (switch, port) egress.
struct Egress {
  bool IsHost = false;
  HostId Host = 0;       ///< valid when IsHost
  Location Dst;          ///< valid when !IsHost: the link's far end
  uint32_t DstDense = 0; ///< dense index of Dst.Sw
};

/// Dense mapping of a topology.
class SwitchIndex {
public:
  explicit SwitchIndex(const topo::Topology &Topo);

  // Direct holds interior pointers into Ports; a copy would point into
  // the source object's storage.
  SwitchIndex(const SwitchIndex &) = delete;
  SwitchIndex &operator=(const SwitchIndex &) = delete;

  uint32_t numSwitches() const { return static_cast<uint32_t>(Ids.size()); }
  SwitchId idOf(uint32_t Dense) const { return Ids[Dense]; }
  uint32_t denseOf(SwitchId Sw) const { return Dense.at(Sw); }

  /// The egress disposition at \p Pt of dense switch \p D, or nullptr
  /// for a dangling port (packet discarded).
  const Egress *egressAt(uint32_t D, PortId Pt) const;

  /// The whole egress table of dense switch \p D: (port, disposition)
  /// sorted by port. The shard partitioner walks these to build the
  /// switch adjacency graph (link multiplicities, host attachments).
  const std::vector<std::pair<PortId, Egress>> &portsOf(uint32_t D) const {
    return Ports[D];
  }

private:
  std::vector<SwitchId> Ids;
  std::unordered_map<SwitchId, uint32_t> Dense;
  /// Per dense switch: (port, egress), sorted by port.
  std::vector<std::vector<std::pair<PortId, Egress>>> Ports;
  /// Per dense switch: egress pointer indexed directly by port (into
  /// Ports' stable storage; null = dangling). The hot path's O(1)
  /// replacement for the sorted-array search; ports beyond DirectCap
  /// fall back to the binary search.
  std::vector<std::vector<const Egress *>> Direct;
  static constexpr size_t DirectCap = 4096;
};

/// Every event-set's configuration lowered to per-switch pipelines, plus
/// the per-switch event lists the runtime's learning step scans.
class CompiledNes {
public:
  CompiledNes(const nes::Nes &N, const SwitchIndex &Idx);

  /// The pipeline executing g(\p S) at dense switch \p D.
  const MatchPipeline &pipe(nes::SetId S, uint32_t D) const {
    return Pipes[S * NumSwitches + D];
  }

  /// Ids of events located at dense switch \p D, ascending (the greedy
  /// SWITCH-rule order).
  const std::vector<nes::EventId> &eventsAt(uint32_t D) const {
    return Events[D];
  }

  size_t totalPipelines() const { return Pipes.size(); }

private:
  uint32_t NumSwitches;
  std::vector<MatchPipeline> Pipes; ///< [SetId * NumSwitches + Dense]
  std::vector<std::vector<nes::EventId>> Events;
};

} // namespace engine
} // namespace eventnet

#endif // EVENTNET_ENGINE_COMPILED_H
