//===- engine/MatchPipeline.cpp - Flat per-switch match pipeline ----------===//

#include "engine/MatchPipeline.h"

#include "fdd/Fdd.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace eventnet;
using namespace eventnet::engine;
using eventnet::netkat::Packet;

namespace {

/// Binary search in the packet's sorted field vector.
bool packetField(const Packet &Pkt, FieldId F, Value &Out) {
  const auto &Fs = Pkt.fields();
  auto It = std::lower_bound(
      Fs.begin(), Fs.end(), F,
      [](const std::pair<FieldId, Value> &A, FieldId B) { return A.first < B; });
  if (It == Fs.end() || It->first != F)
    return false;
  Out = It->second;
  return true;
}

} // namespace

MatchPipeline::MatchPipeline(const flowtable::Table &T) {
  //===------------------------------------------------------------------===//
  // Leaf interning shared by every path.
  //===------------------------------------------------------------------===//
  std::map<fdd::ActionSet, int32_t> LeafIdx;
  auto internLeaf = [&](const fdd::ActionSet &Acts) -> int32_t {
    auto It = LeafIdx.find(Acts);
    if (It != LeafIdx.end())
      return It->second;
    FlatFdd::Leaf L;
    L.First = static_cast<uint32_t>(Flat.Actions.size());
    L.Count = static_cast<uint32_t>(Acts.size());
    for (const flowtable::ActionSeq &A : Acts) {
      FlatFdd::Action AR;
      AR.First = static_cast<uint32_t>(Flat.Writes.size());
      AR.Count = static_cast<uint32_t>(A.size());
      for (const auto &[F, V] : A)
        Flat.Writes.push_back({F, V});
      Flat.Actions.push_back(AR);
    }
    int32_t Idx = static_cast<int32_t>(Flat.Leaves.size());
    Flat.Leaves.push_back(L);
    LeafIdx.emplace(Acts, Idx);
    return Idx;
  };

  //===------------------------------------------------------------------===//
  // FDD oracle path: compile the table to a diagram, flatten the DAG.
  //===------------------------------------------------------------------===//
  {
    fdd::FddManager M;
    fdd::NodeId FRoot = M.fromTable(T);
    std::unordered_map<fdd::NodeId, int32_t> Memo;
    // Iterative post-order flatten (children before parents).
    struct Frame {
      fdd::NodeId N;
      bool Expanded;
    };
    std::vector<Frame> Stack{{FRoot, false}};
    while (!Stack.empty()) {
      Frame Fr = Stack.back();
      Stack.pop_back();
      if (Memo.count(Fr.N))
        continue;
      if (M.isLeaf(Fr.N)) {
        Memo[Fr.N] = ~internLeaf(M.leafActions(Fr.N));
        continue;
      }
      if (!Fr.Expanded) {
        Stack.push_back({Fr.N, true});
        Stack.push_back({M.hi(Fr.N), false});
        Stack.push_back({M.lo(Fr.N), false});
        continue;
      }
      fdd::TestKey K = M.testKey(Fr.N);
      FlatFdd::Node NR;
      NR.F = K.F;
      NR.V = K.V;
      NR.Hi = Memo.at(M.hi(Fr.N));
      NR.Lo = Memo.at(M.lo(Fr.N));
      Memo[Fr.N] = static_cast<int32_t>(Flat.Nodes.size());
      Flat.Nodes.push_back(NR);
    }
    Flat.Root = Memo.at(FRoot);
  }

  //===------------------------------------------------------------------===//
  // Scan path: flat rules plus dispatch buckets.
  //===------------------------------------------------------------------===//
  for (const flowtable::Rule &R : T.rules()) {
    RuleRec RR;
    RR.CFirst = static_cast<uint32_t>(Constraints.size());
    RR.CCount = static_cast<uint32_t>(R.Pattern.constraints().size());
    for (const auto &C : R.Pattern.constraints())
      Constraints.push_back(C);
    RR.Leaf = internLeaf(fdd::ActionSet(R.Actions.begin(), R.Actions.end()));
    Rules.push_back(RR);
  }

  std::map<FieldId, size_t> Hist = T.constraintHistogram();
  for (const auto &[F, Count] : Hist)
    if (Dispatch == NoDispatchField || Count > Hist[Dispatch])
      Dispatch = F;

  if (Dispatch != NoDispatchField) {
    // The dispatch value each rule constrains, if any (Match::require
    // keeps at most one constraint per field).
    auto DispatchValue = [&](const RuleRec &RR, Value &Out) {
      for (uint32_t C = RR.CFirst; C != RR.CFirst + RR.CCount; ++C)
        if (Constraints[C].first == Dispatch) {
          Out = Constraints[C].second;
          return true;
        }
      return false;
    };
    // Pass 1: create a bucket per constrained value.
    for (const RuleRec &RR : Rules) {
      Value V;
      if (DispatchValue(RR, V))
        Buckets[V];
    }
    // Pass 2: one sweep in first-match order — a constrained rule joins
    // its value's bucket, a wildcard rule joins every bucket (and the
    // wildcard-only fallback list). Linear in rules + wildcards*buckets
    // instead of buckets*rules.
    for (uint32_t I = 0; I != Rules.size(); ++I) {
      Value V;
      if (DispatchValue(Rules[I], V)) {
        Buckets[V].push_back(I);
      } else {
        for (auto &[BV, Bucket] : Buckets) {
          (void)BV;
          Bucket.push_back(I);
        }
        WildcardRules.push_back(I);
      }
    }
  } else {
    for (uint32_t I = 0; I != Rules.size(); ++I)
      WildcardRules.push_back(I);
  }

  //===------------------------------------------------------------------===//
  // Final lowering: the contiguous classifier program.
  //===------------------------------------------------------------------===//
  Cls = Classifier(Flat);
}

void MatchPipeline::emit(const Packet &Pkt, int32_t Leaf,
                         std::vector<Packet> &Out) const {
  const FlatFdd::Leaf &L = Flat.Leaves[Leaf];
  for (uint32_t A = L.First; A != L.First + L.Count; ++A) {
    Packet P = Pkt;
    const FlatFdd::Action &AR = Flat.Actions[A];
    for (uint32_t W = AR.First; W != AR.First + AR.Count; ++W)
      P.set(Flat.Writes[W].F, Flat.Writes[W].V);
    Out.push_back(std::move(P));
  }
}

void MatchPipeline::apply(const Packet &Pkt, std::vector<Packet> &Out) const {
  int32_t N = Flat.Root;
  while (N >= 0) {
    const FlatFdd::Node &Nd = Flat.Nodes[N];
    Value V;
    bool Pass = packetField(Pkt, Nd.F, V) && V == Nd.V;
    N = Pass ? Nd.Hi : Nd.Lo;
  }
  emit(Pkt, ~N, Out);
}

bool MatchPipeline::ruleMatches(const RuleRec &R, const Packet &Pkt) const {
  for (uint32_t C = R.CFirst; C != R.CFirst + R.CCount; ++C) {
    Value V;
    if (!packetField(Pkt, Constraints[C].first, V) ||
        V != Constraints[C].second)
      return false;
  }
  return true;
}

void MatchPipeline::applyScan(const Packet &Pkt,
                              std::vector<Packet> &Out) const {
  const std::vector<uint32_t> *Candidates = &WildcardRules;
  Value V;
  if (Dispatch != NoDispatchField && packetField(Pkt, Dispatch, V)) {
    auto It = Buckets.find(V);
    if (It != Buckets.end())
      Candidates = &It->second;
  }
  for (uint32_t I : *Candidates)
    if (ruleMatches(Rules[I], Pkt)) {
      emit(Pkt, Rules[I].Leaf, Out);
      return;
    }
}
