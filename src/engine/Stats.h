//===- engine/Stats.h - Engine statistics snapshot --------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A point-in-time snapshot of the concurrent engine's counters:
/// per-shard throughput, queue depth/high-water marks, drop counts,
/// freelist growth, configuration transitions, and latency digests from
/// the obs/ histograms — update latency (event detection to each
/// switch's register learning it, the engine analogue of the Figure
/// 16(b) discovery-time measurement), per-hop queue dwell, and hot-loop
/// batch occupancy, each surfaced as p50/p90/p99/max.
///
/// RelaxedCounter is the live-counter type behind the snapshot: each
/// counter owns a full cache line so shards bumping different counters
/// never bounce the same line, and every access is a relaxed atomic —
/// the counters carry no synchronization, only tallies.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_ENGINE_STATS_H
#define EVENTNET_ENGINE_STATS_H

#include <atomic>
#include <cstdint>
#include <vector>

namespace eventnet {
namespace engine {

/// Defined in engine/Partition.h; declared opaquely here so the stats
/// snapshot can carry the enum without pulling the partitioner in.
enum class PartitionStrategy : uint8_t;

/// A monotone event counter padded to a cache line, accessed with
/// relaxed atomics only (it synchronizes nothing; readers get a racy but
/// individually-consistent tally).
struct alignas(64) RelaxedCounter {
  std::atomic<uint64_t> V{0};

  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t get() const { return V.load(std::memory_order_relaxed); }

  /// Raises the counter to \p N if larger (high-water marks).
  void raiseTo(uint64_t N) {
    uint64_t Cur = V.load(std::memory_order_relaxed);
    while (N > Cur &&
           !V.compare_exchange_weak(Cur, N, std::memory_order_relaxed))
      ;
  }
};

/// Counters of one shard.
struct ShardStats {
  uint64_t PacketsProcessed = 0; ///< switch-hops executed by this shard
  uint64_t QueueDepth = 0;       ///< approximate pending messages
  uint64_t QueueHighWater = 0;   ///< max observed ring + overflow depth
  uint64_t Dropped = 0;          ///< drops attributed to this shard
  uint64_t Transitions = 0;      ///< published register/view swaps
  uint64_t FreelistGrowth = 0;   ///< recycled-buffer pool growth events
  uint32_t Switches = 0;         ///< switches placed on this shard
  uint64_t IdleSleeps = 0;       ///< idle-backoff sleeps taken by the worker
  uint64_t TraceRecorded = 0;    ///< obs trace-ring records that landed
  uint64_t TraceDropped = 0;     ///< obs trace-ring records refused (full)
  uint64_t Shed = 0;             ///< messages shed by the overload policy
  uint64_t Stalls = 0;           ///< fault-plan stalls taken by the worker
  uint64_t FastLearns = 0;       ///< registers advanced by the local fast path
};

/// What the shard partitioner achieved for this run (see
/// engine/Partition.h); lets bench and CLI output attribute scaling
/// behavior to placement quality without a profiler.
struct PartitionSummary {
  /// Static strategy, rendered via partitionStrategyName(). Value-
  /// initialized to 0 == Modulo (the enum is opaque here).
  PartitionStrategy Strategy{};
  uint64_t CutWeight = 0;   ///< edge weight crossing shard boundaries
  uint64_t TotalWeight = 0; ///< total edge weight of the switch graph
  uint64_t MaxShardLoad = 0;
  uint64_t MinShardLoad = 0;
};

/// Percentile summary of one obs/Histogram.h latency histogram, in
/// seconds (percentile error is bounded by the histogram's sub-bucket
/// resolution, ~3%; Max is exact).
struct LatencyDigest {
  uint64_t Samples = 0;
  double MeanSec = 0;
  double P50Sec = 0;
  double P90Sec = 0;
  double P99Sec = 0;
  double MaxSec = 0;
};

/// Snapshot of the whole engine.
struct Stats {
  double ElapsedSec = 0;         ///< run() wall time (injection to drain)
  uint64_t PacketsInjected = 0;  ///< host emissions (incl. echo replies)
  uint64_t PacketsProcessed = 0; ///< total switch-hops
  uint64_t PacketsDelivered = 0; ///< packets handed to a host
  uint64_t PacketsDropped = 0;   ///< table miss / drop rule / dangling port
  uint64_t PacketsForwarded = 0; ///< link traversals
  uint64_t EventsDetected = 0;   ///< distinct NES events that occurred
  uint64_t ConfigTransitions = 0;

  /// Fast-update pipeline tallies (zero when EngineConfig::FastUpdates
  /// is off): registers advanced by the detecting shard's local fan-out
  /// before any controller round-trip, and event-id delta messages the
  /// controller routed in place of full-set broadcasts.
  uint64_t FastPathLearns = 0;
  uint64_t CtrlDeltas = 0;

  bool ClassifierPath = true; ///< classifier program vs FDD-walk lookup
  unsigned BatchSize = 1;     ///< hot-loop dequeue/enqueue batch size

  /// The shard placement this run executed under.
  PartitionSummary Partition;

  /// Switch-hops per wall-clock second (the headline throughput).
  double PacketsPerSec = 0;
  /// Delivered packets per wall-clock second.
  double DeliveredPerSec = 0;

  /// Event-detection to register-learn latency over all (switch, event)
  /// pairs that learned (tag/digest propagation plus queueing) — the
  /// update latency. Always populated after run() (the samples are
  /// by-products of the protocol, so no hot-path cost).
  LatencyDigest Transition;

  /// Per-hop queue dwell: enqueue on a producing shard to dequeue by the
  /// owner. Only populated when EngineConfig::LatencyHistograms is on.
  LatencyDigest QueueDwell;

  /// Messages per non-empty hot-loop drain batch. Dimensionless counts
  /// stored in the *Sec fields (no scaling); only populated when
  /// EngineConfig::LatencyHistograms is on.
  LatencyDigest BatchOccupancy;

  /// obs trace-ring totals across shards (zero when tracing is off).
  uint64_t TraceRecorded = 0;
  uint64_t TraceDropped = 0;

  /// Fault-injection tallies (all zero when no plan is active). Drops,
  /// dups, and delays are ledgered (deterministic); sheds, stalls, and
  /// storms are timing-dependent and counted here only.
  uint64_t FaultDrops = 0;   ///< packets dropped by the fault plan
  uint64_t FaultDups = 0;    ///< packets duplicated by the fault plan
  uint64_t FaultDelays = 0;  ///< packets delayed by the fault plan
  uint64_t FaultSheds = 0;   ///< messages shed by the overload policy
  uint64_t FaultStalls = 0;  ///< worker stalls taken
  uint64_t FaultStorms = 0;  ///< controller storm re-broadcasts sent
  uint64_t DupDelivered = 0; ///< deliveries descending from a duplicate
  uint64_t DupDropped = 0;   ///< drops descending from a duplicate

  std::vector<ShardStats> Shards;
};

} // namespace engine
} // namespace eventnet

#endif // EVENTNET_ENGINE_STATS_H
