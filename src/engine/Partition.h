//===- engine/Partition.h - Topology-aware shard placement ------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assigns switches to engine shards so that packet hops stay on their
/// owning worker thread. The old placement (dense index modulo shard
/// count) puts ring neighbors on different shards, so on most real
/// topologies nearly every hop crosses a shard boundary and pays the
/// MPSC queue instead of the intra-shard short-circuit; the committed
/// baseline showed multi-shard throughput *below* single-shard because
/// of exactly that.
///
/// The partitioner models the topology as a weighted graph built from
/// the SwitchIndex egress tables: vertices are dense switches whose
/// weight is 1 plus the number of attached hosts (host-facing switches
/// are traffic sources and sinks, so they carry more load), and edges
/// between switches are weighted by link multiplicity. Three strategies:
///
///   modulo      dense % NumShards — the historical placement, kept as
///               the comparison baseline and for tests;
///   contiguous  seeded greedy BFS growth: NumShards seeds spread by
///               farthest-point sampling, then regions expand one vertex
///               at a time, always growing the lightest region by its
///               most-connected frontier vertex — balanced contiguous
///               regions;
///   refined     contiguous followed by a Kernighan–Lin-style boundary
///               pass: while an imbalance bound holds, greedily move the
///               boundary switch whose migration most reduces the
///               weighted edge cut. Never worse than contiguous (only
///               improving moves are taken). The default.
///
/// The result carries the achieved weighted edge cut and load balance so
/// the engine, the CLI, and the benches can report *why* a run scaled
/// (or did not) without re-running under a profiler.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_ENGINE_PARTITION_H
#define EVENTNET_ENGINE_PARTITION_H

#include "engine/Compiled.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace eventnet {
namespace engine {

/// How switches are assigned to shards.
enum class PartitionStrategy : uint8_t {
  Modulo,     ///< dense % NumShards (the historical placement)
  Contiguous, ///< seeded greedy BFS region growth
  Refined,    ///< contiguous + KL-style boundary refinement (default)
};

/// Canonical lowercase name ("modulo", "contiguous", "refined").
const char *partitionStrategyName(PartitionStrategy S);

/// Parses a canonical name; nullopt for anything else.
std::optional<PartitionStrategy> parsePartitionStrategy(const std::string &S);

/// A placement plus the quality numbers it achieved.
struct PartitionResult {
  PartitionStrategy Strategy = PartitionStrategy::Refined;
  unsigned NumShards = 1;

  /// Dense switch index -> owning shard. Every switch appears exactly
  /// once (it is the index), so the assignment is total by construction.
  std::vector<uint32_t> ShardOf;

  /// Sum of edge weights whose endpoints live on different shards.
  uint64_t CutWeight = 0;
  /// Sum of all edge weights (CutWeight / TotalWeight is the fraction of
  /// hops that pay the inter-shard queue under uniform link usage).
  uint64_t TotalWeight = 0;

  /// Heaviest / lightest shard by vertex weight (1 + attached hosts).
  uint64_t MaxShardLoad = 0;
  uint64_t MinShardLoad = 0;
  /// The load ceiling the partition was built against: no shard may
  /// exceed it. max(ceil(Bound * ideal), ideal + max vertex weight) —
  /// the additive term is unavoidable because vertices are atomic.
  uint64_t BalanceLimit = 0;
  /// The configured multiplicative imbalance bound.
  double ImbalanceBound = 0;

  /// Switches per shard (shards may be empty when NumShards exceeds the
  /// switch count).
  std::vector<uint32_t> ShardSwitches;

  /// CutWeight / TotalWeight in [0, 1]; 0 when the graph has no edges.
  double cutFraction() const {
    return TotalWeight ? static_cast<double>(CutWeight) / TotalWeight : 0;
  }
};

/// Computes a placement of \p Idx's switches onto \p NumShards shards.
/// \p ImbalanceBound is the multiplicative load bound the refinement
/// pass must respect (>= 1; values below are clamped). Deterministic:
/// the same topology and parameters always produce the same placement.
PartitionResult partitionSwitches(const SwitchIndex &Idx, unsigned NumShards,
                                  PartitionStrategy S,
                                  double ImbalanceBound = 1.25);

} // namespace engine
} // namespace eventnet

#endif // EVENTNET_ENGINE_PARTITION_H
