//===- engine/Engine.h - Sharded concurrent data-plane engine ---*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent execution substrate for compiled NESes: N worker
/// threads each own a shard of the topology's switches and exchange
/// packets over lock-free MPSC queues; a controller thread plays the
/// Figure 7 CTRLRECV/CTRLSEND roles. Per-switch event registers are
/// single-writer (the owning shard), so the Section 4 tag/digest
/// protocol runs without locks:
///
///  - IN: an injected packet is stamped with the ingress switch's
///    current event-set tag by the owner, exactly the Figure 7 IN rule.
///  - SWITCH: the owner learns digest events and greedily-consistent
///    fresh events, forwards with the *stamped* tag's pipeline (packets
///    in flight never see a mixed configuration — the table a packet is
///    matched against is chosen by its immutable tag, and all lowered
///    pipelines are immutable), then extends the outgoing digest.
///  - Configuration transitions are atomic pointer swaps of the
///    switch's published view (tag + register); readers (stats, test
///    monitors) are RCU-style lock-free, and old views are retired
///    through an epoch domain (engine/Rcu.h).
///
/// Shard-local trace entries carry tickets from a global atomic counter;
/// run() merges them into a consistency::NetworkTrace whose log order is
/// a legal global interleaving (per-switch order is the owner's real
/// processing order; a parent's ticket always precedes its children's),
/// so the Definition 6 checker applies to concurrent executions exactly
/// as it does to the sequential Machine and Simulation.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_ENGINE_ENGINE_H
#define EVENTNET_ENGINE_ENGINE_H

#include "consistency/Trace.h"
#include "engine/Compiled.h"
#include "engine/Partition.h"
#include "engine/Queue.h"
#include "engine/Rcu.h"
#include "engine/Stats.h"
#include "engine/TrafficGen.h"
#include "engine/Wake.h"
#include "faults/Injector.h"
#include "nes/Nes.h"
#include "obs/Histogram.h"
#include "obs/TraceRing.h"
#include "support/BitSet.h"
#include "topo/Topology.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace eventnet {
namespace engine {

/// What a producer does when a shard's bounded ring is full and the
/// backlog keeps growing.
enum class OverloadPolicy : uint8_t {
  /// Bounded spin -> yield -> exponential backoff retry on the ring,
  /// then spill to the unbounded overflow deque. Lossless; producers
  /// still never block indefinitely (a cycle of full rings with
  /// blocking producers-who-are-consumers would deadlock).
  Block,
  /// Bound the backlog at ring capacity; beyond it, shed the *oldest*
  /// buffered data-plane message to admit the new one. Control messages
  /// are never shed; every shed is accounted (per-shard counter, drop
  /// tally, excused trace ticket) so the audit stays exact.
  ShedOldest,
  /// Bound the backlog at ring capacity; beyond it, refuse the incoming
  /// data-plane message. Same accounting as ShedOldest.
  ShedNewest,
};

/// Stable lowercase name: "block", "shed-oldest", "shed-newest".
const char *overloadPolicyName(OverloadPolicy P);

/// Inverse of overloadPolicyName; nullopt for unknown names.
std::optional<OverloadPolicy> parseOverloadPolicy(const std::string &Name);

/// Engine construction parameters.
struct EngineConfig {
  /// Worker threads; switches are placed on shards by Partition.
  unsigned NumShards = 1;
  /// How switches map to shards (engine/Partition.h). The default grows
  /// contiguous regions and refines their boundaries so most hops stay
  /// on their owning worker; "modulo" is the historical round-robin
  /// placement, kept as the comparison baseline.
  PartitionStrategy Partition = PartitionStrategy::Refined;
  /// Multiplicative load-balance bound the refinement pass must respect
  /// (max shard vertex-weight / ideal; see Partition.h for the exact
  /// ceiling).
  double ImbalanceBound = 1.25;
  /// Longest sleep (microseconds) of the adaptive idle backoff: a worker
  /// that drains nothing spins briefly, then yields, then sleeps in
  /// doubling steps up to this cap, so underloaded shards stop burning
  /// the memory bus polling their queue. 0 disables sleeping (spin/yield
  /// only, the historical behavior).
  unsigned IdleSleepUs = 128;
  /// Per-shard queue capacity (rounded up to a power of two).
  size_t QueueCapacity = 1 << 15;
  /// Controller re-broadcasts its event set to every switch (CTRLSEND),
  /// accelerating discovery beyond digest gossip. Off by default, like
  /// the simulator.
  bool CtrlBroadcast = false;
  /// The low-latency update pipeline: (a) a shard that detects an event
  /// applies the transition to its own subscribed switches immediately
  /// (the per-switch RCU view swap publishes each register
  /// independently, so no controller round-trip is needed); (b) the
  /// controller propagates event-id deltas routed by a load-time
  /// event->shard subscription index instead of full-bitset broadcasts,
  /// delivered over a per-shard priority lane that bypasses the data
  /// ring (a delta never queues behind a storm backlog);
  /// (c) the controller sleeps on an eventfd/self-pipe wake instead of
  /// the spin->yield->sleep backoff (whose IdleSleepUs cap is otherwise
  /// a built-in latency floor). Off = the historical controller path,
  /// kept so benches can measure both pipelines in one binary. Either
  /// way, merging a detected event into a register is the same
  /// union-with-occurred-events step CtrlBroadcast has always taken
  /// (single-event unions that would leave the NES family — the target
  /// register missing one of the event's causes — fall back to merging
  /// the sender's occurred-event context), so Definition 6 is
  /// unaffected.
  bool FastUpdates = true;
  /// Hosts answer echo requests in-engine (KindRequest -> KindReply).
  bool EchoReplies = true;
  /// Record the network trace for the consistency checkers. Turn off
  /// for pure-throughput benchmarking.
  bool RecordTrace = true;
  /// Stream trace entries to an external collector during the run
  /// (drainTraceStream) instead of — or, for differential testing, in
  /// addition to — accumulating the merged trace. The streaming
  /// Definition 6 checker rides this: verification memory stays
  /// O(window) no matter how long the run is. With RecordTrace off and
  /// StreamTrace on, mergeResults keeps no trace and the fault ledger's
  /// merged-trace indices stay empty (stream items carry the excusals).
  bool StreamTrace = false;
  /// Per-shard cap on buffered stream items awaiting the collector
  /// (StreamBuf). A collector that falls behind the data path (e.g. the
  /// single-threaded streaming checker on an oversubscribed machine)
  /// must not grow the buffer with the horizon: past the cap the shard
  /// sheds the overflow, counts it (streamLagShed), and the checker
  /// reports inconclusive — the run's memory and exit latency stay
  /// bounded, the verdict degrades honestly, and the data path never
  /// blocks on verification.
  size_t StreamBufCap = 1 << 16;
  /// Record every host delivery in deliveries(). Turn off (with
  /// RecordTrace) for pure-throughput benchmarking: recording
  /// necessarily allocates per packet.
  bool RecordDeliveries = true;
  /// Look packets up with the contiguous classifier program (the batched
  /// zero-allocation fast path). Off = the flattened-FDD walk, kept as
  /// the differential-testing oracle.
  bool UseClassifier = true;
  /// Messages dequeued/enqueued per hot-loop iteration (amortizes the
  /// MPSC queue atomics; 1 degenerates to the PR 1 message-at-a-time
  /// loop).
  unsigned BatchSize = 32;
  /// Record per-hop queue-dwell and batch-occupancy histograms (obs/).
  /// Off by default: when off, the hot loop takes no timestamps and the
  /// recording calls reduce to a null-pointer test.
  bool LatencyHistograms = false;
  /// Per-shard obs trace-ring capacity in events (obs/TraceRing.h);
  /// 0 disables tracing entirely (no ring is even allocated).
  size_t TraceEventCapacity = 0;
  /// Behavior when a shard's ring overflows (see OverloadPolicy).
  OverloadPolicy Overload = OverloadPolicy::Block;
  /// Compiled fault plan, or null for no injection (the hooks then cost
  /// one predictable null/flag test, like the obs layer). The Injector
  /// must outlive the engine; it may clamp QueueCapacity.
  const faults::Injector *Faults = nullptr;
  /// Called on the *owning shard's worker thread* for every host
  /// delivery, after the delivery is trace-logged and counted. The sink
  /// must be fast and lock-light (it runs inside the hot loop) and
  /// thread-safe across shards. Empty = no sink, and the hook reduces
  /// to one predictable branch, like the obs layer.
  std::function<void(HostId, const netkat::Packet &)> DeliverySink;
  /// External stop request (e.g. a signal handler's flag). run() checks
  /// it between phases and stops injecting early; in-flight work still
  /// quiesces, so the trace and the audit stay complete for whatever was
  /// injected. Null = never stop early.
  const std::atomic<bool> *StopRequested = nullptr;
};

/// A sharded multi-threaded data-plane engine executing one NES.
class Engine {
public:
  Engine(const nes::Nes &N, const topo::Topology &Topo,
         EngineConfig C = EngineConfig());
  ~Engine();

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Executes \p W phase by phase (quiescing between phases) and shuts
  /// the threads down. One workload per Engine. Implemented on the
  /// streaming surface below: start(); per phase injectBatch() +
  /// awaitQuiescence(); finish().
  void run(const Workload &W);

  //===--------------------------------------------------------------------===//
  // Streaming mode (the net backend's surface)
  //===--------------------------------------------------------------------===//
  //
  // An external driver — one thread at a time — can run the engine
  // open-ended instead of handing it a whole Workload: start() spins the
  // threads up, injectBatch() feeds traffic as it arrives (batched by
  // ingress shard, one Pending add per shard), awaitQuiescence() blocks
  // until everything in flight has drained, and finish() joins the
  // threads and merges results exactly as run() does. start/injectBatch/
  // awaitQuiescence/finish must all be called from the same thread.

  /// Spins up the worker and controller threads. Call once.
  void start();
  /// Hands \p N injections to their ingress shards. Caller must have
  /// called start(). Never blocks indefinitely (full rings spill to the
  /// overflow deque under the overload policy).
  void injectBatch(const Injection *Inj, size_t N);
  /// Blocks until every in-flight message (packets, echo replies,
  /// controller work) has drained.
  void awaitQuiescence();
  /// Nonblocking quiescence probe. Monotone for the single external
  /// driver: once true, only the driver's own injectBatch() can make it
  /// false again.
  bool quiescent() const { return Pending.load() == 0; }
  /// Stops and joins the threads, merges traces/stats. Idempotent; the
  /// engine is read-only afterwards.
  void finish();

  /// One element of the streaming trace feed (EngineConfig::StreamTrace):
  /// either a trace entry or an excusal (a ledgered drop/shed whose
  /// chain may legitimately end at Ticket). Parent is the producing
  /// occurrence's ticket, -1 for a root.
  struct StreamItem {
    enum Kind : uint8_t { Entry, Excuse } K = Entry;
    uint64_t Ticket = 0;
    int64_t Parent = -1;
    netkat::Packet Lp;
    bool IsDelivery = false;
    bool IsDup = false;
  };

  /// Drains every shard's buffered stream items into \p Out (appended;
  /// per-shard ticket order, unordered across shards) and returns the
  /// commit watermark W: no shard will ever again produce an entry with
  /// ticket < W, so a checker may commit everything <= W - 1. Returns 0
  /// until every shard has published a first watermark. One collector
  /// thread at a time; callable concurrently with the run.
  uint64_t drainTraceStream(std::vector<StreamItem> &Out);

  /// Stream items shed because a shard's StreamBuf sat at
  /// EngineConfig::StreamBufCap when the shard tried to flush (the
  /// collector was not keeping up). Nonzero means the streaming checker
  /// saw a gappy trace and its verdict must not be a clean pass.
  /// Callable concurrently with the run.
  uint64_t streamLagShed();

  /// Stream items currently buffered and awaiting the collector (sum of
  /// per-shard StreamBuf sizes; excludes worker-local pending items). A
  /// closed-loop producer can poll this between batches and yield until
  /// the checker catches up, keeping the hand-off below StreamBufCap so
  /// nothing is shed. Callable concurrently with the run.
  uint64_t streamBacklog();

  /// Counter snapshot; callable concurrently with run() from another
  /// thread (latency aggregates are only populated once run returned).
  Stats stats() const;

  /// The merged network trace (valid after run; empty if RecordTrace
  /// was off).
  const consistency::NetworkTrace &trace() const { return MergedTrace; }

  /// Moves the merged trace out (for report assembly on a dying engine;
  /// trace() is empty afterwards).
  consistency::NetworkTrace takeTrace() { return std::move(MergedTrace); }

  /// The configuration tag each trace entry's packet carried, parallel
  /// to trace().entries().
  const std::vector<nes::SetId> &traceTags() const { return MergedTags; }

  /// The fault ledger assembled by run(): the deterministic record
  /// multiset (drops/dups/delays/storms) plus the merged-trace indices
  /// the consistency checker needs to excuse ledgered damage. Empty
  /// when no plan was active.
  const faults::FaultLedger &faultLedger() const { return Ledger; }

  /// Moves the ledger out (for report assembly on a dying engine).
  faults::FaultLedger takeFaultLedger() { return std::move(Ledger); }

  /// Packets handed to hosts, in per-shard processing order (merged).
  const std::vector<std::pair<HostId, netkat::Packet>> &deliveries() const {
    return MergedDeliveries;
  }

  /// The merged obs event timeline, sorted by timestamp (valid after
  /// run; empty unless EngineConfig::TraceEventCapacity was set). Moves
  /// the events out; subsequent calls return empty.
  std::vector<obs::TraceEvent> takeObsTrace() {
    return std::move(MergedObsTrace);
  }

  /// Seconds after run() start at which each switch first learned each
  /// event (valid after run) — the Figure 16(b) measurement. Derived
  /// from the monotonic per-shard learn stamps at merge time.
  const std::map<std::pair<SwitchId, nes::EventId>, double> &
  learnTimes() const {
    return MergedLearnTimes;
  }

  /// Raw event-detection -> register-learn latencies in nanoseconds,
  /// one sample per (switch, event) learn (valid after run) — what the
  /// Transition digest summarizes. Exposed raw so benches can merge
  /// percentiles across repeated runs.
  const std::vector<int64_t> &transitionLatenciesNs() const {
    return TransitionNs;
  }

  /// An RCU read of a switch's published view: tag, register, and the
  /// monotonic version stamped at each transition. Lock-free; callable
  /// from any thread at any time.
  struct ViewSnapshot {
    nes::SetId Tag = 0;
    DenseBitSet E;
    uint64_t Version = 0;
  };
  ViewSnapshot readView(SwitchId Sw) const;

  const nes::Nes &structure() const { return N; }
  const topo::Topology &topology() const { return Topo; }

  /// The shard placement this engine runs under (chosen at
  /// construction; immutable afterwards).
  const PartitionResult &partition() const { return Part; }

private:
  /// The immutable state a switch publishes at every transition.
  struct SwitchView {
    nes::SetId Tag = 0;
    DenseBitSet E;
    uint64_t Version = 0;
  };

  /// Owner-private plus published per-switch state.
  struct SwitchSlot {
    SwitchId Id = 0;
    uint32_t Shard = 0;
    nes::SetId Tag = 0; ///< owner's working tag (== setIndex(E))
    DenseBitSet E;      ///< owner's working register
    std::atomic<const SwitchView *> Published{nullptr};
  };

  /// A packet in flight with its Section 4 metadata.
  struct EnginePacket {
    netkat::Packet Pkt;
    nes::SetId Tag = 0;
    DenseBitSet Digest;
    int64_t Parent = -1; ///< trace ticket of the producing occurrence
    uint32_t Dense = 0;  ///< dense index of Pkt.sw() (set by the sender,
                         ///< so the hot loop never hashes a SwitchId)
    bool IngressLogged = false;
    /// Descends from a fault-plan duplicate: its terminal outcome is
    /// tallied separately (DupDelivered/DupDropped) so the drop audit
    /// can net duplicates out of delivered + dropped == injected.
    bool FromDup = false;
  };

  struct Msg {
    enum Kind : uint8_t { PacketIn, Inject, CtrlMerge, CtrlDelta } K =
        PacketIn;
    EnginePacket P;        // PacketIn
    HostId From = 0;       // Inject
    netkat::Packet Header; // Inject
    DenseBitSet Merge;     // CtrlMerge; CtrlDelta causal-fallback context
    uint32_t Event = 0;    // CtrlDelta: one event id
    int64_t EnqNs = 0; ///< ring-enqueue stamp (only when LatencyHistograms)
  };

  /// Control messages must never be shed (dropping a CTRLSEND would
  /// wedge event propagation, not degrade it).
  static bool isCtrlMsg(const Msg &M) {
    return M.K == Msg::CtrlMerge || M.K == Msg::CtrlDelta;
  }

  struct TraceRec {
    uint64_t Ticket = 0;
    int64_t Parent = -1;
    netkat::Packet Lp;
    bool IsDelivery = false;
    nes::SetId Tag = 0;
  };

  /// The per-shard latency-histogram pair (heap-allocated only when
  /// EngineConfig::LatencyHistograms is on; ~15 KB each).
  struct ShardLatency {
    obs::LogHistogram DwellNs;    ///< ring enqueue -> owner dequeue, ns
    obs::LogHistogram Occupancy;  ///< messages per non-empty drain batch
  };

  /// A recycled outgoing-message buffer for one target shard: slots keep
  /// their heap capacity across reset(), so steady-state egress batching
  /// allocates nothing (the flush *copies* into the target ring's cells,
  /// which are themselves recycled — see Queue.h).
  using MsgBuf = RecyclePool<Msg>;

  struct Shard {
    uint32_t Index = 0; ///< own position in Shards
    std::unique_ptr<BoundedMpscQueue<Msg>> Q; ///< lock-free fast path
    /// Overflow when the ring is full: producers never block (a cycle
    /// of full bounded queues would otherwise deadlock the workers);
    /// the owner drains the ring first, then the overflow.
    std::mutex OverflowMu;
    std::deque<Msg> Overflow;
    /// Priority control lane (FastUpdates): CtrlDelta messages bypass
    /// the data ring entirely, so an update is never stuck behind a
    /// storm backlog of data packets — the owner drains this lane ahead
    /// of every ring batch. Single producer (the controller thread),
    /// single consumer (the owner); Size is the owner's cheap
    /// emptiness probe, so the common empty case costs one relaxed
    /// load, no lock.
    std::mutex CtrlMu;
    std::deque<Msg> CtrlLane;
    std::atomic<uint32_t> CtrlLaneSize{0};
    std::vector<TraceRec> Trace;
    std::vector<std::pair<HostId, netkat::Packet>> Delivered;
    /// First-learn stamp per (switch, event), raw monotonicNs() — the
    /// same clock as DetectNs, so the Transition digest is a pure
    /// monotonic difference (no wall-clock skew can enter it).
    std::map<std::pair<SwitchId, nes::EventId>, int64_t> LearnNs;
    RetireList<SwitchView> Retired;
    std::thread Thread;
    std::vector<netkat::Packet> Outs; ///< scratch (FDD-walk oracle path)
    PacketBuf ClsOut;                 ///< recycled classifier outputs
    std::vector<Msg> Batch;           ///< recycled dequeue batch slots
    std::vector<MsgBuf> OutBufs;      ///< recycled egress, per target
    MsgBuf SelfProc; ///< swap space for draining OutBufs[Index] in place
    /// Scratch bitsets for the SWITCH rule (capacity-reusing; the hot
    /// loop builds no fresh DenseBitSets).
    DenseBitSet ScratchKnown, ScratchFresh, ScratchExt, ScratchNew,
        ScratchDigest;
    /// Scratch register for the fast-update paths (shard-local fan-out
    /// and CtrlDelta merges); separate from the SWITCH-rule scratch so a
    /// mid-detection fan-out cannot clobber the Known/Fresh sets.
    DenseBitSet ScratchFan;
    RelaxedCounter Processed;
    RelaxedCounter Transitions;
    RelaxedCounter Dropped;
    RelaxedCounter QueueHighWater;
    RelaxedCounter IdleSleeps;
    RelaxedCounter Shed;   ///< messages shed here by the overload policy
    RelaxedCounter Stalls; ///< fault-plan stalls taken by this worker
    RelaxedCounter FastLearns; ///< registers advanced by the local fast path

    /// Fault-injection state; only touched when a plan is active.
    /// Owner-thread unless noted.
    struct DelayedMsg {
      uint32_t Target = 0;   ///< destination shard
      uint64_t ReleaseAt = 0; ///< DrainPolls threshold for release
      Msg M;
    };
    std::deque<DelayedMsg> Delayed;        ///< held hops (delay faults)
    uint64_t DrainPolls = 0;               ///< drainBatch calls, incl. empty
    uint64_t NonEmptyBatches = 0;          ///< stall cadence counter
    uint64_t StallEvery = 0;               ///< resolved stall rule; 0 = none
    uint32_t StallUs = 0;
    std::vector<faults::FaultRecord> FaultRecs; ///< ledgered link faults
    std::vector<int64_t> ExcusedTickets; ///< parents of fault-dropped hops
    std::vector<int64_t> DupTickets;     ///< duplicate egress tickets
    std::vector<int64_t> ShedTickets;    ///< parents of shed msgs (OverflowMu)
    /// Streaming trace sink (EngineConfig::StreamTrace). StreamPending
    /// is owner-private; the owner flushes it to StreamBuf (StreamMu)
    /// once per loop iteration and then publishes StreamWatermark — a
    /// promise that this shard will never again log a ticket below it.
    /// ShedStream mirrors ShedTickets for producers (OverflowMu).
    std::vector<StreamItem> StreamPending;
    std::mutex StreamMu;
    std::vector<StreamItem> StreamBuf;
    uint64_t StreamLagShed = 0; ///< items shed at StreamBufCap (StreamMu)
    std::atomic<uint64_t> StreamWatermark{0};
    std::vector<int64_t> ShedStream;
    /// Observability (obs/): both null when the corresponding
    /// EngineConfig knob is off — recording calls then cost one
    /// predictable null test and the hot loop takes no timestamps.
    std::unique_ptr<obs::TraceRing> ObsRing;
    std::unique_ptr<ShardLatency> Lat;
  };

  /// Total growth events of a shard's recycled buffers (classifier
  /// output pool + egress slots). Non-atomic reads: only valid after the
  /// shard thread joined (mergeResults), not from concurrent stats().
  static uint64_t freelistGrowth(const Shard &S) {
    uint64_t G = S.ClsOut.grownCount() + S.SelfProc.grownCount();
    for (const MsgBuf &B : S.OutBufs)
      G += B.grownCount();
    return G;
  }

  void workerLoop(unsigned ShardIdx);
  void controllerLoop();
  /// Builds the event->switch subscription index (FastUpdates): which
  /// dense switches care about each event, grouped by owning shard, plus
  /// the per-event list of shards with at least one subscriber.
  void buildSubscriptions();
  /// Shard-local fast path: the detecting shard applies \p E to its own
  /// subscribed switches immediately (one RCU swap each), before the
  /// controller round-trip. \p DetectDense learns via the SWITCH rule's
  /// own Fresh merge and is skipped here. \p Ctx is the detection's
  /// consistent extension — occurred events covering \p E's causes.
  void fanOutLocal(Shard &S, unsigned E, uint32_t DetectDense,
                   const DenseBitSet &Ctx);
  /// Merges the single event \p E into \p Dense's register if new. When
  /// the single-event union is not an NES family member (the register
  /// lacks one of \p E's causes), merges \p Ctx — a set of occurred
  /// events containing \p E's enabling chain — instead.
  void mergeEventInto(Shard &S, uint32_t Dense, unsigned E,
                      const DenseBitSet &Ctx);
  /// Drains \p S's priority control lane (CtrlDelta messages); returns
  /// how many it processed.
  size_t drainCtrlLane(Shard &S);
  size_t drainBatch(Shard &S);
  /// Drains OutBufs[S.Index] in place (self-delivered hops never touch
  /// the ring or Pending) until every chain ends or leaves the shard.
  void drainSelf(Shard &S);
  /// Releases delay-held messages whose poll deadline passed.
  void releaseDelayed(Shard &S);
  /// Admits \p M to \p Dst's overflow under the configured overload
  /// policy (spill, or bounded-backlog shedding with full accounting).
  void overflowMsg(Shard &Dst, Msg &&M);
  /// Retires \p M unprocessed: Pending release, drop/shed tallies,
  /// excused-ticket ledgering. Caller holds Dst.OverflowMu.
  void shedLocked(Shard &Dst, Msg &M);
  void flushOut(Shard &S);
  void prefetchMsg(const Msg &M) const;
  void processMsg(Shard &S, Msg &M);
  void handleInject(Shard &S, HostId From, netkat::Packet Header);
  void processPacket(Shard &S, EnginePacket &P);
  void forwardOut(Shard &S, const EnginePacket &P, uint32_t AtDense,
                  const netkat::Packet &Out, const DenseBitSet &OutDigest);
  void applyRegister(Shard &S, SwitchSlot &Sl, const DenseBitSet &NewE);
  void sendToShard(uint32_t Target, Msg &&M);
  /// Pushes \p N already-Pending-counted messages into \p Target's ring
  /// (batch CAS), spilling leftovers to the overflow deque. Stamps each
  /// message's EnqNs when latency histograms are on (hence non-const).
  void pushBatchToShard(uint32_t Target, Msg *Msgs, size_t N);
  /// Records one obs trace event on \p S's ring; a null test when
  /// tracing is off.
  void obsRecord(Shard &S, obs::TraceKind K, uint32_t A, uint32_t B) {
    if (obs::TraceRing *R = S.ObsRing.get())
      R->record({monotonicNs() - StartNs.load(std::memory_order_relaxed),
                 A, B, K, static_cast<uint8_t>(S.Index)});
  }
  int64_t logEntry(Shard &S, const netkat::Packet &Lp, int64_t Parent,
                   bool IsDelivery, nes::SetId Tag);
  void mergeResults();
  /// The partition summary and per-shard counters shared by stats() and
  /// mergeResults() (one source of truth for both report shapes).
  void fillPartitionStats(Stats &S) const;
  /// Fault-injection counter totals (relaxed reads; live-safe).
  void fillFaultStats(Stats &S) const;
  /// Latency-histogram digests and trace-ring totals (lock-free; exact
  /// after join, racy-but-consistent during run for the sampler).
  void fillObsStats(Stats &S) const;
  ShardStats baseShardStats(const Shard &Sh) const;
  static int64_t monotonicNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  double nowSec() const {
    // StartNs is atomic: stats() may race run()'s clock reset.
    return static_cast<double>(monotonicNs() - StartNs.load()) * 1e-9;
  }

  const nes::Nes &N;
  const topo::Topology &Topo;
  EngineConfig C;

  SwitchIndex Idx;
  PartitionResult Part; ///< dense switch -> shard placement + quality
  CompiledNes Compiled;
  std::unique_ptr<SwitchSlot[]> Slots; ///< by dense switch index
  std::vector<std::unique_ptr<Shard>> Shards;

  // Controller.
  std::unique_ptr<BoundedMpscQueue<uint32_t>> CtrlQ;
  std::thread CtrlThread;
  DenseBitSet Occurred; ///< controller-thread private (R of Figure 7)
  /// Event-driven controller wake (FastUpdates): workers notify after
  /// pushing to CtrlQ, finish() notifies after raising StopFlag.
  ControllerWake CtrlWake;

  // Update-pipeline routing (built once at construction when
  // FastUpdates; all read-only afterwards).
  /// Dense switches subscribed to event E and owned by shard S, at
  /// [E * NumShards + S]. A switch subscribes to an event iff adding it
  /// to some family set changes the switch's table, or the event shares
  /// a family set with an event detectable at the switch (so its arrival
  /// can gate a future local detection via enables/con).
  std::vector<std::vector<uint32_t>> SubSwitches;
  /// Shards with at least one subscriber, per event (delta routing).
  std::vector<std::vector<uint32_t>> SubShards;
  /// Dense switches owned by each shard (explicit-broadcast deltas).
  std::vector<std::vector<uint32_t>> OwnedDense;

  mutable EpochDomain Epochs;
  std::atomic<uint64_t> Tickets{0};
  std::atomic<int64_t> Pending{0};
  std::atomic<bool> StopFlag{false};
  std::atomic<int64_t> StartNs{0}; ///< run() start, steady-clock ns
  bool Started = false; ///< start() ran (driver-thread private)
  /// Injection group buffers, one per shard; keep their capacity across
  /// injectBatch() calls (driver-thread private).
  std::vector<std::vector<Msg>> InjBufs;

  // Counters (cache-line padded, relaxed; see Stats.h).
  RelaxedCounter Injected, Delivered, Dropped, Forwarded, Events;
  RelaxedCounter CtrlDeltas; ///< delta messages routed by the controller

  // Fault injection. FaultArmed is per dense switch, read-only after
  // construction; StormRecs is controller-thread private until join.
  std::vector<bool> FaultArmed;
  std::vector<faults::FaultRecord> StormRecs;
  RelaxedCounter FaultDrops, FaultDups, FaultDelays, FaultSheds,
      FaultStalls, FaultStorms, DupDelivered, DupDropped;
  faults::FaultLedger Ledger; ///< assembled by mergeResults()
  std::vector<std::unique_ptr<std::atomic<int64_t>>> DetectNs; ///< per event
  double ElapsedSec = 0;
  std::atomic<bool> Ran{false};

  // Merged results (valid after run()).
  consistency::NetworkTrace MergedTrace;
  std::vector<nes::SetId> MergedTags;
  std::vector<std::pair<HostId, netkat::Packet>> MergedDeliveries;
  std::map<std::pair<SwitchId, nes::EventId>, double> MergedLearnTimes;
  std::vector<int64_t> TransitionNs; ///< detect->learn samples, ns
  std::vector<obs::TraceEvent> MergedObsTrace;
  Stats FinalStats;
};

} // namespace engine
} // namespace eventnet

#endif // EVENTNET_ENGINE_ENGINE_H
