//===- engine/TrafficGen.h - Workload driver --------------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded workload generation for the concurrent engine. A Workload is a
/// sequence of *phases*; the engine injects a phase's emissions
/// concurrently, runs to quiescence, then starts the next phase — the
/// engine-world analogue of the simulator's timestamped schedule, giving
/// scripted scenarios (contact-before-reply orderings) a deterministic
/// causal structure while leaving everything inside a phase maximally
/// concurrent.
///
/// Headers use the sim/Wire.h application format, so traces replay
/// through the same consistency checkers as the simulator's.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_ENGINE_TRAFFICGEN_H
#define EVENTNET_ENGINE_TRAFFICGEN_H

#include "netkat/Packet.h"
#include "support/Rng.h"
#include "topo/Topology.h"

#include <vector>

namespace eventnet {
namespace engine {

/// One host emission.
struct Injection {
  HostId From = 0;
  netkat::Packet Header;
};

/// Emissions injected concurrently; the engine quiesces between phases.
struct Phase {
  std::vector<Injection> Injections;
};

struct Workload {
  std::vector<Phase> Phases;

  size_t totalInjections() const {
    size_t N = 0;
    for (const Phase &P : Phases)
      N += P.Injections.size();
    return N;
  }

  /// Appends \p Other's phases.
  Workload &operator+=(const Workload &Other) {
    Phases.insert(Phases.end(), Other.Phases.begin(), Other.Phases.end());
    return *this;
  }
};

/// Seeded generator over a topology's hosts.
class TrafficGen {
public:
  TrafficGen(const topo::Topology &Topo, uint64_t Seed);

  /// \p Phases phases of \p PerPhase echo requests between distinct
  /// random host pairs (destinations reply in-engine).
  Workload pings(unsigned Phases, unsigned PerPhase);

  /// Probe packets (probe=1, no reply) from random hosts to \p To — the
  /// ring program's event triggers.
  Workload probes(unsigned Phases, unsigned PerPhase, HostId To);

  /// An event-storm workload: \p Phases phases, each of \p PerPhase
  /// distinct-flow data packets between random pairs (fresh seq per
  /// emission — maximal flow diversity, no replies) interleaved with
  /// \p ChurnRate probe packets whose destinations rotate over every
  /// host, so every probe-triggered app event (ring flips, knock
  /// sequences) keeps firing while the storm is in full flight.
  /// ChurnRate 0 = pure storm, no triggers.
  Workload churn(unsigned Phases, unsigned PerPhase, unsigned ChurnRate);

  /// \p Packets bulk data packets From -> To, \p PerPhase at a time.
  Workload bulk(HostId From, HostId To, uint64_t Packets, unsigned PerPhase);

  /// Bulk traffic between \p Pairs random distinct host pairs at once.
  Workload randomBulk(unsigned Pairs, uint64_t PacketsPerPair,
                      unsigned PerPhase);

  /// A single ping From -> To as its own phase (scripted scenarios).
  Workload ping(HostId From, HostId To);

  /// A single probe From -> To as its own phase.
  Workload probe(HostId From, HostId To);

private:
  HostId randomHost();
  std::pair<HostId, HostId> randomPair();

  std::vector<HostId> Hosts;
  Rng R;
  uint64_t NextSeq = 1;
};

} // namespace engine
} // namespace eventnet

#endif // EVENTNET_ENGINE_TRAFFICGEN_H
