//===- engine/Compiled.cpp - Dense topology + lowered configurations ------===//

#include "engine/Compiled.h"

#include <algorithm>

using namespace eventnet;
using namespace eventnet::engine;

SwitchIndex::SwitchIndex(const topo::Topology &Topo) {
  for (SwitchId Sw : Topo.switches()) {
    Dense.emplace(Sw, static_cast<uint32_t>(Ids.size()));
    Ids.push_back(Sw);
  }
  Ports.resize(Ids.size());

  for (const auto &[Src, Dst] : Topo.links()) {
    Egress E;
    E.IsHost = false;
    E.Dst = Dst;
    E.DstDense = Dense.at(Dst.Sw);
    Ports[Dense.at(Src.Sw)].push_back({Src.Pt, E});
  }
  for (const auto &[Host, At] : Topo.hosts()) {
    Egress E;
    E.IsHost = true;
    E.Host = Host;
    Ports[Dense.at(At.Sw)].push_back({At.Pt, E});
  }
  for (auto &P : Ports)
    std::sort(P.begin(), P.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });

  // Direct port tables over Ports' now-stable storage.
  Direct.resize(Ports.size());
  for (size_t D = 0; D != Ports.size(); ++D) {
    size_t MaxPt = 0;
    for (const auto &[Pt, E] : Ports[D])
      if (static_cast<size_t>(Pt) < DirectCap && static_cast<size_t>(Pt) > MaxPt)
        MaxPt = static_cast<size_t>(Pt);
    if (!Ports[D].empty())
      Direct[D].assign(MaxPt + 1, nullptr);
    for (const auto &[Pt, E] : Ports[D])
      if (static_cast<size_t>(Pt) < Direct[D].size())
        Direct[D][static_cast<size_t>(Pt)] = &E;
  }
}

const Egress *SwitchIndex::egressAt(uint32_t D, PortId Pt) const {
  const auto &Dir = Direct[D];
  if (static_cast<size_t>(Pt) < Dir.size())
    return Dir[static_cast<size_t>(Pt)];
  if (static_cast<size_t>(Pt) < DirectCap)
    return nullptr; // within table range but beyond the largest port
  const auto &P = Ports[D];
  auto It = std::lower_bound(
      P.begin(), P.end(), Pt,
      [](const std::pair<PortId, Egress> &A, PortId B) { return A.first < B; });
  if (It == P.end() || It->first != Pt)
    return nullptr;
  return &It->second;
}

CompiledNes::CompiledNes(const nes::Nes &N, const SwitchIndex &Idx)
    : NumSwitches(Idx.numSwitches()) {
  Pipes.reserve(static_cast<size_t>(N.numSets()) * NumSwitches);
  for (nes::SetId S = 0; S != N.numSets(); ++S) {
    const topo::Configuration &C = N.configOf(S);
    for (uint32_t D = 0; D != NumSwitches; ++D)
      Pipes.emplace_back(C.tableFor(Idx.idOf(D)));
  }

  Events.resize(NumSwitches);
  for (nes::EventId E = 0; E != N.numEvents(); ++E)
    Events[Idx.denseOf(N.event(E).Loc.Sw)].push_back(E);
}
