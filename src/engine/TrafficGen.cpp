//===- engine/TrafficGen.cpp - Workload driver ----------------------------===//

#include "engine/TrafficGen.h"

#include "sim/Wire.h"

#include <cassert>

using namespace eventnet;
using namespace eventnet::engine;
using eventnet::netkat::Packet;

TrafficGen::TrafficGen(const topo::Topology &Topo, uint64_t Seed) : R(Seed) {
  for (const auto &[Host, At] : Topo.hosts()) {
    (void)At;
    Hosts.push_back(Host);
  }
  assert(!Hosts.empty() && "topology has no hosts");
}

HostId TrafficGen::randomHost() {
  return Hosts[R.below(Hosts.size())];
}

std::pair<HostId, HostId> TrafficGen::randomPair() {
  HostId From = randomHost();
  if (Hosts.size() == 1)
    return {From, From};
  HostId To = From;
  while (To == From)
    To = randomHost();
  return {From, To};
}

Workload TrafficGen::pings(unsigned Phases, unsigned PerPhase) {
  Workload W;
  for (unsigned P = 0; P != Phases; ++P) {
    Phase Ph;
    for (unsigned I = 0; I != PerPhase; ++I) {
      auto [From, To] = randomPair();
      Ph.Injections.push_back(
          {From, sim::makeWireHeader(From, To, sim::KindRequest, NextSeq++)});
    }
    W.Phases.push_back(std::move(Ph));
  }
  return W;
}

Workload TrafficGen::probes(unsigned Phases, unsigned PerPhase, HostId To) {
  Workload W;
  for (unsigned P = 0; P != Phases; ++P) {
    Phase Ph;
    for (unsigned I = 0; I != PerPhase; ++I) {
      HostId From = randomHost();
      Packet H = sim::makeWireHeader(From, To, sim::KindProbe, NextSeq++);
      H.set(sim::probeField(), 1);
      Ph.Injections.push_back({From, std::move(H)});
    }
    W.Phases.push_back(std::move(Ph));
  }
  return W;
}

Workload TrafficGen::churn(unsigned Phases, unsigned PerPhase,
                           unsigned ChurnRate) {
  Workload W;
  size_t NextProbeDst = 0;
  for (unsigned P = 0; P != Phases; ++P) {
    Phase Ph;
    Ph.Injections.reserve(PerPhase + ChurnRate);
    for (unsigned I = 0; I != PerPhase; ++I) {
      auto [From, To] = randomPair();
      Ph.Injections.push_back(
          {From, sim::makeWireHeader(From, To, sim::KindData, NextSeq++)});
    }
    for (unsigned I = 0; I != ChurnRate; ++I) {
      // Rotate probe destinations over every host so location-guarded
      // events fire wherever they live, not just at one lucky switch.
      HostId To = Hosts[NextProbeDst++ % Hosts.size()];
      HostId From = randomHost();
      Packet H = sim::makeWireHeader(From, To, sim::KindProbe, NextSeq++);
      H.set(sim::probeField(), 1);
      // Scatter the triggers through the storm instead of appending
      // them after it, so transitions race sustained traffic.
      size_t At = Ph.Injections.empty()
                      ? 0
                      : R.below(Ph.Injections.size() + 1);
      Ph.Injections.insert(Ph.Injections.begin() + At, {From, std::move(H)});
    }
    W.Phases.push_back(std::move(Ph));
  }
  return W;
}

Workload TrafficGen::bulk(HostId From, HostId To, uint64_t Packets,
                          unsigned PerPhase) {
  assert(PerPhase > 0 && "empty bulk phase");
  Workload W;
  while (Packets > 0) {
    Phase Ph;
    uint64_t This = Packets < PerPhase ? Packets : PerPhase;
    for (uint64_t I = 0; I != This; ++I)
      Ph.Injections.push_back(
          {From, sim::makeWireHeader(From, To, sim::KindData, NextSeq++)});
    Packets -= This;
    W.Phases.push_back(std::move(Ph));
  }
  return W;
}

Workload TrafficGen::randomBulk(unsigned Pairs, uint64_t PacketsPerPair,
                                unsigned PerPhase) {
  assert(PerPhase > 0 && "empty bulk phase");
  std::vector<std::pair<HostId, HostId>> Flows;
  for (unsigned I = 0; I != Pairs; ++I)
    Flows.push_back(randomPair());
  Workload W;
  uint64_t Remaining = PacketsPerPair;
  while (Remaining > 0) {
    Phase Ph;
    uint64_t This = Remaining < PerPhase ? Remaining : PerPhase;
    for (uint64_t I = 0; I != This; ++I)
      for (auto [From, To] : Flows)
        Ph.Injections.push_back(
            {From, sim::makeWireHeader(From, To, sim::KindData, NextSeq++)});
    Remaining -= This;
    W.Phases.push_back(std::move(Ph));
  }
  return W;
}

Workload TrafficGen::ping(HostId From, HostId To) {
  Workload W;
  W.Phases.push_back(
      {{{From, sim::makeWireHeader(From, To, sim::KindRequest, NextSeq++)}}});
  return W;
}

Workload TrafficGen::probe(HostId From, HostId To) {
  Workload W;
  Packet H = sim::makeWireHeader(From, To, sim::KindProbe, NextSeq++);
  H.set(sim::probeField(), 1);
  W.Phases.push_back({{{From, std::move(H)}}});
  return W;
}
