//===- ets/Ets.h - Event-driven transition systems --------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Event-driven transition systems (Definition 7): a graph whose vertices
/// are labeled with network configurations and whose edges are labeled
/// with events. The builder explores the reachable state vectors of a
/// Stateful NetKAT program: each vertex is a state ~k with the compiled
/// configuration C(⟦p⟧~k), and the edges come from the Figure 6
/// extraction.
///
/// Per the paper's presentation (Section 3.1 "Loops in ETSs") only
/// loop-free ETSs are supported; the builder reports cycles as errors.
/// Repetition of the *same phenomenon* along a chain (the bandwidth cap's
/// repeated packet arrivals) is fine — those become renamed events during
/// NES conversion, not loops.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_ETS_ETS_H
#define EVENTNET_ETS_ETS_H

#include "fdd/Fdd.h"
#include "stateful/Ast.h"
#include "stateful/Extract.h"
#include "topo/Configuration.h"
#include "topo/Topology.h"

#include <string>
#include <vector>

namespace eventnet {
namespace ets {

/// A vertex: a reachable state vector and its compiled configuration.
struct Vertex {
  stateful::StateVec K;
  /// ⟦p⟧~k, the per-state NetKAT projection (kept for debugging and for
  /// re-compilation in optimization passes).
  netkat::PolicyRef Projected;
  /// C(⟦p⟧~k): per-switch flow tables.
  topo::Configuration Config;
};

/// An edge: in vertex From, event (Guard, Loc) moves the system to To.
struct Edge {
  unsigned From = 0;
  unsigned To = 0;
  stateful::LitConj Guard;
  Location Loc;
};

/// A built, validated-loop-free ETS.
class Ets {
public:
  const std::vector<Vertex> &vertices() const { return Verts; }
  const std::vector<Edge> &edges() const { return EdgeList; }
  unsigned initial() const { return 0; }

  /// Outgoing edges of a vertex.
  std::vector<const Edge *> edgesFrom(unsigned V) const;

  std::string str() const;

  std::vector<Vertex> Verts;
  std::vector<Edge> EdgeList;
};

/// Result of building an ETS from a program.
struct BuildResult {
  bool Ok = false;
  std::string Error;
  Ets T;
};

/// Builds the ETS of \p Program starting from state \p K0 (zero-extended
/// to the program's state size), compiling each reachable state's
/// configuration against \p Topo. Fails on: link-cut errors, program
/// links absent from the topology, or cycles in the transition graph.
BuildResult buildEts(const stateful::SPolRef &Program,
                     const topo::Topology &Topo,
                     stateful::StateVec K0 = {});

} // namespace ets
} // namespace eventnet

#endif // EVENTNET_ETS_ETS_H
