//===- ets/Ets.cpp - Event-driven transition systems ----------------------===//

#include "ets/Ets.h"

#include "netkat/PathSplit.h"
#include "stateful/Project.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <set>
#include <sstream>

using namespace eventnet;
using namespace eventnet::ets;
using eventnet::stateful::StateVec;

std::vector<const Edge *> Ets::edgesFrom(unsigned V) const {
  std::vector<const Edge *> Out;
  for (const Edge &E : EdgeList)
    if (E.From == V)
      Out.push_back(&E);
  return Out;
}

std::string Ets::str() const {
  std::ostringstream OS;
  for (unsigned I = 0; I != Verts.size(); ++I)
    OS << 'v' << I << " = " << stateful::stateVecStr(Verts[I].K)
       << (I == initial() ? " (initial)" : "") << '\n';
  for (const Edge &E : EdgeList)
    OS << 'v' << E.From << " --(" << E.Guard.str() << ", " << E.Loc.Sw << ':'
       << E.Loc.Pt << ")--> v" << E.To << '\n';
  return OS.str();
}

namespace {

/// Returns true if the directed graph on \p NumVerts vertices with edges
/// \p Edges contains a cycle.
bool hasCycle(unsigned NumVerts, const std::vector<Edge> &Edges) {
  // Kahn's algorithm: a cycle exists iff not all vertices drain.
  std::vector<unsigned> InDeg(NumVerts, 0);
  for (const Edge &E : Edges)
    ++InDeg[E.To];
  std::deque<unsigned> Queue;
  for (unsigned V = 0; V != NumVerts; ++V)
    if (InDeg[V] == 0)
      Queue.push_back(V);
  unsigned Drained = 0;
  while (!Queue.empty()) {
    unsigned V = Queue.front();
    Queue.pop_front();
    ++Drained;
    for (const Edge &E : Edges)
      if (E.From == V && --InDeg[E.To] == 0)
        Queue.push_back(E.To);
  }
  return Drained != NumVerts;
}

} // namespace

BuildResult ets::buildEts(const stateful::SPolRef &Program,
                          const topo::Topology &Topo, StateVec K0) {
  BuildResult Res;
  unsigned Size = stateful::stateSize(Program);
  K0.resize(Size, 0);

  // Shared FDD manager: hash consing makes the per-state configurations
  // share structure, exactly the commonality the Section 5.3 optimization
  // later exploits.
  fdd::FddManager Fdd;

  std::map<StateVec, unsigned> Index;
  std::deque<StateVec> Work{K0};
  Index[K0] = 0;
  std::set<std::tuple<unsigned, std::string, unsigned>> SeenEdges;

  while (!Work.empty()) {
    StateVec K = Work.front();
    Work.pop_front();
    unsigned VIdx = Index[K];

    // Compile the state's configuration.
    netkat::PolicyRef Proj = stateful::project(Program, K);
    netkat::PathSplitResult Split = netkat::splitAtLinks(Proj);
    if (!Split.Ok) {
      Res.Error = "state " + stateful::stateVecStr(K) + ": " + Split.Error;
      return Res;
    }
    for (const auto &[Src, Dst] : Split.Links) {
      auto To = Topo.linkFrom(Src);
      if (!To || !(*To == Dst)) {
        std::ostringstream OS;
        OS << "program link (" << Src.Sw << ':' << Src.Pt << ")->(" << Dst.Sw
           << ':' << Dst.Pt << ") does not exist in the topology";
        Res.Error = OS.str();
        return Res;
      }
    }
    fdd::NodeId Local = Fdd.compile(Split.Local);
    topo::Configuration Config;
    for (SwitchId Sw : Topo.switches())
      Config.setTable(Sw, Fdd.toSwitchTable(Local, Sw));

    if (Res.T.Verts.size() <= VIdx)
      Res.T.Verts.resize(VIdx + 1);
    Res.T.Verts[VIdx] = Vertex{K, Proj, std::move(Config)};

    // Explore event-edges.
    stateful::ExtractResult Ext = stateful::extractEdges(Program, K);
    for (const stateful::EventEdge &E : Ext.Edges) {
      assert(E.From == K && "extraction produced a foreign edge");
      auto It = Index.find(E.To);
      if (It == Index.end()) {
        unsigned NewIdx = static_cast<unsigned>(Index.size());
        Index[E.To] = NewIdx;
        It = Index.find(E.To);
        Work.push_back(E.To);
      }
      // Dedup structurally identical edges.
      std::ostringstream GuardLoc;
      GuardLoc << E.Guard.str() << '@' << E.Loc.Sw << ':' << E.Loc.Pt;
      if (!SeenEdges.insert({VIdx, GuardLoc.str(), It->second}).second)
        continue;
      Edge Out;
      Out.From = VIdx;
      Out.To = It->second;
      Out.Guard = E.Guard;
      Out.Loc = E.Loc;
      Res.T.EdgeList.push_back(std::move(Out));
    }
  }

  if (hasCycle(static_cast<unsigned>(Res.T.Verts.size()), Res.T.EdgeList)) {
    Res.Error = "the program's transition system has a loop; only loop-free "
                "ETSs are supported (paper Section 3.1)";
    return Res;
  }

  Res.Ok = true;
  return Res;
}
