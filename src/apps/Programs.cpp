//===- apps/Programs.cpp - The paper's applications ------------------------===//

#include "apps/Programs.h"

#include "sim/Wire.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <sstream>

using namespace eventnet;
using namespace eventnet::apps;
using namespace eventnet::stateful;

// Delegate to the shared wire format so the engine, the simulator, and
// the programs agree on field identity by construction, not by literal.
FieldId apps::ipDstField() { return sim::ipDstField(); }

FieldId apps::probeField() { return sim::probeField(); }

std::string apps::firewallSource() {
  // Figure 9(a).
  return R"(
let H1 = 1;
let H4 = 4;

// Outgoing H1 -> H4 traffic, always allowed; the first packet seen at s4
// triggers the state change.
pt=2 and ip_dst=H4; pt<-1;
  ( state=[0]; (1:1)->(4:1)<state<-[1]>
  + state!=[0]; (1:1)->(4:1) );
pt<-2

// Incoming H4 -> H1 traffic, only after the outside world was contacted.
+ pt=2 and ip_dst=H1; state=[1]; pt<-1; (4:1)->(1:1); pt<-2
)";
}

std::string apps::learningSwitchSource() {
  // Figure 9(b).
  return R"(
let H1 = 1;
let H4 = 4;

// Traffic to H1 from H4's side: always to H1; additionally flooded to H2
// until H1's address is learned.
pt=2 and ip_dst=H1;
  ( pt<-1; (4:1)->(1:1)
  + state=[0]; pt<-3; (4:3)->(2:1) );
pt<-2

// H1's traffic to H4; seeing it at s4 learns H1's address.
+ pt=2 and ip_dst=H4; pt<-1; (1:1)->(4:1)<state<-[1]>; pt<-2

// H2's traffic heads back to H4.
+ pt=2; pt<-1; (2:1)->(4:3); pt<-2
)";
}

std::string apps::authenticationSource() {
  // Figure 9(c).
  return R"(
let H1 = 1;
let H2 = 2;
let H3 = 3;

// The untrusted host H4 must knock on H1 then H2, in that order, before
// H4 -> H3 traffic is enabled.
state=[0] and pt=2 and ip_dst=H1; pt<-1; (4:1)->(1:1)<state<-[1]>; pt<-2
+ state=[1] and pt=2 and ip_dst=H2; pt<-3; (4:3)->(2:1)<state<-[2]>; pt<-2
+ state=[2] and pt=2 and ip_dst=H3; pt<-4; (4:4)->(3:1); pt<-2

// Replies from the internal hosts flow back to H4.
+ pt=2; pt<-1; ((1:1)->(4:1) + (2:1)->(4:3) + (3:1)->(4:4)); pt<-2
)";
}

std::string apps::bandwidthCapSource(unsigned N) {
  // Figure 9(d), parameterized by the cap.
  std::ostringstream OS;
  OS << "let H1 = 1;\nlet H4 = 4;\n\n";
  OS << "pt=2 and ip_dst=H4;\npt<-1; (\n";
  for (unsigned I = 0; I <= N; ++I)
    OS << (I ? "  + " : "    ") << "state=[" << I << "]; (1:1)->(4:1)<state<-["
       << (I + 1) << "]>\n";
  OS << "  + state=[" << (N + 1) << "]; (1:1)->(4:1)\n";
  OS << "); pt<-2\n";
  OS << "+ pt=2 and ip_dst=H1; state!=[" << (N + 1)
     << "]; pt<-1; (4:1)->(1:1); pt<-2\n";
  return OS.str();
}

std::string apps::idsSource() {
  // Figure 9(e).
  return R"(
let H1 = 1;
let H2 = 2;
let H3 = 3;

// All traffic flows, but contacting H1 and then H2 (a scan signature)
// cuts off access to H3.
pt=2 and ip_dst=H1; pt<-1;
  ( state=[0]; (4:1)->(1:1)<state<-[1]>
  + state!=[0]; (4:1)->(1:1) );
pt<-2
+ pt=2 and ip_dst=H2; pt<-3;
  ( state=[1]; (4:3)->(2:1)<state<-[2]>
  + state!=[1]; (4:3)->(2:1) );
pt<-2
+ pt=2 and ip_dst=H3; pt<-4; state!=[2]; (4:4)->(3:1); pt<-2

// Replies from the internal hosts flow back to H4.
+ pt=2; pt<-1; ((1:1)->(4:1) + (2:1)->(4:3) + (3:1)->(4:4)); pt<-2
)";
}

//===----------------------------------------------------------------------===//
// Ring program (AST-built; parameterized)
//===----------------------------------------------------------------------===//

namespace {

/// pt<-OutPort; (link) for each hop in \p Hops, then egress to port 3.
SPolRef pathPolicy(const std::vector<std::pair<Location, Location>> &Hops) {
  std::vector<SPolRef> Parts;
  for (const auto &[Src, Dst] : Hops) {
    Parts.push_back(sMod(FieldPt, static_cast<Value>(Src.Pt)));
    Parts.push_back(sLink(Src, Dst));
  }
  Parts.push_back(sMod(FieldPt, 3));
  return sSeqAll(Parts);
}

/// Clockwise hop sequence a -> a+1 -> ... -> b (mod N).
std::vector<std::pair<Location, Location>> cwHops(unsigned A, unsigned B,
                                                  unsigned N) {
  std::vector<std::pair<Location, Location>> Out;
  for (unsigned I = A; I != B; I = (I % N) + 1) {
    unsigned Next = (I % N) + 1;
    Out.push_back({Location{I, 1}, Location{Next, 2}});
  }
  return Out;
}

/// Counterclockwise hop sequence a -> a-1 -> ... -> b (mod N).
std::vector<std::pair<Location, Location>> ccwHops(unsigned A, unsigned B,
                                                   unsigned N) {
  std::vector<std::pair<Location, Location>> Out;
  for (unsigned I = A; I != B; I = (I == 1 ? N : I - 1)) {
    unsigned Prev = (I == 1 ? N : I - 1);
    Out.push_back({Location{I, 2}, Location{Prev, 1}});
  }
  return Out;
}

SPredRef ingressTo(Value Dst) {
  return sAnd(sFieldTest(FieldPt, true, 3),
              sFieldTest(apps::ipDstField(), true, Dst));
}

} // namespace

SPolRef apps::ringProgram(unsigned NumSwitches, unsigned Diameter) {
  assert(NumSwitches >= 3 && Diameter >= 1 && Diameter < NumSwitches);
  unsigned H2Sw = 1 + Diameter;

  // State 0, H1 -> H2 clockwise, regular traffic.
  auto CW = cwHops(1, H2Sw, NumSwitches);
  SPolRef Fwd0 =
      sSeqAll({sFilter(sAnd(ingressTo(2),
                            sFieldTest(probeField(), false, 1))),
               sFilter(sStateTest(0, true, 0)), pathPolicy(CW)});

  // State 0, the probe packet: same path, but the final link flips the
  // state when the probe reaches H2's switch.
  std::vector<SPolRef> ProbeParts;
  ProbeParts.push_back(sFilter(
      sAnd(ingressTo(2), sFieldTest(probeField(), true, 1))));
  ProbeParts.push_back(sFilter(sStateTest(0, true, 0)));
  for (size_t I = 0; I != CW.size(); ++I) {
    ProbeParts.push_back(sMod(FieldPt, static_cast<Value>(CW[I].first.Pt)));
    if (I + 1 == CW.size())
      ProbeParts.push_back(
          sLinkAssign(CW[I].first, CW[I].second, /*Index=*/0, /*V=*/1));
    else
      ProbeParts.push_back(sLink(CW[I].first, CW[I].second));
  }
  ProbeParts.push_back(sMod(FieldPt, 3));
  SPolRef Probe0 = sSeqAll(ProbeParts);

  // State 0, H2 -> H1 continues clockwise around the far side of the
  // ring, so every switch carries traffic in state 0 (and can therefore
  // pick up event digests; cf. the Figure 16(b) discovery experiment).
  SPolRef Rev0 = sSeqAll({sFilter(ingressTo(1)),
                          sFilter(sStateTest(0, true, 0)),
                          pathPolicy(cwHops(H2Sw, 1, NumSwitches))});

  // State 1 reverses the circulation: H1 -> H2 counterclockwise through
  // N, H2 -> H1 counterclockwise through the near side.
  SPolRef Fwd1 = sSeqAll({sFilter(ingressTo(2)),
                          sFilter(sStateTest(0, true, 1)),
                          pathPolicy(ccwHops(1, H2Sw, NumSwitches))});
  SPolRef Rev1 = sSeqAll({sFilter(ingressTo(1)),
                          sFilter(sStateTest(0, true, 1)),
                          pathPolicy(ccwHops(H2Sw, 1, NumSwitches))});

  return sUnionAll({Fwd0, Probe0, Rev0, Fwd1, Rev1});
}

//===----------------------------------------------------------------------===//
// App bundles
//===----------------------------------------------------------------------===//

App apps::firewallApp() {
  return App{"stateful-firewall", firewallSource(), nullptr,
             topo::firewallTopology()};
}

App apps::learningSwitchApp() {
  return App{"learning-switch", learningSwitchSource(), nullptr,
             topo::starTopology()};
}

App apps::authenticationApp() {
  return App{"authentication", authenticationSource(), nullptr,
             topo::starTopology()};
}

App apps::bandwidthCapApp(unsigned N) {
  return App{"bandwidth-cap", bandwidthCapSource(N), nullptr,
             topo::firewallTopology()};
}

App apps::idsApp() {
  return App{"intrusion-detection", idsSource(), nullptr,
             topo::starTopology()};
}

App apps::ringApp(unsigned NumSwitches, unsigned Diameter) {
  return App{"ring-update", "", ringProgram(NumSwitches, Diameter),
             topo::ringTopology(NumSwitches, Diameter)};
}

std::vector<App> apps::caseStudyApps() {
  std::vector<App> Out;
  Out.push_back(firewallApp());
  Out.push_back(learningSwitchApp());
  Out.push_back(authenticationApp());
  Out.push_back(bandwidthCapApp());
  Out.push_back(idsApp());
  return Out;
}

nes::Nes apps::staticRoutingNes(const topo::Topology &Topo) {
  // Forwarding adjacency: switch -> (port, neighbor switch).
  std::map<SwitchId, std::vector<std::pair<PortId, SwitchId>>> Adj;
  for (const auto &[Src, Dst] : Topo.links())
    Adj[Src.Sw].push_back({Src.Pt, Dst.Sw});
  for (auto &[Sw, Nbrs] : Adj)
    std::sort(Nbrs.begin(), Nbrs.end());

  std::map<SwitchId, flowtable::Table> Tables;
  for (const auto &[Host, At] : Topo.hosts()) {
    // BFS from the host's switch; links are bidirectional in all builder
    // topologies, so forward distance doubles as reverse distance.
    std::map<SwitchId, int> Dist;
    Dist[At.Sw] = 0;
    std::deque<SwitchId> Work{At.Sw};
    while (!Work.empty()) {
      SwitchId Sw = Work.front();
      Work.pop_front();
      for (const auto &[Pt, Nbr] : Adj[Sw])
        if (!Dist.count(Nbr)) {
          Dist[Nbr] = Dist[Sw] + 1;
          Work.push_back(Nbr);
        }
    }
    for (SwitchId Sw : Topo.switches()) {
      auto It = Dist.find(Sw);
      if (It == Dist.end())
        continue; // unreachable: table-miss drop
      flowtable::Rule R;
      R.Priority = 1;
      R.Pattern.require(ipDstField(), static_cast<Value>(Host));
      PortId Out = At.Pt; // at the attachment switch: the host port
      if (It->second != 0) {
        for (const auto &[Pt, Nbr] : Adj[Sw])
          if (Dist.count(Nbr) && Dist[Nbr] == It->second - 1) {
            Out = Pt;
            break;
          }
      }
      R.Actions = {flowtable::normalizeActionSeq(
          {{FieldPt, static_cast<Value>(Out)}})};
      Tables[Sw].add(std::move(R));
    }
  }

  topo::Configuration C{std::move(Tables)};
  return nes::Nes({}, {DenseBitSet()}, {std::move(C)},
                  {stateful::StateVec{}});
}
