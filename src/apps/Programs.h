//===- apps/Programs.h - The paper's applications ---------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source text for the paper's case-study applications (Figure 9, in
/// this repository's ASCII concrete syntax) plus the synthetic ring
/// program of Section 5.2, and the matching topologies. The header field
/// "ip_dst" carries the destination host number, matching the ip_dst
/// tests of Figure 9; the ring's event-triggering packets additionally
/// carry "probe" = 1.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_APPS_PROGRAMS_H
#define EVENTNET_APPS_PROGRAMS_H

#include "nes/Nes.h"
#include "stateful/Ast.h"
#include "topo/Builders.h"

#include <string>

namespace eventnet {
namespace apps {

/// The ip_dst header field used by every example.
FieldId ipDstField();
/// The probe header field used by the ring program's event packets.
FieldId probeField();

/// Figure 9(a): stateful firewall on the Figure 1 topology. H1 can
/// always reach H4; H4 can reach H1 only after H1's traffic has been
/// seen at s4.
std::string firewallSource();

/// Figure 9(b): learning switch on the star. Traffic to H1 is flooded
/// (to H1 and H2) until H4's traffic has been observed, then unicast.
std::string learningSwitchSource();

/// Figure 9(c): authentication on the star. H4 must probe H1 then H2 (in
/// that order) before it may contact H3.
std::string authenticationSource();

/// Figure 9(d): bandwidth cap on the Figure 1 topology. Outgoing H1->H4
/// traffic is always allowed; after \p N outgoing packets the incoming
/// path is cut off.
std::string bandwidthCapSource(unsigned N = 10);

/// Figure 9(e): intrusion detection on the star. All traffic flows until
/// H4 contacts H1 and then H2 (a scan), after which H4->H3 is blocked.
std::string idsSource();

/// Section 5.2 ring program (built as an AST since it is parameterized):
/// H1->H2 traffic flows clockwise; a probe packet arriving at H2's
/// switch flips the configuration to counterclockwise. Replies H2->H1
/// retrace the respective path. \p NumSwitches and \p Diameter mirror
/// topo::ringTopology.
stateful::SPolRef ringProgram(unsigned NumSwitches, unsigned Diameter);

/// Convenience bundle: program source/AST plus matching topology.
struct App {
  std::string Name;
  std::string Source;               // empty for AST-built apps
  stateful::SPolRef Ast;            // null for source-built apps
  topo::Topology Topo;
};

App firewallApp();
App learningSwitchApp();
App authenticationApp();
App bandwidthCapApp(unsigned N = 10);
App idsApp();
App ringApp(unsigned NumSwitches, unsigned Diameter);

/// All five case-study apps (firewall, learning, auth, bwcap, ids).
std::vector<App> caseStudyApps();

/// A zero-event NES whose single configuration g(∅) shortest-path routes
/// on ip_dst to every host of \p Topo (lowest-port tie-break, BFS). The
/// engine's scale benchmarks use it on topologies — e.g. fat-trees —
/// that have no Figure 9 program; the consistency checker degenerates to
/// "every packet trace is a trace of g(∅)".
nes::Nes staticRoutingNes(const topo::Topology &Topo);

} // namespace apps
} // namespace eventnet

#endif // EVENTNET_APPS_PROGRAMS_H
