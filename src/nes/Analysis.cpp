//===- nes/Analysis.cpp - Reachability analysis over NESs -----------------===//

#include "nes/Analysis.h"

#include "netkat/Packet.h"

#include <deque>
#include <sstream>

using namespace eventnet;
using namespace eventnet::nes;
using eventnet::netkat::Packet;

namespace {

/// Enumerates header assignments from the template (cartesian product).
void enumerateHeaders(
    const std::map<FieldId, std::vector<Value>> &Template,
    std::map<FieldId, std::vector<Value>>::const_iterator It,
    Packet &Partial, std::vector<Packet> &Out) {
  if (It == Template.end()) {
    Out.push_back(Partial);
    return;
  }
  auto Next = std::next(It);
  for (Value V : It->second) {
    Partial.set(It->first, V);
    enumerateHeaders(Template, Next, Partial, Out);
  }
  Partial.erase(It->first);
}

/// BFS of the configuration relation from \p Start; returns every
/// located packet reached (bounded by the finite header/location space).
std::set<Packet> closure(const topo::Configuration &C,
                         const topo::Topology &Topo, const Packet &Start) {
  std::set<Packet> Seen{Start};
  std::deque<Packet> Work{Start};
  while (!Work.empty()) {
    Packet Cur = Work.front();
    Work.pop_front();
    for (const Packet &Next : C.step(Topo, Cur)) {
      if (!Seen.insert(Next).second)
        continue;
      // Host-facing egress points are sinks: the packet left the
      // network; stepping again would wrongly re-process it.
      if (Topo.isHostPort(Next.loc()) && !(Next == Start))
        continue;
      Work.push_back(Next);
    }
  }
  return Seen;
}

} // namespace

ReachabilityAnalysis::ReachabilityAnalysis(
    const Nes &N, const topo::Topology &Topo,
    const std::map<FieldId, std::vector<Value>> &HeaderTemplate)
    : N(N), Topo(Topo) {
  std::vector<Packet> Headers;
  Packet Partial;
  enumerateHeaders(HeaderTemplate, HeaderTemplate.begin(), Partial, Headers);

  Reach.resize(N.numSets());
  for (SetId S = 0; S != N.numSets(); ++S) {
    const topo::Configuration &C = N.configOf(S);
    for (const auto &[From, FromLoc] : Topo.hosts()) {
      for (const Packet &Hdr : Headers) {
        Packet Start = Hdr;
        Start.setLoc(FromLoc);
        for (const Packet &Lp : closure(C, Topo, Start)) {
          if (Lp == Start)
            continue;
          auto To = Topo.hostAt(Lp.loc());
          if (To)
            Reach[S].insert({From, *To});
        }
      }
    }
  }
}

bool ReachabilityAnalysis::canReach(SetId S, HostId From, HostId To) const {
  return Reach[S].count({From, To}) != 0;
}

bool ReachabilityAnalysis::alwaysReaches(HostId From, HostId To) const {
  for (SetId S = 0; S != N.numSets(); ++S)
    if (!canReach(S, From, To))
      return false;
  return true;
}

bool ReachabilityAnalysis::neverReaches(HostId From, HostId To) const {
  for (SetId S = 0; S != N.numSets(); ++S)
    if (canReach(S, From, To))
      return false;
  return true;
}

std::vector<SetId> ReachabilityAnalysis::reachableSets(HostId From,
                                                       HostId To) const {
  std::vector<SetId> Out;
  for (SetId S = 0; S != N.numSets(); ++S)
    if (canReach(S, From, To))
      Out.push_back(S);
  return Out;
}

std::string ReachabilityAnalysis::str() const {
  std::ostringstream OS;
  for (SetId S = 0; S != N.numSets(); ++S) {
    OS << 'E' << S << " (state "
       << stateful::stateVecStr(N.stateOf(S)) << "):";
    for (const auto &[From, To] : Reach[S])
      OS << " H" << From << "->H" << To;
    OS << '\n';
  }
  return OS.str();
}
