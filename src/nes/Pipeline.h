//===- nes/Pipeline.h - Source-to-NES compiler driver -----------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end compiler pipeline of Section 3/4: Stateful NetKAT
/// source -> AST -> ETS (per-state configurations via the Figure 5
/// projection and the FDD compiler) -> NES (with the family and locality
/// checks). This is the front half of the paper's toolchain; the back
/// half (installing the NES into switches) lives in runtime/.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_NES_PIPELINE_H
#define EVENTNET_NES_PIPELINE_H

#include "api/Status.h"
#include "ets/Ets.h"
#include "nes/FromEts.h"
#include "nes/Nes.h"
#include "stateful/Parser.h"
#include "topo/Topology.h"

#include <map>
#include <optional>
#include <string>

namespace eventnet {
namespace nes {

/// A fully-compiled program.
struct CompiledProgram {
  /// The parsed program.
  stateful::SPolRef Ast;
  /// let-bindings from the source (empty when compiled from an AST).
  std::map<std::string, Value> Bindings;
  /// The transition system (reachable states + configurations).
  ets::Ets Ets;
  /// The event structure driving the runtime (always set on success;
  /// optional only because Nes has no default constructor).
  std::optional<Nes> N;
  /// Wall-clock compile time in seconds (parse through NES checks).
  double CompileSeconds = 0;
};

/// Compiles Stateful NetKAT source against \p Topo. \p RequireLocal
/// controls whether a locality violation (Section 2's restriction) is a
/// hard error; the paper's compiler enforces it, so that is the default.
/// Failures carry api::Code::ParseError (bad source) or
/// api::Code::CompileError (ETS/NES construction, locality).
api::Result<CompiledProgram> compileSource(const std::string &Source,
                                           const topo::Topology &Topo,
                                           bool RequireLocal = true);

/// Same, starting from an already-built AST.
api::Result<CompiledProgram> compileAst(const stateful::SPolRef &Program,
                                        const topo::Topology &Topo,
                                        bool RequireLocal = true);

} // namespace nes
} // namespace eventnet

#endif // EVENTNET_NES_PIPELINE_H
