//===- nes/Nes.cpp - Network event structures ------------------------------===//

#include "nes/Nes.h"

#include <cassert>
#include <sstream>

using namespace eventnet;
using namespace eventnet::nes;

Nes::Nes(std::vector<netkat::Event> InEvents,
         std::vector<DenseBitSet> InFamily,
         std::vector<topo::Configuration> InConfigs,
         std::vector<stateful::StateVec> InStates)
    : Events(std::move(InEvents)), Family(std::move(InFamily)),
      Configs(std::move(InConfigs)), States(std::move(InStates)) {
  assert(Family.size() == Configs.size() && Family.size() == States.size() &&
         "family/config/state arity mismatch");
  [[maybe_unused]] bool FoundEmpty = false;
  for (SetId I = 0; I != Family.size(); ++I) {
    [[maybe_unused]] bool Inserted = Index.emplace(Family[I], I).second;
    assert(Inserted && "duplicate event-set in family");
    if (Family[I].empty()) {
      EmptyIdx = I;
      FoundEmpty = true;
    }
  }
  assert(FoundEmpty && "family must contain the empty event-set");
}

bool Nes::con(const DenseBitSet &X) const {
  for (const DenseBitSet &F : Family)
    if (X.isSubsetOf(F))
      return true;
  return false;
}

bool Nes::enables(const DenseBitSet &X, EventId E) const {
  if (!con(X))
    return false;
  for (const DenseBitSet &S : Family) {
    if (!S.test(E))
      continue;
    DenseBitSet Rest = S;
    Rest.reset(E);
    if (Rest.isSubsetOf(X))
      return true;
  }
  return false;
}

std::vector<EventId> Nes::enabledEvents(const DenseBitSet &X) const {
  std::vector<EventId> Out;
  for (EventId E = 0; E != numEvents(); ++E) {
    if (X.test(E))
      continue;
    DenseBitSet Ext = X;
    Ext.set(E);
    if (enables(X, E) && con(Ext))
      Out.push_back(E);
  }
  return Out;
}

std::optional<SetId> Nes::setIndex(const DenseBitSet &X) const {
  auto It = Index.find(X);
  if (It == Index.end())
    return std::nullopt;
  return It->second;
}

std::vector<std::vector<EventId>> Nes::allowedSequences() const {
  std::vector<std::vector<EventId>> Out;
  std::vector<EventId> Cur;

  // DFS over extensions; every prefix is recorded.
  struct Rec {
    const Nes &N;
    std::vector<std::vector<EventId>> &Out;

    void go(std::vector<EventId> &Cur, const DenseBitSet &X) {
      Out.push_back(Cur);
      assert(Out.size() < 100000 && "allowed-sequence explosion");
      for (EventId E : N.enabledEvents(X)) {
        DenseBitSet Ext = X;
        Ext.set(E);
        Cur.push_back(E);
        go(Cur, Ext);
        Cur.pop_back();
      }
    }
  };
  Rec R{*this, Out};
  R.go(Cur, DenseBitSet());
  return Out;
}

std::vector<DenseBitSet> Nes::minimallyInconsistentSets() const {
  std::vector<DenseBitSet> Out;

  // Enumerate consistent sets depth-first, in ascending event order;
  // each single-event extension that breaks consistency is a candidate
  // minimally-inconsistent set (its other subsets still need checking).
  struct Rec {
    const Nes &N;
    std::vector<DenseBitSet> &Out;

    bool isMinimal(const DenseBitSet &Y) {
      bool Minimal = true;
      Y.forEach([&](unsigned E) {
        DenseBitSet Sub = Y;
        Sub.reset(E);
        if (!N.con(Sub))
          Minimal = false;
      });
      return Minimal;
    }

    void go(const DenseBitSet &Cur, EventId From) {
      // Prune: if the current set plus every event still available is
      // consistent, no inconsistent set exists in this subtree. Without
      // this the walk visits every subset of all-compatible structures
      // (e.g. the bandwidth cap's chain) — exponential in the number of
      // events.
      DenseBitSet Full = Cur;
      for (EventId E = From; E != N.numEvents(); ++E)
        Full.set(E);
      if (N.con(Full))
        return;
      for (EventId E = From; E != N.numEvents(); ++E) {
        DenseBitSet Ext = Cur;
        Ext.set(E);
        if (N.con(Ext)) {
          go(Ext, E + 1);
          continue;
        }
        if (isMinimal(Ext)) {
          bool Dup = false;
          for (const DenseBitSet &Seen : Out)
            if (Seen == Ext)
              Dup = true;
          if (!Dup)
            Out.push_back(Ext);
        }
      }
    }
  };
  Rec R{*this, Out};
  R.go(DenseBitSet(), 0);
  return Out;
}

bool Nes::isLocallyDetermined() const {
  for (const DenseBitSet &Y : minimallyInconsistentSets()) {
    std::optional<SwitchId> Sw;
    bool Local = true;
    Y.forEach([&](unsigned E) {
      SwitchId S = Events[E].Loc.Sw;
      if (!Sw)
        Sw = S;
      else if (*Sw != S)
        Local = false;
    });
    if (!Local)
      return false;
  }
  return true;
}

std::string Nes::str() const {
  std::ostringstream OS;
  OS << "events:\n";
  for (EventId E = 0; E != numEvents(); ++E)
    OS << "  e" << E << " = " << Events[E].str() << '\n';
  OS << "event-sets:\n";
  for (SetId S = 0; S != numSets(); ++S) {
    OS << "  E" << S << " = {";
    bool First = true;
    Family[S].forEach([&](unsigned E) {
      if (!First)
        OS << ", ";
      First = false;
      OS << 'e' << E;
    });
    OS << "}  g -> state " << stateful::stateVecStr(States[S]) << '\n';
  }
  return OS.str();
}
