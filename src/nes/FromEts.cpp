//===- nes/FromEts.cpp - ETS to NES conversion -----------------------------===//

#include "nes/FromEts.h"

#include <cassert>
#include <map>
#include <sstream>

using namespace eventnet;
using namespace eventnet::nes;
using eventnet::ets::Edge;
using eventnet::ets::Ets;

namespace {

/// Identity of a (possibly renamed) event: the phenomenon plus the
/// occurrence index along a path.
struct EventKey {
  std::string Guard;
  Location Loc;
  unsigned Occurrence;

  friend bool operator<(const EventKey &A, const EventKey &B) {
    if (A.Guard != B.Guard)
      return A.Guard < B.Guard;
    if (!(A.Loc == B.Loc))
      return A.Loc < B.Loc;
    return A.Occurrence < B.Occurrence;
  }
};

struct Builder {
  const Ets &T;
  std::map<EventKey, EventId> EventIds;
  std::vector<netkat::Event> Events;
  /// Event-set -> end vertex of the first path that produced it.
  std::map<DenseBitSet, unsigned> SetToVertex;
  std::string Error;

  EventId eventFor(const Edge &E, unsigned Occurrence) {
    EventKey Key{E.Guard.str(), E.Loc, Occurrence};
    auto It = EventIds.find(Key);
    if (It != EventIds.end())
      return It->second;
    EventId Id = static_cast<EventId>(Events.size());
    netkat::Event Ev;
    Ev.Guard = E.Guard.toPred();
    Ev.Loc = E.Loc;
    Ev.Eid = Occurrence;
    Events.push_back(std::move(Ev));
    EventIds.emplace(Key, Id);
    return Id;
  }

  /// DFS over paths. \p Occurrences counts (guard, loc) phenomena already
  /// seen on the current path for renaming.
  bool walk(unsigned V, DenseBitSet Set,
            std::map<std::pair<std::string, std::string>, unsigned>
                &Occurrences) {
    auto [It, Inserted] = SetToVertex.emplace(Set, V);
    if (!Inserted && It->second != V) {
      // Two paths, same event-set, different vertices: legal only if the
      // configurations coincide (condition 1).
      if (!(T.vertices()[It->second].Config == T.vertices()[V].Config)) {
        std::ostringstream OS;
        OS << "ETS is not convertible: the event-set reached at states "
           << stateful::stateVecStr(T.vertices()[It->second].K) << " and "
           << stateful::stateVecStr(T.vertices()[V].K)
           << " maps to two different configurations";
        Error = OS.str();
        return false;
      }
    }

    for (const Edge *E : T.edgesFrom(V)) {
      std::ostringstream LocOS;
      LocOS << E->Loc.Sw << ':' << E->Loc.Pt;
      auto Phenomenon = std::make_pair(E->Guard.str(), LocOS.str());
      unsigned Occ = Occurrences[Phenomenon];
      EventId Id = eventFor(*E, Occ);

      DenseBitSet Ext = Set;
      Ext.set(Id);
      ++Occurrences[Phenomenon];
      bool Ok = walk(E->To, Ext, Occurrences);
      --Occurrences[Phenomenon];
      if (!Ok)
        return false;
    }
    return true;
  }
};

} // namespace

ConvertResult nes::fromEts(const Ets &T) {
  ConvertResult Res;
  if (T.vertices().empty()) {
    Res.Error = "empty ETS";
    return Res;
  }

  Builder B{T, {}, {}, {}, {}};
  std::map<std::pair<std::string, std::string>, unsigned> Occurrences;
  if (!B.walk(T.initial(), DenseBitSet(), Occurrences)) {
    Res.Error = B.Error;
    return Res;
  }

  // Condition 2: finite-completeness via pairwise unions (pairwise
  // closure implies the general condition by induction on set count).
  std::vector<DenseBitSet> Family;
  for (const auto &[Set, V] : B.SetToVertex)
    Family.push_back(Set);
  for (size_t I = 0; I != Family.size(); ++I)
    for (size_t J = I + 1; J != Family.size(); ++J) {
      DenseBitSet U = Family[I] | Family[J];
      bool Bounded = false;
      for (const DenseBitSet &Bound : Family)
        if (U.isSubsetOf(Bound)) {
          Bounded = true;
          break;
        }
      if (!Bounded)
        continue;
      if (!B.SetToVertex.count(U)) {
        Res.Error =
            "ETS is not convertible: the family of event-sets is not "
            "finite-complete (two compatible event-sets whose union is "
            "not an event-set; cf. Figure 3(c))";
        return Res;
      }
    }

  std::vector<topo::Configuration> Configs;
  std::vector<stateful::StateVec> States;
  for (const DenseBitSet &Set : Family) {
    unsigned V = B.SetToVertex[Set];
    Configs.push_back(T.vertices()[V].Config);
    States.push_back(T.vertices()[V].K);
  }

  Res.N.emplace(std::move(B.Events), std::move(Family), std::move(Configs),
                std::move(States));
  Res.Ok = true;
  return Res;
}
