//===- nes/Pipeline.cpp - Source-to-NES compiler driver -------------------===//

#include "nes/Pipeline.h"

#include <chrono>

using namespace eventnet;
using namespace eventnet::nes;

api::Result<CompiledProgram> nes::compileAst(const stateful::SPolRef &Program,
                                             const topo::Topology &Topo,
                                             bool RequireLocal) {
  CompiledProgram Out;
  Out.Ast = Program;
  auto Start = std::chrono::steady_clock::now();

  ets::BuildResult Built = ets::buildEts(Program, Topo);
  if (!Built.Ok)
    return api::Status::error(api::Code::CompileError, Built.Error);
  Out.Ets = std::move(Built.T);

  ConvertResult Conv = fromEts(Out.Ets);
  if (!Conv.Ok)
    return api::Status::error(api::Code::CompileError, Conv.Error);
  if (RequireLocal && !Conv.N->isLocallyDetermined())
    return api::Status::error(
        api::Code::CompileError,
        "program is not locally determined: some minimally-inconsistent "
        "set of events spans multiple switches (Section 2 locality "
        "restriction), so it cannot be implemented without synchronization");
  Out.N = std::move(Conv.N);

  auto End = std::chrono::steady_clock::now();
  Out.CompileSeconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(End - Start)
          .count();
  return Out;
}

api::Result<CompiledProgram> nes::compileSource(const std::string &Source,
                                                const topo::Topology &Topo,
                                                bool RequireLocal) {
  auto Start = std::chrono::steady_clock::now();
  api::Result<stateful::Parsed> Parsed = stateful::parseProgram(Source);
  if (!Parsed.ok())
    return Parsed.status();
  api::Result<CompiledProgram> Out =
      compileAst(Parsed->Program, Topo, RequireLocal);
  if (!Out.ok())
    return Out;
  Out->Bindings = std::move(Parsed->Bindings);
  auto End = std::chrono::steady_clock::now();
  Out->CompileSeconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(End - Start)
          .count();
  return Out;
}
