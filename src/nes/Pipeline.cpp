//===- nes/Pipeline.cpp - Source-to-NES compiler driver -------------------===//

#include "nes/Pipeline.h"

#include <chrono>

using namespace eventnet;
using namespace eventnet::nes;

CompiledProgram nes::compileAst(const stateful::SPolRef &Program,
                                const topo::Topology &Topo,
                                bool RequireLocal) {
  CompiledProgram Out;
  Out.Ast = Program;
  auto Start = std::chrono::steady_clock::now();

  ets::BuildResult Built = ets::buildEts(Program, Topo);
  if (!Built.Ok) {
    Out.Error = Built.Error;
    return Out;
  }
  Out.Ets = std::move(Built.T);

  ConvertResult Conv = fromEts(Out.Ets);
  if (!Conv.Ok) {
    Out.Error = Conv.Error;
    return Out;
  }
  if (RequireLocal && !Conv.N->isLocallyDetermined()) {
    Out.Error =
        "program is not locally determined: some minimally-inconsistent "
        "set of events spans multiple switches (Section 2 locality "
        "restriction), so it cannot be implemented without synchronization";
    return Out;
  }
  Out.N = std::move(Conv.N);

  auto End = std::chrono::steady_clock::now();
  Out.CompileSeconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(End - Start)
          .count();
  Out.Ok = true;
  return Out;
}

CompiledProgram nes::compileSource(const std::string &Source,
                                   const topo::Topology &Topo,
                                   bool RequireLocal) {
  auto Start = std::chrono::steady_clock::now();
  stateful::ParseResult Parsed = stateful::parseProgram(Source);
  if (!Parsed.Ok) {
    CompiledProgram Out;
    Out.Error = "parse error: " + Parsed.Error;
    return Out;
  }
  CompiledProgram Out = compileAst(Parsed.Program, Topo, RequireLocal);
  Out.Bindings = std::move(Parsed.Bindings);
  auto End = std::chrono::steady_clock::now();
  if (Out.Ok)
    Out.CompileSeconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(End - Start)
            .count();
  return Out;
}
