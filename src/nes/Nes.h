//===- nes/Nes.h - Network event structures ---------------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Event structures (Winskel) and their network extension (paper
/// Definitions 3-5). An event structure endows a finite set of events
/// with a consistency predicate `con` and an enabling relation `⊢`; an
/// NES additionally maps each *event-set* (a consistent, enabling-
/// reachable subset, Definition 4) to a network configuration via `g`.
///
/// This implementation represents the structure by its *family of
/// event-sets* F (Winskel's "family of configurations"), from which con
/// and ⊢ are derived exactly as Theorem 1.1.12 of Winskel's notes
/// prescribes:
///
///   con(X)  iff  X ⊆ F for some F in the family
///   X ⊢ e   iff  con(X) and some family member S with e ∈ S satisfies
///                S \ {e} ⊆ X
///
/// Events are packet-arrival events (ϕ, sw:pt) with a renaming index for
/// repeated occurrences along a chain (Section 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_NES_NES_H
#define EVENTNET_NES_NES_H

#include "netkat/Event.h"
#include "stateful/Ast.h"
#include "support/BitSet.h"
#include "topo/Configuration.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace eventnet {
namespace nes {

/// Identifies an event within an Nes (dense, 0-based).
using EventId = unsigned;
/// Identifies an event-set within an Nes (dense, 0-based; set 0 is ∅).
/// This is also the *tag* the runtime stamps onto packets (Section 4.1
/// encodes event-sets as flat integers).
using SetId = unsigned;

/// A network event structure.
class Nes {
public:
  /// Builds an NES from an explicit family. \p Family must contain the
  /// empty set; \p G maps each family index to its configuration and
  /// state vector. Used by the ETS conversion and by tests that construct
  /// structures directly.
  Nes(std::vector<netkat::Event> Events, std::vector<DenseBitSet> Family,
      std::vector<topo::Configuration> Configs,
      std::vector<stateful::StateVec> States);

  //===--------------------------------------------------------------------===//
  // Events
  //===--------------------------------------------------------------------===//

  const std::vector<netkat::Event> &events() const { return Events; }
  unsigned numEvents() const { return static_cast<unsigned>(Events.size()); }
  const netkat::Event &event(EventId E) const { return Events[E]; }

  //===--------------------------------------------------------------------===//
  // Family / con / enabling
  //===--------------------------------------------------------------------===//

  const std::vector<DenseBitSet> &family() const { return Family; }

  /// con(X): is X consistent?
  bool con(const DenseBitSet &X) const;

  /// X ⊢ e (Definition 3, derived per Winskel Thm 1.1.12).
  bool enables(const DenseBitSet &X, EventId E) const;

  /// The events not in X that are enabled by X and keep it consistent —
  /// exactly the candidate set E' of the Figure 7 SWITCH rule.
  std::vector<EventId> enabledEvents(const DenseBitSet &X) const;

  /// Index of event-set \p X in the family, if it is one.
  std::optional<SetId> setIndex(const DenseBitSet &X) const;

  SetId emptySet() const { return EmptyIdx; }
  const DenseBitSet &setBits(SetId S) const { return Family[S]; }
  unsigned numSets() const { return static_cast<unsigned>(Family.size()); }

  //===--------------------------------------------------------------------===//
  // g: event-sets to configurations
  //===--------------------------------------------------------------------===//

  const topo::Configuration &configOf(SetId S) const { return Configs[S]; }
  const stateful::StateVec &stateOf(SetId S) const { return States[S]; }

  //===--------------------------------------------------------------------===//
  // Sequences and locality
  //===--------------------------------------------------------------------===//

  /// All sequences e0 e1 ... allowed by the structure (every prefix
  /// consistent and enabled), including the empty sequence. Exponential
  /// in the worst case; NESs compiled from programs are tiny.
  std::vector<std::vector<EventId>> allowedSequences() const;

  /// All minimally-inconsistent sets (every proper subset consistent).
  std::vector<DenseBitSet> minimallyInconsistentSets() const;

  /// The locality restriction of Section 2: every minimally-inconsistent
  /// set's events occur at a single switch.
  bool isLocallyDetermined() const;

  std::string str() const;

private:
  std::vector<netkat::Event> Events;
  std::vector<DenseBitSet> Family;
  std::vector<topo::Configuration> Configs;
  std::vector<stateful::StateVec> States;
  std::map<DenseBitSet, SetId> Index;
  SetId EmptyIdx = 0;
};

} // namespace nes
} // namespace eventnet

#endif // EVENTNET_NES_NES_H
