//===- nes/Analysis.h - Reachability analysis over NESs ---------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static analysis over compiled NESs, in the spirit of the paper's
/// future-work item 3 ("formal reasoning and automated verification for
/// Stateful NetKAT"): per-event-set host-to-host reachability, and
/// invariants quantified over all event-sets ("H4 can never reach H1
/// before e occurs", "H1 can always reach H4"). Reachability is computed
/// by iterating the configuration relation C (tables + links) from each
/// host's ingress over the finite header space the program mentions.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_NES_ANALYSIS_H
#define EVENTNET_NES_ANALYSIS_H

#include "nes/Nes.h"
#include "topo/Topology.h"

#include <map>
#include <string>
#include <vector>

namespace eventnet {
namespace nes {

/// Host-to-host reachability analysis over every event-set of an NES.
class ReachabilityAnalysis {
public:
  /// Analyzes \p N on \p Topo. \p HeaderTemplate lists the header fields
  /// (beyond sw/pt) and candidate values to quantify packets over —
  /// typically {ip_dst -> {1..4}}. The analysis injects, for every
  /// ordered host pair (A, B), a packet with ip_dst = B (and every
  /// combination of the other template fields) at A's ingress and asks
  /// whether some complete trace of g(E) delivers it at B.
  ReachabilityAnalysis(
      const Nes &N, const topo::Topology &Topo,
      const std::map<FieldId, std::vector<Value>> &HeaderTemplate);

  /// Can \p From reach \p To under event-set \p S?
  bool canReach(SetId S, HostId From, HostId To) const;

  /// Does \p From reach \p To under *every* event-set?
  bool alwaysReaches(HostId From, HostId To) const;

  /// Does \p From reach \p To under *no* event-set?
  bool neverReaches(HostId From, HostId To) const;

  /// The event-sets (tags) under which \p From reaches \p To.
  std::vector<SetId> reachableSets(HostId From, HostId To) const;

  /// A matrix dump ("E0: H1->H4 H4->H1 ...") for documentation/tests.
  std::string str() const;

private:
  const Nes &N;
  const topo::Topology &Topo;
  /// Reach[S] holds the set of (From, To) pairs deliverable under S.
  std::vector<std::set<std::pair<HostId, HostId>>> Reach;
};

} // namespace nes
} // namespace eventnet

#endif // EVENTNET_NES_ANALYSIS_H
