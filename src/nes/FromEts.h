//===- nes/FromEts.h - ETS to NES conversion --------------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 3.1 conversion from an ETS to an NES. For each path from
/// the initial vertex, the set of traversed events (with the i-th
/// occurrence of the same (ϕ, sw:pt) phenomenon renamed to a fresh event,
/// as the paper's subscripted events do) is collected into the candidate
/// family F(T). The conversion validates the two conditions under which
/// F(T) is a legal family of configurations:
///
///  1. unique configuration: all paths reaching the same event-set end in
///     vertices carrying the same configuration;
///  2. finite-completeness: any union of family members that is bounded
///     by a family member is itself in the family (the Figure 3(c)
///     counterexample fails here).
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_NES_FROMETS_H
#define EVENTNET_NES_FROMETS_H

#include "ets/Ets.h"
#include "nes/Nes.h"

#include <optional>
#include <string>

namespace eventnet {
namespace nes {

/// Result of a conversion.
struct ConvertResult {
  bool Ok = false;
  std::string Error;
  std::optional<Nes> N;
};

/// Converts \p T, validating the family conditions. Does *not* enforce
/// the locally-determined restriction — callers decide whether to treat
/// a non-local NES as an error (the compiler pipeline does).
ConvertResult fromEts(const ets::Ets &T);

} // namespace nes
} // namespace eventnet

#endif // EVENTNET_NES_FROMETS_H
