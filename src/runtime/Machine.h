//===- runtime/Machine.h - The Figure 7 operational semantics ---*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An executable rendering of Figure 7's small-step operational
/// semantics. The global state (Q, R, S) consists of the controller
/// queue Q, the controller R, and the switches S, each a tuple
/// (n, qm_in, E, qm_out) of input/output port queues and the local
/// event-set register.
///
/// The machine is *nondeterministic*: at every point the set of
/// applicable rules (IN / SWITCH / LINK-or-OUT / CTRLRECV / CTRLSEND) is
/// enumerable, and the driver picks one — property tests drive it with a
/// seeded Rng to explore interleavings and replay the resulting network
/// traces through the Definition 6 checker (Theorem 1), and to check
/// Lemma 3's global-consistency invariant after every step.
///
/// One sharpening relative to the figure, documented in DESIGN.md: the
/// SWITCH rule's candidate set E' is constructed greedily in event-id
/// order so that E ∪ E' remains consistent even when one packet matches
/// several mutually-inconsistent events at the same switch (the figure's
/// set comprehension leaves that corner unconstrained; greediness is one
/// legal resolution and keeps Lemma 3's invariant checkable).
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_RUNTIME_MACHINE_H
#define EVENTNET_RUNTIME_MACHINE_H

#include "consistency/Trace.h"
#include "nes/Nes.h"
#include "support/BitSet.h"
#include "support/Rng.h"
#include "topo/Topology.h"

#include <deque>
#include <map>
#include <string>
#include <vector>

namespace eventnet {
namespace runtime {

/// A packet in flight: header fields plus the Section 4 metadata (tag =
/// configuration version, digest = events heard about) and the trace
/// bookkeeping linking it to its parent occurrence.
struct MPacket {
  netkat::Packet Pkt;
  nes::SetId Tag = 0;
  DenseBitSet Digest;
  /// Trace-entry index of the occurrence that produced this packet.
  int TraceParent = -1;
  /// True if the packet's current located occurrence is already in the
  /// trace (host emissions are logged at IN time, when the tag is
  /// stamped; link arrivals are logged when the switch processes them).
  bool IngressLogged = false;
};

/// A pending host emission.
struct Emission {
  HostId From;
  netkat::Packet Header; // location fields are filled in by IN
};

/// The Figure 7 machine.
class Machine {
public:
  Machine(const nes::Nes &N, const topo::Topology &Topo);

  /// Queues a packet for host \p From to emit (IN becomes applicable).
  void inject(HostId From, const netkat::Packet &Header);

  /// A step the machine can take.
  enum class RuleKind { In, Switch, Link, Out, CtrlRecv, CtrlSend };
  struct Step {
    RuleKind Kind;
    /// Rule-specific operand: emission index for In; (switch, port) for
    /// Switch/Link/Out; event for CtrlRecv; switch for CtrlSend.
    SwitchId Sw = 0;
    PortId Pt = 0;
    nes::EventId Ev = 0;
    size_t EmissionIdx = 0;

    std::string str() const;
  };

  /// All steps applicable in the current state.
  std::vector<Step> possibleSteps() const;

  /// Applies \p S; asserts it is applicable.
  void apply(const Step &S);

  /// Runs until quiescence, choosing uniformly among applicable steps
  /// with \p R. Returns the number of steps taken.
  size_t runToQuiescence(Rng &R, size_t MaxSteps = 100000);

  /// Lemma 3's invariant: Q ∪ R is consistent. Checked by tests after
  /// every step.
  bool globalSetConsistent() const;

  /// The recorded network trace (grows as the machine runs).
  const consistency::NetworkTrace &trace() const { return Trace; }

  /// Moves the trace out (for report assembly on a dying machine;
  /// trace() is empty afterwards).
  consistency::NetworkTrace takeTrace() { return std::move(Trace); }

  /// Per-switch view of the event-set register.
  const DenseBitSet &switchEvents(SwitchId Sw) const;

  /// Packets delivered to each host, in delivery order.
  const std::vector<std::pair<HostId, netkat::Packet>> &deliveries() const {
    return Delivered;
  }

  /// Controller state accessors (Q and R of the figure).
  const DenseBitSet &controllerQueue() const { return Q; }
  const DenseBitSet &controller() const { return R; }

private:
  struct SwitchState {
    std::map<PortId, std::deque<MPacket>> QmIn;
    std::map<PortId, std::deque<MPacket>> QmOut;
    DenseBitSet E;
  };

  nes::SetId tagForLocalSet(const DenseBitSet &E) const;

  const nes::Nes &N;
  const topo::Topology &Topo;
  std::map<SwitchId, SwitchState> Switches;
  DenseBitSet Q, R;
  std::vector<Emission> Pending;
  consistency::NetworkTrace Trace;
  std::vector<std::pair<HostId, netkat::Packet>> Delivered;
};

} // namespace runtime
} // namespace eventnet

#endif // EVENTNET_RUNTIME_MACHINE_H
