//===- runtime/Guarded.cpp - Tag-guarded flow tables ----------------------===//

#include "runtime/Guarded.h"

using namespace eventnet;
using namespace eventnet::runtime;

FieldId runtime::tagField() {
  static FieldId F = fieldOf("__tag");
  return F;
}

topo::Configuration runtime::buildGuardedConfig(const nes::Nes &N,
                                                const topo::Topology &Topo) {
  topo::Configuration Out;
  for (SwitchId Sw : Topo.switches()) {
    flowtable::Table Merged;
    for (nes::SetId S = 0; S != N.numSets(); ++S) {
      const flowtable::Table &Base = N.configOf(S).tableFor(Sw);
      for (flowtable::Rule R : Base.rules()) {
        R.Pattern.require(tagField(), static_cast<Value>(S));
        Merged.add(std::move(R));
      }
    }
    Out.setTable(Sw, std::move(Merged));
  }
  return Out;
}

size_t runtime::guardedRuleCount(const nes::Nes &N,
                                 const topo::Topology &Topo) {
  return buildGuardedConfig(N, Topo).totalRules();
}
