//===- runtime/Machine.cpp - The Figure 7 operational semantics -----------===//

#include "runtime/Machine.h"

#include <cassert>
#include <sstream>

using namespace eventnet;
using namespace eventnet::runtime;
using eventnet::consistency::TraceEntry;
using eventnet::netkat::Packet;

Machine::Machine(const nes::Nes &N, const topo::Topology &Topo)
    : N(N), Topo(Topo) {
  for (SwitchId Sw : Topo.switches())
    Switches[Sw]; // default-construct: empty queues, E = ∅
}

void Machine::inject(HostId From, const Packet &Header) {
  Pending.push_back(Emission{From, Header});
}

std::string Machine::Step::str() const {
  std::ostringstream OS;
  switch (Kind) {
  case RuleKind::In:
    OS << "IN #" << EmissionIdx;
    break;
  case RuleKind::Switch:
    OS << "SWITCH " << Sw << ':' << Pt;
    break;
  case RuleKind::Link:
    OS << "LINK " << Sw << ':' << Pt;
    break;
  case RuleKind::Out:
    OS << "OUT " << Sw << ':' << Pt;
    break;
  case RuleKind::CtrlRecv:
    OS << "CTRLRECV e" << Ev;
    break;
  case RuleKind::CtrlSend:
    OS << "CTRLSEND " << Sw;
    break;
  }
  return OS.str();
}

nes::SetId Machine::tagForLocalSet(const DenseBitSet &E) const {
  auto S = N.setIndex(E);
  assert(S && "switch register left the NES family (finite-completeness or "
              "Lemma 3 violated)");
  return *S;
}

const DenseBitSet &Machine::switchEvents(SwitchId Sw) const {
  auto It = Switches.find(Sw);
  assert(It != Switches.end() && "unknown switch");
  return It->second.E;
}

std::vector<Machine::Step> Machine::possibleSteps() const {
  std::vector<Step> Out;

  // IN: the oldest pending emission of each host (per-host FIFO).
  {
    std::set<HostId> Seen;
    for (size_t I = 0; I != Pending.size(); ++I) {
      if (!Seen.insert(Pending[I].From).second)
        continue;
      Step S;
      S.Kind = RuleKind::In;
      S.EmissionIdx = I;
      Out.push_back(S);
    }
  }

  for (const auto &[Sw, St] : Switches) {
    for (const auto &[Pt, Queue] : St.QmIn)
      if (!Queue.empty()) {
        Step S;
        S.Kind = RuleKind::Switch;
        S.Sw = Sw;
        S.Pt = Pt;
        Out.push_back(S);
      }
    for (const auto &[Pt, Queue] : St.QmOut)
      if (!Queue.empty()) {
        Step S;
        S.Kind = Topo.isHostPort({Sw, Pt}) || !Topo.linkFrom({Sw, Pt})
                     ? RuleKind::Out
                     : RuleKind::Link;
        S.Sw = Sw;
        S.Pt = Pt;
        Out.push_back(S);
      }
  }

  Q.forEach([&Out](unsigned E) {
    Step S;
    S.Kind = RuleKind::CtrlRecv;
    S.Ev = E;
    Out.push_back(S);
  });

  for (const auto &[Sw, St] : Switches)
    if (!R.isSubsetOf(St.E)) {
      Step S;
      S.Kind = RuleKind::CtrlSend;
      S.Sw = Sw;
      Out.push_back(S);
    }

  return Out;
}

void Machine::apply(const Step &S) {
  switch (S.Kind) {
  case RuleKind::In: {
    assert(S.EmissionIdx < Pending.size());
    Emission E = Pending[S.EmissionIdx];
    Pending.erase(Pending.begin() +
                  static_cast<ptrdiff_t>(S.EmissionIdx));
    Location At = Topo.hostLoc(E.From);
    MPacket P;
    P.Pkt = E.Header;
    P.Pkt.setLoc(At);
    P.Tag = tagForLocalSet(Switches[At.Sw].E); // pkt[C <- g(E)]
    TraceEntry Entry;
    Entry.Lp = P.Pkt;
    Entry.Parent = -1;
    P.TraceParent = Trace.append(std::move(Entry));
    P.IngressLogged = true;
    Switches[At.Sw].QmIn[At.Pt].push_back(std::move(P));
    return;
  }

  case RuleKind::Switch: {
    SwitchState &St = Switches[S.Sw];
    auto &Queue = St.QmIn[S.Pt];
    assert(!Queue.empty() && "SWITCH on empty queue");
    MPacket P = Queue.front();
    Queue.pop_front();

    // Log the ingress located packet now: the switch's per-location
    // order in the trace must match the order its state (E) interacts
    // with packets, so link arrivals are logged at processing time.
    if (!P.IngressLogged) {
      TraceEntry Entry;
      Entry.Lp = P.Pkt;
      Entry.Parent = P.TraceParent;
      P.TraceParent = Trace.append(std::move(Entry));
      P.IngressLogged = true;
    }

    DenseBitSet Known = St.E | P.Digest;

    // E' — fresh events this arrival triggers, greedily kept consistent.
    DenseBitSet Fresh;
    for (nes::EventId E = 0; E != N.numEvents(); ++E) {
      if (Known.test(E) || Fresh.test(E))
        continue;
      if (!N.event(E).matches(P.Pkt))
        continue;
      DenseBitSet Ext = Known | Fresh;
      Ext.set(E);
      if (N.enables(Known, E) && N.con(Ext))
        Fresh.set(E);
    }

    // Forward using the packet's stamped configuration (pkt.C).
    const flowtable::Table &T = N.configOf(P.Tag).tableFor(S.Sw);
    std::vector<Packet> Outs = T.apply(P.Pkt);

    DenseBitSet OutDigest = P.Digest | St.E | Fresh;
    for (Packet &OutPkt : Outs) {
      MPacket Child;
      Child.Tag = P.Tag;
      Child.Digest = OutDigest;
      TraceEntry Entry;
      Entry.Lp = OutPkt;
      Entry.Parent = P.TraceParent;
      Entry.IsDelivery = Topo.isHostPort(OutPkt.loc());
      Child.TraceParent = Trace.append(std::move(Entry));
      Child.Pkt = std::move(OutPkt);
      St.QmOut[Child.Pkt.pt()].push_back(std::move(Child));
    }

    St.E = Known | Fresh;
    Q |= Fresh;
    return;
  }

  case RuleKind::Link: {
    SwitchState &St = Switches[S.Sw];
    auto &Queue = St.QmOut[S.Pt];
    assert(!Queue.empty() && "LINK on empty queue");
    MPacket P = Queue.front();
    Queue.pop_front();
    auto Dst = Topo.linkFrom({S.Sw, S.Pt});
    assert(Dst && "LINK step on a port without a link");
    P.Pkt.setLoc(*Dst);
    P.IngressLogged = false; // logged when the destination processes it
    Switches[Dst->Sw].QmIn[Dst->Pt].push_back(std::move(P));
    return;
  }

  case RuleKind::Out: {
    SwitchState &St = Switches[S.Sw];
    auto &Queue = St.QmOut[S.Pt];
    assert(!Queue.empty() && "OUT on empty queue");
    MPacket P = Queue.front();
    Queue.pop_front();
    if (auto H = Topo.hostAt({S.Sw, S.Pt}))
      Delivered.push_back({*H, P.Pkt});
    // A port with neither link nor host silently discards.
    return;
  }

  case RuleKind::CtrlRecv:
    assert(Q.test(S.Ev) && "CTRLRECV of an event not in Q");
    Q.reset(S.Ev);
    R.set(S.Ev);
    return;

  case RuleKind::CtrlSend:
    Switches[S.Sw].E |= R;
    return;
  }
}

size_t Machine::runToQuiescence(Rng &Rand, size_t MaxSteps) {
  size_t Taken = 0;
  while (Taken < MaxSteps) {
    std::vector<Step> Steps = possibleSteps();
    if (Steps.empty())
      break;
    apply(Steps[Rand.below(Steps.size())]);
    ++Taken;
  }
  assert(Taken < MaxSteps && "machine failed to quiesce");
  return Taken;
}

bool Machine::globalSetConsistent() const { return N.con(Q | R); }
