//===- runtime/Guarded.h - Tag-guarded flow tables --------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Steps 1-3 of the Section 4 implementation strategy: encode each NES
/// event-set as a flat integer tag, compile every configuration's rules
/// proactively, and guard each rule with its configuration's tag so a
/// single physical table per switch serves all configurations. The tag
/// travels in a reserved packet header field ("__tag"); stamping
/// (step 4) and digest learning (step 5) are switch-logic operations
/// implemented by the Figure 7 machine and the simulator.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_RUNTIME_GUARDED_H
#define EVENTNET_RUNTIME_GUARDED_H

#include "nes/Nes.h"
#include "topo/Configuration.h"
#include "topo/Topology.h"

namespace eventnet {
namespace runtime {

/// The reserved field carrying the configuration tag (the packet's
/// version number; Section 4.1).
FieldId tagField();

/// Builds the guarded physical tables: for every switch, the union over
/// event-set tags t of configuration g(t)'s rules with the additional
/// match __tag == t. Rules keep their per-configuration priorities; the
/// tag matches make bands for different tags disjoint.
topo::Configuration buildGuardedConfig(const nes::Nes &N,
                                       const topo::Topology &Topo);

/// Rule-count of the guarded tables before any sharing optimization —
/// the "number of rules installed on switches" the paper reports per
/// application.
size_t guardedRuleCount(const nes::Nes &N, const topo::Topology &Topo);

} // namespace runtime
} // namespace eventnet

#endif // EVENTNET_RUNTIME_GUARDED_H
