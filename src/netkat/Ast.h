//===- netkat/Ast.h - NetKAT predicates and policies ------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The NetKAT abstract syntax (Anderson et al., POPL 2014), which Stateful
/// NetKAT programs project onto (Figure 5 of the paper):
///
///   a, b ::= true | false | f = n | a ∨ b | a ∧ b | ¬a           (tests)
///   p, q ::= a | f <- n | p + q | p ; q | p* | (n:m) -> (n:m)    (policies)
///
/// Tests on the switch (sw=n) and port (pt=n) locations are ordinary field
/// tests on the reserved sw/pt fields. Nodes are immutable and shared via
/// PredRef / PolicyRef; the smart constructors in this header perform the
/// standard KAT simplifications (identity/annihilator absorption) so that
/// the Figure 5 projection of a Stateful NetKAT program collapses the
/// branches disabled in a given state.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_NETKAT_AST_H
#define EVENTNET_NETKAT_AST_H

#include "support/Ids.h"
#include "support/Symbols.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace eventnet {
namespace netkat {

class Pred;
class Policy;
using PredRef = std::shared_ptr<const Pred>;
using PolicyRef = std::shared_ptr<const Policy>;

/// A NetKAT predicate (the Boolean-algebra fragment).
class Pred {
public:
  enum class Kind { True, False, Test, And, Or, Not };

  Kind kind() const { return K; }

  /// Test accessors; only valid when kind()==Test.
  FieldId testField() const {
    assert(K == Kind::Test);
    return F;
  }
  Value testValue() const {
    assert(K == Kind::Test);
    return V;
  }

  /// Binary accessors; only valid for And/Or.
  const PredRef &lhs() const {
    assert(K == Kind::And || K == Kind::Or);
    return L;
  }
  const PredRef &rhs() const {
    assert(K == Kind::And || K == Kind::Or);
    return R;
  }

  /// Negand; only valid for Not.
  const PredRef &negand() const {
    assert(K == Kind::Not);
    return L;
  }

  /// Renders concrete syntax, e.g. "(pt=2 and ip_dst=4)".
  std::string str() const;

  // Node construction is funneled through the smart constructors below.
  Pred(Kind K, FieldId F, Value V, PredRef L, PredRef R)
      : K(K), F(F), V(V), L(std::move(L)), R(std::move(R)) {}

private:
  Kind K;
  FieldId F = 0;
  Value V = 0;
  PredRef L, R;
};

/// A NetKAT policy (the KAT layer plus links).
class Policy {
public:
  enum class Kind { Filter, Mod, Union, Seq, Star, Link };

  Kind kind() const { return K; }

  /// Filter accessor.
  const PredRef &pred() const {
    assert(K == Kind::Filter);
    return P;
  }

  /// Mod accessors (f <- n).
  FieldId modField() const {
    assert(K == Kind::Mod);
    return F;
  }
  Value modValue() const {
    assert(K == Kind::Mod);
    return V;
  }

  /// Binary accessors for Union/Seq.
  const PolicyRef &lhs() const {
    assert(K == Kind::Union || K == Kind::Seq);
    return L;
  }
  const PolicyRef &rhs() const {
    assert(K == Kind::Union || K == Kind::Seq);
    return R;
  }

  /// Star body.
  const PolicyRef &body() const {
    assert(K == Kind::Star);
    return L;
  }

  /// Link endpoints ((n1:m1) -> (n2:m2)).
  Location linkSrc() const {
    assert(K == Kind::Link);
    return Src;
  }
  Location linkDst() const {
    assert(K == Kind::Link);
    return Dst;
  }

  /// Renders concrete syntax.
  std::string str() const;

  Policy(Kind K, PredRef P, FieldId F, Value V, PolicyRef L, PolicyRef R,
         Location Src, Location Dst)
      : K(K), P(std::move(P)), F(F), V(V), L(std::move(L)), R(std::move(R)),
        Src(Src), Dst(Dst) {}

private:
  Kind K;
  PredRef P;
  FieldId F = 0;
  Value V = 0;
  PolicyRef L, R;
  Location Src{}, Dst{};
};

//===----------------------------------------------------------------------===//
// Smart constructors
//===----------------------------------------------------------------------===//

/// The constant `true` predicate (shared singleton).
PredRef pTrue();
/// The constant `false` predicate (shared singleton).
PredRef pFalse();
/// Field test f = n.
PredRef pTest(FieldId F, Value V);
/// Conjunction with true/false absorption.
PredRef pAnd(PredRef A, PredRef B);
/// Disjunction with true/false absorption.
PredRef pOr(PredRef A, PredRef B);
/// Negation with double-negation and constant elimination.
PredRef pNot(PredRef A);
/// Conjunction of a list (empty list yields true).
PredRef pAndAll(const std::vector<PredRef> &Ps);

/// Returns true for structurally constant-true / constant-false predicates.
bool isTriviallyTrue(const PredRef &P);
bool isTriviallyFalse(const PredRef &P);

/// Test on the switch location, sw = n.
PredRef pSw(SwitchId Sw);
/// Test on the port location, pt = m.
PredRef pPt(PortId Pt);
/// Test on a full location, sw = n and pt = m.
PredRef pAt(Location L);

/// Filter policy (a predicate used as a policy).
PolicyRef filter(PredRef P);
/// The drop policy (filter false).
PolicyRef drop();
/// The identity policy (filter true).
PolicyRef skip();
/// Field assignment f <- n.
PolicyRef mod(FieldId F, Value V);
/// Port assignment pt <- m.
PolicyRef modPt(PortId Pt);
/// Union p + q with drop absorption.
PolicyRef unite(PolicyRef A, PolicyRef B);
/// Union of a list (empty list yields drop).
PolicyRef uniteAll(const std::vector<PolicyRef> &Ps);
/// Sequence p ; q with skip/drop absorption.
PolicyRef seq(PolicyRef A, PolicyRef B);
/// Sequence of a list (empty list yields skip).
PolicyRef seqAll(const std::vector<PolicyRef> &Ps);
/// Iteration p*.
PolicyRef star(PolicyRef A);
/// Physical link (n1:m1) -> (n2:m2).
PolicyRef link(Location Src, Location Dst);

/// Returns true for the structurally-drop policy (filter false).
bool isDrop(const PolicyRef &P);
/// Returns true for the structurally-skip policy (filter true).
bool isSkip(const PolicyRef &P);

/// Returns true if \p P syntactically contains a Link node.
bool containsLink(const PolicyRef &P);

/// Returns true if \p P modifies the reserved sw field. Stateful NetKAT's
/// grammar (Figure 4) excludes sw from the modifiable fields; the path
/// splitter relies on this invariant.
bool modifiesSwitch(const PolicyRef &P);

/// Structural size (node count) of a policy; used by tests and benches.
size_t policySize(const PolicyRef &P);

} // namespace netkat
} // namespace eventnet

#endif // EVENTNET_NETKAT_AST_H
