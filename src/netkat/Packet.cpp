//===- netkat/Packet.cpp - Packet and located-packet model ----------------===//

#include "netkat/Packet.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace eventnet;
using namespace eventnet::netkat;

Packet::Packet(const std::vector<std::pair<FieldId, Value>> &InFields) {
  for (const auto &[F, V] : InFields)
    set(F, V);
}

bool Packet::has(FieldId F) const {
  auto It = std::lower_bound(
      Fields.begin(), Fields.end(), F,
      [](const std::pair<FieldId, Value> &P, FieldId X) { return P.first < X; });
  return It != Fields.end() && It->first == F;
}

Value Packet::get(FieldId F) const {
  auto It = std::lower_bound(
      Fields.begin(), Fields.end(), F,
      [](const std::pair<FieldId, Value> &P, FieldId X) { return P.first < X; });
  assert(It != Fields.end() && It->first == F && "field absent from packet");
  return It->second;
}

Value Packet::getOr(FieldId F, Value Default) const {
  auto It = std::lower_bound(
      Fields.begin(), Fields.end(), F,
      [](const std::pair<FieldId, Value> &P, FieldId X) { return P.first < X; });
  if (It == Fields.end() || It->first != F)
    return Default;
  return It->second;
}

void Packet::set(FieldId F, Value V) {
  auto It = std::lower_bound(
      Fields.begin(), Fields.end(), F,
      [](const std::pair<FieldId, Value> &P, FieldId X) { return P.first < X; });
  if (It != Fields.end() && It->first == F) {
    It->second = V;
    return;
  }
  Fields.insert(It, {F, V});
}

void Packet::erase(FieldId F) {
  auto It = std::lower_bound(
      Fields.begin(), Fields.end(), F,
      [](const std::pair<FieldId, Value> &P, FieldId X) { return P.first < X; });
  if (It != Fields.end() && It->first == F)
    Fields.erase(It);
}

std::string Packet::str() const {
  std::ostringstream OS;
  OS << '{';
  for (size_t I = 0; I != Fields.size(); ++I) {
    if (I)
      OS << ", ";
    OS << fieldName(Fields[I].first) << '=' << Fields[I].second;
  }
  OS << '}';
  return OS.str();
}

size_t Packet::hash() const {
  size_t H = 0x1234;
  for (const auto &[F, V] : Fields) {
    H = hashCombine(H, std::hash<uint16_t>()(F));
    H = hashCombine(H, std::hash<int64_t>()(V));
  }
  return H;
}

Packet netkat::makePacket(Location L,
                          const std::vector<std::pair<FieldId, Value>> &Hdr) {
  Packet P(Hdr);
  P.setLoc(L);
  return P;
}
