//===- netkat/Event.cpp - Packet-arrival events ---------------------------===//

#include "netkat/Event.h"

#include "netkat/Eval.h"

#include <sstream>

using namespace eventnet;
using namespace eventnet::netkat;

bool Event::matches(const Packet &Lp) const {
  return Lp.sw() == Loc.Sw && Lp.pt() == Loc.Pt && evalPred(Guard, Lp);
}

std::string Event::str() const {
  std::ostringstream OS;
  OS << '(' << Guard->str() << ", " << Loc.Sw << ':' << Loc.Pt << ")#" << Eid;
  return OS.str();
}

bool netkat::operator==(const Event &A, const Event &B) {
  return A.Loc == B.Loc && A.Eid == B.Eid && A.Guard->str() == B.Guard->str();
}

bool netkat::operator!=(const Event &A, const Event &B) { return !(A == B); }
