//===- netkat/PathSplit.h - Split global programs at links ------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// NetKAT programs in this paper are *global*: links appear inline, so a
/// single policy describes an end-to-end path through several switches
/// (see the programs in Figure 9). A physical switch, however, executes a
/// *local* policy: it processes a packet at an input port and emits it at
/// output ports; the topology then moves it across links.
///
/// This pass performs the link-cut decomposition that bridges the two
/// views. A policy is first normalized into a union of clauses
///
///   l0 ; L1 ; l1 ; L2 ; ... ; Lm ; lm
///
/// where each li is link-free and each Li is a link, and then each clause
/// is cut at its links into per-hop fragments:
///
///   hop_0 = sw=src(L1).sw ; l0 ; filter(at src(L1))
///   hop_i = filter(at dst(Li)) ; li ; filter(at src(L(i+1)))
///   hop_m = filter(at dst(Lm)) ; lm
///
/// The union of all hops is a link-free policy whose per-switch
/// specialization compiles to flow tables (see fdd/Compile.h). The
/// soundness of prefixing hop_0 with a switch filter relies on Stateful
/// NetKAT's grammar: sw is not a modifiable field (Figure 4), so a
/// link-free fragment can never move a packet between switches.
///
/// Continuation hops are additionally guarded by the *field knowledge*
/// accumulated along their clause prefix (equality tests on and writes
/// to header fields), so packets mid-path through one clause do not get
/// picked up by another clause's continuation at a shared link
/// destination. The supported fragment therefore asks that clauses
/// sharing a link destination be distinguishable by fields that are not
/// overwritten mid-path — precisely the discipline of the paper's
/// programs, whose clauses are keyed by ip_dst throughout. Clauses that
/// erase all distinctions mid-path are physically ambiguous for any
/// tag-free per-switch implementation.
///
/// Programs where a star contains a link are outside the supported
/// fragment (the paper's programs never iterate over links) and are
/// rejected with a diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_NETKAT_PATHSPLIT_H
#define EVENTNET_NETKAT_PATHSPLIT_H

#include "netkat/Ast.h"

#include <string>
#include <vector>

namespace eventnet {
namespace netkat {

/// Result of the link-cut decomposition.
struct PathSplitResult {
  /// True if the decomposition succeeded.
  bool Ok = false;
  /// Diagnostic when !Ok.
  std::string Error;
  /// The link-free local policy (union of all hop fragments).
  PolicyRef Local;
  /// All links mentioned by the program, for topology cross-checking.
  std::vector<std::pair<Location, Location>> Links;
};

/// Decomposes global policy \p P into a local (link-free) policy.
PathSplitResult splitAtLinks(const PolicyRef &P);

} // namespace netkat
} // namespace eventnet

#endif // EVENTNET_NETKAT_PATHSPLIT_H
