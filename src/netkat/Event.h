//===- netkat/Event.h - Packet-arrival events -------------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An event e = (ϕ, sw, pt)_eid (paper Section 2): the arrival of a packet
/// satisfying ϕ at location sw:pt. The optional event identifier eid
/// distinguishes "renamed" copies of the same event, which arise when an
/// ETS chain triggers the same phenomenon repeatedly (e.g. each packet
/// counted by the bandwidth cap; see Section 3.1 "Loops in ETSs").
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_NETKAT_EVENT_H
#define EVENTNET_NETKAT_EVENT_H

#include "netkat/Ast.h"
#include "netkat/Packet.h"

#include <string>

namespace eventnet {
namespace netkat {

/// A packet-arrival event.
struct Event {
  /// First-order formula over packet fields; the located packet's header
  /// must satisfy it for the event to match.
  PredRef Guard;
  /// The location sw:pt where the event is detected.
  Location Loc;
  /// Renaming index: 0 for the first occurrence of a phenomenon, >0 for
  /// renamed copies along an ETS chain.
  unsigned Eid = 0;

  /// lp |= e from the paper: location matches and the header satisfies ϕ.
  /// The Eid does not participate in matching; it only distinguishes event
  /// identities within an NES.
  bool matches(const Packet &Lp) const;

  /// Renders e.g. "(ip_dst=4, 4:1)#0".
  std::string str() const;
};

/// Structural equality: same guard text, location, and eid. Guards are
/// compared by their printed form, which is canonical enough for the
/// conjunctions produced by the Figure 6 extraction.
bool operator==(const Event &A, const Event &B);
bool operator!=(const Event &A, const Event &B);

} // namespace netkat
} // namespace eventnet

#endif // EVENTNET_NETKAT_EVENT_H
