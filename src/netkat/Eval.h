//===- netkat/Eval.h - NetKAT denotational evaluator ------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard packet-set semantics of NetKAT: a policy denotes a
/// function from a (located) packet to a set of (located) packets.
/// This evaluator is the semantic reference against which the FDD
/// compiler and the flow-table evaluator are validated by property tests,
/// exactly mirroring how the paper leans on NetKAT's established
/// equational theory for the per-state configurations.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_NETKAT_EVAL_H
#define EVENTNET_NETKAT_EVAL_H

#include "netkat/Ast.h"
#include "netkat/Packet.h"

#include <set>

namespace eventnet {
namespace netkat {

/// Set of packets, ordered structurally (deterministic iteration).
using PacketSet = std::set<Packet>;

/// Evaluates predicate \p P on packet \p Pkt. Tests on fields the packet
/// does not carry are false (the paper's packets carry every field the
/// program mentions; absence can only arise in hand-built tests).
bool evalPred(const PredRef &P, const Packet &Pkt);

/// Evaluates policy \p P on packet \p Pkt, producing the set of output
/// packets. Star is computed as the reflexive-transitive closure; it
/// terminates because each program only ever writes finitely many values.
PacketSet evalPolicy(const PolicyRef &P, const Packet &Pkt);

/// Evaluates policy \p P pointwise on a set of packets.
PacketSet evalPolicy(const PolicyRef &P, const PacketSet &Pkts);

} // namespace netkat
} // namespace eventnet

#endif // EVENTNET_NETKAT_EVAL_H
