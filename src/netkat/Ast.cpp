//===- netkat/Ast.cpp - NetKAT predicates and policies --------------------===//

#include "netkat/Ast.h"

#include <sstream>

using namespace eventnet;
using namespace eventnet::netkat;

//===----------------------------------------------------------------------===//
// Predicate smart constructors
//===----------------------------------------------------------------------===//

PredRef netkat::pTrue() {
  static PredRef T = std::make_shared<Pred>(Pred::Kind::True, 0, 0, nullptr,
                                            nullptr);
  return T;
}

PredRef netkat::pFalse() {
  static PredRef F = std::make_shared<Pred>(Pred::Kind::False, 0, 0, nullptr,
                                            nullptr);
  return F;
}

PredRef netkat::pTest(FieldId F, Value V) {
  return std::make_shared<Pred>(Pred::Kind::Test, F, V, nullptr, nullptr);
}

bool netkat::isTriviallyTrue(const PredRef &P) {
  return P->kind() == Pred::Kind::True;
}

bool netkat::isTriviallyFalse(const PredRef &P) {
  return P->kind() == Pred::Kind::False;
}

PredRef netkat::pAnd(PredRef A, PredRef B) {
  if (isTriviallyFalse(A) || isTriviallyFalse(B))
    return pFalse();
  if (isTriviallyTrue(A))
    return B;
  if (isTriviallyTrue(B))
    return A;
  return std::make_shared<Pred>(Pred::Kind::And, 0, 0, std::move(A),
                                std::move(B));
}

PredRef netkat::pOr(PredRef A, PredRef B) {
  if (isTriviallyTrue(A) || isTriviallyTrue(B))
    return pTrue();
  if (isTriviallyFalse(A))
    return B;
  if (isTriviallyFalse(B))
    return A;
  return std::make_shared<Pred>(Pred::Kind::Or, 0, 0, std::move(A),
                                std::move(B));
}

PredRef netkat::pNot(PredRef A) {
  if (isTriviallyTrue(A))
    return pFalse();
  if (isTriviallyFalse(A))
    return pTrue();
  if (A->kind() == Pred::Kind::Not)
    return A->negand();
  return std::make_shared<Pred>(Pred::Kind::Not, 0, 0, std::move(A), nullptr);
}

PredRef netkat::pAndAll(const std::vector<PredRef> &Ps) {
  PredRef Acc = pTrue();
  for (const PredRef &P : Ps)
    Acc = pAnd(Acc, P);
  return Acc;
}

PredRef netkat::pSw(SwitchId Sw) {
  return pTest(FieldSw, static_cast<Value>(Sw));
}

PredRef netkat::pPt(PortId Pt) {
  return pTest(FieldPt, static_cast<Value>(Pt));
}

PredRef netkat::pAt(Location L) { return pAnd(pSw(L.Sw), pPt(L.Pt)); }

//===----------------------------------------------------------------------===//
// Policy smart constructors
//===----------------------------------------------------------------------===//

PolicyRef netkat::filter(PredRef P) {
  return std::make_shared<Policy>(Policy::Kind::Filter, std::move(P), 0, 0,
                                  nullptr, nullptr, Location{}, Location{});
}

PolicyRef netkat::drop() {
  static PolicyRef D = filter(pFalse());
  return D;
}

PolicyRef netkat::skip() {
  static PolicyRef S = filter(pTrue());
  return S;
}

PolicyRef netkat::mod(FieldId F, Value V) {
  return std::make_shared<Policy>(Policy::Kind::Mod, nullptr, F, V, nullptr,
                                  nullptr, Location{}, Location{});
}

PolicyRef netkat::modPt(PortId Pt) {
  return mod(FieldPt, static_cast<Value>(Pt));
}

bool netkat::isDrop(const PolicyRef &P) {
  return P->kind() == Policy::Kind::Filter && isTriviallyFalse(P->pred());
}

bool netkat::isSkip(const PolicyRef &P) {
  return P->kind() == Policy::Kind::Filter && isTriviallyTrue(P->pred());
}

PolicyRef netkat::unite(PolicyRef A, PolicyRef B) {
  if (isDrop(A))
    return B;
  if (isDrop(B))
    return A;
  return std::make_shared<Policy>(Policy::Kind::Union, nullptr, 0, 0,
                                  std::move(A), std::move(B), Location{},
                                  Location{});
}

PolicyRef netkat::uniteAll(const std::vector<PolicyRef> &Ps) {
  PolicyRef Acc = drop();
  for (const PolicyRef &P : Ps)
    Acc = unite(Acc, P);
  return Acc;
}

PolicyRef netkat::seq(PolicyRef A, PolicyRef B) {
  if (isDrop(A) || isDrop(B))
    return drop();
  if (isSkip(A))
    return B;
  if (isSkip(B))
    return A;
  return std::make_shared<Policy>(Policy::Kind::Seq, nullptr, 0, 0,
                                  std::move(A), std::move(B), Location{},
                                  Location{});
}

PolicyRef netkat::seqAll(const std::vector<PolicyRef> &Ps) {
  PolicyRef Acc = skip();
  for (const PolicyRef &P : Ps)
    Acc = seq(Acc, P);
  return Acc;
}

PolicyRef netkat::star(PolicyRef A) {
  // drop* == skip* == skip.
  if (isDrop(A) || isSkip(A))
    return skip();
  return std::make_shared<Policy>(Policy::Kind::Star, nullptr, 0, 0,
                                  std::move(A), nullptr, Location{},
                                  Location{});
}

PolicyRef netkat::link(Location Src, Location Dst) {
  return std::make_shared<Policy>(Policy::Kind::Link, nullptr, 0, 0, nullptr,
                                  nullptr, Src, Dst);
}

//===----------------------------------------------------------------------===//
// Structural queries
//===----------------------------------------------------------------------===//

bool netkat::containsLink(const PolicyRef &P) {
  switch (P->kind()) {
  case Policy::Kind::Filter:
  case Policy::Kind::Mod:
    return false;
  case Policy::Kind::Link:
    return true;
  case Policy::Kind::Union:
  case Policy::Kind::Seq:
    return containsLink(P->lhs()) || containsLink(P->rhs());
  case Policy::Kind::Star:
    return containsLink(P->body());
  }
  return false;
}

bool netkat::modifiesSwitch(const PolicyRef &P) {
  switch (P->kind()) {
  case Policy::Kind::Filter:
  case Policy::Kind::Link:
    return false;
  case Policy::Kind::Mod:
    return P->modField() == FieldSw;
  case Policy::Kind::Union:
  case Policy::Kind::Seq:
    return modifiesSwitch(P->lhs()) || modifiesSwitch(P->rhs());
  case Policy::Kind::Star:
    return modifiesSwitch(P->body());
  }
  return false;
}

size_t netkat::policySize(const PolicyRef &P) {
  switch (P->kind()) {
  case Policy::Kind::Filter:
  case Policy::Kind::Mod:
  case Policy::Kind::Link:
    return 1;
  case Policy::Kind::Union:
  case Policy::Kind::Seq:
    return 1 + policySize(P->lhs()) + policySize(P->rhs());
  case Policy::Kind::Star:
    return 1 + policySize(P->body());
  }
  return 1;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

std::string Pred::str() const {
  switch (K) {
  case Kind::True:
    return "true";
  case Kind::False:
    return "false";
  case Kind::Test: {
    std::ostringstream OS;
    OS << fieldName(F) << '=' << V;
    return OS.str();
  }
  case Kind::And:
    return "(" + L->str() + " and " + R->str() + ")";
  case Kind::Or:
    return "(" + L->str() + " or " + R->str() + ")";
  case Kind::Not:
    return "not " + L->str();
  }
  return "?";
}

std::string Policy::str() const {
  std::ostringstream OS;
  switch (K) {
  case Kind::Filter:
    return P->str();
  case Kind::Mod:
    OS << fieldName(F) << ":=" << V;
    return OS.str();
  case Kind::Union:
    return "(" + L->str() + " + " + R->str() + ")";
  case Kind::Seq:
    return "(" + L->str() + "; " + R->str() + ")";
  case Kind::Star:
    return "(" + L->str() + ")*";
  case Kind::Link:
    OS << '(' << Src.Sw << ':' << Src.Pt << ")->(" << Dst.Sw << ':' << Dst.Pt
       << ')';
    return OS.str();
  }
  return "?";
}
