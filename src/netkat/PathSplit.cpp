//===- netkat/PathSplit.cpp - Split global programs at links --------------===//

#include "netkat/PathSplit.h"

#include <cassert>
#include <map>
#include <set>

using namespace eventnet;
using namespace eventnet::netkat;

namespace {

/// One clause atom: either a link-free policy fragment or a link.
struct Atom {
  bool IsLink = false;
  PolicyRef Local;  // valid when !IsLink
  Location Src, Dst; // valid when IsLink
};

/// A clause is a sequence of atoms; a normalized program is a union of
/// clauses.
using Clause = std::vector<Atom>;

Atom localAtom(PolicyRef P) {
  Atom A;
  A.IsLink = false;
  A.Local = std::move(P);
  return A;
}

Atom linkAtom(Location Src, Location Dst) {
  Atom A;
  A.IsLink = true;
  A.Src = Src;
  A.Dst = Dst;
  return A;
}

/// Appends clause \p B to clause \p A, merging adjacent local atoms.
Clause concatClauses(const Clause &A, const Clause &B) {
  Clause Out = A;
  for (const Atom &At : B) {
    if (!At.IsLink && !Out.empty() && !Out.back().IsLink) {
      Out.back().Local = seq(Out.back().Local, At.Local);
      continue;
    }
    Out.push_back(At);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Prefix field knowledge
//===----------------------------------------------------------------------===//
//
// A continuation hop must not fire for packets that arrived at the same
// link destination via a *different* clause. Tests and writes along the
// clause prefix pin field values ("knowledge"); guarding the hop with
// that knowledge is a semantic no-op for the clause's own packets and
// excludes foreign ones. The analysis is a simple strongest-postcondition
// approximation: equality tests in pure conjunctions and top-level writes
// yield facts; unions and stars kill facts about any field they write
// (their internal tests are ignored).

/// Collects every field written anywhere inside \p P.
void collectModified(const PolicyRef &P, std::set<FieldId> &Out) {
  switch (P->kind()) {
  case Policy::Kind::Filter:
  case Policy::Kind::Link:
    return;
  case Policy::Kind::Mod:
    Out.insert(P->modField());
    return;
  case Policy::Kind::Union:
  case Policy::Kind::Seq:
    collectModified(P->lhs(), Out);
    collectModified(P->rhs(), Out);
    return;
  case Policy::Kind::Star:
    collectModified(P->body(), Out);
    return;
  }
}

/// Adds facts from a predicate that is a pure conjunction of tests.
void absorbPred(const PredRef &P, std::map<FieldId, Value> &Known) {
  switch (P->kind()) {
  case Pred::Kind::Test:
    Known[P->testField()] = P->testValue();
    return;
  case Pred::Kind::And:
    absorbPred(P->lhs(), Known);
    absorbPred(P->rhs(), Known);
    return;
  default:
    return; // Or / Not / constants contribute no definite facts
  }
}

/// Updates \p Known across a link-free policy fragment.
void absorbPolicy(const PolicyRef &P, std::map<FieldId, Value> &Known) {
  switch (P->kind()) {
  case Policy::Kind::Filter:
    absorbPred(P->pred(), Known);
    return;
  case Policy::Kind::Mod:
    Known[P->modField()] = P->modValue();
    return;
  case Policy::Kind::Seq:
    absorbPolicy(P->lhs(), Known);
    absorbPolicy(P->rhs(), Known);
    return;
  case Policy::Kind::Union:
  case Policy::Kind::Star: {
    std::set<FieldId> Killed;
    collectModified(P, Killed);
    for (FieldId F : Killed)
      Known.erase(F);
    return;
  }
  case Policy::Kind::Link:
    assert(false && "link inside a local fragment");
    return;
  }
}

/// The knowledge conjunction as a predicate, excluding the location
/// fields (the hop's at() filter covers those).
PredRef knowledgePred(const std::map<FieldId, Value> &Known) {
  PredRef Acc = pTrue();
  for (const auto &[F, V] : Known) {
    if (F == FieldSw || F == FieldPt)
      continue;
    Acc = pAnd(Acc, pTest(F, V));
  }
  return Acc;
}

/// Normalizes \p P into a union of clauses. Returns false (setting
/// \p Error) when a star contains a link.
bool normalize(const PolicyRef &P, std::vector<Clause> &Out,
               std::string &Error) {
  if (!containsLink(P)) {
    Out.push_back({localAtom(P)});
    return true;
  }
  switch (P->kind()) {
  case Policy::Kind::Filter:
  case Policy::Kind::Mod:
    // Handled by the link-free fast path above.
    assert(false && "link-free node reached link normalization");
    return false;
  case Policy::Kind::Link:
    Out.push_back({linkAtom(P->linkSrc(), P->linkDst())});
    return true;
  case Policy::Kind::Union: {
    // Union of clause sets.
    if (!normalize(P->lhs(), Out, Error))
      return false;
    return normalize(P->rhs(), Out, Error);
  }
  case Policy::Kind::Seq: {
    std::vector<Clause> Ls, Rs;
    if (!normalize(P->lhs(), Ls, Error) || !normalize(P->rhs(), Rs, Error))
      return false;
    for (const Clause &L : Ls)
      for (const Clause &R : Rs)
        Out.push_back(concatClauses(L, R));
    return true;
  }
  case Policy::Kind::Star:
    Error = "unsupported program: iteration (p*) over a policy containing a "
            "link cannot be cut into per-switch hops";
    return false;
  }
  return false;
}

} // namespace

PathSplitResult netkat::splitAtLinks(const PolicyRef &P) {
  PathSplitResult Res;
  if (modifiesSwitch(P)) {
    Res.Error = "unsupported program: assignment to the reserved sw field";
    return Res;
  }

  std::vector<Clause> Clauses;
  if (!normalize(P, Clauses, Res.Error))
    return Res;

  std::vector<PolicyRef> Hops;
  for (const Clause &C : Clauses) {
    // Collect atoms into alternating locals/links with explicit skips so
    // clause shape is l0 L1 l1 ... Lm lm.
    std::vector<PolicyRef> Locals;
    std::vector<std::pair<Location, Location>> Links;
    Locals.push_back(skip());
    for (const Atom &A : C) {
      if (A.IsLink) {
        Links.push_back({A.Src, A.Dst});
        Res.Links.push_back({A.Src, A.Dst});
        Locals.push_back(skip());
        continue;
      }
      Locals.back() = seq(Locals.back(), A.Local);
    }
    assert(Locals.size() == Links.size() + 1 && "clause shape violated");

    size_t M = Links.size();
    if (M == 0) {
      // Single-switch clause: usable as-is.
      Hops.push_back(Locals[0]);
      continue;
    }
    std::map<FieldId, Value> Known;
    for (size_t I = 0; I <= M; ++I) {
      PolicyRef Hop = Locals[I];
      // Entry constraint: first hop runs at the first link's source
      // switch (sw is immutable within a hop); later hops run exactly at
      // the previous link's destination, additionally guarded by the
      // clause prefix's field knowledge to prevent cross-clause pickup.
      if (I == 0)
        Hop = seq(filter(pSw(Links[0].first.Sw)), Hop);
      else
        Hop = seq(filter(pAnd(pAt(Links[I - 1].second),
                              knowledgePred(Known))),
                  Hop);
      // Exit constraint: non-final hops must leave the packet at the next
      // link's source location.
      if (I < M)
        Hop = seq(Hop, filter(pAt(Links[I].first)));
      Hops.push_back(Hop);
      absorbPolicy(Locals[I], Known);
    }
  }

  Res.Local = uniteAll(Hops);
  Res.Ok = true;
  return Res;
}
