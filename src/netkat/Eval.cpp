//===- netkat/Eval.cpp - NetKAT denotational evaluator --------------------===//

#include "netkat/Eval.h"

using namespace eventnet;
using namespace eventnet::netkat;

bool netkat::evalPred(const PredRef &P, const Packet &Pkt) {
  switch (P->kind()) {
  case Pred::Kind::True:
    return true;
  case Pred::Kind::False:
    return false;
  case Pred::Kind::Test:
    return Pkt.has(P->testField()) &&
           Pkt.get(P->testField()) == P->testValue();
  case Pred::Kind::And:
    return evalPred(P->lhs(), Pkt) && evalPred(P->rhs(), Pkt);
  case Pred::Kind::Or:
    return evalPred(P->lhs(), Pkt) || evalPred(P->rhs(), Pkt);
  case Pred::Kind::Not:
    return !evalPred(P->negand(), Pkt);
  }
  return false;
}

PacketSet netkat::evalPolicy(const PolicyRef &P, const Packet &Pkt) {
  switch (P->kind()) {
  case Policy::Kind::Filter:
    if (evalPred(P->pred(), Pkt))
      return {Pkt};
    return {};
  case Policy::Kind::Mod: {
    Packet Out = Pkt;
    Out.set(P->modField(), P->modValue());
    return {Out};
  }
  case Policy::Kind::Union: {
    PacketSet Out = evalPolicy(P->lhs(), Pkt);
    PacketSet R = evalPolicy(P->rhs(), Pkt);
    Out.insert(R.begin(), R.end());
    return Out;
  }
  case Policy::Kind::Seq:
    return evalPolicy(P->rhs(), evalPolicy(P->lhs(), Pkt));
  case Policy::Kind::Star: {
    // Least fixpoint of S = {Pkt} ∪ body(S); terminates because the set
    // of reachable packets under finitely many writes is finite.
    PacketSet Acc = {Pkt};
    PacketSet Frontier = Acc;
    while (!Frontier.empty()) {
      PacketSet Next;
      for (const Packet &Q : Frontier)
        for (const Packet &R : evalPolicy(P->body(), Q))
          if (!Acc.count(R))
            Next.insert(R);
      Acc.insert(Next.begin(), Next.end());
      Frontier = std::move(Next);
    }
    return Acc;
  }
  case Policy::Kind::Link: {
    Location Src = P->linkSrc();
    if (Pkt.sw() != Src.Sw || Pkt.pt() != Src.Pt)
      return {};
    Packet Out = Pkt;
    Out.setLoc(P->linkDst());
    return {Out};
  }
  }
  return {};
}

PacketSet netkat::evalPolicy(const PolicyRef &P, const PacketSet &Pkts) {
  PacketSet Out;
  for (const Packet &Pkt : Pkts) {
    PacketSet R = evalPolicy(P, Pkt);
    Out.insert(R.begin(), R.end());
  }
  return Out;
}
