//===- netkat/Packet.h - Packet and located-packet model --------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The packet model from Section 2 of the paper: a packet is a record of
/// numeric fields {f1; ...; fn}, and a located packet is a packet paired
/// with a location sw:pt. Following the standard NetKAT treatment, the
/// location is stored as two reserved fields ("sw" and "pt", see
/// support/Symbols.h), which lets the evaluator and the FDD compiler treat
/// location tests/updates uniformly with header fields.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_NETKAT_PACKET_H
#define EVENTNET_NETKAT_PACKET_H

#include "support/Ids.h"
#include "support/Symbols.h"

#include <string>
#include <vector>

namespace eventnet {
namespace netkat {

/// A packet: a record of numeric fields, stored as a sorted (by FieldId)
/// vector of (field, value) pairs. Sortedness makes equality, ordering,
/// and hashing structural, which the evaluator's packet sets rely on.
class Packet {
public:
  Packet() = default;

  /// Builds a packet from unsorted (field, value) pairs. Later duplicates
  /// overwrite earlier ones.
  explicit Packet(const std::vector<std::pair<FieldId, Value>> &Fields);

  /// Returns true if field \p F is present.
  bool has(FieldId F) const;

  /// Returns the value of field \p F; asserts that it is present.
  Value get(FieldId F) const;

  /// Returns the value of field \p F, or \p Default if absent.
  Value getOr(FieldId F, Value Default) const;

  /// Sets field \p F to \p V (pkt[f <- n] in the paper).
  void set(FieldId F, Value V);

  /// Removes field \p F if present.
  void erase(FieldId F);

  /// Location accessors (reserved sw/pt fields).
  SwitchId sw() const { return static_cast<SwitchId>(get(FieldSw)); }
  PortId pt() const { return static_cast<PortId>(get(FieldPt)); }
  Location loc() const { return Location{sw(), pt()}; }
  void setLoc(Location L) {
    set(FieldSw, static_cast<Value>(L.Sw));
    set(FieldPt, static_cast<Value>(L.Pt));
  }

  /// All fields, sorted by FieldId.
  const std::vector<std::pair<FieldId, Value>> &fields() const {
    return Fields;
  }

  /// Renders e.g. "{sw=1, pt=2, ip_dst=4}".
  std::string str() const;

  friend bool operator==(const Packet &A, const Packet &B) {
    return A.Fields == B.Fields;
  }
  friend bool operator!=(const Packet &A, const Packet &B) {
    return !(A == B);
  }
  friend bool operator<(const Packet &A, const Packet &B) {
    return A.Fields < B.Fields;
  }

  size_t hash() const;

private:
  std::vector<std::pair<FieldId, Value>> Fields;
};

/// Builds a located packet: header fields plus a location.
Packet makePacket(Location L,
                  const std::vector<std::pair<FieldId, Value>> &Hdr);

} // namespace netkat
} // namespace eventnet

template <> struct std::hash<eventnet::netkat::Packet> {
  size_t operator()(const eventnet::netkat::Packet &P) const {
    return P.hash();
  }
};

#endif // EVENTNET_NETKAT_PACKET_H
