//===- api/Status.cpp - Structured error propagation ----------------------===//

#include "api/Status.h"

using namespace eventnet;
using namespace eventnet::api;

const char *api::codeName(Code C) {
  switch (C) {
  case Code::Ok:
    return "ok";
  case Code::InvalidArgument:
    return "invalid-argument";
  case Code::IoError:
    return "io-error";
  case Code::ParseError:
    return "parse-error";
  case Code::TopoError:
    return "topology-error";
  case Code::CompileError:
    return "compile-error";
  case Code::RunError:
    return "run-error";
  case Code::ConsistencyViolation:
    return "consistency-violation";
  case Code::Internal:
    return "internal";
  case Code::DropAuditFailure:
    return "drop-audit-failure";
  }
  return "unknown";
}

std::string Status::str() const {
  if (ok())
    return "ok";
  return std::string(codeName(C)) + ": " + Message;
}

int Status::exitCode() const {
  switch (C) {
  case Code::Ok:
    return 0;
  case Code::InvalidArgument:
    return 2;
  case Code::IoError:
    return 3;
  case Code::ParseError:
    return 4;
  case Code::TopoError:
    return 5;
  case Code::CompileError:
    return 6;
  case Code::RunError:
    return 7;
  case Code::ConsistencyViolation:
    return 8;
  case Code::Internal:
    return 9;
  case Code::DropAuditFailure:
    return 10;
  }
  return 9;
}
