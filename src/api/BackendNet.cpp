//===- api/BackendNet.cpp - "net" backend ---------------------------------===//
//
// The engine behind a real socket front-end: a net::Server event loop
// bridges loopback TCP/UDP clients to the engine's streaming surface,
// and the shared workload is replayed by in-process clients that speak
// the sim/Wire.h framing — every injection crosses a real socket, the
// session layer, the delivery ring, and comes back as a framed echo.
// The engine-side counters land in the uniform RunReport shape; the
// socket layer's land in RunReport::Net.
//
//===----------------------------------------------------------------------===//

#include "api/Run.h"

#include "api/StreamCollect.h"
#include "engine/Engine.h"
#include "engine/Partition.h"
#include "net/Poller.h"
#include "net/Server.h"
#include "net/Session.h"
#include "net/Socket.h"
#include "obs/Histogram.h"
#include "sim/Wire.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>
#include <unordered_map>

#include <sys/socket.h>
#include <unistd.h>

using namespace eventnet;
using namespace eventnet::api;
using sim::WireFrame;

namespace {

int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

//===----------------------------------------------------------------------===//
// Workload replay client
//===----------------------------------------------------------------------===//

struct ReplayResult {
  uint64_t Connected = 0;
  uint64_t Delivers = 0; ///< Deliver frames received (any kind)
  uint64_t Replies = 0;  ///< of those, echo replies
  uint64_t Errors = 0;   ///< connect failures + protocol errors
  bool TimedOut = false;
  bool Stopped = false; ///< aborted by the caller's stop flag
  obs::HistogramSnapshot RttNs;
};

/// Replays a phase-structured workload through sockets: every injection
/// becomes an Inject frame on one of N connections, each phase is fenced
/// with a Barrier on every connection, and the next phase starts only
/// after every ack — the socket analogue of the engine backend's
/// quiescence-separated phases.
class ReplayClient : public net::Session::FrameHandler {
public:
  ReplayClient(const engine::Workload &W, uint16_t Port, bool Udp,
               unsigned NumConns, const std::atomic<bool> *Stop)
      : Port(Port), Udp(Udp), Stop(Stop) {
    Conns.resize(std::max(1u, NumConns));
    for (Conn &C : Conns)
      C.PhaseFrames.resize(W.Phases.size());
    for (size_t P = 0; P != W.Phases.size(); ++P) {
      const auto &Inj = W.Phases[P].Injections;
      for (size_t I = 0; I != Inj.size(); ++I) {
        const netkat::Packet &H = Inj[I].Header;
        WireFrame F;
        F.T = WireFrame::Inject;
        F.A = static_cast<uint32_t>(H.getOr(sim::ipSrcField(), Inj[I].From));
        F.B = static_cast<uint32_t>(H.getOr(sim::ipDstField(), 0));
        F.Kind = static_cast<uint32_t>(H.getOr(sim::kindField(), 0));
        F.Seq = static_cast<uint64_t>(H.getOr(sim::seqField(), 0));
        Conns[I % Conns.size()].PhaseFrames[P].push_back(F);
      }
    }
  }

  ReplayResult run();

private:
  struct Conn {
    net::Fd Sock;
    std::unique_ptr<net::Session> S;
    std::vector<std::vector<WireFrame>> PhaseFrames;
    uint64_t SentFrames = 0; ///< cumulative, the Barrier fence value
    bool Connected = false;
    bool Ready = false; ///< HelloAck seen
    bool BarrierAcked = false;
    int64_t BarrierSentNs = 0; ///< last fence post (UDP retransmission)
    bool ByeSent = false;
    bool Dead = false;
    bool WriteArmed = false;
    /// In-flight echo requests: seq -> send time.
    std::unordered_map<uint64_t, int64_t> Inflight;
  };

  bool onFrame(net::Session &S, const WireFrame &F) override;
  void startPhase();
  void repostBarriers();
  void maybeAdvance();
  void flush(size_t Idx);
  void teardown(size_t Idx);
  void handleEvent(const net::Ready &Ev);

  uint16_t Port;
  bool Udp;
  const std::atomic<bool> *Stop;
  net::Poller Poll;
  obs::LogHistogram Rtt;
  std::vector<Conn> Conns;
  ReplayResult R;
  size_t Phase = 0;
  bool PhaseRunning = false;
  bool AllDone = false;
};

bool ReplayClient::onFrame(net::Session &S, const WireFrame &F) {
  Conn &C = Conns[S.conn()];
  switch (F.T) {
  case WireFrame::HelloAck:
    S.open();
    C.Ready = true;
    return true;
  case WireFrame::Deliver: {
    ++R.Delivers;
    if (F.Kind != static_cast<uint32_t>(sim::KindReply))
      return true;
    ++R.Replies;
    auto It = C.Inflight.find(F.Seq);
    if (It != C.Inflight.end()) {
      Rtt.record(static_cast<uint64_t>(
          std::max<int64_t>(0, nowNs() - It->second)));
      C.Inflight.erase(It);
    }
    return true;
  }
  case WireFrame::BarrierAck:
    if (F.Seq > C.SentFrames)
      return false; // a fence we never posted
    if (C.BarrierAcked || F.Seq != C.SentFrames)
      return true; // duplicate or stale ack (UDP fence retransmission)
    C.BarrierAcked = true;
    return true;
  default:
    return false;
  }
}

void ReplayClient::startPhase() {
  PhaseRunning = true;
  int64_t Now = nowNs();
  for (size_t I = 0; I != Conns.size(); ++I) {
    Conn &C = Conns[I];
    if (C.Dead)
      continue;
    C.BarrierAcked = false;
    for (const WireFrame &F : C.PhaseFrames[Phase]) {
      C.S->enqueue(F);
      ++C.SentFrames;
      if (F.Kind == static_cast<uint32_t>(sim::KindRequest))
        C.Inflight.emplace(F.Seq, Now);
    }
    WireFrame B;
    B.T = WireFrame::Barrier;
    B.Seq = C.SentFrames; // fence: cumulative injects so far
    C.S->enqueue(B);
    C.BarrierSentNs = Now;
    flush(I);
  }
}

/// UDP only: the fence or its ack can drown in the delivery flood the
/// fenced traffic provoked. The Barrier is idempotent server-side and
/// stale acks are ignored in onFrame, so post it again periodically.
void ReplayClient::repostBarriers() {
  if (!Udp || AllDone || !PhaseRunning)
    return;
  int64_t Now = nowNs();
  for (size_t I = 0; I != Conns.size(); ++I) {
    Conn &C = Conns[I];
    if (C.Dead || C.BarrierAcked || C.ByeSent ||
        Now - C.BarrierSentNs <= 100 * 1000000)
      continue;
    WireFrame B;
    B.T = WireFrame::Barrier;
    B.Seq = C.SentFrames;
    C.S->enqueue(B);
    C.BarrierSentNs = Now;
    flush(I);
  }
}

void ReplayClient::maybeAdvance() {
  if (AllDone)
    return;
  if (!PhaseRunning) {
    // Handshake stage: wait for every live connection's HelloAck so the
    // server has assigned hosts before any traffic flows.
    for (const Conn &C : Conns)
      if (!C.Dead && !C.Ready)
        return;
    startPhase();
    return;
  }
  for (const Conn &C : Conns)
    if (!C.Dead && !C.BarrierAcked)
      return;
  if (Phase + 1 < Conns.front().PhaseFrames.size()) {
    ++Phase;
    startPhase();
    return;
  }
  AllDone = true;
  for (size_t I = 0; I != Conns.size(); ++I) {
    Conn &C = Conns[I];
    if (C.Dead)
      continue;
    WireFrame Bye;
    Bye.T = WireFrame::Bye;
    C.S->enqueue(Bye);
    C.ByeSent = true;
    flush(I);
  }
}

void ReplayClient::flush(size_t Idx) {
  Conn &C = Conns[Idx];
  if (C.Dead || !C.Connected)
    return;
  net::Session &S = *C.S;
  for (;;) {
    S.fillTx();
    size_t Pend = S.txPending();
    if (Pend == 0)
      break;
    ssize_t N;
    if (Udp) {
      size_t Chunk = std::min<size_t>(Pend, 48 * sim::WireFrameBytes);
      Chunk -= Chunk % sim::WireFrameBytes;
      N = ::send(C.Sock.get(), S.txData(), Chunk, 0);
    } else {
      N = ::write(C.Sock.get(), S.txData(), Pend);
    }
    if (N > 0) {
      S.txConsume(static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    ++R.Errors;
    teardown(Idx);
    return;
  }
  bool Want = S.wantsWrite();
  if (Want != C.WriteArmed) {
    Poll.mod(C.Sock.get(), Idx, /*Read=*/true, /*Write=*/Want);
    C.WriteArmed = Want;
  }
  if (C.ByeSent && !Want)
    teardown(Idx); // clean completion
}

void ReplayClient::teardown(size_t Idx) {
  Conn &C = Conns[Idx];
  if (C.Dead)
    return;
  if (C.Sock.valid())
    Poll.del(C.Sock.get());
  C.Sock.reset();
  C.Dead = true;
}

void ReplayClient::handleEvent(const net::Ready &Ev) {
  size_t Idx = static_cast<size_t>(Ev.Token);
  if (Idx >= Conns.size())
    return;
  Conn &C = Conns[Idx];
  if (C.Dead)
    return;
  if (Ev.Writable && !C.Connected) {
    int SoErr = 0;
    socklen_t Len = sizeof(SoErr);
    ::getsockopt(C.Sock.get(), SOL_SOCKET, SO_ERROR, &SoErr, &Len);
    if (SoErr != 0) {
      ++R.Errors;
      teardown(Idx);
      return;
    }
    C.Connected = true;
    ++R.Connected;
    WireFrame Hello;
    Hello.T = WireFrame::Hello;
    Hello.A = sim::WireProtoVersion;
    Hello.Seq = Idx;
    C.S->enqueue(Hello);
  }
  if (Ev.Readable) {
    uint8_t Buf[65536];
    for (int Round = 0; Round != 8; ++Round) {
      ssize_t N = ::read(C.Sock.get(), Buf, sizeof(Buf));
      if (N > 0) {
        if (!C.S->ingest(Buf, static_cast<size_t>(N), *this)) {
          ++R.Errors;
          teardown(Idx);
          return;
        }
        if (static_cast<size_t>(N) < sizeof(Buf))
          break;
        continue;
      }
      if (N == 0) {
        if (!C.ByeSent)
          ++R.Errors;
        teardown(Idx);
        return;
      }
      break; // EAGAIN
    }
  }
  if (Ev.Error) {
    if (!C.ByeSent)
      ++R.Errors;
    teardown(Idx);
    return;
  }
  if (C.S && C.S->wantsWrite())
    flush(Idx);
}

ReplayResult ReplayClient::run() {
  net::raiseFdLimit();
  int64_t Deadline = nowNs() + int64_t(120) * 1000000000;
  for (size_t I = 0; I != Conns.size(); ++I) {
    Conn &C = Conns[I];
    std::string Err;
    int Fd = Udp ? net::connectUdp("127.0.0.1", Port, Err)
                 : net::connectTcp("127.0.0.1", Port, Err);
    if (Fd < 0) {
      ++R.Errors;
      C.Dead = true;
      continue;
    }
    C.Sock.reset(Fd);
    net::SessionConfig SC;
    SC.Role = net::SessionRole::Client;
    C.S = std::make_unique<net::Session>(I, SC);
    Poll.add(Fd, I, /*Read=*/true, /*Write=*/true);
    C.WriteArmed = true;
  }

  std::vector<net::Ready> Events;
  for (;;) {
    bool AnyAlive = false;
    for (const Conn &C : Conns)
      if (!C.Dead) {
        AnyAlive = true;
        break;
      }
    if (!AnyAlive)
      break;
    if (Stop && Stop->load(std::memory_order_relaxed)) {
      R.Stopped = true;
      break;
    }
    if (nowNs() > Deadline) {
      R.TimedOut = true;
      break;
    }
    maybeAdvance();
    repostBarriers();
    int N = Poll.wait(Events, 1);
    for (int I = 0; I < N; ++I)
      handleEvent(Events[static_cast<size_t>(I)]);
  }
  for (size_t I = 0; I != Conns.size(); ++I)
    teardown(I);
  R.RttNs = Rtt.snapshot();
  return R;
}

//===----------------------------------------------------------------------===//
// Backend
//===----------------------------------------------------------------------===//

LatencyReport toReport(const engine::LatencyDigest &D) {
  return {D.Samples, D.MeanSec, D.P50Sec, D.P90Sec, D.P99Sec, D.MaxSec};
}

/// Streaming-check knobs shared by the run backend and serveNet.
consistency::StreamOptions streamOptions(const RunOptions &O) {
  consistency::StreamOptions SO;
  SO.Window = std::max<size_t>(1, O.CheckWindow);
  // Quiet-horizon retirement must outlast fault-plan delays and deep
  // shard backlogs (ticket gaps), or healthy chains get cut.
  SO.QuietHorizon = std::max<uint64_t>(8192, SO.Window / 2);
  return SO;
}

/// Engine-side report fields shared by the run backend and serveNet:
/// counters, latency digests, fault summary, obs trace, network trace.
void fillEngineSide(RunReport &R, engine::Engine &E, unsigned Shards,
                    engine::OverloadPolicy Overload, bool FaultsEnabled) {
  engine::Stats S = E.stats();
  R.Shards = Shards;
  R.Classifier = S.ClassifierPath;
  R.Batch = S.BatchSize;
  R.Partition = engine::partitionStrategyName(S.Partition.Strategy);
  R.EdgeCut = S.Partition.CutWeight;
  R.EdgeTotal = S.Partition.TotalWeight;
  R.Overload = engine::overloadPolicyName(Overload);
  for (const engine::ShardStats &SS : S.Shards)
    R.ShardDetail.push_back({SS.PacketsProcessed, SS.QueueHighWater,
                             SS.Dropped, SS.Transitions, SS.Switches,
                             SS.Shed});
  R.PacketsInjected = S.PacketsInjected;
  R.PacketsDelivered = S.PacketsDelivered;
  R.PacketsDropped = S.PacketsDropped;
  R.SwitchHops = S.PacketsProcessed;
  R.EventsDetected = S.EventsDetected;
  R.ConfigTransitions = S.ConfigTransitions;
  R.ElapsedSec = S.ElapsedSec;
  R.UpdateLatency = toReport(S.Transition);
  R.QueueDwell = toReport(S.QueueDwell);
  R.BatchOccupancy = toReport(S.BatchOccupancy);
  R.TraceRecorded = S.TraceRecorded;
  R.TraceDropped = S.TraceDropped;
  if (FaultsEnabled) {
    R.Faults.Enabled = true;
    R.Faults.Drops = S.FaultDrops;
    R.Faults.Dups = S.FaultDups;
    R.Faults.Delays = S.FaultDelays;
    R.Faults.Shed = S.FaultSheds;
    R.Faults.Stalls = S.FaultStalls;
    R.Faults.Storms = S.FaultStorms;
    R.Faults.DupDelivered = S.DupDelivered;
    R.Faults.DupDropped = S.DupDropped;
    faults::FaultLedger L = E.takeFaultLedger();
    R.Faults.LedgerEntries = L.Records.size();
    R.Faults.Ledger = L.canonical();
    R.FaultCtx.ExcusedEntries = std::move(L.ExcusedEntries);
    R.FaultCtx.DupEntries = std::move(L.DupEntries);
  }
  R.ObsTrace = E.takeObsTrace();
  R.Trace = E.takeTrace();
}

/// Socket-side report fields from the server's counter snapshot.
void fillNetSide(NetReport &N, const net::ServerStats &NS, bool Udp) {
  N.Enabled = true;
  N.Poller = net::Poller::backendName();
  N.Udp = Udp;
  N.Accepted = NS.Accepted;
  N.Closed = NS.Closed;
  N.ProtocolErrors = NS.ProtocolErrors;
  N.FramesIn = NS.FramesIn;
  N.FramesOut = NS.FramesOut;
  N.BytesIn = NS.BytesIn;
  N.BytesOut = NS.BytesOut;
  N.FramesInjected = NS.FramesInjected;
  N.DeliveryFrames = NS.DeliveryFrames;
  N.RepliesOut = NS.RepliesOut;
  N.ReassemblyPartial = NS.ReassemblyPartial;
  N.BackpressureShed = NS.BackpressureShed;
  N.RingShed = NS.RingShed;
  N.DeliveryUnroutable = NS.DeliveryUnroutable;
  N.NonNetDeliveries = NS.NonNetDeliveries;
  N.BarriersAcked = NS.BarriersAcked;
  N.UdpDatagrams = NS.UdpDatagrams;
}

LatencyReport rttReport(const obs::HistogramSnapshot &H) {
  LatencyReport L;
  L.Samples = H.TotalCount;
  L.MeanSec = H.mean() * 1e-9;
  L.P50Sec = static_cast<double>(H.percentile(0.5)) * 1e-9;
  L.P90Sec = static_cast<double>(H.percentile(0.9)) * 1e-9;
  L.P99Sec = static_cast<double>(H.percentile(0.99)) * 1e-9;
  L.MaxSec = static_cast<double>(H.Max) * 1e-9;
  return L;
}

class NetBackend : public Backend {
public:
  const char *name() const override { return "net"; }

  Result<RunReport> execute(const Compilation &C, const RunOptions &O,
                            const engine::Workload &W) override {
    if (O.Shards < 1 || O.Shards > 1024)
      return Status::error(Code::InvalidArgument,
                           "shards must be in [1, 1024], got " +
                               std::to_string(O.Shards));
    if (O.NetConnections < 1 || O.NetConnections > (1u << 16))
      return Status::error(Code::InvalidArgument,
                           "net connections must be in [1, 65536], got " +
                               std::to_string(O.NetConnections));
    auto Strategy = engine::parsePartitionStrategy(O.Partition);
    if (!Strategy)
      return Status::error(Code::InvalidArgument,
                           "unknown partition strategy '" + O.Partition +
                               "' (known: modulo, contiguous, refined)");
    auto Overload = engine::parseOverloadPolicy(O.Overload);
    if (!Overload)
      return Status::error(Code::InvalidArgument,
                           "unknown overload policy '" + O.Overload +
                               "' (known: block, shed-oldest, shed-newest)");
    std::optional<faults::Injector> Inj;
    if (O.Faults && O.Faults->enabled())
      Inj.emplace(*O.Faults);

    net::ServerConfig SC;
    SC.BindAddr = "127.0.0.1";
    SC.Port = 0; // ephemeral; never collides with a parallel test
    SC.EnableUdp = O.NetUdp;
    SC.Session.Overload = *Overload;
    net::Server Srv(SC);
    std::string Err;
    if (!Srv.open(Err))
      return Status::error(Code::RunError, "net backend: " + Err);

    engine::EngineConfig Cfg;
    Cfg.NumShards = O.Shards;
    Cfg.UseClassifier = O.Classifier;
    Cfg.BatchSize = O.Batch;
    Cfg.Partition = *Strategy;
    Cfg.LatencyHistograms = O.LatencyHistograms;
    Cfg.TraceEventCapacity = O.TraceCapacity;
    Cfg.Overload = *Overload;
    Cfg.DeliverySink = Srv.deliverySink();
    Cfg.StreamTrace = O.StreamingCheck;
    Cfg.RecordTrace = !O.StreamingCheck || O.CheckDifferential;
    if (Inj)
      Cfg.Faults = &*Inj;
    engine::Engine E(C.structure(), C.topology(), Cfg);
    consistency::StreamOptions SO = streamOptions(O);
    std::optional<detail::StreamCollector> Col;
    if (O.StreamingCheck)
      Col.emplace(E, C.structure(), C.topology(), SO);
    Srv.attach(E);
    E.start();

    // The replay clients run on their own thread; the server loop owns
    // this one. The clients request the server's shutdown when the last
    // connection has said Bye (or the caller's stop flag fires).
    std::atomic<bool> StopServe{false};
    ReplayClient Client(W, Srv.port(), O.NetUdp, O.NetConnections,
                        O.StopFlag);
    ReplayResult RR;
    std::thread ClientThread([&] {
      RR = Client.run();
      StopServe.store(true, std::memory_order_release);
    });
    Srv.serve(StopServe);
    ClientThread.join();
    E.finish();

    RunReport R;
    fillEngineSide(R, E, O.Shards, *Overload, Inj.has_value());
    if (Col) {
      R.StreamCheck.Enabled = true;
      R.StreamCheck.Window = SO.Window;
      R.StreamCheck.Result = Col->finalize(R.TraceDropped);
      R.StreamCheck.StreamShed = Col->lagShed();
    }
    fillNetSide(R.Net, Srv.stats(), O.NetUdp);
    R.Net.Port = Srv.port();
    R.Net.Connections = RR.Connected;
    R.Net.ProtocolErrors += RR.Errors;
    R.Net.ClientDelivers = RR.Delivers;
    R.Net.ClientReplies = RR.Replies;
    R.Net.Rtt = rttReport(RR.RttNs);

    if (RR.TimedOut)
      return Status::error(Code::RunError,
                           "net backend: workload replay timed out");
    return R;
  }
};

} // namespace

namespace eventnet {
namespace api {

std::unique_ptr<Backend> makeNetBackend() {
  return std::make_unique<NetBackend>();
}

Result<RunReport> serveNet(const Compilation &C, const RunOptions &O,
                           const ServeNetOptions &S) {
  if (O.Shards < 1 || O.Shards > 1024)
    return Status::error(Code::InvalidArgument,
                         "shards must be in [1, 1024], got " +
                             std::to_string(O.Shards));
  auto Strategy = engine::parsePartitionStrategy(O.Partition);
  if (!Strategy)
    return Status::error(Code::InvalidArgument,
                         "unknown partition strategy '" + O.Partition + "'");
  auto Overload = engine::parseOverloadPolicy(O.Overload);
  if (!Overload)
    return Status::error(Code::InvalidArgument,
                         "unknown overload policy '" + O.Overload + "'");
  std::optional<faults::Injector> Inj;
  if (O.Faults && O.Faults->enabled())
    Inj.emplace(*O.Faults);

  net::ServerConfig SC;
  SC.BindAddr = S.BindAddr;
  SC.Port = S.Port;
  SC.EnableUdp = S.Udp;
  SC.Session.Overload = *Overload;
  net::Server Srv(SC);
  std::string Err;
  if (!Srv.open(Err))
    return Status::error(Code::RunError, "serve: " + Err);
  net::raiseFdLimit();
  if (S.OnListening)
    S.OnListening(Srv.port());

  engine::EngineConfig Cfg;
  Cfg.NumShards = O.Shards;
  Cfg.UseClassifier = O.Classifier;
  Cfg.BatchSize = O.Batch;
  Cfg.Partition = *Strategy;
  Cfg.LatencyHistograms = O.LatencyHistograms;
  Cfg.TraceEventCapacity = O.TraceCapacity;
  Cfg.Overload = *Overload;
  Cfg.DeliverySink = Srv.deliverySink();
  Cfg.StreamTrace = O.StreamingCheck;
  Cfg.RecordTrace = !O.StreamingCheck || O.CheckDifferential;
  if (Inj)
    Cfg.Faults = &*Inj;
  engine::Engine E(C.structure(), C.topology(), Cfg);
  consistency::StreamOptions SO = streamOptions(O);
  std::optional<api::detail::StreamCollector> Col;
  if (O.StreamingCheck)
    Col.emplace(E, C.structure(), C.topology(), SO);
  Srv.attach(E);
  E.start();

  // Without a stop flag the loop runs until the process dies; with one
  // (net/Signal.h) a SIGINT/SIGTERM drains sessions and the engine
  // before we get here. A duration composes with the flag: a watchdog
  // thread trips the serve loop at the deadline or when the caller's
  // flag fires, whichever is first — the soak harness's bounded-run
  // mode.
  static const std::atomic<bool> Never{false};
  const std::atomic<bool> &UserStop = O.StopFlag ? *O.StopFlag : Never;
  if (S.DurationSec > 0) {
    std::atomic<bool> StopServe{false};
    std::thread Watchdog([&] {
      auto Deadline = std::chrono::steady_clock::now() +
                      std::chrono::seconds(S.DurationSec);
      while (std::chrono::steady_clock::now() < Deadline &&
             !UserStop.load(std::memory_order_relaxed))
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      StopServe.store(true, std::memory_order_release);
    });
    Srv.serve(StopServe);
    Watchdog.join();
  } else {
    Srv.serve(UserStop);
  }
  E.finish();

  RunReport R;
  R.Backend = "net";
  R.Seed = O.Seed;
  fillEngineSide(R, E, O.Shards, *Overload, Inj.has_value());
  if (Col) {
    R.StreamCheck.Enabled = true;
    R.StreamCheck.Window = SO.Window;
    R.StreamCheck.Result = Col->finalize(R.TraceDropped);
    R.StreamCheck.StreamShed = Col->lagShed();
  }
  fillNetSide(R.Net, Srv.stats(), S.Udp);
  R.Net.Port = Srv.port();
  R.Net.Connections = R.Net.Accepted;

  DropAudit &A = R.Audit;
  A.Injected = R.PacketsInjected;
  A.Delivered = R.PacketsDelivered;
  A.Dropped = R.PacketsDropped;
  uint64_t EffDelivered = A.Delivered > R.Faults.DupDelivered
                              ? A.Delivered - R.Faults.DupDelivered
                              : 0;
  uint64_t EffDropped =
      A.Dropped > R.Faults.DupDropped ? A.Dropped - R.Faults.DupDropped : 0;
  uint64_t Accounted = EffDelivered + EffDropped;
  A.SilentLoss = A.Injected > Accounted ? A.Injected - Accounted : 0;
  A.Ok = A.SilentLoss == 0;

  // Streaming-only runs keep no merged trace (the batch replay would
  // pass vacuously); in differential mode both run and are compared.
  if (O.CheckConsistency && (!R.StreamCheck.Enabled || O.CheckDifferential)) {
    R.Checked = true;
    R.Consistency = consistency::checkAgainstNes(
        R.Trace, C.topology(), C.structure(),
        R.Faults.Enabled ? &R.FaultCtx : nullptr);
    if (R.StreamCheck.Enabled) {
      R.StreamCheck.DifferentialRan = true;
      if (R.StreamCheck.Result.Verdict !=
          consistency::StreamVerdict::Inconclusive)
        R.StreamCheck.DifferentialMatched =
            R.StreamCheck.Result.ok() == R.Consistency.Correct;
    }
  }
  return R;
}

} // namespace api
} // namespace eventnet
