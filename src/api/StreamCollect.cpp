//===- api/StreamCollect.cpp - Live trace collector ------------------------===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//

#include "api/StreamCollect.h"

#include <chrono>

using namespace eventnet;
using namespace eventnet::api::detail;

StreamCollector::StreamCollector(engine::Engine &E, const nes::Nes &N,
                                 const topo::Topology &Topo,
                                 consistency::StreamOptions SO)
    : E(E), Chk(N, Topo, SO) {
  Th = std::thread([this] { loop(); });
}

StreamCollector::~StreamCollector() {
  Stop.store(true, std::memory_order_release);
  if (Th.joinable())
    Th.join();
}

void StreamCollector::feed(std::vector<engine::Engine::StreamItem> &Buf) {
  for (const engine::Engine::StreamItem &It : Buf) {
    if (It.K == engine::Engine::StreamItem::Excuse)
      Chk.feedExcuse(It.Ticket);
    else
      Chk.feedEntry(It.Ticket, It.Parent, It.Lp, It.IsDelivery, It.IsDup);
  }
}

void StreamCollector::loop() {
  std::vector<engine::Engine::StreamItem> Buf;
  bool SawGap = false;
  while (!Stop.load(std::memory_order_acquire)) {
    Buf.clear();
    uint64_t W = E.drainTraceStream(Buf);
    // The gap must be declared before feeding anything logged after it:
    // from the first shed item on, the checker may only degrade, never
    // report a violation a truncated chain could have faked.
    if (!SawGap && E.streamLagShed() > 0) {
      SawGap = true;
      Chk.noteGap("stream_backlog");
    }
    feed(Buf);
    if (W > 0)
      Chk.advance(W - 1);
    if (Buf.empty())
      std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

consistency::StreamResult
StreamCollector::finalize(uint64_t TraceDropped) {
  Stop.store(true, std::memory_order_release);
  if (Th.joinable())
    Th.join();
  Finalized = true;
  // The workers have exited (watermarks at their terminal value); one
  // last drain picks up whatever the loop's final iteration raced past.
  std::vector<engine::Engine::StreamItem> Buf;
  E.drainTraceStream(Buf);
  feed(Buf);
  if (TraceDropped > 0)
    Chk.noteCause("trace_dropped");
  // Entries the shards shed because this collector lagged behind the
  // data path (EngineConfig::StreamBufCap): the checker saw a gappy
  // trace, so a clean pass would be a lie — and finish()'s strict
  // retirement must not mistake shed tails for violations (noteGap, not
  // just noteCause, before finishing).
  LagShed = E.streamLagShed();
  if (LagShed > 0)
    Chk.noteGap("stream_backlog");
  return Chk.finish();
}
