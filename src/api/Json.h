//===- api/Json.h - Minimal JSON emission helpers ---------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String escaping for the façade's hand-rolled JSON reports (the repo
/// deliberately has no JSON dependency; the emitted shapes are flat).
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_API_JSON_H
#define EVENTNET_API_JSON_H

#include <string>

namespace eventnet {
namespace api {

/// Escapes \p S for embedding in a JSON string literal.
inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace api
} // namespace eventnet

#endif // EVENTNET_API_JSON_H
