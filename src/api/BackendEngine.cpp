//===- api/BackendEngine.cpp - "engine" backend ---------------------------===//
//
// The sharded concurrent engine behind the façade's Backend interface:
// construct an engine with the requested shard count, execute the shared
// workload phase by phase, and translate engine::Stats into the uniform
// RunReport shape.
//
//===----------------------------------------------------------------------===//

#include "api/Run.h"

#include "api/StreamCollect.h"
#include "engine/Engine.h"
#include "engine/Partition.h"
#include "obs/Metrics.h"
#include "obs/Sampler.h"

#include <fstream>
#include <iostream>

using namespace eventnet;
using namespace eventnet::api;

namespace {

LatencyReport toReport(const engine::LatencyDigest &D) {
  return {D.Samples, D.MeanSec, D.P50Sec, D.P90Sec, D.P99Sec, D.MaxSec};
}

class EngineBackend : public Backend {
public:
  const char *name() const override { return "engine"; }

  Result<RunReport> execute(const Compilation &C, const RunOptions &O,
                            const engine::Workload &W) override {
    if (O.Shards < 1 || O.Shards > 1024)
      return Status::error(Code::InvalidArgument,
                           "shards must be in [1, 1024], got " +
                               std::to_string(O.Shards));
    auto Strategy = engine::parsePartitionStrategy(O.Partition);
    if (!Strategy)
      return Status::error(Code::InvalidArgument,
                           "unknown partition strategy '" + O.Partition +
                               "' (known: modulo, contiguous, refined)");
    auto Overload = engine::parseOverloadPolicy(O.Overload);
    if (!Overload)
      return Status::error(Code::InvalidArgument,
                           "unknown overload policy '" + O.Overload +
                               "' (known: block, shed-oldest, shed-newest)");
    std::optional<faults::Injector> Inj;
    if (O.Faults && O.Faults->enabled())
      Inj.emplace(*O.Faults);

    engine::EngineConfig Cfg;
    Cfg.NumShards = O.Shards;
    Cfg.UseClassifier = O.Classifier;
    Cfg.BatchSize = O.Batch;
    Cfg.Partition = *Strategy;
    Cfg.LatencyHistograms = O.LatencyHistograms;
    Cfg.TraceEventCapacity = O.TraceCapacity;
    Cfg.Overload = *Overload;
    // Streaming verification trades the O(run) merged trace for the
    // O(window) online checker; differential mode keeps both so the two
    // verdicts can be compared.
    Cfg.StreamTrace = O.StreamingCheck;
    Cfg.RecordTrace = !O.StreamingCheck || O.CheckDifferential;
    if (Inj)
      Cfg.Faults = &*Inj;
    engine::Engine E(C.structure(), C.topology(), Cfg);

    consistency::StreamOptions SO;
    SO.Window = std::max<size_t>(1, O.CheckWindow);
    // Quiet-horizon retirement must outlast fault-plan delays and deep
    // shard backlogs (ticket gaps), or healthy chains get cut.
    SO.QuietHorizon = std::max<uint64_t>(8192, SO.Window / 2);
    std::optional<detail::StreamCollector> Col;
    if (O.StreamingCheck)
      Col.emplace(E, C.structure(), C.topology(), SO);

    // Optional periodic metrics sampler: JSON-lines counter snapshots to
    // a file or stderr while the run is live.
    std::ofstream MetricsFile;
    std::unique_ptr<obs::MetricsSampler> Sampler;
    if (O.MetricsIntervalMs > 0) {
      std::ostream *Sink = &std::cerr;
      if (!O.MetricsPath.empty()) {
        MetricsFile.open(O.MetricsPath);
        if (!MetricsFile)
          return Status::error(Code::RunError,
                               "cannot open metrics path '" + O.MetricsPath +
                                   "'");
        Sink = &MetricsFile;
      }
      Sampler = std::make_unique<obs::MetricsSampler>(
          O.MetricsIntervalMs,
          [&E] { return obs::metricsJsonLine(E.stats()); }, *Sink);
      Sampler->start();
    }

    E.run(W);
    if (Sampler)
      Sampler->stop(); // emits one final post-run sample

    engine::Stats S = E.stats();
    RunReport R;
    R.Shards = O.Shards;
    R.Classifier = S.ClassifierPath;
    R.Batch = S.BatchSize;
    R.Partition = engine::partitionStrategyName(S.Partition.Strategy);
    R.EdgeCut = S.Partition.CutWeight;
    R.EdgeTotal = S.Partition.TotalWeight;
    R.Overload = engine::overloadPolicyName(*Overload);
    for (const engine::ShardStats &SS : S.Shards)
      R.ShardDetail.push_back(
          {SS.PacketsProcessed, SS.QueueHighWater, SS.Dropped,
           SS.Transitions, SS.Switches, SS.Shed});
    R.PacketsInjected = S.PacketsInjected;
    R.PacketsDelivered = S.PacketsDelivered;
    R.PacketsDropped = S.PacketsDropped;
    R.SwitchHops = S.PacketsProcessed;
    R.EventsDetected = S.EventsDetected;
    R.ConfigTransitions = S.ConfigTransitions;
    R.ElapsedSec = S.ElapsedSec;
    R.UpdateLatency = toReport(S.Transition);
    R.QueueDwell = toReport(S.QueueDwell);
    R.BatchOccupancy = toReport(S.BatchOccupancy);
    R.TraceRecorded = S.TraceRecorded;
    R.TraceDropped = S.TraceDropped;
    if (Inj) {
      R.Faults.Enabled = true;
      R.Faults.Drops = S.FaultDrops;
      R.Faults.Dups = S.FaultDups;
      R.Faults.Delays = S.FaultDelays;
      R.Faults.Shed = S.FaultSheds;
      R.Faults.Stalls = S.FaultStalls;
      R.Faults.Storms = S.FaultStorms;
      R.Faults.DupDelivered = S.DupDelivered;
      R.Faults.DupDropped = S.DupDropped;
    }
    // The checker context rides along even without a fault plan: a shed
    // overload policy retires chains under plain pressure, and those
    // tickets must be excusable for Definition 6 verification.
    faults::FaultLedger L = E.takeFaultLedger();
    if (Inj) {
      R.Faults.LedgerEntries = L.Records.size();
      R.Faults.Ledger = L.canonical();
    }
    R.FaultCtx.ExcusedEntries = std::move(L.ExcusedEntries);
    R.FaultCtx.DupEntries = std::move(L.DupEntries);
    R.ObsTrace = E.takeObsTrace();
    R.Trace = E.takeTrace();
    if (Col) {
      R.StreamCheck.Enabled = true;
      R.StreamCheck.Window = SO.Window;
      R.StreamCheck.Result = Col->finalize(S.TraceDropped);
      R.StreamCheck.StreamShed = Col->lagShed();
    }
    return R;
  }
};

} // namespace

namespace eventnet {
namespace api {
std::unique_ptr<Backend> makeEngineBackend() {
  return std::make_unique<EngineBackend>();
}
} // namespace api
} // namespace eventnet
