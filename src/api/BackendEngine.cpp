//===- api/BackendEngine.cpp - "engine" backend ---------------------------===//
//
// The sharded concurrent engine behind the façade's Backend interface:
// construct an engine with the requested shard count, execute the shared
// workload phase by phase, and translate engine::Stats into the uniform
// RunReport shape.
//
//===----------------------------------------------------------------------===//

#include "api/Run.h"

#include "engine/Engine.h"
#include "engine/Partition.h"

using namespace eventnet;
using namespace eventnet::api;

namespace {

class EngineBackend : public Backend {
public:
  const char *name() const override { return "engine"; }

  Result<RunReport> execute(const Compilation &C, const RunOptions &O,
                            const engine::Workload &W) override {
    if (O.Shards < 1 || O.Shards > 1024)
      return Status::error(Code::InvalidArgument,
                           "shards must be in [1, 1024], got " +
                               std::to_string(O.Shards));
    auto Strategy = engine::parsePartitionStrategy(O.Partition);
    if (!Strategy)
      return Status::error(Code::InvalidArgument,
                           "unknown partition strategy '" + O.Partition +
                               "' (known: modulo, contiguous, refined)");

    engine::EngineConfig Cfg;
    Cfg.NumShards = O.Shards;
    Cfg.UseClassifier = O.Classifier;
    Cfg.BatchSize = O.Batch;
    Cfg.Partition = *Strategy;
    engine::Engine E(C.structure(), C.topology(), Cfg);
    E.run(W);

    engine::Stats S = E.stats();
    RunReport R;
    R.Shards = O.Shards;
    R.Classifier = S.ClassifierPath;
    R.Batch = S.BatchSize;
    R.Partition = S.Partition.Strategy;
    R.EdgeCut = S.Partition.CutWeight;
    R.EdgeTotal = S.Partition.TotalWeight;
    for (const engine::ShardStats &SS : S.Shards)
      R.ShardDetail.push_back(
          {SS.PacketsProcessed, SS.QueueHighWater, SS.Dropped,
           SS.Transitions, SS.Switches});
    R.PacketsInjected = S.PacketsInjected;
    R.PacketsDelivered = S.PacketsDelivered;
    R.PacketsDropped = S.PacketsDropped;
    R.SwitchHops = S.PacketsProcessed;
    R.EventsDetected = S.EventsDetected;
    R.ConfigTransitions = S.ConfigTransitions;
    R.ElapsedSec = S.ElapsedSec;
    R.Trace = E.takeTrace();
    return R;
  }
};

} // namespace

namespace eventnet {
namespace api {
std::unique_ptr<Backend> makeEngineBackend() {
  return std::make_unique<EngineBackend>();
}
} // namespace api
} // namespace eventnet
