//===- api/Status.h - Structured error propagation --------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library-wide error type: a Status carries a failure class (Code)
/// plus a human-readable message, and Result<T> pairs a Status with the
/// value it gates. Every fallible entry point of the public surface —
/// the Stateful NetKAT parser, the topology parser, the NES pipeline,
/// and the api façade itself — returns these instead of bool-out-params
/// or stderr-and-exit, so callers (the CLI, tests, embedding programs)
/// can branch on the failure class and render the message however they
/// like. Each Code maps to a distinct process exit code for the CLI
/// (Status::exitCode).
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_API_STATUS_H
#define EVENTNET_API_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace eventnet {
namespace api {

/// Failure classes of the public surface. Keep exitCode() and codeName()
/// in sync when extending.
enum class Code {
  Ok = 0,
  /// Malformed request: bad option value, unknown backend, missing input.
  InvalidArgument,
  /// A file could not be read.
  IoError,
  /// The Stateful NetKAT program did not parse.
  ParseError,
  /// The topology description did not parse.
  TopoError,
  /// ETS/NES construction failed (including the locality restriction).
  CompileError,
  /// A backend failed to execute the workload.
  RunError,
  /// The recorded trace violated Definition 6.
  ConsistencyViolation,
  /// Anything else (default-constructed Result, internal invariants).
  Internal,
  /// The run's packet-conservation audit found silent loss and the
  /// caller asked to fail on it (eventnetc run --fail-on-drop).
  DropAuditFailure,
};

/// Stable lowercase identifier for a failure class ("parse-error", ...).
const char *codeName(Code C);

/// Outcome of a fallible operation.
class Status {
public:
  /// Default: success.
  Status() = default;

  static Status success() { return Status(); }
  static Status error(Code C, std::string Message) {
    assert(C != Code::Ok && "errors need a non-Ok code");
    Status S;
    S.C = C;
    S.Message = std::move(Message);
    return S;
  }

  bool ok() const { return C == Code::Ok; }
  Code code() const { return C; }
  const std::string &message() const { return Message; }

  /// "<code-name>: <message>", or "ok".
  std::string str() const;

  /// The CLI exit code for this failure class: 0 ok, 2 invalid-argument
  /// (usage-shaped), 3 io, 4 program parse, 5 topology parse, 6 compile,
  /// 7 run, 8 consistency violation, 9 internal, 10 drop-audit failure.
  int exitCode() const;

private:
  Code C = Code::Ok;
  std::string Message;
};

/// A Status plus, on success, the value it produced. Move-oriented; a
/// default-constructed Result is an Internal error ("empty result"), so
/// structs can hold one before it is assigned.
template <typename T> class Result {
public:
  Result() : St(Status::error(Code::Internal, "empty result")) {}
  /*implicit*/ Result(Status S) : St(std::move(S)) {
    assert(!St.ok() && "a successful Result needs a value");
  }
  /*implicit*/ Result(T Value) : Val(std::move(Value)) {}

  bool ok() const { return St.ok(); }
  const Status &status() const { return St; }

  T &value() {
    assert(ok() && "value() on an error Result");
    return *Val;
  }
  const T &value() const {
    assert(ok() && "value() on an error Result");
    return *Val;
  }
  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

private:
  Status St;
  std::optional<T> Val;
};

} // namespace api
} // namespace eventnet

#endif // EVENTNET_API_STATUS_H
