//===- api/Compile.h - One compile surface ----------------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The façade's compile half: CompileOptions names the inputs (program
/// source, file, or AST; topology source, file, or object) builder-style,
/// compile() runs the whole front half of the toolchain (Stateful NetKAT
/// -> ETS -> NES, Sections 3/4), and the resulting Compilation exposes
/// every artifact the CLI, benchmarks, and backends consume: the AST,
/// the ETS, the NES, per-configuration flow tables, the tag-guarded rule
/// count, and the Section 5.3 rule-sharing statistics.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_API_COMPILE_H
#define EVENTNET_API_COMPILE_H

#include "api/Status.h"
#include "nes/Pipeline.h"
#include "opt/RuleSharing.h"
#include "topo/Topology.h"

#include <string>

namespace eventnet {
namespace api {

/// Reads a whole file; IoError with the path on failure.
Result<std::string> readFile(const std::string &Path);

/// Inputs to compile(), builder-style:
///
///   auto C = api::compile(api::CompileOptions()
///                             .programFile("prog.snk")
///                             .topologyFile("net.topo"));
class CompileOptions {
public:
  /// Program: exactly one of source text, file path, or prebuilt AST.
  CompileOptions &programSource(std::string Text);
  CompileOptions &programFile(std::string Path);
  CompileOptions &programAst(stateful::SPolRef Ast);

  /// Topology: exactly one of source text, file path, or built object.
  CompileOptions &topologySource(std::string Text);
  CompileOptions &topologyFile(std::string Path);
  CompileOptions &topology(topo::Topology T);

  /// Whether a Section 2 locality violation is a hard error (default:
  /// yes, like the paper's compiler).
  CompileOptions &requireLocal(bool V);

private:
  friend Result<class Compilation> compile(CompileOptions O);

  enum class Input { None, Source, File, Built };
  Input ProgramKind = Input::None;
  std::string ProgramText; // source or path
  stateful::SPolRef Ast;
  Input TopoKind = Input::None;
  std::string TopoText; // source or path
  topo::Topology Topo;
  bool RequireLocal = true;
};

/// A successfully compiled program bound to its topology. Movable; the
/// run backends keep references into it, so it must outlive any Run.
class Compilation {
public:
  /// The event structure driving every runtime.
  const nes::Nes &structure() const { return *Program.N; }
  /// The transition system (reachable states + configurations).
  const ets::Ets &ets() const { return Program.Ets; }
  const topo::Topology &topology() const { return Topo; }
  const stateful::SPolRef &ast() const { return Program.Ast; }
  const std::map<std::string, Value> &bindings() const {
    return Program.Bindings;
  }
  double compileSeconds() const { return Program.CompileSeconds; }

  /// Total tag-guarded rules across all configurations (Section 4's
  /// installed-table size).
  size_t guardedRuleCount() const;
  /// The Section 5.3 rule-sharing statistics (computed on demand).
  opt::NesShareStats shareStats() const;

  /// Printable artifacts (the CLI's --dump-* payloads).
  std::string etsText() const;
  std::string nesText() const;
  std::string tablesText() const;

  /// The human-readable compile-stats block.
  std::string summary() const;
  /// The same facts as a JSON object.
  std::string summaryJson() const;

private:
  friend Result<Compilation> compile(CompileOptions O);
  Compilation(nes::CompiledProgram P, topo::Topology T)
      : Program(std::move(P)), Topo(std::move(T)) {}

  nes::CompiledProgram Program;
  topo::Topology Topo;
};

/// Runs the front half of the toolchain. Failure classes: IoError
/// (unreadable file), ParseError (program), TopoError (topology),
/// CompileError (ETS/NES/locality), InvalidArgument (no inputs given).
Result<Compilation> compile(CompileOptions O);

} // namespace api
} // namespace eventnet

#endif // EVENTNET_API_COMPILE_H
