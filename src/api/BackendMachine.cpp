//===- api/BackendMachine.cpp - "machine" backend -------------------------===//
//
// The Figure 7 nondeterministic machine behind the façade's Backend
// interface. The driver realizes the shared workload phase by phase:
// inject a phase's emissions, run to quiescence choosing uniformly among
// applicable steps with the seeded Rng, then emulate the host
// applications (echo replies to KindRequest) that the simulator and the
// engine run natively, re-quiescing until no host owes a reply.
//
//===----------------------------------------------------------------------===//

#include "api/Run.h"

#include "runtime/Machine.h"
#include "sim/Wire.h"
#include "support/Rng.h"

using namespace eventnet;
using namespace eventnet::api;

namespace {

class MachineBackend : public Backend {
public:
  const char *name() const override { return "machine"; }

  Result<RunReport> execute(const Compilation &C, const RunOptions &O,
                            const engine::Workload &W) override {
    if (O.Faults && O.Faults->enabled())
      return Status::error(Code::InvalidArgument,
                           "the machine backend has no fault-injection "
                           "sites; run the plan on 'engine' or 'sim'");
    runtime::Machine M(C.structure(), C.topology());
    Rng R(O.Seed);
    RunReport Rep;

    // Deliveries already scanned for reply emulation.
    size_t Seen = 0;

    auto quiesce = [&]() -> Status {
      size_t Taken = 0;
      while (Taken < O.StepBudget) {
        std::vector<runtime::Machine::Step> Steps = M.possibleSteps();
        if (Steps.empty())
          break;
        const runtime::Machine::Step &S = Steps[R.below(Steps.size())];
        if (S.Kind == runtime::Machine::RuleKind::Switch)
          ++Rep.SwitchHops;
        M.apply(S);
        ++Taken;
      }
      if (!M.possibleSteps().empty())
        return Status::error(Code::RunError,
                             "machine failed to quiesce within the step "
                             "budget of " +
                                 std::to_string(O.StepBudget));
      return Status::success();
    };

    // Echo emulation: requests delivered to their addressee owe a
    // KindReply back to the source (flooded copies do not).
    auto emitReplies = [&]() -> size_t {
      size_t Replies = 0;
      const auto &Delivered = M.deliveries();
      for (; Seen != Delivered.size(); ++Seen) {
        const auto &[Host, Pkt] = Delivered[Seen];
        if (Pkt.getOr(sim::kindField(), sim::KindData) != sim::KindRequest)
          continue;
        Value Dst = Pkt.getOr(sim::ipDstField(), -1);
        if (Dst != static_cast<Value>(Host))
          continue;
        Value Src = Pkt.getOr(sim::ipSrcField(), -1);
        if (Src < 0)
          continue;
        uint64_t Seq = static_cast<uint64_t>(Pkt.getOr(sim::seqField(), 0));
        M.inject(Host, sim::makeWireHeader(Host, static_cast<HostId>(Src),
                                           sim::KindReply, Seq));
        ++Rep.PacketsInjected;
        ++Replies;
      }
      return Replies;
    };

    for (const engine::Phase &Ph : W.Phases) {
      for (const engine::Injection &Inj : Ph.Injections) {
        M.inject(Inj.From, Inj.Header);
        ++Rep.PacketsInjected;
      }
      do {
        Status S = quiesce();
        if (!S.ok())
          return S;
      } while (emitReplies() != 0);
    }

    Rep.PacketsDelivered = M.deliveries().size();
    Rep.PacketsDropped = Rep.PacketsInjected > Rep.PacketsDelivered
                             ? Rep.PacketsInjected - Rep.PacketsDelivered
                             : 0;
    Rep.EventsDetected = M.controller().count();
    for (SwitchId Sw : C.topology().switches())
      Rep.ConfigTransitions += M.switchEvents(Sw).count();
    Rep.Trace = M.takeTrace();
    return Rep;
  }
};

} // namespace

namespace eventnet {
namespace api {
std::unique_ptr<Backend> makeMachineBackend() {
  return std::make_unique<MachineBackend>();
}
} // namespace api
} // namespace eventnet
