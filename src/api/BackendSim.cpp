//===- api/BackendSim.cpp - "sim" backend ---------------------------------===//
//
// The discrete-event simulator behind the façade's Backend interface.
// The shared workload's phases are laid out as quiescence-separated
// windows on the simulated clock (the sim-world analogue of the engine's
// run-to-quiescence phase barrier), injected through
// Simulation::scheduleInjection so every backend executes the exact same
// wire-format packets; host applications (echo replies) run natively.
//
//===----------------------------------------------------------------------===//

#include "api/Run.h"

#include "sim/Simulation.h"

#include <optional>

using namespace eventnet;
using namespace eventnet::api;

namespace {

/// Gap between phase starts. Orders of magnitude above the default
/// latencies (0.5 ms links, 2 ms controller RTT), so each phase drains
/// before the next begins, like the other backends' quiescence barriers.
constexpr double PhaseGapSec = 0.5;

class SimBackend : public Backend {
public:
  const char *name() const override { return "sim"; }

  Result<RunReport> execute(const Compilation &C, const RunOptions &O,
                            const engine::Workload &W) override {
    sim::SimParams P;
    P.Seed = O.Seed;
    sim::Simulation Sim(C.structure(), C.topology(),
                        sim::Simulation::Mode::Nes, P);
    std::optional<faults::Injector> Inj;
    if (O.Faults && O.Faults->enabled()) {
      Inj.emplace(*O.Faults);
      Sim.setFaults(&*Inj);
    }

    double At = 0.05;
    for (const engine::Phase &Ph : W.Phases) {
      for (const engine::Injection &Inj : Ph.Injections)
        Sim.scheduleInjection(At, Inj.From, Inj.Header);
      At += PhaseGapSec;
    }
    Sim.run(At + 1.0);

    RunReport R;
    R.PacketsInjected = Sim.hostEmissions();
    for (const auto &[Host, Loc] : C.topology().hosts())
      R.PacketsDelivered += Sim.deliveriesTo(Host).size();
    // The sim counts drops residually (it has no per-drop counter), so
    // deliveries descending from injected duplicates are discounted here
    // — they are outcomes no injection owns.
    const sim::Simulation::FaultCounters &FC = Sim.faultCounters();
    uint64_t EffDelivered = R.PacketsDelivered > FC.DupDelivered
                                ? R.PacketsDelivered - FC.DupDelivered
                                : 0;
    R.PacketsDropped = R.PacketsInjected > EffDelivered
                           ? R.PacketsInjected - EffDelivered
                           : 0;
    if (Inj) {
      R.Faults.Enabled = true;
      R.Faults.Drops = FC.Drops;
      R.Faults.Dups = FC.Dups;
      R.Faults.Delays = FC.Delays;
      R.Faults.DupDelivered = FC.DupDelivered;
      faults::FaultLedger L = Sim.takeFaultLedger();
      R.Faults.LedgerEntries = L.Records.size();
      R.Faults.Ledger = L.canonical();
      R.FaultCtx.ExcusedEntries = std::move(L.ExcusedEntries);
      R.FaultCtx.DupEntries = std::move(L.DupEntries);
    }
    R.SwitchHops = Sim.switchHops();
    for (nes::EventId E = 0; E != C.structure().numEvents(); ++E)
      R.EventsDetected += Sim.eventTime(E) >= 0;
    R.ConfigTransitions = Sim.learnTimes().size();
    R.ElapsedSec = Sim.now();
    R.Trace = Sim.takeTrace();
    return R;
  }
};

} // namespace

namespace eventnet {
namespace api {
std::unique_ptr<Backend> makeSimBackend() {
  return std::make_unique<SimBackend>();
}
} // namespace api
} // namespace eventnet
