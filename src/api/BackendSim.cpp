//===- api/BackendSim.cpp - "sim" backend ---------------------------------===//
//
// The discrete-event simulator behind the façade's Backend interface.
// The shared workload's phases are laid out as quiescence-separated
// windows on the simulated clock (the sim-world analogue of the engine's
// run-to-quiescence phase barrier), injected through
// Simulation::scheduleInjection so every backend executes the exact same
// wire-format packets; host applications (echo replies) run natively.
//
//===----------------------------------------------------------------------===//

#include "api/Run.h"

#include "sim/Simulation.h"

using namespace eventnet;
using namespace eventnet::api;

namespace {

/// Gap between phase starts. Orders of magnitude above the default
/// latencies (0.5 ms links, 2 ms controller RTT), so each phase drains
/// before the next begins, like the other backends' quiescence barriers.
constexpr double PhaseGapSec = 0.5;

class SimBackend : public Backend {
public:
  const char *name() const override { return "sim"; }

  Result<RunReport> execute(const Compilation &C, const RunOptions &O,
                            const engine::Workload &W) override {
    sim::SimParams P;
    P.Seed = O.Seed;
    sim::Simulation Sim(C.structure(), C.topology(),
                        sim::Simulation::Mode::Nes, P);

    double At = 0.05;
    for (const engine::Phase &Ph : W.Phases) {
      for (const engine::Injection &Inj : Ph.Injections)
        Sim.scheduleInjection(At, Inj.From, Inj.Header);
      At += PhaseGapSec;
    }
    Sim.run(At + 1.0);

    RunReport R;
    R.PacketsInjected = Sim.hostEmissions();
    for (const auto &[Host, Loc] : C.topology().hosts())
      R.PacketsDelivered += Sim.deliveriesTo(Host).size();
    R.PacketsDropped = R.PacketsInjected > R.PacketsDelivered
                           ? R.PacketsInjected - R.PacketsDelivered
                           : 0;
    R.SwitchHops = Sim.switchHops();
    for (nes::EventId E = 0; E != C.structure().numEvents(); ++E)
      R.EventsDetected += Sim.eventTime(E) >= 0;
    R.ConfigTransitions = Sim.learnTimes().size();
    R.ElapsedSec = Sim.now();
    R.Trace = Sim.takeTrace();
    return R;
  }
};

} // namespace

namespace eventnet {
namespace api {
std::unique_ptr<Backend> makeSimBackend() {
  return std::make_unique<SimBackend>();
}
} // namespace api
} // namespace eventnet
