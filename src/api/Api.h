//===- api/Api.h - The eventnet public surface ------------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Umbrella header for the library's northbound API: structured errors
/// (api/Status.h), the one compile surface (api/Compile.h), and the one
/// run surface over the Machine / Simulator / Engine backends
/// (api/Run.h). Embedding programs need only:
///
///   #include "api/Api.h"
///
///   auto C = api::compile(api::CompileOptions()
///                             .programFile("prog.snk")
///                             .topologyFile("net.topo"));
///   if (!C.ok()) return C.status().exitCode();
///   auto R = api::run(*C, "engine", api::RunOptions().seed(7).shards(8));
///   if (!R.ok()) return R.status().exitCode();
///   std::cout << R->str();
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_API_API_H
#define EVENTNET_API_API_H

#include "api/Compile.h"
#include "api/Run.h"
#include "api/Status.h"

#endif // EVENTNET_API_API_H
