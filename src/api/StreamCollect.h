//===- api/StreamCollect.h - Live trace collector for streaming check -*- C++
//-*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The glue between the engine's per-shard trace stream
/// (engine::Engine::drainTraceStream) and the single-threaded streaming
/// Definition 6 checker (consistency/StreamCheck.h): a collector thread
/// polls the stream while the run is live, feeds entries and excusals to
/// the checker, and commits up to the published watermark. Both
/// engine-based backends (the "engine" run backend and the net
/// front-end, including serveNet) share this loop.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_API_STREAMCOLLECT_H
#define EVENTNET_API_STREAMCOLLECT_H

#include "consistency/StreamCheck.h"
#include "engine/Engine.h"

#include <atomic>
#include <thread>

namespace eventnet {
namespace api {
namespace detail {

/// Owns the collector thread and the checker. Construct after
/// engine::Engine is built (with EngineConfig::StreamTrace set) and
/// before traffic flows; call finalize() after Engine::finish() has
/// joined the workers.
class StreamCollector {
public:
  StreamCollector(engine::Engine &E, const nes::Nes &N,
                  const topo::Topology &Topo, consistency::StreamOptions SO);
  ~StreamCollector();

  StreamCollector(const StreamCollector &) = delete;
  StreamCollector &operator=(const StreamCollector &) = delete;

  /// Stops the poll loop, drains the stream tail, degrades the verdict
  /// with "trace_dropped" if the obs ring lost \p TraceDropped events
  /// mid-run (and with "stream_backlog" if the shards shed stream items
  /// because this collector lagged), and returns the final verdict.
  /// Call exactly once, after the engine has finished.
  consistency::StreamResult finalize(uint64_t TraceDropped);

  /// Stream items the engine shed at StreamBufCap because this
  /// collector fell behind; valid after finalize().
  uint64_t lagShed() const { return LagShed; }

private:
  void loop();
  void feed(std::vector<engine::Engine::StreamItem> &Buf);

  engine::Engine &E;
  consistency::StreamChecker Chk;
  std::atomic<bool> Stop{false};
  bool Finalized = false;
  uint64_t LagShed = 0;
  std::thread Th;
};

} // namespace detail
} // namespace api
} // namespace eventnet

#endif // EVENTNET_API_STREAMCOLLECT_H
