//===- api/Run.cpp - Backend registry and the Run handle ------------------===//

#include "api/Run.h"

#include "api/Json.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <sstream>

using namespace eventnet;
using namespace eventnet::api;

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

// Built-in factories live in the Backend*.cpp files. They are referenced
// here explicitly (rather than via static-initializer registration) so a
// static-library link never dead-strips them.
namespace eventnet {
namespace api {
std::unique_ptr<Backend> makeMachineBackend();
std::unique_ptr<Backend> makeSimBackend();
std::unique_ptr<Backend> makeEngineBackend();
std::unique_ptr<Backend> makeNetBackend();
} // namespace api
} // namespace eventnet

namespace {

using Factory = std::function<std::unique_ptr<Backend>()>;

std::mutex &registryMu() {
  static std::mutex Mu;
  return Mu;
}

std::map<std::string, Factory> &registry() {
  static std::map<std::string, Factory> R = {
      {"machine", makeMachineBackend},
      {"sim", makeSimBackend},
      {"engine", makeEngineBackend},
      {"net", makeNetBackend},
  };
  return R;
}

} // namespace

std::vector<std::string> api::backendNames() {
  std::lock_guard<std::mutex> Lock(registryMu());
  std::vector<std::string> Names;
  for (const auto &[Name, F] : registry())
    Names.push_back(Name);
  return Names; // std::map iteration is already sorted
}

Result<std::unique_ptr<Backend>> api::makeBackend(const std::string &Name) {
  Factory F;
  {
    std::lock_guard<std::mutex> Lock(registryMu());
    auto It = registry().find(Name);
    if (It != registry().end())
      F = It->second;
  }
  if (!F) {
    std::string Known;
    for (const std::string &N : backendNames())
      Known += (Known.empty() ? "" : ", ") + N;
    return Status::error(Code::InvalidArgument,
                         "unknown backend '" + Name + "' (known: " + Known +
                             ")");
  }
  return F();
}

void api::registerBackend(const std::string &Name, Factory F) {
  std::lock_guard<std::mutex> Lock(registryMu());
  registry()[Name] = std::move(F);
}

//===----------------------------------------------------------------------===//
// Run
//===----------------------------------------------------------------------===//

Result<Run> Run::create(const Compilation &C,
                        const std::string &BackendName) {
  Result<std::unique_ptr<Backend>> B = makeBackend(BackendName);
  if (!B.ok())
    return B.status();
  return Run(C, std::move(*B));
}

Result<RunReport> Run::execute(const RunOptions &O) {
  const topo::Topology &Topo = C->topology();
  size_t NumHosts = Topo.hosts().size();
  if (NumHosts < 2)
    return Status::error(Code::RunError,
                         "topology has " + std::to_string(NumHosts) +
                             " host(s); the ping workload needs at least 2");
  if (O.Phases == 0 || O.PingsPerPhase == 0)
    return Status::error(Code::InvalidArgument,
                         "phases and pings-per-phase must be positive");

  // The shared workload: every backend executes the same seeded phase
  // list over the same wire format.
  size_t Pairs = NumHosts * NumHosts;
  unsigned PerPhase = static_cast<unsigned>(
      std::min<size_t>(O.PingsPerPhase, Pairs));
  engine::TrafficGen G(Topo, O.Seed);
  engine::Workload W;
  if (O.Workload == "ping") {
    W = G.pings(O.Phases, PerPhase);
  } else if (O.Workload == "churn") {
    // Event-storm shape: distinct-flow data packets (no echo replies
    // owed) with rotating probe triggers scattered through each phase.
    W = G.churn(O.Phases, O.PingsPerPhase, O.ChurnRate);
  } else {
    return Status::error(Code::InvalidArgument,
                         "unknown workload '" + O.Workload +
                             "' (known: ping, churn)");
  }

  Result<RunReport> Report = B->execute(*C, O, W);
  if (!Report.ok())
    return Report;

  Report->Backend = B->name();
  Report->Seed = O.Seed;
  Report->Workload = O.Workload;

  // Packet-conservation audit (backend-agnostic): every injection must
  // end in a delivery or a counted drop. Multicast can only add terminal
  // outcomes, so injected > delivered + dropped means silent loss.
  // Injected duplicates add terminal outcomes that no injection owns, so
  // their deliveries/drops are discounted before the comparison.
  DropAudit &A = Report->Audit;
  A.Injected = Report->PacketsInjected;
  A.Delivered = Report->PacketsDelivered;
  A.Dropped = Report->PacketsDropped;
  uint64_t EffDelivered =
      A.Delivered > Report->Faults.DupDelivered
          ? A.Delivered - Report->Faults.DupDelivered
          : 0;
  uint64_t EffDropped = A.Dropped > Report->Faults.DupDropped
                            ? A.Dropped - Report->Faults.DupDropped
                            : 0;
  uint64_t Accounted = EffDelivered + EffDropped;
  A.SilentLoss = A.Injected > Accounted ? A.Injected - Accounted : 0;
  A.Ok = A.SilentLoss == 0;

  // Streaming-only runs keep no merged trace: replaying the (empty)
  // trace through the batch checker would pass vacuously, so the batch
  // replay runs only when a trace was actually recorded — always
  // without streaming, and in differential mode alongside it.
  bool BatchCheck = O.CheckConsistency &&
                    (!Report->StreamCheck.Enabled || O.CheckDifferential);
  if (BatchCheck) {
    // The excusal context matters beyond fault plans: a shed overload
    // policy ledgers the chains it retired under plain pressure too.
    bool HasCtx = Report->Faults.Enabled ||
                  !Report->FaultCtx.ExcusedEntries.empty() ||
                  !Report->FaultCtx.DupEntries.empty();
    Report->Checked = true;
    Report->Consistency = consistency::checkAgainstNes(
        Report->Trace, Topo, C->structure(),
        HasCtx ? &Report->FaultCtx : nullptr);
  }
  if (Report->StreamCheck.Enabled && Report->Checked) {
    StreamCheckReport &SC = Report->StreamCheck;
    SC.DifferentialRan = true;
    // An inconclusive streaming verdict makes no pass/fail claim, so
    // there is nothing to disagree with.
    if (SC.Result.Verdict != consistency::StreamVerdict::Inconclusive)
      SC.DifferentialMatched = SC.Result.ok() == Report->Consistency.Correct;
  }
  return Report;
}

Result<RunReport> api::run(const Compilation &C,
                           const std::string &BackendName,
                           const RunOptions &O) {
  Result<Run> R = Run::create(C, BackendName);
  if (!R.ok())
    return R.status();
  return R->execute(O);
}

//===----------------------------------------------------------------------===//
// RunReport rendering
//===----------------------------------------------------------------------===//

namespace {

/// "12.345 us" style rendering for latency values given in seconds.
std::string fmtLatency(double Sec) {
  char Buf[64];
  if (Sec >= 1.0)
    snprintf(Buf, sizeof(Buf), "%.3f s", Sec);
  else if (Sec >= 1e-3)
    snprintf(Buf, sizeof(Buf), "%.3f ms", Sec * 1e3);
  else
    snprintf(Buf, sizeof(Buf), "%.3f us", Sec * 1e6);
  return Buf;
}

/// Short stable digest of the canonical ledger (FNV-1a 64), so JSON
/// consumers can compare ledgers across runs without the full text.
std::string ledgerDigest(const std::string &Ledger) {
  if (Ledger.empty())
    return "";
  uint64_t H = 1469598103934665603ull;
  for (unsigned char Ch : Ledger) {
    H ^= Ch;
    H *= 1099511628211ull;
  }
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%016llx",
           static_cast<unsigned long long>(H));
  return Buf;
}

void latencyJson(std::ostringstream &OS, const char *Key,
                 const LatencyReport &L) {
  OS << ", \"" << Key << "\": {\"samples\": " << L.Samples
     << ", \"mean\": " << L.MeanSec << ", \"p50\": " << L.P50Sec
     << ", \"p90\": " << L.P90Sec << ", \"p99\": " << L.P99Sec
     << ", \"max\": " << L.MaxSec << "}";
}

} // namespace

std::string RunReport::str() const {
  std::ostringstream OS;
  OS << Backend << " run: seed " << Seed;
  if (!Workload.empty() && Workload != "ping")
    OS << ", " << Workload << " workload";
  if (Shards > 1)
    OS << ", " << Shards << " shards";
  if (Backend == "engine") {
    OS << ", " << (Classifier ? "classifier" : "fdd-walk") << " path, batch "
       << Batch;
    if (!Partition.empty())
      OS << ", " << Partition << " partition (edge cut " << EdgeCut << "/"
         << EdgeTotal << ")";
    if (!Overload.empty())
      OS << ", " << Overload << " overload";
  }
  OS << "\n";
  OS << "  injected:     " << PacketsInjected << " packets\n";
  OS << "  delivered:    " << PacketsDelivered << "\n";
  OS << "  dropped:      " << PacketsDropped << "\n";
  OS << "  switch-hops:  " << SwitchHops << "\n";
  OS << "  events:       " << EventsDetected << " detected, "
     << ConfigTransitions << " register transitions\n";
  if (ElapsedSec > 0) {
    char Buf[64];
    snprintf(Buf, sizeof(Buf), "%.3f", ElapsedSec * 1e3);
    OS << "  elapsed:      " << Buf << " ms\n";
  }
  if (UpdateLatency.Samples > 0)
    OS << "  update lat:   p50 " << fmtLatency(UpdateLatency.P50Sec)
       << ", p99 " << fmtLatency(UpdateLatency.P99Sec) << ", max "
       << fmtLatency(UpdateLatency.MaxSec) << " ("
       << UpdateLatency.Samples << " learns)\n";
  if (QueueDwell.Samples > 0)
    OS << "  queue dwell:  p50 " << fmtLatency(QueueDwell.P50Sec)
       << ", p99 " << fmtLatency(QueueDwell.P99Sec) << ", max "
       << fmtLatency(QueueDwell.MaxSec) << " (" << QueueDwell.Samples
       << " hops)\n";
  if (BatchOccupancy.Samples > 0) {
    char Buf[64];
    snprintf(Buf, sizeof(Buf), "%.1f", BatchOccupancy.MeanSec);
    OS << "  batch occ:    mean " << Buf << ", p99 "
       << static_cast<uint64_t>(BatchOccupancy.P99Sec) << ", max "
       << static_cast<uint64_t>(BatchOccupancy.MaxSec) << " msgs/batch\n";
  }
  if (TraceRecorded > 0 || TraceDropped > 0)
    OS << "  obs trace:    " << TraceRecorded << " events recorded, "
       << TraceDropped << " dropped\n";
  if (Net.Enabled) {
    OS << "  net:          " << (Net.Udp ? "udp" : "tcp") << " over "
       << Net.Poller << " port " << Net.Port << ", " << Net.Connections
       << " client conns ("
       << Net.Accepted << " accepted, " << Net.Closed << " closed, "
       << Net.ProtocolErrors << " protocol errors)\n";
    OS << "  net frames:   " << Net.FramesIn << " in (" << Net.FramesInjected
       << " injected), " << Net.FramesOut << " out (" << Net.DeliveryFrames
       << " deliveries, " << Net.RepliesOut << " replies, "
       << Net.BarriersAcked << " barrier acks)\n";
    OS << "  net bytes:    " << Net.BytesIn << " in, " << Net.BytesOut
       << " out, " << Net.ReassemblyPartial << " partial reads";
    if (Net.UdpDatagrams)
      OS << ", " << Net.UdpDatagrams << " datagrams";
    OS << "\n";
    if (Net.BackpressureShed || Net.DeliveryUnroutable)
      OS << "  net shed:     " << Net.BackpressureShed << " backpressure ("
         << Net.RingShed << " at the ring), " << Net.DeliveryUnroutable
         << " unroutable\n";
    if (Net.Rtt.Samples > 0)
      OS << "  net rtt:      p50 " << fmtLatency(Net.Rtt.P50Sec) << ", p99 "
         << fmtLatency(Net.Rtt.P99Sec) << ", max "
         << fmtLatency(Net.Rtt.MaxSec) << " (" << Net.Rtt.Samples
         << " samples)\n";
  }
  if (!Audit.Ok)
    OS << "  DROP AUDIT:   FAILED — " << Audit.SilentLoss
       << " packet(s) silently lost (" << Audit.Injected << " injected, "
       << Audit.Delivered << " delivered, " << Audit.Dropped
       << " counted drops)\n";
  if (Faults.Enabled) {
    OS << "  faults:       " << Faults.Drops << " dropped, " << Faults.Dups
       << " duplicated, " << Faults.Delays << " delayed, " << Faults.Shed
       << " shed, " << Faults.Stalls << " stalls, " << Faults.Storms
       << " storm broadcasts (" << Faults.LedgerEntries
       << " ledger entries)\n";
    if (Faults.DupDelivered || Faults.DupDropped)
      OS << "  dup outcomes: " << Faults.DupDelivered << " delivered, "
         << Faults.DupDropped << " dropped (discounted from the audit)\n";
  }
  for (size_t I = 0; I != ShardDetail.size(); ++I) {
    const ShardReport &D = ShardDetail[I];
    OS << "  shard " << I << ":      " << D.Switches << " switches, "
       << D.Processed << " hops, queue hwm " << D.QueueHighWater << ", "
       << D.Dropped << " dropped, " << D.Transitions << " transitions";
    if (D.Shed)
      OS << ", " << D.Shed << " shed";
    OS << "\n";
  }
  if (Checked) {
    OS << "  definition 6: "
       << (Consistency.Correct ? "consistent" : "VIOLATED") << "\n";
    if (!Consistency.Correct)
      OS << "    " << Consistency.Reason << "\n";
  }
  if (StreamCheck.Enabled) {
    const consistency::StreamResult &SR = StreamCheck.Result;
    std::string Verdict = consistency::streamVerdictName(SR.Verdict);
    if (SR.violated())
      Verdict = "VIOLATED";
    OS << "  streaming d6: " << Verdict << " (" << SR.Stats.EntriesChecked
       << " entries, " << SR.Stats.ChainsRetired << " chains, "
       << SR.Stats.EventsObserved << " events, peak window "
       << SR.Stats.PeakWindow << "/" << StreamCheck.Window << ", peak "
       << (SR.Stats.PeakResidentBytes + 1023) / 1024 << " KiB)\n";
    if (!SR.Reason.empty())
      OS << "    " << SR.Reason << "\n";
    if (StreamCheck.StreamShed > 0)
      OS << "    " << StreamCheck.StreamShed
         << " stream items shed (collector lagged the data path)\n";
    if (StreamCheck.DifferentialRan)
      OS << "    differential: "
         << (StreamCheck.DifferentialMatched ? "verdicts agree"
                                             : "VERDICTS DISAGREE")
         << "\n";
  }
  return OS.str();
}

std::string RunReport::json() const {
  std::ostringstream OS;
  OS << "{\"backend\": \"" << jsonEscape(Backend) << "\""
     << ", \"workload\": \""
     << jsonEscape(Workload.empty() ? "ping" : Workload) << "\""
     << ", \"seed\": " << Seed << ", \"shards\": " << Shards
     << ", \"classifier\": " << (Classifier ? "true" : "false")
     << ", \"batch\": " << Batch
     << ", \"partition\": \"" << jsonEscape(Partition) << "\""
     << ", \"edge_cut\": " << EdgeCut
     << ", \"edge_total\": " << EdgeTotal
     << ", \"overload\": \"" << jsonEscape(Overload) << "\""
     << ", \"injected\": " << PacketsInjected
     << ", \"delivered\": " << PacketsDelivered
     << ", \"dropped\": " << PacketsDropped
     << ", \"switch_hops\": " << SwitchHops
     << ", \"events_detected\": " << EventsDetected
     << ", \"config_transitions\": " << ConfigTransitions
     << ", \"elapsed_sec\": " << ElapsedSec
     << ", \"update_lat_samples\": " << UpdateLatency.Samples
     << ", \"update_lat_mean\": " << UpdateLatency.MeanSec
     << ", \"update_lat_p50\": " << UpdateLatency.P50Sec
     << ", \"update_lat_p90\": " << UpdateLatency.P90Sec
     << ", \"update_lat_p99\": " << UpdateLatency.P99Sec
     << ", \"update_lat_max\": " << UpdateLatency.MaxSec;
  latencyJson(OS, "queue_dwell", QueueDwell);
  latencyJson(OS, "batch_occupancy", BatchOccupancy);
  OS << ", \"drop_audit\": {\"injected\": " << Audit.Injected
     << ", \"delivered\": " << Audit.Delivered
     << ", \"dropped\": " << Audit.Dropped
     << ", \"silent_loss\": " << Audit.SilentLoss
     << ", \"ok\": " << (Audit.Ok ? "true" : "false") << "}"
     << ", \"faults\": {\"enabled\": " << (Faults.Enabled ? "true" : "false")
     << ", \"drops\": " << Faults.Drops << ", \"dups\": " << Faults.Dups
     << ", \"delays\": " << Faults.Delays << ", \"shed\": " << Faults.Shed
     << ", \"stalls\": " << Faults.Stalls
     << ", \"storms\": " << Faults.Storms
     << ", \"dup_delivered\": " << Faults.DupDelivered
     << ", \"dup_dropped\": " << Faults.DupDropped
     << ", \"ledger_entries\": " << Faults.LedgerEntries
     << ", \"ledger_sha\": \"" << jsonEscape(ledgerDigest(Faults.Ledger))
     << "\"}"
     << ", \"net\": {\"enabled\": " << (Net.Enabled ? "true" : "false")
     << ", \"poller\": \"" << jsonEscape(Net.Poller) << "\""
     << ", \"udp\": " << (Net.Udp ? "true" : "false")
     << ", \"port\": " << Net.Port
     << ", \"connections\": " << Net.Connections
     << ", \"accepted\": " << Net.Accepted << ", \"closed\": " << Net.Closed
     << ", \"protocol_errors\": " << Net.ProtocolErrors
     << ", \"frames_in\": " << Net.FramesIn
     << ", \"frames_out\": " << Net.FramesOut
     << ", \"bytes_in\": " << Net.BytesIn
     << ", \"bytes_out\": " << Net.BytesOut
     << ", \"frames_injected\": " << Net.FramesInjected
     << ", \"delivery_frames\": " << Net.DeliveryFrames
     << ", \"replies_out\": " << Net.RepliesOut
     << ", \"reassembly_partial\": " << Net.ReassemblyPartial
     << ", \"backpressure_shed\": " << Net.BackpressureShed
     << ", \"ring_shed\": " << Net.RingShed
     << ", \"delivery_unroutable\": " << Net.DeliveryUnroutable
     << ", \"non_net_deliveries\": " << Net.NonNetDeliveries
     << ", \"barriers_acked\": " << Net.BarriersAcked
     << ", \"udp_datagrams\": " << Net.UdpDatagrams
     << ", \"client_delivers\": " << Net.ClientDelivers
     << ", \"client_replies\": " << Net.ClientReplies
     << ", \"rtt_samples\": " << Net.Rtt.Samples
     << ", \"rtt_p50\": " << Net.Rtt.P50Sec
     << ", \"rtt_p99\": " << Net.Rtt.P99Sec
     << ", \"rtt_max\": " << Net.Rtt.MaxSec << "}"
     << ", \"obs_trace_recorded\": " << TraceRecorded
     << ", \"obs_trace_dropped\": " << TraceDropped
     << ", \"trace_entries\": " << Trace.size() << ", \"shard_detail\": [";
  for (size_t I = 0; I != ShardDetail.size(); ++I) {
    const ShardReport &D = ShardDetail[I];
    OS << (I ? ", " : "") << "{\"shard\": " << I
       << ", \"switches\": " << D.Switches
       << ", \"processed\": " << D.Processed
       << ", \"queue_high_water\": " << D.QueueHighWater
       << ", \"dropped\": " << D.Dropped
       << ", \"transitions\": " << D.Transitions
       << ", \"shed\": " << D.Shed << "}";
  }
  OS << "], \"consistency\": ";
  if (!Checked) {
    OS << "{\"checked\": false}";
  } else {
    OS << "{\"checked\": true, \"correct\": "
       << (Consistency.Correct ? "true" : "false");
    if (!Consistency.Correct)
      OS << ", \"reason\": \"" << jsonEscape(Consistency.Reason) << "\"";
    OS << "}";
  }
  OS << ", \"streaming_check\": ";
  if (!StreamCheck.Enabled) {
    OS << "{\"enabled\": false}";
  } else {
    const consistency::StreamResult &SR = StreamCheck.Result;
    OS << "{\"enabled\": true, \"verdict\": \""
       << consistency::streamVerdictName(SR.Verdict) << "\""
       << ", \"reason\": \"" << jsonEscape(SR.Reason) << "\""
       << ", \"window\": " << StreamCheck.Window
       << ", \"entries_ingested\": " << SR.Stats.EntriesIngested
       << ", \"entries_checked\": " << SR.Stats.EntriesChecked
       << ", \"entries_pruned\": " << SR.Stats.EntriesPruned
       << ", \"trees_retired\": " << SR.Stats.TreesRetired
       << ", \"chains_retired\": " << SR.Stats.ChainsRetired
       << ", \"events_observed\": " << SR.Stats.EventsObserved
       << ", \"peak_window\": " << SR.Stats.PeakWindow
       << ", \"peak_resident_bytes\": " << SR.Stats.PeakResidentBytes
       << ", \"stream_shed\": " << StreamCheck.StreamShed
       << ", \"differential_ran\": "
       << (StreamCheck.DifferentialRan ? "true" : "false")
       << ", \"differential_matched\": "
       << (StreamCheck.DifferentialMatched ? "true" : "false") << "}";
  }
  OS << "}";
  return OS.str();
}
