//===- api/Compile.cpp - One compile surface ------------------------------===//

#include "api/Compile.h"

#include "api/Json.h"
#include "runtime/Guarded.h"
#include "stateful/Ast.h"
#include "topo/Parse.h"

#include <fstream>
#include <sstream>

using namespace eventnet;
using namespace eventnet::api;

Result<std::string> api::readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return Status::error(Code::IoError, "cannot read '" + Path + "'");
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

//===----------------------------------------------------------------------===//
// CompileOptions
//===----------------------------------------------------------------------===//

CompileOptions &CompileOptions::programSource(std::string Text) {
  ProgramKind = Input::Source;
  ProgramText = std::move(Text);
  return *this;
}

CompileOptions &CompileOptions::programFile(std::string Path) {
  ProgramKind = Input::File;
  ProgramText = std::move(Path);
  return *this;
}

CompileOptions &CompileOptions::programAst(stateful::SPolRef A) {
  ProgramKind = Input::Built;
  Ast = std::move(A);
  return *this;
}

CompileOptions &CompileOptions::topologySource(std::string Text) {
  TopoKind = Input::Source;
  TopoText = std::move(Text);
  return *this;
}

CompileOptions &CompileOptions::topologyFile(std::string Path) {
  TopoKind = Input::File;
  TopoText = std::move(Path);
  return *this;
}

CompileOptions &CompileOptions::topology(topo::Topology T) {
  TopoKind = Input::Built;
  Topo = std::move(T);
  return *this;
}

CompileOptions &CompileOptions::requireLocal(bool V) {
  RequireLocal = V;
  return *this;
}

//===----------------------------------------------------------------------===//
// compile()
//===----------------------------------------------------------------------===//

Result<Compilation> api::compile(CompileOptions O) {
  if (O.ProgramKind == CompileOptions::Input::None)
    return Status::error(Code::InvalidArgument,
                         "no program given (programSource / programFile / "
                         "programAst)");
  if (O.TopoKind == CompileOptions::Input::None)
    return Status::error(Code::InvalidArgument,
                         "no topology given (topologySource / topologyFile "
                         "/ topology)");

  // Resolve the topology first: program compilation needs it.
  topo::Topology Topo;
  if (O.TopoKind == CompileOptions::Input::Built) {
    Topo = std::move(O.Topo);
  } else {
    std::string Text = O.TopoText;
    if (O.TopoKind == CompileOptions::Input::File) {
      Result<std::string> Read = readFile(O.TopoText);
      if (!Read.ok())
        return Read.status();
      Text = std::move(*Read);
    }
    Result<topo::Topology> Parsed = topo::parseTopology(Text);
    if (!Parsed.ok())
      return Parsed.status();
    Topo = std::move(*Parsed);
  }

  api::Result<nes::CompiledProgram> Compiled;
  if (O.ProgramKind == CompileOptions::Input::Built) {
    Compiled = nes::compileAst(O.Ast, Topo, O.RequireLocal);
  } else {
    std::string Text = O.ProgramText;
    if (O.ProgramKind == CompileOptions::Input::File) {
      Result<std::string> Read = readFile(O.ProgramText);
      if (!Read.ok())
        return Read.status();
      Text = std::move(*Read);
    }
    Compiled = nes::compileSource(Text, Topo, O.RequireLocal);
  }
  if (!Compiled.ok())
    return Compiled.status();
  return Compilation(std::move(*Compiled), std::move(Topo));
}

//===----------------------------------------------------------------------===//
// Compilation artifacts
//===----------------------------------------------------------------------===//

size_t Compilation::guardedRuleCount() const {
  return runtime::guardedRuleCount(structure(), Topo);
}

opt::NesShareStats Compilation::shareStats() const {
  return opt::shareRulesForNes(structure(), Topo);
}

std::string Compilation::etsText() const { return Program.Ets.str(); }

std::string Compilation::nesText() const { return structure().str(); }

std::string Compilation::tablesText() const {
  std::ostringstream OS;
  for (nes::SetId S = 0; S != structure().numSets(); ++S) {
    OS << "=== configuration of event-set E" << S << " (state "
       << stateful::stateVecStr(structure().stateOf(S)) << ") ===\n";
    OS << structure().configOf(S).str();
  }
  return OS.str();
}

std::string Compilation::summary() const {
  std::ostringstream OS;
  char Buf[64];
  snprintf(Buf, sizeof(Buf), "%.3f", compileSeconds() * 1e3);
  OS << "compiled in " << Buf << " ms\n";
  OS << "  states:       " << ets().vertices().size() << "\n";
  OS << "  events:       " << structure().numEvents() << "\n";
  OS << "  event-sets:   " << structure().numSets() << "\n";
  OS << "  rules:        " << guardedRuleCount()
     << " (tag-guarded, all configurations)\n";
  OS << "  locality:     "
     << (structure().isLocallyDetermined() ? "locally determined"
                                           : "VIOLATED")
     << "\n";
  return OS.str();
}

std::string Compilation::summaryJson() const {
  std::ostringstream OS;
  OS << "{\"compile_ms\": " << compileSeconds() * 1e3
     << ", \"states\": " << ets().vertices().size()
     << ", \"events\": " << structure().numEvents()
     << ", \"event_sets\": " << structure().numSets()
     << ", \"rules\": " << guardedRuleCount() << ", \"locally_determined\": "
     << (structure().isLocallyDetermined() ? "true" : "false") << "}";
  return OS.str();
}
