//===- api/Run.h - One run surface over three backends ----------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The façade's run half. Three execution substrates implement the same
/// Backend interface and are looked up by name in a registry:
///
///   "machine"  the Figure 7 nondeterministic small-step machine
///              (runtime::Machine), driven by a seeded Rng with echo
///              replies emulated by the driver;
///   "sim"      the discrete-event simulator (sim::Simulation) in Nes
///              mode, one phase per quiescence window;
///   "engine"   the sharded concurrent engine (engine::Engine);
///   "net"      the engine behind a real socket front-end (net/Server.h)
///              — the workload is replayed by in-process clients over
///              loopback TCP (or UDP), Wire-framed, through the full
///              session/delivery path.
///
/// A Run handle binds a Compilation to one backend; execute(RunOptions)
/// realizes the *same* seeded ping workload (engine::TrafficGen over the
/// shared sim/Wire.h format) on that backend and returns a uniform
/// RunReport: packet/transition counters, the recorded
/// consistency::NetworkTrace, and the Definition 6 checker verdict. One
/// seed drives every backend's randomness, so cross-backend runs are
/// reproducible from a single flag.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_API_RUN_H
#define EVENTNET_API_RUN_H

#include "api/Compile.h"
#include "api/Status.h"
#include "consistency/Check.h"
#include "consistency/StreamCheck.h"
#include "consistency/Trace.h"
#include "engine/TrafficGen.h"
#include "faults/FaultPlan.h"
#include "obs/TraceRing.h"

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace eventnet {
namespace api {

/// Workload and execution parameters, builder-style. The same options
/// object drives every backend; backend-specific knobs (Shards) are
/// ignored where they do not apply.
class RunOptions {
public:
  RunOptions &seed(uint64_t V) {
    Seed = V;
    return *this;
  }
  RunOptions &shards(unsigned V) {
    Shards = V;
    return *this;
  }
  RunOptions &phases(unsigned V) {
    Phases = V;
    return *this;
  }
  RunOptions &pingsPerPhase(unsigned V) {
    PingsPerPhase = V;
    return *this;
  }
  RunOptions &workload(std::string V) {
    Workload = std::move(V);
    return *this;
  }
  RunOptions &churnRate(unsigned V) {
    ChurnRate = V;
    return *this;
  }
  RunOptions &stepBudget(size_t V) {
    StepBudget = V;
    return *this;
  }
  RunOptions &checkConsistency(bool V) {
    CheckConsistency = V;
    return *this;
  }
  RunOptions &streamingCheck(bool V) {
    StreamingCheck = V;
    return *this;
  }
  RunOptions &checkWindow(size_t V) {
    CheckWindow = V;
    return *this;
  }
  RunOptions &checkDifferential(bool V) {
    CheckDifferential = V;
    return *this;
  }
  RunOptions &classifier(bool V) {
    Classifier = V;
    return *this;
  }
  RunOptions &batch(unsigned V) {
    Batch = V;
    return *this;
  }
  RunOptions &partition(std::string V) {
    Partition = std::move(V);
    return *this;
  }
  RunOptions &latencyHistograms(bool V) {
    LatencyHistograms = V;
    return *this;
  }
  RunOptions &traceEvents(size_t CapacityPerShard) {
    TraceCapacity = CapacityPerShard;
    return *this;
  }
  RunOptions &metricsIntervalMs(unsigned V) {
    MetricsIntervalMs = V;
    return *this;
  }
  RunOptions &metricsPath(std::string V) {
    MetricsPath = std::move(V);
    return *this;
  }
  RunOptions &overload(std::string V) {
    Overload = std::move(V);
    return *this;
  }
  RunOptions &faults(std::shared_ptr<const faults::FaultPlan> V) {
    Faults = std::move(V);
    return *this;
  }
  RunOptions &netConnections(unsigned V) {
    NetConnections = V;
    return *this;
  }
  RunOptions &netUdp(bool V) {
    NetUdp = V;
    return *this;
  }
  RunOptions &stopFlag(const std::atomic<bool> *V) {
    StopFlag = V;
    return *this;
  }

  /// One seed for every backend's randomness: the workload generator,
  /// the machine driver's step choices, and the simulator's SimParams.
  uint64_t Seed = 1;
  /// Engine worker threads (engine backend only).
  unsigned Shards = 4;
  /// Quiescence-separated workload phases.
  unsigned Phases = 4;
  /// Echo requests per phase (clamped to the topology's host-pair count).
  unsigned PingsPerPhase = 8;
  /// Workload model: "ping" (the historical seeded echo workload) or
  /// "churn" (TrafficGen::churn — distinct-flow storm phases with
  /// ChurnRate rotating probe triggers per phase, the high-churn update
  /// bench's traffic shape).
  std::string Workload = "ping";
  /// Probe triggers per phase of the churn workload (ignored elsewhere).
  unsigned ChurnRate = 4;
  /// Machine backend: maximum steps per quiescence run.
  size_t StepBudget = 100000;
  /// Replay the recorded trace through the Definition 6 checker.
  bool CheckConsistency = true;
  /// Engine-based backends ("engine", "net", serveNet): verify Definition
  /// 6 *online* with the windowed streaming checker (consistency/
  /// StreamCheck.h) instead of the end-of-run batch replay. The full
  /// trace is no longer retained (O(window) memory), so the batch check
  /// is skipped unless CheckDifferential also runs it.
  bool StreamingCheck = false;
  /// Streaming checker window: hard cap on live (unretired) trace
  /// entries. Exceeding it degrades the verdict to inconclusive rather
  /// than growing without bound.
  size_t CheckWindow = 1 << 16;
  /// With StreamingCheck: ALSO record the full trace and run the batch
  /// checker, then report whether the two verdicts agree — the
  /// end-to-end differential harness for the streaming checker.
  bool CheckDifferential = false;
  /// Engine backend: classifier-program fast path (true) or the
  /// flattened-FDD-walk oracle (false).
  bool Classifier = true;
  /// Engine backend: hot-loop dequeue/enqueue batch size.
  unsigned Batch = 32;
  /// Engine backend: shard-placement strategy — "modulo", "contiguous",
  /// or "refined" (engine/Partition.h).
  std::string Partition = "refined";
  /// Engine backend: record per-hop queue-dwell and batch-occupancy
  /// histograms (obs/Histogram.h). Off by default — when off the hot
  /// loop takes no timestamps.
  bool LatencyHistograms = false;
  /// Engine backend: per-shard obs trace-ring capacity in events
  /// (obs/TraceRing.h); 0 (default) disables event tracing.
  size_t TraceCapacity = 0;
  /// Engine backend: periodic metrics-sampler interval in milliseconds;
  /// 0 (default) disables the sampler (obs/Sampler.h).
  unsigned MetricsIntervalMs = 0;
  /// Where sampler JSON-lines go: a file path, or "" for stderr.
  std::string MetricsPath;
  /// Engine backend: overload policy when a shard's input ring and
  /// overflow fill up — "block" (bounded backoff, lossless), "shed-oldest"
  /// or "shed-newest" (drop data-plane messages with full accounting).
  std::string Overload = "block";
  /// Fault-injection plan (faults/FaultPlan.h); null disables. The engine
  /// honors every plan element; the simulator honors the link faults; the
  /// machine backend rejects plans (no injection sites).
  std::shared_ptr<const faults::FaultPlan> Faults;
  /// Net backend: loopback client connections replaying the workload.
  unsigned NetConnections = 4;
  /// Net backend: replay over UDP instead of TCP.
  bool NetUdp = false;
  /// Cooperative cancellation (e.g. net/Signal.h): when set, the run
  /// stops injecting, drains, and returns a complete report early.
  const std::atomic<bool> *StopFlag = nullptr;
};

/// Percentile summary of one recorded latency dimension, in seconds
/// (BatchOccupancy reuses the shape with dimensionless counts).
struct LatencyReport {
  uint64_t Samples = 0;
  double MeanSec = 0;
  double P50Sec = 0;
  double P90Sec = 0;
  double P99Sec = 0;
  double MaxSec = 0;
};

/// End-of-run packet-conservation audit: every injected packet must end
/// in a delivery or a *counted* drop. SilentLoss > 0 means the run lost
/// packets without accounting for them (queue overflow, a protocol bug)
/// — a throughput or consistency "pass" over such a run is meaningless,
/// so reports render it loudly and scripts/check_report.py fails on it.
struct DropAudit {
  uint64_t Injected = 0;
  uint64_t Delivered = 0;
  uint64_t Dropped = 0;
  uint64_t SilentLoss = 0; ///< injected - delivered - dropped, if positive
  bool Ok = true;          ///< SilentLoss == 0
};

/// Per-shard engine counters surfaced in the report (empty on the
/// sequential backends). QueueHighWater, Dropped, and Switches let
/// bench runs attribute backpressure and imbalance without re-running
/// under a profiler.
struct ShardReport {
  uint64_t Processed = 0;
  uint64_t QueueHighWater = 0;
  uint64_t Dropped = 0;
  uint64_t Transitions = 0;
  uint32_t Switches = 0; ///< switches the partition placed on this shard
  uint64_t Shed = 0;     ///< messages shed by the overload policy
};

/// Fault-injection summary: what the plan actually did to the run. Drops,
/// dups, and delays are content-addressed and ledgered (same seed + same
/// plan => byte-identical Ledger); sheds, stalls, and storms are
/// timing-dependent and appear as counts only.
struct FaultReport {
  bool Enabled = false;
  uint64_t Drops = 0;        ///< packets dropped by the plan
  uint64_t Dups = 0;         ///< packets duplicated by the plan
  uint64_t Delays = 0;       ///< packets delayed by the plan
  uint64_t Shed = 0;         ///< messages shed by the overload policy
  uint64_t Stalls = 0;       ///< worker stalls taken
  uint64_t Storms = 0;       ///< controller storm re-broadcasts
  uint64_t DupDelivered = 0; ///< deliveries descending from a duplicate
  uint64_t DupDropped = 0;   ///< drops descending from a duplicate
  uint64_t LedgerEntries = 0; ///< deterministic ledger record count
  /// The canonical (sorted, newline-separated) fault ledger.
  std::string Ledger;
};

/// Socket-layer summary of a net-backend run: the server's session and
/// framing counters (net/Server.h) plus the replay clients' view.
/// Enabled only on the "net" backend; zeroed elsewhere. Conservation
/// invariant in Block mode (checked by scripts/check_report.py):
/// DeliveryFrames + RingShed + DeliveryUnroutable + NonNetDeliveries ==
/// the engine's PacketsDelivered.
struct NetReport {
  bool Enabled = false;
  std::string Poller; ///< readiness backend ("epoll" or "poll")
  bool Udp = false;
  uint16_t Port = 0; ///< bound TCP port (resolves an ephemeral request)
  uint64_t Connections = 0; ///< replay client connections
  uint64_t Accepted = 0;    ///< TCP accepts + distinct UDP peers
  uint64_t Closed = 0;
  uint64_t ProtocolErrors = 0;
  uint64_t FramesIn = 0;  ///< complete frames the server decoded
  uint64_t FramesOut = 0; ///< frames the server serialized back
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;
  uint64_t FramesInjected = 0; ///< Inject frames handed to the engine
  uint64_t DeliveryFrames = 0; ///< deliveries routed to a session
  uint64_t RepliesOut = 0;     ///< of those, echo replies (KindReply)
  uint64_t ReassemblyPartial = 0;
  uint64_t BackpressureShed = 0; ///< egress + delivery-ring sheds
  uint64_t RingShed = 0;         ///< of those, shed at the delivery ring
  uint64_t DeliveryUnroutable = 0; ///< conn tag of a dead session
  uint64_t NonNetDeliveries = 0;   ///< deliveries without a conn tag
  uint64_t BarriersAcked = 0;
  uint64_t UdpDatagrams = 0;
  uint64_t ClientDelivers = 0; ///< Deliver frames the clients received
  uint64_t ClientReplies = 0;  ///< of those, echo replies
  /// Client-observed round trip (request sent to echo reply received).
  LatencyReport Rtt;
};

/// Streaming Definition 6 verdict (RunOptions::StreamingCheck): the
/// online checker's three-valued result plus its resource attestation —
/// PeakWindow / PeakResidentBytes are the soak harness's evidence that
/// verification memory stayed bounded over the whole run.
struct StreamCheckReport {
  bool Enabled = false;
  size_t Window = 0; ///< configured live-entry cap
  /// Verdict, reason, and resource stats from the streaming checker.
  consistency::StreamResult Result;
  /// Stream items the engine shed because the checker's collector fell
  /// behind (EngineConfig::StreamBufCap). Nonzero forces the verdict to
  /// inconclusive ("stream_backlog").
  uint64_t StreamShed = 0;
  /// CheckDifferential: the batch checker also ran on the full trace.
  bool DifferentialRan = false;
  /// Streaming verdict agreed with the batch verdict (pass<->pass); only
  /// meaningful when DifferentialRan and the streaming verdict was
  /// conclusive.
  bool DifferentialMatched = true;
};

/// The uniform result of a run on any backend.
struct RunReport {
  std::string Backend;
  uint64_t Seed = 0;
  std::string Workload; ///< workload model the run executed ("ping", ...)
  unsigned Shards = 1; ///< 1 on the sequential backends
  bool Classifier = false; ///< engine: classifier fast path in use
  unsigned Batch = 1;      ///< engine: hot-loop batch size
  std::string Partition;   ///< engine: shard-placement strategy (else "")
  uint64_t EdgeCut = 0;    ///< engine: weighted inter-shard edge cut
  uint64_t EdgeTotal = 0;  ///< engine: total switch-graph edge weight
  std::string Overload;    ///< engine: overload policy name (else "")

  uint64_t PacketsInjected = 0;  ///< host emissions (incl. echo replies)
  uint64_t PacketsDelivered = 0; ///< packets handed to a host
  uint64_t PacketsDropped = 0;   ///< blocked / table-miss packets
  uint64_t SwitchHops = 0;       ///< switch processing steps
  uint64_t EventsDetected = 0;   ///< distinct NES events that occurred
  uint64_t ConfigTransitions = 0; ///< per-switch register transitions
  double ElapsedSec = 0;          ///< wall time (engine) / sim time (sim)

  /// Engine per-shard counters (queue high-water marks, drops).
  std::vector<ShardReport> ShardDetail;

  /// Event-detection to register-learn latency percentiles (the update
  /// latency; engine backend, zero Samples elsewhere).
  LatencyReport UpdateLatency;
  /// Per-hop queue-dwell percentiles (engine backend with
  /// RunOptions::LatencyHistograms; zero Samples otherwise).
  LatencyReport QueueDwell;
  /// Messages per non-empty hot-loop drain batch (same gating; the
  /// *Sec fields carry dimensionless counts).
  LatencyReport BatchOccupancy;

  /// Packet-conservation audit, filled for every backend. Under a fault
  /// plan the math discounts duplicate-descended outcomes, so injected
  /// faults never mask (or manufacture) silent loss.
  DropAudit Audit;

  /// Socket-layer summary (net backend; Enabled false elsewhere).
  NetReport Net;

  /// Fault-injection summary (Enabled false when no plan was active).
  FaultReport Faults;
  /// Ledger annotations for the Definition 6 checker (excused and
  /// duplicate trace entries); consumed by Run::execute.
  consistency::FaultContext FaultCtx;

  /// obs event-trace totals and the merged timeline (engine backend
  /// with RunOptions::TraceCapacity; else empty). Export with
  /// obs::writePerfettoTrace.
  uint64_t TraceRecorded = 0;
  uint64_t TraceDropped = 0;
  std::vector<obs::TraceEvent> ObsTrace;

  /// The recorded network trace (for replay and external checking).
  consistency::NetworkTrace Trace;
  /// Definition 6 verdict; only meaningful when Checked.
  bool Checked = false;
  consistency::CheckResult Consistency;
  /// Streaming Definition 6 verdict (Enabled false unless
  /// RunOptions::StreamingCheck on an engine-based backend).
  StreamCheckReport StreamCheck;

  /// Human-readable report block (the CLI's default rendering).
  std::string str() const;
  /// The same facts as a flat JSON object (without the trace).
  std::string json() const;
};

/// One execution substrate. Implementations fill every RunReport counter
/// they can observe and record a trace; the Definition 6 replay is done
/// by the caller (Run::execute), not per backend.
class Backend {
public:
  virtual ~Backend() = default;
  virtual const char *name() const = 0;
  /// Executes \p W on \p C. The report's Backend/Seed/Checked fields and
  /// the consistency verdict are filled in by the caller.
  virtual Result<RunReport> execute(const Compilation &C,
                                    const RunOptions &O,
                                    const engine::Workload &W) = 0;
};

/// Registered backend names, sorted ("engine", "machine", "sim" plus any
/// externally registered ones).
std::vector<std::string> backendNames();

/// Instantiates a registry entry; InvalidArgument for unknown names.
Result<std::unique_ptr<Backend>> makeBackend(const std::string &Name);

/// Adds a backend factory under \p Name (replacing any existing entry),
/// so embedders and future PRs add substrates without touching the CLI.
void registerBackend(const std::string &Name,
                     std::function<std::unique_ptr<Backend>()> Factory);

/// A Compilation bound to one backend; the reusable run handle.
/// Keeps a reference to the Compilation, which must outlive it.
class Run {
public:
  /// InvalidArgument if \p BackendName is not registered.
  static Result<Run> create(const Compilation &C,
                            const std::string &BackendName);

  /// Builds the seeded workload, executes it, and (unless disabled)
  /// replays the trace through the Definition 6 checker. A violated
  /// check is reported in the RunReport, not as an error Status; RunError
  /// is reserved for workloads the backend cannot execute at all.
  Result<RunReport> execute(const RunOptions &O = RunOptions());

  const char *backendName() const { return B->name(); }

private:
  Run(const Compilation &C, std::unique_ptr<Backend> B)
      : C(&C), B(std::move(B)) {}

  const Compilation *C;
  std::shared_ptr<Backend> B; ///< shared so Run stays copyable in Result
};

/// One-shot convenience: create + execute.
Result<RunReport> run(const Compilation &C, const std::string &BackendName,
                      const RunOptions &O = RunOptions());

/// Where api::serveNet listens (the eventnetc serve command).
struct ServeNetOptions {
  std::string BindAddr = "127.0.0.1"; ///< "0.0.0.0" serves off-box
  uint16_t Port = 9000;               ///< 0 binds an ephemeral port
  bool Udp = true; ///< also bind a UDP socket on the same port
  /// Stop serving after this many seconds (0 = only RunOptions::StopFlag
  /// or process death ends the loop). The deadline composes with the
  /// stop flag: whichever fires first drains the run. This is the soak
  /// harness's knob: `eventnetc serve --duration 300 --stream-check`.
  unsigned DurationSec = 0;
  /// Called once the listeners are bound, with the resolved TCP port —
  /// how callers learn an ephemeral bind before the loop blocks.
  std::function<void(uint16_t)> OnListening;
};

/// Serves real clients: binds the net front-end (net/Server.h) over a
/// live engine and runs until \p O.StopFlag is set (e.g. net/Signal.h
/// on SIGINT/SIGTERM), then drains sessions and the engine and returns
/// a complete RunReport — engine counters, the socket-layer Net block,
/// the drop audit, and (unless disabled) the Definition 6 verdict over
/// the recorded trace. Unlike run(), the workload comes from whatever
/// connects; RunOptions' workload knobs (Seed, Phases, PingsPerPhase)
/// are ignored.
Result<RunReport> serveNet(const Compilation &C, const RunOptions &O,
                           const ServeNetOptions &S = ServeNetOptions());

} // namespace api
} // namespace eventnet

#endif // EVENTNET_API_RUN_H
