//===- opt/RuleSharing.h - Section 5.3 rule-sharing trie --------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 5.3 optimization: configurations whose guarded rules are
/// installed side by side often share rules. If two configurations with
/// binary IDs differing only in low-order bits share a rule, one copy
/// guarded by a wildcarded ID mask ("1*") replaces both. Assigning IDs so
/// that similar configurations become trie siblings maximizes sharing.
///
/// The cost model: build a complete binary trie over the 2^k
/// configuration IDs; annotate each node with the intersection of its
/// children's rule sets; a rule is installed once per node where it first
/// appears (i.e. it is in the node's set but not its parent's). The
/// paper's polynomial heuristic pairs nodes level by level, greedily
/// maximizing the cardinality of sibling intersections.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_OPT_RULESHARING_H
#define EVENTNET_OPT_RULESHARING_H

#include "nes/Nes.h"
#include "topo/Topology.h"

#include <set>
#include <vector>

namespace eventnet {
namespace opt {

/// A configuration abstracted to a set of rule ids.
using RuleSet = std::set<unsigned>;

/// Result of a trie assignment.
struct TrieResult {
  /// Sum of per-configuration sizes: the rule count with naive (exact,
  /// per-ID) guards.
  size_t OriginalRules = 0;
  /// Rule count with wildcarded guards under the computed assignment.
  size_t OptimizedRules = 0;
  /// Leaf order: position i holds the index (into the input vector) of
  /// the configuration assigned ID i. Indices >= the input size denote
  /// padding configurations (see below).
  std::vector<unsigned> LeafOrder;
};

/// Cost of the complete trie whose leaves are \p Configs in the given
/// order (pairing adjacent leaves level by level).
size_t trieCost(const std::vector<RuleSet> &Configs);

/// The paper's bottom-up pairing heuristic. The input is padded to a
/// power of two with configurations containing every rule that occurs
/// (the paper's "dummy configurations containing all rules in R"), which
/// never increases sharing cost.
TrieResult shareRulesHeuristic(const std::vector<RuleSet> &Configs);

/// Exhaustive minimum over all leaf orders; exponential, for testing
/// the heuristic on small inputs (at most 8 configurations).
size_t shareRulesOptimal(const std::vector<RuleSet> &Configs);

/// Applies the optimization to a compiled NES: per switch, the guarded
/// rules of every event-set tag are shared across tags. Returns total
/// rule counts before/after, the paper's per-application metric
/// (18 -> 16 for the firewall, etc.).
struct NesShareStats {
  size_t Before = 0;
  size_t After = 0;
  double savings() const {
    return Before == 0 ? 0 : 1.0 - static_cast<double>(After) / Before;
  }
};
NesShareStats shareRulesForNes(const nes::Nes &N,
                               const topo::Topology &Topo);

} // namespace opt
} // namespace eventnet

#endif // EVENTNET_OPT_RULESHARING_H
