//===- opt/RuleSharing.cpp - Section 5.3 rule-sharing trie ----------------===//

#include "opt/RuleSharing.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

using namespace eventnet;
using namespace eventnet::opt;

namespace {

RuleSet intersect(const RuleSet &A, const RuleSet &B) {
  RuleSet Out;
  std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                        std::inserter(Out, Out.begin()));
  return Out;
}

size_t intersectionSize(const RuleSet &A, const RuleSet &B) {
  size_t N = 0;
  auto I = A.begin();
  auto J = B.begin();
  while (I != A.end() && J != B.end()) {
    if (*I < *J)
      ++I;
    else if (*J < *I)
      ++J;
    else {
      ++N;
      ++I;
      ++J;
    }
  }
  return N;
}

/// Cost of a complete trie whose leaf sets (in order) are \p Level0:
/// every node installs the rules it has beyond its parent.
size_t costOfOrder(const std::vector<RuleSet> &Level0) {
  assert((Level0.size() & (Level0.size() - 1)) == 0 &&
         "leaf count must be a power of two");
  // Build levels bottom-up; track each node's set.
  std::vector<std::vector<RuleSet>> Levels{Level0};
  while (Levels.back().size() > 1) {
    const std::vector<RuleSet> &Prev = Levels.back();
    std::vector<RuleSet> Next;
    for (size_t I = 0; I + 1 < Prev.size(); I += 2)
      Next.push_back(intersect(Prev[I], Prev[I + 1]));
    Levels.push_back(std::move(Next));
  }
  // Root's parent is the empty set; each node pays |set \ parent-set|.
  size_t Cost = 0;
  for (size_t L = Levels.size(); L-- > 0;) {
    for (size_t I = 0; I != Levels[L].size(); ++I) {
      const RuleSet &Mine = Levels[L][I];
      if (L + 1 == Levels.size()) {
        Cost += Mine.size();
        continue;
      }
      const RuleSet &Parent = Levels[L + 1][I / 2];
      for (unsigned R : Mine)
        Cost += !Parent.count(R);
    }
  }
  return Cost;
}

/// Pads \p Configs to a power of two by duplicating existing
/// configurations. A duplicate leaf pairs with its twin at zero extra
/// cost (the twin's rules are already fully shared), so padding never
/// inflates the installed-rule count — unlike the paper's all-rules
/// dummies, which are fine for the formal development but would be
/// counted as real rules here.
std::vector<RuleSet> padded(const std::vector<RuleSet> &Configs,
                            std::vector<unsigned> *Order) {
  assert(!Configs.empty() && "no configurations to share");
  std::vector<RuleSet> Out = Configs;
  size_t Target = 1;
  while (Target < Out.size())
    Target <<= 1;
  // Duplicate the configurations that currently have odd multiplicity,
  // largest first: an even multiplicity lets the heuristic pair every
  // copy with a free twin instead of stranding one next to a dissimilar
  // sibling.
  while (Out.size() < Target) {
    std::map<RuleSet, size_t> Mult;
    for (const RuleSet &C : Out)
      ++Mult[C];
    const RuleSet *Pick = nullptr;
    for (const auto &[Set, Count] : Mult)
      if (Count % 2 == 1 &&
          (!Pick || Set.size() > Pick->size()))
        Pick = &Set;
    Out.push_back(Pick ? *Pick : Configs[0]);
  }
  if (Order) {
    Order->clear();
    for (unsigned I = 0; I != Out.size(); ++I)
      Order->push_back(I);
  }
  return Out;
}

} // namespace

size_t opt::trieCost(const std::vector<RuleSet> &Configs) {
  std::vector<RuleSet> Leaves = padded(Configs, nullptr);
  return costOfOrder(Leaves);
}

TrieResult opt::shareRulesHeuristic(const std::vector<RuleSet> &Configs) {
  TrieResult Res;
  for (const RuleSet &C : Configs)
    Res.OriginalRules += C.size();

  std::vector<unsigned> Order;
  std::vector<RuleSet> Leaves = padded(Configs, &Order);

  // Level-by-level greedy pairing: repeatedly join the two unpaired
  // nodes with the largest intersection.
  struct Node {
    RuleSet Set;
    std::vector<unsigned> Leaves; // original leaf indices, in order
  };
  std::vector<Node> Level;
  for (unsigned I = 0; I != Leaves.size(); ++I)
    Level.push_back(Node{Leaves[I], {I}});

  while (Level.size() > 1) {
    std::vector<bool> Used(Level.size(), false);
    std::vector<Node> Next;
    for (size_t Pair = 0; Pair != Level.size() / 2; ++Pair) {
      // Find the best unused pair.
      size_t BestA = 0, BestB = 0;
      long BestScore = -1;
      for (size_t A = 0; A != Level.size(); ++A) {
        if (Used[A])
          continue;
        for (size_t B = A + 1; B != Level.size(); ++B) {
          if (Used[B])
            continue;
          long Score =
              static_cast<long>(intersectionSize(Level[A].Set, Level[B].Set));
          if (Score > BestScore) {
            BestScore = Score;
            BestA = A;
            BestB = B;
          }
        }
      }
      Used[BestA] = Used[BestB] = true;
      Node Joined;
      Joined.Set = intersect(Level[BestA].Set, Level[BestB].Set);
      Joined.Leaves = Level[BestA].Leaves;
      Joined.Leaves.insert(Joined.Leaves.end(), Level[BestB].Leaves.begin(),
                           Level[BestB].Leaves.end());
      Next.push_back(std::move(Joined));
    }
    Level = std::move(Next);
  }

  Res.LeafOrder = Level[0].Leaves;
  std::vector<RuleSet> Ordered;
  for (unsigned Leaf : Res.LeafOrder)
    Ordered.push_back(Leaves[Leaf]);
  Res.OptimizedRules = costOfOrder(Ordered);
  return Res;
}

size_t opt::shareRulesOptimal(const std::vector<RuleSet> &Configs) {
  assert(Configs.size() <= 8 && "exhaustive search is exponential");
  std::vector<RuleSet> Leaves = padded(Configs, nullptr);
  std::vector<unsigned> Perm;
  for (unsigned I = 0; I != Leaves.size(); ++I)
    Perm.push_back(I);
  size_t Best = static_cast<size_t>(-1);
  do {
    std::vector<RuleSet> Ordered;
    for (unsigned I : Perm)
      Ordered.push_back(Leaves[I]);
    Best = std::min(Best, costOfOrder(Ordered));
  } while (std::next_permutation(Perm.begin(), Perm.end()));
  return Best;
}

NesShareStats opt::shareRulesForNes(const nes::Nes &N,
                                    const topo::Topology &Topo) {
  NesShareStats Stats;
  for (SwitchId Sw : Topo.switches()) {
    // Intern each switch's rules across configurations: a rule is the
    // (priority, pattern, actions) triple; the tag guard is what the trie
    // assignment wildcard-compresses.
    std::map<std::string, unsigned> RuleIds;
    std::vector<RuleSet> Configs;
    for (nes::SetId S = 0; S != N.numSets(); ++S) {
      RuleSet Set;
      for (const flowtable::Rule &R : N.configOf(S).tableFor(Sw).rules()) {
        std::ostringstream Key;
        Key << R.Priority << '|' << R.Pattern.str() << '|';
        for (const auto &A : R.Actions) {
          for (const auto &[F, V] : A)
            Key << fieldName(F) << V << ',';
          Key << ';';
        }
        auto [It, Inserted] =
            RuleIds.emplace(Key.str(), static_cast<unsigned>(RuleIds.size()));
        Set.insert(It->second);
      }
      Configs.push_back(std::move(Set));
    }
    TrieResult R = shareRulesHeuristic(Configs);
    Stats.Before += R.OriginalRules;
    Stats.After += R.OptimizedRules;
  }
  return Stats;
}
