//===- faults/Injector.h - Compiled fault-plan triggers ---------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Injector is a FaultPlan compiled for the hot path: the substrates
/// (engine shards, the simulator) hold a `const Injector *` that is null
/// when no plan is active — the same null-pointer gating the obs layer
/// uses, so a disabled harness costs one predictable branch.
///
/// Link decisions are pure functions: `decide(Sw, Pt, Pkt)` hashes the
/// plan seed with the egress site and the packet's wire header fields
/// (SplitMix64 finalizer chain) and compares salted uniform draws
/// against the first matching rule's probabilities. No state, no
/// per-thread RNG — identical inputs give identical verdicts on every
/// run and both substrates, which is what makes the fault ledger
/// reproducible under the engine's nondeterministic thread scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_FAULTS_INJECTOR_H
#define EVENTNET_FAULTS_INJECTOR_H

#include "faults/FaultPlan.h"
#include "netkat/Packet.h"

namespace eventnet {
namespace faults {

/// What `decide` tells a substrate to do with one packet at one egress.
/// Drop takes precedence over Dup over Delay when several draws hit.
enum class Action : uint8_t { None, Drop, Dup, Delay };

class Injector {
public:
  explicit Injector(FaultPlan Plan) : P(std::move(Plan)) {}

  const FaultPlan &plan() const { return P; }
  bool hasLinkRules() const { return !P.Links.empty(); }

  /// True when some link rule can ever fire at switch `Sw` — lets the
  /// engine precompute a per-switch gate at build time.
  bool armsSwitch(SwitchId Sw) const {
    for (const LinkRule &R : P.Links)
      if (R.Sw < 0 || R.Sw == static_cast<int64_t>(Sw))
        return true;
    return false;
  }

  /// Content-addressed verdict for packet `Out` leaving `Sw` via `Pt`.
  /// The first rule matching the site and the packet's seq window rolls
  /// the dice; later rules are shadowed (document plans accordingly).
  Action decide(SwitchId Sw, PortId Pt, const netkat::Packet &Out) const;

  /// Ledger record for an applied link action at a site.
  static FaultRecord recordAt(FaultKind K, SwitchId Sw, PortId Pt,
                              const netkat::Packet &Out);

  /// The stall rule governing engine shard `Shard`, or nullptr.
  const StallRule *stallFor(uint32_t Shard) const {
    for (const StallRule &R : P.Stalls)
      if (R.Shard < 0 || R.Shard == static_cast<int64_t>(Shard))
        return &R;
    return nullptr;
  }

private:
  FaultPlan P;
};

} // namespace faults
} // namespace eventnet

#endif // EVENTNET_FAULTS_INJECTOR_H
