//===- faults/Injector.cpp - Content-addressed fault decisions ------------===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//

#include "faults/Injector.h"

#include "sim/Wire.h"

using namespace eventnet;
using namespace eventnet::faults;

namespace {

// SplitMix64 finalizer (same constants as support/Rng.h). Used as a
// stateless hash here: the decision for a packet at a site must not
// depend on how many decisions were made before it.
inline uint64_t mix64(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return X;
}

inline double unitDraw(uint64_t H) {
  return static_cast<double>(H >> 11) * 0x1.0p-53;
}

// Distinct salts keep the drop/dup/delay draws for one packet
// independent of each other.
constexpr uint64_t DropSalt = 0x7fb5d329728ea185ULL;
constexpr uint64_t DupSalt = 0x81dadef4bc2dd44dULL;
constexpr uint64_t DelaySalt = 0x99bcf6822b23ca35ULL;

struct WireKey {
  Value Src, Dst, Seq, Kind;
};

WireKey wireKey(const netkat::Packet &P) {
  return {P.getOr(sim::ipSrcField(), -1), P.getOr(sim::ipDstField(), -1),
          P.getOr(sim::seqField(), -1), P.getOr(sim::kindField(), -1)};
}

uint64_t siteHash(uint64_t Seed, SwitchId Sw, PortId Pt, const WireKey &K) {
  uint64_t H = mix64(Seed ^ 0x9e3779b97f4a7c15ULL);
  H = mix64(H ^ static_cast<uint64_t>(Sw));
  H = mix64(H ^ static_cast<uint64_t>(Pt));
  H = mix64(H ^ static_cast<uint64_t>(K.Src + 2));
  H = mix64(H ^ static_cast<uint64_t>(K.Dst + 2));
  H = mix64(H ^ static_cast<uint64_t>(K.Seq + 2));
  H = mix64(H ^ static_cast<uint64_t>(K.Kind + 2));
  return H;
}

} // namespace

Action Injector::decide(SwitchId Sw, PortId Pt,
                        const netkat::Packet &Out) const {
  WireKey K = wireKey(Out);
  for (const LinkRule &R : P.Links) {
    if (!R.matchesSite(Sw, Pt) || !R.inWindow(K.Seq))
      continue;
    uint64_t H = siteHash(P.Seed, Sw, Pt, K);
    if (R.DropP > 0 && unitDraw(mix64(H ^ DropSalt)) < R.DropP)
      return Action::Drop;
    if (R.DupP > 0 && unitDraw(mix64(H ^ DupSalt)) < R.DupP)
      return Action::Dup;
    if (R.DelayP > 0 && unitDraw(mix64(H ^ DelaySalt)) < R.DelayP)
      return Action::Delay;
    return Action::None; // first matching rule shadows the rest
  }
  return Action::None;
}

FaultRecord Injector::recordAt(FaultKind K, SwitchId Sw, PortId Pt,
                               const netkat::Packet &Out) {
  WireKey W = wireKey(Out);
  FaultRecord R;
  R.K = K;
  R.Sw = static_cast<int64_t>(Sw);
  R.Pt = static_cast<int64_t>(Pt);
  R.Src = W.Src;
  R.Dst = W.Dst;
  R.Seq = W.Seq;
  R.Kind = W.Kind;
  return R;
}
