//===- faults/FaultPlan.h - Deterministic fault-injection plans -*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FaultPlan is a seeded, serializable schedule of adversity: per-link
/// drop/duplicate/delay probabilities with sequence windows, per-shard
/// stall intervals, a forced queue-capacity clamp, and controller event
/// storms. The same plan runs on the engine and on the discrete-event
/// simulator, so the Definition 6 checker can be exercised against
/// provoked loss, duplication, and reordering on both substrates.
///
/// Determinism is the point. Engine thread interleavings vary run to
/// run, so "drop every Nth packet through this port" would produce a
/// different fault set each time. Instead every link-fault decision is
/// *content-addressed*: a pure hash of (plan seed, egress switch, egress
/// port, packet header fields). The same packet crossing the same link
/// gets the same verdict in every run and on every substrate, which
/// makes the fault ledger — the canonical record of what was injected —
/// byte-identical across repeat runs with the same seed and plan. Faults
/// whose *occurrence* is inherently timing-dependent (overload sheds,
/// shard stalls) are tallied in Stats and the obs ring but deliberately
/// kept out of the serialized ledger.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_FAULTS_FAULTPLAN_H
#define EVENTNET_FAULTS_FAULTPLAN_H

#include "api/Status.h"
#include "support/Ids.h"

#include <cstdint>
#include <string>
#include <vector>

namespace eventnet {
namespace faults {

/// Link-level fault probabilities for packets leaving switch `Sw` via
/// port `Pt` (-1 wildcards either). `FromSeq`/`ToSeq` window the rule to
/// a half-open range of the wire `seq` field (`ToSeq` < 0 = open), so a
/// plan can target the middle of a run — e.g. only packets emitted while
/// a network update is in flight.
struct LinkRule {
  int64_t Sw = -1;     ///< egress switch, -1 = every switch
  int64_t Pt = -1;     ///< egress port, -1 = every port
  double DropP = 0.0;  ///< P(packet is dropped on this link)
  double DupP = 0.0;   ///< P(packet is duplicated on this link)
  double DelayP = 0.0; ///< P(packet is delayed, hence reordered)
  int64_t FromSeq = 0; ///< rule active for seq >= FromSeq
  int64_t ToSeq = -1;  ///< ... and seq < ToSeq (negative = open)

  bool matchesSite(SwitchId Sw_, PortId Pt_) const {
    return (Sw < 0 || Sw == static_cast<int64_t>(Sw_)) &&
           (Pt < 0 || Pt == static_cast<int64_t>(Pt_));
  }
  bool inWindow(int64_t Seq) const {
    return Seq >= FromSeq && (ToSeq < 0 || Seq < ToSeq);
  }
};

/// Pauses an engine worker thread for `StallUs` microseconds after every
/// `EveryBatches`-th non-empty drain batch. Engine-only (the simulator
/// has no worker threads); timing-dependent, so stalls are counted but
/// never ledgered.
struct StallRule {
  int64_t Shard = -1;         ///< -1 = every shard
  uint64_t EveryBatches = 64; ///< stall cadence, in non-empty batches
  uint32_t StallUs = 100;     ///< pause length per stall
};

/// The full schedule. Round-trips through JSON (`fromJson`/`json`) so
/// plans can be committed under examples/faults/ and swept by
/// scripts/run_chaos.py.
struct FaultPlan {
  uint64_t Seed = 1;               ///< salt for every content-addressed decision
  std::vector<LinkRule> Links;     ///< link drop/dup/delay rules
  std::vector<StallRule> Stalls;   ///< engine worker stalls
  uint64_t QueueCapacityClamp = 0; ///< engine: min() with configured capacity
  uint32_t CtrlStormRepeat = 0;    ///< engine: extra CtrlMerge broadcasts/event
  uint32_t DelayPolls = 64;        ///< engine: drain polls a delayed msg is held
  double DelayExtraSec = 0.005;    ///< sim: added link latency when delayed

  /// True when the plan can actually perturb a run.
  bool enabled() const {
    return !Links.empty() || !Stalls.empty() || QueueCapacityClamp > 0 ||
           CtrlStormRepeat > 0;
  }

  /// Serializes the plan as a JSON object (stable key order).
  std::string json() const;

  /// Parses a plan from JSON text. Unknown keys are rejected so a typo
  /// in a chaos plan fails loudly instead of silently testing nothing.
  static api::Result<FaultPlan> fromJson(const std::string &Text);

  /// Reads and parses `Path`.
  static api::Result<FaultPlan> fromFile(const std::string &Path);
};

/// What kind of fault a ledger record describes.
enum class FaultKind : uint8_t {
  Drop = 0,  ///< packet removed at a link egress
  Dup = 1,   ///< packet duplicated at a link egress
  Delay = 2, ///< packet held back at a link egress (reordering)
  Storm = 3, ///< controller re-broadcast burst for one event
};

/// Returns a stable lowercase name ("drop", "dup", ...).
const char *faultKindName(FaultKind K);

/// One injected fault, identified by its site and the content address of
/// the affected packet. Records carry no timestamps or run-local ids, so
/// the multiset of records for a (seed, plan, config) triple is a pure
/// function of the workload — the basis of ledger determinism.
struct FaultRecord {
  FaultKind K = FaultKind::Drop;
  int64_t Sw = -1;  ///< egress switch (Storm: the event id)
  int64_t Pt = -1;  ///< egress port (Storm: repeat count)
  int64_t Src = -1; ///< packet ip_src (-1 when absent)
  int64_t Dst = -1; ///< packet ip_dst
  int64_t Seq = -1; ///< packet seq
  int64_t Kind = -1; ///< packet wire kind (request/reply/...)

  /// Canonical ordering for byte-stable serialization.
  friend bool operator<(const FaultRecord &A, const FaultRecord &B);
  friend bool operator==(const FaultRecord &A, const FaultRecord &B);

  /// One-line text form, e.g. "drop sw=3 pt=1 src=0 dst=4 seq=7 kind=0".
  std::string line() const;
};

/// Everything a run learned about its injected faults: the deterministic
/// record multiset plus the run-local trace annotations the consistency
/// checker needs to excuse ledgered damage.
struct FaultLedger {
  std::vector<FaultRecord> Records;

  /// Merged-trace entry indices whose packet chains may be truncated
  /// (the last logged entry before a ledgered drop or an overload shed).
  /// Run-local: trace indices differ between substrates.
  std::vector<int> ExcusedEntries;

  /// Merged-trace entry indices of duplicate egress entries: each roots
  /// a subtree the checker deduplicates before verifying Definition 6.
  std::vector<int> DupEntries;

  bool empty() const {
    return Records.empty() && ExcusedEntries.empty() && DupEntries.empty();
  }

  /// Byte-stable serialization of the record multiset: records sorted
  /// canonically, one `line()` per row, '\n'-terminated. Same seed +
  /// same plan + same config => identical bytes across runs.
  std::string canonical() const;
};

} // namespace faults
} // namespace eventnet

#endif // EVENTNET_FAULTS_FAULTPLAN_H
