//===- faults/FaultPlan.cpp - Plan JSON round-trip + ledger ---------------===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//

#include "faults/FaultPlan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <tuple>

using namespace eventnet;
using namespace eventnet::faults;

//===----------------------------------------------------------------------===//
// Minimal JSON reader
//===----------------------------------------------------------------------===//
//
// Plans are small hand-written files, and the container bakes in no JSON
// dependency, so this is a ~100-line recursive-descent parser for the
// subset plans need: objects, arrays, numbers, strings (no escapes
// beyond \" \\ / \n \t), true/false/null. Errors carry a byte offset.

namespace {

struct JsonValue {
  enum Kind { Null, Bool, Num, Str, Arr, Obj } K = Null;
  bool B = false;
  double N = 0.0;
  std::string S;
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Fields;

  const JsonValue *find(const std::string &Key) const {
    for (const auto &[K_, V] : Fields)
      if (K_ == Key)
        return &V;
    return nullptr;
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : T(Text) {}

  api::Result<JsonValue> parse() {
    JsonValue V;
    if (api::Status S = value(V); !S.ok())
      return S;
    skipWs();
    if (Pos != T.size())
      return err("trailing characters after JSON value");
    return V;
  }

private:
  const std::string &T;
  size_t Pos = 0;

  api::Status err(const std::string &Msg) const {
    return api::Status::error(api::Code::InvalidArgument,
                              "fault plan JSON, byte " + std::to_string(Pos) +
                                  ": " + Msg);
  }
  void skipWs() {
    while (Pos < T.size() && (T[Pos] == ' ' || T[Pos] == '\t' ||
                              T[Pos] == '\n' || T[Pos] == '\r'))
      ++Pos;
  }
  bool eat(char C) {
    skipWs();
    if (Pos < T.size() && T[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  api::Status value(JsonValue &Out) {
    skipWs();
    if (Pos >= T.size())
      return err("unexpected end of input");
    char C = T[Pos];
    if (C == '{')
      return object(Out);
    if (C == '[')
      return array(Out);
    if (C == '"') {
      Out.K = JsonValue::Str;
      return string(Out.S);
    }
    if (C == 't' || C == 'f')
      return boolean(Out);
    if (C == 'n') {
      if (T.compare(Pos, 4, "null") != 0)
        return err("expected 'null'");
      Pos += 4;
      Out.K = JsonValue::Null;
      return api::Status::success();
    }
    return number(Out);
  }

  api::Status object(JsonValue &Out) {
    Out.K = JsonValue::Obj;
    ++Pos; // '{'
    if (eat('}'))
      return api::Status::success();
    for (;;) {
      skipWs();
      if (Pos >= T.size() || T[Pos] != '"')
        return err("expected object key string");
      std::string Key;
      if (api::Status S = string(Key); !S.ok())
        return S;
      if (!eat(':'))
        return err("expected ':' after object key");
      JsonValue V;
      if (api::Status S = value(V); !S.ok())
        return S;
      Out.Fields.emplace_back(std::move(Key), std::move(V));
      if (eat(','))
        continue;
      if (eat('}'))
        return api::Status::success();
      return err("expected ',' or '}' in object");
    }
  }

  api::Status array(JsonValue &Out) {
    Out.K = JsonValue::Arr;
    ++Pos; // '['
    if (eat(']'))
      return api::Status::success();
    for (;;) {
      JsonValue V;
      if (api::Status S = value(V); !S.ok())
        return S;
      Out.Items.push_back(std::move(V));
      if (eat(','))
        continue;
      if (eat(']'))
        return api::Status::success();
      return err("expected ',' or ']' in array");
    }
  }

  api::Status string(std::string &Out) {
    ++Pos; // '"'
    Out.clear();
    while (Pos < T.size()) {
      char C = T[Pos++];
      if (C == '"')
        return api::Status::success();
      if (C == '\\') {
        if (Pos >= T.size())
          break;
        char E = T[Pos++];
        switch (E) {
        case '"': Out += '"'; break;
        case '\\': Out += '\\'; break;
        case '/': Out += '/'; break;
        case 'n': Out += '\n'; break;
        case 't': Out += '\t'; break;
        default:
          return err(std::string("unsupported escape '\\") + E + "'");
        }
        continue;
      }
      Out += C;
    }
    return err("unterminated string");
  }

  api::Status boolean(JsonValue &Out) {
    Out.K = JsonValue::Bool;
    if (T.compare(Pos, 4, "true") == 0) {
      Out.B = true;
      Pos += 4;
      return api::Status::success();
    }
    if (T.compare(Pos, 5, "false") == 0) {
      Out.B = false;
      Pos += 5;
      return api::Status::success();
    }
    return err("expected 'true' or 'false'");
  }

  api::Status number(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < T.size() && T[Pos] == '-')
      ++Pos;
    while (Pos < T.size() &&
           (isdigit(static_cast<unsigned char>(T[Pos])) || T[Pos] == '.' ||
            T[Pos] == 'e' || T[Pos] == 'E' || T[Pos] == '+' || T[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return err("expected a value");
    try {
      Out.N = std::stod(T.substr(Start, Pos - Start));
    } catch (...) {
      return err("malformed number '" + T.substr(Start, Pos - Start) + "'");
    }
    Out.K = JsonValue::Num;
    return api::Status::success();
  }
};

api::Status wrongType(const std::string &Key, const char *Want) {
  return api::Status::error(api::Code::InvalidArgument,
                            "fault plan: key '" + Key + "' must be " + Want);
}

api::Status getNum(const JsonValue &O, const std::string &Key, double &Out,
                   bool &Seen) {
  const JsonValue *V = O.find(Key);
  if (!V)
    return api::Status::success();
  if (V->K != JsonValue::Num)
    return wrongType(Key, "a number");
  Out = V->N;
  Seen = true;
  return api::Status::success();
}

template <typename IntT>
api::Status getInt(const JsonValue &O, const std::string &Key, IntT &Out) {
  double D = 0;
  bool Seen = false;
  if (api::Status S = getNum(O, Key, D, Seen); !S.ok())
    return S;
  if (!Seen)
    return api::Status::success();
  if (D != std::floor(D))
    return wrongType(Key, "an integer");
  Out = static_cast<IntT>(D);
  return api::Status::success();
}

api::Status getProb(const JsonValue &O, const std::string &Key, double &Out) {
  bool Seen = false;
  if (api::Status S = getNum(O, Key, Out, Seen); !S.ok())
    return S;
  if (Out < 0.0 || Out > 1.0)
    return api::Status::error(api::Code::InvalidArgument,
                              "fault plan: key '" + Key +
                                  "' must be a probability in [0, 1]");
  return api::Status::success();
}

api::Status checkKeys(const JsonValue &O, const char *What,
                      std::initializer_list<const char *> Allowed) {
  for (const auto &[K, V] : O.Fields) {
    (void)V;
    bool Known = false;
    for (const char *A : Allowed)
      if (K == A)
        Known = true;
    if (!Known)
      return api::Status::error(api::Code::InvalidArgument,
                                std::string("fault plan: unknown ") + What +
                                    " key '" + K + "'");
  }
  return api::Status::success();
}

// Renders a double with enough precision to round-trip probabilities,
// trimming trailing zeros so committed plans stay readable.
std::string numStr(double D) {
  if (D == std::floor(D) && std::abs(D) < 1e15)
    return std::to_string(static_cast<long long>(D));
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.12g", D);
  return Buf;
}

} // namespace

//===----------------------------------------------------------------------===//
// FaultPlan
//===----------------------------------------------------------------------===//

std::string FaultPlan::json() const {
  std::ostringstream OS;
  OS << "{\"seed\": " << Seed;
  OS << ", \"links\": [";
  for (size_t I = 0; I < Links.size(); ++I) {
    const LinkRule &R = Links[I];
    OS << (I ? ", " : "") << "{\"switch\": " << R.Sw << ", \"port\": " << R.Pt
       << ", \"drop_p\": " << numStr(R.DropP)
       << ", \"dup_p\": " << numStr(R.DupP)
       << ", \"delay_p\": " << numStr(R.DelayP)
       << ", \"from_seq\": " << R.FromSeq << ", \"to_seq\": " << R.ToSeq
       << "}";
  }
  OS << "], \"stalls\": [";
  for (size_t I = 0; I < Stalls.size(); ++I) {
    const StallRule &R = Stalls[I];
    OS << (I ? ", " : "") << "{\"shard\": " << R.Shard
       << ", \"every_batches\": " << R.EveryBatches
       << ", \"stall_us\": " << R.StallUs << "}";
  }
  OS << "], \"queue_capacity_clamp\": " << QueueCapacityClamp
     << ", \"ctrl_storm_repeat\": " << CtrlStormRepeat
     << ", \"delay_polls\": " << DelayPolls
     << ", \"delay_extra_sec\": " << numStr(DelayExtraSec) << "}";
  return OS.str();
}

api::Result<FaultPlan> FaultPlan::fromJson(const std::string &Text) {
  api::Result<JsonValue> Root = JsonParser(Text).parse();
  if (!Root.ok())
    return Root.status();
  if (Root->K != JsonValue::Obj)
    return api::Status::error(api::Code::InvalidArgument,
                              "fault plan: top level must be a JSON object");
  if (api::Status S = checkKeys(
          *Root, "plan",
          {"seed", "links", "stalls", "queue_capacity_clamp",
           "ctrl_storm_repeat", "delay_polls", "delay_extra_sec"});
      !S.ok())
    return S;

  FaultPlan P;
  if (api::Status S = getInt(*Root, "seed", P.Seed); !S.ok())
    return S;
  if (api::Status S = getInt(*Root, "queue_capacity_clamp",
                             P.QueueCapacityClamp);
      !S.ok())
    return S;
  if (api::Status S = getInt(*Root, "ctrl_storm_repeat", P.CtrlStormRepeat);
      !S.ok())
    return S;
  if (api::Status S = getInt(*Root, "delay_polls", P.DelayPolls); !S.ok())
    return S;
  bool Seen = false;
  if (api::Status S = getNum(*Root, "delay_extra_sec", P.DelayExtraSec, Seen);
      !S.ok())
    return S;
  if (P.DelayExtraSec < 0)
    return api::Status::error(api::Code::InvalidArgument,
                              "fault plan: 'delay_extra_sec' must be >= 0");

  if (const JsonValue *Links = Root->find("links")) {
    if (Links->K != JsonValue::Arr)
      return wrongType("links", "an array");
    for (const JsonValue &L : Links->Items) {
      if (L.K != JsonValue::Obj)
        return wrongType("links[]", "an object");
      if (api::Status S = checkKeys(L, "link rule",
                                    {"switch", "port", "drop_p", "dup_p",
                                     "delay_p", "from_seq", "to_seq"});
          !S.ok())
        return S;
      LinkRule R;
      if (api::Status S = getInt(L, "switch", R.Sw); !S.ok())
        return S;
      if (api::Status S = getInt(L, "port", R.Pt); !S.ok())
        return S;
      if (api::Status S = getProb(L, "drop_p", R.DropP); !S.ok())
        return S;
      if (api::Status S = getProb(L, "dup_p", R.DupP); !S.ok())
        return S;
      if (api::Status S = getProb(L, "delay_p", R.DelayP); !S.ok())
        return S;
      if (api::Status S = getInt(L, "from_seq", R.FromSeq); !S.ok())
        return S;
      if (api::Status S = getInt(L, "to_seq", R.ToSeq); !S.ok())
        return S;
      P.Links.push_back(R);
    }
  }

  if (const JsonValue *Stalls = Root->find("stalls")) {
    if (Stalls->K != JsonValue::Arr)
      return wrongType("stalls", "an array");
    for (const JsonValue &St : Stalls->Items) {
      if (St.K != JsonValue::Obj)
        return wrongType("stalls[]", "an object");
      if (api::Status S = checkKeys(St, "stall rule",
                                    {"shard", "every_batches", "stall_us"});
          !S.ok())
        return S;
      StallRule R;
      if (api::Status S = getInt(St, "shard", R.Shard); !S.ok())
        return S;
      if (api::Status S = getInt(St, "every_batches", R.EveryBatches); !S.ok())
        return S;
      if (api::Status S = getInt(St, "stall_us", R.StallUs); !S.ok())
        return S;
      if (R.EveryBatches == 0)
        return api::Status::error(api::Code::InvalidArgument,
                                  "fault plan: 'every_batches' must be >= 1");
      P.Stalls.push_back(R);
    }
  }
  return P;
}

api::Result<FaultPlan> FaultPlan::fromFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return api::Status::error(api::Code::IoError,
                              "cannot read fault plan '" + Path + "'");
  std::ostringstream SS;
  SS << In.rdbuf();
  return fromJson(SS.str());
}

//===----------------------------------------------------------------------===//
// FaultRecord / FaultLedger
//===----------------------------------------------------------------------===//

const char *eventnet::faults::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::Drop:
    return "drop";
  case FaultKind::Dup:
    return "dup";
  case FaultKind::Delay:
    return "delay";
  case FaultKind::Storm:
    return "storm";
  }
  return "?";
}

namespace eventnet {
namespace faults {

bool operator<(const FaultRecord &A, const FaultRecord &B) {
  return std::tie(A.K, A.Sw, A.Pt, A.Src, A.Dst, A.Seq, A.Kind) <
         std::tie(B.K, B.Sw, B.Pt, B.Src, B.Dst, B.Seq, B.Kind);
}

bool operator==(const FaultRecord &A, const FaultRecord &B) {
  return std::tie(A.K, A.Sw, A.Pt, A.Src, A.Dst, A.Seq, A.Kind) ==
         std::tie(B.K, B.Sw, B.Pt, B.Src, B.Dst, B.Seq, B.Kind);
}

} // namespace faults
} // namespace eventnet

std::string FaultRecord::line() const {
  std::ostringstream OS;
  OS << faultKindName(K) << " sw=" << Sw << " pt=" << Pt << " src=" << Src
     << " dst=" << Dst << " seq=" << Seq << " kind=" << Kind;
  return OS.str();
}

std::string FaultLedger::canonical() const {
  std::vector<FaultRecord> Sorted = Records;
  std::sort(Sorted.begin(), Sorted.end());
  std::string Out;
  for (const FaultRecord &R : Sorted) {
    Out += R.line();
    Out += '\n';
  }
  return Out;
}
