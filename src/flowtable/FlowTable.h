//===- flowtable/FlowTable.h - Prioritized match/action tables --*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flow-table intermediate representation that the FDD compiler
/// targets and the simulated switches execute: prioritized rules with
/// exact-match patterns (absent field = wildcard) and multicast action
/// sets. This is the same abstraction as an OpenFlow table restricted to
/// exact matches, which is all NetKAT tests require.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_FLOWTABLE_FLOWTABLE_H
#define EVENTNET_FLOWTABLE_FLOWTABLE_H

#include "netkat/Packet.h"
#include "support/Ids.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace eventnet {
namespace flowtable {

/// An exact-match pattern: a sorted (by field) list of required
/// field=value constraints. A field not mentioned is wildcarded.
class Match {
public:
  Match() = default;

  /// Adds (or overwrites) the constraint \p F == \p V.
  void require(FieldId F, Value V);

  /// Returns true if \p Pkt satisfies every constraint.
  bool matches(const netkat::Packet &Pkt) const;

  /// Returns true if this pattern is at least as general as \p Other,
  /// i.e. every packet matching \p Other also matches this.
  bool subsumes(const Match &Other) const;

  /// Returns true if some packet can match both patterns.
  bool overlaps(const Match &Other) const;

  const std::vector<std::pair<FieldId, Value>> &constraints() const {
    return Cs;
  }
  bool isWildcard() const { return Cs.empty(); }

  std::string str() const;

  friend bool operator==(const Match &A, const Match &B) {
    return A.Cs == B.Cs;
  }
  friend bool operator<(const Match &A, const Match &B) { return A.Cs < B.Cs; }

private:
  std::vector<std::pair<FieldId, Value>> Cs;
};

/// A single action: an ordered set of field writes applied to the packet.
/// Writing the reserved pt field selects the output port; the write set is
/// stored sorted by field (last-write-wins collapse happens at build
/// time), so equality is structural.
using ActionSeq = std::vector<std::pair<FieldId, Value>>;

/// Normalizes \p Writes: sorts by field, later writes win.
ActionSeq normalizeActionSeq(const std::vector<std::pair<FieldId, Value>> &Writes);

/// Applies \p A to \p Pkt, returning the rewritten packet.
netkat::Packet applyActionSeq(const ActionSeq &A, const netkat::Packet &Pkt);

/// A prioritized rule. An empty Actions vector is an explicit drop.
struct Rule {
  int Priority = 0;
  Match Pattern;
  std::vector<ActionSeq> Actions;

  std::string str() const;

  friend bool operator==(const Rule &A, const Rule &B) {
    return A.Priority == B.Priority && A.Pattern == B.Pattern &&
           A.Actions == B.Actions;
  }
};

/// A flow table: rules checked highest priority first; the first match
/// wins; a packet matching no rule is dropped (the OpenFlow table-miss
/// default the paper's firewall discussion relies on).
class Table {
public:
  Table() = default;
  explicit Table(std::vector<Rule> Rules);

  /// Adds a rule, keeping rules sorted by descending priority (stable for
  /// equal priorities).
  void add(Rule R);

  /// Looks up the first matching rule, or nullptr on table miss.
  const Rule *lookup(const netkat::Packet &Pkt) const;

  /// Processes \p Pkt: applies the matched rule's actions, producing zero
  /// (drop / miss) or more output packets.
  std::vector<netkat::Packet> apply(const netkat::Packet &Pkt) const;

  const std::vector<Rule> &rules() const { return Rules; }
  size_t size() const { return Rules.size(); }
  bool empty() const { return Rules.empty(); }

  /// Removes rules that can never be reached because an earlier rule with
  /// a more general pattern shadows them; returns the number removed.
  /// (Purely a size optimization; semantics preserved.)
  size_t removeShadowed();

  /// How many rules constrain each field. The engine's match-pipeline
  /// lowering picks the most-constrained field as its bucket-dispatch
  /// key (the same heuristic an FDD applies at its root).
  std::map<FieldId, size_t> constraintHistogram() const;

  std::string str() const;

  friend bool operator==(const Table &A, const Table &B) {
    return A.Rules == B.Rules;
  }

private:
  std::vector<Rule> Rules;
};

} // namespace flowtable
} // namespace eventnet

#endif // EVENTNET_FLOWTABLE_FLOWTABLE_H
