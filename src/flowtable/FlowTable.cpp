//===- flowtable/FlowTable.cpp - Prioritized match/action tables ----------===//

#include "flowtable/FlowTable.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace eventnet;
using namespace eventnet::flowtable;
using eventnet::netkat::Packet;

//===----------------------------------------------------------------------===//
// Match
//===----------------------------------------------------------------------===//

void Match::require(FieldId F, Value V) {
  auto It = std::lower_bound(
      Cs.begin(), Cs.end(), F,
      [](const std::pair<FieldId, Value> &P, FieldId X) { return P.first < X; });
  if (It != Cs.end() && It->first == F) {
    It->second = V;
    return;
  }
  Cs.insert(It, {F, V});
}

bool Match::matches(const Packet &Pkt) const {
  for (const auto &[F, V] : Cs)
    if (!Pkt.has(F) || Pkt.get(F) != V)
      return false;
  return true;
}

bool Match::subsumes(const Match &Other) const {
  // Every constraint of this must appear identically in Other.
  size_t J = 0;
  for (const auto &[F, V] : Cs) {
    while (J != Other.Cs.size() && Other.Cs[J].first < F)
      ++J;
    if (J == Other.Cs.size() || Other.Cs[J].first != F ||
        Other.Cs[J].second != V)
      return false;
  }
  return true;
}

bool Match::overlaps(const Match &Other) const {
  size_t I = 0, J = 0;
  while (I != Cs.size() && J != Other.Cs.size()) {
    if (Cs[I].first < Other.Cs[J].first) {
      ++I;
    } else if (Cs[I].first > Other.Cs[J].first) {
      ++J;
    } else {
      if (Cs[I].second != Other.Cs[J].second)
        return false;
      ++I;
      ++J;
    }
  }
  return true;
}

std::string Match::str() const {
  if (Cs.empty())
    return "*";
  std::ostringstream OS;
  for (size_t I = 0; I != Cs.size(); ++I) {
    if (I)
      OS << ", ";
    OS << fieldName(Cs[I].first) << '=' << Cs[I].second;
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Actions
//===----------------------------------------------------------------------===//

ActionSeq flowtable::normalizeActionSeq(
    const std::vector<std::pair<FieldId, Value>> &Writes) {
  ActionSeq Out;
  for (const auto &[F, V] : Writes) {
    auto It = std::lower_bound(
        Out.begin(), Out.end(), F,
        [](const std::pair<FieldId, Value> &P, FieldId X) {
          return P.first < X;
        });
    if (It != Out.end() && It->first == F)
      It->second = V;
    else
      Out.insert(It, {F, V});
  }
  return Out;
}

Packet flowtable::applyActionSeq(const ActionSeq &A, const Packet &Pkt) {
  Packet Out = Pkt;
  for (const auto &[F, V] : A)
    Out.set(F, V);
  return Out;
}

//===----------------------------------------------------------------------===//
// Rule / Table
//===----------------------------------------------------------------------===//

std::string Rule::str() const {
  std::ostringstream OS;
  OS << '[' << Priority << "] " << Pattern.str() << " => ";
  if (Actions.empty()) {
    OS << "drop";
    return OS.str();
  }
  for (size_t I = 0; I != Actions.size(); ++I) {
    if (I)
      OS << " | ";
    if (Actions[I].empty()) {
      OS << "id";
      continue;
    }
    for (size_t J = 0; J != Actions[I].size(); ++J) {
      if (J)
        OS << ", ";
      OS << fieldName(Actions[I][J].first) << ":=" << Actions[I][J].second;
    }
  }
  return OS.str();
}

Table::Table(std::vector<Rule> InRules) {
  for (Rule &R : InRules)
    add(std::move(R));
}

void Table::add(Rule R) {
  auto It = std::find_if(Rules.begin(), Rules.end(), [&R](const Rule &Q) {
    return Q.Priority < R.Priority;
  });
  Rules.insert(It, std::move(R));
}

const Rule *Table::lookup(const Packet &Pkt) const {
  for (const Rule &R : Rules)
    if (R.Pattern.matches(Pkt))
      return &R;
  return nullptr;
}

std::vector<Packet> Table::apply(const Packet &Pkt) const {
  const Rule *R = lookup(Pkt);
  if (!R)
    return {};
  std::vector<Packet> Out;
  Out.reserve(R->Actions.size());
  for (const ActionSeq &A : R->Actions)
    Out.push_back(applyActionSeq(A, Pkt));
  return Out;
}

size_t Table::removeShadowed() {
  std::vector<Rule> Kept;
  size_t Removed = 0;
  for (const Rule &R : Rules) {
    bool Shadowed = false;
    for (const Rule &Earlier : Kept)
      if (Earlier.Pattern.subsumes(R.Pattern)) {
        Shadowed = true;
        break;
      }
    if (Shadowed) {
      ++Removed;
      continue;
    }
    Kept.push_back(R);
  }
  Rules = std::move(Kept);
  return Removed;
}

std::map<FieldId, size_t> Table::constraintHistogram() const {
  std::map<FieldId, size_t> H;
  for (const Rule &R : Rules)
    for (const auto &[F, V] : R.Pattern.constraints()) {
      (void)V;
      ++H[F];
    }
  return H;
}

std::string Table::str() const {
  std::ostringstream OS;
  for (const Rule &R : Rules)
    OS << R.str() << '\n';
  return OS.str();
}
