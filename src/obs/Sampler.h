//===- obs/Sampler.h - Periodic metrics sampler -----------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An optional background thread that emits timestamped counter
/// snapshots as JSON-lines while a run executes — the soak-run
/// monitoring channel. The sampler owns nothing but a callback: the
/// caller supplies a function producing one JSON object line (the
/// engine backend feeds it lock-free Engine::stats() snapshots), and the
/// sampler writes it with a wall-clock timestamp at each tick plus one
/// final tick at stop() so short runs still produce a sample.
///
/// Lifecycle: construct, start(), stop() (idempotent; the destructor
/// stops too). The tick wait is a condition variable, so stop() returns
/// promptly instead of sleeping out the interval.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_OBS_SAMPLER_H
#define EVENTNET_OBS_SAMPLER_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <ostream>
#include <thread>

namespace eventnet {
namespace obs {

/// Periodic JSON-lines metrics emission (see file header).
class MetricsSampler {
public:
  /// \p Sample must be callable from the sampler thread for the whole
  /// start()..stop() window and return one JSON object (no newline).
  /// Lines go to \p OS, which must outlive the sampler.
  MetricsSampler(unsigned IntervalMs, std::function<std::string()> Sample,
                 std::ostream &OS);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler &) = delete;
  MetricsSampler &operator=(const MetricsSampler &) = delete;

  void start();
  /// Stops the thread after one final sample; idempotent.
  void stop();

  /// Lines emitted so far (including the final stop() sample).
  uint64_t samplesEmitted() const { return Emitted; }

private:
  void loop();
  void emitOnce();

  unsigned IntervalMs;
  std::function<std::string()> Sample;
  std::ostream &OS;

  std::mutex Mu;
  std::condition_variable Cv;
  bool Stopping = false;
  bool Started = false;
  uint64_t Emitted = 0;
  std::thread Thread;
};

} // namespace obs
} // namespace eventnet

#endif // EVENTNET_OBS_SAMPLER_H
