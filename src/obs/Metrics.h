//===- obs/Metrics.h - Counter-snapshot JSON lines --------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders one engine::Stats snapshot as a single JSON object on one
/// line — the sample format the obs::MetricsSampler emits periodically
/// (JSON-lines: one snapshot per line, greppable and tail -f friendly).
/// The sampler prepends a "ts" wall-clock field; everything else comes
/// from here so the line format has exactly one owner.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_OBS_METRICS_H
#define EVENTNET_OBS_METRICS_H

#include <string>

namespace eventnet {
namespace engine {
struct Stats;
} // namespace engine

namespace obs {

/// One engine counter snapshot as a single-line JSON object (no
/// trailing newline): global packet counters, per-shard queue depth /
/// high-water / processed / dropped arrays, and trace-ring totals.
std::string metricsJsonLine(const engine::Stats &S);

} // namespace obs
} // namespace eventnet

#endif // EVENTNET_OBS_METRICS_H
