//===- obs/TraceRing.h - Bounded lock-free binary event trace ---*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded, drop-counting binary trace of typed engine events. A
/// record is a 24-byte POD; recording claims a slot with one relaxed
/// fetch_add and writes it in place — wait-free, no locks, no
/// allocation, and writers to distinct slots never touch the same
/// memory, so concurrent producers are race-free by construction.
///
/// The ring is *bounded, not circular*: once the capacity is exhausted,
/// further records are counted as dropped rather than overwriting the
/// earliest ones. An execution timeline that silently loses its *head*
/// is worthless (everything downstream dangles); one that loses its
/// tail and says how much is an honest partial view. droppedCount() is
/// part of every export for exactly that reason.
///
/// Readers call events() only after the recording threads have quiesced
/// (the engine reads post-join, which orders every slot write before the
/// read); droppedCount()/recordedCount() are safe from any thread at any
/// time.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_OBS_TRACERING_H
#define EVENTNET_OBS_TRACERING_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace eventnet {
namespace obs {

/// What happened. Values are stable (they appear in exported traces).
enum class TraceKind : uint8_t {
  Inject = 0,        ///< host emission entered the engine (A=host, B=switch)
  Hop = 1,           ///< a switch processed a packet (A=switch, B=tag)
  CrossShardPush = 2, ///< egress batch pushed to another shard (A=target, B=n)
  EventDetect = 3,   ///< first detection of an NES event (A=event, B=switch)
  RegisterLearn = 4, ///< a switch register learned an event (A=switch, B=event)
  ConfigSwap = 5,    ///< published view swapped (A=switch, B=version)
  Drop = 6,          ///< packet dropped (A=switch, B=reason: 0 miss, 1 port)
  FaultDrop = 7,     ///< plan dropped a packet at egress (A=switch, B=port)
  FaultDup = 8,      ///< plan duplicated a packet at egress (A=switch, B=port)
  FaultDelay = 9,    ///< plan delayed a packet at egress (A=switch, B=port)
  FaultStall = 10,   ///< plan stalled a worker (A=shard, B=stall µs)
  Shed = 11,         ///< overload policy shed a message (A=shard, B=msg kind)
  CtrlStorm = 12,    ///< plan re-broadcast an event (A=event, B=repeats)
};

/// Canonical lowercase name for exports ("inject", "hop", ...).
const char *traceKindName(TraceKind K);

/// One fixed-size binary record. TsNs is nanoseconds since the run's
/// start (the engine's steady clock), so merged multi-shard timelines
/// share one time base.
struct TraceEvent {
  int64_t TsNs = 0;
  uint32_t A = 0;
  uint32_t B = 0;
  TraceKind Kind = TraceKind::Hop;
  uint8_t Shard = 0;
};

/// The bounded trace (see file header). One instance per engine shard;
/// any thread may record.
class TraceRing {
public:
  /// \p Capacity slots are allocated up front (never on record()).
  explicit TraceRing(size_t Capacity)
      : Cap(Capacity), Slots(new TraceEvent[Capacity ? Capacity : 1]) {}

  TraceRing(const TraceRing &) = delete;
  TraceRing &operator=(const TraceRing &) = delete;

  /// Claims a slot and writes \p E; returns false (counting a drop) when
  /// the ring is full. Wait-free.
  bool record(const TraceEvent &E) {
    uint64_t I = Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= Cap)
      return false;
    Slots[I] = E;
    return true;
  }

  size_t capacity() const { return Cap; }

  /// Records that landed in the ring.
  uint64_t recordedCount() const {
    uint64_t N = Next.load(std::memory_order_relaxed);
    return N < Cap ? N : Cap;
  }

  /// Records refused because the ring was full.
  uint64_t droppedCount() const {
    uint64_t N = Next.load(std::memory_order_relaxed);
    return N > Cap ? N - Cap : 0;
  }

  /// The recorded prefix. Only meaningful after every recording thread
  /// has quiesced (e.g. post-join).
  std::vector<TraceEvent> events() const {
    return std::vector<TraceEvent>(Slots.get(),
                                   Slots.get() + recordedCount());
  }

private:
  const uint64_t Cap;
  std::unique_ptr<TraceEvent[]> Slots;
  std::atomic<uint64_t> Next{0};
};

} // namespace obs
} // namespace eventnet

#endif // EVENTNET_OBS_TRACERING_H
