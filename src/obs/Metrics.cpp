//===- obs/Metrics.cpp - Counter-snapshot JSON lines ----------------------===//

#include "obs/Metrics.h"

#include "engine/Stats.h"

#include <sstream>

using namespace eventnet;

std::string obs::metricsJsonLine(const engine::Stats &S) {
  std::ostringstream OS;
  OS << "{\"injected\": " << S.PacketsInjected
     << ", \"processed\": " << S.PacketsProcessed
     << ", \"delivered\": " << S.PacketsDelivered
     << ", \"dropped\": " << S.PacketsDropped
     << ", \"forwarded\": " << S.PacketsForwarded
     << ", \"events_detected\": " << S.EventsDetected
     << ", \"config_transitions\": " << S.ConfigTransitions
     << ", \"trace_recorded\": " << S.TraceRecorded
     << ", \"trace_dropped\": " << S.TraceDropped;

  OS << ", \"queue_depth\": [";
  for (size_t I = 0; I != S.Shards.size(); ++I)
    OS << (I ? ", " : "") << S.Shards[I].QueueDepth;
  OS << "], \"queue_high_water\": [";
  for (size_t I = 0; I != S.Shards.size(); ++I)
    OS << (I ? ", " : "") << S.Shards[I].QueueHighWater;
  OS << "], \"shard_processed\": [";
  for (size_t I = 0; I != S.Shards.size(); ++I)
    OS << (I ? ", " : "") << S.Shards[I].PacketsProcessed;
  OS << "], \"shard_dropped\": [";
  for (size_t I = 0; I != S.Shards.size(); ++I)
    OS << (I ? ", " : "") << S.Shards[I].Dropped;
  OS << "], \"idle_sleeps\": [";
  for (size_t I = 0; I != S.Shards.size(); ++I)
    OS << (I ? ", " : "") << S.Shards[I].IdleSleeps;
  OS << "]}";
  return OS.str();
}
