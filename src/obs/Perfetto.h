//===- obs/Perfetto.h - Chrome/Perfetto trace_event export ------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a merged engine event trace into the Chrome trace_event
/// JSON format (the "JSON Array Format" with a top-level traceEvents
/// member), loadable by chrome://tracing and ui.perfetto.dev: one
/// timeline track per shard (thread metadata events name them), instant
/// events for every recorded TraceKind, and a trailing metadata object
/// carrying the drop audit so a truncated ring is visible in the file
/// itself, not only in the run report.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_OBS_PERFETTO_H
#define EVENTNET_OBS_PERFETTO_H

#include "obs/TraceRing.h"

#include <ostream>
#include <vector>

namespace eventnet {
namespace obs {

/// Writes \p Events (merged, any order; typically ts-sorted) as
/// Chrome/Perfetto trace JSON. \p NumShards names that many timeline
/// tracks; \p DroppedEvents is the ring-overflow count recorded into the
/// trace metadata.
void writePerfettoTrace(std::ostream &OS,
                        const std::vector<TraceEvent> &Events,
                        unsigned NumShards, uint64_t DroppedEvents);

} // namespace obs
} // namespace eventnet

#endif // EVENTNET_OBS_PERFETTO_H
