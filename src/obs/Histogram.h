//===- obs/Histogram.h - Lock-free log-bucket latency histogram -*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size HDR-style histogram for hot-path latency recording: the
/// value range [0, 2^63) is covered by exponential major buckets, each
/// split into 2^SubBits linear sub-buckets, so any recorded value lands
/// in a bucket whose width is at most value / 2^SubBits — percentile
/// estimates carry a bounded relative error of 1/2^SubBits (~3% at the
/// default SubBits = 5) regardless of the distribution's spread.
///
/// record() is one relaxed atomic increment on a fixed-address counter:
/// no allocation, no locks, no CAS loops (the max tracker is the one
/// exception and only loops while a new maximum races another). Each
/// engine shard owns a private histogram, so recording never contends;
/// snapshot() copies the counters out and snapshots merge additively,
/// which is exact because buckets are positional.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_OBS_HISTOGRAM_H
#define EVENTNET_OBS_HISTOGRAM_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace eventnet {
namespace obs {

/// A merged, queryable copy of a LogHistogram's counters.
struct HistogramSnapshot {
  std::vector<uint64_t> Counts; ///< positional bucket counts
  uint64_t TotalCount = 0;
  uint64_t Sum = 0; ///< sum of recorded values (saturating in practice)
  uint64_t Max = 0; ///< largest recorded value, exact

  bool empty() const { return TotalCount == 0; }
  double mean() const {
    return TotalCount ? static_cast<double>(Sum) / TotalCount : 0;
  }

  /// The smallest bucket upper edge v such that at least Q of the
  /// recorded values are <= v (Q in [0, 1]). The true max is substituted
  /// for the top bucket's edge so percentile(1.0) == Max exactly.
  uint64_t percentile(double Q) const;

  /// Additive merge (both sides must come from same-shaped histograms).
  void merge(const HistogramSnapshot &Other);
};

/// The live recording side (see file header).
class LogHistogram {
public:
  /// Linear sub-buckets per power of two: 2^SubBits.
  static constexpr unsigned SubBits = 5;
  static constexpr uint64_t SubBuckets = 1ull << SubBits;
  /// Values 0..SubBuckets-1 are exact; every further power of two
  /// contributes SubBuckets buckets up to exponent 62 (int64 range).
  static constexpr unsigned NumBuckets =
      static_cast<unsigned>(SubBuckets + (63 - SubBits) * SubBuckets);

  LogHistogram() : Buckets(new std::atomic<uint64_t>[NumBuckets]) {
    for (unsigned I = 0; I != NumBuckets; ++I)
      Buckets[I].store(0, std::memory_order_relaxed);
  }

  LogHistogram(const LogHistogram &) = delete;
  LogHistogram &operator=(const LogHistogram &) = delete;

  /// Which bucket \p V lands in. Exposed for the property tests.
  static unsigned bucketIndex(uint64_t V) {
    if (V < SubBuckets)
      return static_cast<unsigned>(V);
    unsigned E = 63 - static_cast<unsigned>(__builtin_clzll(V));
    if (E > 62) // clamp int64-overflowing values into the top group
      E = 62;
    unsigned Shift = E - SubBits;
    uint64_t Off = (V >> Shift) - SubBuckets;
    if (Off >= SubBuckets) // only reachable via the E clamp above
      Off = SubBuckets - 1;
    return static_cast<unsigned>((E - SubBits + 1) * SubBuckets + Off);
  }

  /// The inclusive upper edge of bucket \p I (every value recorded into
  /// the bucket is <= this).
  static uint64_t bucketUpperEdge(unsigned I) {
    if (I < SubBuckets)
      return I;
    unsigned Group = I / static_cast<unsigned>(SubBuckets);
    uint64_t Off = I % SubBuckets;
    unsigned E = Group + SubBits - 1;
    return ((SubBuckets + Off + 1) << (E - SubBits)) - 1;
  }

  /// Records one value: a relaxed increment plus a max update.
  void record(uint64_t V) {
    Buckets[bucketIndex(V)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Total.fetch_add(V, std::memory_order_relaxed);
    uint64_t Cur = MaxV.load(std::memory_order_relaxed);
    while (V > Cur &&
           !MaxV.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }

  /// A racy-but-consistent-enough copy for reporting (exact once the
  /// recording threads have joined).
  HistogramSnapshot snapshot() const {
    HistogramSnapshot S;
    S.Counts.resize(NumBuckets);
    for (unsigned I = 0; I != NumBuckets; ++I)
      S.Counts[I] = Buckets[I].load(std::memory_order_relaxed);
    S.TotalCount = Count.load(std::memory_order_relaxed);
    S.Sum = Total.load(std::memory_order_relaxed);
    S.Max = MaxV.load(std::memory_order_relaxed);
    return S;
  }

private:
  std::unique_ptr<std::atomic<uint64_t>[]> Buckets;
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Total{0};
  std::atomic<uint64_t> MaxV{0};
};

inline uint64_t HistogramSnapshot::percentile(double Q) const {
  if (TotalCount == 0)
    return 0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  // Rank: the ceil(Q * N)-th recorded value (1-based), at least the 1st.
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(TotalCount));
  if (static_cast<double>(Rank) < Q * static_cast<double>(TotalCount))
    ++Rank;
  if (Rank == 0)
    Rank = 1;
  uint64_t Seen = 0;
  for (unsigned I = 0; I != Counts.size(); ++I) {
    Seen += Counts[I];
    if (Seen >= Rank) {
      uint64_t Edge = LogHistogram::bucketUpperEdge(I);
      return Edge > Max ? Max : Edge;
    }
  }
  return Max;
}

inline void HistogramSnapshot::merge(const HistogramSnapshot &Other) {
  if (Counts.size() < Other.Counts.size())
    Counts.resize(Other.Counts.size());
  for (size_t I = 0; I != Other.Counts.size(); ++I)
    Counts[I] += Other.Counts[I];
  TotalCount += Other.TotalCount;
  Sum += Other.Sum;
  if (Other.Max > Max)
    Max = Other.Max;
}

} // namespace obs
} // namespace eventnet

#endif // EVENTNET_OBS_HISTOGRAM_H
