//===- obs/Perfetto.cpp - Chrome/Perfetto trace_event export --------------===//

#include "obs/Perfetto.h"

#include <cinttypes>
#include <cstdio>

using namespace eventnet;
using namespace eventnet::obs;

const char *obs::traceKindName(TraceKind K) {
  switch (K) {
  case TraceKind::Inject:
    return "inject";
  case TraceKind::Hop:
    return "hop";
  case TraceKind::CrossShardPush:
    return "cross_shard_push";
  case TraceKind::EventDetect:
    return "event_detect";
  case TraceKind::RegisterLearn:
    return "register_learn";
  case TraceKind::ConfigSwap:
    return "config_swap";
  case TraceKind::Drop:
    return "drop";
  case TraceKind::FaultDrop:
    return "fault_drop";
  case TraceKind::FaultDup:
    return "fault_dup";
  case TraceKind::FaultDelay:
    return "fault_delay";
  case TraceKind::FaultStall:
    return "fault_stall";
  case TraceKind::Shed:
    return "shed";
  case TraceKind::CtrlStorm:
    return "ctrl_storm";
  }
  return "unknown";
}

namespace {

/// The two payload words mean different things per kind; name them so
/// the Perfetto "args" pane reads as facts, not tuples.
void argNames(TraceKind K, const char *&A, const char *&B) {
  switch (K) {
  case TraceKind::Inject:
    A = "host";
    B = "switch";
    return;
  case TraceKind::Hop:
    A = "switch";
    B = "tag";
    return;
  case TraceKind::CrossShardPush:
    A = "target_shard";
    B = "messages";
    return;
  case TraceKind::EventDetect:
    A = "event";
    B = "switch";
    return;
  case TraceKind::RegisterLearn:
    A = "switch";
    B = "event";
    return;
  case TraceKind::ConfigSwap:
    A = "switch";
    B = "version";
    return;
  case TraceKind::Drop:
    A = "switch";
    B = "reason";
    return;
  case TraceKind::FaultDrop:
  case TraceKind::FaultDup:
  case TraceKind::FaultDelay:
    A = "switch";
    B = "port";
    return;
  case TraceKind::FaultStall:
    A = "shard";
    B = "stall_us";
    return;
  case TraceKind::Shed:
    A = "shard";
    B = "msg_kind";
    return;
  case TraceKind::CtrlStorm:
    A = "event";
    B = "repeats";
    return;
  }
  A = "a";
  B = "b";
}

} // namespace

void obs::writePerfettoTrace(std::ostream &OS,
                             const std::vector<TraceEvent> &Events,
                             unsigned NumShards, uint64_t DroppedEvents) {
  OS << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool First = true;
  char Buf[256];

  // Thread metadata: one named track per shard, all under one process.
  for (unsigned S = 0; S != NumShards; ++S) {
    snprintf(Buf, sizeof(Buf),
             "%s{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
             "\"tid\": %u, \"args\": {\"name\": \"shard %u\"}}",
             First ? "" : ", ", S, S);
    OS << Buf;
    First = false;
  }
  snprintf(Buf, sizeof(Buf),
           "%s{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"args\": {\"name\": \"eventnet engine\"}}",
           First ? "" : ", ");
  OS << Buf;
  First = false;

  for (const TraceEvent &E : Events) {
    const char *AName, *BName;
    argNames(E.Kind, AName, BName);
    // Instant events on the owning shard's track; ts is microseconds
    // (the trace_event unit), kept fractional so ns resolution survives.
    snprintf(Buf, sizeof(Buf),
             ", {\"name\": \"%s\", \"ph\": \"i\", \"s\": \"t\", "
             "\"ts\": %.3f, \"pid\": 1, \"tid\": %u, "
             "\"args\": {\"%s\": %" PRIu32 ", \"%s\": %" PRIu32 "}}",
             traceKindName(E.Kind), static_cast<double>(E.TsNs) * 1e-3,
             E.Shard, AName, E.A, BName, E.B);
    OS << Buf;
  }
  OS << "], \"otherData\": {\"recorded_events\": " << Events.size()
     << ", \"dropped_events\": " << DroppedEvents << "}}\n";
}
