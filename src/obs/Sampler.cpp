//===- obs/Sampler.cpp - Periodic metrics sampler -------------------------===//

#include "obs/Sampler.h"

#include <chrono>
#include <cstdio>

using namespace eventnet;
using namespace eventnet::obs;

MetricsSampler::MetricsSampler(unsigned IntervalMs,
                               std::function<std::string()> Sample,
                               std::ostream &OS)
    : IntervalMs(IntervalMs ? IntervalMs : 1), Sample(std::move(Sample)),
      OS(OS) {}

MetricsSampler::~MetricsSampler() { stop(); }

void MetricsSampler::start() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Started)
      return;
    Started = true;
    Stopping = false;
  }
  // Synchronous initial sample: the begin state is on record even if
  // stop() lands before the thread's first tick.
  emitOnce();
  std::lock_guard<std::mutex> Lock(Mu);
  Thread = std::thread([this] { loop(); });
}

void MetricsSampler::stop() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Started)
      return;
    Stopping = true;
  }
  Cv.notify_all();
  Thread.join();
  std::lock_guard<std::mutex> Lock(Mu);
  Started = false;
}

void MetricsSampler::emitOnce() {
  // Wall-clock stamp: samples from different runs/machines line up in
  // log aggregation, unlike the engine's run-relative steady clock.
  double Now = std::chrono::duration<double>(
                   std::chrono::system_clock::now().time_since_epoch())
                   .count();
  char Stamp[64];
  snprintf(Stamp, sizeof(Stamp), "{\"ts\": %.6f", Now);
  // One line per sample: writers downstream (files, pipes) see whole
  // JSON objects. The sample callback returns "{...}"; splice our
  // timestamp into its opening brace (no comma for an empty object).
  std::string Body = Sample();
  if (!Body.empty() && Body.front() == '{')
    Body = std::string(Stamp) + (Body[1] == '}' ? "" : ", ") +
           Body.substr(1);
  OS << Body << "\n";
  OS.flush();
  ++Emitted;
}

void MetricsSampler::loop() {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    Cv.wait_for(Lock, std::chrono::milliseconds(IntervalMs),
                [this] { return Stopping; });
    if (Stopping)
      break;
    // Emit outside the lock so a slow Sample() never blocks stop().
    Lock.unlock();
    emitOnce();
    Lock.lock();
  }
  Lock.unlock();
  emitOnce(); // final snapshot: short runs still record their end state
}
