//===- stateful/Lexer.cpp - Stateful NetKAT lexer -------------------------===//

#include "stateful/Lexer.h"

#include <cctype>

using namespace eventnet;
using namespace eventnet::stateful;

std::string stateful::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Ident:
    return "identifier";
  case TokKind::Number:
    return "number";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Comma:
    return "','";
  case TokKind::Eq:
    return "'='";
  case TokKind::Neq:
    return "'!='";
  case TokKind::Assign:
    return "'<-'";
  case TokKind::Arrow:
    return "'->'";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Gt:
    return "'>'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::KwAnd:
    return "'and'";
  case TokKind::KwOr:
    return "'or'";
  case TokKind::KwNot:
    return "'not'";
  case TokKind::KwState:
    return "'state'";
  case TokKind::KwLet:
    return "'let'";
  case TokKind::KwDrop:
    return "'drop'";
  case TokKind::KwSkip:
    return "'skip'";
  case TokKind::Eof:
    return "end of input";
  case TokKind::Error:
    return "error";
  }
  return "?";
}

std::vector<Token> stateful::lex(const std::string &Source) {
  std::vector<Token> Out;
  unsigned Line = 1, Col = 1;
  size_t I = 0;
  const size_t N = Source.size();

  auto Push = [&](TokKind K, std::string Text, Value Num = 0) {
    Token T;
    T.Kind = K;
    T.Text = std::move(Text);
    T.Num = Num;
    T.Line = Line;
    T.Col = Col;
    Out.push_back(std::move(T));
  };

  auto Advance = [&](size_t By) {
    for (size_t J = 0; J != By; ++J) {
      if (I < N && Source[I] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
      ++I;
    }
  };

  while (I < N) {
    char C = Source[I];
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(C))) {
      Advance(1);
      continue;
    }
    // Comments: '#' or '//' to end of line.
    if (C == '#' || (C == '/' && I + 1 < N && Source[I + 1] == '/')) {
      while (I < N && Source[I] != '\n')
        Advance(1);
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      unsigned StartCol = Col;
      while (I < N && std::isdigit(static_cast<unsigned char>(Source[I])))
        Advance(1);
      std::string Text = Source.substr(Start, I - Start);
      Token T;
      T.Kind = TokKind::Number;
      T.Text = Text;
      T.Num = std::stoll(Text);
      T.Line = Line;
      T.Col = StartCol;
      Out.push_back(std::move(T));
      continue;
    }
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      unsigned StartCol = Col;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        Advance(1);
      std::string Text = Source.substr(Start, I - Start);
      TokKind K = TokKind::Ident;
      if (Text == "true")
        K = TokKind::KwTrue;
      else if (Text == "false")
        K = TokKind::KwFalse;
      else if (Text == "and")
        K = TokKind::KwAnd;
      else if (Text == "or")
        K = TokKind::KwOr;
      else if (Text == "not")
        K = TokKind::KwNot;
      else if (Text == "state")
        K = TokKind::KwState;
      else if (Text == "let")
        K = TokKind::KwLet;
      else if (Text == "drop")
        K = TokKind::KwDrop;
      else if (Text == "skip" || Text == "id")
        K = TokKind::KwSkip;
      Token T;
      T.Kind = K;
      T.Text = std::move(Text);
      T.Line = Line;
      T.Col = StartCol;
      Out.push_back(std::move(T));
      continue;
    }
    // Multi-char operators.
    if (C == '<' && I + 1 < N && Source[I + 1] == '-') {
      Push(TokKind::Assign, "<-");
      Advance(2);
      continue;
    }
    if (C == '-' && I + 1 < N && Source[I + 1] == '>') {
      Push(TokKind::Arrow, "->");
      Advance(2);
      continue;
    }
    if (C == '!' && I + 1 < N && Source[I + 1] == '=') {
      Push(TokKind::Neq, "!=");
      Advance(2);
      continue;
    }
    // Single-char tokens.
    TokKind K;
    switch (C) {
    case '(':
      K = TokKind::LParen;
      break;
    case ')':
      K = TokKind::RParen;
      break;
    case '[':
      K = TokKind::LBracket;
      break;
    case ']':
      K = TokKind::RBracket;
      break;
    case ';':
      K = TokKind::Semi;
      break;
    case '+':
      K = TokKind::Plus;
      break;
    case '*':
      K = TokKind::Star;
      break;
    case ':':
      K = TokKind::Colon;
      break;
    case ',':
      K = TokKind::Comma;
      break;
    case '=':
      K = TokKind::Eq;
      break;
    case '<':
      K = TokKind::Lt;
      break;
    case '>':
      K = TokKind::Gt;
      break;
    default: {
      Push(TokKind::Error,
           std::string("unexpected character '") + C + "'");
      return Out;
    }
    }
    Push(K, std::string(1, C));
    Advance(1);
  }

  Push(TokKind::Eof, "");
  return Out;
}
