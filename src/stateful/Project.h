//===- stateful/Project.h - Figure 5 projection -----------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ⟦p⟧~k function of Figure 5: for a fixed value ~k of the state
/// vector, a Stateful NetKAT program projects to a *standard* NetKAT
/// program by resolving every state test against ~k and erasing the state
/// assignment from links. Projections are what the FDD compiler turns
/// into per-state configurations.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_STATEFUL_PROJECT_H
#define EVENTNET_STATEFUL_PROJECT_H

#include "netkat/Ast.h"
#include "stateful/Ast.h"

namespace eventnet {
namespace stateful {

/// ⟦p⟧~k for a predicate.
netkat::PredRef projectPred(const SPredRef &P, const StateVec &K);

/// ⟦p⟧~k for a command.
netkat::PolicyRef project(const SPolRef &P, const StateVec &K);

} // namespace stateful
} // namespace eventnet

#endif // EVENTNET_STATEFUL_PROJECT_H
