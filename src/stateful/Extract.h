//===- stateful/Extract.h - Figure 6 event-edge extraction ------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ⟨p⟩~k ϕ function of Figure 6: walking a Stateful NetKAT program in
/// a fixed state ~k, collect the conjunction ϕ of field tests seen along
/// each path, and emit an *event-edge* (~k, (ϕ, s2, p2), ~k[m -> n]) at
/// every state-assigning link. Event-edges are the edges of the
/// event-driven transition system (Section 3.3).
///
/// ϕ is kept in literal-conjunction form (LitConj): a set of (field, =©,
/// value) literals, which supports exactly the operations the figure
/// needs — conjoining a literal, the ∃f:ϕ quantifier that strips a
/// field's literals on assignment, and contradiction pruning (a path with
/// an unsatisfiable ϕ produces no events; this is a sound refinement of
/// the figure, which carries unsatisfiable formulas along).
///
/// One deliberate deviation, documented in DESIGN.md: assignments to pt
/// strip stale pt literals but do not record pt=n, because the event's
/// port is tracked precisely by the link destination (s2:p2) and a
/// recorded pt literal would be stale whenever the link's destination
/// port differs from its source port.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_STATEFUL_EXTRACT_H
#define EVENTNET_STATEFUL_EXTRACT_H

#include "netkat/Event.h"
#include "stateful/Ast.h"

#include <optional>
#include <string>
#include <vector>

namespace eventnet {
namespace stateful {

/// A single literal f =© n.
struct Lit {
  FieldId F = 0;
  bool Eq = true;
  Value V = 0;

  friend bool operator==(const Lit &A, const Lit &B) {
    return A.F == B.F && A.Eq == B.Eq && A.V == B.V;
  }
  friend bool operator<(const Lit &A, const Lit &B) {
    if (A.F != B.F)
      return A.F < B.F;
    if (A.Eq != B.Eq)
      return A.Eq < B.Eq;
    return A.V < B.V;
  }
};

/// A satisfiable conjunction of literals, kept sorted and deduplicated.
class LitConj {
public:
  /// The empty conjunction (true).
  LitConj() = default;

  /// ϕ ∧ lit; nullopt if the result is unsatisfiable. Redundant
  /// inequality literals subsumed by an equality on the same field are
  /// dropped.
  std::optional<LitConj> conjoin(Lit L) const;

  /// ∃f:ϕ — strips every literal on \p F.
  LitConj exists(FieldId F) const;

  /// The corresponding NetKAT predicate.
  netkat::PredRef toPred() const;

  const std::vector<Lit> &literals() const { return Lits; }

  std::string str() const;

  friend bool operator==(const LitConj &A, const LitConj &B) {
    return A.Lits == B.Lits;
  }
  friend bool operator<(const LitConj &A, const LitConj &B) {
    return A.Lits < B.Lits;
  }

private:
  std::vector<Lit> Lits;
};

/// An ETS edge produced by extraction: in state From, the arrival of a
/// packet satisfying Guard at Loc moves the system to state To.
struct EventEdge {
  StateVec From;
  LitConj Guard;
  Location Loc;
  StateVec To;

  std::string str() const;

  friend bool operator==(const EventEdge &A, const EventEdge &B) {
    return A.From == B.From && A.Guard == B.Guard && A.Loc == B.Loc &&
           A.To == B.To;
  }
  friend bool operator<(const EventEdge &A, const EventEdge &B) {
    if (A.From != B.From)
      return A.From < B.From;
    if (!(A.Guard == B.Guard))
      return A.Guard < B.Guard;
    if (!(A.Loc == B.Loc))
      return A.Loc < B.Loc;
    return A.To < B.To;
  }
};

/// The (D, P) pair of Figure 6: event-edges plus the set of updated test
/// conjunctions.
struct ExtractResult {
  std::vector<EventEdge> Edges;
  std::vector<LitConj> Formulas;
};

/// ⟨p⟩~k ϕ with ϕ = true: all event-edges leaving state ~k.
ExtractResult extractEdges(const SPolRef &P, const StateVec &K);

} // namespace stateful
} // namespace eventnet

#endif // EVENTNET_STATEFUL_EXTRACT_H
