//===- stateful/Extract.cpp - Figure 6 event-edge extraction --------------===//

#include "stateful/Extract.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

using namespace eventnet;
using namespace eventnet::stateful;

//===----------------------------------------------------------------------===//
// LitConj
//===----------------------------------------------------------------------===//

std::optional<LitConj> LitConj::conjoin(Lit L) const {
  LitConj Out;
  bool HaveEqOnField = false;
  Value EqVal = 0;
  // Find an existing equality on L.F.
  for (const Lit &X : Lits)
    if (X.F == L.F && X.Eq) {
      HaveEqOnField = true;
      EqVal = X.V;
    }

  if (L.Eq) {
    for (const Lit &X : Lits) {
      if (X.F != L.F) {
        Out.Lits.push_back(X);
        continue;
      }
      if (X.Eq && X.V != L.V)
        return std::nullopt; // f=a ∧ f=b, a != b
      if (!X.Eq && X.V == L.V)
        return std::nullopt; // f!=n ∧ f=n
      // Equalities with the same value dedup; inequalities on other
      // values become redundant under the equality and are dropped.
    }
    Out.Lits.push_back(L);
  } else {
    if (HaveEqOnField) {
      if (EqVal == L.V)
        return std::nullopt; // f=n ∧ f!=n
      // f=a makes f!=b (b != a) redundant.
      return *this;
    }
    Out.Lits = Lits;
    if (std::find(Out.Lits.begin(), Out.Lits.end(), L) == Out.Lits.end())
      Out.Lits.push_back(L);
  }
  std::sort(Out.Lits.begin(), Out.Lits.end());
  return Out;
}

LitConj LitConj::exists(FieldId F) const {
  LitConj Out;
  for (const Lit &X : Lits)
    if (X.F != F)
      Out.Lits.push_back(X);
  return Out;
}

netkat::PredRef LitConj::toPred() const {
  netkat::PredRef Acc = netkat::pTrue();
  for (const Lit &X : Lits) {
    netkat::PredRef T = netkat::pTest(X.F, X.V);
    Acc = netkat::pAnd(Acc, X.Eq ? T : netkat::pNot(T));
  }
  return Acc;
}

std::string LitConj::str() const {
  if (Lits.empty())
    return "true";
  std::ostringstream OS;
  for (size_t I = 0; I != Lits.size(); ++I) {
    if (I)
      OS << " and ";
    OS << fieldName(Lits[I].F) << (Lits[I].Eq ? "=" : "!=") << Lits[I].V;
  }
  return OS.str();
}

std::string EventEdge::str() const {
  std::ostringstream OS;
  OS << stateVecStr(From) << " --(" << Guard.str() << ", " << Loc.Sw << ':'
     << Loc.Pt << ")--> " << stateVecStr(To);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Extraction
//===----------------------------------------------------------------------===//

namespace {

/// Internal (D, P) accumulator with set-based dedup.
struct Acc {
  std::set<EventEdge> Edges;
  std::set<LitConj> Formulas;

  void merge(const Acc &O) {
    Edges.insert(O.Edges.begin(), O.Edges.end());
    Formulas.insert(O.Formulas.begin(), O.Formulas.end());
  }

  friend bool operator==(const Acc &A, const Acc &B) {
    return A.Edges == B.Edges && A.Formulas == B.Formulas;
  }
};

Acc extractPol(const SPolRef &P, const StateVec &K, const LitConj &Phi);

/// ⟨a⟩~k ϕ for predicates (the test rows of Figure 6, including the
/// negation-pushing rows).
Acc extractPred(const SPredRef &P, const StateVec &K, const LitConj &Phi,
                bool Negated) {
  Acc Out;
  switch (P->kind()) {
  case SPred::Kind::True:
    if (!Negated)
      Out.Formulas.insert(Phi);
    return Out;
  case SPred::Kind::False:
    if (Negated)
      Out.Formulas.insert(Phi);
    return Out;
  case SPred::Kind::FieldTest: {
    // sw / pt location tests do not constrain the event's packet guard
    // (⟨sw =© n⟩ = ⟨pt =© n⟩ = ⟨true⟩ in the figure).
    if (P->field() == FieldSw || P->field() == FieldPt) {
      Out.Formulas.insert(Phi);
      return Out;
    }
    bool Eq = Negated ? !P->isEq() : P->isEq();
    if (auto Next = Phi.conjoin(Lit{P->field(), Eq, P->value()}))
      Out.Formulas.insert(*Next);
    return Out;
  }
  case SPred::Kind::StateTest: {
    assert(P->stateIndex() < K.size() && "state index out of bounds");
    bool Eq = Negated ? !P->isEq() : P->isEq();
    bool Holds = (K[P->stateIndex()] == P->value()) == Eq;
    if (Holds)
      Out.Formulas.insert(Phi);
    return Out;
  }
  case SPred::Kind::And:
  case SPred::Kind::Or: {
    // a ∧ b behaves as a; b and a ∨ b as a + b (figure); under negation
    // De Morgan swaps the connective.
    bool IsSeq = (P->kind() == SPred::Kind::And) != Negated;
    if (IsSeq) {
      Acc L = extractPred(P->lhs(), K, Phi, Negated);
      Out.Edges = L.Edges;
      for (const LitConj &Mid : L.Formulas) {
        Acc R = extractPred(P->rhs(), K, Mid, Negated);
        Out.merge(R);
      }
      return Out;
    }
    Out = extractPred(P->lhs(), K, Phi, Negated);
    Out.merge(extractPred(P->rhs(), K, Phi, Negated));
    return Out;
  }
  case SPred::Kind::Not:
    return extractPred(P->negand(), K, Phi, !Negated);
  }
  return Out;
}

Acc extractPol(const SPolRef &P, const StateVec &K, const LitConj &Phi) {
  Acc Out;
  switch (P->kind()) {
  case SPol::Kind::Filter:
    return extractPred(P->pred(), K, Phi, /*Negated=*/false);
  case SPol::Kind::Mod: {
    // ⟨f <- n⟩ ϕ = ({}, {(∃f:ϕ) ∧ f=n}); pt is tracked by link
    // destinations instead (see header).
    LitConj Stripped = Phi.exists(P->modField());
    if (P->modField() == FieldPt) {
      Out.Formulas.insert(Stripped);
      return Out;
    }
    if (auto Next = Stripped.conjoin(Lit{P->modField(), true, P->modValue()}))
      Out.Formulas.insert(*Next);
    return Out;
  }
  case SPol::Kind::Union:
    Out = extractPol(P->lhs(), K, Phi);
    Out.merge(extractPol(P->rhs(), K, Phi));
    return Out;
  case SPol::Kind::Seq: {
    Acc L = extractPol(P->lhs(), K, Phi);
    Out.Edges = L.Edges;
    for (const LitConj &Mid : L.Formulas)
      Out.merge(extractPol(P->rhs(), K, Mid));
    return Out;
  }
  case SPol::Kind::Star: {
    // ⊔_j F^j_p(ϕ, ~k): iterate the Kleisli power until the accumulated
    // (D, P) stops growing. Literal alphabets are finite so this
    // converges; the cap guards against bugs.
    Acc Total;
    Total.Formulas.insert(Phi); // F^0
    std::set<LitConj> Frontier{Phi};
    for (unsigned Iter = 0; Iter != 1000 && !Frontier.empty(); ++Iter) {
      std::set<LitConj> NextFrontier;
      for (const LitConj &F : Frontier) {
        Acc Step = extractPol(P->body(), K, F);
        Total.Edges.insert(Step.Edges.begin(), Step.Edges.end());
        for (const LitConj &G : Step.Formulas)
          if (Total.Formulas.insert(G).second)
            NextFrontier.insert(G);
      }
      Frontier = std::move(NextFrontier);
    }
    assert(Frontier.empty() && "event extraction of star did not converge");
    return Total;
  }
  case SPol::Kind::Link:
    Out.Formulas.insert(Phi);
    return Out;
  case SPol::Kind::LinkAssign: {
    assert(P->stateIndex() < K.size() && "state index out of bounds");
    StateVec To = K;
    To[P->stateIndex()] = P->stateValue();
    // A state self-assignment produces no transition (and therefore no
    // event-edge): the ETS stays loop-free.
    if (To != K) {
      EventEdge E;
      E.From = K;
      E.Guard = Phi;
      E.Loc = Location{P->linkDst().Sw, P->linkDst().Pt};
      E.To = std::move(To);
      Out.Edges.insert(std::move(E));
    }
    Out.Formulas.insert(Phi);
    return Out;
  }
  }
  return Out;
}

} // namespace

ExtractResult stateful::extractEdges(const SPolRef &P, const StateVec &K) {
  assert(K.size() >= stateSize(P) && "state vector too small for program");
  Acc A = extractPol(P, K, LitConj());
  ExtractResult R;
  R.Edges.assign(A.Edges.begin(), A.Edges.end());
  R.Formulas.assign(A.Formulas.begin(), A.Formulas.end());
  return R;
}
