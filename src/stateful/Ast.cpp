//===- stateful/Ast.cpp - Stateful NetKAT abstract syntax -----------------===//

#include "stateful/Ast.h"

#include <algorithm>
#include <sstream>

using namespace eventnet;
using namespace eventnet::stateful;

std::string stateful::stateVecStr(const StateVec &K) {
  std::ostringstream OS;
  OS << '[';
  for (size_t I = 0; I != K.size(); ++I) {
    if (I)
      OS << ',';
    OS << K[I];
  }
  OS << ']';
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Constructors
//===----------------------------------------------------------------------===//

SPredRef stateful::sTrue() {
  static SPredRef T = std::make_shared<SPred>(SPred::Kind::True, 0, 0, true,
                                              0, nullptr, nullptr);
  return T;
}

SPredRef stateful::sFalse() {
  static SPredRef F = std::make_shared<SPred>(SPred::Kind::False, 0, 0, true,
                                              0, nullptr, nullptr);
  return F;
}

SPredRef stateful::sFieldTest(FieldId F, bool Eq, Value V) {
  return std::make_shared<SPred>(SPred::Kind::FieldTest, F, 0, Eq, V,
                                 nullptr, nullptr);
}

SPredRef stateful::sStateTest(unsigned Index, bool Eq, Value V) {
  return std::make_shared<SPred>(SPred::Kind::StateTest, 0, Index, Eq, V,
                                 nullptr, nullptr);
}

SPredRef stateful::sAnd(SPredRef A, SPredRef B) {
  return std::make_shared<SPred>(SPred::Kind::And, 0, 0, true, 0,
                                 std::move(A), std::move(B));
}

SPredRef stateful::sOr(SPredRef A, SPredRef B) {
  return std::make_shared<SPred>(SPred::Kind::Or, 0, 0, true, 0,
                                 std::move(A), std::move(B));
}

SPredRef stateful::sNot(SPredRef A) {
  return std::make_shared<SPred>(SPred::Kind::Not, 0, 0, true, 0,
                                 std::move(A), nullptr);
}

SPolRef stateful::sFilter(SPredRef P) {
  return std::make_shared<SPol>(SPol::Kind::Filter, std::move(P), 0, 0,
                                nullptr, nullptr, Location{}, Location{}, 0);
}

SPolRef stateful::sMod(FieldId F, Value V) {
  assert(F != FieldSw && "sw is not a modifiable field (Figure 4)");
  return std::make_shared<SPol>(SPol::Kind::Mod, nullptr, F, V, nullptr,
                                nullptr, Location{}, Location{}, 0);
}

SPolRef stateful::sUnion(SPolRef A, SPolRef B) {
  return std::make_shared<SPol>(SPol::Kind::Union, nullptr, 0, 0,
                                std::move(A), std::move(B), Location{},
                                Location{}, 0);
}

SPolRef stateful::sSeq(SPolRef A, SPolRef B) {
  return std::make_shared<SPol>(SPol::Kind::Seq, nullptr, 0, 0, std::move(A),
                                std::move(B), Location{}, Location{}, 0);
}

SPolRef stateful::sStar(SPolRef A) {
  return std::make_shared<SPol>(SPol::Kind::Star, nullptr, 0, 0,
                                std::move(A), nullptr, Location{}, Location{},
                                0);
}

SPolRef stateful::sLink(Location Src, Location Dst) {
  return std::make_shared<SPol>(SPol::Kind::Link, nullptr, 0, 0, nullptr,
                                nullptr, Src, Dst, 0);
}

SPolRef stateful::sLinkAssign(Location Src, Location Dst, unsigned Index,
                              Value V) {
  return std::make_shared<SPol>(SPol::Kind::LinkAssign, nullptr, 0, V,
                                nullptr, nullptr, Src, Dst, Index);
}

SPolRef stateful::sUnionAll(const std::vector<SPolRef> &Ps) {
  assert(!Ps.empty() && "empty union has no stateful encoding");
  SPolRef Acc = Ps.front();
  for (size_t I = 1; I != Ps.size(); ++I)
    Acc = sUnion(Acc, Ps[I]);
  return Acc;
}

SPolRef stateful::sSeqAll(const std::vector<SPolRef> &Ps) {
  assert(!Ps.empty() && "empty sequence has no stateful encoding");
  SPolRef Acc = Ps.front();
  for (size_t I = 1; I != Ps.size(); ++I)
    Acc = sSeq(Acc, Ps[I]);
  return Acc;
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

namespace {

unsigned predStateSize(const SPredRef &P) {
  switch (P->kind()) {
  case SPred::Kind::True:
  case SPred::Kind::False:
  case SPred::Kind::FieldTest:
    return 0;
  case SPred::Kind::StateTest:
    return P->stateIndex() + 1;
  case SPred::Kind::And:
  case SPred::Kind::Or:
    return std::max(predStateSize(P->lhs()), predStateSize(P->rhs()));
  case SPred::Kind::Not:
    return predStateSize(P->negand());
  }
  return 0;
}

} // namespace

unsigned stateful::stateSize(const SPolRef &P) {
  unsigned N = 0;
  switch (P->kind()) {
  case SPol::Kind::Filter:
    N = predStateSize(P->pred());
    break;
  case SPol::Kind::Mod:
  case SPol::Kind::Link:
    N = 0;
    break;
  case SPol::Kind::Union:
  case SPol::Kind::Seq:
    N = std::max(stateSize(P->lhs()), stateSize(P->rhs()));
    break;
  case SPol::Kind::Star:
    N = stateSize(P->body());
    break;
  case SPol::Kind::LinkAssign:
    N = P->stateIndex() + 1;
    break;
  }
  return std::max(N, 1u);
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

std::string SPred::str() const {
  std::ostringstream OS;
  switch (K) {
  case Kind::True:
    return "true";
  case Kind::False:
    return "false";
  case Kind::FieldTest:
    OS << fieldName(F) << (Eq ? "=" : "!=") << V;
    return OS.str();
  case Kind::StateTest:
    OS << "state(" << Index << ')' << (Eq ? "=" : "!=") << V;
    return OS.str();
  case Kind::And:
    return "(" + L->str() + " and " + R->str() + ")";
  case Kind::Or:
    return "(" + L->str() + " or " + R->str() + ")";
  case Kind::Not:
    return "not " + L->str();
  }
  return "?";
}

std::string SPol::str() const {
  std::ostringstream OS;
  switch (K) {
  case Kind::Filter:
    return P->str();
  case Kind::Mod:
    OS << fieldName(F) << "<-" << V;
    return OS.str();
  case Kind::Union:
    return "(" + L->str() + " + " + R->str() + ")";
  case Kind::Seq:
    return "(" + L->str() + "; " + R->str() + ")";
  case Kind::Star:
    return "(" + L->str() + ")*";
  case Kind::Link:
    OS << '(' << Src.Sw << ':' << Src.Pt << ")->(" << Dst.Sw << ':' << Dst.Pt
       << ')';
    return OS.str();
  case Kind::LinkAssign:
    OS << '(' << Src.Sw << ':' << Src.Pt << ")->(" << Dst.Sw << ':' << Dst.Pt
       << ")<state(" << Index << ")<-" << V << '>';
    return OS.str();
  }
  return "?";
}
