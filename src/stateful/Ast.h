//===- stateful/Ast.h - Stateful NetKAT abstract syntax ---------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stateful NetKAT (paper Figure 4): NetKAT extended with a global
/// vector-valued `state` variable. Tests may inspect state components
/// (state(m) = n), and links may atomically assign a component when a
/// packet traverses them ((a:b) -> (c:d) <state(m) <- n>), which is the
/// language's only state mutation and is what generates ETS event-edges.
///
/// Tests carry an equality *or* inequality sense directly (the paper's
/// =© symbol), which keeps the Figure 6 extraction rules one-to-one with
/// the figure.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_STATEFUL_AST_H
#define EVENTNET_STATEFUL_AST_H

#include "support/Ids.h"
#include "support/Symbols.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace eventnet {
namespace stateful {

/// A value ~k of the global state vector.
using StateVec = std::vector<Value>;

/// Renders e.g. "[0,2]".
std::string stateVecStr(const StateVec &K);

class SPred;
class SPol;
using SPredRef = std::shared_ptr<const SPred>;
using SPolRef = std::shared_ptr<const SPol>;

/// A Stateful NetKAT test (Figure 4's a, b).
class SPred {
public:
  enum class Kind { True, False, FieldTest, StateTest, And, Or, Not };

  Kind kind() const { return K; }

  /// FieldTest accessors: f =© n where Eq selects = vs !=.
  FieldId field() const {
    assert(K == Kind::FieldTest);
    return F;
  }
  bool isEq() const {
    assert(K == Kind::FieldTest || K == Kind::StateTest);
    return Eq;
  }
  Value value() const {
    assert(K == Kind::FieldTest || K == Kind::StateTest);
    return V;
  }

  /// StateTest accessor: state(m) =© n.
  unsigned stateIndex() const {
    assert(K == Kind::StateTest);
    return Index;
  }

  const SPredRef &lhs() const {
    assert(K == Kind::And || K == Kind::Or);
    return L;
  }
  const SPredRef &rhs() const {
    assert(K == Kind::And || K == Kind::Or);
    return R;
  }
  const SPredRef &negand() const {
    assert(K == Kind::Not);
    return L;
  }

  std::string str() const;

  SPred(Kind K, FieldId F, unsigned Index, bool Eq, Value V, SPredRef L,
        SPredRef R)
      : K(K), F(F), Index(Index), Eq(Eq), V(V), L(std::move(L)),
        R(std::move(R)) {}

private:
  Kind K;
  FieldId F = 0;
  unsigned Index = 0;
  bool Eq = true;
  Value V = 0;
  SPredRef L, R;
};

/// A Stateful NetKAT command (Figure 4's p, q).
class SPol {
public:
  enum class Kind { Filter, Mod, Union, Seq, Star, Link, LinkAssign };

  Kind kind() const { return K; }

  const SPredRef &pred() const {
    assert(K == Kind::Filter);
    return P;
  }
  FieldId modField() const {
    assert(K == Kind::Mod);
    return F;
  }
  Value modValue() const {
    assert(K == Kind::Mod);
    return V;
  }
  const SPolRef &lhs() const {
    assert(K == Kind::Union || K == Kind::Seq);
    return L;
  }
  const SPolRef &rhs() const {
    assert(K == Kind::Union || K == Kind::Seq);
    return R;
  }
  const SPolRef &body() const {
    assert(K == Kind::Star);
    return L;
  }
  Location linkSrc() const {
    assert(K == Kind::Link || K == Kind::LinkAssign);
    return Src;
  }
  Location linkDst() const {
    assert(K == Kind::Link || K == Kind::LinkAssign);
    return Dst;
  }
  unsigned stateIndex() const {
    assert(K == Kind::LinkAssign);
    return Index;
  }
  Value stateValue() const {
    assert(K == Kind::LinkAssign);
    return V;
  }

  std::string str() const;

  SPol(Kind K, SPredRef P, FieldId F, Value V, SPolRef L, SPolRef R,
       Location Src, Location Dst, unsigned Index)
      : K(K), P(std::move(P)), F(F), V(V), L(std::move(L)), R(std::move(R)),
        Src(Src), Dst(Dst), Index(Index) {}

private:
  Kind K;
  SPredRef P;
  FieldId F = 0;
  Value V = 0;
  SPolRef L, R;
  Location Src{}, Dst{};
  unsigned Index = 0;
};

//===----------------------------------------------------------------------===//
// Constructors
//===----------------------------------------------------------------------===//

SPredRef sTrue();
SPredRef sFalse();
/// f =© n; \p Eq false encodes the inequality test f != n.
SPredRef sFieldTest(FieldId F, bool Eq, Value V);
/// state(m) =© n.
SPredRef sStateTest(unsigned Index, bool Eq, Value V);
SPredRef sAnd(SPredRef A, SPredRef B);
SPredRef sOr(SPredRef A, SPredRef B);
SPredRef sNot(SPredRef A);

SPolRef sFilter(SPredRef P);
SPolRef sMod(FieldId F, Value V);
SPolRef sUnion(SPolRef A, SPolRef B);
SPolRef sSeq(SPolRef A, SPolRef B);
SPolRef sStar(SPolRef A);
SPolRef sLink(Location Src, Location Dst);
SPolRef sLinkAssign(Location Src, Location Dst, unsigned Index, Value V);

/// Convenience list forms.
SPolRef sUnionAll(const std::vector<SPolRef> &Ps);
SPolRef sSeqAll(const std::vector<SPolRef> &Ps);

/// Number of state-vector components the program requires (one past the
/// largest state index mentioned; at least 1).
unsigned stateSize(const SPolRef &P);

} // namespace stateful
} // namespace eventnet

#endif // EVENTNET_STATEFUL_AST_H
