//===- stateful/Project.cpp - Figure 5 projection -------------------------===//

#include "stateful/Project.h"

#include <cassert>

using namespace eventnet;
using namespace eventnet::stateful;
using namespace eventnet::netkat;

PredRef stateful::projectPred(const SPredRef &P, const StateVec &K) {
  switch (P->kind()) {
  case SPred::Kind::True:
    return pTrue();
  case SPred::Kind::False:
    return pFalse();
  case SPred::Kind::FieldTest: {
    PredRef T = pTest(P->field(), P->value());
    return P->isEq() ? T : pNot(T);
  }
  case SPred::Kind::StateTest: {
    assert(P->stateIndex() < K.size() && "state index out of bounds");
    bool Holds = (K[P->stateIndex()] == P->value()) == P->isEq();
    return Holds ? pTrue() : pFalse();
  }
  case SPred::Kind::And:
    return pAnd(projectPred(P->lhs(), K), projectPred(P->rhs(), K));
  case SPred::Kind::Or:
    return pOr(projectPred(P->lhs(), K), projectPred(P->rhs(), K));
  case SPred::Kind::Not:
    return pNot(projectPred(P->negand(), K));
  }
  return pFalse();
}

PolicyRef stateful::project(const SPolRef &P, const StateVec &K) {
  switch (P->kind()) {
  case SPol::Kind::Filter:
    return filter(projectPred(P->pred(), K));
  case SPol::Kind::Mod:
    return mod(P->modField(), P->modValue());
  case SPol::Kind::Union:
    return unite(project(P->lhs(), K), project(P->rhs(), K));
  case SPol::Kind::Seq:
    return seq(project(P->lhs(), K), project(P->rhs(), K));
  case SPol::Kind::Star:
    return star(project(P->body(), K));
  case SPol::Kind::Link:
  case SPol::Kind::LinkAssign:
    // Figure 5: the state assignment is invisible to the per-state
    // forwarding behavior.
    return link(P->linkSrc(), P->linkDst());
  }
  return drop();
}
