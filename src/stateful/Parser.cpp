//===- stateful/Parser.cpp - Stateful NetKAT parser -----------------------===//

#include "stateful/Parser.h"

#include "stateful/Lexer.h"

#include <cassert>
#include <optional>
#include <sstream>

using namespace eventnet;
using namespace eventnet::stateful;

namespace {

/// Converts a policy back into a predicate when it denotes one (filters,
/// and sequences/unions of predicates). Used by 'and', 'or', and 'not'.
std::optional<SPredRef> polToPred(const SPolRef &P) {
  switch (P->kind()) {
  case SPol::Kind::Filter:
    return P->pred();
  case SPol::Kind::Seq: {
    auto L = polToPred(P->lhs());
    auto R = polToPred(P->rhs());
    if (!L || !R)
      return std::nullopt;
    return sAnd(*L, *R);
  }
  case SPol::Kind::Union: {
    auto L = polToPred(P->lhs());
    auto R = polToPred(P->rhs());
    if (!L || !R)
      return std::nullopt;
    return sOr(*L, *R);
  }
  default:
    return std::nullopt;
  }
}

class Parser {
public:
  explicit Parser(const std::string &Source) : Toks(lex(Source)) {}

  api::Result<Parsed> run() {
    auto Err = [](std::string Msg) {
      return api::Status::error(api::Code::ParseError, std::move(Msg));
    };
    if (Toks.back().Kind == TokKind::Error) {
      const Token &T = Toks.back();
      return Err(position(T) + ": " + T.Text);
    }
    parseLets();
    if (Failed)
      return Err(ErrorMsg);
    SPolRef P = parsePolicy();
    if (!Failed && cur().Kind != TokKind::Eof)
      fail("expected end of input, found " + tokKindName(cur().Kind));
    if (Failed)
      return Err(ErrorMsg);
    return Parsed{std::move(P), Bindings};
  }

private:
  std::vector<Token> Toks;
  size_t Pos = 0;
  bool Failed = false;
  std::string ErrorMsg;
  std::map<std::string, Value> Bindings;

  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }

  static std::string position(const Token &T) {
    std::ostringstream OS;
    OS << T.Line << ':' << T.Col;
    return OS.str();
  }

  void fail(const std::string &Msg) {
    if (Failed)
      return;
    Failed = true;
    ErrorMsg = position(cur()) + ": " + Msg;
  }

  bool accept(TokKind K) {
    if (Failed || cur().Kind != K)
      return false;
    ++Pos;
    return true;
  }

  Token expect(TokKind K, const std::string &What) {
    if (Failed)
      return Token{};
    if (cur().Kind != K) {
      fail("expected " + tokKindName(K) + " " + What + ", found " +
           tokKindName(cur().Kind));
      return Token{};
    }
    Token T = cur();
    ++Pos;
    return T;
  }

  //===--------------------------------------------------------------------===//
  // lets and values
  //===--------------------------------------------------------------------===//

  void parseLets() {
    while (!Failed && cur().Kind == TokKind::KwLet) {
      ++Pos;
      Token Name = expect(TokKind::Ident, "after 'let'");
      expect(TokKind::Eq, "in let binding");
      Token Num = expect(TokKind::Number, "as let value");
      expect(TokKind::Semi, "after let binding");
      if (Failed)
        return;
      if (Bindings.count(Name.Text)) {
        fail("duplicate let binding for '" + Name.Text + "'");
        return;
      }
      Bindings[Name.Text] = Num.Num;
    }
  }

  /// value := NUM | let-bound IDENT.
  Value parseValue() {
    if (cur().Kind == TokKind::Number) {
      Value V = cur().Num;
      ++Pos;
      return V;
    }
    if (cur().Kind == TokKind::Ident) {
      auto It = Bindings.find(cur().Text);
      if (It == Bindings.end()) {
        fail("unbound identifier '" + cur().Text +
             "' used as a value (missing let?)");
        return 0;
      }
      ++Pos;
      return It->second;
    }
    fail("expected a number or let-bound name, found " +
         tokKindName(cur().Kind));
    return 0;
  }

  //===--------------------------------------------------------------------===//
  // policy precedence chain
  //===--------------------------------------------------------------------===//

  SPolRef parsePolicy() {
    SPolRef L = parseSeqExp();
    while (!Failed &&
           (cur().Kind == TokKind::Plus || cur().Kind == TokKind::KwOr)) {
      bool IsOr = cur().Kind == TokKind::KwOr;
      ++Pos;
      SPolRef R = parseSeqExp();
      if (Failed)
        return sFilter(sFalse());
      if (IsOr) {
        auto LP = polToPred(L);
        auto RP = polToPred(R);
        if (!LP || !RP) {
          fail("'or' requires test operands; use '+' for policy union");
          return sFilter(sFalse());
        }
        L = sFilter(sOr(*LP, *RP));
        continue;
      }
      L = sUnion(std::move(L), std::move(R));
    }
    return L;
  }

  SPolRef parseSeqExp() {
    SPolRef L = parseAndExp();
    while (!Failed && accept(TokKind::Semi)) {
      SPolRef R = parseAndExp();
      if (Failed)
        return sFilter(sFalse());
      L = sSeq(std::move(L), std::move(R));
    }
    return L;
  }

  SPolRef parseAndExp() {
    SPolRef L = parseUnary();
    while (!Failed && accept(TokKind::KwAnd)) {
      SPolRef R = parseUnary();
      if (Failed)
        return sFilter(sFalse());
      auto LP = polToPred(L);
      auto RP = polToPred(R);
      if (!LP || !RP) {
        fail("'and' requires test operands; use ';' for sequencing");
        return sFilter(sFalse());
      }
      L = sFilter(sAnd(*LP, *RP));
    }
    return L;
  }

  SPolRef parseUnary() {
    if (accept(TokKind::KwNot)) {
      SPolRef Inner = parseUnary();
      if (Failed)
        return sFilter(sFalse());
      auto P = polToPred(Inner);
      if (!P) {
        fail("'not' requires a test operand");
        return sFilter(sFalse());
      }
      return sFilter(sNot(*P));
    }
    return parsePostfix();
  }

  SPolRef parsePostfix() {
    SPolRef P = parsePrimary();
    while (!Failed && accept(TokKind::Star))
      P = sStar(std::move(P));
    return P;
  }

  //===--------------------------------------------------------------------===//
  // primaries
  //===--------------------------------------------------------------------===//

  SPolRef parsePrimary() {
    switch (cur().Kind) {
    case TokKind::KwTrue:
    case TokKind::KwSkip:
      ++Pos;
      return sFilter(sTrue());
    case TokKind::KwFalse:
    case TokKind::KwDrop:
      ++Pos;
      return sFilter(sFalse());
    case TokKind::KwState:
      return parseStateTest();
    case TokKind::Ident:
      return parseIdentPrimary();
    case TokKind::LParen:
      // '(' NUM ':' is unambiguously a link endpoint.
      if (peek().Kind == TokKind::Number && peek(2).Kind == TokKind::Colon)
        return parseLink();
      return parseParenPolicy();
    default:
      fail("expected a test, assignment, link, or '(', found " +
           tokKindName(cur().Kind));
      return sFilter(sFalse());
    }
  }

  SPolRef parseParenPolicy() {
    expect(TokKind::LParen, "");
    SPolRef P = parsePolicy();
    expect(TokKind::RParen, "to close '('");
    return Failed ? sFilter(sFalse()) : P;
  }

  SPolRef parseIdentPrimary() {
    Token Name = cur();
    ++Pos;
    if (accept(TokKind::Eq)) {
      Value V = parseValue();
      return sFilter(sFieldTest(fieldOf(Name.Text), /*Eq=*/true, V));
    }
    if (accept(TokKind::Neq)) {
      Value V = parseValue();
      return sFilter(sFieldTest(fieldOf(Name.Text), /*Eq=*/false, V));
    }
    if (accept(TokKind::Assign)) {
      if (Name.Text == "sw") {
        fail("sw is not a modifiable field (Figure 4)");
        return sFilter(sFalse());
      }
      Value V = parseValue();
      return Failed ? sFilter(sFalse()) : sMod(fieldOf(Name.Text), V);
    }
    fail("expected '=', '!=', or '<-' after identifier '" + Name.Text + "'");
    return sFilter(sFalse());
  }

  /// 'state' '(' i ')' =©  v  |  'state' =© '[' v0 (',' vj)* ']'.
  SPolRef parseStateTest() {
    expect(TokKind::KwState, "");
    if (accept(TokKind::LParen)) {
      Token Idx = expect(TokKind::Number, "as state index");
      expect(TokKind::RParen, "after state index");
      bool Eq = parseEqNeq();
      Value V = parseValue();
      if (Failed)
        return sFilter(sFalse());
      return sFilter(sStateTest(static_cast<unsigned>(Idx.Num), Eq, V));
    }
    bool Eq = parseEqNeq();
    expect(TokKind::LBracket, "to open a state vector literal");
    std::vector<Value> Vals;
    Vals.push_back(parseValue());
    while (!Failed && accept(TokKind::Comma))
      Vals.push_back(parseValue());
    expect(TokKind::RBracket, "to close the state vector literal");
    if (Failed)
      return sFilter(sFalse());
    SPredRef Conj = sStateTest(0, /*Eq=*/true, Vals[0]);
    for (size_t I = 1; I != Vals.size(); ++I)
      Conj = sAnd(Conj, sStateTest(static_cast<unsigned>(I), true, Vals[I]));
    return sFilter(Eq ? Conj : sNot(Conj));
  }

  bool parseEqNeq() {
    if (accept(TokKind::Eq))
      return true;
    if (accept(TokKind::Neq))
      return false;
    fail("expected '=' or '!=' in state test");
    return true;
  }

  /// '(' n ':' m ')' '->' '(' n ':' m ')' [ '<' state-assign '>' ].
  SPolRef parseLink() {
    Location Src = parseEndpoint();
    expect(TokKind::Arrow, "between link endpoints");
    Location Dst = parseEndpoint();
    if (Failed)
      return sFilter(sFalse());
    if (!accept(TokKind::Lt))
      return sLink(Src, Dst);

    expect(TokKind::KwState, "in link state assignment");
    unsigned Index = 0;
    bool HaveIndex = false;
    if (accept(TokKind::LParen)) {
      Token Idx = expect(TokKind::Number, "as state index");
      expect(TokKind::RParen, "after state index");
      Index = static_cast<unsigned>(Idx.Num);
      HaveIndex = true;
    }
    expect(TokKind::Assign, "in link state assignment");
    Value V = 0;
    if (accept(TokKind::LBracket)) {
      if (HaveIndex) {
        fail("state(i) assignment takes a scalar, not a vector literal");
        return sFilter(sFalse());
      }
      V = parseValue();
      if (!Failed && cur().Kind == TokKind::Comma) {
        fail("a link assigns exactly one state component (Figure 4); use "
             "state(i) indices across separate links for vector updates");
        return sFilter(sFalse());
      }
      expect(TokKind::RBracket, "to close the state literal");
    } else {
      V = parseValue();
    }
    expect(TokKind::Gt, "to close the link state assignment");
    if (Failed)
      return sFilter(sFalse());
    return sLinkAssign(Src, Dst, Index, V);
  }

  Location parseEndpoint() {
    expect(TokKind::LParen, "to open a link endpoint");
    Token Sw = expect(TokKind::Number, "as a switch id");
    expect(TokKind::Colon, "in a link endpoint");
    Token Pt = expect(TokKind::Number, "as a port id");
    expect(TokKind::RParen, "to close a link endpoint");
    return Location{static_cast<SwitchId>(Sw.Num),
                    static_cast<PortId>(Pt.Num)};
  }
};

} // namespace

api::Result<Parsed> stateful::parseProgram(const std::string &Source) {
  Parser P(Source);
  return P.run();
}
