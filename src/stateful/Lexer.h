//===- stateful/Lexer.h - Stateful NetKAT lexer -----------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the concrete Stateful NetKAT syntax (an ASCII rendering
/// of Figure 4 / Figure 9):
///
///   let H4 = 4;
///   pt=2 and ip_dst=H4; pt<-1;
///     ( state=[0]; (1:1)->(4:1)<state<-[1]>
///     + state!=[0]; (1:1)->(4:1) );
///   pt<-2
///
/// Comments run from '#' or '//' to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_STATEFUL_LEXER_H
#define EVENTNET_STATEFUL_LEXER_H

#include "support/Ids.h"

#include <string>
#include <vector>

namespace eventnet {
namespace stateful {

/// Token kinds.
enum class TokKind {
  Ident,
  Number,
  LParen,   // (
  RParen,   // )
  LBracket, // [
  RBracket, // ]
  Semi,     // ;
  Plus,     // +
  Star,     // *
  Colon,    // :
  Comma,    // ,
  Eq,       // =
  Neq,      // !=
  Assign,   // <-
  Arrow,    // ->
  Lt,       // <
  Gt,       // >
  KwTrue,
  KwFalse,
  KwAnd,
  KwOr,
  KwNot,
  KwState,
  KwLet,
  KwDrop,
  KwSkip,
  Eof,
  Error,
};

/// A lexed token with source position (1-based line/column).
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  Value Num = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

/// Printable name of a token kind, for diagnostics.
std::string tokKindName(TokKind K);

/// Tokenizes \p Source. On a lexical error the final token has kind
/// Error and Text holds the message; otherwise the stream ends with Eof.
std::vector<Token> lex(const std::string &Source);

} // namespace stateful
} // namespace eventnet

#endif // EVENTNET_STATEFUL_LEXER_H
