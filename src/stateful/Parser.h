//===- stateful/Parser.h - Stateful NetKAT parser ---------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the Stateful NetKAT concrete syntax.
/// Grammar (loosest to tightest precedence):
///
///   program  := let* policy
///   let      := 'let' IDENT '=' NUM ';'
///   policy   := seqexp (('+' | 'or') seqexp)*
///   seqexp   := andexp (';' andexp)*
///   andexp   := unary ('and' unary)*
///   unary    := 'not' unary | postfix
///   postfix  := primary '*'*
///   primary  := 'true' | 'false' | 'drop' | 'skip'
///             | 'state' stateref ('=' | '!=') value
///             | 'state' ('=' | '!=') '[' value (',' value)* ']'
///             | IDENT ('=' | '!=') value            -- field test
///             | IDENT '<-' value                    -- field assignment
///             | '(' NUM ':' NUM ')' '->' '(' NUM ':' NUM ')' [stateassign]
///             | '(' policy ')'
///   stateref := '(' NUM ')'
///   stateassign := '<' 'state' [stateref] '<-' (value | '[' value ']') '>'
///   value    := NUM | IDENT                          -- let-bound name
///
/// 'or', 'and' and 'not' require their operands to denote predicates
/// (tests); the parser checks this and reports an error otherwise. The
/// `state=[v0,...]` sugar expands to a conjunction of component tests
/// (negated as a whole for '!='), matching the vector notation the
/// paper's Figure 9 programs use.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_STATEFUL_PARSER_H
#define EVENTNET_STATEFUL_PARSER_H

#include "api/Status.h"
#include "stateful/Ast.h"

#include <map>
#include <string>

namespace eventnet {
namespace stateful {

/// A successfully parsed program.
struct Parsed {
  SPolRef Program;
  /// let-bound names, e.g. {"H4" -> 4}; useful to callers that want to
  /// build packets with symbolic host names.
  std::map<std::string, Value> Bindings;
};

/// Parses a whole program. Failures carry api::Code::ParseError with a
/// "line:col: message" diagnostic.
api::Result<Parsed> parseProgram(const std::string &Source);

} // namespace stateful
} // namespace eventnet

#endif // EVENTNET_STATEFUL_PARSER_H
