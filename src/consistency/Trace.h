//===- consistency/Trace.h - Network traces ---------------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Network traces (paper Section 2): a global interleaving of located
/// packets together with the tree structure that groups them into packet
/// traces (multicast forks a packet trace into a tree; each root-to-leaf
/// chain is one packet trace). The happens-before relation of Definition
/// 1 is derived from (a) the per-switch total processing order and (b)
/// the per-packet-trace order.
///
/// Entries are appended by the runtime/simulator at every located-packet
/// occurrence: host emission (at the ingress port), switch egress (at the
/// output port), link arrival (at the destination port), and delivery
/// (an egress at a host-facing port).
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_CONSISTENCY_TRACE_H
#define EVENTNET_CONSISTENCY_TRACE_H

#include "netkat/Packet.h"
#include "support/Ids.h"

#include <string>
#include <vector>

namespace eventnet {
namespace consistency {

/// One located-packet occurrence in the global interleaving.
struct TraceEntry {
  /// The located packet (its sw/pt fields are the location).
  netkat::Packet Lp;
  /// Index of the occurrence this one directly follows in its packet
  /// trace, or -1 for a root (host emission).
  int Parent = -1;
  /// True for an egress at a host-facing port (the packet left the
  /// network).
  bool IsDelivery = false;
};

/// The recorded network trace.
class NetworkTrace {
public:
  /// Appends an entry; returns its index.
  int append(TraceEntry E);

  const std::vector<TraceEntry> &entries() const { return Entries; }
  size_t size() const { return Entries.size(); }

  /// All packet traces: root-to-leaf index chains of the parent forest.
  /// A root with no children is a single-entry trace.
  std::vector<std::vector<int>> packetTraces() const;

  /// happens-before: Definition 1's least partial order. True if entry
  /// \p A must precede entry \p B. Computed lazily; the first query
  /// builds a reachability closure over the per-switch and per-trace
  /// orders.
  bool happensBefore(int A, int B) const;

  std::string str() const;

private:
  void buildClosure() const;

  std::vector<TraceEntry> Entries;
  /// Reachability bitsets: Closure[I] has bit J set iff I happens-before
  /// J (strictly). Rebuilt when entries change.
  mutable std::vector<std::vector<uint64_t>> Closure;
  mutable bool ClosureValid = false;
};

} // namespace consistency
} // namespace eventnet

#endif // EVENTNET_CONSISTENCY_TRACE_H
