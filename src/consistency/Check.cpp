//===- consistency/Check.cpp - Consistency checkers -----------------------===//

#include "consistency/Check.h"

#include <cassert>
#include <sstream>

using namespace eventnet;
using namespace eventnet::consistency;
using eventnet::netkat::Event;
using eventnet::netkat::Packet;

namespace {

/// True if event \p E (id \p Id in the ambient set) is a *fresh, enabled*
/// match for \p Lp given the already-occurred set. Without a structure,
/// any non-occurred event counts as enabled.
bool freshMatch(const Packet &Lp, unsigned Id, const Event &E,
                const DenseBitSet &Occurred, const nes::Nes *N) {
  if (Occurred.test(Id) || !E.matches(Lp))
    return false;
  if (!N)
    return true;
  DenseBitSet Ext = Occurred;
  Ext.set(Id);
  return N->enables(Occurred, Id) && N->con(Ext);
}

/// Materializes the located-packet sequence of a packet trace.
std::vector<Packet> chainPackets(const NetworkTrace &Tr,
                                 const std::vector<int> &Chain) {
  std::vector<Packet> Out;
  Out.reserve(Chain.size());
  for (int I : Chain)
    Out.push_back(Tr.entries()[I].Lp);
  return Out;
}

} // namespace

namespace {

/// True if every consecutive pair of \p Lps is related under \p C — the
/// chain is a (not necessarily maximal) trace prefix of the
/// configuration. Used for chains a ledgered fault cut short.
bool isTracePrefix(const topo::Configuration &C, const topo::Topology &Topo,
                   const std::vector<Packet> &Lps) {
  if (Lps.empty())
    return false;
  for (size_t I = 0; I + 1 < Lps.size(); ++I)
    if (!C.related(Topo, Lps[I], Lps[I + 1]))
      return false;
  return true;
}

} // namespace

CheckResult consistency::checkUpdateSequence(
    const NetworkTrace &Tr, const topo::Topology &Topo,
    const UpdateSequence &U, const std::vector<Event> &AllEvents,
    const nes::Nes *EnablingNes, const std::vector<bool> *ExcusedLeaves) {
  size_t N = U.EventIds.size();
  assert(U.Configs.size() == N + 1 && "update sequence arity mismatch");
  const auto &Entries = Tr.entries();

  // --- FO(ntr, U): first occurrences k0 < k1 < ... < k(n-1). ---
  std::vector<int> K(N, -1);
  int Prev = -1;
  for (size_t I = 0; I != N; ++I) {
    const Event &E = AllEvents[U.EventIds[I]];
    for (int J = Prev + 1; J < static_cast<int>(Entries.size()); ++J)
      if (E.matches(Entries[J].Lp)) {
        K[I] = J;
        break;
      }
    if (K[I] < 0)
      return CheckResult::fail("FO does not exist: event " + E.str() +
                               " never occurs after index " +
                               std::to_string(Prev));
    Prev = K[I];
  }

  // Trailing condition (operational form; see header): after the last
  // first-occurrence, no entry freshly matches an enabled event outside
  // the sequence.
  DenseBitSet Occurred;
  for (unsigned Id : U.EventIds)
    Occurred.set(Id);
  for (int J = Prev + 1; J < static_cast<int>(Entries.size()); ++J)
    for (unsigned Id = 0; Id != AllEvents.size(); ++Id)
      if (freshMatch(Entries[J].Lp, Id, AllEvents[Id], Occurred, EnablingNes))
        return CheckResult::fail(
            "trace continues past the update sequence: entry " +
            std::to_string(J) + " freshly matches " + AllEvents[Id].str());

  // Packet traces and their single-configuration memberships. A chain
  // whose leaf is excused (a ledgered fault ended it) is held to prefix
  // membership: the surviving hops must follow one configuration, but
  // maximality is waived because the fault, not the table, stopped it.
  std::vector<std::vector<int>> Chains = Tr.packetTraces();
  std::vector<std::vector<size_t>> Memberships(Chains.size());
  for (size_t C = 0; C != Chains.size(); ++C) {
    std::vector<Packet> Lps = chainPackets(Tr, Chains[C]);
    bool Excused = ExcusedLeaves && !Chains[C].empty() &&
                   static_cast<size_t>(Chains[C].back()) <
                       ExcusedLeaves->size() &&
                   (*ExcusedLeaves)[Chains[C].back()];
    for (size_t Ci = 0; Ci != U.Configs.size(); ++Ci) {
      bool In = Excused ? isTracePrefix(*U.Configs[Ci], Topo, Lps)
                        : U.Configs[Ci]->isCompleteTrace(Topo, Lps);
      if (In)
        Memberships[C].push_back(Ci);
    }
  }

  // FO bullet 3: each event must be triggered by a packet processed in
  // the immediately preceding configuration.
  for (size_t I = 0; I != N; ++I) {
    bool Found = false;
    for (size_t C = 0; C != Chains.size() && !Found; ++C) {
      bool Contains = false;
      for (int Idx : Chains[C])
        Contains |= (Idx == K[I]);
      if (!Contains)
        continue;
      for (size_t Ci : Memberships[C])
        Found |= (Ci == I);
    }
    if (!Found)
      return CheckResult::fail(
          "event " + AllEvents[U.EventIds[I]].str() +
          " (entry " + std::to_string(K[I]) +
          ") was not triggered by a packet of the preceding configuration");
  }

  // --- Definition 2's three per-packet-trace conditions. ---
  for (size_t C = 0; C != Chains.size(); ++C) {
    const std::vector<int> &Chain = Chains[C];
    const std::vector<size_t> &Member = Memberships[C];
    if (Member.empty()) {
      std::ostringstream OS;
      OS << "packet trace";
      for (int Idx : Chain)
        OS << ' ' << Idx;
      OS << " is not processed by any single configuration";
      return CheckResult::fail(OS.str());
    }

    for (size_t I = 0; I != N; ++I) {
      bool AllBefore = true, AllAfter = true;
      for (int Idx : Chain) {
        AllBefore &= Tr.happensBefore(Idx, K[I]);
        AllAfter &= Tr.happensBefore(K[I], Idx);
      }
      if (AllBefore) {
        bool HasEarly = false;
        for (size_t Ci : Member)
          HasEarly |= (Ci <= I);
        if (!HasEarly) {
          std::ostringstream OS;
          OS << "update happened too early: a packet trace entirely before "
             << AllEvents[U.EventIds[I]].str()
             << " is only consistent with a later configuration";
          return CheckResult::fail(OS.str());
        }
      }
      if (AllAfter) {
        bool HasLate = false;
        for (size_t Ci : Member)
          HasLate |= (Ci >= I + 1);
        if (!HasLate) {
          std::ostringstream OS;
          OS << "update happened too late: a packet trace entirely after "
             << AllEvents[U.EventIds[I]].str()
             << " is only consistent with an earlier configuration";
          return CheckResult::fail(OS.str());
        }
      }
    }
  }

  return CheckResult::ok();
}

namespace {

CheckResult checkAgainstNesImpl(const NetworkTrace &Tr,
                                const topo::Topology &Topo,
                                const nes::Nes &N,
                                const std::vector<bool> *ExcusedLeaves);

} // namespace

CheckResult consistency::checkAgainstNes(const NetworkTrace &Tr,
                                         const topo::Topology &Topo,
                                         const nes::Nes &N,
                                         const FaultContext *Faults) {
  if (!Faults || Faults->empty())
    return checkAgainstNesImpl(Tr, Topo, N, nullptr);

  // Prune injected-duplicate subtrees: a dup entry and everything that
  // descends from it are the fault's copies, not the program's behavior.
  // Parents always precede children, so one forward pass suffices.
  const auto &Entries = Tr.entries();
  std::vector<bool> Pruned(Entries.size(), false);
  for (int I : Faults->DupEntries)
    if (I >= 0 && static_cast<size_t>(I) < Pruned.size())
      Pruned[I] = true;
  for (size_t I = 0; I != Entries.size(); ++I)
    if (!Pruned[I] && Entries[I].Parent >= 0 && Pruned[Entries[I].Parent])
      Pruned[I] = true;

  NetworkTrace Surviving;
  std::vector<int> Remap(Entries.size(), -1);
  for (size_t I = 0; I != Entries.size(); ++I) {
    if (Pruned[I])
      continue;
    TraceEntry E = Entries[I];
    E.Parent = E.Parent >= 0 ? Remap[E.Parent] : -1;
    Remap[I] = Surviving.append(std::move(E));
  }

  std::vector<bool> Excused(Surviving.size(), false);
  for (int I : Faults->ExcusedEntries)
    if (I >= 0 && static_cast<size_t>(I) < Remap.size() && Remap[I] >= 0)
      Excused[Remap[I]] = true;

  return checkAgainstNesImpl(Surviving, Topo, N, &Excused);
}

namespace {

CheckResult checkAgainstNesImpl(const NetworkTrace &Tr,
                                const topo::Topology &Topo,
                                const nes::Nes &N,
                                const std::vector<bool> *ExcusedLeaves) {
  // Operational extraction: replay the trace against the structure to
  // find the sequence of fresh enabled matches; this is the sequence the
  // Figure 7 machine would produce and almost always the witness.
  std::vector<unsigned> Extracted;
  DenseBitSet Occurred;
  for (const TraceEntry &E : Tr.entries())
    for (unsigned Id = 0; Id != N.numEvents(); ++Id)
      if (freshMatch(E.Lp, Id, N.event(Id), Occurred, &N)) {
        Occurred.set(Id);
        Extracted.push_back(Id);
      }

  auto BuildUpdate = [&](const std::vector<unsigned> &Seq,
                         UpdateSequence &U) -> bool {
    DenseBitSet Bits;
    auto S0 = N.setIndex(Bits);
    if (!S0)
      return false;
    U.Configs.push_back(&N.configOf(*S0));
    for (unsigned Id : Seq) {
      Bits.set(Id);
      auto S = N.setIndex(Bits);
      if (!S)
        return false;
      U.Configs.push_back(&N.configOf(*S));
      U.EventIds.push_back(Id);
    }
    return true;
  };

  UpdateSequence Primary;
  CheckResult PrimaryResult = CheckResult::fail("no candidate sequence");
  if (BuildUpdate(Extracted, Primary)) {
    PrimaryResult = checkUpdateSequence(Tr, Topo, Primary, N.events(), &N,
                                        ExcusedLeaves);
    if (PrimaryResult.Correct)
      return PrimaryResult;
  }

  // Definition 6 is existential over allowed sequences: try the rest.
  for (const std::vector<unsigned> &Seq : N.allowedSequences()) {
    if (Seq == Extracted)
      continue;
    UpdateSequence U;
    if (!BuildUpdate(Seq, U))
      continue;
    if (checkUpdateSequence(Tr, Topo, U, N.events(), &N, ExcusedLeaves)
            .Correct)
      return CheckResult::ok();
  }

  return CheckResult::fail("no allowed event sequence makes the trace an "
                           "event-driven consistent update; nearest "
                           "witness failed with: " +
                           PrimaryResult.Reason);
}

} // namespace
