//===- consistency/Check.h - Consistency checkers ---------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's two correctness definitions, as executable checkers over
/// recorded network traces:
///
///  - Definition 2 (event-driven consistent update): given an update
///    sequence C0 -e0-> C1 ... -en-> Cn+1, find the first occurrences
///    FO(ntr, U), then require every packet trace to be processed by a
///    single configuration, no earlier than its happens-before position
///    allows and no later either.
///
///  - Definition 6 (correctness w.r.t. an NES): either no event occurs
///    and every packet trace is a trace of g(∅), or some sequence of
///    events allowed by the NES makes the trace correct per Definition 2.
///
/// One aspect of Definition 2 is operationalized (documented in
/// DESIGN.md): the trailing condition "no lp_j matches any e in E after
/// k_n" is interpreted up to *fresh, enabled* events — a packet matching
/// the guard of an event that has already occurred (or that the structure
/// does not yet enable) does not invalidate FO. Renamed events make the
/// literal reading vacuous for chains like the bandwidth cap, and this
/// reading is exactly what the Figure 7 SWITCH rule implements.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_CONSISTENCY_CHECK_H
#define EVENTNET_CONSISTENCY_CHECK_H

#include "consistency/Trace.h"
#include "nes/Nes.h"
#include "topo/Configuration.h"
#include "topo/Topology.h"

#include <string>
#include <vector>

namespace eventnet {
namespace consistency {

/// Outcome of a check, with a human-readable reason on failure.
struct CheckResult {
  bool Correct = false;
  std::string Reason;

  static CheckResult ok() { return {true, ""}; }
  static CheckResult fail(std::string Why) { return {false, std::move(Why)}; }
};

/// Trace annotations from a fault-injection ledger (faults/FaultPlan.h),
/// letting the checkers verify Definition 6 on the *surviving* trace:
/// duplicate subtrees are pruned before checking, and chains truncated by
/// a ledgered drop/shed are held to prefix membership instead of maximal
/// membership. Unledgered truncations still fail — that is the point:
/// injected loss is excused, silent loss is not.
struct FaultContext {
  /// Trace-entry indices after which the packet trace may legitimately
  /// end (the entry's egress was dropped or its message shed).
  std::vector<int> ExcusedEntries;
  /// Trace-entry indices that root an injected duplicate subtree.
  std::vector<int> DupEntries;

  bool empty() const { return ExcusedEntries.empty() && DupEntries.empty(); }
};

/// An update sequence U = C0 -e0-> C1 -e1-> ... -en-> Cn+1. Events are
/// given as indices into the ambient event vector E (AllEvents below),
/// which the trailing-condition check ranges over.
struct UpdateSequence {
  /// n+1 configurations (C0 ... Cn+1).
  std::vector<const topo::Configuration *> Configs;
  /// n event ids into AllEvents.
  std::vector<unsigned> EventIds;
};

/// Checks Definition 2 directly against an explicit update sequence.
/// \p AllEvents is the ambient event set E used by the trailing-condition
/// check; \p EnablingNes, when non-null, scopes "fresh, enabled" to the
/// structure (see the header comment); when null every non-occurred event
/// is considered enabled. \p ExcusedLeaves, when non-null, is indexed by
/// trace-entry index; a chain ending at an excused entry is held to
/// prefix membership (consecutive entries related, maximality waived)
/// because a ledgered fault cut it short.
CheckResult checkUpdateSequence(const NetworkTrace &Tr,
                                const topo::Topology &Topo,
                                const UpdateSequence &U,
                                const std::vector<netkat::Event> &AllEvents,
                                const nes::Nes *EnablingNes = nullptr,
                                const std::vector<bool> *ExcusedLeaves =
                                    nullptr);

/// Checks Definition 6: the trace is correct w.r.t. \p N if some allowed
/// event sequence makes it an event-driven consistent update. With a
/// \p Faults ledger, duplicates are pruned and ledgered truncations
/// excused first (see FaultContext).
CheckResult checkAgainstNes(const NetworkTrace &Tr,
                            const topo::Topology &Topo, const nes::Nes &N,
                            const FaultContext *Faults = nullptr);

} // namespace consistency
} // namespace eventnet

#endif // EVENTNET_CONSISTENCY_CHECK_H
